// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: run
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the relevant figure's metric via b.ReportMetric
// (slowdown factors, speedups, tree sizes, detection counts) in addition to
// the usual ns/op. Absolute times differ from the paper's Optane testbed;
// the reported ratios carry the reproduced shape.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/bugsuite"
	"pmdebugger/internal/core"
	"pmdebugger/internal/harness"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/stats"
	"pmdebugger/internal/trace"
	"pmdebugger/internal/workloads"
	"pmdebugger/internal/ycsb"
)

// recordTrace captures the instruction stream of one workload run so
// detector benchmarks measure pure bookkeeping cost on identical input.
func recordTrace(b *testing.B, name string, ops int) *trace.Recorder {
	b.Helper()
	f, err := workloads.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	app, pm, err := workloads.Build(f, ops)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(ops * 16)
	pm.Attach(rec)
	if err := workloads.RunInserts(app, ops, 42); err != nil {
		b.Fatal(err)
	}
	if err := app.Close(); err != nil {
		b.Fatal(err)
	}
	pm.End()
	return rec
}

func modelOf(b *testing.B, name string) rules.Model {
	b.Helper()
	f, err := workloads.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	return f.Model
}

// replayBench measures one detector over a recorded trace.
func replayBench(b *testing.B, rec *trace.Recorder, mk func() baselines.Detector) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := mk()
		rec.Replay(det)
		_ = det.Report()
	}
	b.ReportMetric(float64(rec.Len()), "events/run")
}

// BenchmarkFigure2Characterization regenerates the §3 characterization cost
// and metrics (Fig. 2a/b/c) on the micro-benchmarks.
func BenchmarkFigure2Characterization(b *testing.B) {
	for _, name := range harness.Fig2MicroNames() {
		rec := recordTrace(b, name, 2000)
		b.Run(name, func(b *testing.B) {
			var r stats.Result
			for i := 0; i < b.N; i++ {
				ch := stats.New()
				rec.Replay(ch)
				r = ch.Result()
			}
			b.ReportMetric(r.DistancePercent(1), "dist1-%")
			b.ReportMetric(r.CollectivePercent(), "collective-%")
			s, _, _ := r.MixPercent()
			b.ReportMetric(s, "store-%")
		})
	}
}

// BenchmarkFigure2YCSB characterizes the YCSB loads over memcached.
func BenchmarkFigure2YCSB(b *testing.B) {
	for _, w := range ycsb.All() {
		b.Run(w.String(), func(b *testing.B) {
			var row harness.CharacterizationRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.CharacterizeYCSB(w, 500, 2000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Result.CollectivePercent(), "collective-%")
		})
	}
}

// BenchmarkFigure8MicroBenchmarks regenerates the Fig. 8a–g slowdown
// comparison: each sub-benchmark replays one workload's trace through one
// tool, so ns/op ratios across tools are the figure's bars.
func BenchmarkFigure8MicroBenchmarks(b *testing.B) {
	for _, name := range harness.MicroBenchNames() {
		rec := recordTrace(b, name, 2000)
		model := modelOf(b, name)
		b.Run(name+"/nulgrind", func(b *testing.B) {
			replayBench(b, rec, func() baselines.Detector { return baselines.NewNulgrind() })
		})
		b.Run(name+"/pmdebugger", func(b *testing.B) {
			replayBench(b, rec, func() baselines.Detector {
				return core.New(core.Config{Model: model})
			})
		})
		b.Run(name+"/pmemcheck", func(b *testing.B) {
			replayBench(b, rec, func() baselines.Detector { return baselines.NewPmemcheck() })
		})
	}
}

// BenchmarkFigure8Memcached regenerates Fig. 8h (end-to-end, including the
// application, as in the paper).
func BenchmarkFigure8Memcached(b *testing.B) {
	for _, tool := range []harness.Tool{harness.Nulgrind, harness.PMDebugger, harness.Pmemcheck} {
		b.Run(tool.String(), func(b *testing.B) {
			var row harness.Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.MeasureMemcached(2000, 1, []harness.Tool{tool})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Slowdown(tool), "slowdown-x")
		})
	}
}

// BenchmarkFigure8Redis regenerates Fig. 8i.
func BenchmarkFigure8Redis(b *testing.B) {
	for _, tool := range []harness.Tool{harness.Nulgrind, harness.PMDebugger, harness.Pmemcheck} {
		b.Run(tool.String(), func(b *testing.B) {
			var row harness.Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.MeasureRedis(2000, []harness.Tool{tool})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Slowdown(tool), "slowdown-x")
		})
	}
}

// BenchmarkTable5Speedup reports the PMDebugger-over-Pmemcheck speedups.
func BenchmarkTable5Speedup(b *testing.B) {
	for _, name := range harness.MicroBenchNames() {
		b.Run(name, func(b *testing.B) {
			var row harness.Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.MeasureMicro(name, 2000, harness.Fig8Tools())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SpeedupOverPmemcheck(), "speedup-x")
			b.ReportMetric(row.SpeedupOverPmemcheckNoInstr(), "speedup-noinstr-x")
		})
	}
}

// BenchmarkSOTAComparison regenerates the §7.2 comparison with PMTest and
// XFDetector on replayed traces.
func BenchmarkSOTAComparison(b *testing.B) {
	rec := recordTrace(b, "b_tree", 2000)
	model := modelOf(b, "b_tree")
	b.Run("pmdebugger", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return core.New(core.Config{Model: model})
		})
	})
	b.Run("pmtest", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return baselines.NewPMTest(baselines.PMTestConfig{
				Watch: []string{"c0", "c1", "c2", "c3"},
			})
		})
	})
	b.Run("xfdetector", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return baselines.NewXFDetector(baselines.XFDetectorConfig{})
		})
	})
}

// BenchmarkTable6BugSuite runs the 78-case suite under each detector and
// reports the detection totals of Table 6.
func BenchmarkTable6BugSuite(b *testing.B) {
	for _, k := range bugsuite.AllDetectors() {
		b.Run(k.String(), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, c := range bugsuite.Cases() {
					found, err := bugsuite.Detects(k, c)
					if err != nil {
						b.Fatal(err)
					}
					if found {
						total++
					}
				}
			}
			b.ReportMetric(float64(total), "bugs-detected")
		})
	}
}

// BenchmarkFigure10Scalability regenerates the memcached thread sweep.
func BenchmarkFigure10Scalability(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			var row harness.Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.MeasureMemcached(4000, threads,
					[]harness.Tool{harness.PMDebugger, harness.Pmemcheck})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Slowdown(harness.PMDebugger), "pmdebugger-x")
			b.ReportMetric(row.Slowdown(harness.Pmemcheck), "pmemcheck-x")
		})
	}
}

// BenchmarkFigure11TreeSize reports the average AVL tree nodes per fence
// interval for both tools.
func BenchmarkFigure11TreeSize(b *testing.B) {
	for _, name := range []string{"b_tree", "hashmap_tx", "hashmap_atomic"} {
		rec := recordTrace(b, name, 2000)
		model := modelOf(b, name)
		b.Run(name, func(b *testing.B) {
			var pd, pc float64
			for i := 0; i < b.N; i++ {
				det := core.New(core.Config{Model: model})
				rec.Replay(det)
				pd = det.Report().Counters.AvgTreeNodes()
				pck := baselines.NewPmemcheck()
				rec.Replay(pck)
				pc = pck.Report().Counters.AvgTreeNodes()
			}
			b.ReportMetric(pd, "pmdebugger-nodes")
			b.ReportMetric(pc, "pmemcheck-nodes")
		})
	}
}

// BenchmarkReorganizations reports the §7.5 tree-reorganization counts.
func BenchmarkReorganizations(b *testing.B) {
	rec := recordTrace(b, "hashmap_atomic", 2000)
	b.Run("pmdebugger", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			det := core.New(core.Config{Model: rules.Epoch})
			rec.Replay(det)
			n = det.Report().Counters.TreeReorgs
		}
		b.ReportMetric(float64(n), "reorgs")
	})
	b.Run("pmemcheck", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			det := baselines.NewPmemcheck()
			rec.Replay(det)
			n = det.Report().Counters.TreeReorgs
		}
		b.ReportMetric(float64(n), "reorgs")
	})
}

// BenchmarkParallelReplay measures the sharded parallel trace-replay
// pipeline on the synthetic strand benchmark: the trace partitions along
// strand boundaries onto a GOMAXPROCS worker pool and the merged report is
// identical to sequential replay. The parallel sub-benchmark reports its
// speedup over the per-event sequential baseline (measured inline) as
// speedup-x; with 4+ cores the shards replay concurrently and the speedup
// scales with the core count, while on a single core it stays near 1x.
func BenchmarkParallelReplay(b *testing.B) {
	rec := recordTrace(b, "synth_strand", 20000)
	cfg := core.Config{Model: rules.Strand}
	workers := runtime.GOMAXPROCS(0)

	// Sanity: the merged parallel report must match sequential exactly.
	seqDet := core.New(cfg)
	rec.Replay(seqDet)
	if want, got := seqDet.Report().Summary(), core.ReplayParallel(rec.Events, cfg, workers).Summary(); want != got {
		b.Fatalf("parallel report differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}

	sequential := func() {
		det := core.New(cfg)
		rec.Replay(det)
		det.Report()
	}
	// A fixed-iteration baseline measured outside the timed loops, so the
	// batched and parallel sub-benchmarks can report speedup-x against it.
	baseline := func() time.Duration {
		const runs = 3
		best := time.Duration(0)
		for i := 0; i < runs; i++ {
			start := time.Now()
			sequential()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sequential()
		}
		b.ReportMetric(float64(rec.Len()), "events/run")
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			det := core.New(cfg)
			trace.ReplayEvents(rec.Events, det)
			det.Report()
			elapsed += time.Since(start)
		}
		b.ReportMetric(float64(baseline)/(float64(elapsed)/float64(b.N)), "speedup-x")
	})
	b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
		b.ReportAllocs()
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			core.ReplayParallel(rec.Events, cfg, workers)
			elapsed += time.Since(start)
		}
		b.ReportMetric(float64(baseline)/(float64(elapsed)/float64(b.N)), "speedup-x")
	})
}

// BenchmarkAblationHybridVsTreeOnly (A1): the same engine with the memory
// location array effectively disabled (capacity 1) degenerates to tree-only
// bookkeeping; the ns/op gap is the hybrid design's win.
func BenchmarkAblationHybridVsTreeOnly(b *testing.B) {
	rec := recordTrace(b, "hashmap_atomic", 2000)
	b.Run("hybrid", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch})
		})
	})
	b.Run("tree-only", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch, ArrayCapacity: 1})
		})
	})
}

// BenchmarkAblationFenceOrder (A3): tree-first vs array-first fence
// processing (§4.4 argues tree-first keeps insertions cheap).
func BenchmarkAblationFenceOrder(b *testing.B) {
	rec := recordTrace(b, "hashmap_tx", 2000)
	b.Run("tree-first", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch})
		})
	})
	b.Run("array-first", func(b *testing.B) {
		replayBench(b, rec, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch, ArrayFirstFence: true})
		})
	})
}

// BenchmarkAblationMergeThreshold (A4): sweep the reorganization threshold
// around the paper's 500.
func BenchmarkAblationMergeThreshold(b *testing.B) {
	rec := recordTrace(b, "hashmap_tx", 2000)
	for _, threshold := range []int{-1, 10, 500, 10000} {
		name := fmt.Sprintf("threshold-%d", threshold)
		if threshold == -1 {
			name = "threshold-never"
		}
		b.Run(name, func(b *testing.B) {
			replayBench(b, rec, func() baselines.Detector {
				return core.New(core.Config{Model: rules.Epoch, MergeThreshold: threshold})
			})
		})
	}
}

// BenchmarkAblationArrayCapacity (A5): sweep the memory location array
// capacity (the paper sizes it at 100,000).
func BenchmarkAblationArrayCapacity(b *testing.B) {
	rec := recordTrace(b, "b_tree", 2000)
	for _, capacity := range []int{16, 1024, core.DefaultArrayCapacity} {
		b.Run(fmt.Sprintf("capacity-%d", capacity), func(b *testing.B) {
			replayBench(b, rec, func() baselines.Detector {
				return core.New(core.Config{Model: rules.Epoch, ArrayCapacity: capacity})
			})
		})
	}
}

// BenchmarkAblationCollectiveMetadata (A2): quantifies the collective
// interval update by comparing a trace whose writebacks cover whole
// intervals (collective, the common case of Pattern 2) against the same
// store volume flushed field-by-field (dispersed), on the same engine.
func BenchmarkAblationCollectiveMetadata(b *testing.B) {
	mkTrace := func(dispersed bool) *trace.Recorder {
		rec := trace.NewRecorder(1 << 16)
		seq := uint64(0)
		emit := func(kind trace.Kind, addr, size uint64) {
			seq++
			rec.HandleEvent(trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
		}
		const base = 0x1000_0000
		for i := uint64(0); i < 2000; i++ {
			lineBase := base + (i%64)*64
			for f := uint64(0); f < 8; f++ {
				emit(trace.KindStore, lineBase+f*8, 8)
			}
			if dispersed {
				for f := uint64(0); f < 8; f++ {
					emit(trace.KindFlush, lineBase+f*8, 8)
				}
			} else {
				emit(trace.KindFlush, lineBase, 64)
			}
			emit(trace.KindFence, 0, 0)
		}
		emit(trace.KindEnd, 0, 0)
		return rec
	}
	collective := mkTrace(false)
	dispersed := mkTrace(true)
	b.Run("collective", func(b *testing.B) {
		replayBench(b, collective, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch})
		})
	})
	b.Run("dispersed", func(b *testing.B) {
		replayBench(b, dispersed, func() baselines.Detector {
			return core.New(core.Config{Model: rules.Epoch})
		})
	})
}

// BenchmarkHotPath measures the detector's per-event hot loop on the three
// synthetic traces of harness.HotPathTrace, with the cache-line index + MRU
// probe (indexed) and with the reference interval scan (scan,
// Config.DisableIndex). Both modes first replay once and must produce
// byte-identical reports; the indexed sub-benchmarks report their speedup
// over an inline-measured scan baseline as speedup-x.
func BenchmarkHotPath(b *testing.B) {
	for _, kind := range harness.HotPathKinds() {
		rec, err := harness.HotPathTrace(kind, 24)
		if err != nil {
			b.Fatal(err)
		}
		cfgIdx := core.Config{Model: rules.Strict}
		cfgScan := core.Config{Model: rules.Strict, DisableIndex: true}
		replay := func(cfg core.Config) {
			det := core.New(cfg)
			rec.Replay(det)
			det.Report()
		}

		// Sanity: the two paths must agree bug for bug.
		di, ds := core.New(cfgIdx), core.New(cfgScan)
		rec.Replay(di)
		rec.Replay(ds)
		if want, got := ds.Report().Summary(), di.Report().Summary(); want != got {
			b.Fatalf("%s: indexed and scan reports differ:\n--- scan ---\n%s--- indexed ---\n%s",
				kind, want, got)
		}

		baseline := func() time.Duration {
			best := time.Duration(0)
			for i := 0; i < 3; i++ {
				start := time.Now()
				replay(cfgScan)
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			return best
		}()

		b.Run(kind+"/scan", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(cfgScan)
			}
			b.ReportMetric(float64(rec.Len()), "events/run")
		})
		b.Run(kind+"/indexed", func(b *testing.B) {
			b.ReportAllocs()
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				replay(cfgIdx)
				elapsed += time.Since(start)
			}
			b.ReportMetric(float64(rec.Len()), "events/run")
			b.ReportMetric(float64(baseline)/(float64(elapsed)/float64(b.N)), "speedup-x")
		})
	}
}
