// Quickstart: instrument a tiny persistent-memory program with PMDebugger
// and find its crash-consistency bugs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func main() {
	// 1. Create a simulated persistent memory pool and attach the
	//    detector. This plays the role of `valgrind --tool=pmdebugger`.
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{Model: rules.Strict})
	pool.Attach(det)

	// 2. Run a PM program. Stores, cache writebacks and fences go through
	//    the instrumented context.
	c := pool.Ctx()
	counter := pool.Alloc(64)
	name := pool.Alloc(64)

	// Correct persist: store -> writeback -> fence.
	c.Store64(counter, 42)
	c.Flush(counter, 8)
	c.Fence()

	// Bug 1: the name record is written but never written back.
	c.StoreBytes(name, []byte("alice"))

	// Bug 2: a useless writeback — the counter is already durable, so this
	// CLF persists no prior store.
	c.Flush(counter, 8)
	c.Fence()

	// 3. End the program and print the report.
	pool.End()
	fmt.Print(det.Report().Summary())

	// The pool also models crash semantics: the counter survived, the
	// unflushed name did not.
	crashed := pool.Crash(pmem.CrashDropPending, 0)
	fmt.Printf("\nafter simulated crash: counter=%d name=%q\n",
		crashed.Ctx().Load64(counter),
		string(crashed.Ctx().LoadBytes(name, 5)))
}
