// customrule demonstrates PMDebugger's flexibility claim (§1, §4.5): the
// hierarchical design exposes its bookkeeping operations to user-defined
// rules, so a new detection rule is a few lines of Go rather than a change
// to the engine.
//
// The custom rule here flags "long-latency persistence": a store whose
// durability is not guaranteed within N fences of its execution — a
// performance smell on real PM (write-pending-queue pressure), not covered
// by the nine built-in rules.
//
//	go run ./examples/customrule
package main

import (
	"fmt"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// latencyRule tracks stores and reports those still undurable after
// MaxFences fences.
type latencyRule struct {
	MaxFences int

	open   map[uint64]int // store addr -> fences remaining
	fences int
}

func (r *latencyRule) Name() string { return "long-latency-persistence" }

func (r *latencyRule) OnEvent(ev trace.Event, q core.Query) {
	switch ev.Kind {
	case trace.KindStore:
		if r.open == nil {
			r.open = map[uint64]int{}
		}
		r.open[ev.Addr] = r.MaxFences
	case trace.KindFence:
		r.fences++
		for addr, left := range r.open {
			// The engine's bookkeeping answers durability: a location no
			// longer tracked is durable.
			if _, tracked := q.Tracked(ev.Strand, addr); !tracked {
				delete(r.open, addr)
				continue
			}
			if left == 1 {
				st, _ := q.Tracked(ev.Strand, addr)
				q.ReportBug(report.Bug{
					Type: report.NoDurability, // reuse the closest type
					Addr: addr, Size: st.Size, Seq: ev.Seq, Site: st.Site,
					Message: fmt.Sprintf("store not durable within %d fences", r.MaxFences),
				})
				delete(r.open, addr)
				continue
			}
			r.open[addr] = left - 1
		}
	}
}

func main() {
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{
		Model: rules.Strict,
		Rules: rules.RuleFlushNothing, // built-in rules mostly off: only the custom rule matters
	})
	det.AddRule(&latencyRule{MaxFences: 3})
	pool.Attach(det)

	c := pool.Ctx()
	fastVar := pool.Alloc(64)
	slowVar := pool.Alloc(64)

	// fastVar persists immediately; slowVar lags five fences behind.
	c.Store64(slowVar, 1)
	for i := 0; i < 5; i++ {
		c.Store64(fastVar, uint64(i))
		c.Persist(fastVar, 8)
	}
	c.Persist(slowVar, 8) // eventually durable — but too late for the rule

	pool.End()
	fmt.Print(det.Report().Summary())
}
