// kvstore reproduces the paper's §7.4 result on a real application: running
// the PM-aware memcached port under PMDebugger finds 19 previously
// unreported durability bugs — including the ITEM_set_cas bug of Fig. 9a —
// while the fixed port comes back clean.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func run(buggy bool) (*report.Report, error) {
	cache, err := memcached.New(memcached.Config{
		PoolSize: 8 << 20, HashBuckets: 1 << 12, UseCAS: true, Bugs: buggy,
	})
	if err != nil {
		return nil, err
	}
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	cache.PM().Attach(det)

	// Drive every command path, then a memslap-style get/set mix.
	if err := memslap.Run(cache, memslap.Config{Ops: 3000, Seed: 7}); err != nil {
		return nil, err
	}
	if err := memslap.ExerciseEvictions(cache, 6000); err != nil {
		return nil, err
	}
	if err := memslap.ExerciseAll(cache); err != nil {
		return nil, err
	}
	cache.PM().End()
	return det.Report(), nil
}

func main() {
	buggyRep, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== faithful memcached-pmem port ===")
	fmt.Printf("distinct durability bugs: %d\n", buggyRep.CountByType()[report.NoDurability])
	for _, b := range buggyRep.Bugs {
		if b.Type == report.NoDurability {
			fmt.Printf("  %s\n", b)
		}
	}

	fixedRep, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== fixed port ===")
	fmt.Print(fixedRep.Summary())
}
