// strandlru debugs a strand-persistency program (§2.3, §5): an LRU-style
// cache whose entry writes run in concurrent strands while an index update
// must persist after the entries it references. The persist-order
// requirement comes from the §4.5 configuration-file syntax.
//
//	go run ./examples/strandlru
package main

import (
	"fmt"
	"log"
	"strings"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// The debugger configuration file: entries must be durable before the
// index that points at them.
const orderConfig = `
# strand LRU persist-order requirements
order entries before index
`

func run(useJoin bool) {
	orders, err := rules.ParseOrderConfig(strings.NewReader(orderConfig))
	if err != nil {
		log.Fatal(err)
	}
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{Model: rules.Strand, Orders: orders})
	pool.Attach(det)

	entries := pool.Alloc(512)
	index := pool.Alloc(64)
	pool.RegisterNamed("entries", entries, 32)
	pool.RegisterNamed("index", index, 8)

	c := pool.Ctx()

	// Strand 0 writes the cache entries.
	payload := make([]byte, 32)
	copy(payload, "entry-0 payload")
	writer := c.StrandBegin()
	writer.StoreBytes(entries, payload)
	writer.Flush(entries, 32)

	if useJoin {
		// Correct version: finish and join the writer strand before the
		// index persists, establishing the cross-strand order.
		writer.Fence()
		writer.StrandEnd()
		c.JoinStrand()
	}

	// Strand 1 publishes the index.
	publisher := c.StrandBegin()
	publisher.Store64(index, entries)
	publisher.Flush(index, 8) // without the join, this races the writer
	publisher.Fence()
	publisher.StrandEnd()

	if !useJoin {
		writer.Fence()
		writer.StrandEnd()
	}

	pool.End()
	fmt.Print(det.Report().Summary())
}

func main() {
	fmt.Println("=== racing strands (no JoinStrand) ===")
	run(false)
	fmt.Println("\n=== ordered strands (with JoinStrand) ===")
	run(true)
}
