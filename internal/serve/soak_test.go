package serve

import (
	"context"
	"testing"
	"time"
)

// TestSoakManyClients is the acceptance soak: 8 concurrent clients, each a
// separate tenant streaming its own buggy strand-mode memcached trace into
// sharded lazy-drain sessions, every pulled report byte-identical to an
// offline replay, and /metrics agreeing with what was streamed. Run under
// -race in CI.
func TestSoakManyClients(t *testing.T) {
	srv := startServer(t, Config{})

	cfg := SoakConfig{
		Clients:  8,
		Ops:      1500,
		Threads:  4,
		Buggy:    true,
		Strands:  true,
		Drain:    DrainLazy,
		Shards:   4,
		Verify:   true,
		HTTPAddr: srv.HTTPAddr(),
	}
	res, err := Soak(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 8 || len(res.Tenants) != 8 {
		t.Fatalf("soak covered %d clients / %d tenants, want 8", res.Clients, len(res.Tenants))
	}
	if res.Events == 0 || res.EventsPerSec <= 0 {
		t.Fatalf("soak moved no events: %+v", res)
	}
	t.Logf("soak: %d clients, %d events in %v (%.0f events/sec)",
		res.Clients, res.Events, res.Elapsed, res.EventsPerSec)
}

// TestSoakEagerUnsharded covers the other drain/topology corner with a
// smaller fleet.
func TestSoakEagerUnsharded(t *testing.T) {
	srv := startServer(t, Config{})
	_, err := Soak(srv.Addr(), SoakConfig{
		Clients:  3,
		Ops:      500,
		Buggy:    true,
		Drain:    DrainEager,
		Verify:   true,
		HTTPAddr: srv.HTTPAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSoakSurvivesShutdownAfter ensures a soaked server still drains
// cleanly: Shutdown after the soak returns promptly with no error.
func TestSoakSurvivesShutdownAfter(t *testing.T) {
	srv := New(Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := Soak(srv.Addr(), SoakConfig{Clients: 2, Ops: 300}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("post-soak shutdown: %v", err)
	}
	m := srv.MetricsSnapshot()
	if m.ActiveSessions != 0 || m.TotalSessions != 2 || m.CleanSessions != 2 {
		t.Fatalf("post-soak metrics wrong: %+v", m)
	}
}
