package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// Options parameterizes a client session.
type Options struct {
	// Tenant names this client for the server's per-tenant metrics
	// ("default" when empty).
	Tenant string
	// Model is the persistency model of the streamed trace.
	Model rules.Model
	// Drain selects the server-side drain discipline (DrainEager default).
	Drain string
	// Shards > 1 requests a sharded detector session.
	Shards int
	// DialTimeout bounds the TCP connect + handshake (0 = 10s).
	DialTimeout time.Duration
}

func (o Options) hello() Hello {
	h := Hello{Tenant: o.Tenant, Model: o.Model, Drain: o.Drain, Shards: o.Shards}
	if h.Tenant == "" {
		h.Tenant = "default"
	}
	if h.Drain == "" {
		h.Drain = DrainEager
	}
	return h
}

// Session is a live client connection to a pmserved instance. It implements
// trace.Handler and trace.BatchHandler, so it attaches to an instrumented
// pmem.Pool (or any replay path) exactly like an in-process detector —
// events are encoded through a trace.Writer straight onto the socket.
// Write errors are sticky (the Writer's discipline) and surface from
// Report/Close.
type Session struct {
	conn net.Conn
	br   *bufio.Reader
	tw   *trace.Writer
	id   string
	done bool
}

// Dial connects to a server's trace address, performs the handshake and
// returns the streaming session.
func Dial(addr string, opt Options) (*Session, error) {
	timeout := opt.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", opt.hello().encode()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake write: %w", err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake read: %w", err)
	}
	line = trimEOL(line)
	var id string
	if _, err := fmt.Sscanf(line, "OK session=%s", &id); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: server refused session: %s", line)
	}
	conn.SetDeadline(time.Time{})
	tw, err := trace.NewWriter(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Session{conn: conn, br: br, tw: tw, id: id}, nil
}

func trimEOL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// ID returns the server-assigned session id (also the /report/<id> key).
func (s *Session) ID() string { return s.id }

// HandleEvent implements trace.Handler: the event is encoded onto the
// socket (errors are sticky; see Err).
func (s *Session) HandleEvent(ev trace.Event) { s.tw.HandleEvent(ev) }

// HandleBatch implements trace.BatchHandler.
func (s *Session) HandleBatch(evs []trace.Event) { s.tw.HandleBatch(evs) }

// Err returns the sticky stream-write error, or nil.
func (s *Session) Err() error { return s.tw.Err() }

// closeWrite half-closes the connection's write side, signalling clean end
// of stream to the server while keeping the read side open for the report
// frame. TCP connections support this; other transports get a full-close
// fallback (the server still finalizes, but the report is then only
// pullable over HTTP).
func (s *Session) closeWrite() error {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := s.conn.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Report finishes the stream (flushing staged records and half-closing the
// connection) and returns the server's final report summary. A non-nil
// error with a non-empty summary means the server finalized the session as
// failed — the summary then carries the failure entries.
func (s *Session) Report() (string, error) {
	if s.done {
		return "", fmt.Errorf("serve: session already closed")
	}
	s.done = true
	defer s.conn.Close()
	if err := s.tw.Flush(); err != nil {
		return "", err
	}
	if err := s.closeWrite(); err != nil {
		return "", fmt.Errorf("serve: close write: %w", err)
	}
	line, err := s.br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("serve: report frame read: %w", err)
	}
	status, size, err := parseReportFrame(line)
	if err != nil {
		return "", err
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(s.br, buf); err != nil {
		return "", fmt.Errorf("serve: report body read: %w", err)
	}
	if status != "ok" {
		return string(buf), fmt.Errorf("serve: session %s finalized as %s", s.id, status)
	}
	return string(buf), nil
}

// Close abandons the session without waiting for a report: staged records
// are flushed if possible and the connection closes. The server finalizes
// the session on its own; the report remains pullable over HTTP.
func (s *Session) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	err := s.tw.Flush()
	s.conn.Close()
	return err
}

var _ trace.BatchHandler = (*Session)(nil)
