package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/trace"
)

// SoakConfig parameterizes a many-client soak against a running server:
// each client records its own memslap-driven memcached trace, streams it as
// a separate tenant, and (optionally) checks the pulled report against an
// offline replay of the identical engine.
type SoakConfig struct {
	// Clients is the number of concurrent streaming clients (default 8).
	Clients int
	// Ops is memslap's per-client operation count (default 2000).
	Ops int
	// Threads is memslap's thread count per client (default 4).
	Threads int
	// Buggy enables the faithful buggy memcached port and walks every
	// command path, so each tenant's report carries real bugs.
	Buggy bool
	// Strands runs the caches in strand mode, making sessions shardable.
	Strands bool
	// Drain is the session drain discipline (DrainEager default).
	Drain string
	// Shards requests sharded sessions (needs Strands to take effect).
	Shards int
	// Verify checks every client's pulled report byte-for-byte against an
	// offline StreamTrace replay through an identically built engine.
	Verify bool
	// HTTPAddr, when set, is the server's HTTP address: the soak then also
	// cross-checks /metrics per-tenant event and bug counts.
	HTTPAddr string
}

func (c *SoakConfig) fill() {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Ops == 0 {
		c.Ops = 2000
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Drain == "" {
		c.Drain = DrainEager
	}
}

// SoakResult summarizes a soak run.
type SoakResult struct {
	Clients      int
	Events       int // total events streamed across all clients
	Elapsed      time.Duration
	EventsPerSec float64
	Tenants      []string
}

// soakClient is one prepared client: its recorded trace and expectations.
type soakClient struct {
	tenant  string
	opt     Options
	raw     []byte // encoded trace stream
	events  int
	expect  string // offline report summary (when verifying)
	expBugs int
}

// prepareSoakClients records one memcached trace per client and computes
// the offline expectation. Recording happens up front so the timed phase
// measures the server, not the workload generator.
func prepareSoakClients(cfg SoakConfig) ([]*soakClient, error) {
	clients := make([]*soakClient, cfg.Clients)
	for i := range clients {
		cache, err := memcached.New(memcached.Config{
			PoolSize:    16 << 20,
			HashBuckets: 4096,
			UseCAS:      true,
			Bugs:        cfg.Buggy,
			Strands:     cfg.Strands,
		})
		if err != nil {
			return nil, fmt.Errorf("soak client %d: %w", i, err)
		}
		rec := trace.NewRecorder(cfg.Ops * 8)
		cache.PM().Attach(rec)
		if cfg.Buggy {
			if err := memslap.ExerciseAll(cache); err != nil {
				return nil, fmt.Errorf("soak client %d exercise: %w", i, err)
			}
		}
		if err := memslap.Run(cache, memslap.Config{
			Ops:     cfg.Ops,
			Threads: cfg.Threads,
			Seed:    int64(1000 + i),
		}); err != nil {
			return nil, fmt.Errorf("soak client %d memslap: %w", i, err)
		}
		cache.PM().Detach(rec)

		var buf bytes.Buffer
		if err := trace.WriteTrace(&buf, rec.Events); err != nil {
			return nil, fmt.Errorf("soak client %d encode: %w", i, err)
		}
		sc := &soakClient{
			tenant: fmt.Sprintf("tenant%d", i),
			opt: Options{
				Tenant: fmt.Sprintf("tenant%d", i),
				Model:  cache.Model(),
				Drain:  cfg.Drain,
				Shards: cfg.Shards,
			},
			raw:    buf.Bytes(),
			events: rec.Len(),
		}
		if cfg.Verify {
			rep, err := Offline(bytes.NewReader(sc.raw), sc.opt)
			if err != nil {
				return nil, fmt.Errorf("soak client %d offline replay: %w", i, err)
			}
			sc.expect = rep.Summary()
			sc.expBugs = rep.Len()
		}
		clients[i] = sc
	}
	return clients, nil
}

// Soak runs the many-client soak against the server listening at addr.
// Every client streams its full recorded trace concurrently; with
// cfg.Verify each pulled report must be byte-identical to the offline
// replay, and with cfg.HTTPAddr the /metrics per-tenant counters must
// match what was streamed.
func Soak(addr string, cfg SoakConfig) (SoakResult, error) {
	cfg.fill()
	clients, err := prepareSoakClients(cfg)
	if err != nil {
		return SoakResult{}, err
	}
	return runSoak(addr, cfg, clients)
}

func runSoak(addr string, cfg SoakConfig, clients []*soakClient) (SoakResult, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	start := time.Now()
	for i, sc := range clients {
		wg.Add(1)
		go func(i int, sc *soakClient) {
			defer wg.Done()
			errs[i] = sc.stream(addr)
		}(i, sc)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := SoakResult{Clients: len(clients), Elapsed: elapsed}
	for i, sc := range clients {
		if errs[i] != nil {
			return res, fmt.Errorf("soak client %d: %w", i, errs[i])
		}
		res.Events += sc.events
		res.Tenants = append(res.Tenants, sc.tenant)
	}
	res.EventsPerSec = float64(res.Events) / elapsed.Seconds()

	if cfg.HTTPAddr != "" {
		if err := checkSoakMetrics(cfg.HTTPAddr, cfg, clients); err != nil {
			return res, err
		}
	}
	return res, nil
}

// stream sends the client's recorded trace and verifies the pulled report.
func (sc *soakClient) stream(addr string) error {
	sess, err := Dial(addr, sc.opt)
	if err != nil {
		return err
	}
	// Replay through the handler interface in slab-sized batches, the same
	// shape a live pmem.Pool attachment produces.
	evs, err := trace.ReadTrace(bytes.NewReader(sc.raw))
	if err != nil {
		sess.Close()
		return fmt.Errorf("re-decode recorded trace: %w", err)
	}
	for off := 0; off < len(evs); off += trace.StreamBatchSize {
		end := off + trace.StreamBatchSize
		if end > len(evs) {
			end = len(evs)
		}
		sess.HandleBatch(evs[off:end])
	}
	got, err := sess.Report()
	if err != nil {
		return err
	}
	if sc.expect != "" && got != sc.expect {
		return fmt.Errorf("tenant %s report differs from offline replay:\n--- server ---\n%s\n--- offline ---\n%s",
			sc.tenant, got, sc.expect)
	}
	return nil
}

// checkSoakMetrics pulls /metrics and cross-checks the per-tenant counters
// against what each client streamed.
func checkSoakMetrics(httpAddr string, cfg SoakConfig, clients []*soakClient) error {
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		return fmt.Errorf("soak metrics pull: %w", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("soak metrics decode: %w", err)
	}
	if m.DecodeErrors != 0 {
		return fmt.Errorf("soak: server reports %d decode errors", m.DecodeErrors)
	}
	if m.EventsPerSec <= 0 {
		return fmt.Errorf("soak: /metrics events_per_sec = %v, want > 0", m.EventsPerSec)
	}
	for _, sc := range clients {
		tm, ok := m.Tenants[sc.tenant]
		if !ok {
			return fmt.Errorf("soak: tenant %s missing from /metrics", sc.tenant)
		}
		if tm.Events != uint64(sc.events) {
			return fmt.Errorf("soak: tenant %s events = %d, want %d", sc.tenant, tm.Events, sc.events)
		}
		if cfg.Verify && tm.Bugs != sc.expBugs {
			return fmt.Errorf("soak: tenant %s bugs = %d, offline replay found %d", sc.tenant, tm.Bugs, sc.expBugs)
		}
		if tm.Failures != 0 {
			return fmt.Errorf("soak: tenant %s has %d failures on a clean stream", sc.tenant, tm.Failures)
		}
	}
	return nil
}
