package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// startServer boots a server on ephemeral ports and registers shutdown.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	srv := New(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// recordTrace drives a memcached instance and returns the encoded trace.
func recordTrace(t *testing.T, buggy, strands bool, ops int) ([]byte, rules.Model) {
	t.Helper()
	cache, err := memcached.New(memcached.Config{
		PoolSize:    16 << 20,
		HashBuckets: 1024,
		UseCAS:      true,
		Bugs:        buggy,
		Strands:     strands,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(ops * 8)
	cache.PM().Attach(rec)
	if buggy {
		if err := memslap.ExerciseAll(cache); err != nil {
			t.Fatal(err)
		}
	}
	if err := memslap.Run(cache, memslap.Config{Ops: ops, Threads: 2, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	cache.PM().Detach(rec)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, rec.Events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cache.Model()
}

// streamRaw sends pre-encoded trace bytes through a session.
func streamRaw(t *testing.T, sess *Session, raw []byte) {
	t.Helper()
	evs, err := trace.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sess.HandleBatch(evs)
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// waitSessionState polls until the named session leaves "active".
func waitSessionState(t *testing.T, srv *Server, id string) SessionInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, info := range srv.Sessions() {
			if info.ID == id && info.State != "active" {
				return info
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s never finished", id)
	return SessionInfo{}
}

// TestSessionRoundTrip: a buggy memcached trace streamed to the server must
// produce exactly the report an offline replay produces, and every HTTP
// surface must agree.
func TestSessionRoundTrip(t *testing.T) {
	raw, model := recordTrace(t, true, false, 500)
	srv := startServer(t, Config{})

	opt := Options{Tenant: "acme", Model: model}
	want, err := Offline(bytes.NewReader(raw), opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("offline replay of the buggy port found no bugs; test is vacuous")
	}

	sess, err := Dial(srv.Addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	got, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Summary() {
		t.Fatalf("served report differs from offline replay:\n--- served ---\n%s\n--- offline ---\n%s", got, want.Summary())
	}

	// /healthz
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// /metrics: events flowed, the tenant aggregated, bugs counted.
	var m Metrics
	getJSON(t, "http://"+srv.HTTPAddr()+"/metrics", &m)
	if m.EventsTotal == 0 || m.EventsPerSec <= 0 || m.BytesTotal == 0 {
		t.Fatalf("metrics did not move: %+v", m)
	}
	if m.DecodeErrors != 0 || m.HandlerPanics != 0 {
		t.Fatalf("clean session bumped error counters: %+v", m)
	}
	tm, ok := m.Tenants["acme"]
	if !ok || tm.Bugs != want.Len() || tm.Sessions != 1 || tm.Failures != 0 {
		t.Fatalf("tenant metrics wrong: %+v (want %d bugs)", tm, want.Len())
	}

	// /report/<id> serves the identical summary.
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/report/" + sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != want.Summary() {
		t.Fatalf("/report: %s, body differs=%v", resp.Status, string(body) != want.Summary())
	}
	if st := resp.Header.Get("X-Session-State"); st != "done" {
		t.Fatalf("/report state = %q, want done", st)
	}

	// /sessions lists it as done.
	var infos []SessionInfo
	getJSON(t, "http://"+srv.HTTPAddr()+"/sessions", &infos)
	if len(infos) != 1 || infos[0].State != "done" || infos[0].Bugs != want.Len() {
		t.Fatalf("sessions listing wrong: %+v", infos)
	}
}

// TestShardedSession: a strand-mode trace with shards requested runs the
// sharded engine and still matches the (equally sharded) offline replay.
func TestShardedSession(t *testing.T) {
	raw, model := recordTrace(t, true, true, 500)
	if model != rules.Strand {
		t.Fatalf("strand cache reports model %v", model)
	}
	srv := startServer(t, Config{})

	opt := Options{Tenant: "sharded", Model: model, Shards: 4, Drain: DrainLazy}
	want, err := Offline(bytes.NewReader(raw), opt)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := Dial(srv.Addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	got, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Summary() {
		t.Fatalf("sharded served report differs from offline replay:\n%s\nvs\n%s", got, want.Summary())
	}
	info := waitSessionState(t, srv, sess.ID())
	if info.Shards < 2 || info.Fallback != "" {
		t.Fatalf("session did not shard: %+v", info)
	}
}

// TestShardedFallback: requesting shards under a non-partition-safe model
// degrades loudly to a single engine instead of failing the session.
func TestShardedFallback(t *testing.T) {
	raw, model := recordTrace(t, false, false, 200) // strict model
	srv := startServer(t, Config{})

	opt := Options{Tenant: "fallback", Model: model, Shards: 4}
	want, err := Offline(bytes.NewReader(raw), opt)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Dial(srv.Addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	got, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Summary() {
		t.Fatal("degraded session report differs from offline replay")
	}
	info := waitSessionState(t, srv, sess.ID())
	if info.Shards != 1 || info.Fallback == "" {
		t.Fatalf("expected loud single-engine fallback, got %+v", info)
	}
}

// TestCorruptStream: garbage after the handshake fails the session with a
// failed report frame and bumps decode_errors — the server itself stays up.
func TestCorruptStream(t *testing.T) {
	srv := startServer(t, Config{})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s tenant=corrupt model=strict\n", ProtocolVersion)
	line, err := readLine(conn)
	if err != nil || !strings.HasPrefix(line, "OK session=") {
		t.Fatalf("handshake: %q %v", line, err)
	}
	conn.Write([]byte("NOTTRACEATALL"))
	conn.(*net.TCPConn).CloseWrite()

	line, err = readLine(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, size, err := parseReportFrame(line)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatal(err)
	}
	if status != "failed" || !strings.Contains(string(body), "detection failure") {
		t.Fatalf("status=%s body=%q, want failed with a failure entry", status, body)
	}

	var m Metrics
	getJSON(t, "http://"+srv.HTTPAddr()+"/metrics", &m)
	if m.DecodeErrors != 1 {
		t.Fatalf("decode_errors = %d, want 1", m.DecodeErrors)
	}
	tm := m.Tenants["corrupt"]
	if tm.Failures == 0 {
		t.Fatalf("tenant failure not counted: %+v", tm)
	}

	// The server still accepts and serves a healthy session afterwards.
	raw, model := recordTrace(t, false, false, 100)
	sess, err := Dial(srv.Addr(), Options{Tenant: "after", Model: model})
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	if _, err := sess.Report(); err != nil {
		t.Fatalf("session after corrupt stream: %v", err)
	}
}

// readLine reads one LF-terminated line without buffering past it.
func readLine(r io.Reader) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1)
	for {
		if _, err := r.Read(buf); err != nil {
			return sb.String(), err
		}
		if buf[0] == '\n' {
			return sb.String(), nil
		}
		sb.WriteByte(buf[0])
	}
}

// TestDisconnectMidSlab: a client that dies mid-record leaves a failed
// session whose report is still pullable over HTTP.
func TestDisconnectMidSlab(t *testing.T) {
	raw, _ := recordTrace(t, false, false, 200)
	srv := startServer(t, Config{})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "%s tenant=flaky model=strict\n", ProtocolVersion)
	line, err := readLine(conn)
	if err != nil || !strings.HasPrefix(line, "OK session=") {
		t.Fatalf("handshake: %q %v", line, err)
	}
	id := strings.TrimPrefix(line, "OK session=")
	conn.Write(raw[:len(raw)-17]) // cut mid-record
	conn.Close()                  // abrupt disconnect

	info := waitSessionState(t, srv, id)
	if info.State != "failed" || info.Failures == 0 {
		t.Fatalf("disconnected session not failed: %+v", info)
	}
	if info.Events == 0 {
		t.Fatal("no events delivered before the cut")
	}

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/report/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Session-State") != "failed" || !strings.Contains(string(body), "detection failure") {
		t.Fatalf("failed session report not pullable: state=%s body=%q",
			resp.Header.Get("X-Session-State"), body)
	}
}

// panicDetector blows up after a fixed number of events.
type panicDetector struct {
	n     int
	after int
}

func (p *panicDetector) Name() string { return "panicky" }
func (p *panicDetector) HandleEvent(trace.Event) {
	p.n++
	if p.n > p.after {
		panic("injected detector fault")
	}
}
func (p *panicDetector) Report() *report.Report { return report.New(p.Name()) }

// TestHandlerPanic: a detector panic mid-stream poisons that session only —
// the client gets a failed report frame, the panic counter bumps, and the
// server keeps serving.
func TestHandlerPanic(t *testing.T) {
	raw, model := recordTrace(t, false, false, 200)
	srv := startServer(t, Config{
		DetectorFactory: func(rules.Model) baselines.Detector {
			return &panicDetector{after: 10}
		},
	})

	sess, err := Dial(srv.Addr(), Options{Tenant: "boom", Model: model})
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	got, err := sess.Report()
	if err == nil {
		t.Fatal("panicked session reported ok")
	}
	if !strings.Contains(got, "poisoned") {
		t.Fatalf("poisoned report missing failure entry: %q", got)
	}

	var m Metrics
	getJSON(t, "http://"+srv.HTTPAddr()+"/metrics", &m)
	if m.HandlerPanics != 1 {
		t.Fatalf("handler_panics = %d, want 1", m.HandlerPanics)
	}
	info := waitSessionState(t, srv, sess.ID())
	if info.State != "failed" {
		t.Fatalf("panicked session state = %s", info.State)
	}
}

// TestShutdownHardDeadline: Shutdown force-closes wedged sessions when the
// context expires, poisoning them rather than hanging forever.
func TestShutdownHardDeadline(t *testing.T) {
	srv := New(Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s tenant=wedged model=strict\n", ProtocolVersion)
	line, err := readLine(conn)
	if err != nil || !strings.HasPrefix(line, "OK session=") {
		t.Fatalf("handshake: %q %v", line, err)
	}
	id := strings.TrimPrefix(line, "OK session=")
	// Stream the header and one whole record, then go silent: the session
	// is now wedged in a blocking read.
	raw, _ := recordTrace(t, false, false, 100)
	conn.Write(raw[:8+38])

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a wedged session")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v after the hard deadline", elapsed)
	}
	// The wedged session was finalized as failed on the way down.
	for _, info := range srv.Sessions() {
		if info.ID == id && info.State != "failed" {
			t.Fatalf("wedged session state = %s, want failed", info.State)
		}
	}
}

// TestHandshakeErrors: malformed handshakes get an ERR line and no session.
func TestHandshakeErrors(t *testing.T) {
	srv := startServer(t, Config{})
	cases := []string{
		"HELLO?\n",
		ProtocolVersion + " tenant=bad/slash model=strict\n",
		ProtocolVersion + " model=quantum\n",
		ProtocolVersion + " drain=sometimes\n",
		ProtocolVersion + " shards=minustwo\n",
	}
	for _, hs := range cases {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(conn, hs)
		line, _ := readLine(conn)
		conn.Close()
		if !strings.HasPrefix(line, "ERR ") {
			t.Fatalf("handshake %q: got %q, want ERR", strings.TrimSpace(hs), line)
		}
	}
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions registered from bad handshakes", n)
	}

	// Dial surfaces the refusal as an error.
	if _, err := Dial(srv.Addr(), Options{Tenant: "no/pe"}); err == nil {
		t.Fatal("Dial accepted a tenant the server must reject")
	}
}

// TestMaxShardsClamp: shard requests above the cap are clamped, not refused.
func TestMaxShardsClamp(t *testing.T) {
	raw, model := recordTrace(t, false, true, 200) // strand model
	srv := startServer(t, Config{MaxShards: 2})

	opt := Options{Tenant: "greedy", Model: model, Shards: 64}
	sess, err := Dial(srv.Addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	streamRaw(t, sess, raw)
	if _, err := sess.Report(); err != nil {
		t.Fatal(err)
	}
	info := waitSessionState(t, srv, sess.ID())
	if info.Shards > 2 {
		t.Fatalf("shards = %d, cap was 2", info.Shards)
	}
}
