package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// Metrics is the /metrics JSON document: fleet-wide throughput and health
// counters plus the per-tenant aggregation.
type Metrics struct {
	UptimeSec      float64 `json:"uptime_sec"`
	ActiveSessions int64   `json:"active_sessions"`
	TotalSessions  uint64  `json:"total_sessions"`
	CleanSessions  uint64  `json:"clean_sessions"`

	EventsTotal  uint64  `json:"events_total"`
	BytesTotal   uint64  `json:"bytes_total"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`

	DecodeErrors  uint64 `json:"decode_errors"`
	HandlerPanics uint64 `json:"handler_panics"`
	// BackpressureNanos is the cumulative time session readers spent
	// handing decoded batches to their pipelines — staging plus any
	// blocking on a full slab ring. Growing much faster than wall clock
	// means detection, not decode, is the bottleneck.
	BackpressureNanos int64 `json:"backpressure_nanos"`

	Tenants map[string]TenantMetrics `json:"tenants"`
}

// TenantMetrics aggregates one tenant's sessions.
type TenantMetrics struct {
	Sessions int    `json:"sessions"`
	Active   int    `json:"active"`
	Events   uint64 `json:"events"`
	Bugs     int    `json:"bugs"`
	Failures int    `json:"failures"`
}

// SessionInfo is one entry of the /sessions listing.
type SessionInfo struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"` // active, done, failed
	Drain    string `json:"drain"`
	Shards   int    `json:"shards"`
	Fallback string `json:"fallback,omitempty"` // why a sharded request degraded
	Events   uint64 `json:"events"`
	Bugs     int    `json:"bugs"`
	Failures int    `json:"failures"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) httpMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/report/", s.handleReport)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// MetricsSnapshot assembles the current Metrics document (also used by the
// HTTP handler, so in-process consumers need no HTTP round trip).
func (s *Server) MetricsSnapshot() Metrics {
	uptime := time.Since(s.start).Seconds()
	if uptime <= 0 {
		uptime = 1e-9
	}
	m := Metrics{
		UptimeSec:         uptime,
		ActiveSessions:    s.active.Load(),
		TotalSessions:     s.totalSess.Load(),
		CleanSessions:     s.drainedClean.Load(),
		EventsTotal:       s.events.Load(),
		BytesTotal:        s.bytes.Load(),
		DecodeErrors:      s.decodeErrs.Load(),
		HandlerPanics:     s.panics.Load(),
		BackpressureNanos: s.stageNanos.Load(),
		Tenants:           map[string]TenantMetrics{},
	}
	m.EventsPerSec = float64(m.EventsTotal) / uptime
	m.BytesPerSec = float64(m.BytesTotal) / uptime
	s.mu.Lock()
	for name, ts := range s.tenants {
		tm := TenantMetrics{
			Sessions: ts.sessions,
			Active:   ts.active,
			Events:   ts.events,
			Bugs:     ts.bugs,
			Failures: ts.failures,
		}
		// Fold the live event counters of still-active sessions in, so the
		// tenant view moves while a stream is in flight.
		for _, sess := range s.sessions {
			if sess.tenant == name {
				if st, _, _ := sess.snapshotState(); st == "active" {
					tm.Events += sess.events.Load()
				}
			}
		}
		m.Tenants[name] = tm
	}
	s.mu.Unlock()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot())
}

// Sessions lists every session, newest last.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		state, _, failErr := sess.snapshotState()
		sess.mu.Lock()
		info := SessionInfo{
			ID:       sess.id,
			Tenant:   sess.tenant,
			State:    state,
			Drain:    sess.hello.Drain,
			Shards:   sess.shards,
			Fallback: sess.fallback,
			Events:   sess.events.Load(),
			Bugs:     sess.bugs,
			Failures: sess.failures,
			Error:    failErr,
		}
		sess.mu.Unlock()
		out = append(out, info)
	}
	// Session ids embed a monotonic counter; sort by it for a stable view.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Sessions())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/report/")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	state, summary, failErr := sess.snapshotState()
	switch state {
	case "active":
		http.Error(w, "session still streaming", http.StatusConflict)
	default:
		if failErr != "" {
			w.Header().Set("X-Session-Error", failErr)
		}
		w.Header().Set("X-Session-State", state)
		w.Write([]byte(summary))
	}
}
