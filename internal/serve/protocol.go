// Package serve turns the detector into a long-lived, multi-tenant network
// service: pmserved accepts the streaming trace encoding
// (trace.Writer/Reader) over TCP from many concurrent clients, runs one
// detector session per connection on the existing core engines, and exposes
// an operational HTTP surface (health, metrics, report pull).
//
// The wire protocol is deliberately small. A connection opens with one
// line-based handshake:
//
//	client → server:  PMSERVE/1 tenant=<name> model=<model> drain=<eager|lazy> shards=<n>\n
//	server → client:  OK session=<id>\n        (or: ERR <reason>\n)
//
// followed by the raw binary trace stream (magic header + fixed-width
// records, exactly what trace.Writer emits). The client half-closes its
// write side at end of stream; the server finalizes the session's detector
// and answers with one report frame:
//
//	server → client:  REPORT <ok|failed> <len>\n<len bytes of report summary>
//
// A session whose stream is truncated or corrupt, or whose detector
// panicked mid-stream, is poisoned: its report carries report.Failure
// entries and the frame status is "failed". Reports are also pullable over
// HTTP at /report/<session> after the session finishes.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"pmdebugger/internal/rules"
)

// ProtocolVersion is the handshake token this server speaks.
const ProtocolVersion = "PMSERVE/1"

// Drain disciplines a session can request: eager runs detection as slabs
// arrive (a spare core per session overlaps decode and analysis); lazy
// parks the consumer and defers analysis WITCHER-style until the stream
// ends or the ring fills, minimizing CPU while the tenant is bursting.
const (
	DrainEager = "eager"
	DrainLazy  = "lazy"
)

// Hello is the parsed session handshake.
type Hello struct {
	// Tenant names the client for per-tenant metrics; sessions of the same
	// tenant aggregate. Letters, digits, '.', '_' and '-' only.
	Tenant string
	// Model is the persistency model of the streamed trace.
	Model rules.Model
	// Drain selects the session's drain discipline (DrainEager default).
	Drain string
	// Shards asks for a sharded detector session: when the model permits
	// partition-safe delivery (core.Shardable), the session fans out across
	// this many per-strand engines; otherwise it degrades — loudly, in the
	// session record — to a single engine.
	Shards int
}

// encode renders the handshake line (without the trailing newline).
func (h Hello) encode() string {
	var sb strings.Builder
	sb.WriteString(ProtocolVersion)
	fmt.Fprintf(&sb, " tenant=%s", h.Tenant)
	fmt.Fprintf(&sb, " model=%s", h.Model)
	drain := h.Drain
	if drain == "" {
		drain = DrainEager
	}
	fmt.Fprintf(&sb, " drain=%s", drain)
	if h.Shards > 1 {
		fmt.Fprintf(&sb, " shards=%d", h.Shards)
	}
	return sb.String()
}

// parseHello parses and validates a handshake line.
func parseHello(line string) (Hello, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != ProtocolVersion {
		return Hello{}, fmt.Errorf("serve: bad handshake (want %s ...)", ProtocolVersion)
	}
	h := Hello{Tenant: "default", Drain: DrainEager}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Hello{}, fmt.Errorf("serve: bad handshake field %q", f)
		}
		switch key {
		case "tenant":
			if !validTenant(val) {
				return Hello{}, fmt.Errorf("serve: bad tenant %q (letters, digits, '.', '_', '-')", val)
			}
			h.Tenant = val
		case "model":
			m, err := parseModel(val)
			if err != nil {
				return Hello{}, err
			}
			h.Model = m
		case "drain":
			if val != DrainEager && val != DrainLazy {
				return Hello{}, fmt.Errorf("serve: bad drain %q (eager or lazy)", val)
			}
			h.Drain = val
		case "shards":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Hello{}, fmt.Errorf("serve: bad shards %q", val)
			}
			h.Shards = n
		default:
			return Hello{}, fmt.Errorf("serve: unknown handshake field %q", key)
		}
	}
	return h, nil
}

func validTenant(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// parseModel is the inverse of rules.Model.String.
func parseModel(s string) (rules.Model, error) {
	switch s {
	case "strict":
		return rules.Strict, nil
	case "epoch":
		return rules.Epoch, nil
	case "strand":
		return rules.Strand, nil
	default:
		return 0, fmt.Errorf("serve: unknown model %q (strict, epoch or strand)", s)
	}
}

// parseReportFrame parses the "REPORT <status> <len>" header line.
func parseReportFrame(line string) (status string, size int, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || fields[0] != "REPORT" {
		return "", 0, fmt.Errorf("serve: bad report frame %q", strings.TrimSpace(line))
	}
	size, err = strconv.Atoi(fields[2])
	if err != nil || size < 0 {
		return "", 0, fmt.Errorf("serve: bad report length in %q", strings.TrimSpace(line))
	}
	return fields[1], size, nil
}
