package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the trace listener address ("127.0.0.1:0" picks a free port).
	Addr string
	// HTTPAddr is the operational HTTP listener address ("" disables it).
	HTTPAddr string
	// PipelineDepth is the per-session slab-ring depth
	// (0 = trace.DefaultPipelineDepth).
	PipelineDepth int
	// MaxShards caps a client's requested shard count (0 = 16). Requests
	// above the cap are clamped, not rejected: shard count never changes
	// the report, only how many consumer goroutines drain it.
	MaxShards int
	// HandshakeTimeout bounds how long a connection may sit before
	// completing its handshake line (0 = 10s).
	HandshakeTimeout time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// DetectorFactory overrides session detector construction — a test
	// hook for fault injection. nil means the core engines (core.New, or
	// core.NewSharded for sharded sessions).
	DetectorFactory func(model rules.Model) baselines.Detector
}

func (c *Config) fill() {
	if c.MaxShards == 0 {
		c.MaxShards = 16
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is a multi-tenant detection server: one detector session per
// accepted trace connection, plus the HTTP operational surface.
type Server struct {
	cfg Config

	ln     net.Listener
	httpLn net.Listener
	httpS  *http.Server
	start  time.Time

	mu       sync.Mutex
	sessions map[string]*session
	tenants  map[string]*tenantStats
	conns    map[net.Conn]struct{}
	nextID   uint64
	closing  bool

	wg sync.WaitGroup // accept loop + session handlers

	// Fleet-wide counters (atomics: bumped from session goroutines, read
	// by /metrics without the lock).
	events       atomic.Uint64
	bytes        atomic.Uint64
	decodeErrs   atomic.Uint64
	panics       atomic.Uint64
	active       atomic.Int64
	totalSess    atomic.Uint64
	stageNanos   atomic.Int64 // time spent handing decoded batches to pipelines (ring backpressure)
	drainedClean atomic.Uint64
}

// session is the server-side state of one tenant connection.
type session struct {
	id     string
	tenant string
	hello  Hello

	shards   int    // engines actually running (1 when degraded)
	fallback string // why a requested sharded session degraded ("" if not)

	events atomic.Uint64

	mu       sync.Mutex
	state    string // "active", "done", "failed"
	summary  string
	failErr  string
	bugs     int
	failures int
}

func (ss *session) snapshotState() (state, summary, failErr string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state, ss.summary, ss.failErr
}

// tenantStats aggregates sessions of one tenant for /metrics.
type tenantStats struct {
	sessions int
	active   int
	events   uint64
	bugs     int
	failures int
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	cfg.fill()
	return &Server{
		cfg:      cfg,
		sessions: map[string]*session{},
		tenants:  map[string]*tenantStats{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Start binds the trace (and, when configured, HTTP) listeners and begins
// accepting sessions. Use Addr/HTTPAddr for the bound addresses.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.start = time.Now()
	if s.cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: listen http %s: %w", s.cfg.HTTPAddr, err)
		}
		s.httpLn = hln
		s.httpS = &http.Server{Handler: s.httpMux()}
		go s.httpS.Serve(hln)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.cfg.Logf("pmserved: accepting traces on %s (http %s)", s.Addr(), s.HTTPAddr())
	return nil
}

// Addr returns the bound trace listener address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the bound HTTP listener address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Shutdown drains the server: it stops accepting new sessions, waits for
// active sessions to finish, and — when ctx expires first (the hard
// deadline) — force-closes the remaining connections, which poisons their
// sessions with a stream failure rather than leaving them wedged. The
// HTTP listener closes last, so reports stay pullable through the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosing := s.closing
	s.closing = true
	s.mu.Unlock()
	if !alreadyClosing && s.ln != nil {
		s.ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cfg.Logf("pmserved: drain deadline hit, force-closing %d connection(s)", len(s.snapshotConns()))
		for _, c := range s.snapshotConns() {
			c.Close()
		}
		<-done // sessions unwind promptly once their conns error out
	}
	if s.httpS != nil {
		s.httpS.Close()
	}
	return err
}

func (s *Server) snapshotConns() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// countingReader counts raw stream bytes into the server's byte counter.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}

// meteredSink hands decoded batches to the session's conduit, counting
// events and the time spent staging them (which includes any blocking on a
// full slab ring — the backpressure signal /metrics exposes).
type meteredSink struct {
	c    trace.Conduit
	sess *session
	srv  *Server
}

func (m *meteredSink) HandleEvent(ev trace.Event) {
	start := time.Now()
	m.c.HandleEvent(ev)
	m.srv.stageNanos.Add(time.Since(start).Nanoseconds())
	m.srv.events.Add(1)
	m.sess.events.Add(1)
}

func (m *meteredSink) HandleBatch(evs []trace.Event) {
	start := time.Now()
	m.c.HandleBatch(evs)
	m.srv.stageNanos.Add(time.Since(start).Nanoseconds())
	m.srv.events.Add(uint64(len(evs)))
	m.sess.events.Add(uint64(len(evs)))
}

// handleConn runs one session: handshake, stream, finalize, report frame.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	cr := &countingReader{r: conn, n: &s.bytes}
	br := bufio.NewReader(cr)
	line, err := br.ReadString('\n')
	if err != nil {
		fmt.Fprintf(conn, "ERR handshake read: %v\n", err)
		return
	}
	hs, err := parseHello(line)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hs.Shards > s.cfg.MaxShards {
		hs.Shards = s.cfg.MaxShards
	}

	eng := buildEngine(hs, s.cfg.DetectorFactory, s.cfg.PipelineDepth)
	sess := s.register(hs, eng)
	if eng.fallback != "" {
		s.cfg.Logf("pmserved: session %s requested %d shards but degraded to a single engine: %s",
			sess.id, hs.Shards, eng.fallback)
	}
	if _, err := fmt.Fprintf(conn, "OK session=%s\n", sess.id); err != nil {
		s.finish(sess, report.New("pmdebugger"), fmt.Errorf("handshake reply: %w", err))
		return
	}

	n, streamErr := trace.StreamTrace(br, &meteredSink{c: eng.conduit, sess: sess, srv: s})
	rep, failed := eng.finalize(streamErr)
	if streamErr != nil {
		s.decodeErrs.Add(1)
	}
	if eng.conduit.Err() != nil {
		s.panics.Add(1)
	}
	var sessErr error
	if failed {
		sessErr = fmt.Errorf("session failed (see report failures)")
		if streamErr != nil {
			sessErr = streamErr
		}
	} else {
		s.drainedClean.Add(1)
	}
	s.finish(sess, rep, sessErr)
	s.cfg.Logf("pmserved: session %s: %d events, %d bug(s), %d failure(s)",
		sess.id, n, rep.Len(), len(rep.Failures))

	status := "ok"
	if failed {
		status = "failed"
	}
	sum := rep.Summary()
	// The peer may already be gone (mid-slab disconnects); the report is
	// still retained for /report pull, so write errors are non-events.
	if _, err := fmt.Fprintf(conn, "REPORT %s %d\n", status, len(sum)); err == nil {
		io.WriteString(conn, sum)
	}
}

// register creates the session record and bumps tenant/fleet counters.
func (s *Server) register(hs Hello, eng engine) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &session{
		id:       fmt.Sprintf("%s-%d", hs.Tenant, s.nextID),
		tenant:   hs.Tenant,
		hello:    hs,
		shards:   eng.shards,
		fallback: eng.fallback,
		state:    "active",
	}
	s.sessions[sess.id] = sess
	ts := s.tenants[hs.Tenant]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[hs.Tenant] = ts
	}
	ts.sessions++
	ts.active++
	s.active.Add(1)
	s.totalSess.Add(1)
	return sess
}

// finish finalizes the session record with its report (or failure).
func (s *Server) finish(sess *session, rep *report.Report, err error) {
	sess.mu.Lock()
	sess.summary = rep.Summary()
	sess.bugs = rep.Len()
	sess.failures = len(rep.Failures)
	if err != nil {
		sess.state = "failed"
		sess.failErr = err.Error()
	} else {
		sess.state = "done"
	}
	sess.mu.Unlock()

	s.mu.Lock()
	ts := s.tenants[sess.tenant]
	ts.active--
	ts.events += sess.events.Load()
	ts.bugs += rep.Len()
	ts.failures += len(rep.Failures)
	s.mu.Unlock()
	s.active.Add(-1)
}

// engine bundles a session's detector with its delivery conduit.
type engine struct {
	det      baselines.Detector
	conduit  trace.Conduit
	shards   int
	fallback string // why a sharded request degraded ("" when it did not)
}

// buildEngine constructs the detector + conduit a handshake asks for: a
// sharded fan-out (core.NewSharded + trace.ShardedPipeline) when the
// client requested shards and the configuration is partition-safe, a
// single engine behind a trace.Pipeline otherwise. The drain discipline
// (eager/lazy) applies to every pipeline consumer. Offline uses the same
// constructor, which is what makes served reports comparable byte for byte
// with offline replays.
func buildEngine(hs Hello, factory func(rules.Model) baselines.Detector, depth int) engine {
	popts := trace.PipelineOptions{Lazy: hs.Drain == DrainLazy, Depth: depth}
	if factory != nil {
		det := factory(hs.Model)
		return engine{det: det, conduit: trace.NewPipelineOpts(det, popts), shards: 1}
	}
	cfg := core.Config{Model: hs.Model}
	if hs.Shards > 1 {
		sd := core.NewSharded(cfg, hs.Shards)
		if handlers := sd.ShardHandlers(); len(handlers) > 1 {
			return engine{
				det:     sd,
				conduit: trace.NewShardedPipeline(sd, handlers, popts),
				shards:  sd.Shards(),
			}
		}
		return engine{
			det:      sd,
			conduit:  trace.NewPipelineOpts(sd, popts),
			shards:   1,
			fallback: sd.FallbackReason(),
		}
	}
	det := core.New(cfg)
	return engine{det: det, conduit: trace.NewPipelineOpts(det, popts), shards: 1}
}

// finalize closes the conduit and produces the session's report. A handler
// panic caught by the pipeline poisons the session: the detector's state is
// unknown, so its report is replaced by a report.Failure. A stream error
// (truncated/corrupt trace, disconnect) keeps the partial report but marks
// it failed with a failure entry.
func (e engine) finalize(streamErr error) (rep *report.Report, failed bool) {
	e.conduit.Close()
	if perr := e.conduit.Err(); perr != nil {
		rep = report.New(e.det.Name())
		rep.AddFailure(fmt.Sprintf("session poisoned: %v", perr))
		if streamErr != nil {
			rep.AddFailure(fmt.Sprintf("trace stream: %v", streamErr))
		}
		return rep, true
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rep = report.New(e.det.Name())
				rep.AddFailure(fmt.Sprintf("detector finalization panicked: %v", r))
				failed = true
			}
		}()
		rep = e.det.Report()
	}()
	if failed {
		return rep, true
	}
	if streamErr != nil {
		rep.AddFailure(fmt.Sprintf("trace stream: %v", streamErr))
		return rep, true
	}
	return rep, false
}

// Offline replays an encoded trace from r through the exact engine and
// delivery path the server would run for a session with opt's handshake,
// returning the final report. It is the reference for the soak's
// byte-identity requirement: a served session's pulled report must equal
// Offline's summary of the same recorded trace.
func Offline(r io.Reader, opt Options) (*report.Report, error) {
	eng := buildEngine(opt.hello(), nil, 0)
	_, streamErr := trace.StreamTrace(r, eng.conduit)
	rep, failed := eng.finalize(streamErr)
	if streamErr != nil {
		return rep, streamErr
	}
	if failed {
		return rep, fmt.Errorf("serve: offline replay failed (see report failures)")
	}
	return rep, nil
}
