package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmdebugger/internal/intervals"
)

func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var prevEnd uint64
	first := true
	count := 0
	var walk func(n *node) (h int32, maxE uint64)
	walk = func(n *node) (int32, uint64) {
		if n == nil {
			return 0, 0
		}
		lh, lm := walk(n.left)
		// in-order position: disjoint, sorted
		if !first && n.item.Addr < prevEnd {
			t.Fatalf("overlap or misorder at %v (prev end %#x)", n.item.Range(), prevEnd)
		}
		first = false
		prevEnd = n.item.End()
		count++
		rh, rm := walk(n.right)
		if bf := lh - rh; bf < -1 || bf > 1 {
			t.Fatalf("unbalanced node %v bf=%d", n.item.Range(), bf)
		}
		h := 1 + max32(lh, rh)
		if n.height != h {
			t.Fatalf("height cache wrong at %v: %d vs %d", n.item.Range(), n.height, h)
		}
		m := n.item.End()
		if lm > m {
			m = lm
		}
		if rm > m {
			m = rm
		}
		if n.maxEnd != m {
			t.Fatalf("maxEnd cache wrong at %v: %#x vs %#x", n.item.Range(), n.maxEnd, m)
		}
		return h, m
	}
	walk(tr.root)
	if count != tr.size {
		t.Fatalf("size %d != counted %d", tr.size, count)
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Item{Addr: uint64(i * 16), Size: 8, Seq: uint64(i)})
	}
	checkInvariants(t, tr)
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	it, ok := tr.Lookup(5*16 + 3)
	if !ok || it.Addr != 5*16 {
		t.Fatalf("Lookup inside = %v %v", it, ok)
	}
	if _, ok := tr.Lookup(5*16 + 9); ok {
		t.Fatalf("Lookup in gap succeeded")
	}
	if _, ok := tr.Lookup(100 * 16); ok {
		t.Fatalf("Lookup past end succeeded")
	}
}

func TestInsertOverlapResolution(t *testing.T) {
	tr := New()
	tr.Insert(Item{Addr: 0, Size: 32, Seq: 1})
	// New store overlapping the middle supersedes those bytes.
	tr.Insert(Item{Addr: 8, Size: 8, Seq: 2})
	checkInvariants(t, tr)
	items := tr.Items()
	if len(items) != 3 {
		t.Fatalf("items = %v", items)
	}
	if items[0].Range() != intervals.R(0, 8) || items[0].Seq != 1 {
		t.Errorf("prefix wrong: %+v", items[0])
	}
	if items[1].Range() != intervals.R(8, 8) || items[1].Seq != 2 {
		t.Errorf("middle wrong: %+v", items[1])
	}
	if items[2].Range() != intervals.R(16, 16) || items[2].Seq != 1 {
		t.Errorf("suffix wrong: %+v", items[2])
	}
}

func TestInsertZeroSizeIgnored(t *testing.T) {
	tr := New()
	tr.Insert(Item{Addr: 10, Size: 0})
	tr.InsertDisjoint(Item{Addr: 10, Size: 0})
	if tr.Len() != 0 {
		t.Fatalf("zero-size items inserted")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	addrs := []uint64{50, 30, 70, 20, 40, 60, 80, 10, 90}
	for _, a := range addrs {
		tr.Insert(Item{Addr: a, Size: 4})
	}
	if !tr.Delete(50) {
		t.Fatalf("Delete(50) failed")
	}
	if tr.Delete(50) {
		t.Fatalf("double Delete(50) succeeded")
	}
	if tr.Delete(55) {
		t.Fatalf("Delete(55) of absent key succeeded")
	}
	checkInvariants(t, tr)
	if tr.Len() != len(addrs)-1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestVisitOverlappingOrder(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Addr: uint64(i * 10), Size: 5})
	}
	var got []uint64
	tr.VisitOverlapping(intervals.R(95, 120), func(it Item) { got = append(got, it.Addr) })
	// Ranges [90,95) not overlapping 95; [100,105)...[210,215) overlapping.
	want := []uint64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMarkFlushed(t *testing.T) {
	tr := New()
	tr.Insert(Item{Addr: 0, Size: 16})
	tr.Insert(Item{Addr: 32, Size: 16})
	tr.Insert(Item{Addr: 64, Size: 16})

	newly, already := tr.MarkFlushed(intervals.R(0, 48))
	if newly != 2 || already != 0 {
		t.Fatalf("first MarkFlushed = %d,%d", newly, already)
	}
	checkInvariants(t, tr)
	// [0,16) fully flushed; [32,48) fully flushed; [64,80) untouched.
	newly, already = tr.MarkFlushed(intervals.R(0, 16))
	if newly != 0 || already != 1 {
		t.Fatalf("redundant MarkFlushed = %d,%d", newly, already)
	}

	// Partial overlap splits.
	tr2 := New()
	tr2.Insert(Item{Addr: 100, Size: 20, Seq: 9})
	newly, already = tr2.MarkFlushed(intervals.R(90, 20)) // covers [100,110)
	if newly != 1 || already != 0 {
		t.Fatalf("partial MarkFlushed = %d,%d", newly, already)
	}
	checkInvariants(t, tr2)
	items := tr2.Items()
	if len(items) != 2 {
		t.Fatalf("after split items = %v", items)
	}
	if !items[0].Flushed || items[0].Range() != intervals.R(100, 10) {
		t.Errorf("flushed part wrong: %+v", items[0])
	}
	if items[1].Flushed || items[1].Range() != intervals.R(110, 10) {
		t.Errorf("unflushed part wrong: %+v", items[1])
	}
}

func TestRemoveFlushed(t *testing.T) {
	tr := New()
	for i := 0; i < 20; i++ {
		tr.Insert(Item{Addr: uint64(i * 16), Size: 8, Flushed: i%2 == 0})
	}
	removed := tr.RemoveFlushed()
	if len(removed) != 10 {
		t.Fatalf("removed %d", len(removed))
	}
	checkInvariants(t, tr)
	tr.Visit(func(it Item) {
		if it.Flushed {
			t.Fatalf("flushed item %v survived", it.Range())
		}
	})
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestRemoveIf(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(Item{Addr: uint64(i * 16), Size: 8, Epoch: i < 5})
	}
	removed := tr.RemoveIf(func(it Item) bool { return it.Epoch })
	if len(removed) != 5 || tr.Len() != 5 {
		t.Fatalf("RemoveIf removed %d, len %d", len(removed), tr.Len())
	}
	checkInvariants(t, tr)
}

func TestMergeCoalesces(t *testing.T) {
	tr := New()
	// Three adjacent unflushed records and one flushed record.
	tr.Insert(Item{Addr: 0, Size: 8, Seq: 1})
	tr.Insert(Item{Addr: 8, Size: 8, Seq: 2})
	tr.Insert(Item{Addr: 16, Size: 8, Seq: 3})
	tr.Insert(Item{Addr: 24, Size: 8, Seq: 4, Flushed: true})
	eliminated := tr.Merge()
	if eliminated != 2 {
		t.Fatalf("eliminated = %d", eliminated)
	}
	checkInvariants(t, tr)
	items := tr.Items()
	if len(items) != 2 {
		t.Fatalf("items after merge = %v", items)
	}
	if items[0].Range() != intervals.R(0, 24) || items[0].Seq != 3 {
		t.Errorf("merged item wrong: %+v", items[0])
	}
	if !items[1].Flushed {
		t.Errorf("flushed item merged away: %+v", items[1])
	}
	st := tr.Stats()
	if st.Merges != 2 || st.Reorgs == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Merging again is a no-op.
	if tr.Merge() != 0 {
		t.Errorf("second merge eliminated nodes")
	}
}

func TestMergeRespectsEpochAndStrand(t *testing.T) {
	tr := New()
	tr.Insert(Item{Addr: 0, Size: 8, Epoch: true, Epochs: 1})
	tr.Insert(Item{Addr: 8, Size: 8, Epoch: true, Epochs: 2})
	tr.Insert(Item{Addr: 16, Size: 8, Strand: 1})
	tr.Insert(Item{Addr: 24, Size: 8, Strand: 2})
	if n := tr.Merge(); n != 0 {
		t.Fatalf("merged across epoch/strand boundaries: %d", n)
	}
}

func TestClear(t *testing.T) {
	tr := New()
	tr.Insert(Item{Addr: 0, Size: 8})
	tr.Clear()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Clear failed")
	}
	if tr.Stats().Inserts != 1 {
		t.Fatalf("Clear dropped stats")
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New()
	const n = 4096
	for i := 0; i < n; i++ {
		tr.InsertDisjoint(Item{Addr: uint64(i * 8), Size: 8})
	}
	// AVL height bound: 1.44*log2(n+2). For 4096, ~18.
	if h := tr.Height(); h > 18 {
		t.Fatalf("height %d too large for %d sequential inserts", h, n)
	}
	checkInvariants(t, tr)
}

func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	ref := map[uint64]Item{} // start addr -> item, kept disjoint manually
	for op := 0; op < 3000; op++ {
		switch rng.Intn(3) {
		case 0: // insert
			it := Item{Addr: uint64(rng.Intn(2000)), Size: uint64(rng.Intn(16) + 1), Seq: uint64(op)}
			tr.Insert(it)
			// reference: remove overlapped portions
			for a, old := range ref {
				if old.Range().Overlaps(it.Range()) {
					delete(ref, a)
					for _, rem := range old.Range().Subtract(it.Range()) {
						keep := old
						keep.Addr, keep.Size = rem.Addr, rem.Size
						ref[keep.Addr] = keep
					}
				}
			}
			ref[it.Addr] = it
		case 1: // delete by exact addr
			if len(ref) == 0 {
				continue
			}
			var addrs []uint64
			for a := range ref {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			a := addrs[rng.Intn(len(addrs))]
			if !tr.Delete(a) {
				t.Fatalf("op %d: Delete(%d) failed but present in ref", op, a)
			}
			delete(ref, a)
		case 2: // lookup
			a := uint64(rng.Intn(2100))
			_, got := tr.Lookup(a)
			want := false
			for _, it := range ref {
				if it.Range().ContainsAddr(a) {
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("op %d: Lookup(%d) = %v, want %v", op, a, got, want)
			}
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != len(ref) {
		t.Fatalf("final size %d vs ref %d", tr.Len(), len(ref))
	}
}

// Property: after any insert sequence the tree holds disjoint sorted ranges
// and total coverage equals the merged coverage of the same inserts applied
// newest-wins.
func TestQuickInsertDisjointness(t *testing.T) {
	f := func(seeds []uint16) bool {
		tr := New()
		for i, s := range seeds {
			tr.Insert(Item{Addr: uint64(s % 512), Size: uint64(s%31) + 1, Seq: uint64(i)})
		}
		var prevEnd uint64
		ok := true
		first := true
		tr.Visit(func(it Item) {
			if !first && it.Addr < prevEnd {
				ok = false
			}
			first = false
			prevEnd = it.End()
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MarkFlushed then RemoveFlushed leaves no byte of the flushed
// range tracked.
func TestQuickFlushRemove(t *testing.T) {
	f := func(seeds []uint16, fa, fs uint16) bool {
		tr := New()
		for i, s := range seeds {
			tr.Insert(Item{Addr: uint64(s % 512), Size: uint64(s%31) + 1, Seq: uint64(i)})
		}
		fr := intervals.R(uint64(fa%512), uint64(fs%64)+1)
		tr.MarkFlushed(fr)
		tr.RemoveFlushed()
		bad := false
		tr.VisitOverlapping(fr, func(it Item) { bad = true })
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.InsertDisjoint(Item{Addr: uint64(i) * 8, Size: 8})
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := 0; i < 1<<16; i++ {
		tr.InsertDisjoint(Item{Addr: uint64(i) * 8, Size: 8})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Lookup(uint64(i%(1<<16)) * 8)
	}
}

// insertAllItems compares an InsertAll call against the reference semantics
// of inserting each item sequentially, checking both final contents and tree
// invariants.
func insertAllMatchesSequential(t *testing.T, pre, batch []Item) {
	t.Helper()
	bulk, seq := New(), New()
	for _, it := range pre {
		bulk.Insert(it)
		seq.Insert(it)
	}
	bulk.InsertAll(batch)
	for _, it := range batch {
		seq.Insert(it)
	}
	checkInvariants(t, bulk)
	got, want := bulk.Items(), seq.Items()
	if len(got) != len(want) {
		t.Fatalf("InsertAll: %d items, sequential: %d\nbulk: %v\nseq:  %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d differs: bulk %+v vs seq %+v", i, got[i], want[i])
		}
	}
	if bs, ss := bulk.Stats(), seq.Stats(); bs.Inserts != ss.Inserts && disjointFixture(pre, batch) {
		t.Fatalf("disjoint batch insert count diverged: bulk %d vs seq %d", bs.Inserts, ss.Inserts)
	}
}

// disjointFixture reports whether all records across pre and batch are
// pairwise disjoint and non-empty (the bulk fast path's precondition).
func disjointFixture(pre, batch []Item) bool {
	var all []Item
	for _, it := range append(append([]Item{}, pre...), batch...) {
		if it.Size == 0 {
			return false
		}
		all = append(all, it)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Addr < all[j].Addr })
	for i := 1; i < len(all); i++ {
		if all[i].Addr < all[i-1].End() {
			return false
		}
	}
	return true
}

func TestInsertAllDisjointBulk(t *testing.T) {
	// Large disjoint batch into an empty tree: the bulk build path.
	batch := make([]Item, 0, 64)
	for i := 63; i >= 0; i-- { // deliberately unsorted input
		batch = append(batch, Item{Addr: uint64(i * 32), Size: 16, Seq: uint64(i)})
	}
	insertAllMatchesSequential(t, nil, batch)

	tr := New()
	tr.InsertAll(batch)
	if tr.Len() != 64 {
		t.Fatalf("len %d after bulk insert, want 64", tr.Len())
	}
	if rot := tr.Stats().Rotations; rot != 0 {
		t.Fatalf("bulk build performed %d rotations, want 0", rot)
	}
	if h, max := tr.Height(), 7; h > max {
		t.Fatalf("bulk-built tree height %d exceeds %d for 64 items", h, max)
	}
}

func TestInsertAllDisjointFromExisting(t *testing.T) {
	pre := []Item{{Addr: 0x10, Size: 8}, {Addr: 0x100, Size: 8}, {Addr: 0x1000, Size: 8}}
	batch := make([]Item, 0, 32)
	for i := 0; i < 32; i++ {
		batch = append(batch, Item{Addr: 0x2000 + uint64(i*16), Size: 8, Seq: uint64(i)})
	}
	insertAllMatchesSequential(t, pre, batch)
}

func TestInsertAllOverlappingFallback(t *testing.T) {
	// Batch overlapping both itself and the tree: must fall back to the
	// sequential supersede semantics (later item wins the overlapped bytes).
	pre := []Item{{Addr: 0x100, Size: 64, Seq: 1}}
	batch := make([]Item, 0, 24)
	for i := 0; i < 24; i++ {
		batch = append(batch, Item{Addr: 0x100 + uint64(i*8), Size: 24, Seq: uint64(10 + i)})
	}
	insertAllMatchesSequential(t, pre, batch)
}

func TestInsertAllSmallAndEmpty(t *testing.T) {
	insertAllMatchesSequential(t, nil, nil)
	insertAllMatchesSequential(t, nil, []Item{{Addr: 8, Size: 8}})
	// Zero-size items are ignored on both paths.
	insertAllMatchesSequential(t, nil, []Item{{Addr: 8, Size: 8}, {Addr: 64, Size: 0}, {Addr: 128, Size: 8}})
}

func TestInsertAllRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var pre, batch []Item
		for i := 0; i < rng.Intn(8); i++ {
			pre = append(pre, Item{Addr: uint64(rng.Intn(1024)), Size: uint64(rng.Intn(48) + 1), Seq: uint64(i)})
		}
		for i := 0; i < rng.Intn(40); i++ {
			batch = append(batch, Item{Addr: uint64(rng.Intn(1024)), Size: uint64(rng.Intn(48)), Seq: uint64(100 + i)})
		}
		insertAllMatchesSequential(t, pre, batch)
	}
}
