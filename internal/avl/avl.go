// Package avl implements an address-range-keyed, self-balancing AVL tree
// used for bookkeeping memory-location persistency status.
//
// Every detector in this repository that keeps long-lived location records
// uses this tree: PMDebugger stores locations whose durability is not
// guaranteed in the short term (§4.1), while the Pmemcheck baseline keeps
// every location here. Nodes are augmented with the maximum range end of
// their subtree so overlap queries prune aggressively (an interval tree).
//
// The tree counts its structural maintenance work (rotations, merges,
// reorganizations) because the paper's key insight (§7.5) is quantified in
// exactly those terms.
package avl

import (
	"sort"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/trace"
)

// Item is one tracked memory location: the address range written by a store
// together with its persistency status and provenance.
type Item struct {
	Addr    uint64
	Size    uint64
	Seq     uint64       // sequence number of the store that created it
	Site    trace.SiteID // source site of the store
	Strand  int32        // strand section the store came from
	Flushed bool         // persisted by a CLF since the last store
	Epoch   bool         // store happened inside an epoch section (§5.1)
	Epochs  int32        // id of the epoch section, -1 outside any epoch
	// Reported marks records a rule has already reported a bug for, so
	// later rules do not double-report the same missing durability.
	Reported bool
}

// Range returns the item's address range.
func (it Item) Range() intervals.Range { return intervals.R(it.Addr, it.Size) }

// End returns the first address past the item.
func (it Item) End() uint64 { return it.Addr + it.Size }

type node struct {
	item        Item
	left, right *node
	height      int32
	maxEnd      uint64
}

// Stats counts the structural work the tree has performed. Rotations and
// merge reorganizations are the "tree reorganization" overhead of §2.2/§7.5.
type Stats struct {
	Inserts   uint64
	Deletes   uint64
	Rotations uint64
	Merges    uint64 // nodes coalesced by Merge
	Reorgs    uint64 // reorganization passes (rotations + merge passes)
}

// Tree is an AVL interval tree of Items keyed by start address. Items with
// equal start addresses are not allowed; Insert resolves overlaps first, so
// the tree always holds pairwise-disjoint ranges.
type Tree struct {
	root  *node
	size  int
	stats Stats
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Stats returns a copy of the maintenance counters.
func (t *Tree) Stats() Stats { return t.stats }

// Height returns the height of the tree (0 for empty).
func (t *Tree) Height() int { return int(height(t.root)) }

func height(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.height
}

func maxEnd(n *node) uint64 {
	if n == nil {
		return 0
	}
	return n.maxEnd
}

func (n *node) update() {
	n.height = 1 + max32(height(n.left), height(n.right))
	n.maxEnd = n.item.End()
	if l := maxEnd(n.left); l > n.maxEnd {
		n.maxEnd = l
	}
	if r := maxEnd(n.right); r > n.maxEnd {
		n.maxEnd = r
	}
}

func (t *Tree) rotateLeft(n *node) *node {
	t.stats.Rotations++
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func (t *Tree) rotateRight(n *node) *node {
	t.stats.Rotations++
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func (t *Tree) balance(n *node) *node {
	n.update()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

// insertRaw inserts an item assuming its range is disjoint from every item
// already in the tree.
func (t *Tree) insertRaw(n *node, it Item) *node {
	if n == nil {
		t.size++
		t.stats.Inserts++
		nn := &node{item: it}
		nn.update()
		return nn
	}
	if it.Addr < n.item.Addr {
		n.left = t.insertRaw(n.left, it)
	} else {
		n.right = t.insertRaw(n.right, it)
	}
	return t.balance(n)
}

// Insert adds a location record. Any existing records overlapping the new
// range are truncated or removed first: a fresh store supersedes older
// bookkeeping for the bytes it covers (the overlapped bytes take the new
// store's status; non-overlapped remainders keep the old status).
func (t *Tree) Insert(it Item) {
	if it.Size == 0 {
		return
	}
	r := it.Range()
	overlapped := t.CollectOverlapping(r)
	for _, old := range overlapped {
		t.deleteExact(old.Addr)
		for _, rem := range old.Range().Subtract(r) {
			keep := old
			keep.Addr, keep.Size = rem.Addr, rem.Size
			t.root = t.insertRaw(t.root, keep)
		}
	}
	t.root = t.insertRaw(t.root, it)
}

// InsertAll adds a batch of records with the same semantics as calling
// Insert for each item in order (a later item supersedes earlier bookkeeping
// for the bytes it covers, including earlier items of the same batch). Large
// batches whose records are pairwise disjoint and disjoint from the existing
// tree take a bulk build-from-sorted path that pays tree maintenance once —
// no per-item rebalancing — which is the common shape of fence-time array
// redistribution (§4.4). Conflicting or small batches fall back to per-item
// insertion.
func (t *Tree) InsertAll(items []Item) {
	const bulkMin = 16
	if len(items) >= bulkMin && len(items)*8 >= t.size {
		if merged, ok := t.disjointUnion(items); ok {
			t.stats.Inserts += uint64(len(merged) - t.size)
			t.rebuild(merged)
			return
		}
	}
	for _, it := range items {
		t.Insert(it)
	}
}

// disjointUnion returns the address-sorted union of the tree's records and
// the non-empty items, or ok=false when any two records overlap (the bulk
// path does not apply and the caller must fold items in one at a time).
func (t *Tree) disjointUnion(items []Item) ([]Item, bool) {
	batch := make([]Item, 0, len(items))
	for _, it := range items {
		if it.Size > 0 {
			batch = append(batch, it)
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Addr < batch[j].Addr })
	for i := 1; i < len(batch); i++ {
		if batch[i].Addr < batch[i-1].End() {
			return nil, false
		}
	}
	existing := t.Items()
	merged := make([]Item, 0, len(existing)+len(batch))
	i, j := 0, 0
	for i < len(existing) && j < len(batch) {
		if existing[i].Addr < batch[j].Addr {
			merged = append(merged, existing[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, existing[i:]...)
	merged = append(merged, batch[j:]...)
	for k := 1; k < len(merged); k++ {
		if merged[k].Addr < merged[k-1].End() {
			return nil, false
		}
	}
	return merged, true
}

// InsertDisjoint adds a record the caller guarantees does not overlap any
// existing record. It skips the overlap resolution pass; the guarantee is
// the caller's responsibility (used on the hot path when re-distributing
// array entries that were already resolved against the tree).
func (t *Tree) InsertDisjoint(it Item) {
	if it.Size == 0 {
		return
	}
	t.root = t.insertRaw(t.root, it)
}

// deleteExact removes the node whose item starts at addr. It reports whether
// a node was removed.
func (t *Tree) deleteExact(addr uint64) bool {
	var removed bool
	t.root = t.deleteNode(t.root, addr, &removed)
	if removed {
		t.size--
		t.stats.Deletes++
	}
	return removed
}

func (t *Tree) deleteNode(n *node, addr uint64, removed *bool) *node {
	if n == nil {
		return nil
	}
	switch {
	case addr < n.item.Addr:
		n.left = t.deleteNode(n.left, addr, removed)
	case addr > n.item.Addr:
		n.right = t.deleteNode(n.right, addr, removed)
	default:
		*removed = true
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.item = succ.item
		var dummy bool
		n.right = t.deleteNode(n.right, succ.item.Addr, &dummy)
	}
	return t.balance(n)
}

// Delete removes the record starting exactly at addr, reporting success.
func (t *Tree) Delete(addr uint64) bool { return t.deleteExact(addr) }

// Lookup returns the record containing addr, if any.
func (t *Tree) Lookup(addr uint64) (Item, bool) {
	n := t.root
	for n != nil {
		if n.item.Range().ContainsAddr(addr) {
			return n.item, true
		}
		if n.left != nil && n.left.maxEnd > addr {
			// The containing record, if it exists, starts at or before addr;
			// records to the right start after addr and cannot contain it
			// unless addr >= their start, so descend left first.
			if addr < n.item.Addr {
				n = n.left
				continue
			}
			// addr is past this node's range: it could be in either subtree.
			if it, ok := lookupRec(n.left, addr); ok {
				return it, true
			}
			n = n.right
			continue
		}
		if addr < n.item.Addr {
			n = n.left
		} else {
			n = n.right
		}
	}
	return Item{}, false
}

func lookupRec(n *node, addr uint64) (Item, bool) {
	if n == nil || n.maxEnd <= addr {
		return Item{}, false
	}
	if it, ok := lookupRec(n.left, addr); ok {
		return it, true
	}
	if n.item.Range().ContainsAddr(addr) {
		return n.item, true
	}
	if addr >= n.item.Addr {
		return lookupRec(n.right, addr)
	}
	return Item{}, false
}

// VisitOverlapping calls fn for every record overlapping r, in address
// order. fn must not mutate the tree; use CollectOverlapping to gather
// records before mutating.
func (t *Tree) VisitOverlapping(r intervals.Range, fn func(Item)) {
	visitOverlap(t.root, r, fn)
}

func visitOverlap(n *node, r intervals.Range, fn func(Item)) {
	if n == nil || n.maxEnd <= r.Addr {
		return
	}
	visitOverlap(n.left, r, fn)
	if n.item.Range().Overlaps(r) {
		fn(n.item)
	}
	if n.item.Addr < r.End() {
		visitOverlap(n.right, r, fn)
	}
}

// CollectOverlapping returns all records overlapping r in address order.
func (t *Tree) CollectOverlapping(r intervals.Range) []Item {
	var out []Item
	t.VisitOverlapping(r, func(it Item) { out = append(out, it) })
	return out
}

// Visit calls fn for every record in address order.
func (t *Tree) Visit(fn func(Item)) { visitAll(t.root, fn) }

func visitAll(n *node, fn func(Item)) {
	if n == nil {
		return
	}
	visitAll(n.left, fn)
	fn(n.item)
	visitAll(n.right, fn)
}

// Items returns all records in address order.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	t.Visit(func(it Item) { out = append(out, it) })
	return out
}

// MarkFlushed updates the flush status of every record overlapping r.
// Fully covered records are marked flushed in place. Partially covered
// records are split: the covered sub-range becomes a flushed record, the
// remainder keeps its previous status (§4.3). It returns the number of
// records whose bytes were (at least partially) newly flushed and the number
// of overlapped records that were already entirely flushed (redundant-flush
// rule input).
func (t *Tree) MarkFlushed(r intervals.Range) (newlyFlushed, alreadyFlushed int) {
	overlapped := t.CollectOverlapping(r)
	for _, old := range overlapped {
		if old.Flushed {
			alreadyFlushed++
			continue
		}
		newlyFlushed++
		t.deleteExact(old.Addr)
		covered := old.Range().Intersect(r)
		fl := old
		fl.Addr, fl.Size = covered.Addr, covered.Size
		fl.Flushed = true
		t.root = t.insertRaw(t.root, fl)
		for _, rem := range old.Range().Subtract(r) {
			keep := old
			keep.Addr, keep.Size = rem.Addr, rem.Size
			t.root = t.insertRaw(t.root, keep)
		}
	}
	return newlyFlushed, alreadyFlushed
}

// RemoveFlushed deletes every record marked flushed (fence processing,
// §4.4) and returns them.
func (t *Tree) RemoveFlushed() []Item {
	var flushed []Item
	t.Visit(func(it Item) {
		if it.Flushed {
			flushed = append(flushed, it)
		}
	})
	for _, it := range flushed {
		t.deleteExact(it.Addr)
	}
	return flushed
}

// RemoveIf deletes every record for which pred returns true and returns the
// removed records in address order.
func (t *Tree) RemoveIf(pred func(Item) bool) []Item {
	var hit []Item
	t.Visit(func(it Item) {
		if pred(it) {
			hit = append(hit, it)
		}
	})
	for _, it := range hit {
		t.deleteExact(it.Addr)
	}
	return hit
}

// Merge coalesces adjacent records that share flush status, epoch flag,
// strand and source site into single records covering the union range. This
// is the expensive reorganization the paper performs only past a node-count
// threshold (§4.4). Site equality is required so that merging never
// destroys bug attribution: two distinct buggy sites must stay two records.
// It returns the number of nodes eliminated.
func (t *Tree) Merge() int {
	if t.size < 2 {
		return 0
	}
	t.stats.Reorgs++
	items := t.Items()
	merged := make([]Item, 0, len(items))
	cur := items[0]
	eliminated := 0
	for _, it := range items[1:] {
		if cur.End() == it.Addr &&
			cur.Flushed == it.Flushed &&
			cur.Epoch == it.Epoch &&
			cur.Epochs == it.Epochs &&
			cur.Strand == it.Strand &&
			cur.Site == it.Site &&
			cur.Reported == it.Reported {
			cur.Size += it.Size
			if it.Seq > cur.Seq {
				cur.Seq = it.Seq
			}
			eliminated++
			continue
		}
		merged = append(merged, cur)
		cur = it
	}
	merged = append(merged, cur)
	if eliminated == 0 {
		return 0
	}
	t.stats.Merges += uint64(eliminated)
	t.rebuild(merged)
	return eliminated
}

// rebuild replaces the tree contents with the given address-ordered disjoint
// items, producing a perfectly balanced tree.
func (t *Tree) rebuild(items []Item) {
	t.root = buildBalanced(items)
	t.size = len(items)
}

func buildBalanced(items []Item) *node {
	if len(items) == 0 {
		return nil
	}
	mid := len(items) / 2
	n := &node{item: items[mid]}
	n.left = buildBalanced(items[:mid])
	n.right = buildBalanced(items[mid:][1:])
	n.update()
	return n
}

// Clear removes all records but keeps the statistics counters.
func (t *Tree) Clear() {
	t.root = nil
	t.size = 0
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
