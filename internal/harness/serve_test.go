package harness

import "testing"

func TestMeasureServe(t *testing.T) {
	res, err := MeasureServe(2, 300, "eager", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 2 || res.Events == 0 || res.EventsPerSec <= 0 {
		t.Fatalf("serve measurement did not move: %+v", res)
	}
	if !res.Verified {
		t.Fatal("first repeat did not verify report byte-identity")
	}
}
