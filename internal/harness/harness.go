// Package harness drives the performance evaluation of §7.2 and §7.5: it
// runs each benchmark natively and under each detector on the identical
// workload, measures wall-clock slowdowns (Fig. 8, Table 5), thread
// scalability (Fig. 10), bookkeeping tree sizes (Fig. 11) and tree
// reorganization counts (the §7.5 key insight).
package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/redis"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/workloads"
)

// Tool identifies a measured configuration.
type Tool int

// The measured tools. Native is the program with detectors disabled (the
// normalization baseline of Fig. 8); Nulgrind isolates instrumentation
// overhead.
const (
	Native Tool = iota
	Nulgrind
	PMDebugger
	Pmemcheck
	PMTest
	XFDetector
)

// String returns the tool name.
func (t Tool) String() string {
	switch t {
	case Native:
		return "native"
	case Nulgrind:
		return "nulgrind"
	case PMDebugger:
		return "pmdebugger"
	case Pmemcheck:
		return "pmemcheck"
	case PMTest:
		return "pmtest"
	case XFDetector:
		return "xfdetector"
	default:
		return fmt.Sprintf("tool(%d)", int(t))
	}
}

// Fig8Tools are the tools of Figure 8.
func Fig8Tools() []Tool { return []Tool{Nulgrind, PMDebugger, Pmemcheck} }

// AllTools are every measured tool.
func AllTools() []Tool {
	return []Tool{Nulgrind, PMDebugger, Pmemcheck, PMTest, XFDetector}
}

// buildDetector constructs the detector for a tool, or nil for Native.
func buildDetector(t Tool, model rules.Model) baselines.Detector {
	switch t {
	case Nulgrind:
		return baselines.NewNulgrind()
	case PMDebugger:
		return core.New(core.Config{Model: model})
	case Pmemcheck:
		return baselines.NewPmemcheck()
	case PMTest:
		// PMTest's performance case: a handful of annotated checkers.
		return baselines.NewPMTest(baselines.PMTestConfig{
			Watch: []string{"check0", "check1", "check2", "check3"},
		})
	case XFDetector:
		return baselines.NewXFDetector(baselines.XFDetectorConfig{})
	default:
		return nil
	}
}

// Measurement is one (benchmark, tool) timing plus detector statistics.
type Measurement struct {
	Benchmark string
	Tool      Tool
	Ops       int
	Elapsed   time.Duration
	// Counters from the detector's report (zero for Native).
	Counters report.Counters
	// TreeReorgs and AvgTreeNodes for the §7.5 / Fig. 11 analyses.
	TreeReorgs   uint64
	AvgTreeNodes float64
}

// Row holds all tool measurements for one benchmark configuration.
type Row struct {
	Benchmark string
	Ops       int
	ByTool    map[Tool]Measurement
}

// Slowdown returns time(tool) / time(native).
func (r Row) Slowdown(t Tool) float64 {
	n := r.ByTool[Native].Elapsed
	if n == 0 {
		return 0
	}
	return float64(r.ByTool[t].Elapsed) / float64(n)
}

// SpeedupOverPmemcheck returns the Table 5 headline number, including
// instrumentation time.
func (r Row) SpeedupOverPmemcheck() float64 {
	d := r.ByTool[PMDebugger].Elapsed
	if d == 0 {
		return 0
	}
	return float64(r.ByTool[Pmemcheck].Elapsed) / float64(d)
}

// SpeedupOverPmemcheckNoInstr removes the instrumentation-only cost
// (Nulgrind) from both sides, the Table 5 "W/O Instru." column. When
// timing noise makes the corrected numbers non-positive (tiny runs), the
// uncorrected speedup is returned instead.
func (r Row) SpeedupOverPmemcheckNoInstr() float64 {
	instr := r.ByTool[Nulgrind].Elapsed
	native := r.ByTool[Native].Elapsed
	base := instr - native // pure instrumentation cost
	if base < 0 {
		base = 0
	}
	d := r.ByTool[PMDebugger].Elapsed - base
	p := r.ByTool[Pmemcheck].Elapsed - base
	if d <= 0 || p <= 0 {
		return r.SpeedupOverPmemcheck()
	}
	return float64(p) / float64(d)
}

// Repeats is how many times each (benchmark, tool) pair is run; the
// minimum elapsed time is kept, the standard way to suppress scheduling
// noise. The paper reports the average of ten runs; the minimum of a few
// runs gives the same ordering with less wall-clock.
var Repeats = 1

// measureTimed runs the experiment Repeats times — setup untimed, exercise
// timed — and returns the minimum elapsed time along with the last run's
// detector.
func measureTimed(mkDet func() baselines.Detector, setup func(det baselines.Detector) (func() error, error)) (time.Duration, baselines.Detector, error) {
	var best time.Duration
	var lastDet baselines.Detector
	reps := Repeats
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < reps; i++ {
		det := mkDet()
		exercise, err := setup(det)
		if err != nil {
			return 0, nil, err
		}
		start := time.Now()
		if err := exercise(); err != nil {
			return 0, nil, err
		}
		elapsed := time.Since(start)
		if i == 0 || elapsed < best {
			best = elapsed
		}
		lastDet = det
	}
	return best, lastDet, nil
}

// MeasureMicro measures one Table 4 micro-benchmark with the given insert
// count under every requested tool.
func MeasureMicro(name string, inserts int, tools []Tool) (Row, error) {
	f, err := workloads.Lookup(name)
	if err != nil {
		return Row{}, err
	}
	row := Row{Benchmark: name, Ops: inserts, ByTool: map[Tool]Measurement{}}
	for _, tool := range append([]Tool{Native}, tools...) {
		tool := tool
		elapsed, det, err := measureTimed(
			func() baselines.Detector { return buildDetector(tool, f.Model) },
			func(det baselines.Detector) (func() error, error) {
				app, pm, err := workloads.Build(f, inserts)
				if err != nil {
					return nil, err
				}
				if det != nil {
					pm.Attach(det)
				}
				return func() error {
					if err := workloads.RunInserts(app, inserts, 42); err != nil {
						return err
					}
					if err := app.Close(); err != nil {
						return err
					}
					pm.End()
					return nil
				}, nil
			})
		if err != nil {
			return Row{}, err
		}
		m := Measurement{Benchmark: name, Tool: tool, Ops: inserts, Elapsed: elapsed}
		if det != nil {
			rep := det.Report()
			m.Counters = rep.Counters
			m.TreeReorgs = rep.Counters.TreeReorgs
			m.AvgTreeNodes = rep.Counters.AvgTreeNodes()
		}
		row.ByTool[tool] = m
	}
	return row, nil
}

// memcachedPoolSize sizes the cache pool for an operation count.
func memcachedPoolSize(ops int) uint64 {
	size := uint64(ops)*256 + (8 << 20)
	if size > 256<<20 {
		size = 256 << 20
	}
	return size
}

// MeasureMemcached measures the memslap-driven memcached workload.
func MeasureMemcached(ops, threads int, tools []Tool) (Row, error) {
	row := Row{Benchmark: "memcached", Ops: ops, ByTool: map[Tool]Measurement{}}
	for _, tool := range append([]Tool{Native}, tools...) {
		tool := tool
		elapsed, det, err := measureTimed(
			func() baselines.Detector { return buildDetector(tool, rules.Strict) },
			func(det baselines.Detector) (func() error, error) {
				cache, err := memcached.New(memcached.Config{
					PoolSize: memcachedPoolSize(ops), HashBuckets: 1 << 14, UseCAS: true,
				})
				if err != nil {
					return nil, err
				}
				if det != nil {
					cache.PM().Attach(det)
				}
				return func() error {
					if err := memslap.Run(cache, memslap.Config{Ops: ops, Threads: threads, Seed: 42}); err != nil {
						return err
					}
					cache.PM().End()
					return nil
				}, nil
			})
		if err != nil {
			return Row{}, err
		}
		m := Measurement{Benchmark: "memcached", Tool: tool, Ops: ops, Elapsed: elapsed}
		if det != nil {
			rep := det.Report()
			m.Counters = rep.Counters
			m.TreeReorgs = rep.Counters.TreeReorgs
			m.AvgTreeNodes = rep.Counters.AvgTreeNodes()
		}
		row.ByTool[tool] = m
	}
	return row, nil
}

// MeasureRedis measures the redis LRU-test workload with the given key
// count.
func MeasureRedis(keys int, tools []Tool) (Row, error) {
	row := Row{Benchmark: "redis", Ops: keys, ByTool: map[Tool]Measurement{}}
	for _, tool := range append([]Tool{Native}, tools...) {
		tool := tool
		elapsed, det, err := measureTimed(
			func() baselines.Detector { return buildDetector(tool, rules.Epoch) },
			func(det baselines.Detector) (func() error, error) {
				srv, err := redis.New(redis.Config{
					PoolSize: memcachedPoolSize(keys), MaxKeys: keys / 2, Seed: 42,
				})
				if err != nil {
					return nil, err
				}
				if det != nil {
					srv.PM().Attach(det)
				}
				return func() error {
					if err := srv.RunLRUTest(keys, 42); err != nil {
						return err
					}
					srv.PM().End()
					return nil
				}, nil
			})
		if err != nil {
			return Row{}, err
		}
		m := Measurement{Benchmark: "redis", Tool: tool, Ops: keys, Elapsed: elapsed}
		if det != nil {
			rep := det.Report()
			m.Counters = rep.Counters
			m.TreeReorgs = rep.Counters.TreeReorgs
			m.AvgTreeNodes = rep.Counters.AvgTreeNodes()
		}
		row.ByTool[tool] = m
	}
	return row, nil
}

// MicroBenchNames lists the Fig. 8 micro-benchmarks in figure order.
func MicroBenchNames() []string {
	return []string{"b_tree", "c_tree", "r_tree", "rb_tree",
		"hashmap_tx", "hashmap_atomic", "synth_strand"}
}

// FormatSlowdownTable renders rows as a Fig. 8-style slowdown table.
func FormatSlowdownTable(rows []Row, tools []Tool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %9s", "benchmark", "ops")
	for _, t := range tools {
		fmt.Fprintf(&sb, " %11s", t)
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %9d", r.Benchmark, r.Ops)
		for _, t := range tools {
			fmt.Fprintf(&sb, " %10.2fx", r.Slowdown(t))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatTable5 renders the Table 5 speedup summary.
func FormatTable5(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %14s %14s\n", "benchmark", "with instru.", "w/o instru.")
	var prodWith, prodWithout float64 = 1, 1
	n := 0
	for _, r := range rows {
		w := r.SpeedupOverPmemcheck()
		wo := r.SpeedupOverPmemcheckNoInstr()
		fmt.Fprintf(&sb, "%-16s %13.2fx %13.2fx\n", r.Benchmark, w, wo)
		if w > 0 && wo > 0 {
			prodWith *= w
			prodWithout *= wo
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&sb, "%-16s %13.2fx %13.2fx (geometric mean)\n", "average",
			math.Pow(prodWith, 1/float64(n)), math.Pow(prodWithout, 1/float64(n)))
	}
	return sb.String()
}

// FormatFig11 renders the average-tree-nodes comparison.
func FormatFig11(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %12s\n", "benchmark", "pmdebugger", "pmemcheck")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %12.1f %12.1f\n", r.Benchmark,
			r.ByTool[PMDebugger].AvgTreeNodes, r.ByTool[Pmemcheck].AvgTreeNodes)
	}
	return sb.String()
}

// FormatReorgs renders the tree-reorganization comparison of §7.5.
func FormatReorgs(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %12s\n", "benchmark", "pmdebugger", "pmemcheck")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %12d %12d\n", r.Benchmark,
			r.ByTool[PMDebugger].TreeReorgs, r.ByTool[Pmemcheck].TreeReorgs)
	}
	return sb.String()
}
