package harness

import (
	"fmt"
	"runtime"
	"time"

	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/redis"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// This file measures the asynchronous detection pipeline: the same live
// workload with PMDebugger attached inline (detection under the pool lock,
// on the application threads) versus attached through trace.Pipeline
// (emission stages a slab entry; detection is deferred to drain points).
// The paper's headline metric is live instrumentation slowdown, so each run
// is split into two timed phases:
//
//   - live: the workload exercises the cache/server. Inline, every
//     instrumented instruction runs the detector's bookkeeping here;
//     pipelined, it only appends 40 bytes to a slab.
//   - drain: Pool.End — the pipeline's deferred analysis runs to
//     completion. Inline this is near-zero; pipelined it carries the
//     detection work the live phase no longer pays for.
//
// Both phases are reported (plus their sum) so the artifact shows exactly
// where the work went; the speedup of interest is the live phase, the part
// the application's clients observe. The pipelined runs use the lazy drain
// discipline with a ring deep enough to hold the whole run, so on a machine
// without a spare core (this container pins everything to one CPU) the
// consumer does not time-slice against the application mid-run.

// PipelineModes names the two delivery modes, inline first.
func PipelineModes() [2]string { return [2]string{"inline", "pipelined"} }

// Memcached row configuration: an all-set, small-value mix. Sets are the
// instrumented path (a get emits no events), so this maximizes the density
// of detector bookkeeping per operation — the cost the pipeline removes
// from the live phase.
const (
	pipelineSetRatio  = 1.0
	pipelineValueSize = 16
)

// PipelineResult is one (workload, mode) live-run measurement.
type PipelineResult struct {
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"` // "inline" or "pipelined"
	Threads    int     `json:"threads"`
	Ops        int     `json:"ops"`
	Events     uint64  `json:"events"`
	LiveNanos  int64   `json:"live_nanos"`  // workload execution
	DrainNanos int64   `json:"drain_nanos"` // Pool.End: deferred analysis
	Nanos      int64   `json:"nanos"`       // live + drain
	OpsPerSec  float64 `json:"ops_per_sec"` // over the live phase
}

// pipelineWorkload builds a live run: live drives the workload (without
// finalizing the pool); the harness then times Pool.End separately as the
// drain phase.
type pipelineWorkload struct {
	model rules.Model
	setup func() (*pmem.Pool, func() error, error)
}

func pipelineWorkloadFor(name string, ops, threads int) (pipelineWorkload, error) {
	switch name {
	case "memcached":
		return pipelineWorkload{
			model: rules.Strict,
			setup: func() (*pmem.Pool, func() error, error) {
				cache, err := memcached.New(memcached.Config{
					PoolSize: memcachedPoolSize(ops), HashBuckets: 1 << 14, UseCAS: true,
				})
				if err != nil {
					return nil, nil, err
				}
				return cache.PM(), func() error {
					return memslap.Run(cache, memslap.Config{
						Ops: ops, SetRatio: pipelineSetRatio, Threads: threads,
						ValueSize: pipelineValueSize, Seed: 42,
					})
				}, nil
			},
		}, nil
	case "redis":
		return pipelineWorkload{
			model: rules.Epoch,
			setup: func() (*pmem.Pool, func() error, error) {
				srv, err := redis.New(redis.Config{
					PoolSize: memcachedPoolSize(ops), MaxKeys: ops / 2, Seed: 42,
				})
				if err != nil {
					return nil, nil, err
				}
				return srv.PM(), func() error {
					return srv.RunLRUTest(ops, 42)
				}, nil
			},
		}, nil
	default:
		return pipelineWorkload{}, fmt.Errorf("pipeline: unknown workload %q", name)
	}
}

// verifyPipelineDelivery records one live run of the workload and replays
// the identical stream into an inline detector, an eager pipeline and a
// lazy pipeline, requiring byte-identical reports from all three.
// Multi-threaded runs are not deterministic across executions, so the
// equivalence proof compares the delivery modes on one recorded stream
// rather than across live runs. Returns the recorded event count, which
// also sizes the measurement ring.
func verifyPipelineDelivery(w pipelineWorkload, ops int) (uint64, error) {
	pm, live, err := w.setup()
	if err != nil {
		return 0, err
	}
	rec := trace.NewRecorder(ops * 8)
	pm.Attach(rec)
	if err := live(); err != nil {
		return 0, err
	}
	pm.End()

	inline := core.New(core.Config{Model: w.model})
	rec.Replay(inline)
	want := inline.Report().Summary()

	for _, lazy := range []bool{false, true} {
		det := core.New(core.Config{Model: w.model})
		pipe := trace.NewPipelineOpts(det, trace.PipelineOptions{Lazy: lazy})
		for _, ev := range rec.Events {
			pipe.HandleEvent(ev)
		}
		pipe.Close()
		if got := det.Report().Summary(); got != want {
			mode := "eager"
			if lazy {
				mode = "lazy"
			}
			return 0, fmt.Errorf("pipeline: %s delivery disagrees with inline on the identical stream\n--- inline ---\n%s--- pipelined ---\n%s",
				mode, want, got)
		}
	}
	return uint64(rec.Len()), nil
}

// MeasurePipeline measures the live workload under PMDebugger with inline
// and pipelined delivery (best live phase of Repeats each, inline first),
// after proving the delivery modes produce byte-identical reports on an
// identical recorded stream.
func MeasurePipeline(workload string, ops, threads int) ([2]PipelineResult, error) {
	var out [2]PipelineResult
	w, err := pipelineWorkloadFor(workload, ops, threads)
	if err != nil {
		return out, err
	}
	streamLen, err := verifyPipelineDelivery(w, ops)
	if err != nil {
		return out, err
	}
	// Ring deep enough for the whole recorded stream plus slack, so the
	// lazy consumer never has to run mid-measurement.
	depth := int(streamLen/trace.DefaultBatchSize) + threads + 8

	var bestLive, bestDrain [2]time.Duration
	var events [2]uint64
	// Repeats are interleaved (inline, pipelined, inline, ...) rather than
	// run as two contiguous blocks, so a drift in the machine's speed
	// across the measurement lands on both modes instead of skewing their
	// ratio.
	for r := 0; r < Repeats; r++ {
		for i, mode := range PipelineModes() {
			pm, live, err := w.setup()
			if err != nil {
				return out, err
			}
			det := core.New(core.Config{Model: w.model})
			if mode == "pipelined" {
				pm.AttachWith(det, pmem.AttachOptions{
					Async: true, Lazy: true, PipelineDepth: depth,
				})
			} else {
				pm.Attach(det)
			}
			// Start every repeat from a collected heap — after the ring
			// allocation, so GC debt from a previous run (or the
			// verification replay) cannot land in this one's timed phases.
			runtime.GC()
			start := time.Now()
			if err := live(); err != nil {
				return out, err
			}
			liveElapsed := time.Since(start)
			drainStart := time.Now()
			pm.End()
			drainElapsed := time.Since(drainStart)
			if bestLive[i] == 0 || liveElapsed < bestLive[i] {
				bestLive[i], bestDrain[i] = liveElapsed, drainElapsed
			}
			events[i] = pm.EventCount()
			pm.Detach(det)
		}
	}
	for i, mode := range PipelineModes() {
		out[i] = PipelineResult{
			Workload:   workload,
			Mode:       mode,
			Threads:    threads,
			Ops:        ops,
			Events:     events[i],
			LiveNanos:  bestLive[i].Nanoseconds(),
			DrainNanos: bestDrain[i].Nanoseconds(),
			Nanos:      (bestLive[i] + bestDrain[i]).Nanoseconds(),
			OpsPerSec:  float64(ops) / bestLive[i].Seconds(),
		}
	}
	return out, nil
}
