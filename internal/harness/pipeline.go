package harness

import (
	"fmt"
	"runtime"
	"time"

	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/redis"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// This file measures the asynchronous detection pipeline: the same live
// workload with PMDebugger attached inline (detection under the pool lock,
// on the application threads), attached through a single-consumer
// trace.Pipeline (emission stages a slab entry; detection is deferred to
// drain points), and attached through a trace.ShardedPipeline (the staged
// events fan out to one detector engine per strand shard, so the deferred
// analysis runs on several cores). The paper's headline metric is live
// instrumentation slowdown, so each run is split into two timed phases:
//
//   - live: the workload exercises the cache/server. Inline, every
//     instrumented instruction runs the detector's bookkeeping here;
//     pipelined and sharded, it only appends 40 bytes to a slab.
//   - drain: Pool.End — the deferred analysis runs to completion. Inline
//     this is near-zero; pipelined it carries the detection work the live
//     phase no longer pays for; sharded it divides that work across shard
//     consumers (the paper-motivating scaling, visible only with spare
//     cores — this container pins everything to one CPU, CI has more).
//
// Both phases are reported (plus their sum) so the artifact shows exactly
// where the work went. The pipelined and sharded runs use the lazy drain
// discipline with rings deep enough to hold the whole run, so on a machine
// without a spare core the consumers do not time-slice against the
// application mid-run.
//
// Sharding requires a core.Shardable configuration. The strict-model
// memcached row and the epoch-model redis row therefore measure the
// fallback single-consumer path (flagged in PipelineResult.Fallback, never
// silently); the memcached-strand row — every cache operation in its own
// strand section, the globally-locked cache serializing them — is the
// genuinely sharded measurement.

// PipelineModes names the three delivery modes, inline first.
func PipelineModes() [3]string { return [3]string{"inline", "pipelined", "sharded"} }

// Memcached row configuration: an all-set, small-value mix. Sets are the
// instrumented path (a get emits no events), so this maximizes the density
// of detector bookkeeping per operation — the cost the pipeline removes
// from the live phase.
const (
	pipelineSetRatio  = 1.0
	pipelineValueSize = 16
)

// PipelineResult is one (workload, mode) live-run measurement.
type PipelineResult struct {
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"` // "inline", "pipelined" or "sharded"
	Threads    int     `json:"threads"`
	Ops        int     `json:"ops"`
	Events     uint64  `json:"events"`
	LiveNanos  int64   `json:"live_nanos"`  // workload execution
	DrainNanos int64   `json:"drain_nanos"` // Pool.End: deferred analysis
	Nanos      int64   `json:"nanos"`       // live + drain
	OpsPerSec  float64 `json:"ops_per_sec"` // over the live phase
	// Shards is the number of detector engines behind the sharded mode's
	// delivery (1 when the configuration forced the single-consumer
	// fallback); zero for the other modes.
	Shards int `json:"shards,omitempty"`
	// Fallback marks a sharded-mode row that actually measured the
	// single-consumer fallback because the workload's detector
	// configuration is not core.Shardable. Such a row must not be read as
	// a sharded-scaling data point.
	Fallback bool `json:"fallback,omitempty"`
}

// pipelineWorkload builds a live run: live drives the workload (without
// finalizing the pool); the harness then times Pool.End separately as the
// drain phase.
type pipelineWorkload struct {
	model rules.Model
	setup func() (*pmem.Pool, func() error, error)
}

func pipelineWorkloadFor(name string, ops, threads int) (pipelineWorkload, error) {
	memcachedSetup := func(strands bool) func() (*pmem.Pool, func() error, error) {
		return func() (*pmem.Pool, func() error, error) {
			cache, err := memcached.New(memcached.Config{
				PoolSize: memcachedPoolSize(ops), HashBuckets: 1 << 14, UseCAS: true,
				Strands: strands,
			})
			if err != nil {
				return nil, nil, err
			}
			return cache.PM(), func() error {
				return memslap.Run(cache, memslap.Config{
					Ops: ops, SetRatio: pipelineSetRatio, Threads: threads,
					ValueSize: pipelineValueSize, Seed: 42,
				})
			}, nil
		}
	}
	switch name {
	case "memcached":
		return pipelineWorkload{model: rules.Strict, setup: memcachedSetup(false)}, nil
	case "memcached-strand":
		// Every cache operation in its own strand section: the cache's
		// global lock serializes operations, so each op's persists form an
		// independent persist path and the configuration is core.Shardable.
		return pipelineWorkload{model: rules.Strand, setup: memcachedSetup(true)}, nil
	case "redis":
		return pipelineWorkload{
			model: rules.Epoch,
			setup: func() (*pmem.Pool, func() error, error) {
				srv, err := redis.New(redis.Config{
					PoolSize: memcachedPoolSize(ops), MaxKeys: ops / 2, Seed: 42,
				})
				if err != nil {
					return nil, nil, err
				}
				return srv.PM(), func() error {
					return srv.RunLRUTest(ops, 42)
				}, nil
			},
		}, nil
	default:
		return pipelineWorkload{}, fmt.Errorf("pipeline: unknown workload %q", name)
	}
}

// pipelineShards is the shard count for a thread count: one shard per
// application thread, minimum two (a single shard is just the pipelined
// mode again).
func pipelineShards(threads int) int {
	if threads < 2 {
		return 2
	}
	return threads
}

// verifyPipelineDelivery records one live run of the workload and replays
// the identical stream into an inline detector, an eager pipeline, a lazy
// pipeline and a sharded pipeline, requiring byte-identical reports from
// all four. Multi-threaded runs are not deterministic across executions,
// so the equivalence proof compares the delivery modes on one recorded
// stream rather than across live runs. Returns the recorded event count,
// which also sizes the measurement ring.
func verifyPipelineDelivery(w pipelineWorkload, ops, shards int) (uint64, error) {
	pm, live, err := w.setup()
	if err != nil {
		return 0, err
	}
	rec := trace.NewRecorder(ops * 8)
	pm.Attach(rec)
	if err := live(); err != nil {
		return 0, err
	}
	pm.End()

	inline := core.New(core.Config{Model: w.model})
	rec.Replay(inline)
	want := inline.Report().Summary()

	for _, lazy := range []bool{false, true} {
		det := core.New(core.Config{Model: w.model})
		pipe := trace.NewPipelineOpts(det, trace.PipelineOptions{Lazy: lazy})
		for _, ev := range rec.Events {
			pipe.HandleEvent(ev)
		}
		pipe.Close()
		if got := det.Report().Summary(); got != want {
			mode := "eager"
			if lazy {
				mode = "lazy"
			}
			return 0, fmt.Errorf("pipeline: %s delivery disagrees with inline on the identical stream\n--- inline ---\n%s--- pipelined ---\n%s",
				mode, want, got)
		}
	}

	// Sharded delivery — through the real fan-out when the configuration
	// shards, through the single-consumer fallback otherwise. Either way
	// the report must match inline byte for byte.
	sd := core.NewSharded(core.Config{Model: w.model}, shards)
	var conduit trace.Conduit
	if hs := sd.ShardHandlers(); len(hs) > 1 {
		conduit = trace.NewShardedPipeline(sd, hs, trace.PipelineOptions{Lazy: true})
	} else {
		conduit = trace.NewPipelineOpts(sd, trace.PipelineOptions{Lazy: true})
	}
	for _, ev := range rec.Events {
		conduit.HandleEvent(ev)
	}
	conduit.Close()
	if err := conduit.Err(); err != nil {
		return 0, fmt.Errorf("pipeline: sharded delivery failed: %w", err)
	}
	if got := sd.Report().Summary(); got != want {
		return 0, fmt.Errorf("pipeline: sharded delivery (shards=%d, fallback=%v) disagrees with inline on the identical stream\n--- inline ---\n%s--- sharded ---\n%s",
			sd.Shards(), sd.Fallback(), want, got)
	}
	return uint64(rec.Len()), nil
}

// MeasurePipeline measures the live workload under PMDebugger with inline,
// single-consumer pipelined and sharded delivery (best live phase of
// Repeats each, inline first), after proving all delivery modes produce
// byte-identical reports on an identical recorded stream.
func MeasurePipeline(workload string, ops, threads int) ([]PipelineResult, error) {
	w, err := pipelineWorkloadFor(workload, ops, threads)
	if err != nil {
		return nil, err
	}
	shards := pipelineShards(threads)
	streamLen, err := verifyPipelineDelivery(w, ops, shards)
	if err != nil {
		return nil, err
	}
	// Ring deep enough for the whole recorded stream plus slack, so the
	// lazy consumers never have to run mid-measurement. Sharded rings get
	// the same depth each: a skewed strand distribution may fill one shard
	// with nearly the whole stream.
	depth := int(streamLen/trace.DefaultBatchSize) + threads + 8

	modes := PipelineModes()
	var bestLive, bestDrain [3]time.Duration
	var events [3]uint64
	var shardsUsed [3]int
	var fellBack [3]bool
	// Repeats are interleaved (inline, pipelined, sharded, inline, ...)
	// rather than run as contiguous blocks, so a drift in the machine's
	// speed across the measurement lands on every mode instead of skewing
	// their ratios.
	for r := 0; r < Repeats; r++ {
		for i, mode := range modes {
			pm, live, err := w.setup()
			if err != nil {
				return nil, err
			}
			cfg := core.Config{Model: w.model}
			var h trace.Handler
			switch mode {
			case "inline":
				d := core.New(cfg)
				pm.Attach(d)
				h = d
			case "pipelined":
				d := core.New(cfg)
				pm.AttachWith(d, pmem.AttachOptions{
					Async: true, Lazy: true, PipelineDepth: depth,
				})
				h = d
			case "sharded":
				sd := core.NewSharded(cfg, shards)
				pm.AttachWith(sd, pmem.AttachOptions{
					Async: true, Lazy: true, PipelineDepth: depth, Shards: shards,
				})
				h = sd
				shardsUsed[i], fellBack[i] = sd.Shards(), sd.Fallback()
			}
			// Start every repeat from a collected heap — after the ring
			// allocation, so GC debt from a previous run (or the
			// verification replay) cannot land in this one's timed phases.
			runtime.GC()
			start := time.Now()
			if err := live(); err != nil {
				return nil, err
			}
			liveElapsed := time.Since(start)
			drainStart := time.Now()
			pm.End()
			drainElapsed := time.Since(drainStart)
			if bestLive[i] == 0 || liveElapsed < bestLive[i] {
				bestLive[i], bestDrain[i] = liveElapsed, drainElapsed
			}
			events[i] = pm.EventCount()
			pm.Detach(h)
		}
	}
	out := make([]PipelineResult, len(modes))
	for i, mode := range modes {
		out[i] = PipelineResult{
			Workload:   workload,
			Mode:       mode,
			Threads:    threads,
			Ops:        ops,
			Events:     events[i],
			LiveNanos:  bestLive[i].Nanoseconds(),
			DrainNanos: bestDrain[i].Nanoseconds(),
			Nanos:      (bestLive[i] + bestDrain[i]).Nanoseconds(),
			OpsPerSec:  float64(ops) / bestLive[i].Seconds(),
			Shards:     shardsUsed[i],
			Fallback:   fellBack[i],
		}
	}
	return out, nil
}
