package harness

import (
	"context"
	"fmt"
	"time"

	"pmdebugger/internal/serve"
)

// This file measures pmserved, the detection service: N concurrent clients,
// each a separate tenant, stream pre-recorded memslap-driven memcached
// traces to one server instance, which runs a detector session per
// connection. The timed phase covers only the streaming (client encode →
// TCP → server decode → pipeline → detection → report frame); trace
// recording happens untimed up front. The reported events/sec is the
// server-side aggregate across all tenants — the fleet-throughput number
// the paper's "fast" claim turns into when detection moves behind a socket.

// ServeResult is one client-count measurement of the serving benchmark.
type ServeResult struct {
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"ops_per_client"`
	Events       int     `json:"events"` // total streamed across clients
	Nanos        int64   `json:"nanos"`  // best-of-Repeats streaming wall clock
	EventsPerSec float64 `json:"events_per_sec"`
	Drain        string  `json:"drain"`
	Shards       int     `json:"shards,omitempty"`
	// Verified records that every tenant's served report was checked
	// byte-identical to an offline replay (done once, on the first repeat).
	Verified bool `json:"verified"`
}

// MeasureServe runs the serving benchmark for one client count. Each repeat
// gets a fresh server (sessions are cheap; a shared server would let repeat
// N's tenant aggregates pollute repeat N+1's metrics check). The first
// repeat verifies report byte-identity against offline replays — a failed
// verification is a hard error, not a slow data point.
func MeasureServe(clients, opsPerClient int, drain string, shards int) (ServeResult, error) {
	res := ServeResult{
		Clients:      clients,
		OpsPerClient: opsPerClient,
		Drain:        drain,
		Shards:       shards,
	}
	reps := Repeats
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		verify := rep == 0
		srv := serve.New(serve.Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			return res, err
		}
		cfg := serve.SoakConfig{
			Clients: clients,
			Ops:     opsPerClient,
			Threads: 4,
			Buggy:   true,
			Strands: shards > 1, // sharding needs the strand-model port
			Drain:   drain,
			Shards:  shards,
			Verify:  verify,
		}
		if verify {
			cfg.HTTPAddr = srv.HTTPAddr()
		}
		sr, err := serve.Soak(srv.Addr(), cfg)
		if shutErr := shutdownServer(srv); err == nil {
			err = shutErr
		}
		if err != nil {
			return res, fmt.Errorf("serve benchmark (%d clients, repeat %d): %w", clients, rep, err)
		}
		if verify {
			res.Verified = true
		}
		if res.Nanos == 0 || sr.Elapsed.Nanoseconds() < res.Nanos {
			res.Events = sr.Events
			res.Nanos = sr.Elapsed.Nanoseconds()
			res.EventsPerSec = sr.EventsPerSec
		}
	}
	return res, nil
}

func shutdownServer(srv *serve.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
