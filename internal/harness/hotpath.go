package harness

import (
	"fmt"
	"time"

	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// This file builds the hot-path microbenchmark traces shared by the
// BenchmarkHotPath* benchmarks and `pmbench -experiment hotpath`. Each trace
// stresses one per-event cost the cache-line index and MRU probe
// (core/index.go) remove: without them, every store's overlap query and
// every CLF walks the whole fence interval's CLF-interval list, so the
// per-event cost grows with the number of writebacks since the last fence.

// HotPathKinds lists the hot-path trace shapes.
func HotPathKinds() []string {
	return []string{"flush-overlap", "store-overwrite", "mru-locality"}
}

// HotPathTrace builds the named synthetic trace with the given number of
// fence-delimited rounds.
//
//   - flush-overlap: overlapping stores per line, per-line flushes plus
//     dispersed re-flushes of older lines and unflushed stragglers that
//     redistribute at the fence — the flush/overlap-heavy shape of the
//     acceptance microbench.
//   - store-overwrite: a burst of line flushes builds many CLF intervals,
//     then repeated overwrites of the same lines drive the
//     multiple-overwrites overlap query.
//   - mru-locality: the Fig. 2a common case — every store is flushed
//     immediately, at CLF distance one.
func HotPathTrace(kind string, rounds int) (*trace.Recorder, error) {
	rec := trace.NewRecorder(1 << 16)
	seq := uint64(0)
	emit := func(k trace.Kind, addr, size uint64) {
		seq++
		rec.HandleEvent(trace.Event{Seq: seq, Kind: k, Addr: addr, Size: size})
	}
	const base = 0x4000_0000
	switch kind {
	case "flush-overlap":
		const lines = 256
		for r := 0; r < rounds; r++ {
			for l := uint64(0); l < lines; l++ {
				a := base + l*64
				emit(trace.KindStore, a, 8)
				emit(trace.KindStore, a+8, 8)
				emit(trace.KindStore, a, 8) // overlaps: multiple-overwrites query
				if l%8 != 7 {
					emit(trace.KindFlush, a, 64)
				}
				if l%4 == 3 && l >= 16 {
					// Dispersed re-flush far behind the MRU intervals.
					emit(trace.KindFlush, base+(l-16)*64, 64)
				}
			}
			emit(trace.KindFence, 0, 0)
		}
	case "store-overwrite":
		const lines = 512
		for r := 0; r < rounds; r++ {
			for l := uint64(0); l < lines; l++ {
				a := base + l*64
				emit(trace.KindStore, a, 8)
				emit(trace.KindFlush, a, 64)
			}
			for i := uint64(0); i < 2*lines; i++ {
				emit(trace.KindStore, base+(i%lines)*64, 8)
			}
			// Collective flush over the whole window: the fence then drops
			// every entry by metadata invalidation, so the round's cost is
			// the overwrite overlap queries, not redistribution.
			emit(trace.KindFlush, base, lines*64)
			emit(trace.KindFence, 0, 0)
		}
	case "mru-locality":
		const lines = 512
		for r := 0; r < rounds; r++ {
			for l := uint64(0); l < lines; l++ {
				a := base + l*64
				emit(trace.KindStore, a, 8)
				emit(trace.KindFlush, a, 64)
			}
			emit(trace.KindFence, 0, 0)
		}
	default:
		return nil, fmt.Errorf("unknown hot-path trace %q", kind)
	}
	emit(trace.KindEnd, 0, 0)
	return rec, nil
}

// HotPathResult is one (trace, mode) measurement.
type HotPathResult struct {
	Kind         string  `json:"kind"`
	Mode         string  `json:"mode"` // "indexed" or "scan"
	Events       int     `json:"events"`
	Nanos        int64   `json:"nanos"`
	EventsPerSec float64 `json:"events_per_sec"`
	MRUProbeHits uint64  `json:"mru_probe_hits"`
	IndexHits    uint64  `json:"index_line_hits"`
}

// MeasureHotPath replays the trace through the indexed engine and the
// DisableIndex scan fallback, verifies their reports are byte-identical, and
// returns the best-of-Repeats timing for each mode (indexed first).
func MeasureHotPath(kind string, rounds int) ([2]HotPathResult, error) {
	var out [2]HotPathResult
	rec, err := HotPathTrace(kind, rounds)
	if err != nil {
		return out, err
	}
	cfgIdx := core.Config{Model: rules.Strict}
	cfgScan := core.Config{Model: rules.Strict, DisableIndex: true}

	replay := func(cfg core.Config) *core.Detector {
		d := core.New(cfg)
		rec.Replay(d)
		return d
	}
	if want, got := replay(cfgIdx).Report().Summary(), replay(cfgScan).Report().Summary(); want != got {
		return out, fmt.Errorf("hotpath %s: indexed and scan reports differ\n--- indexed ---\n%s--- scan ---\n%s",
			kind, want, got)
	}

	for i, m := range []struct {
		mode string
		cfg  core.Config
	}{{"indexed", cfgIdx}, {"scan", cfgScan}} {
		best := time.Duration(0)
		var counters = replay(m.cfg).Counters()
		for r := 0; r < Repeats; r++ {
			start := time.Now()
			d := replay(m.cfg)
			d.Report()
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
		}
		out[i] = HotPathResult{
			Kind:         kind,
			Mode:         m.mode,
			Events:       rec.Len(),
			Nanos:        best.Nanoseconds(),
			EventsPerSec: float64(rec.Len()) / best.Seconds(),
			MRUProbeHits: counters.MRUProbeHits,
			IndexHits:    counters.IndexLineHits,
		}
	}
	return out, nil
}
