package harness

import (
	"strings"
	"testing"
)

func TestMeasureMicroProducesAllTools(t *testing.T) {
	row, err := MeasureMicro("b_tree", 200, AllTools())
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range append([]Tool{Native}, AllTools()...) {
		m, ok := row.ByTool[tool]
		if !ok || m.Elapsed <= 0 {
			t.Errorf("tool %s not measured: %+v", tool, m)
		}
	}
	// Detectors saw the same instruction counts (identical workload).
	ref := row.ByTool[Nulgrind].Counters
	for _, tool := range []Tool{PMDebugger, Pmemcheck, PMTest, XFDetector} {
		c := row.ByTool[tool].Counters
		if c.Stores != ref.Stores || c.Fences != ref.Fences {
			t.Errorf("%s saw %d/%d events, nulgrind saw %d/%d",
				tool, c.Stores, c.Fences, ref.Stores, ref.Fences)
		}
	}
	if row.Slowdown(PMDebugger) <= 0 {
		t.Error("slowdown not computed")
	}
}

func TestMeasureMemcachedAndRedis(t *testing.T) {
	row, err := MeasureMemcached(500, 1, []Tool{Nulgrind, PMDebugger})
	if err != nil {
		t.Fatal(err)
	}
	if row.ByTool[PMDebugger].Counters.Stores == 0 {
		t.Error("memcached produced no stores")
	}
	row, err = MeasureRedis(300, []Tool{Nulgrind, PMDebugger})
	if err != nil {
		t.Fatal(err)
	}
	if row.ByTool[PMDebugger].Counters.Stores == 0 {
		t.Error("redis produced no stores")
	}
}

func TestPmemcheckReorgsExceedPMDebugger(t *testing.T) {
	// The §7.5 key insight: pmemcheck reorganizes orders of magnitude more
	// often than PMDebugger.
	row, err := MeasureMicro("hashmap_atomic", 1000, []Tool{PMDebugger, Pmemcheck})
	if err != nil {
		t.Fatal(err)
	}
	pd := row.ByTool[PMDebugger].TreeReorgs
	pc := row.ByTool[Pmemcheck].TreeReorgs
	if pc <= pd*10 {
		t.Errorf("reorgs: pmdebugger=%d pmemcheck=%d; expected >=10x gap", pd, pc)
	}
}

func TestFig11TreeSizesShrink(t *testing.T) {
	row, err := MeasureMicro("hashmap_tx", 2000, []Tool{PMDebugger, Pmemcheck})
	if err != nil {
		t.Fatal(err)
	}
	pd := row.ByTool[PMDebugger].AvgTreeNodes
	pc := row.ByTool[Pmemcheck].AvgTreeNodes
	if pd <= 25 {
		t.Errorf("hashmap_tx should keep a large tree in pmdebugger: %.1f", pd)
	}
	if pd >= pc {
		t.Errorf("pmdebugger tree (%.1f) not smaller than pmemcheck (%.1f)", pd, pc)
	}
	// The other benchmarks keep small trees.
	row, err = MeasureMicro("b_tree", 2000, []Tool{PMDebugger, Pmemcheck})
	if err != nil {
		t.Fatal(err)
	}
	if n := row.ByTool[PMDebugger].AvgTreeNodes; n > 25 {
		t.Errorf("b_tree avg tree nodes = %.1f, want < 25", n)
	}
}

func TestFormatters(t *testing.T) {
	row, err := MeasureMicro("c_tree", 200, Fig8Tools())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{row}
	if out := FormatSlowdownTable(rows, Fig8Tools()); !strings.Contains(out, "c_tree") {
		t.Errorf("slowdown table:\n%s", out)
	}
	if out := FormatTable5(rows); !strings.Contains(out, "average") {
		t.Errorf("table 5:\n%s", out)
	}
	if out := FormatFig11(rows); !strings.Contains(out, "pmemcheck") {
		t.Errorf("fig 11:\n%s", out)
	}
	if out := FormatReorgs(rows); !strings.Contains(out, "c_tree") {
		t.Errorf("reorgs:\n%s", out)
	}
}

func TestCharacterizeMicroPatterns(t *testing.T) {
	// Pattern 1: for most stores durability is guaranteed by the nearest
	// fence. Pattern 2: most CLF intervals are collective.
	row, err := CharacterizeMicro("hashmap_atomic", 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := row.Result
	if le3 := r.DistanceLE(3); le3 < 80 {
		t.Errorf("hashmap_atomic distance<=3 = %.1f%%, want > 80%%", le3)
	}
	if c := r.CollectivePercent(); c < 71 {
		t.Errorf("hashmap_atomic collective = %.1f%%, want > 71%%", c)
	}
	s, _, _ := r.MixPercent()
	if s < 40.2 {
		t.Errorf("store share = %.1f%%, want > 40%%", s)
	}
}

func TestCharacterizeYCSB(t *testing.T) {
	row, err := CharacterizeYCSB('A', 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "a_YCSB" {
		t.Errorf("name = %s", row.Name)
	}
	if row.Result.Stores == 0 || row.Result.Fences == 0 {
		t.Errorf("no traffic characterized: %+v", row.Result)
	}
}

func TestMeasureMemcachedMultiThread(t *testing.T) {
	row, err := MeasureMemcached(800, 4, []Tool{PMDebugger, Pmemcheck})
	if err != nil {
		t.Fatal(err)
	}
	if row.ByTool[PMDebugger].Elapsed <= 0 || row.ByTool[Pmemcheck].Elapsed <= 0 {
		t.Fatalf("threads run not measured: %+v", row)
	}
}

func TestCharacterizeAllAndFormat(t *testing.T) {
	rows, err := CharacterizeAll(300, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	// 5 micro-benchmarks + 6 YCSB loads.
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatCharacterization(rows)
	for _, want := range []string{"b_tree", "a_YCSB", "f_YCSB", "Figure 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterization output missing %q", want)
		}
	}
}

func TestRepeatsKeepsMinimum(t *testing.T) {
	old := Repeats
	defer func() { Repeats = old }()
	Repeats = 3
	row, err := MeasureMicro("c_tree", 150, []Tool{Nulgrind})
	if err != nil {
		t.Fatal(err)
	}
	if row.ByTool[Nulgrind].Elapsed <= 0 {
		t.Fatal("no measurement recorded")
	}
}

func TestToolStrings(t *testing.T) {
	names := map[Tool]string{
		Native: "native", Nulgrind: "nulgrind", PMDebugger: "pmdebugger",
		Pmemcheck: "pmemcheck", PMTest: "pmtest", XFDetector: "xfdetector",
	}
	for tool, want := range names {
		if tool.String() != want {
			t.Errorf("%d = %q", tool, tool.String())
		}
	}
}
