package harness

import (
	"strings"
	"testing"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/workloads"
)

// differentialConfigs are the four detector configurations the differential
// suites sweep (the same set index_test.go uses): one per persistency
// model, plus selective registration.
func differentialConfigs() []struct {
	name     string
	workload string
	cfg      core.Config
} {
	return []struct {
		name     string
		workload string
		cfg      core.Config
	}{
		{"strict", "b_tree", core.Config{Model: rules.Strict}},
		{"strict-selective", "b_tree", core.Config{Model: rules.Strict, RequireRegistration: true}},
		{"epoch", "hashmap_tx", core.Config{Model: rules.Epoch}},
		{"strand", "synth_strand", core.Config{Model: rules.Strand}},
	}
}

// buildAttached builds the detector for a delivery mode and attaches it:
// inline synchronously, eager/lazy through a single-consumer pipeline, and
// sharded through AttachOptions.Shards (which degrades to a single
// consumer when cfg is not core.Shardable — that fallback path is part of
// the differential).
func buildAttached(pm *pmem.Pool, cfg core.Config, mode string) baselines.Detector {
	switch mode {
	case "inline":
		d := core.New(cfg)
		pm.Attach(d)
		return d
	case "eager":
		d := core.New(cfg)
		pm.AttachAsync(d)
		return d
	case "lazy":
		d := core.New(cfg)
		pm.AttachWith(d, pmem.AttachOptions{Async: true, Lazy: true})
		return d
	case "sharded":
		sd := core.NewSharded(cfg, 4)
		pm.AttachWith(sd, pmem.AttachOptions{Async: true, Shards: 4})
		return sd
	default:
		panic("unknown attach mode " + mode)
	}
}

// runWorkloadWith runs the deterministic workload once with the detector
// attached in the requested mode and returns the report summary.
func runWorkloadWith(t *testing.T, workload string, cfg core.Config, n int, mode string) string {
	t.Helper()
	f, err := workloads.Lookup(workload)
	if err != nil {
		t.Fatal(err)
	}
	app, pm, err := workloads.Build(f, n)
	if err != nil {
		t.Fatal(err)
	}
	det := buildAttached(pm, cfg, mode)
	if err := workloads.RunInserts(app, n, 42); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	pm.End()
	return det.Report().Summary()
}

// TestPipelineDifferentialModels proves inline, eager-pipelined,
// lazy-pipelined and sharded delivery produce byte-identical reports
// across all four detector configurations on deterministic single-threaded
// workloads. The strand configuration exercises the genuine fan-out; the
// others exercise the sharded attach's fallback.
func TestPipelineDifferentialModels(t *testing.T) {
	const n = 800
	for _, tc := range differentialConfigs() {
		inline := runWorkloadWith(t, tc.workload, tc.cfg, n, "inline")
		for _, mode := range []string{"eager", "lazy", "sharded"} {
			async := runWorkloadWith(t, tc.workload, tc.cfg, n, mode)
			if inline != async {
				t.Errorf("%s (%s): reports differ between delivery modes\n--- inline ---\n%s--- %s ---\n%s",
					tc.name, tc.workload, inline, mode, async)
			}
		}
	}
}

// runTrappedWorkload runs the workload with a crash trap armed and returns
// the detector's report summary at the moment of the trap, plus whether
// the trap fired.
func runTrappedWorkload(t *testing.T, cfg core.Config, trap uint64, mode string) (summary string, trapped bool) {
	t.Helper()
	f, err := workloads.Lookup("b_tree")
	if err != nil {
		t.Fatal(err)
	}
	app, pm, err := workloads.Build(f, 200)
	if err != nil {
		t.Fatal(err)
	}
	det := buildAttached(pm, cfg, mode)
	pm.SetCrashTrap(trap)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.CrashTrap); !ok {
					panic(r)
				}
				trapped = true
			}
		}()
		if err := workloads.RunInserts(app, 200, 42); err != nil {
			t.Fatal(err)
		}
		_ = app.Close()
		pm.End()
	}()
	return det.Report().Summary(), trapped
}

// TestPipelineDifferentialCrashTrap fires crash traps mid-stream and
// requires every asynchronously attached detector to have consumed the
// identical prefix as the inline one when the trap unwinds.
func TestPipelineDifferentialCrashTrap(t *testing.T) {
	cfg := core.Config{Model: rules.Strict}
	for _, trap := range []uint64{5, 97, 1203} {
		inline, okInline := runTrappedWorkload(t, cfg, trap, "inline")
		if !okInline {
			t.Fatalf("trap %d did not fire", trap)
		}
		for _, mode := range []string{"eager", "lazy", "sharded"} {
			async, okAsync := runTrappedWorkload(t, cfg, trap, mode)
			if okInline != okAsync {
				t.Fatalf("trap %d fired inline=%v %s=%v", trap, okInline, mode, okAsync)
			}
			if inline != async {
				t.Errorf("trap %d: detector state differs at the trap\n--- inline ---\n%s--- %s ---\n%s",
					trap, inline, mode, async)
			}
		}
	}
}

// TestPipelineDifferentialCrashTrapStrand repeats the crash-trap prefix
// check on a strand workload where sharding genuinely fans out, so the
// drain-before-trap barrier is proven across real shards, not only the
// fallback pipeline.
func TestPipelineDifferentialCrashTrapStrand(t *testing.T) {
	cfg := core.Config{Model: rules.Strand}
	runStrand := func(trap uint64, mode string) (string, bool) {
		t.Helper()
		f, err := workloads.Lookup("synth_strand")
		if err != nil {
			t.Fatal(err)
		}
		app, pm, err := workloads.Build(f, 200)
		if err != nil {
			t.Fatal(err)
		}
		det := buildAttached(pm, cfg, mode)
		if mode == "sharded" {
			if sd := det.(*core.ShardedDetector); sd.Fallback() {
				t.Fatalf("strand workload unexpectedly fell back: %s", sd.FallbackReason())
			}
		}
		pm.SetCrashTrap(trap)
		trapped := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashTrap); !ok {
						panic(r)
					}
					trapped = true
				}
			}()
			if err := workloads.RunInserts(app, 200, 42); err != nil {
				t.Fatal(err)
			}
			_ = app.Close()
			pm.End()
		}()
		return det.Report().Summary(), trapped
	}
	for _, trap := range []uint64{7, 113, 997} {
		inline, okInline := runStrand(trap, "inline")
		if !okInline {
			t.Fatalf("trap %d did not fire", trap)
		}
		sharded, okSharded := runStrand(trap, "sharded")
		if !okSharded {
			t.Fatalf("trap %d did not fire under sharded delivery", trap)
		}
		if inline != sharded {
			t.Errorf("trap %d: detector state differs at the trap\n--- inline ---\n%s--- sharded ---\n%s",
				trap, inline, sharded)
		}
	}
}

// TestMeasurePipelineSmoke exercises the measurement path end to end on a
// tiny multi-threaded run.
func TestMeasurePipelineSmoke(t *testing.T) {
	old := Repeats
	Repeats = 1
	defer func() { Repeats = old }()
	for _, workload := range []string{"memcached", "memcached-strand", "redis"} {
		threads := 4
		if workload == "redis" {
			threads = 1
		}
		results, err := MeasurePipeline(workload, 500, threads)
		if err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		if len(results) != 3 {
			t.Fatalf("%s: got %d results, want 3", workload, len(results))
		}
		want := PipelineModes()
		for i, r := range results {
			if r.Mode != want[i] {
				t.Fatalf("%s: result %d has mode %q, want %q", workload, i, r.Mode, want[i])
			}
			if r.Events == 0 || r.Nanos <= 0 || r.OpsPerSec <= 0 {
				t.Errorf("%s/%s: degenerate measurement %+v", workload, r.Mode, r)
			}
			if r.LiveNanos <= 0 || r.DrainNanos < 0 || r.Nanos != r.LiveNanos+r.DrainNanos {
				t.Errorf("%s/%s: phase accounting broken %+v", workload, r.Mode, r)
			}
		}
		sharded := results[2]
		if workload == "memcached-strand" {
			if sharded.Fallback || sharded.Shards != threads {
				t.Errorf("%s: sharded row should genuinely shard across %d engines: %+v",
					workload, threads, sharded)
			}
		} else {
			// Strict memcached and epoch redis are not shardable: the row
			// must say so instead of posing as a scaling measurement.
			if !sharded.Fallback || sharded.Shards != 1 {
				t.Errorf("%s: sharded row should be flagged as fallback: %+v", workload, sharded)
			}
		}
		// Multi-threaded memcached interleavings may shift event counts
		// between runs; single-threaded redis is deterministic.
		if workload == "redis" && (results[0].Events != results[1].Events ||
			results[0].Events != results[2].Events) {
			t.Errorf("%s: event counts differ between modes: %d / %d / %d",
				workload, results[0].Events, results[1].Events, results[2].Events)
		}
	}
}

// TestMeasurePipelineUnknownWorkload covers the error path.
func TestMeasurePipelineUnknownWorkload(t *testing.T) {
	if _, err := MeasurePipeline("nope", 10, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("expected unknown-workload error, got %v", err)
	}
}
