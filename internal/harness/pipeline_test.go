package harness

import (
	"strings"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/workloads"
)

// differentialConfigs are the four detector configurations the differential
// suites sweep (the same set index_test.go uses): one per persistency
// model, plus selective registration.
func differentialConfigs() []struct {
	name     string
	workload string
	cfg      core.Config
} {
	return []struct {
		name     string
		workload string
		cfg      core.Config
	}{
		{"strict", "b_tree", core.Config{Model: rules.Strict}},
		{"strict-selective", "b_tree", core.Config{Model: rules.Strict, RequireRegistration: true}},
		{"epoch", "hashmap_tx", core.Config{Model: rules.Epoch}},
		{"strand", "synth_strand", core.Config{Model: rules.Strand}},
	}
}

// attachMode attaches the detector in one of the three delivery modes.
func attachMode(pm *pmem.Pool, det *core.Detector, mode string) {
	switch mode {
	case "inline":
		pm.Attach(det)
	case "eager":
		pm.AttachAsync(det)
	case "lazy":
		pm.AttachWith(det, pmem.AttachOptions{Async: true, Lazy: true})
	default:
		panic("unknown attach mode " + mode)
	}
}

// runWorkloadWith runs the deterministic workload once with the detector
// attached in the requested mode and returns the report summary.
func runWorkloadWith(t *testing.T, workload string, cfg core.Config, n int, mode string) string {
	t.Helper()
	f, err := workloads.Lookup(workload)
	if err != nil {
		t.Fatal(err)
	}
	app, pm, err := workloads.Build(f, n)
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(cfg)
	attachMode(pm, det, mode)
	if err := workloads.RunInserts(app, n, 42); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	pm.End()
	return det.Report().Summary()
}

// TestPipelineDifferentialModels proves inline, eager-pipelined and
// lazy-pipelined delivery produce byte-identical reports across all four
// detector configurations on deterministic single-threaded workloads.
func TestPipelineDifferentialModels(t *testing.T) {
	const n = 800
	for _, tc := range differentialConfigs() {
		inline := runWorkloadWith(t, tc.workload, tc.cfg, n, "inline")
		for _, mode := range []string{"eager", "lazy"} {
			async := runWorkloadWith(t, tc.workload, tc.cfg, n, mode)
			if inline != async {
				t.Errorf("%s (%s): reports differ between delivery modes\n--- inline ---\n%s--- %s ---\n%s",
					tc.name, tc.workload, inline, mode, async)
			}
		}
	}
}

// runTrappedWorkload runs the workload with a crash trap armed and returns
// the detector's report summary at the moment of the trap, plus whether
// the trap fired.
func runTrappedWorkload(t *testing.T, cfg core.Config, trap uint64, mode string) (summary string, trapped bool) {
	t.Helper()
	f, err := workloads.Lookup("b_tree")
	if err != nil {
		t.Fatal(err)
	}
	app, pm, err := workloads.Build(f, 200)
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(cfg)
	attachMode(pm, det, mode)
	pm.SetCrashTrap(trap)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.CrashTrap); !ok {
					panic(r)
				}
				trapped = true
			}
		}()
		if err := workloads.RunInserts(app, 200, 42); err != nil {
			t.Fatal(err)
		}
		_ = app.Close()
		pm.End()
	}()
	return det.Report().Summary(), trapped
}

// TestPipelineDifferentialCrashTrap fires crash traps mid-stream and
// requires the pipelined detector to have consumed the identical prefix as
// the inline one when the trap unwinds.
func TestPipelineDifferentialCrashTrap(t *testing.T) {
	cfg := core.Config{Model: rules.Strict}
	for _, trap := range []uint64{5, 97, 1203} {
		inline, okInline := runTrappedWorkload(t, cfg, trap, "inline")
		if !okInline {
			t.Fatalf("trap %d did not fire", trap)
		}
		for _, mode := range []string{"eager", "lazy"} {
			async, okAsync := runTrappedWorkload(t, cfg, trap, mode)
			if okInline != okAsync {
				t.Fatalf("trap %d fired inline=%v %s=%v", trap, okInline, mode, okAsync)
			}
			if inline != async {
				t.Errorf("trap %d: detector state differs at the trap\n--- inline ---\n%s--- %s ---\n%s",
					trap, inline, mode, async)
			}
		}
	}
}

// TestMeasurePipelineSmoke exercises the measurement path end to end on a
// tiny multi-threaded run.
func TestMeasurePipelineSmoke(t *testing.T) {
	old := Repeats
	Repeats = 1
	defer func() { Repeats = old }()
	for _, workload := range []string{"memcached", "redis"} {
		threads := 4
		if workload == "redis" {
			threads = 1
		}
		pair, err := MeasurePipeline(workload, 500, threads)
		if err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		if pair[0].Mode != "inline" || pair[1].Mode != "pipelined" {
			t.Fatalf("%s: unexpected modes %q/%q", workload, pair[0].Mode, pair[1].Mode)
		}
		for _, r := range pair {
			if r.Events == 0 || r.Nanos <= 0 || r.OpsPerSec <= 0 {
				t.Errorf("%s/%s: degenerate measurement %+v", workload, r.Mode, r)
			}
			if r.LiveNanos <= 0 || r.DrainNanos < 0 || r.Nanos != r.LiveNanos+r.DrainNanos {
				t.Errorf("%s/%s: phase accounting broken %+v", workload, r.Mode, r)
			}
		}
		// Multi-threaded memcached interleavings may shift event counts
		// between runs; single-threaded redis is deterministic.
		if workload == "redis" && pair[0].Events != pair[1].Events {
			t.Errorf("%s: event counts differ between modes: %d vs %d",
				workload, pair[0].Events, pair[1].Events)
		}
	}
}

// TestMeasurePipelineUnknownWorkload covers the error path.
func TestMeasurePipelineUnknownWorkload(t *testing.T) {
	if _, err := MeasurePipeline("nope", 10, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("expected unknown-workload error, got %v", err)
	}
}
