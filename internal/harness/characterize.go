package harness

import (
	"fmt"
	"strings"

	"pmdebugger/internal/memcached"
	"pmdebugger/internal/stats"
	"pmdebugger/internal/workloads"
	"pmdebugger/internal/ycsb"
)

// CharacterizationRow pairs a benchmark label with its §3 metrics.
type CharacterizationRow struct {
	Name   string
	Result stats.Result
}

// CharacterizeMicro runs the Fig. 2 characterization on one Table 4
// micro-benchmark.
func CharacterizeMicro(name string, inserts int) (CharacterizationRow, error) {
	f, err := workloads.Lookup(name)
	if err != nil {
		return CharacterizationRow{}, err
	}
	app, pm, err := workloads.Build(f, inserts)
	if err != nil {
		return CharacterizationRow{}, err
	}
	ch := stats.New()
	pm.Attach(ch)
	if err := workloads.RunInserts(app, inserts, 42); err != nil {
		return CharacterizationRow{}, err
	}
	if err := app.Close(); err != nil {
		return CharacterizationRow{}, err
	}
	pm.End()
	return CharacterizationRow{Name: name, Result: ch.Result()}, nil
}

// CharacterizeYCSB runs the Fig. 2 characterization on one YCSB load
// against memcached.
func CharacterizeYCSB(w ycsb.Workload, records, ops int) (CharacterizationRow, error) {
	cache, err := memcached.New(memcached.Config{
		PoolSize: 128 << 20, HashBuckets: 1 << 14, UseCAS: true,
	})
	if err != nil {
		return CharacterizationRow{}, err
	}
	ch := stats.New()
	cache.PM().Attach(ch)
	store := &ycsb.MemcachedStore{Cache: cache}
	if err := ycsb.Run(w, store, ycsb.Config{Records: records, Ops: ops, Seed: 42}); err != nil {
		return CharacterizationRow{}, err
	}
	cache.PM().End()
	return CharacterizationRow{Name: w.String(), Result: ch.Result()}, nil
}

// Fig2MicroNames lists the micro-benchmarks of Fig. 2 in figure order.
func Fig2MicroNames() []string {
	return []string{"b_tree", "c_tree", "rb_tree", "hashmap_tx", "hashmap_atomic"}
}

// CharacterizeAll regenerates the full Fig. 2 dataset: the five
// micro-benchmarks plus YCSB A–F over memcached.
func CharacterizeAll(inserts, ycsbRecords, ycsbOps int) ([]CharacterizationRow, error) {
	var rows []CharacterizationRow
	for _, name := range Fig2MicroNames() {
		row, err := CharacterizeMicro(name, inserts)
		if err != nil {
			return nil, fmt.Errorf("characterize %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	for _, w := range ycsb.All() {
		row, err := CharacterizeYCSB(w, ycsbRecords, ycsbOps)
		if err != nil {
			return nil, fmt.Errorf("characterize %s: %w", w, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCharacterization renders the Fig. 2 table.
func FormatCharacterization(rows []CharacterizationRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: PM program characterization\n")
	sb.WriteString("  (a) distance distribution   (b) collective writeback   (c) instruction mix\n\n")
	sb.WriteString(stats.Header())
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(r.Result.Row(r.Name))
		sb.WriteByte('\n')
	}
	return sb.String()
}
