package harness

import (
	"fmt"
	"reflect"
	"time"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/crashtest/scenarios"
)

// CrashResult is one crash-space exploration measurement, JSON-shaped for
// the BENCH_crash.json artifact.
type CrashResult struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Workers       int     `json:"workers"`
	Nanos         int64   `json:"nanos"`
	Events        uint64  `json:"events"`
	Points        int     `json:"points"`
	ImagesChecked int     `json:"images_checked"`
	PrunedPoints  int     `json:"pruned_points"`
	DedupImages   int     `json:"dedup_images"`
	Failures      int     `json:"failures"`
	PointsPerSec  float64 `json:"points_per_sec"`
}

// crashEngines are the measured configurations: the exhaustive re-execution
// reference, the record-once engine with a worker pool, and the same engine
// with both reducers on.
func crashEngines(workers int) []struct {
	name string
	cfg  func(crashtest.Config) crashtest.Config
	run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
} {
	return []struct {
		name string
		cfg  func(crashtest.Config) crashtest.Config
		run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
	}{
		{"serial", func(c crashtest.Config) crashtest.Config { return c }, crashtest.RunSerial},
		{"parallel", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			return c
		}, crashtest.Run},
		{"parallel+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			return c
		}, crashtest.Run},
	}
}

// MeasureCrash explores the named scenario's crash space under all three
// engine configurations, verifying that every engine reports the identical
// failure set before timing anything (min of Repeats runs, as the other
// harness measurements do).
func MeasureCrash(workload string, n, stride, workers int) ([]CrashResult, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	base := crashtest.Config{PoolSize: 1 << 21, Stride: stride}
	engines := crashEngines(workers)

	// Correctness before speed: every engine must report the serial
	// reference's exact failure set.
	results := make([]*crashtest.Result, len(engines))
	for i, eng := range engines {
		res, err := eng.run(prog, check, eng.cfg(base))
		if err != nil {
			return nil, fmt.Errorf("crash %s/%s: %w", workload, eng.name, err)
		}
		results[i] = res
	}
	for i := 1; i < len(engines); i++ {
		if !reflect.DeepEqual(results[i].FailureKeys(), results[0].FailureKeys()) {
			return nil, fmt.Errorf("crash %s: %s failure set diverges from serial\n %s: %v\n serial: %v",
				workload, engines[i].name, engines[i].name, results[i].FailureKeys(), results[0].FailureKeys())
		}
		if results[i].Points != results[0].Points || results[i].TotalEvents != results[0].TotalEvents {
			return nil, fmt.Errorf("crash %s: %s explored %d points of %d events, serial %d of %d",
				workload, engines[i].name, results[i].Points, results[i].TotalEvents,
				results[0].Points, results[0].TotalEvents)
		}
	}

	out := make([]CrashResult, len(engines))
	for i, eng := range engines {
		cfg := eng.cfg(base)
		best := time.Duration(0)
		for r := 0; r < Repeats; r++ {
			start := time.Now()
			if _, err := eng.run(prog, check, cfg); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		res := results[i]
		out[i] = CrashResult{
			Workload:      workload,
			Engine:        eng.name,
			Workers:       cfg.Workers,
			Nanos:         best.Nanoseconds(),
			Events:        res.TotalEvents,
			Points:        res.Points,
			ImagesChecked: res.Images,
			PrunedPoints:  res.PrunedPoints,
			DedupImages:   res.DedupImages,
			Failures:      len(res.Failures),
			PointsPerSec:  float64(res.Points) / best.Seconds(),
		}
	}
	return out, nil
}
