package harness

import (
	"fmt"
	"reflect"
	"time"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/crashtest/scenarios"
)

// CrashResult is one crash-space exploration measurement, JSON-shaped for
// the BENCH_crash.json artifact.
type CrashResult struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Workers       int     `json:"workers"`
	Nanos         int64   `json:"nanos"`
	Events        uint64  `json:"events"`
	Points        int     `json:"points"`
	ImagesChecked int     `json:"images_checked"`
	PrunedPoints  int     `json:"pruned_points"`
	DedupImages   int     `json:"dedup_images"`
	Failures      int     `json:"failures"`
	PointsPerSec  float64 `json:"points_per_sec"`
	ZeroPages     uint64  `json:"zero_pages"`
	SharedPages   uint64  `json:"shared_pages"`
	PrivatePages  uint64  `json:"private_pages"`
}

// crashEngines are the measured configurations: the exhaustive re-execution
// reference, the record-once engine with a worker pool, the same engine with
// both reducers on, and the reducer engine over the two baseline snapshot
// models (flat page tables and deep-copy images).
func crashEngines(workers int) []struct {
	name string
	cfg  func(crashtest.Config) crashtest.Config
	run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
} {
	return []struct {
		name string
		cfg  func(crashtest.Config) crashtest.Config
		run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
	}{
		{"serial", func(c crashtest.Config) crashtest.Config { return c }, crashtest.RunSerial},
		{"parallel", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			return c
		}, crashtest.Run},
		{"parallel+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			return c
		}, crashtest.Run},
		{"flat+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			c.FlatTables = true
			return c
		}, crashtest.Run},
		{"deepcopy+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			c.DeepCopyImages = true
			return c
		}, crashtest.Run},
	}
}

// MeasureCrash explores the named scenario's crash space under every engine
// configuration, verifying that each reports the identical failure set
// before timing anything (min of Repeats runs, as the other harness
// measurements do).
func MeasureCrash(workload string, n, stride, workers int) ([]CrashResult, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	base := crashtest.Config{PoolSize: 1 << 21, Stride: stride}
	engines := crashEngines(workers)

	// Correctness before speed: every engine must report the serial
	// reference's exact failure set.
	results := make([]*crashtest.Result, len(engines))
	for i, eng := range engines {
		res, err := eng.run(prog, check, eng.cfg(base))
		if err != nil {
			return nil, fmt.Errorf("crash %s/%s: %w", workload, eng.name, err)
		}
		results[i] = res
	}
	for i := 1; i < len(engines); i++ {
		if !reflect.DeepEqual(results[i].FailureKeys(), results[0].FailureKeys()) {
			return nil, fmt.Errorf("crash %s: %s failure set diverges from serial\n %s: %v\n serial: %v",
				workload, engines[i].name, engines[i].name, results[i].FailureKeys(), results[0].FailureKeys())
		}
		if results[i].Points != results[0].Points || results[i].TotalEvents != results[0].TotalEvents {
			return nil, fmt.Errorf("crash %s: %s explored %d points of %d events, serial %d of %d",
				workload, engines[i].name, results[i].Points, results[i].TotalEvents,
				results[0].Points, results[0].TotalEvents)
		}
	}

	out := make([]CrashResult, len(engines))
	for i, eng := range engines {
		cfg := eng.cfg(base)
		best := time.Duration(0)
		for r := 0; r < Repeats; r++ {
			start := time.Now()
			if _, err := eng.run(prog, check, cfg); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		res := results[i]
		out[i] = CrashResult{
			Workload:      workload,
			Engine:        eng.name,
			Workers:       cfg.Workers,
			Nanos:         best.Nanoseconds(),
			Events:        res.TotalEvents,
			Points:        res.Points,
			ImagesChecked: res.Images,
			PrunedPoints:  res.PrunedPoints,
			DedupImages:   res.DedupImages,
			Failures:      len(res.Failures),
			PointsPerSec:  float64(res.Points) / best.Seconds(),
			ZeroPages:     res.ZeroPages,
			SharedPages:   res.SharedPages,
			PrivatePages:  res.PrivatePages,
		}
	}
	return out, nil
}

// CrashScalingPoint is one (pool size, engine) cell of the crash-image
// scaling sweep: the same workload, op count and crash points explored at a
// growing pool size under chunk-shared copy-on-write snapshots ("cow"), the
// flat-table baseline ("flat": pages shared but table pointers copied per
// image, O(table length)) and the deep-copy baseline ("deepcopy", O(pool
// size) bytes per image). COW cost is O(dirty) in both bytes and table
// slots, so its points/sec should stay near-flat across the sweep while the
// two baselines fall off.
type CrashScalingPoint struct {
	Workload     string  `json:"workload"`
	PoolMiB      int     `json:"pool_mib"`
	Engine       string  `json:"engine"` // "cow", "flat" or "deepcopy"
	Nanos        int64   `json:"nanos"`
	Points       int     `json:"points"`
	Images       int     `json:"images_checked"`
	PointsPerSec float64 `json:"points_per_sec"`
	ZeroPages    uint64  `json:"zero_pages"`
	SharedPages  uint64  `json:"shared_pages"`
	PrivatePages uint64  `json:"private_pages"`
}

// MeasureCrashScaling runs the pool-size sweep for one workload: for each
// size it first verifies that the chunked COW engine, the flat-table engine,
// the deep-copy engine and the exhaustive serial reference agree on the
// failure set, then times the record-once engines (min of Repeats, all with
// the reducers on — the benchmark configuration). The op count and
// crash-point cap are fixed across sizes, so the only variable is how much
// pool each image spans. Deep-copy rows stop above deepLimitMiB (0 = no
// limit): the O(pool) baseline at gigabyte pools costs seconds per image and
// would dominate the sweep's wall clock without adding information.
func MeasureCrashScaling(workload string, n, stride, workers, maxPoints int, sizesMiB []int, deepLimitMiB int) ([]CrashScalingPoint, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	var out []CrashScalingPoint
	for _, mib := range sizesMiB {
		base := crashtest.Config{
			PoolSize: uint64(mib) << 20, Stride: stride, MaxPoints: maxPoints,
			Workers: workers, Prune: true, Dedup: true,
		}
		flatCfg := base
		flatCfg.FlatTables = true
		deepCfg := base
		deepCfg.DeepCopyImages = true

		serial, err := crashtest.RunSerial(prog, check, base)
		if err != nil {
			return nil, fmt.Errorf("crash scaling %s/%dMiB serial: %w", workload, mib, err)
		}
		engines := []struct {
			name string
			cfg  crashtest.Config
		}{{"cow", base}, {"flat", flatCfg}}
		if deepLimitMiB <= 0 || mib <= deepLimitMiB {
			engines = append(engines, struct {
				name string
				cfg  crashtest.Config
			}{"deepcopy", deepCfg})
		}
		for _, eng := range engines {
			res, err := crashtest.Run(prog, check, eng.cfg)
			if err != nil {
				return nil, fmt.Errorf("crash scaling %s/%dMiB %s: %w", workload, mib, eng.name, err)
			}
			if !reflect.DeepEqual(res.FailureKeys(), serial.FailureKeys()) {
				return nil, fmt.Errorf("crash scaling %s/%dMiB: %s failure set diverges from serial\n %s: %v\n serial: %v",
					workload, mib, eng.name, eng.name, res.FailureKeys(), serial.FailureKeys())
			}
			best := time.Duration(0)
			for r := 0; r < Repeats; r++ {
				start := time.Now()
				if _, err := crashtest.Run(prog, check, eng.cfg); err != nil {
					return nil, err
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			out = append(out, CrashScalingPoint{
				Workload:     workload,
				PoolMiB:      mib,
				Engine:       eng.name,
				Nanos:        best.Nanoseconds(),
				Points:       res.Points,
				Images:       res.Images,
				PointsPerSec: float64(res.Points) / best.Seconds(),
				ZeroPages:    res.ZeroPages,
				SharedPages:  res.SharedPages,
				PrivatePages: res.PrivatePages,
			})
		}
	}
	return out, nil
}
