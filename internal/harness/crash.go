package harness

import (
	"fmt"
	"reflect"
	"time"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/crashtest/scenarios"
)

// CrashResult is one crash-space exploration measurement, JSON-shaped for
// the BENCH_crash.json artifact.
type CrashResult struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Workers       int     `json:"workers"`
	Segments      int     `json:"segments,omitempty"`
	Nanos         int64   `json:"nanos"`
	Events        uint64  `json:"events"`
	Points        int     `json:"points"`
	ImagesChecked int     `json:"images_checked"`
	PrunedPoints  int     `json:"pruned_points"`
	DedupImages   int     `json:"dedup_images"`
	Failures      int     `json:"failures"`
	PointsPerSec  float64 `json:"points_per_sec"`
	ZeroPages     uint64  `json:"zero_pages"`
	SharedPages   uint64  `json:"shared_pages"`
	PrivatePages  uint64  `json:"private_pages"`
	// Per-phase time, summed across goroutines (the sum can exceed Nanos on
	// parallel runs). Zero for the serial reference, which re-executes the
	// program instead of replaying a recorded journal.
	RecordNanos      int64 `json:"record_nanos,omitempty"`
	ReplayNanos      int64 `json:"replay_nanos,omitempty"`
	SnapshotNanos    int64 `json:"snapshot_nanos,omitempty"`
	FingerprintNanos int64 `json:"fingerprint_nanos,omitempty"`
	CheckNanos       int64 `json:"check_nanos,omitempty"`
}

// crashEngines are the measured configurations: the exhaustive re-execution
// reference, the record-once engine with a worker pool, the same engine with
// both reducers on, the reducer engine over the two baseline snapshot models
// (flat page tables and deep-copy images), and the reducer engine with
// fork-parallel segment dispatch. New rows must be appended at the end:
// cmd/pmbench indexes the returned slice positionally.
func crashEngines(workers int) []struct {
	name string
	cfg  func(crashtest.Config) crashtest.Config
	run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
} {
	return []struct {
		name string
		cfg  func(crashtest.Config) crashtest.Config
		run  func(crashtest.Program, crashtest.Checker, crashtest.Config) (*crashtest.Result, error)
	}{
		{"serial", func(c crashtest.Config) crashtest.Config { return c }, crashtest.RunSerial},
		{"parallel", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			return c
		}, crashtest.Run},
		{"parallel+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			return c
		}, crashtest.Run},
		{"flat+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			c.FlatTables = true
			return c
		}, crashtest.Run},
		{"deepcopy+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			c.DeepCopyImages = true
			return c
		}, crashtest.Run},
		{"segmented+reducers", func(c crashtest.Config) crashtest.Config {
			c.Workers = workers
			c.Prune = true
			c.Dedup = true
			c.Segments = workers
			return c
		}, crashtest.Run},
	}
}

// MeasureCrash explores the named scenario's crash space under every engine
// configuration, verifying that each reports the identical failure set
// before timing anything (min of Repeats runs, as the other harness
// measurements do).
func MeasureCrash(workload string, n, stride, workers int) ([]CrashResult, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	base := crashtest.Config{PoolSize: 1 << 21, Stride: stride}
	engines := crashEngines(workers)

	// Correctness before speed: every engine must report the serial
	// reference's exact failure set.
	results := make([]*crashtest.Result, len(engines))
	for i, eng := range engines {
		res, err := eng.run(prog, check, eng.cfg(base))
		if err != nil {
			return nil, fmt.Errorf("crash %s/%s: %w", workload, eng.name, err)
		}
		results[i] = res
	}
	for i := 1; i < len(engines); i++ {
		if !reflect.DeepEqual(results[i].FailureKeys(), results[0].FailureKeys()) {
			return nil, fmt.Errorf("crash %s: %s failure set diverges from serial\n %s: %v\n serial: %v",
				workload, engines[i].name, engines[i].name, results[i].FailureKeys(), results[0].FailureKeys())
		}
		if results[i].Points != results[0].Points || results[i].TotalEvents != results[0].TotalEvents {
			return nil, fmt.Errorf("crash %s: %s explored %d points of %d events, serial %d of %d",
				workload, engines[i].name, results[i].Points, results[i].TotalEvents,
				results[0].Points, results[0].TotalEvents)
		}
	}

	out := make([]CrashResult, len(engines))
	for i, eng := range engines {
		cfg := eng.cfg(base)
		best := time.Duration(0)
		for r := 0; r < Repeats; r++ {
			start := time.Now()
			if _, err := eng.run(prog, check, cfg); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		res := results[i]
		out[i] = CrashResult{
			Workload:         workload,
			Engine:           eng.name,
			Workers:          cfg.Workers,
			Segments:         cfg.Segments,
			Nanos:            best.Nanoseconds(),
			Events:           res.TotalEvents,
			Points:           res.Points,
			ImagesChecked:    res.Images,
			PrunedPoints:     res.PrunedPoints,
			DedupImages:      res.DedupImages,
			Failures:         len(res.Failures),
			PointsPerSec:     float64(res.Points) / best.Seconds(),
			ZeroPages:        res.ZeroPages,
			SharedPages:      res.SharedPages,
			PrivatePages:     res.PrivatePages,
			RecordNanos:      res.RecordNanos,
			ReplayNanos:      res.ReplayNanos,
			SnapshotNanos:    res.SnapshotNanos,
			FingerprintNanos: res.FingerprintNanos,
			CheckNanos:       res.CheckNanos,
		}
	}
	return out, nil
}

// CrashScalingPoint is one (pool size, engine) cell of the crash-image
// scaling sweep: the same workload, op count and crash points explored at a
// growing pool size under chunk-shared copy-on-write snapshots ("cow"), the
// flat-table baseline ("flat": pages shared but table pointers copied per
// image, O(table length)) and the deep-copy baseline ("deepcopy", O(pool
// size) bytes per image). COW cost is O(dirty) in both bytes and table
// slots, so its points/sec should stay near-flat across the sweep while the
// two baselines fall off.
type CrashScalingPoint struct {
	Workload     string  `json:"workload"`
	PoolMiB      int     `json:"pool_mib"`
	Engine       string  `json:"engine"` // "cow", "flat" or "deepcopy"
	Nanos        int64   `json:"nanos"`
	Points       int     `json:"points"`
	Images       int     `json:"images_checked"`
	PointsPerSec float64 `json:"points_per_sec"`
	ZeroPages    uint64  `json:"zero_pages"`
	SharedPages  uint64  `json:"shared_pages"`
	PrivatePages uint64  `json:"private_pages"`
}

// MeasureCrashScaling runs the pool-size sweep for one workload: for each
// size it first verifies that the chunked COW engine, the flat-table engine,
// the deep-copy engine and the exhaustive serial reference agree on the
// failure set, then times the record-once engines (min of Repeats, all with
// the reducers on — the benchmark configuration). The op count and
// crash-point cap are fixed across sizes, so the only variable is how much
// pool each image spans. Deep-copy rows stop above deepLimitMiB (0 = no
// limit): the O(pool) baseline at gigabyte pools costs seconds per image and
// would dominate the sweep's wall clock without adding information.
func MeasureCrashScaling(workload string, n, stride, workers, maxPoints int, sizesMiB []int, deepLimitMiB int) ([]CrashScalingPoint, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	var out []CrashScalingPoint
	for _, mib := range sizesMiB {
		base := crashtest.Config{
			PoolSize: uint64(mib) << 20, Stride: stride, MaxPoints: maxPoints,
			Workers: workers, Prune: true, Dedup: true,
		}
		flatCfg := base
		flatCfg.FlatTables = true
		deepCfg := base
		deepCfg.DeepCopyImages = true

		serial, err := crashtest.RunSerial(prog, check, base)
		if err != nil {
			return nil, fmt.Errorf("crash scaling %s/%dMiB serial: %w", workload, mib, err)
		}
		engines := []struct {
			name string
			cfg  crashtest.Config
		}{{"cow", base}, {"flat", flatCfg}}
		if deepLimitMiB <= 0 || mib <= deepLimitMiB {
			engines = append(engines, struct {
				name string
				cfg  crashtest.Config
			}{"deepcopy", deepCfg})
		}
		for _, eng := range engines {
			res, err := crashtest.Run(prog, check, eng.cfg)
			if err != nil {
				return nil, fmt.Errorf("crash scaling %s/%dMiB %s: %w", workload, mib, eng.name, err)
			}
			if !reflect.DeepEqual(res.FailureKeys(), serial.FailureKeys()) {
				return nil, fmt.Errorf("crash scaling %s/%dMiB: %s failure set diverges from serial\n %s: %v\n serial: %v",
					workload, mib, eng.name, eng.name, res.FailureKeys(), serial.FailureKeys())
			}
			best := time.Duration(0)
			for r := 0; r < Repeats; r++ {
				start := time.Now()
				if _, err := crashtest.Run(prog, check, eng.cfg); err != nil {
					return nil, err
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			out = append(out, CrashScalingPoint{
				Workload:     workload,
				PoolMiB:      mib,
				Engine:       eng.name,
				Nanos:        best.Nanoseconds(),
				Points:       res.Points,
				Images:       res.Images,
				PointsPerSec: float64(res.Points) / best.Seconds(),
				ZeroPages:    res.ZeroPages,
				SharedPages:  res.SharedPages,
				PrivatePages: res.PrivatePages,
			})
		}
	}
	return out, nil
}

// CrashSegmentPoint is one (workload, segment count) cell of the fork-parallel
// segment sweep: the same exploration — workers, reducers and journal fixed —
// dispatched over a growing number of forked segments. Counters must be
// invariant in the segment count (cross-segment duplicates are reclassified at
// merge time), so the only thing that moves is wall clock.
type CrashSegmentPoint struct {
	Workload     string  `json:"workload"`
	Segments     int     `json:"segments"`
	Nanos        int64   `json:"nanos"`
	Points       int     `json:"points"`
	Images       int     `json:"images_checked"`
	PrunedPoints int     `json:"pruned_points"`
	DedupImages  int     `json:"dedup_images"`
	ImagesPerSec float64 `json:"images_per_sec"`
	// Per-phase time, summed across goroutines; on multi-core hosts the sum
	// exceeds Nanos, which is exactly the headroom segmenting exploits.
	ReplayNanos      int64 `json:"replay_nanos"`
	SnapshotNanos    int64 `json:"snapshot_nanos"`
	FingerprintNanos int64 `json:"fingerprint_nanos"`
	CheckNanos       int64 `json:"check_nanos"`
}

// MeasureCrashSegments runs the segment sweep for one workload: the reducer
// engine at every segment count in segCounts, each first verified against the
// exhaustive serial reference (failure set) and against the first segment
// count (every reducer counter — splitting the boundary list must be
// unobservable), then timed as min of Repeats.
func MeasureCrashSegments(workload string, n, stride, workers int, segCounts []int) ([]CrashSegmentPoint, error) {
	prog, check, err := scenarios.Build(workload, n, false)
	if err != nil {
		return nil, err
	}
	base := crashtest.Config{
		PoolSize: 1 << 21, Stride: stride,
		Workers: workers, Prune: true, Dedup: true,
	}
	serial, err := crashtest.RunSerial(prog, check, base)
	if err != nil {
		return nil, fmt.Errorf("crash segments %s serial: %w", workload, err)
	}
	var out []CrashSegmentPoint
	var first *crashtest.Result
	for _, segs := range segCounts {
		cfg := base
		cfg.Segments = segs
		res, err := crashtest.Run(prog, check, cfg)
		if err != nil {
			return nil, fmt.Errorf("crash segments %s/%d: %w", workload, segs, err)
		}
		if !reflect.DeepEqual(res.FailureKeys(), serial.FailureKeys()) {
			return nil, fmt.Errorf("crash segments %s/%d: failure set diverges from serial\n got: %v\n serial: %v",
				workload, segs, res.FailureKeys(), serial.FailureKeys())
		}
		if first == nil {
			first = res
		} else if res.Points != first.Points || res.PrunedPoints != first.PrunedPoints ||
			res.Images != first.Images || res.DedupImages != first.DedupImages {
			return nil, fmt.Errorf("crash segments %s/%d: counters (%d,%d,%d,%d) != segments=%d (%d,%d,%d,%d)",
				workload, segs, res.Points, res.PrunedPoints, res.Images, res.DedupImages,
				segCounts[0], first.Points, first.PrunedPoints, first.Images, first.DedupImages)
		}
		best := time.Duration(0)
		for r := 0; r < Repeats; r++ {
			start := time.Now()
			if _, err := crashtest.Run(prog, check, cfg); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		out = append(out, CrashSegmentPoint{
			Workload:         workload,
			Segments:         segs,
			Nanos:            best.Nanoseconds(),
			Points:           res.Points,
			Images:           res.Images,
			PrunedPoints:     res.PrunedPoints,
			DedupImages:      res.DedupImages,
			ImagesPerSec:     float64(res.Images) / best.Seconds(),
			ReplayNanos:      res.ReplayNanos,
			SnapshotNanos:    res.SnapshotNanos,
			FingerprintNanos: res.FingerprintNanos,
			CheckNanos:       res.CheckNanos,
		})
	}
	return out, nil
}
