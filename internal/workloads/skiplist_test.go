package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func newSkipList(t *testing.T) (*SkipList, *pmem.Pool) {
	t.Helper()
	pm := pmem.New(1 << 22)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSkipList(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, pm
}

func TestSkipListAgainstReference(t *testing.T) {
	s, _ := newSkipList(t)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400))
		switch rng.Intn(3) {
		case 0, 1:
			v := uint64(i + 1)
			if err := s.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 2:
			removed, err := s.Remove(k)
			if err != nil {
				t.Fatal(err)
			}
			if _, inRef := ref[k]; removed != inRef {
				t.Fatalf("Remove(%d) = %v, ref %v", k, removed, inRef)
			}
			delete(ref, k)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", s.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := s.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	// Bottom level must be sorted.
	keys := s.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys unsorted: %v", keys)
	}
}

func TestSkipListLevelsDeterministic(t *testing.T) {
	counts := map[int]int{}
	for k := uint64(0); k < 4096; k++ {
		lvl := levelOf(k)
		if lvl < 1 || lvl > slMaxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		if lvl != levelOf(k) {
			t.Fatalf("level not deterministic for %d", k)
		}
		counts[lvl]++
	}
	// ~1/2 promotion: level 2 should hold roughly half of level 1.
	if counts[1] < counts[2] || counts[2] < counts[3] {
		t.Fatalf("level distribution not geometric: %v", counts)
	}
}

func TestSkipListCleanUnderPMDebugger(t *testing.T) {
	pm := pmem.New(1 << 22)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := pmdk.Create(pm, 4096)
	s, err := NewSkipList(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if _, err := s.Remove(i - 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("clean skiplist flagged:\n%s", rep.Summary())
	}
}

func TestSkipListCrashPrefixConsistency(t *testing.T) {
	const n = 16
	var rootCell uint64
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 4096)
		if err != nil {
			return err
		}
		s, err := NewSkipList(p)
		if err != nil {
			return err
		}
		rootCell, _ = p.Root()
		for k := uint64(0); k < n; k++ {
			if err := s.Insert(k, k*7); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, err := pmdk.Open(img)
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil
			}
			return err
		}
		if p.Ctx().Load64(rootCell) == 0 {
			return nil
		}
		s := ReattachSkipList(p, rootCell)
		keys := s.Keys()
		for i, k := range keys {
			if k != uint64(i) {
				return fmt.Errorf("non-prefix recovery: keys %v", keys)
			}
			if v, ok := s.Get(k); !ok || v != k*7 {
				return fmt.Errorf("key %d value %d,%v", k, v, ok)
			}
		}
		return nil
	}
	res, err := crashtest.Run(prog, check, crashtest.Config{PoolSize: 1 << 20, Stride: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("%d inconsistent recoveries, first: %s", len(res.Failures), res.Failures[0])
	}
}
