package workloads

import (
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func newQueue(t *testing.T, capacity uint64) (*Queue, *pmem.Pool) {
	t.Helper()
	pm := pmem.New(1 << 20)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(p, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return q, pm
}

func TestQueueFIFO(t *testing.T) {
	q, _ := newQueue(t, 8)
	for i := uint64(0); i < 8; i++ {
		if err := q.Enqueue(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(99); err == nil {
		t.Fatal("enqueue into full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d %v", v, ok)
	}
	for i := uint64(0); i < 8; i++ {
		v, err := q.Dequeue()
		if err != nil || v != i*10 {
			t.Fatalf("Dequeue %d = %d, %v", i, v, err)
		}
	}
	if _, err := q.Dequeue(); err == nil {
		t.Fatal("dequeue from empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q, _ := newQueue(t, 4)
	// Interleave so head wraps several times.
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Enqueue(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for i := 0; i < 3; i++ {
			v, err := q.Dequeue()
			if err != nil || v != expect {
				t.Fatalf("round %d: got %d want %d (%v)", round, v, expect, err)
			}
			expect++
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueCrashConsistency(t *testing.T) {
	q, pm := newQueue(t, 16)
	for i := uint64(0); i < 10; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	q.Dequeue()
	q.Dequeue()
	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := pmdk.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	q2 := &Queue{p: p2, root: q.root}
	if q2.Len() != 8 {
		t.Fatalf("recovered len = %d", q2.Len())
	}
	for i := uint64(2); i < 10; i++ {
		v, err := q2.Dequeue()
		if err != nil || v != i {
			t.Fatalf("recovered dequeue = %d, %v; want %d", v, err, i)
		}
	}
}

func TestQueueCleanUnderPMDebugger(t *testing.T) {
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := q.Dequeue(); err != nil {
				t.Fatal(err)
			}
			if _, err := q.Dequeue(); err != nil {
				t.Fatal(err)
			}
		}
	}
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("clean queue flagged:\n%s", rep.Summary())
	}
}

func TestQueueValidation(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := pmdk.Create(pm, 4096)
	if _, err := NewQueue(p, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
