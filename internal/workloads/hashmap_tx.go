package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// HashmapTX is a persistent chained hash table with transactional updates,
// the Go counterpart of PMDK's hashmap_tx example. Structural updates
// (inserts, removes, rehashes) run inside transactions; per-bucket insert
// statistics are updated with plain stores and persisted in deferred batches
// — the pattern responsible for hashmap_tx's outsized AVL tree in the
// paper's Fig. 11 ("many stores are persisted very late after stores").
//
// Root layout: +0 buckets addr, +8 nbuckets, +16 count, +24 stats addr.
// Entry layout: +0 key, +8 value, +16 next.
type HashmapTX struct {
	p    *pmdk.Pool
	root uint64

	statsSince  int // inserts since the last stats flush
	pendingFree []region
}

type region struct{ addr, size uint64 }

const (
	hmFBuckets  = 0
	hmFNBuckets = 8
	hmFCount    = 16
	hmFStats    = 24

	hmEntrySize = 24

	hmInitialBuckets = 64
	hmMaxLoad        = 4
	// hmStatsBuckets is the fixed size of the statistics counter region;
	// bucket indexes fold into it modulo this size.
	hmStatsBuckets = 512
	// hmStatsStride spaces the counters out (matching the real program's
	// scattered per-bucket metadata rather than a dense array).
	hmStatsStride = 24
	// hmStatsFlushEvery is the deferred persistence batch: bucket counters
	// accumulate unflushed for this many inserts.
	hmStatsFlushEvery = 512
)

// NewHashmapTX builds an empty transactional hashmap.
func NewHashmapTX(p *pmdk.Pool) (*HashmapTX, error) {
	rootObj, size := p.Root()
	if size < 32 {
		return nil, errors.New("hashmap_tx: root object too small")
	}
	h := &HashmapTX{p: p, root: rootObj}
	tx := p.Begin()
	buckets := h.newBucketArray(tx, hmInitialBuckets)
	stats := p.Alloc(hmStatsBuckets * hmStatsStride)
	tx.Add(h.root, 32)
	tx.Store64(h.root+hmFBuckets, buckets)
	tx.Store64(h.root+hmFNBuckets, hmInitialBuckets)
	tx.Store64(h.root+hmFCount, 0)
	tx.Store64(h.root+hmFStats, stats)
	tx.Commit()
	// Zero the stats region durably once (outside the transaction); it is
	// then maintained with deferred persistence.
	h.p.Ctx().StoreBytes(stats, make([]byte, hmStatsBuckets*hmStatsStride))
	h.p.Persist(stats, hmStatsBuckets*hmStatsStride)
	return h, nil
}

// Name returns "hashmap_tx".
func (h *HashmapTX) Name() string { return "hashmap_tx" }

// Model returns the epoch model.
func (h *HashmapTX) Model() rules.Model { return rules.Epoch }

func (h *HashmapTX) ld(addr uint64) uint64 { return h.p.Ctx().Load64(addr) }

func (h *HashmapTX) newBucketArray(tx *pmdk.Tx, n uint64) uint64 {
	addr := h.p.Alloc(n * 8)
	tx.Add(addr, n*8)
	tx.StoreBytes(addr, make([]byte, n*8))
	return addr
}

func hmHash(key, nbuckets uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key % nbuckets
}

// Get looks up key.
func (h *HashmapTX) Get(key uint64) (uint64, bool) {
	buckets := h.ld(h.root + hmFBuckets)
	nb := h.ld(h.root + hmFNBuckets)
	e := h.ld(buckets + hmHash(key, nb)*8)
	for e != 0 {
		if h.ld(e) == key {
			return h.ld(e + 8), true
		}
		e = h.ld(e + 16)
	}
	return 0, false
}

// Insert adds or updates key.
func (h *HashmapTX) Insert(key, value uint64) error {
	tx := h.p.Begin()
	buckets := h.ld(h.root + hmFBuckets)
	nb := h.ld(h.root + hmFNBuckets)
	count := h.ld(h.root + hmFCount)

	if count+1 > nb*hmMaxLoad {
		buckets, nb = h.rehash(tx, buckets, nb)
	}

	slot := buckets + hmHash(key, nb)*8
	// Update in place if present.
	for e := h.ld(slot); e != 0; e = h.ld(e + 16) {
		if h.ld(e) == key {
			tx.Set(e+8, value)
			tx.Commit()
			h.releasePending()
			return nil
		}
	}
	entry := h.p.Alloc(hmEntrySize)
	tx.Add(entry, hmEntrySize)
	tx.Store64(entry, key)
	tx.Store64(entry+8, value)
	tx.Store64(entry+16, h.ld(slot))
	tx.Set(slot, entry)
	tx.Set(h.root+hmFCount, count+1)
	tx.Commit()
	h.releasePending()

	h.bumpStats(hmHash(key, nb))
	return nil
}

// bumpStats updates the per-bucket insert counter with a plain store; the
// counters are flushed in batches (deferred persistence).
func (h *HashmapTX) bumpStats(bucket uint64) {
	stats := h.ld(h.root + hmFStats)
	slot := stats + (bucket%hmStatsBuckets)*hmStatsStride
	c := h.p.Ctx()
	c.Store64(slot, c.Load64(slot)+1)
	h.statsSince++
	if h.statsSince >= hmStatsFlushEvery {
		h.flushStats()
	}
}

// flushStats persists the whole statistics region.
func (h *HashmapTX) flushStats() {
	stats := h.ld(h.root + hmFStats)
	h.p.Flush(stats, hmStatsBuckets*hmStatsStride)
	h.p.Drain()
	h.statsSince = 0
}

// rehash doubles the table with a copy-on-write rebuild inside the caller's
// transaction: the new array and new entry copies are fresh allocations, so
// they need no undo snapshots — only the root pointers are logged. On abort
// or crash the fresh objects are unreachable garbage and the old table stays
// live; the old objects are freed after the transaction commits.
func (h *HashmapTX) rehash(tx *pmdk.Tx, oldBuckets, oldN uint64) (uint64, uint64) {
	newN := oldN * 2
	newBuckets := h.p.Alloc(newN * 8)
	tx.StoreBytes(newBuckets, make([]byte, newN*8))
	for i := uint64(0); i < oldN; i++ {
		for e := h.ld(oldBuckets + i*8); e != 0; e = h.ld(e + 16) {
			key := h.ld(e)
			ne := h.p.Alloc(hmEntrySize)
			slot := newBuckets + hmHash(key, newN)*8
			tx.Store64(ne, key)
			tx.Store64(ne+8, h.ld(e+8))
			tx.Store64(ne+16, h.ld(slot))
			tx.Store64(slot, ne)
			h.pendingFree = append(h.pendingFree, region{e, hmEntrySize})
		}
	}
	tx.Set(h.root+hmFBuckets, newBuckets)
	tx.Set(h.root+hmFNBuckets, newN)
	h.pendingFree = append(h.pendingFree, region{oldBuckets, oldN * 8})
	return newBuckets, newN
}

// releasePending frees regions retired by a committed rehash.
func (h *HashmapTX) releasePending() {
	for _, r := range h.pendingFree {
		h.p.Free(r.addr, r.size)
	}
	h.pendingFree = h.pendingFree[:0]
}

// Remove deletes key.
func (h *HashmapTX) Remove(key uint64) (bool, error) {
	buckets := h.ld(h.root + hmFBuckets)
	nb := h.ld(h.root + hmFNBuckets)
	slot := buckets + hmHash(key, nb)*8
	prev := uint64(0)
	e := h.ld(slot)
	for e != 0 && h.ld(e) != key {
		prev = e
		e = h.ld(e + 16)
	}
	if e == 0 {
		return false, nil
	}
	tx := h.p.Begin()
	if prev == 0 {
		tx.Set(slot, h.ld(e+16))
	} else {
		tx.Set(prev+16, h.ld(e+16))
	}
	tx.Set(h.root+hmFCount, h.ld(h.root+hmFCount)-1)
	tx.Commit()
	h.p.Free(e, hmEntrySize)
	return true, nil
}

// Count returns the number of keys.
func (h *HashmapTX) Count() uint64 { return h.ld(h.root + hmFCount) }

// Close persists the deferred statistics so the pool is clean.
func (h *HashmapTX) Close() error {
	h.flushStats()
	return nil
}
