package workloads

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
)

// forEachApp runs fn against every registered workload.
func forEachApp(t *testing.T, n int, fn func(t *testing.T, f Factory)) {
	t.Helper()
	for _, f := range Registry() {
		f := f
		t.Run(f.Name, func(t *testing.T) { fn(t, f) })
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"b_tree", "c_tree", "r_tree", "rb_tree",
		"hashmap_tx", "hashmap_atomic", "synth_strand"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for i, f := range reg {
		if f.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, f.Name, want[i])
		}
		if _, err := Lookup(f.Name); err != nil {
			t.Errorf("Lookup(%s): %v", f.Name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown workload succeeded")
	}
}

func TestInsertGetAgainstReference(t *testing.T) {
	forEachApp(t, 0, func(t *testing.T, f Factory) {
		app, _, err := Build(f, 2000)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(600))
			v := uint64(i)
			if err := app.Insert(k, v); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
			ref[k] = v
		}
		for k, v := range ref {
			got, ok := app.Get(k)
			if !ok || got != v {
				t.Fatalf("%s: Get(%d) = %d,%v; want %d", f.Name, k, got, ok, v)
			}
		}
		if _, ok := app.Get(1 << 40); ok {
			t.Fatalf("%s: absent key found", f.Name)
		}
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRemoveAgainstReference(t *testing.T) {
	forEachApp(t, 0, func(t *testing.T, f Factory) {
		app, _, err := Build(f, 3000)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0, 1:
				v := uint64(i + 1)
				if err := app.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			case 2:
				removed, err := app.Remove(k)
				if err != nil {
					t.Fatal(err)
				}
				_, inRef := ref[k]
				if removed != inRef {
					t.Fatalf("%s: Remove(%d) = %v, ref has %v (op %d)", f.Name, k, removed, inRef, i)
				}
				delete(ref, k)
			}
		}
		for k, v := range ref {
			got, ok := app.Get(k)
			if !ok || got != v {
				t.Fatalf("%s: Get(%d) = %d,%v; want %d", f.Name, k, got, ok, v)
			}
		}
		for k := uint64(0); k < 300; k++ {
			if _, inRef := ref[k]; inRef {
				continue
			}
			if _, ok := app.Get(k); ok {
				t.Fatalf("%s: deleted key %d still present", f.Name, k)
			}
		}
	})
}

func TestWorkloadsCleanUnderPMDebugger(t *testing.T) {
	// Every workload run end-to-end must produce a bug-free report: the
	// workloads are the "correct" programs of the evaluation.
	forEachApp(t, 0, func(t *testing.T, f Factory) {
		pm := pmem.New(f.PoolSize(800))
		det := core.New(core.Config{Model: f.Model})
		pm.Attach(det)
		p, err := pmdk.Create(pm, 4096)
		if err != nil {
			t.Fatal(err)
		}
		app, err := f.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunMixed(app, 800, 3); err != nil {
			t.Fatal(err)
		}
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
		pm.End()
		rep := det.Report()
		if rep.Len() != 0 {
			t.Fatalf("%s flagged as buggy:\n%s", f.Name, rep.Summary())
		}
	})
}

func TestRunInsertsDriver(t *testing.T) {
	f, _ := Lookup("b_tree")
	app, _, err := Build(f, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunInserts(app, 500, 7); err != nil {
		t.Fatal(err)
	}
	// The driver inserts mostly sequential keys.
	hits := 0
	for k := uint64(0); k < 500; k++ {
		if _, ok := app.Get(k); ok {
			hits++
		}
	}
	if hits < 400 {
		t.Fatalf("only %d keys present after RunInserts", hits)
	}
}

func TestBTreeCrashRecovery(t *testing.T) {
	pm := pmem.New(1 << 22)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBTree(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := bt.Insert(k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	// Crash at an arbitrary point; committed inserts must survive.
	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := pmdk.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	bt2 := &BTree{p: p2, root: bt.root}
	for k := uint64(0); k < 200; k++ {
		if v, ok := bt2.Get(k); !ok || v != k+1000 {
			t.Fatalf("key %d lost or wrong after crash: %d %v", k, v, ok)
		}
	}
}

func TestHashmapTXCrashMidTransactionRollsBack(t *testing.T) {
	pm := pmem.New(1 << 22)
	p, _ := pmdk.Create(pm, 4096)
	h, err := NewHashmapTX(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := h.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	h.flushStats()
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Open a transaction manually and crash inside it: the update must
	// roll back.
	tx := p.Begin()
	tx.Set(h.root+hmFCount, 999999)
	crashed := pm.Crash(pmem.CrashApplyPending, 0)
	p2, err := pmdk.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	h2 := &HashmapTX{p: p2, root: h.root}
	if h2.Count() != 100 {
		t.Fatalf("count after rollback = %d, want 100", h2.Count())
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := h2.Get(k); !ok || v != k {
			t.Fatalf("key %d lost after recovery", k)
		}
	}
}

func TestHashmapAtomicDirtyCountRecovery(t *testing.T) {
	pm := pmem.New(1 << 22)
	p, _ := pmdk.Create(pm, 4096)
	h, err := NewHashmapAtomic(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 50; k++ {
		if err := h.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash between dirty=1 and count update.
	c := p.Ctx()
	c.Store64(h.root+haFDirty, 1)
	p.Persist(h.root+haFDirty, 8)
	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := pmdk.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	h2 := &HashmapAtomic{p: p2, root: h.root}
	if _, err := h2.Count(); err == nil {
		t.Fatal("dirty count did not error")
	}
	if err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	n, err := h2.Count()
	if err != nil || n != 50 {
		t.Fatalf("recovered count = %d, %v", n, err)
	}
}

func TestRBTreeInvariants(t *testing.T) {
	pm := pmem.New(1 << 24)
	p, _ := pmdk.Create(pm, 4096)
	rt, err := NewRBTree(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	present := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(500))
		if rng.Intn(3) == 0 {
			if _, err := rt.Remove(k); err != nil {
				t.Fatal(err)
			}
			delete(present, k)
		} else {
			if err := rt.Insert(k, k); err != nil {
				t.Fatal(err)
			}
			present[k] = true
		}
		if i%200 == 0 {
			if err := rt.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := rt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := range present {
		if _, ok := rt.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestRTreePrunesFreedSpace(t *testing.T) {
	pm := pmem.New(1 << 24)
	p, _ := pmdk.Create(pm, 4096)
	rt, err := NewRTree(p)
	if err != nil {
		t.Fatal(err)
	}
	before := pm.FreeBytes()
	for k := uint64(0); k < 64; k++ {
		if err := rt.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	mid := pm.FreeBytes()
	if mid >= before {
		t.Fatal("inserts did not allocate")
	}
	for k := uint64(0); k < 64; k++ {
		if ok, err := rt.Remove(k); !ok || err != nil {
			t.Fatalf("remove %d: %v %v", k, ok, err)
		}
	}
	after := pm.FreeBytes()
	if after != before {
		t.Fatalf("pruning leaked: before %d after %d", before, after)
	}
}

func TestSynthStrandUsesStrands(t *testing.T) {
	f, _ := Lookup("synth_strand")
	pm := pmem.New(f.PoolSize(100))
	p, _ := pmdk.Create(pm, 4096)
	det := core.New(core.Config{Model: f.Model})
	pm.Attach(det)
	app, err := f.New(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := app.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	app.Close()
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("synth_strand flagged:\n%s", rep.Summary())
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := app.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestHashmapTXDeferredStatsVisibleInTree(t *testing.T) {
	// The deferred statistics must populate PMDebugger's AVL tree (the
	// Fig. 11 effect) without being a bug.
	f, _ := Lookup("hashmap_tx")
	pm := pmem.New(f.PoolSize(400))
	det := core.New(core.Config{Model: f.Model})
	pm.Attach(det)
	p, _ := pmdk.Create(pm, 4096)
	app, err := f.New(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 400; k++ {
		if err := app.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if det.TreeLen(0) < 50 {
		t.Fatalf("deferred stats not in tree: len = %d", det.TreeLen(0))
	}
	app.Close()
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("hashmap_tx flagged:\n%s", rep.Summary())
	}
}

func TestRehashPreservesData(t *testing.T) {
	pm := pmem.New(1 << 24)
	p, _ := pmdk.Create(pm, 4096)
	h, err := NewHashmapTX(p)
	if err != nil {
		t.Fatal(err)
	}
	// 64 buckets * load 4 = 256 triggers the first rehash; go well past.
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := h.Insert(k, k^0x5555); err != nil {
			t.Fatal(err)
		}
	}
	if h.Count() != n {
		t.Fatalf("count = %d", h.Count())
	}
	if nb := h.ld(h.root + hmFNBuckets); nb <= hmInitialBuckets {
		t.Fatalf("rehash never happened: nbuckets = %d", nb)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := h.Get(k); !ok || v != k^0x5555 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
