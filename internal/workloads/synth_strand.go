package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// SynthStrand is the synthetic strand-persistency benchmark of Table 4:
// since no hardware or application supports strand persistency, the paper
// composes one from two independent index structures placed in separate
// strands. Here each insert routes to one of two append-only persistent
// indexes by key parity; each index's updates run in their own strand
// section with per-strand persist barriers, and a JoinStrand every
// joinEvery operations establishes periodic cross-strand ordering.
//
// Region layout per side: +0 count, +8.. entries of {key u64, value u64}.
type SynthStrand struct {
	p    *pmdk.Pool
	side [2]uint64 // region addresses
	cap  uint64    // entries per side
	ops  int
	site trace.SiteID
}

const ssJoinEvery = 64

// NewSynthStrand builds the two-sided strand benchmark sized from the free
// pool space.
func NewSynthStrand(p *pmdk.Pool) (*SynthStrand, error) {
	free := p.PM().FreeBytes()
	per := free / 4
	if per < 4096 {
		return nil, errors.New("synth_strand: pool too small")
	}
	capEntries := (per - 64) / 16
	s := &SynthStrand{p: p, cap: capEntries, site: trace.RegisterSite("synth_strand.c")}
	c := p.Ctx()
	for i := 0; i < 2; i++ {
		s.side[i] = p.Alloc(per)
		c.Store64(s.side[i], 0)
		p.Persist(s.side[i], 8)
	}
	return s, nil
}

// Name returns "synth_strand".
func (s *SynthStrand) Name() string { return "synth_strand" }

// Model returns the strand model.
func (s *SynthStrand) Model() rules.Model { return rules.Strand }

func (s *SynthStrand) ld(addr uint64) uint64 { return s.p.Ctx().Load64(addr) }

// Insert appends the pair to the key's side inside a strand section:
// write entry, writeback, persist barrier, publish count, writeback,
// persist barrier.
func (s *SynthStrand) Insert(key, value uint64) error {
	region := s.side[key&1]
	count := s.ld(region)
	if count >= s.cap {
		return errors.New("synth_strand: region full")
	}
	st := s.p.Ctx().At(s.site).StrandBegin()
	entry := region + 8 + count*16
	st.Store64(entry, key)
	st.Store64(entry+8, value)
	st.Flush(entry, 16)
	st.Fence() // persist barrier: entry durable before publication
	st.Store64(region, count+1)
	st.Flush(region, 8)
	st.Fence()
	st.StrandEnd()

	s.ops++
	if s.ops%ssJoinEvery == 0 {
		s.p.Ctx().JoinStrand()
	}
	return nil
}

// Get scans the key's side for its most recent value.
func (s *SynthStrand) Get(key uint64) (uint64, bool) {
	region := s.side[key&1]
	count := s.ld(region)
	for i := count; i > 0; i-- {
		entry := region + 8 + (i-1)*16
		if s.ld(entry) == key {
			v := s.ld(entry + 8)
			if v == ^uint64(0) {
				return 0, false // tombstone
			}
			return v, true
		}
	}
	return 0, false
}

// Remove appends a tombstone (value max) for the key.
func (s *SynthStrand) Remove(key uint64) (bool, error) {
	if _, ok := s.Get(key); !ok {
		return false, nil
	}
	if err := s.Insert(key, ^uint64(0)); err != nil {
		return false, err
	}
	return true, nil
}

// Close joins any outstanding strands.
func (s *SynthStrand) Close() error {
	s.p.Ctx().JoinStrand()
	return nil
}
