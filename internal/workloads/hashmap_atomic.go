package workloads

import (
	"errors"
	"fmt"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// HashmapAtomic is a persistent chained hash table maintained with atomic
// publication instead of transactions, the Go counterpart of PMDK's
// hashmap_atomic example: each entry is fully initialized and persisted
// before the single pointer store that publishes it, and the element count
// is maintained under a dirty flag so recovery can recount after a crash.
//
// Its instruction pattern is the paper's best case for collective
// writebacks (Fig. 2b): each insert persists one freshly written entry with
// a single CLF, then publishes with another single-store CLF interval.
//
// Root layout: +0 buckets addr, +8 nbuckets, +16 count, +24 count_dirty.
// Entry layout: +0 key, +8 value, +16 next.
type HashmapAtomic struct {
	p    *pmdk.Pool
	root uint64
	site trace.SiteID
}

const (
	haFBuckets  = 0
	haFNBuckets = 8
	haFCount    = 16
	haFDirty    = 24

	haEntrySize = 24
	haBuckets   = 4096
)

// NewHashmapAtomic builds an empty atomic hashmap.
func NewHashmapAtomic(p *pmdk.Pool) (*HashmapAtomic, error) {
	rootObj, size := p.Root()
	if size < 32 {
		return nil, errors.New("hashmap_atomic: root object too small")
	}
	h := &HashmapAtomic{p: p, root: rootObj, site: trace.RegisterSite("hashmap_atomic.c")}
	c := p.Ctx()
	buckets := p.Alloc(haBuckets * 8)
	c.StoreBytes(buckets, make([]byte, haBuckets*8))
	p.Persist(buckets, haBuckets*8)
	c.Store64(h.root+haFBuckets, buckets)
	c.Store64(h.root+haFNBuckets, haBuckets)
	c.Store64(h.root+haFCount, 0)
	c.Store64(h.root+haFDirty, 0)
	p.Persist(h.root, 32)
	return h, nil
}

// Name returns "hashmap_atomic".
func (h *HashmapAtomic) Name() string { return "hashmap_atomic" }

// Model returns the epoch model (the PMDK atomic API family).
func (h *HashmapAtomic) Model() rules.Model { return rules.Epoch }

func (h *HashmapAtomic) ld(addr uint64) uint64 { return h.p.Ctx().Load64(addr) }

// Get looks up key.
func (h *HashmapAtomic) Get(key uint64) (uint64, bool) {
	buckets := h.ld(h.root + haFBuckets)
	nb := h.ld(h.root + haFNBuckets)
	e := h.ld(buckets + hmHash(key, nb)*8)
	for e != 0 {
		if h.ld(e) == key {
			return h.ld(e + 8), true
		}
		e = h.ld(e + 16)
	}
	return 0, false
}

// Insert adds or updates key using the persist-then-publish protocol.
func (h *HashmapAtomic) Insert(key, value uint64) error {
	c := h.p.Ctx().At(h.site)
	buckets := h.ld(h.root + haFBuckets)
	nb := h.ld(h.root + haFNBuckets)
	slot := buckets + hmHash(key, nb)*8

	// Update in place if present: value write + persist.
	for e := h.ld(slot); e != 0; e = h.ld(e + 16) {
		if h.ld(e) == key {
			c.Store64(e+8, value)
			c.Persist(e+8, 8)
			return nil
		}
	}

	// 1. Build the entry and persist it collectively (one CLF, one fence).
	entry := h.p.Alloc(haEntrySize)
	c.Store64(entry, key)
	c.Store64(entry+8, value)
	c.Store64(entry+16, h.ld(slot))
	h.p.Persist(entry, haEntrySize)

	// 2. Publish with a single atomic pointer store, persisted.
	c.Store64(slot, entry)
	h.p.Persist(slot, 8)

	// 3. Maintain the count under a dirty flag, as hashmap_atomic does:
	// a crash between the flag writes triggers a recount during recovery.
	c.Store64(h.root+haFDirty, 1)
	h.p.Persist(h.root+haFDirty, 8)
	c.Store64(h.root+haFCount, h.ld(h.root+haFCount)+1)
	h.p.Persist(h.root+haFCount, 8)
	c.Store64(h.root+haFDirty, 0)
	h.p.Persist(h.root+haFDirty, 8)
	return nil
}

// Remove deletes key by unlinking it with a single persisted pointer store.
func (h *HashmapAtomic) Remove(key uint64) (bool, error) {
	c := h.p.Ctx().At(h.site)
	buckets := h.ld(h.root + haFBuckets)
	nb := h.ld(h.root + haFNBuckets)
	slot := buckets + hmHash(key, nb)*8
	prev := uint64(0)
	e := h.ld(slot)
	for e != 0 && h.ld(e) != key {
		prev = e
		e = h.ld(e + 16)
	}
	if e == 0 {
		return false, nil
	}
	next := h.ld(e + 16)
	if prev == 0 {
		c.Store64(slot, next)
		h.p.Persist(slot, 8)
	} else {
		c.Store64(prev+16, next)
		h.p.Persist(prev+16, 8)
	}
	c.Store64(h.root+haFDirty, 1)
	h.p.Persist(h.root+haFDirty, 8)
	c.Store64(h.root+haFCount, h.ld(h.root+haFCount)-1)
	h.p.Persist(h.root+haFCount, 8)
	c.Store64(h.root+haFDirty, 0)
	h.p.Persist(h.root+haFDirty, 8)
	h.p.Free(e, haEntrySize)
	return true, nil
}

// Count returns the element count, which is only trustworthy when the dirty
// flag is clear.
func (h *HashmapAtomic) Count() (uint64, error) {
	if h.ld(h.root+haFDirty) != 0 {
		return 0, fmt.Errorf("hashmap_atomic: count is dirty; run Recover")
	}
	return h.ld(h.root + haFCount), nil
}

// Recover recounts the table after a crash left the count dirty, mirroring
// hm_atomic_check/rebuild.
func (h *HashmapAtomic) Recover() error {
	if h.ld(h.root+haFDirty) == 0 {
		return nil
	}
	c := h.p.Ctx().At(trace.RegisterSite("hashmap_atomic.recover"))
	buckets := h.ld(h.root + haFBuckets)
	nb := h.ld(h.root + haFNBuckets)
	var count uint64
	for i := uint64(0); i < nb; i++ {
		for e := h.ld(buckets + i*8); e != 0; e = h.ld(e + 16) {
			count++
		}
	}
	c.Store64(h.root+haFCount, count)
	h.p.Persist(h.root+haFCount, 8)
	c.Store64(h.root+haFDirty, 0)
	h.p.Persist(h.root+haFDirty, 8)
	return nil
}

// Close is a no-op: the publish protocol leaves no deferred state.
func (h *HashmapAtomic) Close() error { return nil }
