package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// Queue is a persistent circular-buffer FIFO, the Go counterpart of PMDK's
// queue example. It is not part of the Table 4 benchmark set; it extends
// the workload collection in the spirit of the paper's §9 claim that the
// mechanisms generalize beyond the evaluated programs.
//
// Root layout: +0 buf addr, +8 capacity, +16 head, +24 count.
// Slot layout: one u64 value per slot.
type Queue struct {
	p    *pmdk.Pool
	root uint64
}

const (
	quFBuf   = 0
	quFCap   = 8
	quFHead  = 16
	quFCount = 24
)

// NewQueue builds a queue with the given capacity in the pool.
func NewQueue(p *pmdk.Pool, capacity uint64) (*Queue, error) {
	if capacity == 0 {
		return nil, errors.New("queue: capacity must be positive")
	}
	rootObj, size := p.Root()
	if size < 32 {
		return nil, errors.New("queue: root object too small")
	}
	q := &Queue{p: p, root: rootObj}
	tx := p.Begin()
	buf := p.Alloc(capacity * 8)
	tx.StoreBytes(buf, make([]byte, capacity*8))
	tx.Add(q.root, 32)
	tx.Store64(q.root+quFBuf, buf)
	tx.Store64(q.root+quFCap, capacity)
	tx.Store64(q.root+quFHead, 0)
	tx.Store64(q.root+quFCount, 0)
	tx.Commit()
	return q, nil
}

// Model returns the epoch model.
func (q *Queue) Model() rules.Model { return rules.Epoch }

func (q *Queue) ld(addr uint64) uint64 { return q.p.Ctx().Load64(addr) }

// Len returns the number of enqueued values.
func (q *Queue) Len() uint64 { return q.ld(q.root + quFCount) }

// Cap returns the queue capacity.
func (q *Queue) Cap() uint64 { return q.ld(q.root + quFCap) }

// Enqueue appends v transactionally.
func (q *Queue) Enqueue(v uint64) error {
	buf := q.ld(q.root + quFBuf)
	capacity := q.ld(q.root + quFCap)
	head := q.ld(q.root + quFHead)
	count := q.ld(q.root + quFCount)
	if count == capacity {
		return errors.New("queue: full")
	}
	slot := buf + (head+count)%capacity*8
	tx := q.p.Begin()
	tx.Set(slot, v)
	tx.Set(q.root+quFCount, count+1)
	tx.Commit()
	return nil
}

// Dequeue removes and returns the oldest value.
func (q *Queue) Dequeue() (uint64, error) {
	buf := q.ld(q.root + quFBuf)
	capacity := q.ld(q.root + quFCap)
	head := q.ld(q.root + quFHead)
	count := q.ld(q.root + quFCount)
	if count == 0 {
		return 0, errors.New("queue: empty")
	}
	v := q.ld(buf + head*8)
	tx := q.p.Begin()
	tx.Set(q.root+quFHead, (head+1)%capacity)
	tx.Set(q.root+quFCount, count-1)
	tx.Commit()
	return v, nil
}

// Peek returns the oldest value without removing it.
func (q *Queue) Peek() (uint64, bool) {
	count := q.ld(q.root + quFCount)
	if count == 0 {
		return 0, false
	}
	buf := q.ld(q.root + quFBuf)
	head := q.ld(q.root + quFHead)
	return q.ld(buf + head*8), true
}
