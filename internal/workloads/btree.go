package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// BTree is a persistent B-tree of order 8 (up to 7 keys per node), the Go
// counterpart of PMDK's btree_map example. Every structural mutation runs
// inside a single undo-log transaction, so each insert/remove is one epoch
// with one fence.
//
// Node layout (all fields little-endian u64):
//
//	+0    n          number of keys
//	+8    leaf       1 if leaf
//	+16   keys[7]
//	+72   vals[7]
//	+128  child[8]   node addresses (0 = none)
//	= 192 bytes
type BTree struct {
	p    *pmdk.Pool
	root uint64 // address of the cell holding the root node address
	site trace.SiteID
}

const (
	btOrder    = 8 // max children
	btMaxKeys  = btOrder - 1
	btMinKeys  = btMaxKeys / 2 // 3
	btFN       = 0
	btFLeaf    = 8
	btFKeys    = 16
	btFVals    = 72
	btFChild   = 128
	btNodeSize = 192
)

// NewBTree builds an empty B-tree rooted in the pool's root object.
func NewBTree(p *pmdk.Pool) (*BTree, error) {
	rootObj, size := p.Root()
	if size < 8 {
		return nil, errors.New("btree: root object too small")
	}
	t := &BTree{p: p, root: rootObj, site: trace.RegisterSite("btree_map.c")}
	tx := p.Begin()
	node := t.newNode(tx, true)
	tx.Set(t.root, node)
	tx.Commit()
	return t, nil
}

// ReattachBTree binds to an existing tree after crash recovery: rootCell is
// the address of the cell holding the root node pointer (the pool's root
// object, as NewBTree laid it out).
func ReattachBTree(p *pmdk.Pool, rootCell uint64) *BTree {
	return &BTree{p: p, root: rootCell, site: trace.RegisterSite("btree_map.c")}
}

// Name returns "b_tree".
func (t *BTree) Name() string { return "b_tree" }

// Model returns the epoch model: the tree is transactional.
func (t *BTree) Model() rules.Model { return rules.Epoch }

func (t *BTree) newNode(tx *pmdk.Tx, leaf bool) uint64 {
	addr := t.p.Alloc(btNodeSize)
	tx.Add(addr, btNodeSize)
	tx.StoreBytes(addr, make([]byte, btNodeSize))
	if leaf {
		tx.Store64(addr+btFLeaf, 1)
	}
	return addr
}

func (t *BTree) c() ctxLoader { return ctxLoader{t.p} }

// ctxLoader wraps read access so tree code reads naturally.
type ctxLoader struct{ p *pmdk.Pool }

func (c ctxLoader) u64(addr uint64) uint64 { return c.p.Ctx().Load64(addr) }

func (t *BTree) n(node uint64) int     { return int(t.c().u64(node + btFN)) }
func (t *BTree) leaf(node uint64) bool { return t.c().u64(node+btFLeaf) == 1 }
func (t *BTree) key(node uint64, i int) uint64 {
	return t.c().u64(node + btFKeys + uint64(i)*8)
}
func (t *BTree) val(node uint64, i int) uint64 {
	return t.c().u64(node + btFVals + uint64(i)*8)
}
func (t *BTree) child(node uint64, i int) uint64 {
	return t.c().u64(node + btFChild + uint64(i)*8)
}

func (t *BTree) setN(tx *pmdk.Tx, node uint64, n int) {
	tx.Set(node+btFN, uint64(n))
}
func (t *BTree) setKey(tx *pmdk.Tx, node uint64, i int, k uint64) {
	tx.Set(node+btFKeys+uint64(i)*8, k)
}
func (t *BTree) setVal(tx *pmdk.Tx, node uint64, i int, v uint64) {
	tx.Set(node+btFVals+uint64(i)*8, v)
}
func (t *BTree) setChild(tx *pmdk.Tx, node uint64, i int, c uint64) {
	tx.Set(node+btFChild+uint64(i)*8, c)
}

// Get looks up key.
func (t *BTree) Get(key uint64) (uint64, bool) {
	node := t.c().u64(t.root)
	for node != 0 {
		n := t.n(node)
		i := 0
		for i < n && key > t.key(node, i) {
			i++
		}
		if i < n && key == t.key(node, i) {
			return t.val(node, i), true
		}
		if t.leaf(node) {
			return 0, false
		}
		node = t.child(node, i)
	}
	return 0, false
}

// Insert adds or updates key.
func (t *BTree) Insert(key, value uint64) error {
	tx := t.p.Begin()
	root := t.c().u64(t.root)
	if t.n(root) == btMaxKeys {
		// Preemptive root split.
		newRoot := t.newNode(tx, false)
		t.setChild(tx, newRoot, 0, root)
		t.splitChild(tx, newRoot, 0)
		tx.Set(t.root, newRoot)
		root = newRoot
	}
	t.insertNonFull(tx, root, key, value)
	tx.Commit()
	return nil
}

// splitChild splits the full i-th child of parent.
func (t *BTree) splitChild(tx *pmdk.Tx, parent uint64, i int) {
	full := t.child(parent, i)
	right := t.newNode(tx, t.leaf(full))
	mid := btMaxKeys / 2 // 3

	// Move upper keys to the new right node.
	tx.Add(right, btNodeSize)
	for j := 0; j < btMaxKeys-mid-1; j++ {
		t.setKey(tx, right, j, t.key(full, mid+1+j))
		t.setVal(tx, right, j, t.val(full, mid+1+j))
	}
	if !t.leaf(full) {
		for j := 0; j < btMaxKeys-mid; j++ {
			t.setChild(tx, right, j, t.child(full, mid+1+j))
		}
	}
	t.setN(tx, right, btMaxKeys-mid-1)

	// Shift the parent to make room.
	tx.Add(parent, btNodeSize)
	pn := t.n(parent)
	for j := pn; j > i; j-- {
		t.setKey(tx, parent, j, t.key(parent, j-1))
		t.setVal(tx, parent, j, t.val(parent, j-1))
	}
	for j := pn + 1; j > i+1; j-- {
		t.setChild(tx, parent, j, t.child(parent, j-1))
	}
	t.setKey(tx, parent, i, t.key(full, mid))
	t.setVal(tx, parent, i, t.val(full, mid))
	t.setChild(tx, parent, i+1, right)
	t.setN(tx, parent, pn+1)

	tx.Add(full, btNodeSize)
	t.setN(tx, full, mid)
}

func (t *BTree) insertNonFull(tx *pmdk.Tx, node, key, value uint64) {
	for {
		n := t.n(node)
		i := 0
		for i < n && key > t.key(node, i) {
			i++
		}
		if i < n && key == t.key(node, i) {
			tx.Set(node+btFVals+uint64(i)*8, value)
			return
		}
		if t.leaf(node) {
			tx.Add(node, btNodeSize)
			for j := n; j > i; j-- {
				t.setKey(tx, node, j, t.key(node, j-1))
				t.setVal(tx, node, j, t.val(node, j-1))
			}
			t.setKey(tx, node, i, key)
			t.setVal(tx, node, i, value)
			t.setN(tx, node, n+1)
			return
		}
		if t.n(t.child(node, i)) == btMaxKeys {
			t.splitChild(tx, node, i)
			if key > t.key(node, i) {
				i++
			} else if key == t.key(node, i) {
				tx.Set(node+btFVals+uint64(i)*8, value)
				return
			}
		}
		node = t.child(node, i)
	}
}

// Remove deletes key, rebalancing with borrow/merge so every node except
// the root keeps at least btMinKeys keys.
func (t *BTree) Remove(key uint64) (bool, error) {
	if _, ok := t.Get(key); !ok {
		return false, nil
	}
	tx := t.p.Begin()
	root := t.c().u64(t.root)
	t.remove(tx, root, key)
	// Shrink the root if it emptied.
	if t.n(root) == 0 && !t.leaf(root) {
		tx.Set(t.root, t.child(root, 0))
		t.p.Free(root, btNodeSize)
	}
	tx.Commit()
	return true, nil
}

func (t *BTree) remove(tx *pmdk.Tx, node, key uint64) {
	n := t.n(node)
	i := 0
	for i < n && key > t.key(node, i) {
		i++
	}
	if i < n && key == t.key(node, i) {
		if t.leaf(node) {
			t.removeFromLeaf(tx, node, i)
			return
		}
		t.removeInternal(tx, node, i, key)
		return
	}
	// Key lives in subtree i.
	child := t.child(node, i)
	if t.n(child) == btMinKeys {
		child = t.fill(tx, node, i)
	}
	t.remove(tx, child, key)
}

func (t *BTree) removeFromLeaf(tx *pmdk.Tx, node uint64, i int) {
	tx.Add(node, btNodeSize)
	n := t.n(node)
	for j := i; j < n-1; j++ {
		t.setKey(tx, node, j, t.key(node, j+1))
		t.setVal(tx, node, j, t.val(node, j+1))
	}
	t.setN(tx, node, n-1)
}

func (t *BTree) removeInternal(tx *pmdk.Tx, node uint64, i int, key uint64) {
	left := t.child(node, i)
	right := t.child(node, i+1)
	switch {
	case t.n(left) > btMinKeys:
		// Replace with the predecessor, then delete it from the left
		// subtree (which has spare keys, so no pre-fill is needed).
		pk, pv := t.maxOf(left)
		tx.Add(node, btNodeSize)
		t.setKey(tx, node, i, pk)
		t.setVal(tx, node, i, pv)
		t.remove(tx, left, pk)
	case t.n(right) > btMinKeys:
		sk, sv := t.minOf(right)
		tx.Add(node, btNodeSize)
		t.setKey(tx, node, i, sk)
		t.setVal(tx, node, i, sv)
		t.remove(tx, right, sk)
	default:
		merged := t.merge(tx, node, i)
		t.remove(tx, merged, key)
	}
}

func (t *BTree) maxOf(node uint64) (uint64, uint64) {
	for !t.leaf(node) {
		node = t.child(node, t.n(node))
	}
	n := t.n(node)
	return t.key(node, n-1), t.val(node, n-1)
}

func (t *BTree) minOf(node uint64) (uint64, uint64) {
	for !t.leaf(node) {
		node = t.child(node, 0)
	}
	return t.key(node, 0), t.val(node, 0)
}

// fill grows child i of node to more than btMinKeys keys by borrowing or
// merging, returning the node that now covers the key space of child i.
func (t *BTree) fill(tx *pmdk.Tx, node uint64, i int) uint64 {
	n := t.n(node)
	if i > 0 && t.n(t.child(node, i-1)) > btMinKeys {
		t.borrowFromPrev(tx, node, i)
		return t.child(node, i)
	}
	if i < n && t.n(t.child(node, i+1)) > btMinKeys {
		t.borrowFromNext(tx, node, i)
		return t.child(node, i)
	}
	if i < n {
		return t.merge(tx, node, i)
	}
	return t.merge(tx, node, i-1)
}

func (t *BTree) borrowFromPrev(tx *pmdk.Tx, node uint64, i int) {
	child := t.child(node, i)
	sib := t.child(node, i-1)
	tx.Add(child, btNodeSize)
	tx.Add(sib, btNodeSize)
	tx.Add(node, btNodeSize)
	cn := t.n(child)
	for j := cn; j > 0; j-- {
		t.setKey(tx, child, j, t.key(child, j-1))
		t.setVal(tx, child, j, t.val(child, j-1))
	}
	if !t.leaf(child) {
		for j := cn + 1; j > 0; j-- {
			t.setChild(tx, child, j, t.child(child, j-1))
		}
	}
	t.setKey(tx, child, 0, t.key(node, i-1))
	t.setVal(tx, child, 0, t.val(node, i-1))
	sn := t.n(sib)
	if !t.leaf(child) {
		t.setChild(tx, child, 0, t.child(sib, sn))
	}
	t.setKey(tx, node, i-1, t.key(sib, sn-1))
	t.setVal(tx, node, i-1, t.val(sib, sn-1))
	t.setN(tx, child, cn+1)
	t.setN(tx, sib, sn-1)
}

func (t *BTree) borrowFromNext(tx *pmdk.Tx, node uint64, i int) {
	child := t.child(node, i)
	sib := t.child(node, i+1)
	tx.Add(child, btNodeSize)
	tx.Add(sib, btNodeSize)
	tx.Add(node, btNodeSize)
	cn := t.n(child)
	t.setKey(tx, child, cn, t.key(node, i))
	t.setVal(tx, child, cn, t.val(node, i))
	if !t.leaf(child) {
		t.setChild(tx, child, cn+1, t.child(sib, 0))
	}
	t.setKey(tx, node, i, t.key(sib, 0))
	t.setVal(tx, node, i, t.val(sib, 0))
	sn := t.n(sib)
	for j := 0; j < sn-1; j++ {
		t.setKey(tx, sib, j, t.key(sib, j+1))
		t.setVal(tx, sib, j, t.val(sib, j+1))
	}
	if !t.leaf(sib) {
		for j := 0; j < sn; j++ {
			t.setChild(tx, sib, j, t.child(sib, j+1))
		}
	}
	t.setN(tx, child, cn+1)
	t.setN(tx, sib, sn-1)
}

// merge folds child i+1 and the separator key into child i and returns
// child i.
func (t *BTree) merge(tx *pmdk.Tx, node uint64, i int) uint64 {
	child := t.child(node, i)
	sib := t.child(node, i+1)
	tx.Add(child, btNodeSize)
	tx.Add(node, btNodeSize)
	cn := t.n(child)
	sn := t.n(sib)
	t.setKey(tx, child, cn, t.key(node, i))
	t.setVal(tx, child, cn, t.val(node, i))
	for j := 0; j < sn; j++ {
		t.setKey(tx, child, cn+1+j, t.key(sib, j))
		t.setVal(tx, child, cn+1+j, t.val(sib, j))
	}
	if !t.leaf(child) {
		for j := 0; j <= sn; j++ {
			t.setChild(tx, child, cn+1+j, t.child(sib, j))
		}
	}
	t.setN(tx, child, cn+1+sn)
	nn := t.n(node)
	for j := i; j < nn-1; j++ {
		t.setKey(tx, node, j, t.key(node, j+1))
		t.setVal(tx, node, j, t.val(node, j+1))
	}
	for j := i + 1; j < nn; j++ {
		t.setChild(tx, node, j, t.child(node, j+1))
	}
	t.setN(tx, node, nn-1)
	t.p.Free(sib, btNodeSize)
	return child
}

// Close is a no-op: every transaction left the tree durable.
func (t *BTree) Close() error { return nil }
