package workloads

import (
	"bytes"
	"fmt"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func newEcho(t *testing.T, clients int) (*Echo, *pmem.Pool) {
	t.Helper()
	pm := pmem.New(1 << 22)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEcho(p, clients, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	return e, pm
}

func TestEchoSendHistory(t *testing.T) {
	e, _ := newEcho(t, 3)
	for c := 0; c < 3; c++ {
		for i := 0; i < 5; i++ {
			msg := fmt.Appendf(nil, "client-%d message-%d", c, i)
			if err := e.Send(c, msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for c := 0; c < 3; c++ {
		hist, err := e.History(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != 5 {
			t.Fatalf("client %d history = %d", c, len(hist))
		}
		for i, msg := range hist {
			want := fmt.Appendf(nil, "client-%d message-%d", c, i)
			if !bytes.Equal(msg, want) {
				t.Fatalf("client %d msg %d = %q", c, i, msg)
			}
		}
	}
	if _, err := e.History(99); err == nil {
		t.Fatal("unknown client accepted")
	}
	if err := e.Send(0, make([]byte, 1000)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestEchoCrashRecovery(t *testing.T) {
	e, pm := newEcho(t, 2)
	for i := 0; i < 4; i++ {
		if err := e.Send(0, []byte("durable")); err != nil {
			t.Fatal(err)
		}
	}
	// A fifth send crashes before commit: the count publication must roll
	// back so recovery never sees a half-written message.
	log, countAddr, _ := e.clientSlot(0)
	tx := e.p.Begin()
	tx.Store64(log+4*e.slotSize, 7) // slot write without commit
	tx.Set(countAddr, 5)
	crashed := pm.Crash(pmem.CrashApplyPending, 0)

	e2, err := ReopenEcho(crashed, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e2.Count(0)
	if err != nil || n != 4 {
		t.Fatalf("recovered count = %d, %v", n, err)
	}
	hist, err := e2.History(0)
	if err != nil || len(hist) != 4 {
		t.Fatalf("recovered history = %d, %v", len(hist), err)
	}
}

func TestEchoCleanUnderPMDebugger(t *testing.T) {
	pm := pmem.New(1 << 22)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEcho(p, 4, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.Send(i%4, []byte("hello persistent world")); err != nil {
			t.Fatal(err)
		}
	}
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("clean echo flagged:\n%s", rep.Summary())
	}
}

func TestEchoValidation(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := pmdk.Create(pm, 64)
	if _, err := NewEcho(p, 0, 8, 8); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := NewEcho(p, 100, 8, 8); err == nil {
		t.Fatal("oversized client table accepted")
	}
}
