package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// RTree is a persistent 16-ary radix tree over 64-bit keys, the Go
// counterpart of PMDK's rtree_map example. Keys are consumed nibble by
// nibble from the most significant end; the bottom level stores 16 value
// slots per leaf, so sequential keys share leaves and upper levels heavily.
//
//	internal node: child[16] u64                   (128 bytes)
//	leaf node:     values[16] u64, bitmap u64      (136 bytes)
type RTree struct {
	p    *pmdk.Pool
	root uint64 // address of the root pointer cell
}

const (
	rtLevels   = 15 // internal levels; the 16th nibble indexes the leaf
	rtNodeSize = 128
	rtLeafSize = 136
)

// NewRTree builds an empty radix tree rooted in the pool's root object.
func NewRTree(p *pmdk.Pool) (*RTree, error) {
	rootObj, size := p.Root()
	if size < 8 {
		return nil, errors.New("rtree: root object too small")
	}
	t := &RTree{p: p, root: rootObj}
	tx := p.Begin()
	tx.Set(t.root, 0)
	tx.Commit()
	return t, nil
}

// Name returns "r_tree".
func (t *RTree) Name() string { return "r_tree" }

// Model returns the epoch model.
func (t *RTree) Model() rules.Model { return rules.Epoch }

func (t *RTree) load(addr uint64) uint64 { return t.p.Ctx().Load64(addr) }

// nibble returns the level-th nibble of key from the most significant end.
func nibble(key uint64, level int) uint64 {
	return (key >> (60 - 4*level)) & 0xf
}

// Get looks up key.
func (t *RTree) Get(key uint64) (uint64, bool) {
	node := t.load(t.root)
	for lvl := 0; lvl < rtLevels; lvl++ {
		if node == 0 {
			return 0, false
		}
		node = t.load(node + nibble(key, lvl)*8)
	}
	if node == 0 {
		return 0, false
	}
	slot := nibble(key, rtLevels)
	bitmap := t.load(node + 128)
	if bitmap&(1<<slot) == 0 {
		return 0, false
	}
	return t.load(node + slot*8), true
}

// Insert adds or updates key.
func (t *RTree) Insert(key, value uint64) error {
	tx := t.p.Begin()
	defer tx.Commit()

	slotAddr := t.root
	node := t.load(slotAddr)
	for lvl := 0; lvl < rtLevels; lvl++ {
		if node == 0 {
			node = t.newNode(tx, rtNodeSize)
			tx.Set(slotAddr, node)
		}
		slotAddr = node + nibble(key, lvl)*8
		node = t.load(slotAddr)
	}
	if node == 0 {
		node = t.newNode(tx, rtLeafSize)
		tx.Set(slotAddr, node)
	}
	slot := nibble(key, rtLevels)
	tx.Set(node+slot*8, value)
	tx.Set(node+128, t.load(node+128)|1<<slot)
	return nil
}

func (t *RTree) newNode(tx *pmdk.Tx, size uint64) uint64 {
	addr := t.p.Alloc(size)
	tx.Add(addr, size)
	tx.StoreBytes(addr, make([]byte, size))
	return addr
}

// Remove deletes key, pruning emptied nodes bottom-up.
func (t *RTree) Remove(key uint64) (bool, error) {
	// Record the path of (slot address, node) pairs for pruning.
	var slots [rtLevels + 1]uint64
	var nodes [rtLevels + 1]uint64
	slotAddr := t.root
	node := t.load(slotAddr)
	for lvl := 0; lvl < rtLevels; lvl++ {
		if node == 0 {
			return false, nil
		}
		slots[lvl] = slotAddr
		nodes[lvl] = node
		slotAddr = node + nibble(key, lvl)*8
		node = t.load(slotAddr)
	}
	if node == 0 {
		return false, nil
	}
	slots[rtLevels] = slotAddr
	nodes[rtLevels] = node
	slot := nibble(key, rtLevels)
	bitmap := t.load(node + 128)
	if bitmap&(1<<slot) == 0 {
		return false, nil
	}

	tx := t.p.Begin()
	tx.Set(node+128, bitmap&^(1<<slot))
	tx.Set(node+slot*8, 0)

	// Prune: free the leaf if it emptied, then empty internal nodes upward.
	if bitmap&^(1<<slot) == 0 {
		tx.Set(slots[rtLevels], 0)
		t.p.Free(node, rtLeafSize)
		for lvl := rtLevels - 1; lvl >= 0; lvl-- {
			n := nodes[lvl]
			empty := true
			for i := uint64(0); i < 16; i++ {
				if t.load(n+i*8) != 0 {
					empty = false
					break
				}
			}
			if !empty {
				break
			}
			tx.Set(slots[lvl], 0)
			t.p.Free(n, rtNodeSize)
		}
	}
	tx.Commit()
	return true, nil
}

// Close is a no-op: every transaction left the tree durable.
func (t *RTree) Close() error { return nil }
