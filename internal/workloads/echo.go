package workloads

import (
	"errors"
	"fmt"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// Echo is a persistent message service in the style of WHISPER's echo
// benchmark (the suite the paper's characterization also draws from §3):
// clients append messages to per-client persistent logs inside
// transactions, and the service replays a client's history on request.
//
// Root layout: +0 nclients, +8.. per-client {log addr, count} pairs.
// Message slot: +0 length u64, +8 payload (fixed slot size).
type Echo struct {
	p        *pmdk.Pool
	root     uint64
	nclients uint64
	slotSize uint64
	capacity uint64 // messages per client
}

// NewEcho builds an echo service with per-client logs.
func NewEcho(p *pmdk.Pool, clients int, capacity uint64, maxMsg uint64) (*Echo, error) {
	if clients <= 0 || capacity == 0 || maxMsg == 0 {
		return nil, errors.New("echo: invalid configuration")
	}
	rootObj, size := p.Root()
	need := uint64(8 + clients*16)
	if size < need {
		return nil, fmt.Errorf("echo: root object too small (%d < %d)", size, need)
	}
	e := &Echo{
		p: p, root: rootObj,
		nclients: uint64(clients),
		slotSize: 8 + ((maxMsg + 7) &^ 7),
		capacity: capacity,
	}
	tx := p.Begin()
	tx.Add(e.root, need)
	tx.Store64(e.root, e.nclients)
	for i := 0; i < clients; i++ {
		log := p.Alloc(e.slotSize * capacity)
		tx.Store64(e.root+8+uint64(i)*16, log)
		tx.Store64(e.root+8+uint64(i)*16+8, 0)
	}
	tx.Commit()
	return e, nil
}

// Model returns the epoch model.
func (e *Echo) Model() rules.Model { return rules.Epoch }

func (e *Echo) ld(addr uint64) uint64 { return e.p.Ctx().Load64(addr) }

func (e *Echo) clientSlot(client int) (logAddr, countAddr uint64, err error) {
	if client < 0 || uint64(client) >= e.nclients {
		return 0, 0, fmt.Errorf("echo: no client %d", client)
	}
	base := e.root + 8 + uint64(client)*16
	return e.ld(base), base + 8, nil
}

// Send appends a message to the client's log transactionally.
func (e *Echo) Send(client int, msg []byte) error {
	if uint64(len(msg)) > e.slotSize-8 {
		return fmt.Errorf("echo: message of %d bytes exceeds slot", len(msg))
	}
	log, countAddr, err := e.clientSlot(client)
	if err != nil {
		return err
	}
	count := e.ld(countAddr)
	if count >= e.capacity {
		return errors.New("echo: client log full")
	}
	slot := log + count*e.slotSize
	tx := e.p.Begin()
	// The slot is fresh space: plain transactional stores, no undo needed.
	tx.Store64(slot, uint64(len(msg)))
	if len(msg) > 0 {
		tx.StoreBytes(slot+8, msg)
	}
	tx.Set(countAddr, count+1) // the publication point is undo-logged
	tx.Commit()
	return nil
}

// History returns the client's messages in order.
func (e *Echo) History(client int) ([][]byte, error) {
	log, countAddr, err := e.clientSlot(client)
	if err != nil {
		return nil, err
	}
	count := e.ld(countAddr)
	out := make([][]byte, 0, count)
	c := e.p.Ctx()
	for i := uint64(0); i < count; i++ {
		slot := log + i*e.slotSize
		n := c.Load64(slot)
		out = append(out, c.LoadBytes(slot+8, n))
	}
	return out, nil
}

// Count returns the client's message count.
func (e *Echo) Count(client int) (uint64, error) {
	_, countAddr, err := e.clientSlot(client)
	if err != nil {
		return 0, err
	}
	return e.ld(countAddr), nil
}

// ReopenEcho attaches to an existing echo pool after crash recovery.
func ReopenEcho(pm *pmem.Pool, capacity uint64, maxMsg uint64) (*Echo, error) {
	p, err := pmdk.Open(pm)
	if err != nil {
		return nil, err
	}
	rootObj, _ := p.Root()
	e := &Echo{
		p: p, root: rootObj,
		slotSize: 8 + ((maxMsg + 7) &^ 7),
		capacity: capacity,
	}
	e.nclients = e.ld(rootObj)
	if e.nclients == 0 || e.nclients > 1<<20 {
		return nil, fmt.Errorf("echo: implausible client count %d", e.nclients)
	}
	return e, nil
}
