// Package workloads reimplements the PMDK example programs the paper
// evaluates (Table 4): five transactional maps (b_tree, c_tree, r_tree,
// rb_tree, hashmap_tx), the atomic-style hashmap_atomic, and the synthetic
// strand-persistency benchmark synth_strand. Each produces the instruction
// patterns the characterization study (§3) depends on: transactional maps
// persist through single-fence epochs, hashmap_atomic persists field groups
// collectively, and hashmap_tx defers statistics persistence, reproducing
// its outsized AVL footprint in Fig. 11.
package workloads

import (
	"fmt"
	"math/rand"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// App is a persistent key-value structure under test.
type App interface {
	// Name returns the benchmark name used in the paper's tables.
	Name() string
	// Model returns the persistency model the workload uses.
	Model() rules.Model
	// Insert adds or updates a key.
	Insert(key, value uint64) error
	// Get looks a key up.
	Get(key uint64) (uint64, bool)
	// Remove deletes a key, reporting whether it was present.
	Remove(key uint64) (bool, error)
	// Close persists any deferred state; the pool is clean afterwards.
	Close() error
}

// Factory describes how to build one workload.
type Factory struct {
	Name  string
	Model rules.Model
	// PoolSize returns a pool size adequate for n operations.
	PoolSize func(n int) uint64
	// New builds the structure in a freshly created pmdk pool.
	New func(p *pmdk.Pool) (App, error)
}

// Registry returns the factories for all seven micro-benchmarks in Table 4
// order.
func Registry() []Factory {
	return []Factory{
		{
			Name: "b_tree", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 256) },
			New:      func(p *pmdk.Pool) (App, error) { return NewBTree(p) },
		},
		{
			Name: "c_tree", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 160) },
			New:      func(p *pmdk.Pool) (App, error) { return NewCTree(p) },
		},
		{
			Name: "r_tree", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 512) },
			New:      func(p *pmdk.Pool) (App, error) { return NewRTree(p) },
		},
		{
			Name: "rb_tree", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 160) },
			New:      func(p *pmdk.Pool) (App, error) { return NewRBTree(p) },
		},
		{
			Name: "hashmap_tx", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 160) },
			New:      func(p *pmdk.Pool) (App, error) { return NewHashmapTX(p) },
		},
		{
			Name: "hashmap_atomic", Model: rules.Epoch,
			PoolSize: func(n int) uint64 { return poolFor(n, 128) },
			New:      func(p *pmdk.Pool) (App, error) { return NewHashmapAtomic(p) },
		},
		{
			Name: "synth_strand", Model: rules.Strand,
			PoolSize: func(n int) uint64 { return poolFor(n, 512) },
			New:      func(p *pmdk.Pool) (App, error) { return NewSynthStrand(p) },
		},
	}
}

// Lookup returns the factory with the given name.
func Lookup(name string) (Factory, error) {
	for _, f := range Registry() {
		if f.Name == name {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// poolFor sizes a pool for n operations at roughly perOp persistent bytes
// each, with generous headroom and a floor.
func poolFor(n int, perOp uint64) uint64 {
	size := uint64(n)*perOp*2 + (1 << 20)
	const maxPool = 1 << 28
	if size > maxPool {
		return maxPool
	}
	return size
}

// Build creates the pool and the structure for n operations.
func Build(f Factory, n int) (App, *pmem.Pool, error) {
	pm := pmem.New(f.PoolSize(n))
	p, err := pmdk.Create(pm, 4096)
	if err != nil {
		return nil, nil, err
	}
	app, err := f.New(p)
	if err != nil {
		return nil, nil, err
	}
	return app, pm, nil
}

// RunInserts drives n keyed inserts with a deterministic key mix: mostly
// fresh keys with occasional re-inserts, matching the PMDK example drivers.
func RunInserts(app App, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		key := uint64(i)
		if rng.Intn(16) == 0 && i > 0 {
			key = uint64(rng.Intn(i)) // occasional overwrite of an old key
		}
		if err := app.Insert(key, key*2+1); err != nil {
			return fmt.Errorf("%s: insert %d: %w", app.Name(), key, err)
		}
	}
	return nil
}

// RunMixed drives a mixed insert/get/remove workload.
func RunMixed(app App, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	hi := uint64(1)
	if err := app.Insert(0, 1); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // 60% insert
			if err := app.Insert(hi, hi); err != nil {
				return err
			}
			hi++
		case 6, 7, 8: // 30% get
			app.Get(uint64(rng.Int63n(int64(hi))))
		case 9: // 10% remove
			if _, err := app.Remove(uint64(rng.Int63n(int64(hi)))); err != nil {
				return err
			}
		}
	}
	return nil
}
