package workloads

import (
	"errors"
	"math/bits"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// CTree is a persistent crit-bit tree, the Go counterpart of PMDK's
// ctree_map example. Internal nodes record the most significant bit where
// their two subtrees differ; leaves carry key/value pairs. All mutations run
// inside one transaction per operation.
//
// Node pointers are tagged: bit 0 set means the pointer refers to a leaf.
//
//	leaf:     +0 key u64, +8 value u64            (16 bytes)
//	internal: +0 diff u64, +8 child[2] u64        (24 bytes)
type CTree struct {
	p    *pmdk.Pool
	root uint64 // address of the root pointer cell
}

const (
	ctLeafTag  = 1
	ctLeafSize = 16
	ctNodeSize = 24
)

// NewCTree builds an empty crit-bit tree rooted in the pool's root object.
func NewCTree(p *pmdk.Pool) (*CTree, error) {
	rootObj, size := p.Root()
	if size < 8 {
		return nil, errors.New("ctree: root object too small")
	}
	t := &CTree{p: p, root: rootObj}
	tx := p.Begin()
	tx.Set(t.root, 0)
	tx.Commit()
	return t, nil
}

// Name returns "c_tree".
func (t *CTree) Name() string { return "c_tree" }

// Model returns the epoch model.
func (t *CTree) Model() rules.Model { return rules.Epoch }

func isLeaf(ptr uint64) bool     { return ptr&ctLeafTag != 0 }
func leafAddr(ptr uint64) uint64 { return ptr &^ ctLeafTag }

func (t *CTree) load(addr uint64) uint64 { return t.p.Ctx().Load64(addr) }

// closestLeaf walks to the leaf the key would collide with.
func (t *CTree) closestLeaf(ptr, key uint64) uint64 {
	for !isLeaf(ptr) {
		diff := t.load(ptr)
		bit := (key >> diff) & 1
		ptr = t.load(ptr + 8 + bit*8)
	}
	return ptr
}

// Get looks up key.
func (t *CTree) Get(key uint64) (uint64, bool) {
	root := t.load(t.root)
	if root == 0 {
		return 0, false
	}
	leaf := leafAddr(t.closestLeaf(root, key))
	if t.load(leaf) == key {
		return t.load(leaf + 8), true
	}
	return 0, false
}

// Insert adds or updates key.
func (t *CTree) Insert(key, value uint64) error {
	tx := t.p.Begin()
	defer tx.Commit()

	root := t.load(t.root)
	if root == 0 {
		leaf := t.newLeaf(tx, key, value)
		tx.Set(t.root, leaf|ctLeafTag)
		return nil
	}
	closest := leafAddr(t.closestLeaf(root, key))
	ck := t.load(closest)
	if ck == key {
		tx.Set(closest+8, value)
		return nil
	}
	diff := uint64(63 - bits.LeadingZeros64(ck^key))
	newBit := (key >> diff) & 1

	// Find the insertion point: descend while the current internal node
	// discriminates a more significant bit than diff.
	slot := t.root
	ptr := t.load(slot)
	for !isLeaf(ptr) && t.load(ptr) > diff {
		bit := (key >> t.load(ptr)) & 1
		slot = ptr + 8 + bit*8
		ptr = t.load(slot)
	}

	leaf := t.newLeaf(tx, key, value)
	node := t.p.Alloc(ctNodeSize)
	tx.Add(node, ctNodeSize)
	tx.Store64(node, diff)
	tx.Store64(node+8+newBit*8, leaf|ctLeafTag)
	tx.Store64(node+8+(1-newBit)*8, ptr)
	tx.Set(slot, node)
	return nil
}

func (t *CTree) newLeaf(tx *pmdk.Tx, key, value uint64) uint64 {
	leaf := t.p.Alloc(ctLeafSize)
	tx.Add(leaf, ctLeafSize)
	tx.Store64(leaf, key)
	tx.Store64(leaf+8, value)
	return leaf
}

// Remove deletes key.
func (t *CTree) Remove(key uint64) (bool, error) {
	root := t.load(t.root)
	if root == 0 {
		return false, nil
	}
	// Track the slot holding the pointer to the current node, and the slot
	// holding the pointer to its parent internal node.
	slot := t.root
	var parentSlot uint64
	ptr := t.load(slot)
	for !isLeaf(ptr) {
		diff := t.load(ptr)
		bit := (key >> diff) & 1
		parentSlot = slot
		slot = ptr + 8 + bit*8
		ptr = t.load(slot)
	}
	leaf := leafAddr(ptr)
	if t.load(leaf) != key {
		return false, nil
	}

	tx := t.p.Begin()
	if parentSlot == 0 {
		// The leaf is the root.
		tx.Set(t.root, 0)
	} else {
		// Replace the parent internal node with the leaf's sibling.
		parent := t.load(parentSlot)
		var sibling uint64
		if t.load(parent+8) == ptr {
			sibling = t.load(parent + 16)
		} else {
			sibling = t.load(parent + 8)
		}
		tx.Set(parentSlot, sibling)
		t.p.Free(parent, ctNodeSize)
	}
	tx.Commit()
	t.p.Free(leaf, ctLeafSize)
	return true, nil
}

// Close is a no-op: every transaction left the tree durable.
func (t *CTree) Close() error { return nil }
