package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// SkipList is a persistent skip list, the Go counterpart of PMDK's
// skiplist_map example (4 levels, as the original). Node levels are derived
// deterministically from the key hash so repeated runs produce identical
// instruction streams — a requirement for systematic crash testing.
//
// Node layout: +0 key, +8 value, +16 next[slMaxLevel].
// Root layout: head node address at +0.
type SkipList struct {
	p    *pmdk.Pool
	root uint64
	head uint64
}

const (
	slMaxLevel = 4
	slFNext    = 16
	slNodeSize = slFNext + 8*slMaxLevel
)

// NewSkipList builds an empty skip list rooted in the pool's root object.
func NewSkipList(p *pmdk.Pool) (*SkipList, error) {
	rootObj, size := p.Root()
	if size < 8 {
		return nil, errors.New("skiplist: root object too small")
	}
	s := &SkipList{p: p, root: rootObj}
	tx := p.Begin()
	s.head = p.Alloc(slNodeSize)
	tx.Add(s.head, slNodeSize)
	tx.StoreBytes(s.head, make([]byte, slNodeSize))
	tx.Set(s.root, s.head)
	tx.Commit()
	return s, nil
}

// ReattachSkipList binds to an existing skip list after crash recovery.
func ReattachSkipList(p *pmdk.Pool, rootCell uint64) *SkipList {
	return &SkipList{p: p, root: rootCell, head: p.Ctx().Load64(rootCell)}
}

// Name returns "skiplist".
func (s *SkipList) Name() string { return "skiplist" }

// Model returns the epoch model.
func (s *SkipList) Model() rules.Model { return rules.Epoch }

func (s *SkipList) ld(addr uint64) uint64 { return s.p.Ctx().Load64(addr) }

func (s *SkipList) next(node uint64, lvl int) uint64 {
	return s.ld(node + slFNext + uint64(lvl)*8)
}

// levelOf derives a node's level (1..slMaxLevel) from its key: a ~1/2
// promotion rate, deterministic per key.
func levelOf(key uint64) int {
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	lvl := 1
	for lvl < slMaxLevel && h&1 == 1 {
		lvl++
		h >>= 1
	}
	return lvl
}

// findPreds fills preds with the rightmost node before key at each level.
func (s *SkipList) findPreds(key uint64, preds *[slMaxLevel]uint64) {
	cur := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.next(cur, lvl)
			if nxt == 0 || s.ld(nxt) >= key {
				break
			}
			cur = nxt
		}
		preds[lvl] = cur
	}
}

// Get looks up key.
func (s *SkipList) Get(key uint64) (uint64, bool) {
	var preds [slMaxLevel]uint64
	s.findPreds(key, &preds)
	cand := s.next(preds[0], 0)
	if cand != 0 && s.ld(cand) == key {
		return s.ld(cand + 8), true
	}
	return 0, false
}

// Insert adds or updates key transactionally.
func (s *SkipList) Insert(key, value uint64) error {
	var preds [slMaxLevel]uint64
	s.findPreds(key, &preds)

	tx := s.p.Begin()
	if cand := s.next(preds[0], 0); cand != 0 && s.ld(cand) == key {
		tx.Set(cand+8, value)
		tx.Commit()
		return nil
	}
	lvl := levelOf(key)
	node := s.p.Alloc(slNodeSize)
	tx.Add(node, slNodeSize)
	tx.StoreBytes(node, make([]byte, slNodeSize))
	tx.Store64(node, key)
	tx.Store64(node+8, value)
	for l := 0; l < lvl; l++ {
		tx.Store64(node+slFNext+uint64(l)*8, s.next(preds[l], l))
		tx.Set(preds[l]+slFNext+uint64(l)*8, node)
	}
	tx.Commit()
	return nil
}

// Remove deletes key transactionally.
func (s *SkipList) Remove(key uint64) (bool, error) {
	var preds [slMaxLevel]uint64
	s.findPreds(key, &preds)
	node := s.next(preds[0], 0)
	if node == 0 || s.ld(node) != key {
		return false, nil
	}
	tx := s.p.Begin()
	for l := 0; l < slMaxLevel; l++ {
		if s.next(preds[l], l) == node {
			tx.Set(preds[l]+slFNext+uint64(l)*8, s.next(node, l))
		}
	}
	tx.Commit()
	s.p.Free(node, slNodeSize)
	return true, nil
}

// Len walks the bottom level and returns the element count.
func (s *SkipList) Len() int {
	n := 0
	for cur := s.next(s.head, 0); cur != 0; cur = s.next(cur, 0) {
		n++
	}
	return n
}

// Keys returns all keys in order (bottom-level walk).
func (s *SkipList) Keys() []uint64 {
	var out []uint64
	for cur := s.next(s.head, 0); cur != 0; cur = s.next(cur, 0) {
		out = append(out, s.ld(cur))
	}
	return out
}

// Close is a no-op: every transaction left the list durable.
func (s *SkipList) Close() error { return nil }
