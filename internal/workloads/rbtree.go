package workloads

import (
	"errors"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/rules"
)

// RBTree is a persistent red-black tree, the Go counterpart of PMDK's
// rbtree_map example: a classic CLRS red-black tree with parent pointers and
// a shared black sentinel, every mutation inside one transaction.
//
//	node: +0 key, +8 value, +16 left, +24 right, +32 parent, +40 color
//	      (48 bytes; color 0 = black, 1 = red)
type RBTree struct {
	p    *pmdk.Pool
	root uint64 // address of the root pointer cell
	nilN uint64 // sentinel node address
}

const (
	rbFKey     = 0
	rbFVal     = 8
	rbFLeft    = 16
	rbFRight   = 24
	rbFParent  = 32
	rbFColor   = 40
	rbNodeSize = 48

	rbBlack = 0
	rbRed   = 1
)

// NewRBTree builds an empty red-black tree rooted in the pool's root object.
func NewRBTree(p *pmdk.Pool) (*RBTree, error) {
	rootObj, size := p.Root()
	if size < 8 {
		return nil, errors.New("rbtree: root object too small")
	}
	t := &RBTree{p: p, root: rootObj}
	tx := p.Begin()
	t.nilN = p.Alloc(rbNodeSize)
	tx.Add(t.nilN, rbNodeSize)
	tx.StoreBytes(t.nilN, make([]byte, rbNodeSize))
	tx.Store64(t.nilN+rbFLeft, t.nilN)
	tx.Store64(t.nilN+rbFRight, t.nilN)
	tx.Store64(t.nilN+rbFParent, t.nilN)
	tx.Set(t.root, t.nilN)
	tx.Commit()
	return t, nil
}

// Name returns "rb_tree".
func (t *RBTree) Name() string { return "rb_tree" }

// Model returns the epoch model.
func (t *RBTree) Model() rules.Model { return rules.Epoch }

func (t *RBTree) ld(addr uint64) uint64 { return t.p.Ctx().Load64(addr) }

func (t *RBTree) key(n uint64) uint64    { return t.ld(n + rbFKey) }
func (t *RBTree) left(n uint64) uint64   { return t.ld(n + rbFLeft) }
func (t *RBTree) right(n uint64) uint64  { return t.ld(n + rbFRight) }
func (t *RBTree) parent(n uint64) uint64 { return t.ld(n + rbFParent) }
func (t *RBTree) color(n uint64) uint64  { return t.ld(n + rbFColor) }

func (t *RBTree) setLeft(tx *pmdk.Tx, n, v uint64)   { tx.Set(n+rbFLeft, v) }
func (t *RBTree) setRight(tx *pmdk.Tx, n, v uint64)  { tx.Set(n+rbFRight, v) }
func (t *RBTree) setParent(tx *pmdk.Tx, n, v uint64) { tx.Set(n+rbFParent, v) }
func (t *RBTree) setColor(tx *pmdk.Tx, n, v uint64)  { tx.Set(n+rbFColor, v) }

func (t *RBTree) rootNode() uint64 { return t.ld(t.root) }

func (t *RBTree) setRoot(tx *pmdk.Tx, n uint64) { tx.Set(t.root, n) }

// Get looks up key.
func (t *RBTree) Get(key uint64) (uint64, bool) {
	n := t.rootNode()
	for n != t.nilN {
		k := t.key(n)
		switch {
		case key == k:
			return t.ld(n + rbFVal), true
		case key < k:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	return 0, false
}

func (t *RBTree) rotateLeft(tx *pmdk.Tx, x uint64) {
	y := t.right(x)
	t.setRight(tx, x, t.left(y))
	if t.left(y) != t.nilN {
		t.setParent(tx, t.left(y), x)
	}
	t.setParent(tx, y, t.parent(x))
	switch {
	case t.parent(x) == t.nilN:
		t.setRoot(tx, y)
	case x == t.left(t.parent(x)):
		t.setLeft(tx, t.parent(x), y)
	default:
		t.setRight(tx, t.parent(x), y)
	}
	t.setLeft(tx, y, x)
	t.setParent(tx, x, y)
}

func (t *RBTree) rotateRight(tx *pmdk.Tx, x uint64) {
	y := t.left(x)
	t.setLeft(tx, x, t.right(y))
	if t.right(y) != t.nilN {
		t.setParent(tx, t.right(y), x)
	}
	t.setParent(tx, y, t.parent(x))
	switch {
	case t.parent(x) == t.nilN:
		t.setRoot(tx, y)
	case x == t.right(t.parent(x)):
		t.setRight(tx, t.parent(x), y)
	default:
		t.setLeft(tx, t.parent(x), y)
	}
	t.setRight(tx, y, x)
	t.setParent(tx, x, y)
}

// Insert adds or updates key.
func (t *RBTree) Insert(key, value uint64) error {
	tx := t.p.Begin()
	defer tx.Commit()

	parent := t.nilN
	cur := t.rootNode()
	for cur != t.nilN {
		parent = cur
		k := t.key(cur)
		switch {
		case key == k:
			tx.Set(cur+rbFVal, value)
			return nil
		case key < k:
			cur = t.left(cur)
		default:
			cur = t.right(cur)
		}
	}
	z := t.p.Alloc(rbNodeSize)
	tx.Add(z, rbNodeSize)
	tx.Store64(z+rbFKey, key)
	tx.Store64(z+rbFVal, value)
	tx.Store64(z+rbFLeft, t.nilN)
	tx.Store64(z+rbFRight, t.nilN)
	tx.Store64(z+rbFParent, parent)
	tx.Store64(z+rbFColor, rbRed)
	switch {
	case parent == t.nilN:
		t.setRoot(tx, z)
	case key < t.key(parent):
		t.setLeft(tx, parent, z)
	default:
		t.setRight(tx, parent, z)
	}
	t.insertFixup(tx, z)
	return nil
}

func (t *RBTree) insertFixup(tx *pmdk.Tx, z uint64) {
	for t.color(t.parent(z)) == rbRed {
		gp := t.parent(t.parent(z))
		if t.parent(z) == t.left(gp) {
			y := t.right(gp)
			if t.color(y) == rbRed {
				t.setColor(tx, t.parent(z), rbBlack)
				t.setColor(tx, y, rbBlack)
				t.setColor(tx, gp, rbRed)
				z = gp
				continue
			}
			if z == t.right(t.parent(z)) {
				z = t.parent(z)
				t.rotateLeft(tx, z)
			}
			t.setColor(tx, t.parent(z), rbBlack)
			t.setColor(tx, t.parent(t.parent(z)), rbRed)
			t.rotateRight(tx, t.parent(t.parent(z)))
		} else {
			y := t.left(gp)
			if t.color(y) == rbRed {
				t.setColor(tx, t.parent(z), rbBlack)
				t.setColor(tx, y, rbBlack)
				t.setColor(tx, gp, rbRed)
				z = gp
				continue
			}
			if z == t.left(t.parent(z)) {
				z = t.parent(z)
				t.rotateRight(tx, z)
			}
			t.setColor(tx, t.parent(z), rbBlack)
			t.setColor(tx, t.parent(t.parent(z)), rbRed)
			t.rotateLeft(tx, t.parent(t.parent(z)))
		}
	}
	t.setColor(tx, t.rootNode(), rbBlack)
}

// transplant replaces subtree u with subtree v.
func (t *RBTree) transplant(tx *pmdk.Tx, u, v uint64) {
	switch {
	case t.parent(u) == t.nilN:
		t.setRoot(tx, v)
	case u == t.left(t.parent(u)):
		t.setLeft(tx, t.parent(u), v)
	default:
		t.setRight(tx, t.parent(u), v)
	}
	t.setParent(tx, v, t.parent(u))
}

func (t *RBTree) minimum(n uint64) uint64 {
	for t.left(n) != t.nilN {
		n = t.left(n)
	}
	return n
}

// Remove deletes key.
func (t *RBTree) Remove(key uint64) (bool, error) {
	z := t.rootNode()
	for z != t.nilN && t.key(z) != key {
		if key < t.key(z) {
			z = t.left(z)
		} else {
			z = t.right(z)
		}
	}
	if z == t.nilN {
		return false, nil
	}

	tx := t.p.Begin()
	y := z
	yColor := t.color(y)
	var x uint64
	switch {
	case t.left(z) == t.nilN:
		x = t.right(z)
		t.transplant(tx, z, x)
	case t.right(z) == t.nilN:
		x = t.left(z)
		t.transplant(tx, z, x)
	default:
		y = t.minimum(t.right(z))
		yColor = t.color(y)
		x = t.right(y)
		if t.parent(y) == z {
			t.setParent(tx, x, y)
		} else {
			t.transplant(tx, y, x)
			t.setRight(tx, y, t.right(z))
			t.setParent(tx, t.right(y), y)
		}
		t.transplant(tx, z, y)
		t.setLeft(tx, y, t.left(z))
		t.setParent(tx, t.left(y), y)
		t.setColor(tx, y, t.color(z))
	}
	if yColor == rbBlack {
		t.deleteFixup(tx, x)
	}
	tx.Commit()
	t.p.Free(z, rbNodeSize)
	return true, nil
}

func (t *RBTree) deleteFixup(tx *pmdk.Tx, x uint64) {
	for x != t.rootNode() && t.color(x) == rbBlack {
		if x == t.left(t.parent(x)) {
			w := t.right(t.parent(x))
			if t.color(w) == rbRed {
				t.setColor(tx, w, rbBlack)
				t.setColor(tx, t.parent(x), rbRed)
				t.rotateLeft(tx, t.parent(x))
				w = t.right(t.parent(x))
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				t.setColor(tx, w, rbRed)
				x = t.parent(x)
				continue
			}
			if t.color(t.right(w)) == rbBlack {
				t.setColor(tx, t.left(w), rbBlack)
				t.setColor(tx, w, rbRed)
				t.rotateRight(tx, w)
				w = t.right(t.parent(x))
			}
			t.setColor(tx, w, t.color(t.parent(x)))
			t.setColor(tx, t.parent(x), rbBlack)
			t.setColor(tx, t.right(w), rbBlack)
			t.rotateLeft(tx, t.parent(x))
			x = t.rootNode()
		} else {
			w := t.left(t.parent(x))
			if t.color(w) == rbRed {
				t.setColor(tx, w, rbBlack)
				t.setColor(tx, t.parent(x), rbRed)
				t.rotateRight(tx, t.parent(x))
				w = t.left(t.parent(x))
			}
			if t.color(t.right(w)) == rbBlack && t.color(t.left(w)) == rbBlack {
				t.setColor(tx, w, rbRed)
				x = t.parent(x)
				continue
			}
			if t.color(t.left(w)) == rbBlack {
				t.setColor(tx, t.right(w), rbBlack)
				t.setColor(tx, w, rbRed)
				t.rotateLeft(tx, w)
				w = t.left(t.parent(x))
			}
			t.setColor(tx, w, t.color(t.parent(x)))
			t.setColor(tx, t.parent(x), rbBlack)
			t.setColor(tx, t.left(w), rbBlack)
			t.rotateRight(tx, t.parent(x))
			x = t.rootNode()
		}
	}
	t.setColor(tx, x, rbBlack)
}

// Close is a no-op: every transaction left the tree durable.
func (t *RBTree) Close() error { return nil }

// checkInvariants validates red-black properties; used by tests.
func (t *RBTree) checkInvariants() error {
	root := t.rootNode()
	if root != t.nilN && t.color(root) != rbBlack {
		return errors.New("rbtree: root is red")
	}
	_, err := t.checkNode(root)
	return err
}

func (t *RBTree) checkNode(n uint64) (blackHeight int, err error) {
	if n == t.nilN {
		return 1, nil
	}
	l, r := t.left(n), t.right(n)
	if t.color(n) == rbRed {
		if t.color(l) == rbRed || t.color(r) == rbRed {
			return 0, errors.New("rbtree: red node with red child")
		}
	}
	if l != t.nilN && t.key(l) >= t.key(n) {
		return 0, errors.New("rbtree: left key order violated")
	}
	if r != t.nilN && t.key(r) <= t.key(n) {
		return 0, errors.New("rbtree: right key order violated")
	}
	lh, err := t.checkNode(l)
	if err != nil {
		return 0, err
	}
	rh, err := t.checkNode(r)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errors.New("rbtree: black height mismatch")
	}
	if t.color(n) == rbBlack {
		lh++
	}
	return lh, nil
}
