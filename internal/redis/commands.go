package redis

import (
	"encoding/binary"
	"fmt"
)

// Additional commands of the PM-aware Redis port beyond SET/GET/DEL:
// INCR (an in-place transactional read-modify-write), APPEND (copy-on-write
// value growth) and EXPIRE/TTL (volatile expiry with lazy deletion, as
// Redis's passive expiration).

// Incr atomically increments the integer value of key by delta and returns
// the new value. A missing key starts from zero. Integer values are stored
// as 8 little-endian bytes; INCR on a value of any other width fails, like
// Redis's "value is not an integer" error.
func (s *Server) Incr(key string, delta uint64) (uint64, error) {
	s.clock++
	if e, ok := s.index[key]; ok {
		kl := s.p.Ctx().Load32(e + 8)
		vl := s.p.Ctx().Load32(e + 12)
		if vl != 8 {
			return 0, fmt.Errorf("redis: value of %q is not an integer", key)
		}
		// In-place transactional read-modify-write: the 8 value bytes are
		// undo-logged, updated and persisted by the commit.
		valAddr := e + rdEntryHdr + uint64(kl)
		old := s.p.Ctx().Load64(valAddr)
		tx := s.p.Begin()
		tx.Set(valAddr, old+delta)
		tx.Commit()
		s.lru[key] = s.clock
		return old + delta, nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], delta)
	if err := s.Set(key, buf[:]); err != nil {
		return 0, err
	}
	return delta, nil
}

// IntValue reads an integer-encoded value.
func (s *Server) IntValue(key string) (uint64, bool) {
	v, ok := s.Get(key)
	if !ok || len(v) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v), true
}

// Append appends suffix to key's value and returns the new length. Entries
// are immutable-sized, so APPEND is a copy-on-write replace, like the
// transactional Set path.
func (s *Server) Append(key string, suffix []byte) (int, error) {
	old, _ := s.Get(key)
	combined := make([]byte, 0, len(old)+len(suffix))
	combined = append(combined, old...)
	combined = append(combined, suffix...)
	if err := s.Set(key, combined); err != nil {
		return 0, err
	}
	return len(combined), nil
}

// Expire marks key to expire after ttl logical ticks (one tick per
// command). It reports whether the key exists.
func (s *Server) Expire(key string, ttl uint64) bool {
	if _, ok := s.index[key]; !ok {
		return false
	}
	if s.expiry == nil {
		s.expiry = map[string]uint64{}
	}
	s.expiry[key] = s.clock + ttl
	return true
}

// TTL returns the remaining ticks before expiry, or ok=false when the key
// has no expiry or does not exist.
func (s *Server) TTL(key string) (uint64, bool) {
	dl, ok := s.expiry[key]
	if !ok {
		return 0, false
	}
	if dl <= s.clock {
		return 0, true
	}
	return dl - s.clock, true
}

// expireIfDue lazily deletes an expired key, returning true when it was
// removed.
func (s *Server) expireIfDue(key string) bool {
	dl, ok := s.expiry[key]
	if !ok || dl > s.clock {
		return false
	}
	delete(s.expiry, key)
	if _, err := s.Del(key); err == nil {
		s.expirations++
	}
	return true
}

// Expirations returns the number of lazily expired keys.
func (s *Server) Expirations() uint64 { return s.expirations }
