package redis

import (
	"bytes"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{PoolSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIncr(t *testing.T) {
	s := newServer(t)
	v, err := s.Incr("n", 5)
	if err != nil || v != 5 {
		t.Fatalf("first Incr = %d, %v", v, err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Incr("n", 1); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := s.IntValue("n")
	if !ok || v != 15 {
		t.Fatalf("IntValue = %d, %v", v, ok)
	}
	// INCR on a non-integer value fails.
	s.Set("str", []byte("hello"))
	if _, err := s.Incr("str", 1); err == nil {
		t.Fatal("Incr on string value succeeded")
	}
}

func TestIncrCrashAtomicity(t *testing.T) {
	s := newServer(t)
	s.Incr("n", 41)
	// A crash mid-increment must roll back to the committed value.
	e := s.index["n"]
	kl := s.p.Ctx().Load32(e + 8)
	valAddr := e + rdEntryHdr + uint64(kl)
	tx := s.p.Begin()
	tx.Set(valAddr, 999)
	crashed := s.PM().Crash(pmem.CrashApplyPending, 0)
	s2, err := Reopen(crashed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.IntValue("n")
	if !ok || v != 41 {
		t.Fatalf("recovered value = %d, %v; want 41", v, ok)
	}
}

func TestAppend(t *testing.T) {
	s := newServer(t)
	n, err := s.Append("k", []byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	n, err = s.Append("k", []byte(" world"))
	if err != nil || n != 11 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	v, ok := s.Get("k")
	if !ok || !bytes.Equal(v, []byte("hello world")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestExpireAndTTL(t *testing.T) {
	s := newServer(t)
	s.Set("k", []byte("v"))
	if s.Expire("absent", 5) {
		t.Fatal("Expire on absent key succeeded")
	}
	if !s.Expire("k", 3) {
		t.Fatal("Expire failed")
	}
	ttl, ok := s.TTL("k")
	if !ok || ttl != 3 {
		t.Fatalf("TTL = %d, %v", ttl, ok)
	}
	if _, ok := s.TTL("absent"); ok {
		t.Fatal("TTL on absent key succeeded")
	}
	// Burn ticks until expiry.
	for i := 0; i < 5; i++ {
		s.Get("other")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key served")
	}
	if s.Expirations() != 1 {
		t.Fatalf("expirations = %d", s.Expirations())
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d after expiry", s.Count())
	}
}

func TestSetClearsTTL(t *testing.T) {
	s := newServer(t)
	s.Set("k", []byte("v1"))
	s.Expire("k", 2)
	s.Set("k", []byte("v2")) // SET clears the TTL
	for i := 0; i < 5; i++ {
		s.Get("other")
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key expired despite SET clearing the TTL")
	}
}

func TestCommandsCleanUnderPMDebugger(t *testing.T) {
	s := newServer(t)
	det := core.New(core.Config{Model: rules.Epoch})
	s.PM().Attach(det)
	for i := 0; i < 50; i++ {
		if _, err := s.Incr("counter", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append("log", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Expire("log", 10)
	for i := 0; i < 20; i++ {
		s.Get("counter")
	}
	s.PM().End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("command mix flagged:\n%s", rep.Summary())
	}
}
