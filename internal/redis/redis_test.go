package redis

import (
	"fmt"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

func TestSetGetDel(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 22, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key found")
	}
	if err := s.Set("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("k1")
	if string(v) != "v2" {
		t.Fatalf("replace failed: %q", v)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	ok, err = s.Del("k1")
	if !ok || err != nil {
		t.Fatalf("Del = %v %v", ok, err)
	}
	if s.Count() != 0 {
		t.Fatalf("count after del = %d", s.Count())
	}
	if ok, _ := s.Del("k1"); ok {
		t.Fatal("double del succeeded")
	}
}

func TestManyKeysAndChains(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 23, Buckets: 16}) // force chains
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Set(fmt.Sprintf("key:%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		v, ok := s.Get(fmt.Sprintf("key:%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d = %v %v", i, v, ok)
		}
	}
	// Delete every third key.
	for i := 0; i < 500; i += 3 {
		if ok, err := s.Del(fmt.Sprintf("key:%d", i)); !ok || err != nil {
			t.Fatalf("del %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 500; i++ {
		_, ok := s.Get(fmt.Sprintf("key:%d", i))
		if (i%3 == 0) == ok {
			t.Fatalf("key %d presence wrong after deletes", i)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 23, MaxKeys: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunLRUTest(1000, 2); err != nil {
		t.Fatal(err)
	}
	if s.Count() > 100 {
		t.Fatalf("keyspace exceeded cap: %d", s.Count())
	}
	_, _, ev := s.Stats()
	if ev < 800 {
		t.Fatalf("evictions = %d, want ~900", ev)
	}
}

func TestRebuildMatchesIndex(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("key %d lost after rebuild", i)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	crashed := s.PM().Crash(pmem.CrashDropPending, 0)
	s2, err := Reopen(crashed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 50 {
		t.Fatalf("count after crash = %d", s2.Count())
	}
	for i := 0; i < 50; i++ {
		v, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost: %v %v", i, v, ok)
		}
	}
}

func TestRedisCleanUnderPMDebugger(t *testing.T) {
	s, err := New(Config{PoolSize: 1 << 23, MaxKeys: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{Model: rules.Epoch})
	s.PM().Attach(det)
	if err := s.RunLRUTest(500, 4); err != nil {
		t.Fatal(err)
	}
	s.PM().End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("redis flagged:\n%s", rep.Summary())
	}
}
