// Package redis reimplements the PM-aware Redis port evaluated in Table 4
// (Intel's libpmemobj-backed Redis): a persistent dictionary whose entries
// live in PM and are updated through undo-log transactions (the epoch
// model), plus the LRU-eviction keyspace simulation the paper drives with
// redis-cli ("LRU test", Fig. 8i).
//
// Volatile acceleration state (the key index and LRU clocks) is rebuilt
// from PM on restart, as the real port rebuilds its dict.
package redis

import (
	"errors"
	"fmt"
	"math/rand"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// Config parameterizes a server.
type Config struct {
	// PoolSize is the simulated PM size (default 64 MiB).
	PoolSize uint64
	// Buckets is the persistent dict size (default 4096).
	Buckets uint64
	// MaxKeys caps the keyspace; beyond it the server evicts
	// approximated-LRU victims (0 = unlimited).
	MaxKeys int
	// Sample is the LRU eviction sample size (default 5, as in Redis).
	Sample int
	// Seed seeds eviction sampling.
	Seed int64
}

// Server is a miniature PM Redis.
//
// Dict entry layout: +0 next, +8 keyLen u32 valLen u32, +16 key bytes then
// value bytes. Root layout: +0 buckets addr, +8 nbuckets, +16 count.
type Server struct {
	cfg Config
	pm  *pmem.Pool
	p   *pmdk.Pool

	index  map[string]uint64 // key -> entry addr (volatile)
	lru    map[string]uint64 // key -> last access tick (volatile)
	expiry map[string]uint64 // key -> expiry tick (volatile, like Redis TTLs before persistence)
	// keys/keyPos mirror the index as a swap-remove slice so eviction can
	// sample keys through the seeded rng: map iteration order is
	// runtime-randomized and would make eviction — and with it the event
	// stream — nondeterministic across runs, which the crash-space
	// explorer's record/replay equivalence cannot tolerate.
	keys   []string
	keyPos map[string]int
	clock  uint64
	rng    *rand.Rand

	hits, misses, evictions, expirations uint64
}

const (
	rdFBuckets  = 0
	rdFNBuckets = 8
	rdFCount    = 16

	rdEntryHdr = 16
)

// Model returns the epoch model (Table 4).
func (s *Server) Model() rules.Model { return rules.Epoch }

// New creates a server over a fresh pool.
func New(cfg Config) (*Server, error) {
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 64 << 20
	}
	return NewWith(pmem.New(cfg.PoolSize), cfg)
}

// NewWith creates a server over a caller-provided pool, which is how the
// crash-space explorer builds the server inside an instrumented program
// (the pool carries the journal or crash trap the harness armed).
func NewWith(pm *pmem.Pool, cfg Config) (*Server, error) {
	if cfg.Buckets == 0 {
		cfg.Buckets = 4096
	}
	if cfg.Sample == 0 {
		cfg.Sample = 5
	}
	p, err := pmdk.Create(pm, 64)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, pm: pm, p: p,
		index:  map[string]uint64{},
		lru:    map[string]uint64{},
		keyPos: map[string]int{},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	root, _ := p.Root()
	tx := p.Begin()
	buckets := p.Alloc(cfg.Buckets * 8)
	tx.StoreBytes(buckets, make([]byte, cfg.Buckets*8))
	tx.Add(root, 24)
	tx.Store64(root+rdFBuckets, buckets)
	tx.Store64(root+rdFNBuckets, cfg.Buckets)
	tx.Store64(root+rdFCount, 0)
	tx.Commit()
	return s, nil
}

// PM returns the underlying pool for attaching detectors.
func (s *Server) PM() *pmem.Pool { return s.pm }

func (s *Server) ld(addr uint64) uint64 { return s.p.Ctx().Load64(addr) }

func (s *Server) root() uint64 { r, _ := s.p.Root(); return r }

func hashKey(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Set stores key=value transactionally, evicting when the keyspace exceeds
// MaxKeys.
func (s *Server) Set(key string, value []byte) error {
	if s.cfg.MaxKeys > 0 {
		for len(s.index) >= s.cfg.MaxKeys {
			if _, ok := s.index[key]; ok {
				break // replacing: no growth
			}
			if err := s.evictLRU(); err != nil {
				return err
			}
		}
	}
	s.clock++
	root := s.root()
	buckets := s.ld(root + rdFBuckets)
	nb := s.ld(root + rdFNBuckets)
	slot := buckets + hashKey(key)%nb*8

	tx := s.p.Begin()
	if old, ok := s.index[key]; ok {
		// Replace: new entry, relink, retire the old one.
		entry := s.newEntry(tx, key, value, s.entryNext(old))
		s.relink(tx, slot, old, entry)
		tx.Commit()
		s.p.Free(old, s.entrySize(old))
		s.index[key] = entry
		s.lru[key] = s.clock
		delete(s.expiry, key) // SET clears any TTL, as in Redis
		return nil
	}
	entry := s.newEntry(tx, key, value, s.ld(slot))
	tx.Set(slot, entry)
	tx.Set(root+rdFCount, s.ld(root+rdFCount)+1)
	tx.Commit()
	s.index[key] = entry
	s.trackKey(key)
	s.lru[key] = s.clock
	delete(s.expiry, key) // SET clears any TTL, as in Redis
	return nil
}

// trackKey/untrackKey maintain the swap-remove key slice eviction samples
// from (deterministically, via the seeded rng).
func (s *Server) trackKey(key string) {
	s.keyPos[key] = len(s.keys)
	s.keys = append(s.keys, key)
}

func (s *Server) untrackKey(key string) {
	pos, ok := s.keyPos[key]
	if !ok {
		return
	}
	last := len(s.keys) - 1
	s.keys[pos] = s.keys[last]
	s.keyPos[s.keys[pos]] = pos
	s.keys = s.keys[:last]
	delete(s.keyPos, key)
}

// newEntry writes a fresh entry (no undo needed: fresh allocation).
func (s *Server) newEntry(tx *pmdk.Tx, key string, value []byte, next uint64) uint64 {
	size := uint64(rdEntryHdr + len(key) + len(value))
	entry := s.p.Alloc(size)
	tx.Store64(entry, next)
	tx.Store32(entry+8, uint32(len(key)))
	tx.Store32(entry+12, uint32(len(value)))
	tx.StoreBytes(entry+rdEntryHdr, []byte(key))
	if len(value) > 0 {
		tx.StoreBytes(entry+rdEntryHdr+uint64(len(key)), value)
	}
	return entry
}

func (s *Server) entryNext(e uint64) uint64 { return s.ld(e) }

func (s *Server) entrySize(e uint64) uint64 {
	kl := s.p.Ctx().Load32(e + 8)
	vl := s.p.Ctx().Load32(e + 12)
	return rdEntryHdr + uint64(kl) + uint64(vl)
}

func (s *Server) entryKey(e uint64) string {
	kl := s.p.Ctx().Load32(e + 8)
	return string(s.p.Ctx().LoadBytes(e+rdEntryHdr, uint64(kl)))
}

// relink replaces old with new in the chain containing slot.
func (s *Server) relink(tx *pmdk.Tx, slot, old, new uint64) {
	cur := s.ld(slot)
	if cur == old {
		tx.Set(slot, new)
		return
	}
	for cur != 0 {
		if s.ld(cur) == old {
			tx.Set(cur, new)
			return
		}
		cur = s.ld(cur)
	}
}

// unlink removes entry from its chain.
func (s *Server) unlink(tx *pmdk.Tx, key string, entry uint64) {
	root := s.root()
	buckets := s.ld(root + rdFBuckets)
	nb := s.ld(root + rdFNBuckets)
	slot := buckets + hashKey(key)%nb*8
	next := s.ld(entry)
	cur := s.ld(slot)
	if cur == entry {
		tx.Set(slot, next)
	} else {
		for cur != 0 && s.ld(cur) != entry {
			cur = s.ld(cur)
		}
		if cur == 0 {
			return
		}
		tx.Set(cur, next)
	}
	tx.Set(root+rdFCount, s.ld(root+rdFCount)-1)
}

// Get fetches key's value, lazily expiring it when its TTL is due.
func (s *Server) Get(key string) ([]byte, bool) {
	s.clock++
	if s.expireIfDue(key) {
		s.misses++
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru[key] = s.clock
	kl := s.p.Ctx().Load32(e + 8)
	vl := s.p.Ctx().Load32(e + 12)
	return s.p.Ctx().LoadBytes(e+rdEntryHdr+uint64(kl), uint64(vl)), true
}

// Del removes key.
func (s *Server) Del(key string) (bool, error) {
	e, ok := s.index[key]
	if !ok {
		return false, nil
	}
	tx := s.p.Begin()
	s.unlink(tx, key, e)
	tx.Commit()
	s.p.Free(e, s.entrySize(e))
	delete(s.index, key)
	s.untrackKey(key)
	delete(s.lru, key)
	delete(s.expiry, key)
	return true, nil
}

// evictLRU removes the least recently used of Sample random keys,
// mirroring Redis's approximated LRU (maxmemory-policy allkeys-lru).
func (s *Server) evictLRU() error {
	if len(s.index) == 0 {
		return errors.New("redis: nothing to evict")
	}
	var victim string
	var victimTick uint64
	// Sample keys through the seeded rng (duplicates are fine, as in
	// Redis's approximated sampling); never through map iteration, whose
	// runtime-randomized order would make the event stream irreproducible.
	for picked := 0; picked < s.cfg.Sample; picked++ {
		k := s.keys[s.rng.Intn(len(s.keys))]
		tick := s.lru[k]
		if picked == 0 || tick < victimTick {
			victim, victimTick = k, tick
		}
	}
	if _, err := s.Del(victim); err != nil {
		return err
	}
	s.evictions++
	return nil
}

// Stats returns hit/miss/eviction counters.
func (s *Server) Stats() (hits, misses, evictions uint64) {
	return s.hits, s.misses, s.evictions
}

// Count returns the persistent key count.
func (s *Server) Count() uint64 { return s.ld(s.root() + rdFCount) }

// RunLRUTest is the redis-cli LRU simulation: write n keys into a capped
// keyspace while reading back recent keys, measuring hit rate under
// eviction pressure.
func (s *Server) RunLRUTest(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	val := make([]byte, 48)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("lru:%d", i)
		if err := s.Set(k, val); err != nil {
			return err
		}
		// Access a recent key with bias, as the LRU test does.
		back := rng.Intn(100) + 1
		if back <= i {
			s.Get(fmt.Sprintf("lru:%d", i-back))
		}
	}
	return nil
}

// Rebuild reconstructs the volatile index from PM, validating that the
// persistent dict is self-contained (used after crash recovery).
func (s *Server) Rebuild() error {
	root := s.root()
	buckets := s.ld(root + rdFBuckets)
	nb := s.ld(root + rdFNBuckets)
	s.index = map[string]uint64{}
	s.lru = map[string]uint64{}
	s.keys, s.keyPos = nil, map[string]int{}
	var walked uint64
	for i := uint64(0); i < nb; i++ {
		for e := s.ld(buckets + i*8); e != 0; e = s.ld(e) {
			s.index[s.entryKey(e)] = e
			s.trackKey(s.entryKey(e))
			walked++
		}
	}
	if count := s.Count(); walked != count {
		return fmt.Errorf("redis: rebuilt %d entries, persistent count %d", walked, count)
	}
	return nil
}

// Reopen attaches a server to a crashed pool image, running pmdk recovery
// and rebuilding the index.
func Reopen(pm *pmem.Pool, cfg Config) (*Server, error) {
	p, err := pmdk.Open(pm)
	if err != nil {
		return nil, err
	}
	if cfg.Sample == 0 {
		cfg.Sample = 5
	}
	s := &Server{
		cfg: cfg, pm: pm, p: p,
		index:  map[string]uint64{},
		lru:    map[string]uint64{},
		keyPos: map[string]int{},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := s.Rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}
