package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// persist stores data at addr and pushes it through flush+fence so it lands
// in the persistent image.
func persist(c *Ctx, addr uint64, data []byte) {
	c.StoreBytes(addr, data)
	c.Persist(addr, uint64(len(data)))
}

// TestSnapshotMutationIsolation is the core copy-on-write contract: after
// Crash, parent and snapshot share pages, yet neither side's writes are
// visible to the other — bytes and fingerprints both stay frozen.
func TestSnapshotMutationIsolation(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(4096)
	persist(c, a, []byte("original payload"))

	snap := p.Crash(CrashDropPending, 0)
	snapFP := snap.Fingerprint()
	parentFP := p.Fingerprint()

	// Parent writes after the crash: the snapshot must not move.
	persist(c, a, []byte("parent overwrite"))
	if !snap.PersistedEquals(a, []byte("original payload")) {
		t.Fatalf("parent write leaked into snapshot: %q", snap.PersistedBytes(a, 16))
	}
	if snap.Fingerprint() != snapFP {
		t.Fatal("parent write changed snapshot fingerprint")
	}

	// Snapshot writes: the parent must not move either.
	sc := snap.Ctx()
	persist(sc, a, []byte("snapshotoverride"))
	if !p.PersistedEquals(a, []byte("parent overwrite")) {
		t.Fatalf("snapshot write leaked into parent: %q", p.PersistedBytes(a, 16))
	}
	if p.Fingerprint() == parentFP {
		// The parent DID change (its own overwrite) — sanity that the
		// fingerprint tracks it, i.e. the caches were invalidated.
		t.Fatal("parent fingerprint ignored the parent's own overwrite")
	}
	if !snap.PersistedEquals(a, []byte("snapshotoverride")) {
		t.Fatal("snapshot lost its own write")
	}
}

// TestSnapshotIsolationNamedRegions covers the names side of the snapshot:
// registrations on one side after the crash stay invisible to the other, and
// the fingerprint (which covers the names table) notices registrations.
func TestSnapshotIsolationNamedRegions(t *testing.T) {
	p := New(1 << 20)
	p.RegisterNamed("root", p.Base(), 128)
	snap := p.Crash(CrashDropPending, 0)
	snapFP := snap.Fingerprint()

	p.RegisterNamed("parent_only", p.Base()+4096, 64)
	if _, ok := snap.NamedRange("parent_only"); ok {
		t.Fatal("parent registration leaked into snapshot")
	}
	if snap.Fingerprint() != snapFP {
		t.Fatal("parent registration changed snapshot fingerprint")
	}

	snap.RegisterNamed("snap_only", snap.Base()+8192, 64)
	if _, ok := p.NamedRange("snap_only"); ok {
		t.Fatal("snapshot registration leaked into parent")
	}
	if snap.Fingerprint() == snapFP {
		t.Fatal("snapshot fingerprint ignored RegisterNamed (stale names cache)")
	}
	if r, ok := snap.NamedRange("root"); !ok || r.Size != 128 {
		t.Fatal("inherited name lost")
	}
}

// TestSnapshotAllocatorIndependent: the snapshot's allocator is reset to
// full (recovery rebuilds heap metadata), and allocations on the snapshot
// must not disturb parent data even where their address ranges collide.
func TestSnapshotAllocatorIndependent(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(256)
	persist(c, a, bytes.Repeat([]byte{0xab}, 256))

	snap := p.Crash(CrashDropPending, 0)
	sc := snap.Ctx()
	// The snapshot allocator is full again, so this hands back the same
	// address range the parent already holds.
	sa := snap.Alloc(256)
	if sa != a {
		t.Fatalf("snapshot allocator not reset: got %#x, parent got %#x", sa, a)
	}
	persist(sc, sa, bytes.Repeat([]byte{0xcd}, 256))
	if !p.PersistedEquals(a, bytes.Repeat([]byte{0xab}, 256)) {
		t.Fatal("snapshot allocation overwrote parent bytes")
	}
}

// TestSnapshotChain exercises second-generation sharing: a crash of a crash
// still isolates all three pools.
func TestSnapshotChain(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(64)
	persist(c, a, []byte("gen0"))
	s1 := p.Crash(CrashDropPending, 0)
	persist(s1.Ctx(), a, []byte("gen1"))
	s2 := s1.Crash(CrashDropPending, 0)
	persist(s2.Ctx(), a, []byte("gen2"))

	if !p.PersistedEquals(a, []byte("gen0")) || !s1.PersistedEquals(a, []byte("gen1")) || !s2.PersistedEquals(a, []byte("gen2")) {
		t.Fatalf("generation mixup: %q %q %q",
			p.PersistedBytes(a, 4), s1.PersistedBytes(a, 4), s2.PersistedBytes(a, 4))
	}
}

// TestPageStraddlingAccess drives stores, loads and flush/fence across page
// boundaries, where the scalar fast paths must fall back to the page-walking
// slow paths.
func TestPageStraddlingAccess(t *testing.T) {
	p := New(1 << 16)
	c := p.Ctx()
	// Last 4 bytes of page 0 + first 4 bytes of page 1.
	addr := p.Base() + PageSize - 4
	c.Store64(addr, 0x1122334455667788)
	if got := c.Load64(addr); got != 0x1122334455667788 {
		t.Fatalf("straddling Load64 = %#x", got)
	}
	c.Persist(addr, 8)
	want := []byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}
	if !p.PersistedEquals(addr, want) {
		t.Fatalf("straddling persist: %x", p.PersistedBytes(addr, 8))
	}

	// A bulk write spanning three pages.
	big := make([]byte, 2*PageSize+100)
	for i := range big {
		big[i] = byte(i * 7)
	}
	baddr := p.Base() + PageSize - 50
	c.StoreBytes(baddr, big)
	if !bytes.Equal(c.LoadBytes(baddr, uint64(len(big))), big) {
		t.Fatal("multi-page StoreBytes round trip failed")
	}
	c.Persist(baddr, uint64(len(big)))
	if !p.PersistedEquals(baddr, big) {
		t.Fatal("multi-page persist failed")
	}
	if !c.EqualBytes(baddr, string(big)) {
		t.Fatal("EqualBytes rejects matching multi-page span")
	}
	if c.EqualBytes(baddr, string(big[:len(big)-1])+"X") {
		t.Fatal("EqualBytes accepts mismatching multi-page span")
	}
}

// TestLineCountersMatchScan cross-checks the O(1) incremental dirty/pending
// counters against a full scan of the line state machine after every
// operation of a randomized store/flush/fence workload.
func TestLineCountersMatchScan(t *testing.T) {
	p := New(1 << 18)
	c := p.Ctx()
	rng := rand.New(rand.NewSource(42))
	check := func(step int) {
		d, pe := p.scanLineCounts()
		if p.DirtyLines() != d || p.PendingLines() != pe {
			t.Fatalf("step %d: counters (%d,%d) != scan (%d,%d)",
				step, p.DirtyLines(), p.PendingLines(), d, pe)
		}
	}
	for i := 0; i < 400; i++ {
		addr := p.Base() + uint64(rng.Intn(1<<18-64))
		switch rng.Intn(5) {
		case 0, 1:
			c.Store64(addr, rng.Uint64())
		case 2:
			c.StoreBytes(addr, bytes.Repeat([]byte{byte(i)}, 1+rng.Intn(200)))
		case 3:
			c.Flush(addr&^63, 64*(1+uint64(rng.Intn(4))))
		case 4:
			c.Fence()
		}
		check(i)
	}
	// And across a crash: the snapshot starts with clean lines.
	snap := p.Crash(CrashApplyPending, 0)
	if snap.DirtyLines() != 0 || snap.PendingLines() != 0 {
		t.Fatalf("snapshot counters not reset: %d/%d", snap.DirtyLines(), snap.PendingLines())
	}
	if d, pe := snap.scanLineCounts(); d != 0 || pe != 0 {
		t.Fatalf("snapshot scan not clean: %d/%d", d, pe)
	}
}

// TestIncrementalFingerprintMatchesFresh: a pool that computed fingerprints
// after every mutation (hot caches) must report the same final fingerprint
// as a twin pool hashing everything once from scratch, and the same as a
// deep-copy snapshot that carries no caches at all.
func TestIncrementalFingerprintMatchesFresh(t *testing.T) {
	ops := func(p *Pool, fingerprintEachStep bool) {
		c := p.Ctx()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 64; i++ {
			addr := p.Base() + uint64(rng.Intn(1<<20-256))
			persist(c, addr, bytes.Repeat([]byte{byte(i + 1)}, 1+rng.Intn(256)))
			if i%5 == 0 {
				p.RegisterNamed("r", addr, 64)
			}
			if fingerprintEachStep {
				p.Fingerprint()
			}
		}
	}
	hot := New(1 << 20)
	ops(hot, true)
	cold := New(1 << 20)
	ops(cold, false)
	if hot.Fingerprint() != cold.Fingerprint() {
		t.Fatal("incrementally maintained fingerprint differs from fresh recompute")
	}
	hot.SetCrashDeepCopy(true)
	deep := hot.Crash(CrashDropPending, 0)
	if deep.Fingerprint() != cold.Fingerprint() {
		t.Fatal("deep-copy snapshot (no caches) fingerprint differs")
	}
}

// TestReleaseRecycling: released snapshot pages flow through the page pool
// and must come back fully reinitialized — later snapshots see no stale
// bytes, line states, or hash caches.
func TestReleaseRecycling(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(4096)
	for round := 0; round < 8; round++ {
		payload := bytes.Repeat([]byte{byte(round + 1)}, 4096)
		persist(c, a, payload)
		snap := p.Crash(CrashDropPending, 0)
		if !snap.PersistedEquals(a, payload) {
			t.Fatalf("round %d: snapshot bytes wrong", round)
		}
		fpBefore := snap.Fingerprint()
		// Mutate the snapshot, then throw it away.
		persist(snap.Ctx(), a, bytes.Repeat([]byte{0xee}, 4096))
		if snap.Fingerprint() == fpBefore {
			t.Fatalf("round %d: snapshot fingerprint stale after write", round)
		}
		snap.Release()
		if !p.PersistedEquals(a, payload) {
			t.Fatalf("round %d: releasing the snapshot corrupted the parent", round)
		}
	}
}

// TestConcurrentParentSnapshotWrites runs parent and snapshots in parallel
// goroutines — the scenario the explorer's worker pool creates — and is the
// test the -race CI smoke leans on for the page refcount protocol.
func TestConcurrentParentSnapshotWrites(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(64 * 1024)
	persist(c, a, bytes.Repeat([]byte{0x11}, 64*1024))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		snap := p.Crash(CrashApplyPending, int64(g))
		wg.Add(1)
		go func(s *Pool, id byte) {
			defer wg.Done()
			sc := s.Ctx()
			for i := 0; i < 50; i++ {
				addr := s.Base() + uint64(i)*997
				persist(sc, addr, bytes.Repeat([]byte{id}, 128))
				s.Fingerprint()
			}
			s.Release()
		}(snap, byte(g+2))
	}
	// The parent keeps writing concurrently.
	for i := 0; i < 50; i++ {
		persist(c, a+uint64(i)*131, bytes.Repeat([]byte{0xaa}, 256))
	}
	wg.Wait()
	if p.Fingerprint() == ([32]byte{}) {
		t.Fatal("parent unusable after concurrent snapshots")
	}
}

// FuzzCOWvsDeepCrash feeds a random store/flush/fence program to two
// identical pools and checks that a copy-on-write crash image and a
// deep-copy crash image agree byte for byte (fingerprint and raw bytes)
// under all three pending-line policies.
func FuzzCOWvsDeepCrash(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x02, 0x03, 0x01, 0x00})
	f.Add([]byte{0x01, 0x10, 0x01, 0x90, 0x02, 0x01, 0x55, 0x02})
	f.Add(bytes.Repeat([]byte{0x01, 0x20, 0x02, 0x03}, 16))
	f.Fuzz(func(t *testing.T, program []byte) {
		const size = 1 << 18
		cow := New(size)
		deep := New(size)
		deep.SetCrashDeepCopy(true)
		run := func(p *Pool) {
			c := p.Ctx()
			for i := 0; i+1 < len(program); i += 2 {
				op, arg := program[i], uint64(program[i+1])
				addr := p.Base() + (arg*1021)%(size-512)
				switch op % 4 {
				case 0:
					c.Store64(addr, arg*0x9e3779b97f4a7c15)
				case 1:
					c.StoreBytes(addr, bytes.Repeat([]byte{byte(arg)}, 1+int(arg%300)))
				case 2:
					c.Flush(addr&^63, 64)
				case 3:
					c.Fence()
				}
			}
		}
		run(cow)
		run(deep)
		for policy := CrashDropPending; policy <= CrashRandomPending; policy++ {
			ci := cow.Crash(policy, 99)
			di := deep.Crash(policy, 99)
			if ci.Fingerprint() != di.Fingerprint() {
				t.Fatalf("policy %d: COW and deep-copy crash images differ", policy)
			}
			if !bytes.Equal(ci.PersistedBytes(ci.Base(), 4096), di.PersistedBytes(di.Base(), 4096)) {
				t.Fatalf("policy %d: first page bytes differ", policy)
			}
			ci.Release()
			di.Release()
		}
	})
}
