package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// chunkSpan is the bytes of address space one table chunk covers (2 MiB).
const chunkSpan = chunkSlots * PageSize

// TestChunkBoundaryStraddle covers accesses crossing a chunk boundary —
// where the page walk must hop root-directory slots mid-access: byte-slice
// and scalar stores, loads, in-place compares, and the crash image of the
// result under every pending-line policy.
func TestChunkBoundaryStraddle(t *testing.T) {
	const size = 1 << 23 // 4 chunks
	p := New(size)
	c := p.Ctx()
	boundary := p.Base() + chunkSpan

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	persist(c, boundary-4096, payload) // pages 511 and 512: chunks 0 and 1

	// A scalar write straddling the last page of chunk 0 and the first of
	// chunk 1 takes the byte-slice fallback; it must land on both sides.
	c.Store64(boundary-4, 0x1122334455667788)
	c.Persist(boundary-4, 8)

	want := append([]byte(nil), payload...)
	copy(want[4092:], []byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11})
	if got := c.LoadBytes(boundary-4096, 8192); !bytes.Equal(got, want) {
		t.Fatal("straddling load differs from straddling stores")
	}
	if v := c.Load64(boundary - 4); v != 0x1122334455667788 {
		t.Fatalf("straddling scalar load = %#x", v)
	}
	if !c.EqualBytes(boundary-4096, string(want)) {
		t.Fatal("EqualBytes disagrees across the chunk boundary")
	}
	if !p.PersistedEquals(boundary-4096, want) {
		t.Fatal("persistent image wrong across the chunk boundary")
	}

	for policy := CrashDropPending; policy <= CrashRandomPending; policy++ {
		img := p.Crash(policy, 5)
		if !img.PersistedEquals(boundary-4096, want) {
			t.Fatalf("policy %d: crash image wrong across the chunk boundary", policy)
		}
		img.Release()
	}
}

// TestChunkRefcountLifecycle pins the chunk-granular sharing discipline:
// Crash shares chunks wholesale, a write unshares exactly the chunk it
// lands in, untouched and all-zero chunks keep their state, and Release
// hands the snapshot's references back.
func TestChunkRefcountLifecycle(t *testing.T) {
	p := New(1 << 23) // 4 chunks
	c := p.Ctx()
	persist(c, p.Base(), []byte("chunk zero data"))
	persist(c, p.Base()+2*chunkSpan+512, []byte("chunk two data!"))

	snap := p.Crash(CrashDropPending, 0)
	if snap.persist[0] != p.persist[0] || snap.persist[2] != p.persist[2] {
		t.Fatal("snapshot does not share the parent's chunks")
	}
	// parent persist + snapshot persist + snapshot volatile all reference
	// the materialized chunks.
	if refs := atomic.LoadInt32(&p.persist[0].refs); refs != 3 {
		t.Fatalf("chunk 0 refs = %d after crash, want 3", refs)
	}
	if p.persist[1] != nil || snap.persist[1] != nil {
		t.Fatal("all-zero chunk materialized by the snapshot")
	}

	// A snapshot write unshares only the chunk it lands in.
	persist(snap.Ctx(), snap.Base(), []byte("snapshot change!"))
	if snap.persist[0] == p.persist[0] {
		t.Fatal("written chunk still shared")
	}
	if snap.persist[2] != p.persist[2] {
		t.Fatal("untouched chunk lost its sharing")
	}
	if !p.PersistedEquals(p.Base(), []byte("chunk zero data")) {
		t.Fatal("snapshot write leaked into the parent")
	}
	if !snap.PersistedEquals(snap.Base(), []byte("snapshot change!")) {
		t.Fatal("snapshot lost its own write")
	}

	snap.Release()
	if refs := atomic.LoadInt32(&p.persist[0].refs); refs != 1 {
		t.Fatalf("chunk 0 refs = %d after release, want 1", refs)
	}
	if refs := atomic.LoadInt32(&p.persist[2].refs); refs != 1 {
		t.Fatalf("chunk 2 refs = %d after release, want 1", refs)
	}
	if !p.PersistedEquals(p.Base()+2*chunkSpan+512, []byte("chunk two data!")) {
		t.Fatal("parent data lost after snapshot release")
	}
}

// TestRecycledChunkCleanliness checks the recycling contract at both levels:
// a chunk dies with every slot nil'd (so a recycled chunk can't leak stale
// page pointers), and a pool built after heavy churn through the recycler
// reads all-zero outside its own writes.
func TestRecycledChunkCleanliness(t *testing.T) {
	ch := newChunk()
	for i := 0; i < 8; i++ {
		ch.pages[i*63] = newPage()
	}
	ch.retain()
	ch.release() // still one reference: slots must survive
	if ch.pages[0] == nil {
		t.Fatal("non-final release cleared the chunk")
	}
	ch.release() // dies: pages released, slots cleared
	for i, pg := range ch.pages {
		if pg != nil {
			t.Fatalf("slot %d survived into the recycler", i)
		}
	}

	// Churn chunks through crash/release cycles, then verify a fresh pool
	// that materializes (possibly recycled) chunks reads zero everywhere it
	// did not write.
	p := New(1 << 22)
	c := p.Ctx()
	for i := 0; i < 64; i++ {
		persist(c, p.Base()+uint64(i)*65536, bytes.Repeat([]byte{0xdd}, 4096))
	}
	snap := p.Crash(CrashDropPending, 0)
	persist(snap.Ctx(), snap.Base()+12345, bytes.Repeat([]byte{0xee}, 300))
	snap.Release()
	p.Release()

	q := New(1 << 22)
	persist(q.Ctx(), q.Base()+1<<21, []byte{0x5a})
	img := q.PersistedBytes(q.Base(), 1<<22)
	for i, b := range img {
		want := byte(0)
		if i == 1<<21 {
			want = 0x5a
		}
		if b != want {
			t.Fatalf("offset %d reads %#x in a fresh pool (recycled chunk dirty)", i, b)
		}
	}
}

// TestFlatTablesIsolation mirrors the mutation-isolation contract under the
// flat-table engine: images stay frozen against parent writes and vice
// versa, flat images share no chunks (pages only), and RegisterNamed on an
// image still invalidates its fingerprint caches.
func TestFlatTablesIsolation(t *testing.T) {
	p := New(1 << 22)
	p.SetFlatTables(true)
	c := p.Ctx()
	a := p.Base() + chunkSpan + 4096
	persist(c, a, []byte("original payload"))

	snap := p.Crash(CrashDropPending, 0)
	for ci := range snap.persist {
		if snap.persist[ci] != nil && snap.persist[ci] == p.persist[ci] {
			t.Fatal("flat-table image shares a chunk with its parent")
		}
		if snap.persist[ci] != nil && atomic.LoadInt32(&snap.persist[ci].refs) != 1 {
			t.Fatal("flat-table image chunk is shared")
		}
	}
	snapFP := snap.Fingerprint()

	persist(c, a, []byte("parent overwrite"))
	if !snap.PersistedEquals(a, []byte("original payload")) {
		t.Fatal("parent write leaked into the flat-table image")
	}
	if snap.Fingerprint() != snapFP {
		t.Fatal("parent write changed the flat-table image fingerprint")
	}

	persist(snap.Ctx(), a, []byte("snapshotoverride"))
	if !p.PersistedEquals(a, []byte("parent overwrite")) {
		t.Fatal("image write leaked into the parent")
	}

	fpBefore := snap.Fingerprint()
	snap.RegisterNamed("recovered_root", snap.Base(), 64)
	if snap.Fingerprint() == fpBefore {
		t.Fatal("RegisterNamed did not invalidate the image fingerprint")
	}
	snap.Release()
}

// TestPageStatsCountersMatchScan asserts the O(1) PageStats counters
// against the structural scan: exactly in every phase where the counters
// are defined to be exact (a pool's own operations, both sides of a fresh
// crash, image-local writes, deep-copy images), and by the conservative
// invariants (zero exact, sum exact, shared never under-reported) once a
// related pool has written.
func TestPageStatsCountersMatchScan(t *testing.T) {
	for _, flat := range []bool{false, true} {
		name := "chunked"
		if flat {
			name = "flat"
		}
		t.Run(name, func(t *testing.T) {
			const size = 1 << 23 // 4 chunks, 2048 pages
			exact := func(pool *Pool, stage string) {
				t.Helper()
				z, s, pr := pool.PageStats()
				sz, ss, sp := pool.scanPageStats()
				if z != sz || s != ss || pr != sp {
					t.Fatalf("%s: counters (%d,%d,%d) != scan (%d,%d,%d)",
						stage, z, s, pr, sz, ss, sp)
				}
			}
			p := New(size)
			p.SetFlatTables(flat)
			c := p.Ctx()
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 40; i++ {
				off := uint64(rng.Intn(size - 4096))
				persist(c, p.Base()+off, bytes.Repeat([]byte{byte(i + 1)}, 1+rng.Intn(600)))
				exact(p, "single-pool op")
			}
			// Leave some lines pending so the apply policy duplicates chunks
			// inside Crash.
			c.StoreBytes(p.Base()+uint64(rng.Intn(size-64)), bytes.Repeat([]byte{0x7f}, 64))
			c.Flush(p.Base(), 64)

			snap := p.Crash(CrashApplyPending, 0)
			exact(p, "parent after crash")
			exact(snap, "fresh image")
			z, s, pr := snap.PageStats()
			if z+s+pr != snap.npages {
				t.Fatalf("image counters sum %d, want %d", z+s+pr, snap.npages)
			}
			if pr != 0 {
				t.Fatalf("fresh image reports %d private pages", pr)
			}

			// The image's own writes keep its counters exact.
			sc := snap.Ctx()
			for i := 0; i < 20; i++ {
				off := uint64(rng.Intn(size - 4096))
				persist(sc, snap.Base()+off, bytes.Repeat([]byte{0xee}, 1+rng.Intn(300)))
				exact(snap, "image op")
			}

			// After the image unshared chunks, the parent's counters may
			// over-report sharing but never under-report it, and the zero
			// count stays exact.
			persist(c, p.Base()+128, bytes.Repeat([]byte{0x21}, 64))
			z, s, pr = p.PageStats()
			sz, ss, sp := p.scanPageStats()
			if z != sz {
				t.Fatalf("parent zero count %d != scan %d", z, sz)
			}
			if s+pr != ss+sp {
				t.Fatalf("parent materialized count %d != scan %d", s+pr, ss+sp)
			}
			if s < ss {
				t.Fatalf("parent counters under-report shared: %d < scan %d", s, ss)
			}

			// Deep-copy images are exact by construction: everything private.
			p.SetCrashDeepCopy(true)
			deep := p.Crash(CrashDropPending, 0)
			exact(deep, "deep image")
			if z, s, pr = deep.PageStats(); z != 0 || s != 0 || pr != deep.npages {
				t.Fatalf("deep image stats (%d,%d,%d), want (0,0,%d)", z, s, pr, deep.npages)
			}
			deep.Release()
			snap.Release()
		})
	}
}

// TestConcurrentSnapshotChunkWrites is the -race exercise for the chunk
// level: several snapshots unshare the same chunks concurrently while the
// parent writes into them and a churn goroutine creates and releases more
// snapshots — the duplicate-vs-release window on chunk refcounts. Each
// snapshot must end with exactly its own writes.
func TestConcurrentSnapshotChunkWrites(t *testing.T) {
	const size = 1 << 23
	const regions = 16
	for _, flat := range []bool{false, true} {
		p := New(size)
		p.SetFlatTables(flat)
		c := p.Ctx()
		for i := 0; i < regions; i++ {
			persist(c, p.Base()+uint64(i)*(size/regions), bytes.Repeat([]byte{0x11}, 256))
		}
		snaps := make([]*Pool, 4)
		for i := range snaps {
			snaps[i] = p.Crash(CrashDropPending, 0)
		}
		var wg sync.WaitGroup
		for id, s := range snaps {
			wg.Add(1)
			go func(id byte, s *Pool) {
				defer wg.Done()
				sc := s.Ctx()
				for i := 0; i < regions; i++ {
					persist(sc, s.Base()+uint64(i)*(size/regions), bytes.Repeat([]byte{0x40 + id}, 128))
				}
				s.Fingerprint()
			}(byte(id), s)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.Crash(CrashDropPending, 0).Release()
			}
		}()
		for i := 0; i < regions; i++ {
			persist(c, p.Base()+uint64(i)*(size/regions), bytes.Repeat([]byte{0xaa}, 128))
		}
		wg.Wait()
		for id, s := range snaps {
			for i := 0; i < regions; i++ {
				addr := s.Base() + uint64(i)*(size/regions)
				if !s.PersistedEquals(addr, bytes.Repeat([]byte{byte(0x40 + id)}, 128)) {
					t.Fatalf("flat=%v: snapshot %d region %d lost its write", flat, id, i)
				}
			}
			s.Release()
		}
		for i := 0; i < regions; i++ {
			if !p.PersistedEquals(p.Base()+uint64(i)*(size/regions), bytes.Repeat([]byte{0xaa}, 128)) {
				t.Fatalf("flat=%v: parent region %d lost its write", flat, i)
			}
		}
	}
}

// TestPartialTailChunk covers a pool whose last chunk is only partially
// populated (size not a multiple of the chunk span): fingerprints, crash
// images, deep-copy materialization and image serialization must all bound
// their walks by the page count, not the directory capacity.
func TestPartialTailChunk(t *testing.T) {
	size := uint64(2*chunkSpan + 96*1024) // 2 full chunks + 24-page tail
	p := New(size)
	c := p.Ctx()
	end := p.Base() + size
	tail := bytes.Repeat([]byte{0x3c}, 200)
	persist(c, end-200, tail)
	persist(c, p.Base()+chunkSpan/2, []byte("middle"))
	fp := p.Fingerprint()

	snap := p.Crash(CrashDropPending, 0)
	if snap.Fingerprint() != fp {
		t.Fatal("snapshot fingerprint differs from parent")
	}
	if !snap.PersistedEquals(end-200, tail) {
		t.Fatal("tail-chunk bytes lost in the snapshot")
	}
	snap.Release()

	p.SetCrashDeepCopy(true)
	deep := p.Crash(CrashDropPending, 0)
	if deep.Fingerprint() != fp {
		t.Fatal("deep-copy fingerprint differs in the tail-chunk pool")
	}
	if z, s, pr := deep.PageStats(); z != 0 || s != 0 || pr != deep.npages {
		t.Fatalf("deep tail-chunk stats (%d,%d,%d), want (0,0,%d)", z, s, pr, deep.npages)
	}
	deep.Release()

	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() != fp {
		t.Fatal("image round trip changed the fingerprint")
	}
	if z, s, pr := q.PageStats(); func() bool {
		sz, ss, sp := q.scanPageStats()
		return z != sz || s != ss || pr != sp
	}() {
		t.Fatal("ReadImage counters diverge from the scan")
	}
}

// FuzzChunkedVsFlat feeds a random store/flush/fence program spanning
// several chunks to two identical pools — one taking chunk-shared
// snapshots, one flat-table snapshots — and checks the images agree byte
// for byte under all three pending-line policies, including a second
// crash generation taken after writing into the first images (the
// shared-chunk write path).
func FuzzChunkedVsFlat(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x02, 0x03, 0x01, 0x00})
	f.Add([]byte{0x01, 0x10, 0x00, 0xfe, 0x02, 0x01, 0x55, 0x02, 0x03, 0x80})
	f.Add(bytes.Repeat([]byte{0x00, 0xf0, 0x01, 0x20, 0x02, 0x03}, 12))
	f.Fuzz(func(t *testing.T, program []byte) {
		const size = 1 << 23 // 4 chunks
		chunked := New(size)
		flat := New(size)
		flat.SetFlatTables(true)
		run := func(p *Pool) {
			c := p.Ctx()
			for i := 0; i+1 < len(program); i += 2 {
				op, arg := program[i], uint64(program[i+1])
				addr := p.Base() + (arg*65539)%(size-600)
				switch op % 4 {
				case 0:
					c.Store64(addr, arg*0x9e3779b97f4a7c15)
				case 1:
					c.StoreBytes(addr, bytes.Repeat([]byte{byte(arg)}, 1+int(arg%300)))
				case 2:
					c.Flush(addr&^63, 64)
				case 3:
					c.Fence()
				}
			}
		}
		run(chunked)
		run(flat)
		for policy := CrashDropPending; policy <= CrashRandomPending; policy++ {
			ci := chunked.Crash(policy, 42)
			fi := flat.Crash(policy, 42)
			if ci.Fingerprint() != fi.Fingerprint() {
				t.Fatalf("policy %d: chunked and flat crash images differ", policy)
			}
			// Write into both images identically and crash again: the
			// second generation exercises writes into shared chunks.
			persist(ci.Ctx(), ci.Base()+chunkSpan-64, bytes.Repeat([]byte{0x99}, 128))
			persist(fi.Ctx(), fi.Base()+chunkSpan-64, bytes.Repeat([]byte{0x99}, 128))
			ci2 := ci.Crash(CrashDropPending, 0)
			fi2 := fi.Crash(CrashDropPending, 0)
			if ci2.Fingerprint() != fi2.Fingerprint() {
				t.Fatalf("policy %d: second-generation images differ", policy)
			}
			for _, img := range []*Pool{ci2, fi2, ci, fi} {
				img.Release()
			}
		}
	})
}
