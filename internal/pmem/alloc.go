package pmem

import (
	"fmt"
	"sort"
)

// allocator is a first-fit free-list allocator over the pool's address
// space. It backs Alloc/Free on the pool and the mini-PMDK object allocator.
// Allocation metadata is volatile by design: persistent allocators rebuild
// their heaps during recovery from object headers, which the mini-PMDK layer
// models itself.
type allocator struct {
	free []freeBlock // sorted by address, coalesced
}

type freeBlock struct {
	addr uint64
	size uint64
}

func (a *allocator) init(base, size uint64) {
	a.free = []freeBlock{{addr: base, size: size}}
}

// cloneFrom copies src's free list so the receiver allocates and frees
// independently from identical state — Pool.Fork carries the volatile
// allocator over, unlike Crash, which resets it for recovery to rebuild.
func (a *allocator) cloneFrom(src *allocator) {
	a.free = append(a.free[:0], src.free...)
}

const allocAlign = 16

func alignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// alloc returns the address of a block of at least size bytes aligned to
// allocAlign, or 0 when the pool is exhausted.
func (a *allocator) alloc(size uint64) uint64 {
	size = alignUp(size, allocAlign)
	for i := range a.free {
		b := &a.free[i]
		start := alignUp(b.addr, allocAlign)
		pad := start - b.addr
		if b.size < pad+size {
			continue
		}
		// Carve [start, start+size) out of b.
		tailAddr := start + size
		tailSize := b.addr + b.size - tailAddr
		if pad > 0 {
			b.size = pad
			if tailSize > 0 {
				a.free = append(a.free, freeBlock{})
				copy(a.free[i+2:], a.free[i+1:])
				a.free[i+1] = freeBlock{addr: tailAddr, size: tailSize}
			}
		} else {
			if tailSize > 0 {
				b.addr, b.size = tailAddr, tailSize
			} else {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
		}
		return start
	}
	return 0
}

// allocAt carves exactly [addr, addr+size) out of the free list, reporting
// whether the range was fully free. Used when reconstructing allocator
// state from persistent metadata after a restart.
func (a *allocator) allocAt(addr, size uint64) bool {
	size = alignUp(size, allocAlign)
	for i := range a.free {
		b := a.free[i]
		if addr < b.addr || addr+size > b.addr+b.size {
			continue
		}
		head := addr - b.addr
		tail := b.addr + b.size - (addr + size)
		switch {
		case head == 0 && tail == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case head == 0:
			a.free[i] = freeBlock{addr: addr + size, size: tail}
		case tail == 0:
			a.free[i].size = head
		default:
			a.free[i].size = head
			a.free = append(a.free, freeBlock{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = freeBlock{addr: addr + size, size: tail}
		}
		return true
	}
	return false
}

// release returns a block to the free list, coalescing neighbours.
func (a *allocator) release(addr, size uint64) {
	size = alignUp(size, allocAlign)
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr >= addr })
	a.free = append(a.free, freeBlock{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = freeBlock{addr: addr, size: size}
	// Coalesce with the next block.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with the previous block.
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// freeBytes returns the total free space.
func (a *allocator) freeBytes() uint64 {
	var total uint64
	for _, b := range a.free {
		total += b.size
	}
	return total
}

// Alloc reserves size bytes of pool space and returns its address. It
// panics when the pool is exhausted: workloads size their pools up front,
// so exhaustion is a harness bug.
func (p *Pool) Alloc(size uint64) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.alloc.alloc(size)
	if addr == 0 {
		panic(fmt.Sprintf("pmem: pool exhausted allocating %d bytes (%d free)",
			size, p.alloc.freeBytes()))
	}
	return addr
}

// TryAlloc is Alloc but returns ok=false instead of panicking on
// exhaustion.
func (p *Pool) TryAlloc(size uint64) (addr uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr = p.alloc.alloc(size)
	return addr, addr != 0
}

// AllocAt reserves the exact range [addr, addr+size), reporting whether it
// was free. Restart paths use it to re-claim regions recorded in
// persistent metadata so the volatile allocator cannot hand them out again.
func (p *Pool) AllocAt(addr, size uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	return p.alloc.allocAt(addr, size)
}

// Free returns a block previously obtained from Alloc.
func (p *Pool) Free(addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.alloc.release(addr, size)
}

// FreeBytes returns the pool space not currently allocated.
func (p *Pool) FreeBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alloc.freeBytes()
}
