package pmem

import (
	"encoding/binary"

	"pmdebugger/internal/trace"
)

// Ctx is an execution context for issuing instrumented PM operations: it
// carries the thread id, the current strand section, and the current source
// site used to attribute stores in bug reports.
//
// A single-threaded program can use Pool.Ctx(). Multi-threaded workloads
// create one Ctx per goroutine; the pool serializes the resulting event
// stream. Strand sections (§5) are entered with StrandBegin, which returns a
// derived Ctx bound to a fresh strand id.
// A context whose caller already serializes a whole application operation
// (memcached holds its cache mutex across each Set, for example) can wrap
// the operation in Begin/End: the pool mutex is then taken once per
// operation instead of once per instruction, which removes dozens of mutex
// round-trips from every op. The emitted event stream is unchanged — the
// caller's own serialization already prevented interleaving within the op.
type Ctx struct {
	pool   *Pool
	strand int32
	thread int32
	site   trace.SiteID
	// locked marks an open Begin/End lock session: the pool mutex is held
	// by this context and per-operation methods must not re-acquire it.
	// Derived contexts (At, StrandBegin) share the session's scope and must
	// not outlive it.
	locked bool
	// broken marks a session force-closed by a crash-trap unwind: the pool
	// released the mutex itself (End never ran), so a deferred End on the
	// unwind path must be a no-op rather than a second unlock.
	broken bool
}

// Ctx returns the pool's default context: thread 0, the implicit strand 0.
func (p *Pool) Ctx() *Ctx { return &Ctx{pool: p} }

// ThreadCtx returns a context for the given application thread id.
func (p *Pool) ThreadCtx(thread int32) *Ctx { return &Ctx{pool: p, thread: thread} }

// Pool returns the underlying pool.
func (c *Ctx) Pool() *Pool { return c.pool }

// Strand returns the context's strand id (0 outside strand sections).
func (c *Ctx) Strand() int32 { return c.strand }

// Thread returns the context's thread id.
func (c *Ctx) Thread() int32 { return c.thread }

// SetSite sets the source site attributed to subsequent stores and returns
// the context for chaining. Typical use: c.SetSite(itemSetCasSite).
func (c *Ctx) SetSite(site trace.SiteID) *Ctx {
	c.site = site
	return c
}

// At returns a derived context with the given site, leaving c unchanged.
// The derived context shares any open lock session.
func (c *Ctx) At(site trace.SiteID) *Ctx {
	d := *c
	d.site = site
	return &d
}

// Begin opens an op-scoped lock session: the pool mutex is acquired once
// and held until End, and every operation issued through this context (and
// contexts derived from it) runs under that single acquisition. Use it when
// an outer lock already serializes the whole operation. Sessions do not
// nest, and the pool's pipelines cannot be drained while one is open (the
// usual drain points — crash traps, End — run inside the same mutex and
// still work).
func (c *Ctx) Begin() {
	if c.locked {
		panic("pmem: Ctx.Begin inside an open lock session")
	}
	c.pool.mu.Lock()
	c.locked = true
	c.broken = false
	c.pool.session = c
}

// End closes the lock session opened by Begin. If a crash trap fired inside
// the session, the pool already released the mutex on the unwind and End
// only resets the context, so `defer ctx.End()` call sites survive the trap.
func (c *Ctx) End() {
	if c.broken {
		c.broken = false
		c.locked = false
		return
	}
	if !c.locked {
		panic("pmem: Ctx.End without Begin")
	}
	c.locked = false
	c.pool.session = nil
	c.pool.mu.Unlock()
}

// lock acquires the pool mutex unless an open session already holds it.
func (c *Ctx) lock() {
	if !c.locked {
		c.pool.mu.Lock()
	}
}

// unlock releases the pool mutex unless an open session still owns it.
func (c *Ctx) unlock() {
	if !c.locked {
		c.pool.mu.Unlock()
	}
}

// StoreBytes writes data to PM at addr (a store instruction).
func (c *Ctx) StoreBytes(addr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	c.lock()
	defer c.unlock()
	c.pool.storeLocked(addr, data, c.strand, c.thread, c.site)
}

// The scalar stores write the volatile page directly (binary.LittleEndian
// compiles to a single store) rather than routing a stack buffer through the
// byte-slice path — like the scalar loads, they sit on the workload hot path
// (item headers, chain links, statistics counters). The rare access that
// straddles a page boundary falls back to the byte-slice path; the emitted
// event is identical to the equivalent StoreBytes.

// storeScalar writes the size-byte little-endian value at addr and runs the
// shared store bookkeeping. Callers hold the pool mutex via c.lock().
func (c *Ctx) storeScalar(addr uint64, v uint64, size uint64) {
	p := c.pool
	p.checkRange(addr, size)
	off := p.off(addr)
	if po := off & pageMask; po+size <= PageSize {
		pg := p.volatileWritable(int(off >> PageShift))
		switch size {
		case 1:
			pg.data[po] = uint8(v)
		case 2:
			binary.LittleEndian.PutUint16(pg.data[po:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(pg.data[po:], uint32(v))
		default:
			binary.LittleEndian.PutUint64(pg.data[po:], v)
		}
	} else {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		p.writeVolatile(off, b[:size])
	}
	p.storeTailLocked(addr, size, c.strand, c.thread, c.site)
}

// Store8 writes one byte.
func (c *Ctx) Store8(addr uint64, v uint8) {
	c.lock()
	defer c.unlock()
	c.storeScalar(addr, uint64(v), 1)
}

// Store16 writes a little-endian 16-bit value.
func (c *Ctx) Store16(addr uint64, v uint16) {
	c.lock()
	defer c.unlock()
	c.storeScalar(addr, uint64(v), 2)
}

// Store32 writes a little-endian 32-bit value.
func (c *Ctx) Store32(addr uint64, v uint32) {
	c.lock()
	defer c.unlock()
	c.storeScalar(addr, uint64(v), 4)
}

// Store64 writes a little-endian 64-bit value.
func (c *Ctx) Store64(addr uint64, v uint64) {
	c.lock()
	defer c.unlock()
	c.storeScalar(addr, v, 8)
}

// loadInto is LoadInto honouring an open lock session.
func (c *Ctx) loadInto(addr uint64, dst []byte) {
	c.lock()
	defer c.unlock()
	c.pool.checkRange(addr, uint64(len(dst)))
	c.pool.readVolatile(c.pool.off(addr), dst)
}

// The scalar loads read the volatile page directly (binary.LittleEndian
// compiles to a single load) rather than copying through a stack buffer —
// they sit on the workload hot path (statistics counters, chain links).

// loadScalar reads the size-byte little-endian value at addr. Callers hold
// the pool mutex via c.lock().
func (c *Ctx) loadScalar(addr uint64, size uint64) uint64 {
	p := c.pool
	p.checkRange(addr, size)
	off := p.off(addr)
	if po := off & pageMask; po+size <= PageSize {
		pg := pageAt(p.volatile, int(off>>PageShift))
		if pg == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(pg.data[po])
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg.data[po:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg.data[po:]))
		default:
			return binary.LittleEndian.Uint64(pg.data[po:])
		}
	}
	var b [8]byte
	p.readVolatile(off, b[:size])
	return binary.LittleEndian.Uint64(b[:])
}

// Load8 reads one byte from the volatile image.
func (c *Ctx) Load8(addr uint64) uint8 {
	c.lock()
	defer c.unlock()
	return uint8(c.loadScalar(addr, 1))
}

// Load16 reads a little-endian 16-bit value.
func (c *Ctx) Load16(addr uint64) uint16 {
	c.lock()
	defer c.unlock()
	return uint16(c.loadScalar(addr, 2))
}

// Load32 reads a little-endian 32-bit value.
func (c *Ctx) Load32(addr uint64) uint32 {
	c.lock()
	defer c.unlock()
	return uint32(c.loadScalar(addr, 4))
}

// Load64 reads a little-endian 64-bit value.
func (c *Ctx) Load64(addr uint64) uint64 {
	c.lock()
	defer c.unlock()
	return c.loadScalar(addr, 8)
}

// EqualBytes reports whether PM at [addr, addr+len(s)) equals s, comparing
// in place page by page — the memcmp idiom key probes use, with no
// per-probe copy.
func (c *Ctx) EqualBytes(addr uint64, s string) bool {
	if len(s) == 0 {
		return true
	}
	c.lock()
	defer c.unlock()
	p := c.pool
	p.checkRange(addr, uint64(len(s)))
	o := p.off(addr)
	for len(s) > 0 {
		pi, po := int(o>>PageShift), o&pageMask
		chunk := uint64(len(s))
		if PageSize-po < chunk {
			chunk = PageSize - po
		}
		if pg := pageAt(p.volatile, pi); pg != nil {
			if string(pg.data[po:po+chunk]) != s[:chunk] {
				return false
			}
		} else {
			for i := uint64(0); i < chunk; i++ {
				if s[i] != 0 {
					return false
				}
			}
		}
		s = s[chunk:]
		o += chunk
	}
	return true
}

// LoadBytes reads size bytes from the volatile image.
func (c *Ctx) LoadBytes(addr, size uint64) []byte {
	out := make([]byte, size)
	c.loadInto(addr, out)
	return out
}

// TryAlloc allocates size bytes from the pool's volatile allocator through
// the context, honouring an open lock session (Pool.TryAlloc would
// self-deadlock inside one).
func (c *Ctx) TryAlloc(size uint64) (addr uint64, ok bool) {
	c.lock()
	defer c.unlock()
	addr = c.pool.alloc.alloc(size)
	return addr, addr != 0
}

// Free returns a block previously obtained from TryAlloc, honouring an open
// lock session.
func (c *Ctx) Free(addr, size uint64) {
	c.lock()
	defer c.unlock()
	c.pool.checkRange(addr, size)
	c.pool.alloc.release(addr, size)
}

// Flush issues a CLWB covering [addr, addr+size).
func (c *Ctx) Flush(addr, size uint64) {
	c.FlushKind(addr, size, trace.CLWB)
}

// FlushKind issues a writeback of the given instruction kind.
func (c *Ctx) FlushKind(addr, size uint64, kind trace.FlushKind) {
	c.lock()
	defer c.unlock()
	c.pool.flushLocked(addr, size, kind, c.strand, c.thread, c.site)
}

// Fence issues an SFENCE: all prior writebacks become durable.
func (c *Ctx) Fence() {
	c.lock()
	defer c.unlock()
	c.pool.fenceLocked(c.strand, c.thread)
}

// Persist is the libpmemobj pmemobj_persist idiom: flush the covering cache
// lines, then fence.
func (c *Ctx) Persist(addr, size uint64) {
	c.Flush(addr, size)
	c.Fence()
}

// EpochBegin marks the start of an epoch section (TX_BEGIN). Epochs nest:
// only the outermost begin/end emit events, matching the paper's flattening
// of nested transactions (§6).
func (c *Ctx) EpochBegin() {
	c.lock()
	defer c.unlock()
	c.pool.epochDepth++
	if c.pool.epochDepth > 1 {
		return
	}
	c.pool.epochID++
	c.pool.emitLocked(trace.Event{Kind: trace.KindEpochBegin, Strand: c.strand, Thread: c.thread})
}

// EpochEnd marks the end of an epoch section (TX_END).
func (c *Ctx) EpochEnd() {
	c.lock()
	defer c.unlock()
	if c.pool.epochDepth == 0 {
		panic("pmem: EpochEnd without EpochBegin")
	}
	c.pool.epochDepth--
	if c.pool.epochDepth > 0 {
		return
	}
	c.pool.emitLocked(trace.Event{Kind: trace.KindEpochEnd, Strand: c.strand, Thread: c.thread})
}

// InEpoch reports whether an epoch section is open.
func (c *Ctx) InEpoch() bool {
	c.lock()
	defer c.unlock()
	return c.pool.epochDepth > 0
}

// StrandBegin opens a new strand section and returns a context bound to it.
// Memory accesses from different strands are concurrent unless explicitly
// ordered with JoinStrand.
func (c *Ctx) StrandBegin() *Ctx {
	c.lock()
	defer c.unlock()
	c.pool.strandSeq++
	s := &Ctx{pool: c.pool, strand: c.pool.strandSeq, thread: c.thread, site: c.site, locked: c.locked}
	c.pool.emitLocked(trace.Event{Kind: trace.KindStrandBegin, Strand: s.strand, Thread: c.thread})
	return s
}

// StrandEnd closes the strand section this context is bound to.
func (c *Ctx) StrandEnd() {
	if c.strand == 0 {
		panic("pmem: StrandEnd on the implicit strand")
	}
	c.lock()
	defer c.unlock()
	c.pool.emitLocked(trace.Event{Kind: trace.KindStrandEnd, Strand: c.strand, Thread: c.thread})
}

// JoinStrand establishes explicit persist ordering: all strands opened so
// far must complete their persists before persists after the join.
func (c *Ctx) JoinStrand() {
	c.lock()
	defer c.unlock()
	c.pool.emitLocked(trace.Event{Kind: trace.KindJoinStrand, Strand: c.strand, Thread: c.thread})
}

// TxLogAdd records that the object at [addr, addr+size) was appended to a
// transaction undo log. The redundant-logging rule (§5.2) treats this as a
// store to the logged object's address.
func (c *Ctx) TxLogAdd(addr, size uint64) {
	c.lock()
	defer c.unlock()
	c.pool.checkRange(addr, size)
	c.pool.emitLocked(trace.Event{
		Kind: trace.KindTxLogAdd, Addr: addr, Size: size,
		Strand: c.strand, Thread: c.thread, Site: c.site,
	})
}
