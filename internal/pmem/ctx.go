package pmem

import (
	"encoding/binary"

	"pmdebugger/internal/trace"
)

// Ctx is an execution context for issuing instrumented PM operations: it
// carries the thread id, the current strand section, and the current source
// site used to attribute stores in bug reports.
//
// A single-threaded program can use Pool.Ctx(). Multi-threaded workloads
// create one Ctx per goroutine; the pool serializes the resulting event
// stream. Strand sections (§5) are entered with StrandBegin, which returns a
// derived Ctx bound to a fresh strand id.
type Ctx struct {
	pool   *Pool
	strand int32
	thread int32
	site   trace.SiteID
}

// Ctx returns the pool's default context: thread 0, the implicit strand 0.
func (p *Pool) Ctx() *Ctx { return &Ctx{pool: p} }

// ThreadCtx returns a context for the given application thread id.
func (p *Pool) ThreadCtx(thread int32) *Ctx { return &Ctx{pool: p, thread: thread} }

// Pool returns the underlying pool.
func (c *Ctx) Pool() *Pool { return c.pool }

// Strand returns the context's strand id (0 outside strand sections).
func (c *Ctx) Strand() int32 { return c.strand }

// Thread returns the context's thread id.
func (c *Ctx) Thread() int32 { return c.thread }

// SetSite sets the source site attributed to subsequent stores and returns
// the context for chaining. Typical use: c.SetSite(itemSetCasSite).
func (c *Ctx) SetSite(site trace.SiteID) *Ctx {
	c.site = site
	return c
}

// At returns a derived context with the given site, leaving c unchanged.
func (c *Ctx) At(site trace.SiteID) *Ctx {
	d := *c
	d.site = site
	return &d
}

// StoreBytes writes data to PM at addr (a store instruction).
func (c *Ctx) StoreBytes(addr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.storeLocked(addr, data, c.strand, c.thread, c.site)
}

// Store8 writes one byte.
func (c *Ctx) Store8(addr uint64, v uint8) {
	c.StoreBytes(addr, []byte{v})
}

// Store16 writes a little-endian 16-bit value.
func (c *Ctx) Store16(addr uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.StoreBytes(addr, b[:])
}

// Store32 writes a little-endian 32-bit value.
func (c *Ctx) Store32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.StoreBytes(addr, b[:])
}

// Store64 writes a little-endian 64-bit value.
func (c *Ctx) Store64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.StoreBytes(addr, b[:])
}

// Load8 reads one byte from the volatile image.
func (c *Ctx) Load8(addr uint64) uint8 {
	var b [1]byte
	c.pool.LoadInto(addr, b[:])
	return b[0]
}

// Load16 reads a little-endian 16-bit value.
func (c *Ctx) Load16(addr uint64) uint16 {
	var b [2]byte
	c.pool.LoadInto(addr, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// Load32 reads a little-endian 32-bit value.
func (c *Ctx) Load32(addr uint64) uint32 {
	var b [4]byte
	c.pool.LoadInto(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Load64 reads a little-endian 64-bit value.
func (c *Ctx) Load64(addr uint64) uint64 {
	var b [8]byte
	c.pool.LoadInto(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// LoadBytes reads size bytes from the volatile image.
func (c *Ctx) LoadBytes(addr, size uint64) []byte {
	return c.pool.Load(addr, size)
}

// Flush issues a CLWB covering [addr, addr+size).
func (c *Ctx) Flush(addr, size uint64) {
	c.FlushKind(addr, size, trace.CLWB)
}

// FlushKind issues a writeback of the given instruction kind.
func (c *Ctx) FlushKind(addr, size uint64, kind trace.FlushKind) {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.flushLocked(addr, size, kind, c.strand, c.thread, c.site)
}

// Fence issues an SFENCE: all prior writebacks become durable.
func (c *Ctx) Fence() {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.fenceLocked(c.strand, c.thread)
}

// Persist is the libpmemobj pmemobj_persist idiom: flush the covering cache
// lines, then fence.
func (c *Ctx) Persist(addr, size uint64) {
	c.Flush(addr, size)
	c.Fence()
}

// EpochBegin marks the start of an epoch section (TX_BEGIN). Epochs nest:
// only the outermost begin/end emit events, matching the paper's flattening
// of nested transactions (§6).
func (c *Ctx) EpochBegin() {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.epochDepth++
	if c.pool.epochDepth > 1 {
		return
	}
	c.pool.epochID++
	c.pool.emitLocked(trace.Event{Kind: trace.KindEpochBegin, Strand: c.strand, Thread: c.thread})
}

// EpochEnd marks the end of an epoch section (TX_END).
func (c *Ctx) EpochEnd() {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	if c.pool.epochDepth == 0 {
		panic("pmem: EpochEnd without EpochBegin")
	}
	c.pool.epochDepth--
	if c.pool.epochDepth > 0 {
		return
	}
	c.pool.emitLocked(trace.Event{Kind: trace.KindEpochEnd, Strand: c.strand, Thread: c.thread})
}

// InEpoch reports whether an epoch section is open.
func (c *Ctx) InEpoch() bool {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	return c.pool.epochDepth > 0
}

// StrandBegin opens a new strand section and returns a context bound to it.
// Memory accesses from different strands are concurrent unless explicitly
// ordered with JoinStrand.
func (c *Ctx) StrandBegin() *Ctx {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.strandSeq++
	s := &Ctx{pool: c.pool, strand: c.pool.strandSeq, thread: c.thread, site: c.site}
	c.pool.emitLocked(trace.Event{Kind: trace.KindStrandBegin, Strand: s.strand, Thread: c.thread})
	return s
}

// StrandEnd closes the strand section this context is bound to.
func (c *Ctx) StrandEnd() {
	if c.strand == 0 {
		panic("pmem: StrandEnd on the implicit strand")
	}
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.emitLocked(trace.Event{Kind: trace.KindStrandEnd, Strand: c.strand, Thread: c.thread})
}

// JoinStrand establishes explicit persist ordering: all strands opened so
// far must complete their persists before persists after the join.
func (c *Ctx) JoinStrand() {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.emitLocked(trace.Event{Kind: trace.KindJoinStrand, Strand: c.strand, Thread: c.thread})
}

// TxLogAdd records that the object at [addr, addr+size) was appended to a
// transaction undo log. The redundant-logging rule (§5.2) treats this as a
// store to the logged object's address.
func (c *Ctx) TxLogAdd(addr, size uint64) {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	c.pool.checkRange(addr, size)
	c.pool.emitLocked(trace.Event{
		Kind: trace.KindTxLogAdd, Addr: addr, Size: size,
		Strand: c.strand, Thread: c.thread, Site: c.site,
	})
}
