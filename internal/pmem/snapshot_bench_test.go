package pmem

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkCrashSnapshot isolates the pure snapshot+release cost — no
// checker, no recovery, no workload — for the three image engines at
// several pool sizes. The pool carries a fixed ~64 dirty pages spread
// across its whole span, so the chunked engine's per-image cost should
// stay flat as the pool grows while the flat-table engine scales with the
// directory length and the deep-copy baseline with the pool size.
func BenchmarkCrashSnapshot(b *testing.B) {
	for _, mib := range []int{16, 256, 1024} {
		size := uint64(mib) << 20
		for _, engine := range []string{"chunked", "flat", "deepcopy"} {
			if engine == "deepcopy" && mib > 256 {
				// O(pool) materialization at 1 GiB swamps the benchmark
				// run; the scaling story is visible at 16 vs 256 already.
				continue
			}
			b.Run(fmt.Sprintf("%s/%dMiB", engine, mib), func(b *testing.B) {
				p := New(size)
				p.SetFlatTables(engine == "flat")
				p.SetCrashDeepCopy(engine == "deepcopy")
				c := p.Ctx()
				const dirty = 64
				payload := bytes.Repeat([]byte{0x5b}, 512)
				for i := 0; i < dirty; i++ {
					persist(c, p.Base()+uint64(i)*(size/dirty)+64, payload)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					img := p.Crash(CrashDropPending, 0)
					img.Release()
				}
				b.StopTimer()
				p.Release()
			})
		}
	}
}

// BenchmarkFork measures the fork+release cycle against the number of dirty
// pages carried: like Crash it must be O(dirty) — the directory copy plus
// one refcount bump per materialized chunk and mut chunk — so the cost
// should track the dirty count, not the pool size. Lines are left half
// staged so the pending set and mut sharing are on the measured path.
func BenchmarkFork(b *testing.B) {
	const size = uint64(256) << 20
	for _, dirty := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("dirty=%d", dirty), func(b *testing.B) {
			p := New(size)
			c := p.Ctx()
			payload := bytes.Repeat([]byte{0x5b}, 512)
			for i := 0; i < dirty; i++ {
				addr := p.Base() + uint64(i)*(size/uint64(dirty)) + 64
				if i%2 == 0 {
					persist(c, addr, payload)
				} else {
					c.StoreBytes(addr, payload)
					c.Flush(addr, uint64(len(payload))) // staged, never fenced
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := p.Fork()
				f.Release()
			}
			b.StopTimer()
			p.Release()
		})
	}
}

// BenchmarkFingerprintAfterCrash measures the explorer's per-point hashing
// pattern — dirty a page, refresh the parent's Merkle caches, snapshot,
// fingerprint the image for dedup — which must stay O(dirty), not O(pool):
// the group and super cache levels absorb the directory length.
func BenchmarkFingerprintAfterCrash(b *testing.B) {
	for _, mib := range []int{16, 256, 1024} {
		size := uint64(mib) << 20
		b.Run(fmt.Sprintf("%dMiB", mib), func(b *testing.B) {
			p := New(size)
			c := p.Ctx()
			payload := bytes.Repeat([]byte{0x5b}, 512)
			for i := 0; i < 64; i++ {
				persist(c, p.Base()+uint64(i)*(size/64)+64, payload)
			}
			p.Fingerprint() // warm the parent's caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				persist(c, p.Base()+uint64(i%64)*(size/64)+64, payload)
				p.Fingerprint()
				img := p.Crash(CrashDropPending, 0)
				img.Fingerprint()
				img.Release()
			}
			b.StopTimer()
			p.Release()
		})
	}
}
