package pmem

import (
	"testing"

	"pmdebugger/internal/trace"
)

// drive emits a deterministic mixed stream: stores, flushes, fences, a
// named region, an epoch and a strand section.
func drive(p *Pool, rounds int) {
	c := p.Ctx()
	base := p.Base()
	p.RegisterNamed("counter", base, 8)
	for r := 0; r < rounds; r++ {
		a := base + uint64(r%64)*LineSize
		c.Store64(a, uint64(r))
		c.Store64(a+8, uint64(r)*3)
		c.Flush(a, 16)
		if r%4 == 3 {
			c.Fence()
		}
		if r%16 == 5 {
			c.EpochBegin()
			c.Store64(base+4096, uint64(r))
			c.Persist(base+4096, 8)
			c.EpochEnd()
		}
		if r%16 == 9 {
			s := c.StrandBegin()
			s.Store64(base+8192, uint64(r))
			s.Persist(base+8192, 8)
			s.StrandEnd()
		}
	}
	c.Fence()
}

// TestAsyncDeliveryIdenticalStream runs the same deterministic program with
// a synchronous recorder and an asynchronous one attached to one pool and
// requires the recorded streams to be identical event-for-event.
func TestAsyncDeliveryIdenticalStream(t *testing.T) {
	p := New(1 << 20)
	syncRec := trace.NewRecorder(1024)
	asyncRec := trace.NewRecorder(1024)
	p.Attach(syncRec)
	p.AttachAsync(asyncRec)
	drive(p, 200)
	p.End()

	// The async recorder missed the sync recorder's attach Register (it
	// was attached one event later), so align on the async recorder's
	// first event.
	if len(asyncRec.Events) == 0 {
		t.Fatal("async recorder saw no events")
	}
	start := 0
	for start < len(syncRec.Events) && syncRec.Events[start].Seq < asyncRec.Events[0].Seq {
		start++
	}
	syncTail := syncRec.Events[start:]
	if len(syncTail) != len(asyncRec.Events) {
		t.Fatalf("stream lengths differ: sync %d async %d", len(syncTail), len(asyncRec.Events))
	}
	for i := range syncTail {
		if syncTail[i] != asyncRec.Events[i] {
			t.Fatalf("event %d differs: sync %v async %v", i, syncTail[i], asyncRec.Events[i])
		}
	}
}

// TestLazyDeliveryIdenticalStream repeats the identical-stream check for the
// lazy drain discipline: deferred analysis must not change what the handler
// observes.
func TestLazyDeliveryIdenticalStream(t *testing.T) {
	p := New(1 << 20)
	syncRec := trace.NewRecorder(1024)
	lazyRec := trace.NewRecorder(1024)
	p.Attach(syncRec)
	p.AttachWith(lazyRec, AttachOptions{Async: true, Lazy: true, PipelineDepth: 4})
	drive(p, 200)
	p.End()

	if len(lazyRec.Events) == 0 {
		t.Fatal("lazy recorder saw no events")
	}
	start := 0
	for start < len(syncRec.Events) && syncRec.Events[start].Seq < lazyRec.Events[0].Seq {
		start++
	}
	syncTail := syncRec.Events[start:]
	if len(syncTail) != len(lazyRec.Events) {
		t.Fatalf("stream lengths differ: sync %d lazy %d", len(syncTail), len(lazyRec.Events))
	}
	for i := range syncTail {
		if syncTail[i] != lazyRec.Events[i] {
			t.Fatalf("event %d differs: sync %v lazy %v", i, syncTail[i], lazyRec.Events[i])
		}
	}
}

// TestLazySyncBarrier checks the pool's observation points drain a lazy
// pipeline exactly like an eager one.
func TestLazySyncBarrier(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(1024)
	p.AttachWith(rec, AttachOptions{Async: true, Lazy: true})
	drive(p, 100)
	if n := p.EventCount(); uint64(rec.Len()) != n {
		t.Fatalf("after EventCount barrier: recorder has %d events, pool emitted %d", rec.Len(), n)
	}
	drive(p, 50)
	p.Sync()
	if n := p.EventCount(); uint64(rec.Len()) != n {
		t.Fatalf("after Sync: recorder has %d events, pool emitted %d", rec.Len(), n)
	}
}

// TestAsyncSyncBarrier checks Pool.Sync and EventCount drain the pipeline.
func TestAsyncSyncBarrier(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(1024)
	p.AttachAsync(rec)
	drive(p, 100)
	if n := p.EventCount(); uint64(rec.Len()) != n {
		t.Fatalf("after EventCount barrier: recorder has %d events, pool emitted %d", rec.Len(), n)
	}
	drive(p, 50)
	p.Sync()
	if n := p.EventCount(); uint64(rec.Len()) != n {
		t.Fatalf("after Sync: recorder has %d events, pool emitted %d", rec.Len(), n)
	}
}

// TestAsyncDetachDrains checks Detach by the inner handler stops the
// pipeline only after it delivered everything.
func TestAsyncDetachDrains(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(1024)
	pipe := p.AttachAsync(rec)
	if pipe == nil {
		t.Fatal("AttachAsync returned nil pipeline")
	}
	drive(p, 100)
	emitted := p.EventCount()
	p.Detach(rec)
	if uint64(rec.Len()) != emitted {
		t.Fatalf("after Detach: recorder has %d events, want %d", rec.Len(), emitted)
	}
	// The pool must keep working with the handler gone.
	drive(p, 10)
	if uint64(rec.Len()) == p.EventCount() {
		t.Fatal("detached handler kept receiving events")
	}
}

// TestAsyncDetachByPipeline checks Detach accepts the pipeline itself.
func TestAsyncDetachByPipeline(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(16)
	pipe := p.AttachAsync(rec)
	drive(p, 10)
	p.Detach(pipe)
	if len(p.handlers) != 0 || len(p.conduits) != 0 {
		t.Fatalf("pipeline not fully detached: %d handlers, %d pipelines",
			len(p.handlers), len(p.conduits))
	}
}

// TestAsyncCrashTrapDelivery arms a crash trap and checks the
// asynchronously attached recorder has every event up to and including the
// trapped one when the CrashTrap panic unwinds.
func TestAsyncCrashTrapDelivery(t *testing.T) {
	for _, offset := range []uint64{1, 7, 64, 201} {
		p := New(1 << 20)
		rec := trace.NewRecorder(1024)
		p.AttachAsync(rec)
		trap := p.EventCount() + offset // attach already emitted a Register
		p.SetCrashTrap(trap)
		func() {
			defer func() {
				r := recover()
				ct, ok := r.(CrashTrap)
				if !ok {
					t.Fatalf("trap %d: expected CrashTrap panic, got %v", trap, r)
				}
				if ct.Seq != trap {
					t.Fatalf("trap %d: fired at seq %d", trap, ct.Seq)
				}
				if got := uint64(rec.Len()); got != trap {
					t.Fatalf("trap %d: async recorder saw %d events at unwind", trap, got)
				}
				if last := rec.Events[rec.Len()-1]; last.Seq != trap {
					t.Fatalf("trap %d: last delivered event has seq %d", trap, last.Seq)
				}
			}()
			drive(p, 100)
		}()
	}
}

// TestAttachReplayRegions attaches a late handler with ReplayRegions and
// checks it receives synthetic Register events for the pool and every named
// region, in name order, before the live stream resumes.
func TestAttachReplayRegions(t *testing.T) {
	p := New(1 << 20)
	base := p.Base()
	p.RegisterNamed("zeta", base+256, 16)
	p.RegisterNamed("alpha", base+512, 32)
	p.Ctx().Store64(base, 1)

	rec := trace.NewRecorder(16)
	p.AttachWith(rec, AttachOptions{ReplayRegions: true})

	// Synthetic replays: pool-wide register, then named regions sorted by
	// name, all with Seq 0; then the live attach Register with a real seq.
	want := []struct {
		addr, size uint64
		name       string
	}{
		{base, p.Size(), "?"},
		{base + 512, 32, "alpha"},
		{base + 256, 16, "zeta"},
	}
	if rec.Len() < len(want)+1 {
		t.Fatalf("recorder has %d events, want at least %d", rec.Len(), len(want)+1)
	}
	for i, w := range want {
		ev := rec.Events[i]
		if ev.Kind != trace.KindRegister || ev.Seq != 0 ||
			ev.Addr != w.addr || ev.Size != w.size || ev.Site.String() != w.name {
			t.Fatalf("synthetic register %d = %v, want addr %#x size %d name %s",
				i, ev, w.addr, w.size, w.name)
		}
	}
	live := rec.Events[len(want)]
	if live.Kind != trace.KindRegister || live.Seq == 0 || live.Addr != base {
		t.Fatalf("live attach register = %v", live)
	}
}

// TestAttachReplayRegionsAsync is the swap-in case: a detector-style
// handler attached asynchronously mid-run still sees the full region map.
func TestAttachReplayRegionsAsync(t *testing.T) {
	p := New(1 << 20)
	base := p.Base()
	p.RegisterNamed("root", base, 64)
	p.Ctx().Store64(base, 1)

	rec := trace.NewRecorder(16)
	p.AttachWith(rec, AttachOptions{Async: true, ReplayRegions: true})
	p.Sync()
	if rec.Len() < 3 {
		t.Fatalf("async late attach saw %d events, want >= 3", rec.Len())
	}
	if ev := rec.Events[1]; ev.Site.String() != "root" || ev.Addr != base || ev.Size != 64 {
		t.Fatalf("named region not replayed: %v", ev)
	}
}

// TestAsyncCrashImageBarrier checks Crash drains async handlers before
// snapshotting.
func TestAsyncCrashImageBarrier(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(1024)
	p.AttachAsync(rec)
	drive(p, 100)
	img := p.Crash(CrashDropPending, 0)
	if img == nil {
		t.Fatal("Crash returned nil")
	}
	if uint64(rec.Len()) != p.EventCount() {
		t.Fatalf("crash image taken with %d of %d events delivered", rec.Len(), p.EventCount())
	}
}
