package pmem

import (
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// strandCfg is the shardable detector configuration used throughout these
// tests.
func strandCfg() core.Config { return core.Config{Model: rules.Strand} }

// driveStrands runs n strand sections, each persisting one slot; every
// third leaves its store unflushed so reports carry bugs to compare.
func driveStrands(p *Pool, n int) {
	c := p.Ctx()
	base := p.Base()
	for i := 0; i < n; i++ {
		st := c.StrandBegin()
		a := base + uint64(i%128)*LineSize
		st.Store64(a, uint64(i))
		if i%3 != 0 {
			st.Persist(a, 8)
		}
		st.StrandEnd()
	}
}

// TestShardedAttachReportEquality is the pool-level differential: a
// ShardedDetector attached with AttachOptions.Shards — per-shard consumer
// goroutines, zero-copy fastShard staging and all — must report exactly
// what an inline engine reports for the same program, in both drain
// disciplines.
func TestShardedAttachReportEquality(t *testing.T) {
	program := func(p *Pool) {
		drive(p, 300) // the mixed stream: epochs, strands, registers
		driveStrands(p, 100)
		p.End()
	}

	pi := New(1 << 20)
	inline := core.New(strandCfg())
	pi.Attach(inline)
	program(pi)
	want := inline.Report().Summary()

	for _, lazy := range []bool{false, true} {
		p := New(1 << 20)
		sd := core.NewSharded(strandCfg(), 4)
		pipe := p.AttachWith(sd, AttachOptions{Async: true, Lazy: lazy, Shards: 4})
		if pipe != nil {
			t.Fatalf("lazy=%v: sharded attach returned a single pipeline", lazy)
		}
		if sd.Fallback() {
			t.Fatalf("lazy=%v: unexpected fallback: %s", lazy, sd.FallbackReason())
		}
		if st := p.Stats(); st.ShardedAttaches != 1 || st.ShardedFallbacks != 0 {
			t.Fatalf("lazy=%v: stats %+v, want 1 sharded attach, 0 fallbacks", lazy, st)
		}
		program(p)
		if got := sd.Report().Summary(); got != want {
			t.Fatalf("lazy=%v: sharded live report differs from inline\n--- inline ---\n%s--- sharded ---\n%s",
				lazy, want, got)
		}
	}
}

// TestShardedAttachFallbackCounted checks both fallback shapes — a
// non-shardable configuration and a handler that is no Sharder at all —
// are counted in Stats.ShardedFallbacks and still deliver correctly.
func TestShardedAttachFallbackCounted(t *testing.T) {
	// A strict configuration: the ShardedDetector itself declines.
	pi := New(1 << 20)
	inline := core.New(core.Config{Model: rules.Strict})
	pi.Attach(inline)
	drive(pi, 200)
	pi.End()

	p := New(1 << 20)
	sd := core.NewSharded(core.Config{Model: rules.Strict}, 4)
	if !sd.Fallback() {
		t.Fatal("strict config should fall back")
	}
	p.AttachWith(sd, AttachOptions{Async: true, Shards: 4})
	if st := p.Stats(); st.ShardedAttaches != 1 || st.ShardedFallbacks != 1 {
		t.Fatalf("stats %+v, want the fallback counted", st)
	}
	drive(p, 200)
	p.End()
	if got, want := sd.Report().Summary(), inline.Report().Summary(); got != want {
		t.Fatalf("fallback report differs from inline\n--- inline ---\n%s--- fallback ---\n%s", want, got)
	}

	// A plain recorder is no trace.Sharder: same counter, plain pipeline.
	p2 := New(1 << 20)
	rec := trace.NewRecorder(64)
	p2.AttachWith(rec, AttachOptions{Async: true, Shards: 4})
	if st := p2.Stats(); st.ShardedAttaches != 1 || st.ShardedFallbacks != 1 {
		t.Fatalf("non-sharder stats %+v, want the fallback counted", st)
	}
	drive(p2, 50)
	p2.End()
	if rec.Len() == 0 {
		t.Fatal("fallback pipeline delivered nothing")
	}
}

// recSharder is a test Sharder that records each shard's deliveries.
type recSharder struct {
	recs []*trace.Recorder
}

func newRecSharder(shards int) *recSharder {
	s := &recSharder{recs: make([]*trace.Recorder, shards)}
	for i := range s.recs {
		s.recs[i] = trace.NewRecorder(0)
	}
	return s
}

func (s *recSharder) HandleEvent(ev trace.Event) { s.recs[0].HandleEvent(ev) }
func (s *recSharder) ShardHandlers() []trace.Handler {
	hs := make([]trace.Handler, len(s.recs))
	for i, r := range s.recs {
		hs[i] = r
	}
	return hs
}

// TestShardedCrashTrapDrainsAllShards arms a crash trap under a sharded
// attach and checks the drain-before-trap barrier covers every shard: when
// the CrashTrap panic unwinds, each shard recorder holds its complete
// routed subsequence up to and including the trapped event.
func TestShardedCrashTrapDrainsAllShards(t *testing.T) {
	const shards = 3
	for _, offset := range []uint64{2, 17, 100, 301} {
		p := New(1 << 20)
		s := newRecSharder(shards)
		p.AttachWith(s, AttachOptions{Async: true, Shards: shards})
		trap := p.EventCount() + offset
		p.SetCrashTrap(trap)
		func() {
			defer func() {
				ct, ok := recover().(CrashTrap)
				if !ok || ct.Seq != trap {
					t.Fatalf("trap %d: unexpected unwind value %v", trap, ct)
				}
				// Reconstruct expectations: the attach Register (seq 1) is
				// broadcast to every shard; everything else in this program
				// is strand-local and lands exactly once, on its strand's
				// shard. No joins or End events fire before the trap.
				total, maxSeq := 0, uint64(0)
				for i, rec := range s.recs {
					for j, ev := range rec.Events {
						if ev.Seq > maxSeq {
							maxSeq = ev.Seq
						}
						if j > 0 && ev.Seq <= rec.Events[j-1].Seq {
							t.Fatalf("trap %d shard %d: out of order at %d", trap, i, j)
						}
						if ev.Kind != trace.KindRegister && int(uint32(ev.Strand)%shards) != i {
							t.Fatalf("trap %d: shard %d got strand %d's event %v", trap, i, ev.Strand, ev)
						}
					}
					total += rec.Len()
				}
				want := int(trap) - 1 + shards // trap events, Register counted shards times
				if total != want {
					t.Fatalf("trap %d: shards hold %d events at unwind, want %d", trap, total, want)
				}
				if maxSeq != trap {
					t.Fatalf("trap %d: newest delivered event is %d", trap, maxSeq)
				}
			}()
			driveStrands(p, 200)
		}()
	}
}

// TestShardedDetachClosesConduit checks Detach by the composite handler
// resolves and closes the sharded conduit.
func TestShardedDetachClosesConduit(t *testing.T) {
	p := New(1 << 20)
	sd := core.NewSharded(strandCfg(), 2)
	p.AttachWith(sd, AttachOptions{Async: true, Shards: 2})
	driveStrands(p, 50)
	p.Detach(sd)
	if len(p.handlers) != 0 || len(p.conduits) != 0 {
		t.Fatalf("sharded conduit not fully detached: %d handlers, %d conduits",
			len(p.handlers), len(p.conduits))
	}
	// Detach drained before closing: the detector saw the whole stream.
	if c := sd.Counters(); c.Stores != 50 {
		t.Fatalf("detector saw %d stores before detach, want 50", c.Stores)
	}
	// The pool keeps working with the conduit gone.
	driveStrands(p, 10)
}

// TestShardedFastPathEngaged checks the zero-copy fastShard path is active
// exactly when the sharded conduit is the sole handler and no trap is
// armed.
func TestShardedFastPathEngaged(t *testing.T) {
	p := New(1 << 20)
	sd := core.NewSharded(strandCfg(), 2)
	p.AttachWith(sd, AttachOptions{Async: true, Shards: 2})
	if p.fastShard == nil {
		t.Fatal("fastShard not engaged for a sole sharded conduit")
	}
	p.SetCrashTrap(1 << 40)
	if p.fastShard != nil {
		t.Fatal("fastShard still engaged with a trap armed")
	}
	p.SetCrashTrap(0)
	if p.fastShard == nil {
		t.Fatal("fastShard not re-engaged after the trap cleared")
	}
	p.Attach(trace.NewRecorder(16))
	if p.fastShard != nil {
		t.Fatal("fastShard still engaged with a second handler attached")
	}
}
