// Package pmem simulates byte-addressable persistent memory with an
// instrumented access API.
//
// It is the substitution for the paper's combination of Intel Optane DCPMM
// and Valgrind instrumentation: PM programs written against this package
// perform explicit Store/Flush/Fence operations on a simulated pool, and the
// pool emits one trace.Event per operation to registered handlers — exactly
// the callback stream Valgrind delivers to PMDebugger and Pmemcheck.
//
// Beyond event emission, the pool models crash semantics with a 64-byte
// cache-line state machine: stores land in a volatile image, cache-line
// flushes stage line snapshots, and fences commit staged lines to the
// persistent image. Crash() materializes what a real power failure would
// leave behind, which is what the cross-failure detector and the recovery
// examples exercise.
package pmem

import (
	"fmt"
	"sync"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/trace"
)

// LineSize is the modeled cache-line size in bytes.
const LineSize = intervals.CacheLineSize

// lineState tracks where a cache line's latest bytes live.
type lineState uint8

const (
	lineClean        lineState = iota // volatile == persistent
	lineDirty                         // stores not yet flushed
	linePending                       // flushed, awaiting fence
	lineDirtyPending                  // flushed, then stored to again
)

// DefaultBase is the base address of a pool's simulated address space. A
// non-zero base catches detectors that confuse offsets with addresses.
const DefaultBase = 0x1000_0000

// Pool is a simulated persistent memory pool.
//
// All operations are serialized by an internal mutex, so multi-threaded
// workloads observe a single total order of instrumented instructions — the
// same serialization Valgrind imposes on the paper's detectors.
type Pool struct {
	mu       sync.Mutex
	base     uint64
	volatile []byte // what loads observe
	persist  []byte // what survives a crash
	pending  []byte // staged line snapshots (valid where state==*Pending)
	state    []lineState

	// pendingLines lists line indexes in state linePending or
	// lineDirtyPending so fences commit in O(pending) rather than scanning
	// the whole pool.
	pendingLines []uint64

	handlers trace.MultiHandler
	seq      uint64
	// trapAfter, when non-zero, makes the pool panic with CrashTrap once
	// seq reaches it — the injection point for systematic crash testing
	// (package crashtest).
	trapAfter uint64

	alloc allocator
	names map[string]intervals.Range
	stats Stats

	epochDepth int
	epochID    int32
	strandSeq  int32
}

// New creates a pool of the given size (rounded up to a whole number of
// cache lines) based at DefaultBase.
func New(size uint64) *Pool {
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	p := &Pool{
		base:     DefaultBase,
		volatile: make([]byte, size),
		persist:  make([]byte, size),
		pending:  make([]byte, size),
		state:    make([]lineState, size/LineSize),
		names:    map[string]intervals.Range{},
	}
	p.alloc.init(p.base, size)
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return uint64(len(p.volatile)) }

// Base returns the pool's base address.
func (p *Pool) Base() uint64 { return p.base }

// Range returns the pool's full address range.
func (p *Pool) Range() intervals.Range { return intervals.R(p.base, p.Size()) }

// Attach registers a handler to receive the pool's instruction stream and
// immediately emits a Register event covering the whole pool, mirroring
// Register_pmem embedded in mmap (§6). Handlers attached later miss earlier
// events; attach before running the workload.
func (p *Pool) Attach(h trace.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers = append(p.handlers, h)
	p.emitLocked(trace.Event{
		Kind: trace.KindRegister,
		Addr: p.base,
		Size: p.Size(),
	})
}

// Detach removes a previously attached handler.
func (p *Pool) Detach(h trace.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, cur := range p.handlers {
		if cur == h {
			p.handlers = append(p.handlers[:i], p.handlers[i+1:]...)
			return
		}
	}
}

// CrashTrap is the panic value raised when a crash trap fires; crash-test
// harnesses recover it and take the pool's crash image. Every pool
// operation releases its locks via defer, so the pool remains usable after
// the unwind.
type CrashTrap struct {
	// Seq is the sequence number of the event the crash lands on.
	Seq uint64
}

// SetCrashTrap arranges for the pool to panic with CrashTrap when the n-th
// event is emitted (0 disables). The trapped event is still delivered to
// handlers first: the instruction executed, then the power failed.
func (p *Pool) SetCrashTrap(n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trapAfter = n
}

// emitLocked assigns a sequence number and fans the event out. Callers hold
// p.mu.
func (p *Pool) emitLocked(ev trace.Event) {
	p.seq++
	ev.Seq = p.seq
	p.handlers.HandleEvent(ev)
	if p.trapAfter != 0 && p.seq >= p.trapAfter {
		p.trapAfter = 0
		panic(CrashTrap{Seq: ev.Seq})
	}
}

// EventCount returns the number of events emitted so far.
func (p *Pool) EventCount() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// checkRange panics when [addr, addr+size) escapes the pool: out-of-pool
// accesses are bugs in the workload harness, not in the program under test.
func (p *Pool) checkRange(addr, size uint64) {
	if addr < p.base || addr+size > p.base+p.Size() || addr+size < addr {
		panic(fmt.Sprintf("pmem: access [%#x,+%d) outside pool [%#x,+%d)",
			addr, size, p.base, p.Size()))
	}
}

// off converts a pool address to an image offset.
func (p *Pool) off(addr uint64) uint64 { return addr - p.base }

// storeLocked writes data at addr in the volatile image, updates line
// states, and emits a Store event.
func (p *Pool) storeLocked(addr uint64, data []byte, strand, thread int32, site trace.SiteID) {
	size := uint64(len(data))
	p.checkRange(addr, size)
	p.stats.Stores++
	p.stats.BytesStored += size
	copy(p.volatile[p.off(addr):], data)
	first := p.off(addr) / LineSize
	last := p.off(addr+size-1) / LineSize
	for l := first; l <= last; l++ {
		switch p.state[l] {
		case lineClean:
			p.state[l] = lineDirty
		case linePending:
			p.state[l] = lineDirtyPending
		}
	}
	p.emitLocked(trace.Event{
		Kind: trace.KindStore, Addr: addr, Size: size,
		Strand: strand, Thread: thread, Site: site,
	})
}

// flushLocked stages the cache lines covering [addr, addr+size) and emits a
// Flush event for the line-aligned span. Following the hardware, a CLWB of
// any byte writes back the whole line.
func (p *Pool) flushLocked(addr, size uint64, kind trace.FlushKind, strand, thread int32, site trace.SiteID) {
	p.checkRange(addr, size)
	p.stats.Flushes++
	span := intervals.SpanLines(intervals.R(addr, size))
	first := p.off(span.Addr) / LineSize
	last := p.off(span.End()-1) / LineSize
	for l := first; l <= last; l++ {
		switch p.state[l] {
		case lineDirty:
			copy(p.pending[l*LineSize:(l+1)*LineSize], p.volatile[l*LineSize:(l+1)*LineSize])
			p.state[l] = linePending
			p.pendingLines = append(p.pendingLines, l)
		case lineDirtyPending:
			// Already on the pending list; refresh the staged snapshot.
			copy(p.pending[l*LineSize:(l+1)*LineSize], p.volatile[l*LineSize:(l+1)*LineSize])
			p.state[l] = linePending
		}
	}
	p.emitLocked(trace.Event{
		Kind: trace.KindFlush, Flush: kind,
		Addr: span.Addr, Size: span.Size,
		Strand: strand, Thread: thread, Site: site,
	})
}

// fenceLocked commits all staged lines to the persistent image and emits a
// Fence event.
func (p *Pool) fenceLocked(strand, thread int32) {
	p.stats.Fences++
	for _, l := range p.pendingLines {
		switch p.state[l] {
		case linePending:
			copy(p.persist[l*LineSize:(l+1)*LineSize], p.pending[l*LineSize:(l+1)*LineSize])
			p.state[l] = lineClean
			p.stats.LinesCommitted++
		case lineDirtyPending:
			copy(p.persist[l*LineSize:(l+1)*LineSize], p.pending[l*LineSize:(l+1)*LineSize])
			p.state[l] = lineDirty
			p.stats.LinesCommitted++
		}
	}
	p.pendingLines = p.pendingLines[:0]
	p.emitLocked(trace.Event{Kind: trace.KindFence, Strand: strand, Thread: thread})
}

// RegisterNamed names an address range so bug rules (the order-guarantee
// configuration file, §4.5) can refer to program variables symbolically. The
// name is interned as the Register event's site.
func (p *Pool) RegisterNamed(name string, addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.names[name] = intervals.R(addr, size)
	p.emitLocked(trace.Event{
		Kind: trace.KindRegister, Addr: addr, Size: size,
		Site: trace.RegisterSite(name),
	})
}

// RegisterRegion registers an address range for debugging without naming
// it (the plain Register_pmem call of §6).
func (p *Pool) RegisterRegion(addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.emitLocked(trace.Event{Kind: trace.KindRegister, Addr: addr, Size: size})
}

// UnregisterRegion removes an address range from debugging.
func (p *Pool) UnregisterRegion(addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.emitLocked(trace.Event{Kind: trace.KindUnregister, Addr: addr, Size: size})
}

// NamedRange resolves a name registered with RegisterNamed.
func (p *Pool) NamedRange(name string) (intervals.Range, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.names[name]
	return r, ok
}

// End signals the end of the program under test. Detectors run their final
// checks (no-durability rule) on this event.
func (p *Pool) End() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(trace.Event{Kind: trace.KindEnd})
}

// Load copies size bytes at addr from the volatile image.
func (p *Pool) Load(addr, size uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	out := make([]byte, size)
	copy(out, p.volatile[p.off(addr):])
	return out
}

// LoadInto copies len(dst) bytes at addr into dst without allocating.
func (p *Pool) LoadInto(addr uint64, dst []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, uint64(len(dst)))
	copy(dst, p.volatile[p.off(addr):])
}
