// Package pmem simulates byte-addressable persistent memory with an
// instrumented access API.
//
// It is the substitution for the paper's combination of Intel Optane DCPMM
// and Valgrind instrumentation: PM programs written against this package
// perform explicit Store/Flush/Fence operations on a simulated pool, and the
// pool emits one trace.Event per operation to registered handlers — exactly
// the callback stream Valgrind delivers to PMDebugger and Pmemcheck.
//
// Beyond event emission, the pool models crash semantics with a 64-byte
// cache-line state machine: stores land in a volatile image, cache-line
// flushes stage line snapshots, and fences commit staged lines to the
// persistent image. Crash() materializes what a real power failure would
// leave behind, which is what the cross-failure detector and the recovery
// examples exercise.
package pmem

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/trace"
)

// LineSize is the modeled cache-line size in bytes.
const LineSize = intervals.CacheLineSize

// lineState tracks where a cache line's latest bytes live.
type lineState uint8

const (
	lineClean        lineState = iota // volatile == persistent
	lineDirty                         // stores not yet flushed
	linePending                       // flushed, awaiting fence
	lineDirtyPending                  // flushed, then stored to again
)

// DefaultBase is the base address of a pool's simulated address space. A
// non-zero base catches detectors that confuse offsets with addresses.
const DefaultBase = 0x1000_0000

// Pool is a simulated persistent memory pool.
//
// All operations are serialized by an internal mutex, so multi-threaded
// workloads observe a single total order of instrumented instructions — the
// same serialization Valgrind imposes on the paper's detectors.
type Pool struct {
	mu   sync.Mutex
	base uint64
	size uint64

	// volatile and persist are the two pool images as two-level
	// copy-on-write page tables (see page.go): root directories of
	// refcounted chunkSlots-page chunks, where volatile is what loads
	// observe and persist is what survives a crash. A nil directory entry
	// is an all-zero 2 MiB span and a nil chunk slot an all-zero page.
	// Chunks and pages are both shared between pools (Crash snapshots alias
	// their parent's persistent chunks wholesale) and every write path
	// materializes private chunks/pages on demand.
	volatile []*pageChunk
	persist  []*pageChunk
	// muts holds each page's mutable shadow — cache-line states and
	// flush-staged line snapshots — behind the same two-level directory
	// shape, allocated lazily on the first store or flush touching the page.
	// Fork shares mut chunks and muts copy-on-write (mutFor unshares before
	// writes); Crash images never inherit them.
	muts []*mutChunk
	// npages is the page count covering size: the authoritative table
	// length in pages (len(p.persist) is the directory length in chunks).
	npages int

	// pendingLines lists line indexes in state linePending or
	// lineDirtyPending so fences commit in O(pending) rather than scanning
	// the whole pool.
	pendingLines []uint64
	// dirtyLineCount and pendingLineCount are DirtyLines/PendingLines
	// maintained incrementally at every line-state transition, replacing
	// the full line scan the queries used to run.
	dirtyLineCount   int
	pendingLineCount int

	// groupHash/groupOK and superHash/superOK cache the fingerprint's two
	// middle Merkle levels: one hash per groupPages consecutive persistent
	// pages, rolled up into one hash per superGroups consecutive groups.
	// persistWritable invalidates the covering entry at both levels, so a
	// Fingerprint after k dirtied pages rehashes O(k) pages plus their
	// groups and supers — never the whole directory. Allocated on first
	// Fingerprint; Crash hands the caches down to snapshots (shared pages
	// have identical content).
	groupHash [][32]byte
	groupOK   []bool
	superHash [][32]byte
	superOK   []bool

	// sortedNames and namesHash cache the named-region table's sort order
	// and content hash for Fingerprint and region replay; RegisterNamed
	// invalidates both.
	sortedNames []string
	namesHash   [32]byte
	namesHashOK bool

	// deepCopyCrash disables copy-on-write crash images: Crash materializes
	// every page of the snapshot privately, restoring the O(pool) cost
	// model of the pre-COW engine. Images are byte-identical either way;
	// benchmarks keep this baseline reachable via SetCrashDeepCopy.
	deepCopyCrash bool
	// flatTables disables chunk-granular sharing: Crash copies the page
	// tables page by page (a fresh private chunk per directory slot, every
	// page retained individually), restoring the page-granular engine's
	// O(table length) per-snapshot cost while keeping bytes O(dirty).
	// Images are byte-identical either way; SetFlatTables keeps the
	// baseline reachable for benchmarks and differential tests.
	flatTables bool

	// pageZero/pageShared/pagePrivate are the PageStats composition
	// counters, maintained incrementally (page materialization and
	// copy-before-write in persistWritable, wholesale reclassification in
	// Crash/materializeAllLocked/ReadImage) so the query is O(1) instead of
	// an O(table) scan per image. Their sum is always npages. "Shared" is
	// exact at image birth and under this pool's own operations, and drifts
	// conservatively (over-reporting shared, never private) when a related
	// pool's writes or Release drop the last remote reference to a chunk —
	// scanPageStats is the structural reference tests compare against.
	pageZero    int
	pageShared  int
	pagePrivate int

	handlers trace.MultiHandler
	// conduits tracks the asynchronous delivery conduits — single-consumer
	// trace.Pipelines and fan-out trace.ShardedPipelines — created by
	// asynchronous attaches (they also appear in handlers). The pool
	// drains them at every point where handler state becomes observable:
	// crash traps, crash images, event counts, detach and program end. For
	// a sharded conduit the drain is a full-shard barrier, so
	// drain-before-trap covers every shard.
	conduits []trace.Conduit
	// fastPipe enables the zero-copy emission path: when the only attached
	// handler is a pipeline (the async-benchmark shape), hot-path emitters
	// construct each event directly in the pipeline's staging slab instead
	// of copying it through emitLocked and the handler fan-out. Nil
	// whenever any other handler is attached or a crash trap is armed.
	fastPipe *trace.Pipeline
	// fastShard is the sharded twin of fastPipe: the sole handler is a
	// ShardedPipeline, and the strand-local hot paths stage events
	// directly in the strand's shard slab.
	fastShard *trace.ShardedPipeline
	seq       uint64
	// trapAfter, when non-zero, makes the pool panic with CrashTrap once
	// seq reaches it — the injection point for systematic crash testing
	// (package crashtest).
	trapAfter uint64

	// session is the context holding an open Begin/End lock session, nil
	// otherwise. The crash-trap unwind consults it: a trap that fires inside
	// a session must release the pool mutex itself, because the session's
	// End — the only place the mutex is normally released — is skipped by
	// the panic.
	session *Ctx

	alloc allocator
	names map[string]intervals.Range
	stats Stats

	epochDepth int
	epochID    int32
	strandSeq  int32
}

// New creates a pool of the given size (rounded up to a whole number of
// cache lines) based at DefaultBase.
func New(size uint64) *Pool {
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	np := npagesFor(size)
	nc := nchunksFor(np)
	p := &Pool{
		base:     DefaultBase,
		size:     size,
		volatile: make([]*pageChunk, nc),
		persist:  make([]*pageChunk, nc),
		muts:     make([]*mutChunk, nc),
		npages:   np,
		pageZero: np,
		names:    map[string]intervals.Range{},
	}
	p.alloc.init(p.base, size)
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return p.size }

// Base returns the pool's base address.
func (p *Pool) Base() uint64 { return p.base }

// Range returns the pool's full address range.
func (p *Pool) Range() intervals.Range { return intervals.R(p.base, p.Size()) }

// AttachOptions configures AttachWith.
type AttachOptions struct {
	// Async routes the instruction stream to the handler through a
	// trace.Pipeline: the emitting thread only stages the event into a
	// slab, and the handler runs on the pipeline's consumer goroutine. The
	// pool drains the pipeline before every state observation (crash
	// traps, crash images, EventCount, Detach, program End), so reports
	// are byte-identical to inline delivery. Synchronous delivery remains
	// the default.
	Async bool
	// ReplayRegions replays synthetic Register events — the whole pool,
	// then every named region in name order — to the newly attached
	// handler before it joins the live stream, so a handler attached
	// mid-run (the asynchronous consumer swap-in case) still sees a
	// complete region map. Synthetic events carry Seq 0: they re-describe
	// existing regions rather than extend the instruction stream.
	ReplayRegions bool
	// PipelineDepth overrides the pipeline's ring depth for Async
	// attaches (0 = trace.DefaultPipelineDepth).
	PipelineDepth int
	// Lazy selects the pipeline's deferred drain discipline for Async
	// attaches: slabs accumulate in the ring and analysis runs at sync
	// points (or ring exhaustion) instead of concurrently with emission.
	// Useful when no spare core exists to overlap detection with the
	// workload; reports are identical in both disciplines.
	Lazy bool
	// Shards, with Async, fans delivery out across per-strand detector
	// shards: when the handler implements trace.Sharder and advertises at
	// least 2 shard handlers, the pool builds a trace.ShardedPipeline (one
	// consumer goroutine and one ring per shard, each ring with
	// PipelineDepth slabs). Handlers that cannot shard — including a
	// core.ShardedDetector whose configuration is not core.Shardable —
	// fall back to a single-consumer pipeline, and the fallback is counted
	// in Stats.ShardedFallbacks so it is never silent. Shards <= 1 means
	// no fan-out.
	Shards int
}

// Attach registers a handler to receive the pool's instruction stream and
// immediately emits a Register event covering the whole pool, mirroring
// Register_pmem embedded in mmap (§6). Handlers attached later miss earlier
// events; attach before running the workload, or use
// AttachOptions.ReplayRegions to recover the region map.
func (p *Pool) Attach(h trace.Handler) {
	p.AttachWith(h, AttachOptions{})
}

// AttachAsync registers a handler behind a trace.Pipeline so detection runs
// off the emitting thread, and returns the pipeline. Detach(h) drains and
// stops the pipeline; Sync drains it on demand.
func (p *Pool) AttachAsync(h trace.Handler) *trace.Pipeline {
	return p.AttachWith(h, AttachOptions{Async: true})
}

// AttachWith registers a handler with explicit options and returns the
// created pipeline for asynchronous attaches (nil otherwise).
func (p *Pool) AttachWith(h trace.Handler, opts AttachOptions) *trace.Pipeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	target := h
	var pipe *trace.Pipeline
	if opts.Async {
		popts := trace.PipelineOptions{
			Depth: opts.PipelineDepth,
			Lazy:  opts.Lazy,
		}
		var conduit trace.Conduit
		if opts.Shards > 1 {
			p.stats.ShardedAttaches++
			if sh, ok := h.(trace.Sharder); ok {
				if hs := sh.ShardHandlers(); len(hs) > 1 {
					conduit = trace.NewShardedPipeline(h, hs, popts)
				}
			}
			if conduit == nil {
				p.stats.ShardedFallbacks++
			}
		}
		if conduit == nil {
			pipe = trace.NewPipelineOpts(h, popts)
			conduit = pipe
		}
		p.conduits = append(p.conduits, conduit)
		target = conduit
	}
	if opts.ReplayRegions {
		p.replayRegionsLocked(target)
	}
	p.handlers = append(p.handlers, target)
	p.emitLocked(trace.Event{
		Kind: trace.KindRegister,
		Addr: p.base,
		Size: p.Size(),
	})
	p.refreshFastPathLocked()
	return pipe
}

// refreshFastPathLocked recomputes the zero-copy emission path: it is taken
// only when the sole attached handler is a pipeline and no crash trap is
// armed, so the generic path keeps handling fan-out and trap delivery.
// Callers hold p.mu.
func (p *Pool) refreshFastPathLocked() {
	p.fastPipe, p.fastShard = nil, nil
	if p.trapAfter != 0 || len(p.handlers) != 1 {
		return
	}
	switch t := p.handlers[0].(type) {
	case *trace.Pipeline:
		p.fastPipe = t
	case *trace.ShardedPipeline:
		p.fastShard = t
	}
}

// replayRegionsLocked delivers synthetic Register events for the pool and
// its named regions (sorted by name for determinism) to h only. Callers
// hold p.mu.
func (p *Pool) replayRegionsLocked(h trace.Handler) {
	h.HandleEvent(trace.Event{Kind: trace.KindRegister, Addr: p.base, Size: p.Size()})
	for _, name := range p.sortedNamesLocked() {
		r := p.names[name]
		h.HandleEvent(trace.Event{
			Kind: trace.KindRegister, Addr: r.Addr, Size: r.Size,
			Site: trace.RegisterSite(name),
		})
	}
}

// Detach removes a previously attached handler, identified either directly
// or — for asynchronous attaches — by the handler behind the pipeline (or
// the pipeline itself). Detaching an asynchronous handler drains its
// pipeline and stops the consumer goroutine, so the handler has seen every
// event emitted before the call when Detach returns.
func (p *Pool) Detach(h trace.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	target := h
	for _, c := range p.conduits {
		if c.Handler() == h {
			target = c
			break
		}
	}
	for i, cur := range p.handlers {
		if cur == target {
			p.handlers = append(p.handlers[:i], p.handlers[i+1:]...)
			break
		}
	}
	p.refreshFastPathLocked()
	if conduit, ok := target.(trace.Conduit); ok {
		for i, cur := range p.conduits {
			if cur == conduit {
				p.conduits = append(p.conduits[:i], p.conduits[i+1:]...)
				conduit.Close()
				return
			}
		}
	}
}

// CrashTrap is the panic value raised when a crash trap fires; crash-test
// harnesses recover it and take the pool's crash image. Every pool
// operation releases its locks via defer, so the pool remains usable after
// the unwind.
type CrashTrap struct {
	// Seq is the sequence number of the event the crash lands on.
	Seq uint64
}

// SetCrashTrap arranges for the pool to panic with CrashTrap when the n-th
// event is emitted (0 disables). The trapped event is still delivered to
// handlers first: the instruction executed, then the power failed.
func (p *Pool) SetCrashTrap(n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trapAfter = n
	p.refreshFastPathLocked()
}

// emitLocked assigns a sequence number and fans the event out. Callers hold
// p.mu.
func (p *Pool) emitLocked(ev trace.Event) {
	p.seq++
	ev.Seq = p.seq
	p.handlers.HandleEvent(ev)
	if p.trapAfter != 0 && p.seq >= p.trapAfter {
		p.trapAfter = 0
		// Drain asynchronous handlers before the unwind: the trapped
		// event executed, then the power failed, and every detector must
		// have seen the full stream up to and including it.
		p.syncLocked()
		if s := p.session; s != nil {
			// The trap is unwinding through an open Begin/End lock
			// session. The per-operation deferred unlocks are session
			// no-ops and the session's End is skipped by the panic, so
			// the mutex must be released here or the harness's next pool
			// call (typically Crash) deadlocks. The session context is
			// marked broken: a deferred End on the unwind path becomes a
			// no-op instead of a double unlock.
			p.session = nil
			s.broken = true
			p.mu.Unlock()
		}
		panic(CrashTrap{Seq: ev.Seq})
	}
}

// syncLocked drains every attached conduit so asynchronous handlers have
// consumed all events emitted so far — for sharded conduits this is a
// full-shard barrier, so crash traps and program end wait on every shard.
// Callers hold p.mu; pipeline consumers never re-enter the pool, so
// waiting under the lock cannot deadlock.
func (p *Pool) syncLocked() {
	for _, c := range p.conduits {
		c.Sync()
	}
}

// Sync blocks until every asynchronously attached handler has consumed all
// events emitted before the call. It is a no-op for synchronous handlers.
func (p *Pool) Sync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncLocked()
}

// EventCount returns the number of events emitted so far. Asynchronous
// handlers are drained first, so the count doubles as a delivery barrier:
// after EventCount returns, every detector has seen that many events.
func (p *Pool) EventCount() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncLocked()
	return p.seq
}

// checkRange panics when [addr, addr+size) escapes the pool: out-of-pool
// accesses are bugs in the workload harness, not in the program under test.
func (p *Pool) checkRange(addr, size uint64) {
	if addr < p.base || addr+size > p.base+p.Size() || addr+size < addr {
		panic(fmt.Sprintf("pmem: access [%#x,+%d) outside pool [%#x,+%d)",
			addr, size, p.base, p.Size()))
	}
}

// off converts a pool address to an image offset.
func (p *Pool) off(addr uint64) uint64 { return addr - p.base }

// storeLocked writes data at addr in the volatile image, updates line
// states, and emits a Store event.
func (p *Pool) storeLocked(addr uint64, data []byte, strand, thread int32, site trace.SiteID) {
	size := uint64(len(data))
	p.checkRange(addr, size)
	p.writeVolatile(p.off(addr), data)
	p.storeTailLocked(addr, size, strand, thread, site)
}

// markStoredLines runs the store transition of the line state machine over
// lines [first, last], maintaining the incremental dirty/pending counters.
func (p *Pool) markStoredLines(first, last uint64) {
	for l := first; l <= last; l++ {
		m := p.mutFor(int(l >> lineShift))
		switch li := l & lineMask; m.state[li] {
		case lineClean:
			m.state[li] = lineDirty
			p.dirtyLineCount++
		case linePending:
			m.state[li] = lineDirtyPending
			p.dirtyLineCount++
		}
	}
}

// stageLines runs the flush transition over lines [first, last]: dirty lines
// get their volatile bytes staged for the next fence. It reports whether the
// pending set or any staged content changed — the signal
// persistency-relevant crash-point pruning keys on (a newly staged line
// always counts: even when its bytes equal the persistent image it shifts
// the per-line coin assignment of CrashRandomPending).
func (p *Pool) stageLines(first, last uint64) (changed bool) {
	for l := first; l <= last; l++ {
		pi := int(l >> lineShift)
		m := p.mutAt(pi)
		if m == nil {
			continue // whole page clean
		}
		li := l & lineMask
		lo := li * LineSize
		switch m.state[li] {
		case lineDirty:
			m = p.mutFor(pi) // unshare before staging into the mut
			copy(m.pending[lo:lo+LineSize], p.volatileLine(l))
			m.state[li] = linePending
			p.pendingLines = append(p.pendingLines, l)
			p.dirtyLineCount--
			p.pendingLineCount++
			changed = true
		case lineDirtyPending:
			// Restaging keeps the pending set intact: only a content
			// difference can alter a crash image.
			m = p.mutFor(pi)
			v := p.volatileLine(l)
			if !bytes.Equal(m.pending[lo:lo+LineSize], v) {
				changed = true
				copy(m.pending[lo:lo+LineSize], v)
			}
			m.state[li] = linePending
			p.dirtyLineCount--
		}
	}
	return changed
}

// commitPending runs the fence transition over every staged line, copying
// staged snapshots into the persistent image (copy-before-write on shared
// pages). It reports whether any committed line's bytes differed from the
// persistent image — false for a fence that re-commits identical bytes,
// where dropping and applying coincide for every crash policy and seed.
func (p *Pool) commitPending() (changed bool) {
	for _, l := range p.pendingLines {
		pi := int(l >> lineShift)
		m := p.mutAt(pi)
		li := l & lineMask
		st := m.state[li]
		if st != linePending && st != lineDirtyPending {
			continue
		}
		m = p.mutFor(pi) // the state write below needs private ownership
		lo := li * LineSize
		staged := m.pending[lo : lo+LineSize]
		if !bytes.Equal(p.persistLine(l), staged) {
			changed = true
			pg := p.persistWritable(int(l >> lineShift))
			copy(pg.data[lo:lo+LineSize], staged)
		}
		if st == linePending {
			m.state[li] = lineClean
		} else {
			m.state[li] = lineDirty
		}
		p.pendingLineCount--
		p.stats.LinesCommitted++
	}
	p.pendingLines = p.pendingLines[:0]
	return changed
}

// storeTailLocked is the store bookkeeping shared by the byte-slice and
// scalar store paths: statistics, cache-line dirtying, and the Store event.
// The caller has already written the data into the volatile image.
func (p *Pool) storeTailLocked(addr, size uint64, strand, thread int32, site trace.SiteID) {
	p.stats.Stores++
	p.stats.BytesStored += size
	p.markStoredLines(p.off(addr)/LineSize, p.off(addr+size-1)/LineSize)
	if fp := p.fastPipe; fp != nil {
		// Zero-copy: construct the event in the staging slab itself.
		p.seq++
		*fp.Slot() = trace.Event{
			Seq: p.seq, Kind: trace.KindStore, Addr: addr, Size: size,
			Strand: strand, Thread: thread, Site: site,
		}
		return
	}
	if fs := p.fastShard; fs != nil {
		// Zero-copy into the strand's shard slab: stores are strand-local.
		p.seq++
		*fs.StrandSlot(strand) = trace.Event{
			Seq: p.seq, Kind: trace.KindStore, Addr: addr, Size: size,
			Strand: strand, Thread: thread, Site: site,
		}
		return
	}
	p.emitLocked(trace.Event{
		Kind: trace.KindStore, Addr: addr, Size: size,
		Strand: strand, Thread: thread, Site: site,
	})
}

// flushLocked stages the cache lines covering [addr, addr+size) and emits a
// Flush event for the line-aligned span. Following the hardware, a CLWB of
// any byte writes back the whole line.
func (p *Pool) flushLocked(addr, size uint64, kind trace.FlushKind, strand, thread int32, site trace.SiteID) {
	p.checkRange(addr, size)
	p.stats.Flushes++
	span := intervals.SpanLines(intervals.R(addr, size))
	p.stageLines(p.off(span.Addr)/LineSize, p.off(span.End()-1)/LineSize)
	if fp := p.fastPipe; fp != nil {
		p.seq++
		*fp.Slot() = trace.Event{
			Seq: p.seq, Kind: trace.KindFlush, Flush: kind,
			Addr: span.Addr, Size: span.Size,
			Strand: strand, Thread: thread, Site: site,
		}
		return
	}
	if fs := p.fastShard; fs != nil {
		p.seq++
		*fs.StrandSlot(strand) = trace.Event{
			Seq: p.seq, Kind: trace.KindFlush, Flush: kind,
			Addr: span.Addr, Size: span.Size,
			Strand: strand, Thread: thread, Site: site,
		}
		return
	}
	p.emitLocked(trace.Event{
		Kind: trace.KindFlush, Flush: kind,
		Addr: span.Addr, Size: span.Size,
		Strand: strand, Thread: thread, Site: site,
	})
}

// fenceLocked commits all staged lines to the persistent image and emits a
// Fence event.
func (p *Pool) fenceLocked(strand, thread int32) {
	p.stats.Fences++
	p.commitPending()
	if fp := p.fastPipe; fp != nil {
		p.seq++
		*fp.Slot() = trace.Event{
			Seq: p.seq, Kind: trace.KindFence, Strand: strand, Thread: thread,
		}
		return
	}
	if fs := p.fastShard; fs != nil {
		p.seq++
		*fs.StrandSlot(strand) = trace.Event{
			Seq: p.seq, Kind: trace.KindFence, Strand: strand, Thread: thread,
		}
		return
	}
	p.emitLocked(trace.Event{Kind: trace.KindFence, Strand: strand, Thread: thread})
}

// RegisterNamed names an address range so bug rules (the order-guarantee
// configuration file, §4.5) can refer to program variables symbolically. The
// name is interned as the Register event's site.
func (p *Pool) RegisterNamed(name string, addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.names[name] = intervals.R(addr, size)
	p.invalidateNamesLocked()
	p.emitLocked(trace.Event{
		Kind: trace.KindRegister, Addr: addr, Size: size,
		Site: trace.RegisterSite(name),
	})
}

// RegisterRegion registers an address range for debugging without naming
// it (the plain Register_pmem call of §6).
func (p *Pool) RegisterRegion(addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.emitLocked(trace.Event{Kind: trace.KindRegister, Addr: addr, Size: size})
}

// UnregisterRegion removes an address range from debugging.
func (p *Pool) UnregisterRegion(addr, size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	p.emitLocked(trace.Event{Kind: trace.KindUnregister, Addr: addr, Size: size})
}

// NamedRange resolves a name registered with RegisterNamed.
func (p *Pool) NamedRange(name string) (intervals.Range, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.names[name]
	return r, ok
}

// sortedNamesLocked returns the named-region table's names in sorted order,
// caching the slice between RegisterNamed calls. Callers hold p.mu and must
// not mutate the result.
func (p *Pool) sortedNamesLocked() []string {
	if p.sortedNames == nil {
		names := make([]string, 0, len(p.names))
		for name := range p.names {
			names = append(names, name)
		}
		sort.Strings(names)
		p.sortedNames = names
	}
	return p.sortedNames
}

// invalidateNamesLocked drops the sorted-order and hash caches after a
// named-region change. Callers hold p.mu.
func (p *Pool) invalidateNamesLocked() {
	p.sortedNames = nil
	p.namesHashOK = false
}

// End signals the end of the program under test. Detectors run their final
// checks (no-durability rule) on this event. Asynchronous handlers are
// drained before End returns, so a Report taken afterwards reflects the
// complete stream.
func (p *Pool) End() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(trace.Event{Kind: trace.KindEnd})
	p.syncLocked()
}

// Load copies size bytes at addr from the volatile image.
func (p *Pool) Load(addr, size uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	out := make([]byte, size)
	p.readVolatile(p.off(addr), out)
	return out
}

// LoadInto copies len(dst) bytes at addr into dst without allocating.
func (p *Pool) LoadInto(addr uint64, dst []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, uint64(len(dst)))
	p.readVolatile(p.off(addr), dst)
}
