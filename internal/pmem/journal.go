package pmem

import (
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/trace"
)

// RecordJournal attaches an internal recorder that captures the pool's full
// event stream together with store payloads, returning the journal being
// filled. Unlike Attach it emits no Register event, so the recorded sequence
// numbers are identical to those of an unobserved execution — the property
// that lets record-once crash exploration (internal/crashtest) address
// crash points by event count and land on exactly the boundaries a trapped
// re-execution would.
func (p *Pool) RecordJournal() *trace.Journal {
	p.mu.Lock()
	defer p.mu.Unlock()
	j := &trace.Journal{}
	p.handlers = append(p.handlers, &journalRecorder{p: p, j: j})
	p.refreshFastPathLocked()
	return j
}

// journalRecorder lives in this package so it can snapshot store payloads
// from the volatile image: it runs under the pool mutex, after the store's
// bytes have landed, so the copy is exactly what the instruction wrote.
type journalRecorder struct {
	p *Pool
	j *trace.Journal
}

func (r *journalRecorder) HandleEvent(ev trace.Event) {
	var payload []byte
	if ev.Kind == trace.KindStore && ev.Size > 0 {
		payload = make([]byte, ev.Size)
		r.p.readVolatile(r.p.off(ev.Addr), payload)
	}
	r.j.Append(ev, payload)
}

// ApplyRecorded replays one recorded event against the pool's cache-line
// state machine without emitting anything to handlers: the pool becomes the
// shadow of the recorded execution, advanced event by event, and Crash()
// at any boundary materializes the same image a trapped re-execution would
// have produced at that boundary.
//
// The return values tell the caller whether this event could alter a crash
// image, which is what persistency-relevant crash-point pruning keys on:
//
//   - persistChanged: a fence committed at least one line whose bytes
//     differed from the persistent image. Every crash policy sees this.
//   - pendingChanged: the set or content of flushed-but-unfenced lines
//     changed. Only the CrashApplyPending and CrashRandomPending policies
//     consult pending lines, so a caller exploring under CrashDropPending
//     may ignore it.
//
// Stores never change a crash image (dirty lines are invisible to Crash,
// and a store on a pending line leaves the staged snapshot untouched), and
// program markers carry no machine state, so both results are false for
// them. A fence whose committed lines all equal the persistent image
// reports no change: dropping and applying identical bytes coincide for
// every policy and every seed.
func (p *Pool) ApplyRecorded(ev trace.Event, payload []byte) (persistChanged, pendingChanged bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ev.Seq > p.seq {
		p.seq = ev.Seq
	}
	switch ev.Kind {
	case trace.KindStore:
		p.checkRange(ev.Addr, ev.Size)
		p.writeVolatile(p.off(ev.Addr), payload)
		p.markStoredLines(p.off(ev.Addr)/LineSize, p.off(ev.Addr+ev.Size-1)/LineSize)

	case trace.KindFlush:
		p.checkRange(ev.Addr, ev.Size)
		span := intervals.SpanLines(intervals.R(ev.Addr, ev.Size))
		pendingChanged = p.stageLines(p.off(span.Addr)/LineSize, p.off(span.End()-1)/LineSize)

	case trace.KindFence:
		persistChanged = p.commitPending()
		pendingChanged = persistChanged

	case trace.KindRegister:
		// Named regions survive into crash images (Crash copies p.names);
		// replay them so checkers that resolve symbols keep working.
		if ev.Site != 0 {
			p.checkRange(ev.Addr, ev.Size)
			p.names[trace.SiteName(ev.Site)] = intervals.R(ev.Addr, ev.Size)
			p.invalidateNamesLocked()
		}

	default:
		// Epoch/strand markers, unregister, tx-log adds and the end marker
		// carry no cache-line state.
	}
	return persistChanged, pendingChanged
}
