package pmem

import (
	"bytes"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	p := New(1 << 12)
	c := p.Ctx()
	a := p.Alloc(64)
	c.Store64(a, 0x1234)
	c.Persist(a, 8)
	c.Store64(a+8, 0x5678) // volatile only: must NOT survive the image
	p.RegisterNamed("counter", a, 8)

	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Size() != p.Size() || p2.Base() != p.Base() {
		t.Fatalf("geometry changed: %d@%#x", p2.Size(), p2.Base())
	}
	c2 := p2.Ctx()
	if c2.Load64(a) != 0x1234 {
		t.Fatalf("durable data lost: %#x", c2.Load64(a))
	}
	if c2.Load64(a+8) != 0 {
		t.Fatalf("volatile data leaked into the image: %#x", c2.Load64(a+8))
	}
	if r, ok := p2.NamedRange("counter"); !ok || r.Addr != a {
		t.Fatalf("named range lost: %v %v", r, ok)
	}
}

func TestImageAfterCrashEquivalence(t *testing.T) {
	// Loading a written image is equivalent to opening after a crash with
	// pending lines dropped.
	p := New(1 << 12)
	c := p.Ctx()
	a := p.Base()
	c.Store64(a, 7)
	c.Persist(a, 8)
	c.Store64(a+64, 9)
	c.Flush(a+64, 8) // pending, not fenced

	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	crash := p.Crash(CrashDropPending, 0)
	for _, addr := range []uint64{a, a + 64} {
		if img.Ctx().Load64(addr) != crash.Ctx().Load64(addr) {
			t.Fatalf("image and crash disagree at %#x: %d vs %d",
				addr, img.Ctx().Load64(addr), crash.Ctx().Load64(addr))
		}
	}
}

func TestImageBadInput(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	p := New(1 << 12)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-100]
	if _, err := ReadImage(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated image accepted")
	}
}
