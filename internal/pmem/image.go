package pmem

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"pmdebugger/internal/intervals"
)

// Pool image serialization: the persistent image can be written to and read
// back from a file, standing in for the DAX-mounted pool file of a real PM
// deployment (the artifact's /mnt/pmem pools). Only the *persistent* image
// is saved — exactly what would survive on media — so loading an image is
// equivalent to opening the pool after a clean shutdown or crash.

var imageMagic = [8]byte{'P', 'M', 'I', 'M', 'A', 'G', 'E', '1'}

// WriteImage serializes the pool's persistent image.
func (p *Pool) WriteImage(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Like Crash: the snapshot must not outrun asynchronous detectors.
	p.syncLocked()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return fmt.Errorf("pmem: write image header: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], p.base)
	binary.LittleEndian.PutUint64(hdr[8:], p.Size())
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("pmem: write image header: %w", err)
	}
	// Named ranges survive restart (they model program symbols).
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(p.names)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	for name, r := range p.names {
		var rec [20]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(len(name)))
		binary.LittleEndian.PutUint64(rec[4:], r.Addr)
		binary.LittleEndian.PutUint64(rec[12:], r.Size)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	// The persistent image is written page by page (zero pages from the
	// shared zero buffer), keeping the flat on-disk format of a DAX pool
	// file while never materializing absent pages.
	remaining := p.size
	for pi := 0; pi < p.npages; pi++ {
		chunk := uint64(PageSize)
		if chunk > remaining {
			chunk = remaining
		}
		src := zeroPage[:chunk]
		if pg := pageAt(p.persist, pi); pg != nil {
			src = pg.data[:chunk]
		}
		if _, err := bw.Write(src); err != nil {
			return fmt.Errorf("pmem: write image data: %w", err)
		}
		remaining -= chunk
	}
	return bw.Flush()
}

// ReadImage reconstructs a pool from a serialized persistent image. The
// new pool starts clean (volatile == persistent, no handlers, full
// allocator) — the state of a freshly opened pool file.
func ReadImage(r io.Reader) (*Pool, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("pmem: read image header: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("pmem: bad image magic %q", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pmem: read image header: %w", err)
	}
	base := binary.LittleEndian.Uint64(hdr[0:])
	size := binary.LittleEndian.Uint64(hdr[8:])
	const maxImage = 1 << 32
	if size == 0 || size > maxImage || size%LineSize != 0 {
		return nil, fmt.Errorf("pmem: implausible image size %d", size)
	}
	p := New(size)
	p.base = base
	p.alloc.init(base, size)

	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	for i := uint32(0); i < n; i++ {
		var rec [20]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		nameLen := binary.LittleEndian.Uint32(rec[0:])
		if nameLen > 4096 {
			return nil, fmt.Errorf("pmem: implausible name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		p.names[string(nameBuf)] = intervals.R(
			binary.LittleEndian.Uint64(rec[4:]),
			binary.LittleEndian.Uint64(rec[12:]),
		)
	}
	// Read the flat image page by page, leaving all-zero pages (and whole
	// all-zero chunks) absent so a sparse image stays sparse in memory; the
	// volatile directory then aliases the persistent chunks, as after a
	// crash.
	var buf [PageSize]byte
	remaining := size
	for pi := 0; pi < p.npages; pi++ {
		chunk := uint64(PageSize)
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := io.ReadFull(br, buf[:chunk]); err != nil {
			return nil, fmt.Errorf("pmem: read image data: %w", err)
		}
		remaining -= chunk
		if bytes.Equal(buf[:chunk], zeroPage[:chunk]) {
			continue
		}
		pg := newPage()
		copy(pg.data[:], buf[:chunk])
		writableChunk(p.persist, pi>>chunkShift).pages[pi&chunkMask] = pg
		p.pageZero--
		p.pagePrivate++
	}
	copy(p.volatile, p.persist)
	for _, ch := range p.volatile {
		if ch != nil {
			ch.retain()
		}
	}
	// The chunk aliasing just re-shared every materialized page.
	p.pageShared += p.pagePrivate
	p.pagePrivate = 0
	return p, nil
}
