package pmem

import (
	"sync"
	"testing"

	"pmdebugger/internal/trace"
)

// driveSession emits the same program as drive but wraps each round in an
// op-scoped lock session, the way an application with its own outer lock
// uses Begin/End.
func driveSession(p *Pool, rounds int) {
	c := p.Ctx()
	base := p.Base()
	p.RegisterNamed("counter", base, 8)
	for r := 0; r < rounds; r++ {
		c.Begin()
		a := base + uint64(r%64)*LineSize
		c.Store64(a, uint64(r))
		c.Store64(a+8, uint64(r)*3)
		c.Flush(a, 16)
		if r%4 == 3 {
			c.Fence()
		}
		if r%16 == 5 {
			c.EpochBegin()
			c.Store64(base+4096, uint64(r))
			c.Persist(base+4096, 8)
			c.EpochEnd()
		}
		if r%16 == 9 {
			s := c.StrandBegin()
			s.Store64(base+8192, uint64(r))
			s.Persist(base+8192, 8)
			s.StrandEnd()
		}
		if c.Load64(a) != uint64(r) {
			panic("session load mismatch")
		}
		c.End()
	}
	c.Begin()
	c.Fence()
	c.End()
}

// TestSessionIdenticalStream checks an op-scoped lock session emits exactly
// the event stream the per-instruction locking discipline emits.
func TestSessionIdenticalStream(t *testing.T) {
	plain := New(1 << 20)
	plainRec := trace.NewRecorder(1024)
	plain.Attach(plainRec)
	drive(plain, 200)
	plain.End()

	sess := New(1 << 20)
	sessRec := trace.NewRecorder(1024)
	sess.Attach(sessRec)
	driveSession(sess, 200)
	sess.End()

	if len(plainRec.Events) != len(sessRec.Events) {
		t.Fatalf("stream lengths differ: plain %d session %d",
			len(plainRec.Events), len(sessRec.Events))
	}
	for i := range plainRec.Events {
		if plainRec.Events[i] != sessRec.Events[i] {
			t.Fatalf("event %d differs: plain %v session %v",
				i, plainRec.Events[i], sessRec.Events[i])
		}
	}
}

// TestSessionAllocAndLoads checks the session-aware allocator wrappers and
// loads work inside an open session (the pool-level entry points would
// self-deadlock here).
func TestSessionAllocAndLoads(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	c.Begin()
	addr, ok := c.TryAlloc(256)
	if !ok {
		t.Fatal("TryAlloc failed inside session")
	}
	c.Store64(addr, 0xdeadbeef)
	if got := c.Load64(addr); got != 0xdeadbeef {
		t.Fatalf("Load64 inside session = %#x", got)
	}
	b := c.LoadBytes(addr, 8)
	if b[0] != 0xef {
		t.Fatalf("LoadBytes inside session = %x", b)
	}
	c.Free(addr, 256)
	c.End()
}

// TestSessionExcludesOtherThreads checks Begin really holds the pool mutex:
// another context's operation cannot interleave into an open session.
func TestSessionExcludesOtherThreads(t *testing.T) {
	p := New(1 << 20)
	rec := trace.NewRecorder(64)
	p.Attach(rec)
	base := p.Base()

	c := p.ThreadCtx(1)
	c.Begin()
	c.Store64(base, 1)

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		p.ThreadCtx(2).Store64(base+64, 2) // must block until End
	}()
	<-started
	c.Store64(base+8, 3)
	c.End()
	wg.Wait()

	// Thread 2's store must come after both session stores.
	var order []int32
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindStore {
			order = append(order, ev.Thread)
		}
	}
	if len(order) != 3 || order[2] != 2 {
		t.Fatalf("store thread order %v: session did not exclude thread 2", order)
	}
}

// TestSessionMisuse checks the Begin/End guards.
func TestSessionMisuse(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("End without Begin", func() { c.End() })
	c.Begin()
	mustPanic("nested Begin", func() { c.Begin() })
	c.End()
}
