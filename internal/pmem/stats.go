package pmem

// Stats are cumulative pool-level statistics: what the simulated hardware
// observed, independent of any detector. They give workload runs a quick
// sanity summary (pmdebug prints them) and tests a ground truth for event
// volumes.
type Stats struct {
	// Stores, Flushes, Fences count the three fundamental operations.
	Stores  uint64
	Flushes uint64
	Fences  uint64
	// BytesStored is the total store payload volume.
	BytesStored uint64
	// LinesCommitted counts cache-line commits to the persistence domain
	// (lines made durable by fences).
	LinesCommitted uint64

	// ShardedAttaches counts asynchronous attaches that requested sharded
	// delivery (AttachOptions.Shards > 1); ShardedFallbacks counts how
	// many of those fell back to a single-consumer pipeline because the
	// handler could not shard (no trace.Sharder, or a configuration that
	// is not core.Shardable). A benchmark row that believes it measured
	// sharded delivery can check ShardedFallbacks == 0.
	ShardedAttaches  uint64
	ShardedFallbacks uint64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// note: the counters are updated inside the store/flush/fence paths under
// p.mu; see pool.go.
