package pmem

import (
	"testing"

	"pmdebugger/internal/trace"
)

// TestRecordJournalSeqParity checks RecordJournal is invisible to sequence
// numbering: the journal of an observed run carries exactly the sequence
// numbers an unobserved run emits, densely from 1. This is what lets the
// record-once explorer address crash points by plain event count.
func TestRecordJournalSeqParity(t *testing.T) {
	plain := New(1 << 20)
	drive(plain, 50)
	plain.End()
	want := plain.EventCount()

	rec := New(1 << 20)
	j := rec.RecordJournal()
	drive(rec, 50)
	rec.End()

	if uint64(j.Len()) != want {
		t.Fatalf("journal recorded %d events, unobserved run emits %d", j.Len(), want)
	}
	for i, ev := range j.Events {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("event %d has seq %d: recording must not shift numbering", i, ev.Seq)
		}
	}
	if j.Stores() == 0 {
		t.Fatal("no store payloads recorded")
	}
	for i, ev := range j.Events {
		if ev.Kind == trace.KindStore && uint64(len(j.Payload(i))) != ev.Size {
			t.Fatalf("store %d: payload %d bytes, event size %d", i, len(j.Payload(i)), ev.Size)
		}
	}
}

// TestApplyRecordedReplaysTrappedState replays a recorded journal on a
// shadow pool and checks that, at every event boundary and under every
// crash policy, the shadow's crash image is byte-identical to the image a
// trapped re-execution produces at the same boundary — the core soundness
// property of record-once exploration.
func TestApplyRecordedReplaysTrappedState(t *testing.T) {
	const rounds = 30
	full := New(1 << 20)
	j := full.RecordJournal()
	drive(full, rounds)
	full.End()
	total := j.Len()

	policies := []struct {
		policy CrashPolicy
		seed   int64
	}{
		{CrashDropPending, 0},
		{CrashApplyPending, 0},
		{CrashRandomPending, 7},
		{CrashRandomPending, 42},
	}

	shadow := New(1 << 20)
	next := 0
	for point := 1; point <= total; point += 5 {
		for next < point {
			shadow.ApplyRecorded(j.Events[next], j.Payload(next))
			next++
		}

		trapped := New(1 << 20)
		trapped.SetCrashTrap(uint64(point))
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashTrap); !ok {
						panic(r)
					}
				}
			}()
			drive(trapped, rounds)
			trapped.End()
		}()

		for _, pc := range policies {
			got := shadow.Crash(pc.policy, pc.seed).Fingerprint()
			want := trapped.Crash(pc.policy, pc.seed).Fingerprint()
			if got != want {
				t.Fatalf("boundary %d policy %v seed %d: replayed image differs from trapped image",
					point, pc.policy, pc.seed)
			}
		}
	}
}

// TestApplyRecordedChangeSignals spot-checks the pruning signals on a
// hand-built event sequence: stores report no change, a first flush reports
// a pending change, an identical restage reports none, and a fence reports
// a persist change only when committed bytes differ.
func TestApplyRecordedChangeSignals(t *testing.T) {
	src := New(1 << 20)
	j := src.RecordJournal()
	c := src.Ctx()
	base := src.Base()
	c.Store64(base, 1) // 0: store
	c.Flush(base, 8)   // 1: first flush: stages the line
	c.Flush(base, 8)   // 2: restage with identical bytes
	c.Fence()          // 3: commits new bytes
	c.Store64(base, 1) // 4: rewrite same value
	c.Flush(base, 8)   // 5: stage again (same content as persist)
	c.Fence()          // 6: commits identical bytes
	src.End()          // 7: end marker

	shadow := New(1 << 20)
	type want struct{ persist, pending bool }
	wants := []want{
		{false, false}, // store
		{false, true},  // new staged line always shifts the pending set
		{false, false}, // identical restage
		{true, true},   // fence committing new bytes
		{false, false}, // store
		{false, true},  // new staged line (content equals persist, still counts)
		{false, false}, // fence committing identical bytes
		{false, false}, // end marker
	}
	if j.Len() != len(wants) {
		t.Fatalf("recorded %d events, expected %d", j.Len(), len(wants))
	}
	for i := range wants {
		persist, pending := shadow.ApplyRecorded(j.Events[i], j.Payload(i))
		if persist != wants[i].persist || pending != wants[i].pending {
			t.Errorf("event %d (%v): changed = (%v,%v), want (%v,%v)",
				i, j.Events[i].Kind, persist, pending, wants[i].persist, wants[i].pending)
		}
	}
}
