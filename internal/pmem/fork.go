package pmem

import "pmdebugger/internal/intervals"

// Fork returns a full-volatile-state copy-on-write clone of the pool.
//
// Where Crash materializes what a power failure leaves behind — persistent
// bytes only, all lines clean, allocator reset — Fork clones the *running*
// machine: both images, the cache-line state machine, the staged pending
// set, the allocator, the named-region table, and the warm Merkle caches
// all carry over, so the fork can keep applying journal events (or live
// operations) exactly as the parent would have. The segment-parallel crash
// explorer (internal/crashtest) forks one replayer per segment this way and
// lets each fork replay only its own slice of the journal.
//
// The clone is O(dirty) like Crash: every level of the two page tables and
// the mut table is shared by retaining the root directories' chunks (one
// pointer copy plus one refcount bump per 2 MiB of address space), and
// either side's subsequent writes duplicate shared chunks, pages, and muts
// before modifying them (writableChunk / volatileWritable / persistWritable
// / mutFor). Concurrent forks of one parent are safe: refcounts are atomic
// and shared objects are immutable while shared.
//
// Handlers, conduits, and crash traps do not carry over — a fork starts
// silent, like a pool driven purely by ApplyRecorded. Asynchronous handlers
// on the parent are drained first so the fork reflects every event emitted
// before the call.
func (p *Pool) Fork() *Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncLocked()

	nc := len(p.persist)
	tables := newTables(nc)
	n := &Pool{
		base:     p.base,
		size:     p.size,
		volatile: tables.volatile,
		persist:  tables.persist,
		muts:     tables.muts,
		npages:   p.npages,
		names:    make(map[string]intervals.Range, len(p.names)),
	}
	copy(n.persist, p.persist)
	for _, ch := range n.persist {
		if ch != nil {
			ch.retain()
		}
	}
	copy(n.volatile, p.volatile)
	for _, ch := range n.volatile {
		if ch != nil {
			ch.retain()
		}
	}
	copy(n.muts, p.muts)
	for _, mc := range n.muts {
		if mc != nil {
			mc.retain()
		}
	}

	// Line-state machine: the pending set and the incremental counters are
	// plain values; the per-line states themselves live in the shared muts.
	n.pendingLines = append([]uint64(nil), p.pendingLines...)
	n.dirtyLineCount = p.dirtyLineCount
	n.pendingLineCount = p.pendingLineCount

	// PageStats handoff, exactly as in Crash: sharing the persistent table
	// turns every materialized page — parent's and fork's alike — into a
	// shared page; zero spans stay zero on both sides.
	n.pageZero = p.pageZero
	n.pageShared = p.pageShared + p.pagePrivate
	p.pageShared, p.pagePrivate = n.pageShared, 0

	// Warm Merkle caches ride along: shared pages have identical content,
	// and persistWritable invalidates the covering entries on either side's
	// later commits.
	if p.groupOK != nil {
		n.groupHash = append([][32]byte(nil), p.groupHash...)
		n.groupOK = append([]bool(nil), p.groupOK...)
	}
	if p.superOK != nil {
		n.superHash = append([][32]byte(nil), p.superHash...)
		n.superOK = append([]bool(nil), p.superOK...)
	}

	for name, r := range p.names {
		n.names[name] = r
	}
	n.sortedNames = p.sortedNames
	n.namesHash, n.namesHashOK = p.namesHash, p.namesHashOK

	n.alloc.cloneFrom(&p.alloc)
	n.stats = p.stats

	// Replay position and modeled program state: a fork resumes the event
	// stream where the parent stood.
	n.seq = p.seq
	n.epochDepth = p.epochDepth
	n.epochID = p.epochID
	n.strandSeq = p.strandSeq

	// Engine knobs are inherited (unlike Crash): a fork exists to produce
	// the same images the parent would have produced.
	n.deepCopyCrash = p.deepCopyCrash
	n.flatTables = p.flatTables
	return n
}
