package pmem

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync/atomic"

	"pmdebugger/internal/intervals"
)

// CrashPolicy decides the fate of cache lines that were flushed but not yet
// fenced when the crash happens. On real hardware those lines may or may not
// have reached the persistence domain; the policy picks an outcome so tests
// can explore the space deterministically.
type CrashPolicy uint8

const (
	// CrashDropPending models the adversarial outcome for durability: no
	// un-fenced writeback reached PM.
	CrashDropPending CrashPolicy = iota
	// CrashApplyPending models the other extreme: every issued writeback
	// reached PM even without the fence.
	CrashApplyPending
	// CrashRandomPending flips a seeded coin per pending line, exploring
	// intermediate outcomes.
	CrashRandomPending
)

// SetCrashDeepCopy selects the deep-copy crash-image baseline: Crash
// materializes every page of the snapshot privately (including zero pages),
// restoring the O(pool) cost model of the pre-COW engine, and snapshots
// carry no inherited hash caches, so their fingerprints rehash the whole
// image. Images are byte-identical to copy-on-write snapshots; the knob
// exists so benchmarks and differential tests keep the baseline reachable.
func (p *Pool) SetCrashDeepCopy(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deepCopyCrash = v
}

// Crash simulates a power failure and returns a new pool whose contents are
// the persistent image (plus pending lines according to the policy, seeded
// by seed for CrashRandomPending). The new pool starts with no handlers, all
// lines clean, the allocator reset to full — recovery code is expected to
// rebuild heap metadata from persistent structures, as on real PM.
//
// The snapshot is copy-on-write: its page tables alias the parent's
// persistent pages, and only pages the pending-line policy touches are
// duplicated up front, so materializing an image costs O(dirty pages), not
// O(pool). Parent and snapshot remain independently usable — either side's
// subsequent writes duplicate shared pages before modifying them.
func (p *Pool) Crash(policy CrashPolicy, seed int64) *Pool {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Drain asynchronous handlers first: a crash image must never be
	// observed by a detector that is still behind on the stream that
	// produced it.
	p.syncLocked()

	np := len(p.persist)
	tables := newTables(np)
	n := &Pool{
		base:     p.base,
		size:     p.size,
		volatile: tables.volatile,
		persist:  tables.persist,
		muts:     tables.muts,
		names:    make(map[string]intervals.Range, len(p.names)),
	}
	copy(n.persist, p.persist)
	for _, pg := range n.persist {
		if pg != nil {
			pg.retain()
		}
	}
	// Hand the fingerprint group caches down: shared pages have identical
	// content, and the pending-line application below invalidates the
	// groups it touches through persistWritable.
	if p.groupOK != nil {
		n.groupHash = append([][32]byte(nil), p.groupHash...)
		n.groupOK = append([]bool(nil), p.groupOK...)
	}

	if policy != CrashDropPending && p.pendingLineCount > 0 {
		// Apply staged lines in ascending line order so the per-line coin
		// sequence of CrashRandomPending is a pure function of (state,
		// policy, seed), independent of flush order.
		lines := make([]uint64, 0, len(p.pendingLines))
		for _, l := range p.pendingLines {
			if st := p.muts[l>>lineShift].state[l&lineMask]; st == linePending || st == lineDirtyPending {
				lines = append(lines, l)
			}
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		var rng *rand.Rand
		if policy == CrashRandomPending {
			rng = rand.New(rand.NewSource(seed))
		}
		for _, l := range lines {
			apply := true
			if rng != nil {
				apply = rng.Intn(2) == 0
			}
			if !apply {
				continue
			}
			lo := (l & lineMask) * LineSize
			staged := p.muts[l>>lineShift].pending[lo : lo+LineSize]
			if bytes.Equal(n.persistLine(l), staged) {
				continue // identical bytes: no page needs duplicating
			}
			pg := n.persistWritable(int(l >> lineShift))
			copy(pg.data[lo:lo+LineSize], staged)
		}
	}

	// The snapshot's volatile image aliases its persistent image page for
	// page — the state of a freshly opened pool — and unshares on demand
	// when recovery code stores to it.
	copy(n.volatile, n.persist)
	for _, pg := range n.volatile {
		if pg != nil {
			pg.retain()
		}
	}

	// Preserve the named-variable registry: names model program symbols,
	// which survive restart. The caches ride along.
	for name, r := range p.names {
		n.names[name] = r
	}
	n.sortedNames = p.sortedNames
	n.namesHash, n.namesHashOK = p.namesHash, p.namesHashOK

	n.alloc.init(n.base, n.size)

	if p.deepCopyCrash {
		n.materializeAllLocked()
	}
	return n
}

// materializeAllLocked turns every page of both images into a private copy
// (zero pages included) and drops the inherited hash caches — the deep-copy
// baseline Crash produces under SetCrashDeepCopy. Callers hold the pool's
// mutex or exclusive ownership.
func (p *Pool) materializeAllLocked() {
	for _, table := range [][]*page{p.persist, p.volatile} {
		for pi, old := range table {
			var fresh *page
			if old != nil {
				fresh = newPageCopy(old)
				old.release()
			} else {
				fresh = newPage()
			}
			table[pi] = fresh
		}
	}
	p.groupHash, p.groupOK = nil, nil
}

// Release returns the pool's pages, per-page mutable state and page tables
// to the shared recycling pools. It is the explorer's fast-path disposal for
// checked crash images: shared pages flow back to the parent for reuse
// instead of waiting for the garbage collector. The pool must not be used
// afterwards (its tables are gone; accesses panic).
func (p *Pool) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.persist == nil {
		return // already released
	}
	for i, pg := range p.volatile {
		if pg != nil {
			pg.release()
			p.volatile[i] = nil
		}
	}
	for i, pg := range p.persist {
		if pg != nil {
			pg.release()
			p.persist[i] = nil
		}
	}
	for i, m := range p.muts {
		if m != nil {
			putPageMut(m)
			p.muts[i] = nil
		}
	}
	tableSetPool.Put(&tableSet{p.volatile, p.persist, p.muts})
	p.volatile, p.persist, p.muts = nil, nil, nil
	p.pendingLines = nil
	p.dirtyLineCount, p.pendingLineCount = 0, 0
	p.groupHash, p.groupOK = nil, nil
}

// PageStats reports the persistent image's page-table composition: zero
// pages (never written), pages shared with another pool, and private pages.
// It is the observability hook for copy-on-write effectiveness — a healthy
// crash image is almost entirely zero and shared pages.
func (p *Pool) PageStats() (zero, shared, private int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pg := range p.persist {
		switch {
		case pg == nil:
			zero++
		case atomic.LoadInt32(&pg.refs) > 1:
			shared++
		default:
			private++
		}
	}
	return zero, shared, private
}

// Fingerprint returns a content hash of the pool's persistent image and its
// named-region table. Two pools with equal fingerprints recover identically
// under any deterministic checker, which is what content-hash image
// deduplication (internal/crashtest) relies on; the names are included
// because checkers may resolve symbols through NamedRange.
//
// The hash is a three-level Merkle rollup — per-page hashes cached on the
// (shared) pages themselves, cached group hashes over groupPages-page spans,
// and a top hash over the group level — so a call after k dirtied pages
// rehashes O(k) pages rather than the whole pool.
func (p *Pool) Fingerprint() [32]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], p.base)
	binary.LittleEndian.PutUint64(hdr[8:], p.size)
	h.Write(hdr[:])

	ngroups := (len(p.persist) + groupPages - 1) / groupPages
	if p.groupOK == nil {
		p.groupHash = make([][32]byte, ngroups)
		p.groupOK = make([]bool, ngroups)
	}
	for g := 0; g < ngroups; g++ {
		if !p.groupOK[g] {
			gh := sha256.New()
			end := (g + 1) * groupPages
			if end > len(p.persist) {
				end = len(p.persist)
			}
			for pi := g * groupPages; pi < end; pi++ {
				var ph [32]byte
				if pg := p.persist[pi]; pg != nil {
					ph = pg.contentHash()
				} else {
					ph = zeroPageHash()
				}
				gh.Write(ph[:])
			}
			gh.Sum(p.groupHash[g][:0])
			p.groupOK[g] = true
		}
		h.Write(p.groupHash[g][:])
	}

	nh := p.namesDigestLocked()
	h.Write(nh[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// namesDigestLocked returns the cached hash of the named-region table,
// recomputing it after a RegisterNamed invalidation. Callers hold p.mu.
func (p *Pool) namesDigestLocked() [32]byte {
	if !p.namesHashOK {
		h := sha256.New()
		for _, name := range p.sortedNamesLocked() {
			r := p.names[name]
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[0:], r.Addr)
			binary.LittleEndian.PutUint64(rec[8:], r.Size)
			h.Write([]byte(name))
			h.Write(rec[:])
		}
		h.Sum(p.namesHash[:0])
		p.namesHashOK = true
	}
	return p.namesHash
}

// PersistedEquals reports whether the persistent image bytes at addr equal
// want. It lets tests assert durability outcomes without crashing.
func (p *Pool) PersistedEquals(addr uint64, want []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, uint64(len(want)))
	off := p.off(addr)
	for len(want) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		chunk := uint64(len(want))
		if PageSize-po < chunk {
			chunk = PageSize - po
		}
		var got []byte
		if pg := p.persist[pi]; pg != nil {
			got = pg.data[po : po+chunk]
		} else {
			got = zeroPage[po : po+chunk]
		}
		if !bytes.Equal(got, want[:chunk]) {
			return false
		}
		want = want[chunk:]
		off += chunk
	}
	return true
}

// PersistedBytes copies size bytes of the persistent image at addr.
func (p *Pool) PersistedBytes(addr, size uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	out := make([]byte, size)
	p.readPersist(p.off(addr), out)
	return out
}

// DirtyLines returns the number of lines with unflushed stores. The count is
// maintained incrementally at every line-state transition, so the query is
// O(1) regardless of pool size.
func (p *Pool) DirtyLines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirtyLineCount
}

// PendingLines returns the number of lines staged by a flush but not yet
// committed by a fence, maintained incrementally like DirtyLines.
func (p *Pool) PendingLines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pendingLineCount
}

// scanLineCounts recomputes the dirty/pending line counts by a full scan of
// the line state machine — the reference the incremental counters are
// asserted against in tests.
func (p *Pool) scanLineCounts() (dirty, pending int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.muts {
		if m == nil {
			continue
		}
		for _, st := range m.state {
			switch st {
			case lineDirty:
				dirty++
			case linePending:
				pending++
			case lineDirtyPending:
				dirty++
				pending++
			}
		}
	}
	return dirty, pending
}
