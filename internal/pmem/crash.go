package pmem

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pmdebugger/internal/intervals"
)

// CrashPolicy decides the fate of cache lines that were flushed but not yet
// fenced when the crash happens. On real hardware those lines may or may not
// have reached the persistence domain; the policy picks an outcome so tests
// can explore the space deterministically.
type CrashPolicy uint8

const (
	// CrashDropPending models the adversarial outcome for durability: no
	// un-fenced writeback reached PM.
	CrashDropPending CrashPolicy = iota
	// CrashApplyPending models the other extreme: every issued writeback
	// reached PM even without the fence.
	CrashApplyPending
	// CrashRandomPending flips a seeded coin per pending line, exploring
	// intermediate outcomes.
	CrashRandomPending
)

// SetCrashDeepCopy selects the deep-copy crash-image baseline: Crash
// materializes every page of the snapshot privately (including zero pages),
// restoring the O(pool) cost model of the pre-COW engine, and snapshots
// carry no inherited hash caches, so their fingerprints rehash the whole
// image. Images are byte-identical to copy-on-write snapshots; the knob
// exists so benchmarks and differential tests keep the baseline reachable.
func (p *Pool) SetCrashDeepCopy(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deepCopyCrash = v
}

// SetFlatTables selects the flat-table snapshot engine: Crash copies the
// page tables at page granularity — a fresh private chunk per directory
// slot with every page retained individually — instead of sharing whole
// chunks, restoring the O(table length) per-snapshot pointer cost of the
// page-granular engine that predates chunked tables (bytes stay O(dirty)).
// Images are byte-identical to chunk-shared snapshots; the knob exists so
// benchmarks and differential tests keep the baseline reachable, mirroring
// SetCrashDeepCopy. Like deep copy, the flag is not inherited by snapshots.
func (p *Pool) SetFlatTables(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flatTables = v
}

// Crash simulates a power failure and returns a new pool whose contents are
// the persistent image (plus pending lines according to the policy, seeded
// by seed for CrashRandomPending). The new pool starts with no handlers, all
// lines clean, the allocator reset to full — recovery code is expected to
// rebuild heap metadata from persistent structures, as on real PM.
//
// The snapshot is copy-on-write at both table levels: its root directory
// aliases the parent's persistent chunks (one pointer copy and one refcount
// bump per 2 MiB of address space), and only chunks the pending-line policy
// touches are duplicated up front, so materializing an image costs O(dirty)
// in bytes *and* table slots — the directory copy is O(pool/2MiB),
// effectively constant. Parent and snapshot remain independently usable —
// either side's subsequent writes duplicate shared chunks and pages before
// modifying them.
func (p *Pool) Crash(policy CrashPolicy, seed int64) *Pool {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Drain asynchronous handlers first: a crash image must never be
	// observed by a detector that is still behind on the stream that
	// produced it.
	p.syncLocked()

	nc := len(p.persist)
	tables := newTables(nc)
	n := &Pool{
		base:     p.base,
		size:     p.size,
		volatile: tables.volatile,
		persist:  tables.persist,
		muts:     tables.muts,
		npages:   p.npages,
		names:    make(map[string]intervals.Range, len(p.names)),
	}
	if p.flatTables {
		// Flat-table engine: page-granular sharing only. Every directory
		// slot gets a fresh private chunk retaining the parent's pages one
		// by one, so the snapshot pays the O(table length) pointer walk the
		// chunked engine removes.
		for ci, ch := range p.persist {
			if ch != nil {
				n.persist[ci] = newChunkCopy(ch)
			}
		}
	} else {
		copy(n.persist, p.persist)
		for _, ch := range n.persist {
			if ch != nil {
				ch.retain()
			}
		}
	}
	// PageStats handoff: sharing the tables turns every materialized page
	// — parent's and snapshot's alike — into a shared page; zero spans stay
	// zero on both sides. Both counters are exact at this point.
	n.pageZero = p.pageZero
	n.pageShared = p.pageShared + p.pagePrivate
	p.pageShared, p.pagePrivate = n.pageShared, 0
	// Hand the fingerprint group caches down: shared pages have identical
	// content, and the pending-line application below invalidates the
	// groups it touches through persistWritable.
	if p.groupOK != nil {
		n.groupHash = append([][32]byte(nil), p.groupHash...)
		n.groupOK = append([]bool(nil), p.groupOK...)
	}
	if p.superOK != nil {
		n.superHash = append([][32]byte(nil), p.superHash...)
		n.superOK = append([]bool(nil), p.superOK...)
	}

	if policy != CrashDropPending && p.pendingLineCount > 0 {
		// Apply staged lines in ascending line order so the per-line coin
		// sequence of CrashRandomPending is a pure function of (state,
		// policy, seed), independent of flush order.
		lines := make([]uint64, 0, len(p.pendingLines))
		for _, l := range p.pendingLines {
			if st := p.mutAt(int(l >> lineShift)).state[l&lineMask]; st == linePending || st == lineDirtyPending {
				lines = append(lines, l)
			}
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		var rng *rand.Rand
		if policy == CrashRandomPending {
			rng = rand.New(rand.NewSource(seed))
		}
		for _, l := range lines {
			apply := true
			if rng != nil {
				apply = rng.Intn(2) == 0
			}
			if !apply {
				continue
			}
			lo := (l & lineMask) * LineSize
			staged := p.mutAt(int(l >> lineShift)).pending[lo : lo+LineSize]
			if bytes.Equal(n.persistLine(l), staged) {
				continue // identical bytes: no chunk needs duplicating
			}
			pg := n.persistWritable(int(l >> lineShift))
			copy(pg.data[lo:lo+LineSize], staged)
		}
	}

	// The snapshot's volatile image aliases its persistent image — the
	// state of a freshly opened pool — and unshares on demand when
	// recovery code stores to it. Chunked sharing aliases the directories
	// chunk for chunk; the flat engine copies them page for page.
	if p.flatTables {
		for ci, ch := range n.persist {
			if ch != nil {
				n.volatile[ci] = newChunkCopy(ch)
			}
		}
	} else {
		copy(n.volatile, n.persist)
		for _, ch := range n.volatile {
			if ch != nil {
				ch.retain()
			}
		}
	}
	// Volatile aliasing re-shares whatever the pending-line application
	// just privatized, so a fresh image's materialized pages are all
	// shared.
	n.pageShared += n.pagePrivate
	n.pagePrivate = 0

	// Preserve the named-variable registry: names model program symbols,
	// which survive restart. The caches ride along.
	for name, r := range p.names {
		n.names[name] = r
	}
	n.sortedNames = p.sortedNames
	n.namesHash, n.namesHashOK = p.namesHash, p.namesHashOK

	n.alloc.init(n.base, n.size)

	if p.deepCopyCrash {
		n.materializeAllLocked()
	}
	return n
}

// materializeAllLocked turns every page of both images into a private copy
// (zero pages included) and drops the inherited hash caches — the deep-copy
// baseline Crash produces under SetCrashDeepCopy. Callers hold the pool's
// mutex or exclusive ownership.
func (p *Pool) materializeAllLocked() {
	for _, table := range [][]*pageChunk{p.persist, p.volatile} {
		for ci := range table {
			ch := writableChunk(table, ci)
			lo := ci << chunkShift
			for si := range ch.pages {
				if lo+si >= p.npages {
					break // tail slots beyond the pool stay nil
				}
				old := ch.pages[si]
				var fresh *page
				if old != nil {
					if atomic.LoadInt32(&old.refs) == 1 {
						continue // already private to this slot
					}
					fresh = newPageCopy(old)
					old.release()
				} else {
					fresh = newPage()
				}
				ch.pages[si] = fresh
			}
		}
	}
	p.pageZero, p.pageShared, p.pagePrivate = 0, 0, p.npages
	p.groupHash, p.groupOK = nil, nil
	p.superHash, p.superOK = nil, nil
}

// Release returns the pool's chunks, pages, per-page mutable state and root
// directories to the shared recycling pools. It is the explorer's fast-path
// disposal for checked crash images: dropping a still-shared chunk is one
// refcount decrement, so releasing a clean snapshot costs O(pool/2MiB) —
// only chunks dying with the image pay the page-slot walk. The pool must
// not be used afterwards (its tables are gone; accesses panic).
func (p *Pool) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.persist == nil {
		return // already released
	}
	for i, ch := range p.volatile {
		if ch != nil {
			ch.release()
			p.volatile[i] = nil
		}
	}
	for i, ch := range p.persist {
		if ch != nil {
			ch.release()
			p.persist[i] = nil
		}
	}
	for i, mc := range p.muts {
		if mc != nil {
			mc.release()
			p.muts[i] = nil
		}
	}
	tableSetPool.Put(&tableSet{p.volatile, p.persist, p.muts})
	p.volatile, p.persist, p.muts = nil, nil, nil
	p.pendingLines = nil
	p.dirtyLineCount, p.pendingLineCount = 0, 0
	p.pageZero, p.pageShared, p.pagePrivate = 0, 0, 0
	p.groupHash, p.groupOK = nil, nil
	p.superHash, p.superOK = nil, nil
}

// PageStats reports the persistent image's page-table composition: zero
// pages (never written), pages shared with another pool, and private pages.
// It is the observability hook for copy-on-write effectiveness — a healthy
// crash image is almost entirely zero and shared pages. The counters are
// maintained incrementally so the query is O(1) regardless of pool size;
// they are exact for fresh images and under the pool's own operations, and
// may over-report "shared" (never "private") after a related pool's writes
// or Release drop the last remote reference to a chunk. scanPageStats is
// the structural reference.
func (p *Pool) PageStats() (zero, shared, private int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pageZero, p.pageShared, p.pagePrivate
}

// scanPageStats recomputes the page-table composition by a full structural
// walk — a page is zero when absent, shared when its chunk or the page
// itself is referenced more than once, private otherwise. It is the
// reference the incremental PageStats counters are asserted against in
// tests.
func (p *Pool) scanPageStats() (zero, shared, private int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for ci, ch := range p.persist {
		lo := ci << chunkShift
		n := chunkSlots
		if lo+n > p.npages {
			n = p.npages - lo
		}
		if ch == nil {
			zero += n
			continue
		}
		chShared := ch.shared()
		for si := 0; si < n; si++ {
			switch pg := ch.pages[si]; {
			case pg == nil:
				zero++
			case chShared || pg.shared():
				shared++
			default:
				private++
			}
		}
	}
	return zero, shared, private
}

// Fingerprint returns a content hash of the pool's persistent image and its
// named-region table. Two pools with equal fingerprints recover identically
// under any deterministic checker, which is what content-hash image
// deduplication (internal/crashtest) relies on; the names are included
// because checkers may resolve symbols through NamedRange.
//
// The hash is a four-level Merkle rollup — per-page hashes cached on the
// (shared) pages themselves, cached group hashes over groupPages-page spans,
// cached super hashes over superGroups-group spans, and a top hash over the
// super level — so a call after k dirtied pages rehashes O(k) pages plus
// their groups and supers, never the whole pool. All-zero groups resolve to
// a process-wide constant digest, so the first call on a sparse pool costs
// O(materialized chunks), not O(pool).
func (p *Pool) Fingerprint() [32]byte {
	p.mu.Lock()
	defer p.mu.Unlock()

	ngroups := (p.npages + groupPages - 1) / groupPages
	nsupers := (ngroups + superGroups - 1) / superGroups
	if p.groupOK == nil {
		p.groupHash = make([][32]byte, ngroups)
		p.groupOK = make([]bool, ngroups)
	}
	if p.superOK == nil {
		p.superHash = make([][32]byte, nsupers)
		p.superOK = make([]bool, nsupers)
	}
	for s := 0; s < nsupers; s++ {
		if p.superOK[s] {
			continue
		}
		glo, ghi := s*superGroups, (s+1)*superGroups
		if ghi > ngroups {
			ghi = ngroups
		}
		for g := glo; g < ghi; g++ {
			if p.groupOK[g] {
				continue
			}
			start := g * groupPages
			end := start + groupPages
			if end > p.npages {
				end = p.npages
			}
			// groupPages divides chunkSlots, so the whole group lives in one
			// chunk — fetch it once. An unmaterialized chunk is a full group
			// of zero pages, whose digest is a process-wide constant.
			ch := p.persist[start>>chunkShift]
			if ch == nil && end-start == groupPages {
				p.groupHash[g] = zeroGroupHash()
			} else {
				gh := sha256.New()
				for pi := start; pi < end; pi++ {
					ph := zeroPageHash()
					if ch != nil {
						if pg := ch.pages[pi&chunkMask]; pg != nil {
							ph = pg.contentHash()
						}
					}
					gh.Write(ph[:])
				}
				gh.Sum(p.groupHash[g][:0])
			}
			p.groupOK[g] = true
		}
		sh := sha256.New()
		for g := glo; g < ghi; g++ {
			sh.Write(p.groupHash[g][:])
		}
		sh.Sum(p.superHash[s][:0])
		p.superOK[s] = true
	}

	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], p.base)
	binary.LittleEndian.PutUint64(hdr[8:], p.size)
	h.Write(hdr[:])
	for s := 0; s < nsupers; s++ {
		h.Write(p.superHash[s][:])
	}
	nh := p.namesDigestLocked()
	h.Write(nh[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// zeroGroupHash returns the digest of a full group of zero pages — the
// value Fingerprint assigns to any group whose chunk was never
// materialized. Computed once per process.
func zeroGroupHash() [32]byte {
	zeroGroupOnce.Do(func() {
		h := sha256.New()
		zp := zeroPageHash()
		for i := 0; i < groupPages; i++ {
			h.Write(zp[:])
		}
		h.Sum(zeroGroupDigest[:0])
	})
	return zeroGroupDigest
}

var (
	zeroGroupOnce   sync.Once
	zeroGroupDigest [32]byte
)

// namesDigestLocked returns the cached hash of the named-region table,
// recomputing it after a RegisterNamed invalidation. Callers hold p.mu.
func (p *Pool) namesDigestLocked() [32]byte {
	if !p.namesHashOK {
		h := sha256.New()
		for _, name := range p.sortedNamesLocked() {
			r := p.names[name]
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[0:], r.Addr)
			binary.LittleEndian.PutUint64(rec[8:], r.Size)
			h.Write([]byte(name))
			h.Write(rec[:])
		}
		h.Sum(p.namesHash[:0])
		p.namesHashOK = true
	}
	return p.namesHash
}

// PersistedEquals reports whether the persistent image bytes at addr equal
// want. It lets tests assert durability outcomes without crashing.
func (p *Pool) PersistedEquals(addr uint64, want []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, uint64(len(want)))
	off := p.off(addr)
	for len(want) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		chunk := uint64(len(want))
		if PageSize-po < chunk {
			chunk = PageSize - po
		}
		var got []byte
		if pg := pageAt(p.persist, pi); pg != nil {
			got = pg.data[po : po+chunk]
		} else {
			got = zeroPage[po : po+chunk]
		}
		if !bytes.Equal(got, want[:chunk]) {
			return false
		}
		want = want[chunk:]
		off += chunk
	}
	return true
}

// PersistedBytes copies size bytes of the persistent image at addr.
func (p *Pool) PersistedBytes(addr, size uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	out := make([]byte, size)
	p.readPersist(p.off(addr), out)
	return out
}

// DirtyLines returns the number of lines with unflushed stores. The count is
// maintained incrementally at every line-state transition, so the query is
// O(1) regardless of pool size.
func (p *Pool) DirtyLines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirtyLineCount
}

// PendingLines returns the number of lines staged by a flush but not yet
// committed by a fence, maintained incrementally like DirtyLines.
func (p *Pool) PendingLines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pendingLineCount
}

// scanLineCounts recomputes the dirty/pending line counts by a full scan of
// the line state machine — the reference the incremental counters are
// asserted against in tests.
func (p *Pool) scanLineCounts() (dirty, pending int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, mc := range p.muts {
		if mc == nil {
			continue
		}
		for _, m := range mc.muts {
			if m == nil {
				continue
			}
			for _, st := range m.state {
				switch st {
				case lineDirty:
					dirty++
				case linePending:
					pending++
				case lineDirtyPending:
					dirty++
					pending++
				}
			}
		}
	}
	return dirty, pending
}
