package pmem

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sort"
)

// CrashPolicy decides the fate of cache lines that were flushed but not yet
// fenced when the crash happens. On real hardware those lines may or may not
// have reached the persistence domain; the policy picks an outcome so tests
// can explore the space deterministically.
type CrashPolicy uint8

const (
	// CrashDropPending models the adversarial outcome for durability: no
	// un-fenced writeback reached PM.
	CrashDropPending CrashPolicy = iota
	// CrashApplyPending models the other extreme: every issued writeback
	// reached PM even without the fence.
	CrashApplyPending
	// CrashRandomPending flips a seeded coin per pending line, exploring
	// intermediate outcomes.
	CrashRandomPending
)

// Crash simulates a power failure and returns a new pool whose contents are
// the persistent image (plus pending lines according to the policy, seeded
// by seed for CrashRandomPending). The new pool starts with no handlers, all
// lines clean, the allocator reset to full — recovery code is expected to
// rebuild heap metadata from persistent structures, as on real PM.
//
// The original pool remains usable; Crash takes a snapshot.
func (p *Pool) Crash(policy CrashPolicy, seed int64) *Pool {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Drain asynchronous handlers first: a crash image must never be
	// observed by a detector that is still behind on the stream that
	// produced it.
	p.syncLocked()

	n := New(p.Size())
	copy(n.persist, p.persist)
	var rng *rand.Rand
	if policy == CrashRandomPending {
		rng = rand.New(rand.NewSource(seed))
	}
	for l, st := range p.state {
		if st != linePending && st != lineDirtyPending {
			continue
		}
		apply := false
		switch policy {
		case CrashApplyPending:
			apply = true
		case CrashRandomPending:
			apply = rng.Intn(2) == 0
		}
		if apply {
			copy(n.persist[l*LineSize:(l+1)*LineSize], p.pending[l*LineSize:(l+1)*LineSize])
		}
	}
	copy(n.volatile, n.persist)
	// Preserve the named-variable registry: names model program symbols,
	// which survive restart.
	for name, r := range p.names {
		n.names[name] = r
	}
	return n
}

// Fingerprint returns a content hash of the pool's persistent image and its
// named-region table. Two pools with equal fingerprints recover identically
// under any deterministic checker, which is what content-hash image
// deduplication (internal/crashtest) relies on; the names are included
// because checkers may resolve symbols through NamedRange.
func (p *Pool) Fingerprint() [32]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], p.base)
	binary.LittleEndian.PutUint64(hdr[8:], p.Size())
	h.Write(hdr[:])
	h.Write(p.persist)
	names := make([]string, 0, len(p.names))
	for name := range p.names {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := p.names[name]
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:], r.Addr)
		binary.LittleEndian.PutUint64(rec[8:], r.Size)
		h.Write([]byte(name))
		h.Write(rec[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// PersistedEquals reports whether the persistent image bytes at addr equal
// want. It lets tests assert durability outcomes without crashing.
func (p *Pool) PersistedEquals(addr uint64, want []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, uint64(len(want)))
	got := p.persist[p.off(addr) : p.off(addr)+uint64(len(want))]
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// PersistedBytes copies size bytes of the persistent image at addr.
func (p *Pool) PersistedBytes(addr, size uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkRange(addr, size)
	out := make([]byte, size)
	copy(out, p.persist[p.off(addr):])
	return out
}

// DirtyLines returns the number of lines with unflushed stores, and
// PendingLines the number flushed but not yet fenced. Tests use these to
// assert the line state machine.
func (p *Pool) DirtyLines() int { return p.countState(lineDirty) + p.countState(lineDirtyPending) }

// PendingLines returns the number of lines staged by a flush but not yet
// committed by a fence.
func (p *Pool) PendingLines() int { return p.countState(linePending) + p.countState(lineDirtyPending) }

func (p *Pool) countState(want lineState) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.state {
		if st == want {
			n++
		}
	}
	return n
}
