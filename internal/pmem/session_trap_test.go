package pmem

import (
	"testing"
	"time"
)

// trapInSession opens a lock session and stores until the armed trap fires,
// closing the session the two ways real callers do: deferred End (Set-style
// ops) or explicit End on every path (CAS-style ops, where the panic skips
// it entirely).
func trapInSession(p *Pool, deferred bool) (trapped bool) {
	c := p.Ctx()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(CrashTrap); ok {
				trapped = true
				return
			}
			panic(r)
		}
	}()
	base := p.Base()
	c.Begin()
	if deferred {
		defer c.End()
	}
	for i := uint64(0); i < 64; i++ {
		c.Store64(base+i*LineSize, i)
		c.Persist(base+i*LineSize, 8)
	}
	c.End()
	if !deferred {
		return false
	}
	return false
}

// TestCrashTrapInsideSession checks that a crash trap firing inside an open
// Begin/End lock session releases the pool mutex on the unwind: without the
// release, the next pool call (Crash here) deadlocks forever.
func TestCrashTrapInsideSession(t *testing.T) {
	for _, deferred := range []bool{true, false} {
		p := New(1 << 20)
		p.SetCrashTrap(5)
		if !trapInSession(p, deferred) {
			t.Fatalf("deferred=%v: trap did not fire", deferred)
		}

		done := make(chan struct{})
		go func() {
			p.Crash(CrashDropPending, 0)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("deferred=%v: pool deadlocked after trap inside session", deferred)
		}
	}
}

// TestBrokenSessionEndIsNoOp checks the deferred-End unwind path in detail:
// after the trap force-closed the session, End must neither panic nor unlock
// the pool mutex a second time, and the context must be reusable.
func TestBrokenSessionEndIsNoOp(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	p.SetCrashTrap(2)

	func() {
		defer func() { recover() }()
		c.Begin()
		defer c.End() // runs on the unwind, after the pool already unlocked
		c.Store64(p.Base(), 1)
		c.Persist(p.Base(), 8)
	}()

	if c.locked || c.broken {
		t.Fatalf("context not reset by broken-session End: locked=%v broken=%v", c.locked, c.broken)
	}
	// A second unlock would have corrupted the mutex; a fresh session (and a
	// plain pool op) must work.
	c.Begin()
	c.Store64(p.Base(), 2)
	c.End()
	p.Ctx().Store64(p.Base()+64, 3)
	if got := p.Ctx().Load64(p.Base()); got != 2 {
		t.Fatalf("post-trap store lost: %d", got)
	}
}
