package pmem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"pmdebugger/internal/trace"
)

func TestPoolSizing(t *testing.T) {
	p := New(100) // rounds up to 128
	if p.Size() != 128 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Base() != DefaultBase {
		t.Fatalf("Base = %#x", p.Base())
	}
	if p.Range().Size != 128 {
		t.Fatalf("Range = %v", p.Range())
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	p := New(1024)
	c := p.Ctx()
	a := p.Alloc(64)
	c.Store64(a, 0xdeadbeefcafe)
	if got := c.Load64(a); got != 0xdeadbeefcafe {
		t.Fatalf("Load64 = %#x", got)
	}
	c.Store32(a+8, 0x1234)
	c.Store16(a+12, 0x55aa)
	c.Store8(a+14, 0x7f)
	if c.Load32(a+8) != 0x1234 || c.Load16(a+12) != 0x55aa || c.Load8(a+14) != 0x7f {
		t.Fatalf("narrow loads wrong")
	}
	c.StoreBytes(a+16, []byte("hello"))
	if !bytes.Equal(c.LoadBytes(a+16, 5), []byte("hello")) {
		t.Fatalf("StoreBytes round trip failed")
	}
}

func TestEventEmission(t *testing.T) {
	p := New(1024)
	rec := trace.NewRecorder(16)
	p.Attach(rec)
	c := p.Ctx()
	a := p.Alloc(64)
	site := trace.RegisterSite("pmem_test.go:emit")
	c.SetSite(site)
	c.Store64(a, 1)
	c.Flush(a, 8)
	c.Fence()
	p.End()

	// Attach emits a Register covering the pool.
	evs := rec.Events
	if len(evs) != 5 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	if evs[0].Kind != trace.KindRegister || evs[0].Size != p.Size() {
		t.Errorf("register event wrong: %v", evs[0])
	}
	if evs[1].Kind != trace.KindStore || evs[1].Addr != a || evs[1].Size != 8 || evs[1].Site != site {
		t.Errorf("store event wrong: %v", evs[1])
	}
	if evs[2].Kind != trace.KindFlush || evs[2].Addr != a&^63 || evs[2].Size != 64 {
		t.Errorf("flush event not line aligned: %v", evs[2])
	}
	if evs[3].Kind != trace.KindFence {
		t.Errorf("fence event wrong: %v", evs[3])
	}
	if evs[4].Kind != trace.KindEnd {
		t.Errorf("end event wrong: %v", evs[4])
	}
	// Sequence numbers strictly increase.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing: %v then %v", evs[i-1], evs[i])
		}
	}
}

func TestDetach(t *testing.T) {
	p := New(1024)
	rec := trace.NewRecorder(4)
	p.Attach(rec)
	p.Detach(rec)
	p.Ctx().Store8(p.Base(), 1)
	if rec.Count(trace.KindStore) != 0 {
		t.Fatalf("detached handler received events")
	}
}

func TestLineStateMachine(t *testing.T) {
	p := New(1024)
	c := p.Ctx()
	a := p.Base()

	c.Store64(a, 42)
	if p.DirtyLines() != 1 || p.PendingLines() != 0 {
		t.Fatalf("after store: dirty=%d pending=%d", p.DirtyLines(), p.PendingLines())
	}
	c.Flush(a, 8)
	if p.DirtyLines() != 0 || p.PendingLines() != 1 {
		t.Fatalf("after flush: dirty=%d pending=%d", p.DirtyLines(), p.PendingLines())
	}
	// Store after flush re-dirties the line while keeping the staged copy.
	c.Store64(a, 43)
	if p.DirtyLines() != 1 || p.PendingLines() != 1 {
		t.Fatalf("after store-after-flush: dirty=%d pending=%d", p.DirtyLines(), p.PendingLines())
	}
	c.Fence()
	// The staged value (42) is persistent; the line is dirty with 43.
	if !p.PersistedEquals(a, []byte{42, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("persistent image has %v", p.PersistedBytes(a, 8))
	}
	if p.DirtyLines() != 1 || p.PendingLines() != 0 {
		t.Fatalf("after fence: dirty=%d pending=%d", p.DirtyLines(), p.PendingLines())
	}
	if c.Load64(a) != 43 {
		t.Fatalf("volatile image lost the newer store")
	}
}

func TestFenceWithoutFlushPersistsNothing(t *testing.T) {
	p := New(1024)
	c := p.Ctx()
	a := p.Base()
	c.Store64(a, 7)
	c.Fence()
	if p.PersistedEquals(a, []byte{7, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("unflushed store reached persistence domain")
	}
}

func TestCrashPolicies(t *testing.T) {
	setup := func() *Pool {
		p := New(1024)
		c := p.Ctx()
		c.Store64(p.Base(), 1) // flushed+fenced: durable
		c.Persist(p.Base(), 8)
		c.Store64(p.Base()+64, 2) // flushed, not fenced: pending
		c.Flush(p.Base()+64, 8)
		c.Store64(p.Base()+128, 3) // not flushed: lost
		return p
	}

	p := setup()
	crashed := p.Crash(CrashDropPending, 0)
	cc := crashed.Ctx()
	if cc.Load64(crashed.Base()) != 1 {
		t.Errorf("durable store lost")
	}
	if cc.Load64(crashed.Base()+64) != 0 {
		t.Errorf("pending line survived DropPending")
	}
	if cc.Load64(crashed.Base()+128) != 0 {
		t.Errorf("unflushed store survived crash")
	}

	crashed = setup().Crash(CrashApplyPending, 0)
	cc = crashed.Ctx()
	if cc.Load64(crashed.Base()+64) != 2 {
		t.Errorf("pending line dropped under ApplyPending")
	}

	// Random policy is deterministic per seed.
	a := setup().Crash(CrashRandomPending, 99)
	b := setup().Crash(CrashRandomPending, 99)
	if a.Ctx().Load64(a.Base()+64) != b.Ctx().Load64(b.Base()+64) {
		t.Errorf("CrashRandomPending not deterministic for equal seeds")
	}
}

func TestCrashPreservesNames(t *testing.T) {
	p := New(1024)
	p.RegisterNamed("root", p.Base(), 64)
	crashed := p.Crash(CrashDropPending, 0)
	if _, ok := crashed.NamedRange("root"); !ok {
		t.Fatalf("named range lost on crash")
	}
}

func TestAllocFree(t *testing.T) {
	p := New(4096)
	a := p.Alloc(100)
	b := p.Alloc(100)
	if a == b {
		t.Fatalf("overlapping allocations")
	}
	if a%16 != 0 || b%16 != 0 {
		t.Fatalf("misaligned allocations %#x %#x", a, b)
	}
	before := p.FreeBytes()
	p.Free(a, 100)
	p.Free(b, 100)
	if p.FreeBytes() <= before {
		t.Fatalf("free did not return space")
	}
	if p.FreeBytes() != 4096 {
		t.Fatalf("coalescing failed: free=%d", p.FreeBytes())
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := New(256)
	if _, ok := p.TryAlloc(1024); ok {
		t.Fatalf("oversized TryAlloc succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Alloc beyond pool did not panic")
		}
	}()
	p.Alloc(1024)
}

func TestAllocReuseAfterFree(t *testing.T) {
	p := New(1024)
	var addrs []uint64
	for i := 0; i < 8; i++ {
		addrs = append(addrs, p.Alloc(128))
	}
	if _, ok := p.TryAlloc(128); ok {
		t.Fatalf("pool should be exhausted")
	}
	p.Free(addrs[3], 128)
	got, ok := p.TryAlloc(128)
	if !ok || got != addrs[3] {
		t.Fatalf("freed block not reused: got %#x want %#x", got, addrs[3])
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New(256)
	c := p.Ctx()
	for _, fn := range []func(){
		func() { c.Store8(p.Base()+p.Size(), 1) },
		func() { c.Store8(p.Base()-1, 1) },
		func() { c.Flush(p.Base()+p.Size(), 1) },
		func() { c.LoadBytes(p.Base()+p.Size()-4, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestEpochNesting(t *testing.T) {
	p := New(256)
	rec := trace.NewRecorder(8)
	p.Attach(rec)
	c := p.Ctx()
	c.EpochBegin()
	c.EpochBegin() // nested: no event
	if !c.InEpoch() {
		t.Fatalf("InEpoch false inside epoch")
	}
	c.EpochEnd() // nested: no event
	c.EpochEnd()
	if c.InEpoch() {
		t.Fatalf("InEpoch true after close")
	}
	if rec.Count(trace.KindEpochBegin) != 1 || rec.Count(trace.KindEpochEnd) != 1 {
		t.Fatalf("nested epochs not flattened: %d begins, %d ends",
			rec.Count(trace.KindEpochBegin), rec.Count(trace.KindEpochEnd))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("unbalanced EpochEnd did not panic")
		}
	}()
	c.EpochEnd()
}

func TestStrands(t *testing.T) {
	p := New(256)
	rec := trace.NewRecorder(8)
	p.Attach(rec)
	c := p.Ctx()
	s1 := c.StrandBegin()
	s2 := c.StrandBegin()
	if s1.Strand() == s2.Strand() || s1.Strand() == 0 {
		t.Fatalf("strand ids not unique: %d %d", s1.Strand(), s2.Strand())
	}
	s1.Store8(p.Base(), 1)
	s2.Store8(p.Base()+64, 2)
	s1.StrandEnd()
	s2.StrandEnd()
	c.JoinStrand()

	var strandOfStore []int32
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindStore {
			strandOfStore = append(strandOfStore, ev.Strand)
		}
	}
	if len(strandOfStore) != 2 || strandOfStore[0] == strandOfStore[1] {
		t.Fatalf("store strand tagging wrong: %v", strandOfStore)
	}
	if rec.Count(trace.KindJoinStrand) != 1 {
		t.Fatalf("join not emitted")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("StrandEnd on implicit strand did not panic")
		}
	}()
	c.StrandEnd()
}

func TestRegisterNamed(t *testing.T) {
	p := New(256)
	rec := trace.NewRecorder(4)
	p.Attach(rec)
	p.RegisterNamed("key", p.Base()+16, 8)
	r, ok := p.NamedRange("key")
	if !ok || r.Addr != p.Base()+16 || r.Size != 8 {
		t.Fatalf("NamedRange = %v %v", r, ok)
	}
	if _, ok := p.NamedRange("absent"); ok {
		t.Fatalf("absent name resolved")
	}
	found := false
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindRegister && trace.SiteName(ev.Site) == "key" {
			found = true
		}
	}
	if !found {
		t.Fatalf("register event for name not emitted")
	}
}

func TestConcurrentStoresSerialize(t *testing.T) {
	p := New(1 << 16)
	rec := trace.NewRecorder(1024)
	p.Attach(rec)
	var wg sync.WaitGroup
	const threads, per = 8, 100
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := p.ThreadCtx(int32(th))
			base := p.Base() + uint64(th)*4096
			for i := 0; i < per; i++ {
				c.Store64(base+uint64(i)*8, uint64(i))
			}
		}(th)
	}
	wg.Wait()
	if got := rec.Count(trace.KindStore); got != threads*per {
		t.Fatalf("stores = %d, want %d", got, threads*per)
	}
	// Every thread's own values must be intact (no torn interleaving).
	for th := 0; th < threads; th++ {
		c := p.ThreadCtx(int32(th))
		base := p.Base() + uint64(th)*4096
		for i := 0; i < per; i++ {
			if got := c.Load64(base + uint64(i)*8); got != uint64(i) {
				t.Fatalf("thread %d slot %d = %d", th, i, got)
			}
		}
	}
}

func TestTxLogAddEvent(t *testing.T) {
	p := New(256)
	rec := trace.NewRecorder(4)
	p.Attach(rec)
	c := p.Ctx()
	c.TxLogAdd(p.Base()+32, 16)
	if rec.Count(trace.KindTxLogAdd) != 1 {
		t.Fatalf("TxLogAdd not emitted")
	}
	ev := rec.Events[len(rec.Events)-1]
	if ev.Addr != p.Base()+32 || ev.Size != 16 {
		t.Fatalf("TxLogAdd range wrong: %v", ev)
	}
}

// Property: persist-then-crash always preserves stored data regardless of
// address and size (within one line).
func TestQuickPersistDurable(t *testing.T) {
	f := func(off uint16, v uint64) bool {
		p := New(1 << 12)
		c := p.Ctx()
		addr := p.Base() + uint64(off%(1<<12-8))
		c.Store64(addr, v)
		c.Persist(addr, 8)
		crashed := p.Crash(CrashDropPending, 0)
		return crashed.Ctx().Load64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocator never hands out overlapping blocks.
func TestQuickAllocDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := New(1 << 16)
		type blk struct{ a, s uint64 }
		var blocks []blk
		for _, s := range sizes {
			sz := uint64(s%512) + 1
			a, ok := p.TryAlloc(sz)
			if !ok {
				continue
			}
			for _, b := range blocks {
				if a < b.a+b.s && b.a < a+sz {
					return false
				}
			}
			blocks = append(blocks, blk{a, sz})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64(b *testing.B) {
	p := New(1 << 20)
	c := p.Ctx()
	base := p.Base()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Store64(base+uint64(i%(1<<17))*8, uint64(i))
	}
}

func BenchmarkStoreFlushFence(b *testing.B) {
	p := New(1 << 20)
	c := p.Ctx()
	base := p.Base()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := base + uint64(i%(1<<14))*64
		c.Store64(a, uint64(i))
		c.Flush(a, 8)
		c.Fence()
	}
}
