package pmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestForkCarriesFullVolatileState is the core Fork contract: unlike Crash,
// the fork resumes the running machine — volatile bytes, line states, the
// staged pending set, the allocator, names, and the event position all carry
// over, so continuing on the fork produces exactly what continuing on the
// parent would have.
func TestForkCarriesFullVolatileState(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(4096)
	p.RegisterNamed("root", a, 64)
	persist(c, a, []byte("committed bytes!"))
	c.StoreBytes(a+64, []byte("dirty line"))    // stays dirty
	c.StoreBytes(a+128, []byte("pending line")) // staged below
	c.Flush(a+128, 16)                          // flushed, no fence yet
	free := p.FreeBytes()

	f := p.Fork()
	if f.EventCount() != p.EventCount() {
		t.Fatalf("fork seq %d != parent seq %d", f.EventCount(), p.EventCount())
	}
	if d, pe := f.DirtyLines(), f.PendingLines(); d != p.DirtyLines() || pe != p.PendingLines() {
		t.Fatalf("fork line counts (%d,%d) != parent (%d,%d)", d, pe, p.DirtyLines(), p.PendingLines())
	}
	if got := f.Load(a+64, 10); !bytes.Equal(got, []byte("dirty line")) {
		t.Fatalf("fork lost volatile bytes: %q", got)
	}
	if r, ok := f.NamedRange("root"); !ok || r.Addr != a {
		t.Fatal("fork lost named region")
	}
	if f.FreeBytes() != free {
		t.Fatalf("fork allocator free %d != parent %d", f.FreeBytes(), free)
	}
	if d, pe := f.scanLineCounts(); d != f.DirtyLines() || pe != f.PendingLines() {
		t.Fatalf("fork incremental counts (%d,%d) != scan (%d,%d)", f.DirtyLines(), f.PendingLines(), d, pe)
	}

	// A fence on the fork commits the line the parent staged before the
	// fork — the pending set and staged bytes crossed over.
	f.Ctx().Fence()
	if !f.PersistedEquals(a+128, []byte("pending line")) {
		t.Fatal("fork fence did not commit the parent's staged line")
	}
	// The parent's own fence still works and the two now agree.
	c.Fence()
	if !p.PersistedEquals(a+128, []byte("pending line")) {
		t.Fatal("parent fence lost its staged line after forking")
	}
	f.Release()
}

// TestForkImagesMatchUnforkedRun drives a parent and its fork through the
// same tail of operations and checks, for every policy, that the fork's
// crash images are fingerprint-identical to the images of a pool that never
// forked — Fork must be invisible to crash semantics.
func TestForkImagesMatchUnforkedRun(t *testing.T) {
	run := func(fork bool) map[string][32]byte {
		p := New(1 << 20)
		c := p.Ctx()
		a := uint64(DefaultBase + 4096)
		persist(c, a, []byte("prefix state 00!"))
		c.StoreBytes(a+4096, []byte("staged not fenced"))
		c.Flush(a+4096, 32)

		target := p
		if fork {
			target = p.Fork()
		}
		tc := target.Ctx()
		persist(tc, a+8192, []byte("tail writes here"))
		tc.StoreBytes(a, []byte("overwrite prefix"))
		tc.Flush(a, 16)

		out := map[string][32]byte{}
		for _, pol := range []CrashPolicy{CrashDropPending, CrashApplyPending, CrashRandomPending} {
			for _, seed := range []int64{1, 7} {
				img := target.Crash(pol, seed)
				out[fmt.Sprintf("%d/%d", pol, seed)] = img.Fingerprint()
				img.Release()
			}
		}
		return out
	}
	plain, forked := run(false), run(true)
	for k, fp := range plain {
		if forked[k] != fp {
			t.Fatalf("policy/seed %s: forked image differs from unforked run", k)
		}
	}
}

// TestForkStagedBytesAreIsolated pins the mut-level copy-on-write: the
// staged pending bytes are duplicated before either side restages, so a
// parent's post-fork restage cannot leak into what the fork's fence commits
// (and vice versa).
func TestForkStagedBytesAreIsolated(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(4096)
	c.StoreBytes(a, []byte("original staged!"))
	c.Flush(a, 16) // staged, not fenced

	f := p.Fork()

	// Parent restages different bytes and commits them.
	c.StoreBytes(a, []byte("parent restaged!"))
	c.Flush(a, 16)
	c.Fence()
	if !p.PersistedEquals(a, []byte("parent restaged!")) {
		t.Fatal("parent lost its own restaged bytes")
	}

	// The fork's fence must commit the bytes staged before the fork.
	f.Ctx().Fence()
	if !f.PersistedEquals(a, []byte("original staged!")) {
		t.Fatalf("parent restage leaked into fork: %q", f.PersistedBytes(a, 16))
	}

	// And the other direction: a second fork restages, the parent's state
	// machine must not see it.
	g := p.Fork()
	gc := g.Ctx()
	gc.StoreBytes(a, []byte("fork2 restaged!!"))
	gc.Flush(a, 16)
	if got := p.PersistedBytes(a, 16); !bytes.Equal(got, []byte("parent restaged!")) {
		t.Fatalf("fork restage leaked into parent persist image: %q", got)
	}
	c.Fence() // parent has nothing newly staged: must be a no-op commit
	if !p.PersistedEquals(a, []byte("parent restaged!")) {
		t.Fatal("fork's staged line bled into the parent's fence")
	}
	gc.Fence()
	if !g.PersistedEquals(a, []byte("fork2 restaged!!")) {
		t.Fatal("fork2 lost its own staged bytes")
	}
	f.Release()
	g.Release()
}

// TestForkConcurrentMutators is the -race witness for concurrent forks of
// one parent mutating pages in shared chunks: every fork rewrites the same
// cache lines (same chunk, same mut) plus a fork-private line, takes crash
// images, and releases — all concurrently with the parent doing the same.
// Refcounted COW must keep every pool's bytes private without locking.
func TestForkConcurrentMutators(t *testing.T) {
	p := New(1 << 24) // 16 MiB: eight 2 MiB chunk spans
	c := p.Ctx()
	base := p.Base()
	// Dirty several chunks' worth of shared state, with a staged line per
	// page so the forks share muts too.
	for i := 0; i < 8; i++ {
		a := base + uint64(i)*(2<<20) + 64
		persist(c, a, bytes.Repeat([]byte{byte(i)}, 128))
		c.StoreBytes(a+4096, []byte("staged line here"))
		c.Flush(a+4096, 16)
	}

	const nforks = 8
	forks := make([]*Pool, nforks)
	for i := range forks {
		forks[i] = p.Fork()
	}

	var wg sync.WaitGroup
	mutate := func(pool *Pool, tag byte) {
		defer wg.Done()
		mc := pool.Ctx()
		want := bytes.Repeat([]byte{tag}, 64)
		for i := 0; i < 8; i++ {
			a := base + uint64(i)*(2<<20) + 64
			persist(mc, a, want)                       // contended shared line
			persist(mc, a+uint64(tag)*4096+8192, want) // pool-private line
			mc.Fence()                                 // commits the pre-fork staged line too
		}
		img := pool.Crash(CrashRandomPending, int64(tag))
		for i := 0; i < 8; i++ {
			a := base + uint64(i)*(2<<20) + 64
			if !img.PersistedEquals(a, want) {
				panic("lost own write in crash image")
			}
		}
		img.Release()
	}
	wg.Add(nforks + 1)
	go mutate(p, 0x40)
	for i, f := range forks {
		go mutate(f, byte(0x41+i))
	}
	wg.Wait()

	for i, f := range forks {
		want := bytes.Repeat([]byte{byte(0x41 + i)}, 64)
		if !f.PersistedEquals(base+64, want) {
			t.Fatalf("fork %d lost its write after concurrent mutation", i)
		}
		f.Release()
	}
	if !p.PersistedEquals(base+64, bytes.Repeat([]byte{0x40}, 64)) {
		t.Fatal("parent lost its write after concurrent mutation")
	}
}

// TestForkReleaseRecyclesSharedState releases forks in both orders around
// parent writes, making sure refcounts neither leak a still-referenced mut
// to the pool (use-after-recycle shows up as cross-pool corruption) nor
// double-free. Exercised hardest under -race with the pools swapping dirty
// chunks.
func TestForkReleaseRecyclesSharedState(t *testing.T) {
	p := New(1 << 20)
	c := p.Ctx()
	a := p.Alloc(8192)
	c.StoreBytes(a, []byte("staged by parent"))
	c.Flush(a, 16)

	f1 := p.Fork()
	f2 := f1.Fork() // fork of a fork: three pools share one mut
	f1.Release()    // middle owner goes away first

	// Parent and grandchild still work and stay isolated.
	c.StoreBytes(a, []byte("parent restaged!"))
	c.Flush(a, 16)
	c.Fence()
	f2.Ctx().Fence()
	if !f2.PersistedEquals(a, []byte("staged by parent")) {
		t.Fatalf("grandchild fork lost shared staged bytes: %q", f2.PersistedBytes(a, 16))
	}
	if !p.PersistedEquals(a, []byte("parent restaged!")) {
		t.Fatal("parent lost its restaged bytes")
	}
	f2.Release()

	// The parent survives all forks being gone.
	persist(c, a+4096, []byte("after forks die"))
	if !p.PersistedEquals(a+4096, []byte("after forks die")) {
		t.Fatal("parent broken after releasing forks")
	}
}
