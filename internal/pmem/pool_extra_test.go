package pmem

import (
	"testing"

	"pmdebugger/internal/trace"
)

func TestAllocAt(t *testing.T) {
	p := New(1 << 12)
	base := p.Base()
	// Reserve a middle range, then confirm overlapping reservations fail
	// and surrounding space still allocates.
	if !p.AllocAt(base+256, 128) {
		t.Fatal("AllocAt on free range failed")
	}
	if p.AllocAt(base+300, 16) {
		t.Fatal("overlapping AllocAt succeeded")
	}
	if !p.AllocAt(base, 256) {
		t.Fatal("AllocAt on head range failed")
	}
	if !p.AllocAt(base+384, 128) {
		t.Fatal("AllocAt after reserved range failed")
	}
	// Exact-fit reservation of a remaining hole.
	if !p.AllocAt(base+512, p.Size()-512) {
		t.Fatal("tail reservation failed")
	}
	if _, ok := p.TryAlloc(16); ok {
		t.Fatal("pool should be fully reserved")
	}
	p.Free(base+256, 128)
	if got, ok := p.TryAlloc(128); !ok || got != base+256 {
		t.Fatalf("freed reservation not reusable: %#x %v", got, ok)
	}
}

func TestCrashTrap(t *testing.T) {
	p := New(1 << 12)
	c := p.Ctx()
	p.SetCrashTrap(3)
	trapped := func() (trapped bool) {
		defer func() {
			if r := recover(); r != nil {
				ct, ok := r.(CrashTrap)
				if !ok {
					t.Fatalf("unexpected panic %v", r)
				}
				if ct.Seq != 3 {
					t.Fatalf("trap at seq %d, want 3", ct.Seq)
				}
				trapped = true
			}
		}()
		for i := 0; i < 10; i++ {
			c.Store64(p.Base(), uint64(i))
		}
		return false
	}()
	if !trapped {
		t.Fatal("trap never fired")
	}
	// The pool stays usable after the unwind and the trap self-disarms.
	c.Store64(p.Base()+64, 1)
	c.Persist(p.Base()+64, 8)
	if p.EventCount() < 5 {
		t.Fatalf("EventCount = %d", p.EventCount())
	}
}

func TestCtxAccessors(t *testing.T) {
	p := New(1 << 12)
	c := p.ThreadCtx(5)
	if c.Pool() != p || c.Thread() != 5 {
		t.Fatal("ctx accessors wrong")
	}
	site := trace.RegisterSite("accessor-test")
	d := c.At(site)
	if d == c {
		t.Fatal("At returned the same ctx")
	}
	if c.Strand() != 0 {
		t.Fatal("default strand not 0")
	}
}

func TestPersistedBytes(t *testing.T) {
	p := New(1 << 12)
	c := p.Ctx()
	c.Store64(p.Base(), 0x11)
	c.Persist(p.Base(), 8)
	got := p.PersistedBytes(p.Base(), 8)
	if got[0] != 0x11 {
		t.Fatalf("PersistedBytes = %v", got)
	}
}

func TestRegisterUnregisterRegionEvents(t *testing.T) {
	p := New(1 << 12)
	rec := trace.NewRecorder(4)
	p.Attach(rec)
	p.RegisterRegion(p.Base()+64, 128)
	p.UnregisterRegion(p.Base()+64, 64)
	if rec.Count(trace.KindRegister) != 2 { // attach + explicit
		t.Fatalf("register events = %d", rec.Count(trace.KindRegister))
	}
	if rec.Count(trace.KindUnregister) != 1 {
		t.Fatalf("unregister events = %d", rec.Count(trace.KindUnregister))
	}
}

func TestPoolStats(t *testing.T) {
	p := New(1 << 12)
	c := p.Ctx()
	a := p.Base()
	c.Store64(a, 1)
	c.StoreBytes(a+64, make([]byte, 16))
	c.Flush(a, 8)
	c.Flush(a+64, 16)
	c.Fence()
	c.Flush(a, 8) // clean line: no commit at next fence
	c.Fence()
	st := p.Stats()
	if st.Stores != 2 || st.Flushes != 3 || st.Fences != 2 {
		t.Fatalf("counts = %+v", st)
	}
	if st.BytesStored != 24 {
		t.Fatalf("bytes = %d", st.BytesStored)
	}
	if st.LinesCommitted != 2 {
		t.Fatalf("lines committed = %d", st.LinesCommitted)
	}
}
