package pmem

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// The pool's two byte images (volatile and persistent) are stored as
// two-level page tables shared copy-on-write between pools: a root directory
// of fixed-size table *chunks* (chunkSlots page slots each, covering 2 MiB
// of address space), where both the 4 KiB pages and the chunks themselves
// are refcounted and duplicated lazily on write. This is what makes
// crash-image materialization O(dirty) in bytes *and* table slots: Crash
// clones only the root directory (one pointer copy plus one refcount bump
// per chunk — O(pool/2MiB), effectively constant at realistic sizes), and a
// chunk is unshared only when a write lands in it while shared. A nil
// directory entry stands for an all-zero chunk and a nil chunk slot for an
// all-zero page, so untouched spans of a large pool cost nothing in any
// pool.
//
// Sharing discipline, by level:
//
//   - A chunk's refcount counts the root-directory slots (across all pools,
//     volatile and persistent directories alike) that reference it. Every
//     table-slot write goes through writableChunk, which duplicates the
//     chunk (retaining its pages) when the refcount exceeds one, so a
//     shared chunk's pages array is immutable for as long as it is shared —
//     concurrent pools may walk it without locks.
//   - A page's refcount counts the chunk slots that reference it. A page is
//     written in place only when its chunk is privately owned AND its own
//     refcount is one; chunk duplication retains every page it copies, so
//     the page-level copy-before-write check in volatileWritable/
//     persistWritable still sees an accurate count after the chunk unshares.
//   - The mut table (per-page line states + flush staging) follows the same
//     two-level discipline: Pool.Fork shares mut chunks and muts wholesale,
//     and mutFor unshares chunk-then-mut before any line-state or staging
//     write. Crash images never share muts (a fresh image has no mutable
//     state), so only forks pay the mut copy-on-write checks.
//
// Refcount operations are atomic because distinct pools run under distinct
// mutexes; the release path that recycles a dying chunk or page runs only
// when the last reference goes away, at which point no other pool can reach
// it.
const (
	// PageShift is log2 of PageSize.
	PageShift = 12
	// PageSize is the page-level copy-on-write sharing granularity of pool
	// images.
	PageSize = 1 << PageShift

	pageMask     = PageSize - 1
	linesPerPage = PageSize / LineSize
	lineShift    = 6 // log2(linesPerPage): line index -> page index
	lineMask     = linesPerPage - 1

	// chunkShift is log2 of chunkSlots.
	chunkShift = 9
	// chunkSlots is the page-table chunk size: the chunk-level copy-on-write
	// sharing granularity. 512 slots cover 2 MiB of address space, so a
	// 1 GiB pool has a 512-entry root directory — the only thing Crash
	// copies eagerly.
	chunkSlots = 1 << chunkShift
	chunkMask  = chunkSlots - 1

	// groupPages is the fan-in of the fingerprint's lower-middle Merkle
	// level: one cached group hash covers this many per-page hashes, so an
	// unchanged 512 KiB span costs nothing per Fingerprint call.
	// It divides chunkSlots, so a hash group never straddles chunks.
	groupPages = 128

	// superGroups is the fan-in of the upper-middle Merkle level: one
	// cached super hash covers this many group hashes (32 MiB of address
	// space), and the top hash reads only the super level — so Fingerprint
	// on a big pool costs O(dirty pages + pool/32MiB), not O(pool/512KiB).
	superGroups = 64
)

// page is one copy-on-write unit of a pool image, plus its cached content
// hash (the fingerprint's leaf level). The hash travels with the page: two
// pools sharing a page also share the work of hashing it.
type page struct {
	refs int32 // atomic: chunk slots referencing this page

	// hashMu guards hash/hashOK. Concurrent Fingerprint calls on pools
	// sharing the page serialize here; in-place writes (which require
	// refs==1, hence no concurrent reader) invalidate hashOK.
	hashMu sync.Mutex
	hashOK bool
	hash   [32]byte

	data [PageSize]byte
}

// pageChunk is one copy-on-write unit of a page table: chunkSlots
// consecutive page slots shared between root directories. A chunk's pages
// array is mutated only while the chunk is privately owned (refs == 1).
type pageChunk struct {
	refs  int32 // atomic: root-directory slots referencing this chunk
	pages [chunkSlots]*page
}

// pageMut is the lazily allocated mutable shadow of one page: the cache-line
// state machine and the flush-staged line snapshots. Pools allocate one per
// page actually stored to or flushed, so a mostly-clean pool (a fresh crash
// image, say) carries no per-byte mutable state at all. Muts follow the same
// copy-on-write discipline as pages: Fork shares them between parent and
// fork via refcounts, and mutFor duplicates a shared mut before any state or
// staging write (Crash never shares muts — images start with all lines
// clean).
type pageMut struct {
	refs    int32 // atomic: mut-chunk slots referencing this mut
	state   [linesPerPage]lineState
	pending [PageSize]byte
}

// mutChunk is the directory unit of the mut table, mirroring pageChunk so a
// fresh pool's mut directory is O(pool/2MiB) nil pointers. Like pageChunk,
// mut chunks are refcounted and shared between a pool and its forks; a
// chunk's muts array is mutated only while the chunk is privately owned.
type mutChunk struct {
	refs int32 // atomic: mut-directory slots referencing this chunk
	muts [chunkSlots]*pageMut
}

var (
	pagePool     = sync.Pool{New: func() any { return new(page) }}
	chunkPool    = sync.Pool{New: func() any { return new(pageChunk) }}
	mutPool      = sync.Pool{New: func() any { return new(pageMut) }}
	mutChunkPool = sync.Pool{New: func() any { return new(mutChunk) }}

	zeroPage [PageSize]byte // read-only zero bytes for nil-page reads

	zeroPageHashOnce sync.Once
	zeroPageHashVal  [32]byte
)

// newPage returns a zeroed page with refcount 1.
func newPage() *page {
	pg := pagePool.Get().(*page)
	pg.refs = 1
	pg.hashOK = false
	pg.data = [PageSize]byte{}
	return pg
}

// newPageCopy returns a private copy of src with refcount 1. The hash cache
// is not carried over: copies exist to be written to.
func newPageCopy(src *page) *page {
	pg := pagePool.Get().(*page)
	pg.refs = 1
	pg.hashOK = false
	pg.data = src.data
	return pg
}

// retain adds one chunk-slot reference.
func (pg *page) retain() { atomic.AddInt32(&pg.refs, 1) }

// release drops one chunk-slot reference, recycling the page through the
// shared page pool when the last reference goes away.
func (pg *page) release() {
	if atomic.AddInt32(&pg.refs, -1) == 0 {
		pagePool.Put(pg)
	}
}

// shared reports whether the page is referenced by more than one chunk slot.
func (pg *page) shared() bool { return atomic.LoadInt32(&pg.refs) > 1 }

// contentHash returns the page's SHA-256, computing and caching it on first
// use. Safe to call from multiple pools sharing the page.
func (pg *page) contentHash() [32]byte {
	pg.hashMu.Lock()
	if !pg.hashOK {
		pg.hash = sha256.Sum256(pg.data[:])
		pg.hashOK = true
	}
	h := pg.hash
	pg.hashMu.Unlock()
	return h
}

// invalidateHash marks the cached hash stale. Callers hold the owning
// pool's mutex and the page privately (refs==1), so no Fingerprint can be
// reading concurrently; the mutex is still taken to order the write against
// a hash computed while the page was previously shared.
func (pg *page) invalidateHash() {
	pg.hashMu.Lock()
	pg.hashOK = false
	pg.hashMu.Unlock()
}

// zeroPageHash is the cached SHA-256 of an all-zero page — the leaf hash of
// every nil table entry.
func zeroPageHash() [32]byte {
	zeroPageHashOnce.Do(func() { zeroPageHashVal = sha256.Sum256(zeroPage[:]) })
	return zeroPageHashVal
}

// newChunk returns an all-nil chunk with refcount 1. Recycled chunks come
// back clean: release nils every slot before handing the chunk to the pool.
func newChunk() *pageChunk {
	ch := chunkPool.Get().(*pageChunk)
	ch.refs = 1
	return ch
}

// newChunkCopy returns a private duplicate of src with refcount 1, retaining
// every page it copies. The retains happen before the caller drops its
// reference to src, so no page's count can touch zero mid-duplication even
// while other pools release the same chunk concurrently.
func newChunkCopy(src *pageChunk) *pageChunk {
	ch := chunkPool.Get().(*pageChunk)
	ch.refs = 1
	ch.pages = src.pages
	for _, pg := range ch.pages {
		if pg != nil {
			pg.retain()
		}
	}
	return ch
}

// retain adds one root-directory reference.
func (ch *pageChunk) retain() { atomic.AddInt32(&ch.refs, 1) }

// release drops one root-directory reference. The last release drops every
// page the chunk holds and recycles the cleaned chunk through the shared
// chunk pool — only dying chunks pay the slot scan, so disposing of a
// snapshot that stayed shared is O(1) per chunk.
func (ch *pageChunk) release() {
	if atomic.AddInt32(&ch.refs, -1) == 0 {
		for i, pg := range ch.pages {
			if pg != nil {
				pg.release()
				ch.pages[i] = nil
			}
		}
		chunkPool.Put(ch)
	}
}

// shared reports whether the chunk is referenced by more than one directory
// slot.
func (ch *pageChunk) shared() bool { return atomic.LoadInt32(&ch.refs) > 1 }

// newPageMut returns a mut with all lines clean and refcount 1. The pending
// area is not cleared: its bytes are only ever read after being staged by a
// flush.
func newPageMut() *pageMut {
	m := mutPool.Get().(*pageMut)
	m.refs = 1
	m.state = [linesPerPage]lineState{}
	return m
}

// newPageMutCopy returns a private copy of src with refcount 1. Both the
// line states and the staged pending bytes are copied: a fork and its parent
// must restage and commit independently.
func newPageMutCopy(src *pageMut) *pageMut {
	m := mutPool.Get().(*pageMut)
	m.refs = 1
	m.state = src.state
	m.pending = src.pending
	return m
}

// retain adds one mut-chunk-slot reference.
func (m *pageMut) retain() { atomic.AddInt32(&m.refs, 1) }

// release drops one mut-chunk-slot reference, recycling the mut when the
// last reference goes away.
func (m *pageMut) release() {
	if atomic.AddInt32(&m.refs, -1) == 0 {
		mutPool.Put(m)
	}
}

// shared reports whether the mut is referenced by more than one chunk slot.
func (m *pageMut) shared() bool { return atomic.LoadInt32(&m.refs) > 1 }

// newMutChunk returns an all-nil mut chunk with refcount 1. Recycled chunks
// come back clean: release nils every slot before pooling the chunk.
func newMutChunk() *mutChunk {
	mc := mutChunkPool.Get().(*mutChunk)
	mc.refs = 1
	return mc
}

// newMutChunkCopy returns a private duplicate of src with refcount 1,
// retaining every mut it copies — the retains happen before the caller drops
// its reference to src, so no mut's count can touch zero mid-duplication
// even while other pools release the same chunk concurrently (the same
// protocol as newChunkCopy).
func newMutChunkCopy(src *mutChunk) *mutChunk {
	mc := mutChunkPool.Get().(*mutChunk)
	mc.refs = 1
	mc.muts = src.muts
	for _, m := range mc.muts {
		if m != nil {
			m.retain()
		}
	}
	return mc
}

// retain adds one mut-directory reference.
func (mc *mutChunk) retain() { atomic.AddInt32(&mc.refs, 1) }

// release drops one mut-directory reference. The last release drops every
// mut the chunk holds and recycles the cleaned chunk — only dying chunks pay
// the slot scan.
func (mc *mutChunk) release() {
	if atomic.AddInt32(&mc.refs, -1) == 0 {
		for i, m := range mc.muts {
			if m != nil {
				m.release()
				mc.muts[i] = nil
			}
		}
		mutChunkPool.Put(mc)
	}
}

// shared reports whether the mut chunk is referenced by more than one
// directory slot.
func (mc *mutChunk) shared() bool { return atomic.LoadInt32(&mc.refs) > 1 }

// tableSet bundles the three per-pool root directories so Release can
// recycle them as a unit. Directories are O(pool/2MiB) — tiny — but crash
// images are made and discarded at explorer rates, so even those stay off
// the allocator.
type tableSet struct {
	volatile, persist []*pageChunk
	muts              []*mutChunk
}

var tableSetPool sync.Pool

// newTables returns three all-nil nc-length root directories, reusing a
// released set when one of sufficient capacity is available (Release nils
// every entry, so recycled directories come back clean).
func newTables(nc int) tableSet {
	if v := tableSetPool.Get(); v != nil {
		t := v.(*tableSet)
		if cap(t.volatile) >= nc {
			return tableSet{t.volatile[:nc], t.persist[:nc], t.muts[:nc]}
		}
	}
	return tableSet{make([]*pageChunk, nc), make([]*pageChunk, nc), make([]*mutChunk, nc)}
}

// npagesFor returns the page count covering size bytes.
func npagesFor(size uint64) int { return int((size + PageSize - 1) >> PageShift) }

// nchunksFor returns the root-directory length covering np pages.
func nchunksFor(np int) int { return (np + chunkSlots - 1) >> chunkShift }

// pageAt returns the page at table index pi, nil for a zero page (absent
// chunk or absent slot). Callers hold the owning pool's mutex; the chunk may
// be shared, which is fine for reads.
func pageAt(t []*pageChunk, pi int) *page {
	if ch := t[pi>>chunkShift]; ch != nil {
		return ch.pages[pi&chunkMask]
	}
	return nil
}

// writableChunk returns a privately owned chunk at directory slot ci of t,
// materializing an absent chunk or duplicating a shared one (retaining its
// pages) first. Callers hold the owning pool's mutex.
func writableChunk(t []*pageChunk, ci int) *pageChunk {
	ch := t[ci]
	if ch == nil {
		ch = newChunk()
		t[ci] = ch
	} else if ch.shared() {
		nc := newChunkCopy(ch)
		ch.release()
		t[ci] = nc
		ch = nc
	}
	return ch
}

// --- per-pool page helpers (callers hold p.mu) ---

// mutFor returns a privately owned mut for page pi: it allocates the chunk
// and the mut on first use, and — mirroring writableChunk/persistWritable —
// duplicates a chunk or mut shared with a fork before handing it out, so
// callers may write line states and pending bytes in place.
func (p *Pool) mutFor(pi int) *pageMut {
	ci := pi >> chunkShift
	mc := p.muts[ci]
	if mc == nil {
		mc = newMutChunk()
		p.muts[ci] = mc
	} else if mc.shared() {
		nc := newMutChunkCopy(mc)
		mc.release()
		p.muts[ci] = nc
		mc = nc
	}
	si := pi & chunkMask
	m := mc.muts[si]
	if m == nil {
		m = newPageMut()
		mc.muts[si] = m
	} else if m.shared() {
		nm := newPageMutCopy(m)
		m.release()
		mc.muts[si] = nm
		m = nm
	}
	return m
}

// mutAt returns the mut for page pi, nil when the page has never been
// stored to or flushed. The result may be shared with a fork: callers that
// intend to write must go through mutFor instead.
func (p *Pool) mutAt(pi int) *pageMut {
	if mc := p.muts[pi>>chunkShift]; mc != nil {
		return mc.muts[pi&chunkMask]
	}
	return nil
}

// volatileWritable returns a privately owned volatile page at index pi,
// unsharing the covering chunk and then materializing a zero page or a
// copy-before-write duplicate as needed.
func (p *Pool) volatileWritable(pi int) *page {
	ch := writableChunk(p.volatile, pi>>chunkShift)
	si := pi & chunkMask
	pg := ch.pages[si]
	if pg == nil {
		pg = newPage()
		ch.pages[si] = pg
		return pg
	}
	if pg.shared() {
		np := newPageCopy(pg)
		pg.release()
		ch.pages[si] = np
		return np
	}
	return pg
}

// persistWritable is volatileWritable for the persistent table. It also
// invalidates the page's cached hash and the covering fingerprint group
// (persistent bytes are about to change) and maintains the incremental
// PageStats composition counters: materializing or unsharing a page is
// exactly the zero→private and shared→private transition.
func (p *Pool) persistWritable(pi int) *page {
	if p.groupOK != nil {
		g := pi / groupPages
		p.groupOK[g] = false
		if p.superOK != nil {
			p.superOK[g/superGroups] = false
		}
	}
	ch := writableChunk(p.persist, pi>>chunkShift)
	si := pi & chunkMask
	pg := ch.pages[si]
	if pg == nil {
		pg = newPage()
		ch.pages[si] = pg
		p.pageZero--
		p.pagePrivate++
		return pg
	}
	if pg.shared() {
		np := newPageCopy(pg)
		pg.release()
		ch.pages[si] = np
		p.pageShared--
		p.pagePrivate++
		return np
	}
	pg.invalidateHash()
	return pg
}

// readVolatile copies [off, off+len(dst)) of the volatile image into dst.
func (p *Pool) readVolatile(off uint64, dst []byte) {
	for len(dst) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		var n int
		if pg := pageAt(p.volatile, pi); pg != nil {
			n = copy(dst, pg.data[po:])
		} else {
			n = copy(dst, zeroPage[po:])
		}
		dst = dst[n:]
		off += uint64(n)
	}
}

// writeVolatile copies src into the volatile image at off, duplicating
// shared chunks and pages copy-before-write.
func (p *Pool) writeVolatile(off uint64, src []byte) {
	for len(src) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		n := copy(p.volatileWritable(pi).data[po:], src)
		src = src[n:]
		off += uint64(n)
	}
}

// readPersist copies [off, off+len(dst)) of the persistent image into dst.
func (p *Pool) readPersist(off uint64, dst []byte) {
	for len(dst) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		var n int
		if pg := pageAt(p.persist, pi); pg != nil {
			n = copy(dst, pg.data[po:])
		} else {
			n = copy(dst, zeroPage[po:])
		}
		dst = dst[n:]
		off += uint64(n)
	}
}

// volatileLine returns the in-place bytes of cache line l. Only valid for
// lines known to have been stored to (their volatile page exists).
func (p *Pool) volatileLine(l uint64) []byte {
	lo := (l & lineMask) * LineSize
	return pageAt(p.volatile, int(l>>lineShift)).data[lo : lo+LineSize]
}

// persistLine returns the in-place (read-only) bytes of cache line l in the
// persistent image, standing in zeros for an absent page.
func (p *Pool) persistLine(l uint64) []byte {
	lo := (l & lineMask) * LineSize
	if pg := pageAt(p.persist, int(l>>lineShift)); pg != nil {
		return pg.data[lo : lo+LineSize]
	}
	return zeroPage[lo : lo+LineSize]
}
