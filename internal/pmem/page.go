package pmem

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// The pool's two byte images (volatile and persistent) are stored as tables
// of fixed-size pages shared copy-on-write between pools. This is what makes
// crash-image materialization O(dirty): Crash copies the page tables and
// bumps refcounts, and only pages subsequently written by either side are
// ever duplicated (see crash.go). A nil table entry stands for an all-zero
// page, so untouched spans of a large pool cost nothing in any pool.
//
// Sharing discipline: a page's refcount counts the table slots (across all
// pools, volatile and persistent tables alike) that reference it. Every
// write goes through a copy-before-write helper that duplicates the page
// when the refcount exceeds one, so a shared page is immutable for as long
// as it is shared — concurrent pools may read it without locks. Refcount
// operations are atomic because distinct pools run under distinct mutexes.
const (
	// PageShift is log2 of PageSize.
	PageShift = 12
	// PageSize is the copy-on-write sharing granularity of pool images.
	PageSize = 1 << PageShift

	pageMask     = PageSize - 1
	linesPerPage = PageSize / LineSize
	lineShift    = 6 // log2(linesPerPage): line index -> page index
	lineMask     = linesPerPage - 1

	// groupPages is the fan-in of the fingerprint's middle Merkle level:
	// one cached group hash covers this many per-page hashes, so an
	// unchanged 512 KiB span costs one 32-byte write per Fingerprint call.
	groupPages = 128
)

// page is one copy-on-write unit of a pool image, plus its cached content
// hash (the fingerprint's leaf level). The hash travels with the page: two
// pools sharing a page also share the work of hashing it.
type page struct {
	refs int32 // atomic: table slots referencing this page

	// hashMu guards hash/hashOK. Concurrent Fingerprint calls on pools
	// sharing the page serialize here; in-place writes (which require
	// refs==1, hence no concurrent reader) invalidate hashOK.
	hashMu sync.Mutex
	hashOK bool
	hash   [32]byte

	data [PageSize]byte
}

// pageMut is the lazily allocated mutable shadow of one page: the cache-line
// state machine and the flush-staged line snapshots. Pools allocate one per
// page actually stored to or flushed, so a mostly-clean pool (a fresh crash
// image, say) carries no per-byte mutable state at all. Muts are never
// shared between pools.
type pageMut struct {
	state   [linesPerPage]lineState
	pending [PageSize]byte
}

var (
	pagePool = sync.Pool{New: func() any { return new(page) }}
	mutPool  = sync.Pool{New: func() any { return new(pageMut) }}

	zeroPage [PageSize]byte // read-only zero bytes for nil-page reads

	zeroPageHashOnce sync.Once
	zeroPageHashVal  [32]byte
)

// newPage returns a zeroed page with refcount 1.
func newPage() *page {
	pg := pagePool.Get().(*page)
	pg.refs = 1
	pg.hashOK = false
	pg.data = [PageSize]byte{}
	return pg
}

// newPageCopy returns a private copy of src with refcount 1. The hash cache
// is not carried over: copies exist to be written to.
func newPageCopy(src *page) *page {
	pg := pagePool.Get().(*page)
	pg.refs = 1
	pg.hashOK = false
	pg.data = src.data
	return pg
}

// retain adds one table-slot reference.
func (pg *page) retain() { atomic.AddInt32(&pg.refs, 1) }

// release drops one table-slot reference, recycling the page through the
// shared page pool when the last reference goes away.
func (pg *page) release() {
	if atomic.AddInt32(&pg.refs, -1) == 0 {
		pagePool.Put(pg)
	}
}

// shared reports whether the page is referenced by more than one table slot.
func (pg *page) shared() bool { return atomic.LoadInt32(&pg.refs) > 1 }

// contentHash returns the page's SHA-256, computing and caching it on first
// use. Safe to call from multiple pools sharing the page.
func (pg *page) contentHash() [32]byte {
	pg.hashMu.Lock()
	if !pg.hashOK {
		pg.hash = sha256.Sum256(pg.data[:])
		pg.hashOK = true
	}
	h := pg.hash
	pg.hashMu.Unlock()
	return h
}

// invalidateHash marks the cached hash stale. Callers hold the owning
// pool's mutex and the page privately (refs==1), so no Fingerprint can be
// reading concurrently; the mutex is still taken to order the write against
// a hash computed while the page was previously shared.
func (pg *page) invalidateHash() {
	pg.hashMu.Lock()
	pg.hashOK = false
	pg.hashMu.Unlock()
}

// zeroPageHash is the cached SHA-256 of an all-zero page — the leaf hash of
// every nil table entry.
func zeroPageHash() [32]byte {
	zeroPageHashOnce.Do(func() { zeroPageHashVal = sha256.Sum256(zeroPage[:]) })
	return zeroPageHashVal
}

// newPageMut returns a mut with all lines clean. The pending area is not
// cleared: its bytes are only ever read after being staged by a flush.
func newPageMut() *pageMut {
	m := mutPool.Get().(*pageMut)
	m.state = [linesPerPage]lineState{}
	return m
}

func putPageMut(m *pageMut) { mutPool.Put(m) }

// tableSet bundles the three per-pool page tables so Release can recycle
// them as a unit: allocating three fresh np-length tables per crash image is
// itself an O(pool) cost the snapshot path avoids by reusing released ones.
type tableSet struct {
	volatile, persist []*page
	muts              []*pageMut
}

var tableSetPool sync.Pool

// newTables returns three all-nil np-length tables, reusing a released set
// when one of sufficient capacity is available (Release nils every entry, so
// recycled tables come back clean).
func newTables(np int) tableSet {
	if v := tableSetPool.Get(); v != nil {
		t := v.(*tableSet)
		if cap(t.volatile) >= np {
			return tableSet{t.volatile[:np], t.persist[:np], t.muts[:np]}
		}
	}
	return tableSet{make([]*page, np), make([]*page, np), make([]*pageMut, np)}
}

// npagesFor returns the page-table length covering size bytes.
func npagesFor(size uint64) int { return int((size + PageSize - 1) >> PageShift) }

// --- per-pool page helpers (callers hold p.mu) ---

// mutFor returns the mut chunk for page pi, allocating it on first use.
func (p *Pool) mutFor(pi int) *pageMut {
	m := p.muts[pi]
	if m == nil {
		m = newPageMut()
		p.muts[pi] = m
	}
	return m
}

// volatileWritable returns a privately owned volatile page at index pi,
// materializing a zero page or a copy-before-write duplicate as needed.
func (p *Pool) volatileWritable(pi int) *page {
	pg := p.volatile[pi]
	if pg == nil {
		pg = newPage()
		p.volatile[pi] = pg
		return pg
	}
	if pg.shared() {
		np := newPageCopy(pg)
		pg.release()
		p.volatile[pi] = np
		return np
	}
	return pg
}

// persistWritable is volatileWritable for the persistent table. It also
// invalidates the page's cached hash and the covering fingerprint group:
// persistent bytes are about to change.
func (p *Pool) persistWritable(pi int) *page {
	if p.groupOK != nil {
		p.groupOK[pi/groupPages] = false
	}
	pg := p.persist[pi]
	if pg == nil {
		pg = newPage()
		p.persist[pi] = pg
		return pg
	}
	if pg.shared() {
		np := newPageCopy(pg)
		pg.release()
		p.persist[pi] = np
		return np
	}
	pg.invalidateHash()
	return pg
}

// readVolatile copies [off, off+len(dst)) of the volatile image into dst.
func (p *Pool) readVolatile(off uint64, dst []byte) {
	for len(dst) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		var n int
		if pg := p.volatile[pi]; pg != nil {
			n = copy(dst, pg.data[po:])
		} else {
			n = copy(dst, zeroPage[po:])
		}
		dst = dst[n:]
		off += uint64(n)
	}
}

// writeVolatile copies src into the volatile image at off, duplicating
// shared pages copy-before-write.
func (p *Pool) writeVolatile(off uint64, src []byte) {
	for len(src) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		n := copy(p.volatileWritable(pi).data[po:], src)
		src = src[n:]
		off += uint64(n)
	}
}

// readPersist copies [off, off+len(dst)) of the persistent image into dst.
func (p *Pool) readPersist(off uint64, dst []byte) {
	for len(dst) > 0 {
		pi, po := int(off>>PageShift), off&pageMask
		var n int
		if pg := p.persist[pi]; pg != nil {
			n = copy(dst, pg.data[po:])
		} else {
			n = copy(dst, zeroPage[po:])
		}
		dst = dst[n:]
		off += uint64(n)
	}
}

// volatileLine returns the in-place bytes of cache line l. Only valid for
// lines known to have been stored to (their volatile page exists).
func (p *Pool) volatileLine(l uint64) []byte {
	lo := (l & lineMask) * LineSize
	return p.volatile[l>>lineShift].data[lo : lo+LineSize]
}

// persistLine returns the in-place (read-only) bytes of cache line l in the
// persistent image, standing in zeros for an absent page.
func (p *Pool) persistLine(l uint64) []byte {
	lo := (l & lineMask) * LineSize
	if pg := p.persist[l>>lineShift]; pg != nil {
		return pg.data[lo : lo+LineSize]
	}
	return zeroPage[lo : lo+LineSize]
}
