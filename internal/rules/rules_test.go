package rules

import (
	"strings"
	"testing"

	"pmdebugger/internal/report"
)

func TestModelStrings(t *testing.T) {
	if Strict.String() != "strict" || Epoch.String() != "epoch" || Strand.String() != "strand" {
		t.Fatal("model names wrong")
	}
	if Strict.Relaxed() || !Epoch.Relaxed() || !Strand.Relaxed() {
		t.Fatal("Relaxed() wrong")
	}
}

func TestForBugCoversAllTypes(t *testing.T) {
	var union Set
	for _, bt := range report.AllBugTypes() {
		bit := ForBug(bt)
		if bit == 0 {
			t.Errorf("no rule bit for %s", bt)
		}
		if union&bit != 0 {
			t.Errorf("rule bit for %s overlaps another type", bt)
		}
		union |= bit
	}
	if union != All {
		t.Errorf("union %b != All %b", union, All)
	}
	if ForBug(report.BugType(99)) != 0 {
		t.Error("unknown type mapped to a rule")
	}
}

func TestDefaultRuleSets(t *testing.T) {
	s := Default(Strict)
	if !s.Has(RuleMultipleOverwrites) || !s.Has(RuleNoDurability) {
		t.Errorf("strict defaults wrong: %b", s)
	}
	if s.Has(RuleRedundantEpochFence) {
		t.Errorf("strict enables epoch rules")
	}
	e := Default(Epoch)
	if e.Has(RuleMultipleOverwrites) {
		t.Errorf("epoch enables multiple overwrites")
	}
	if !e.Has(RuleLackDurabilityInEpoch) || !e.Has(RuleRedundantEpochFence) || !e.Has(RuleRedundantLogging) {
		t.Errorf("epoch defaults wrong: %b", e)
	}
	st := Default(Strand)
	if !st.Has(RuleLackOrderingInStrands) || st.Has(RuleMultipleOverwrites) {
		t.Errorf("strand defaults wrong: %b", st)
	}
}

func TestParseOrderConfig(t *testing.T) {
	cfg := `
# comment
order value before key
order a before b in update_fn
`
	specs, err := ParseOrderConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %v", specs)
	}
	if specs[0] != (OrderSpec{Before: "value", After: "key"}) {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1] != (OrderSpec{Before: "a", After: "b", Scope: "update_fn"}) {
		t.Errorf("spec 1 = %+v", specs[1])
	}
}

func TestParseOrderConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"order value key",
		"order x after y",
		"nonsense line here now",
	} {
		if _, err := ParseOrderConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	specs := []OrderSpec{
		{Before: "v", After: "k"},
		{Before: "x", After: "y", Scope: "fn"},
	}
	out := FormatOrderConfig(specs)
	got, err := ParseOrderConfig(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != specs[0] || got[1] != specs[1] {
		t.Fatalf("round trip = %v", got)
	}
}
