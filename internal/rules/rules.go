// Package rules defines detection-rule configuration shared by detectors:
// which of the paper's nine generalized rules are active, which persistency
// model the program under test uses, and the programmer-supplied persist
// order specifications (§4.5, §8) with their configuration-file syntax.
package rules

import "pmdebugger/internal/report"

// Model is the persistency model of the program under test (§2.3).
type Model uint8

// The three persistency models.
const (
	// Strict unifies consistency and persistency: any two persists are
	// ordered by volatile memory order.
	Strict Model = iota
	// Epoch separates execution into persist epochs delineated by barriers;
	// persists within an epoch may reorder.
	Epoch
	// Strand minimizes persist constraints: strands are concurrent unless
	// explicitly joined.
	Strand
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Strict:
		return "strict"
	case Epoch:
		return "epoch"
	case Strand:
		return "strand"
	default:
		return "model(?)"
	}
}

// Relaxed reports whether the model is one of the relaxed persistency
// models (epoch or strand).
func (m Model) Relaxed() bool { return m == Epoch || m == Strand }

// Set is a bitmask of enabled detection rules. Each rule corresponds to one
// bug type of Table 6.
type Set uint32

// The rule bits, one per bug type.
const (
	RuleNoDurability Set = 1 << iota
	RuleMultipleOverwrites
	RuleNoOrder
	RuleRedundantFlush
	RuleFlushNothing
	RuleRedundantLogging
	RuleLackDurabilityInEpoch
	RuleRedundantEpochFence
	RuleLackOrderingInStrands
	RuleCrossFailure
)

// All enables every rule.
const All Set = RuleNoDurability | RuleMultipleOverwrites | RuleNoOrder |
	RuleRedundantFlush | RuleFlushNothing | RuleRedundantLogging |
	RuleLackDurabilityInEpoch | RuleRedundantEpochFence |
	RuleLackOrderingInStrands | RuleCrossFailure

// Has reports whether rule r is enabled.
func (s Set) Has(r Set) bool { return s&r != 0 }

// ForBug maps a bug type to its rule bit.
func ForBug(t report.BugType) Set {
	switch t {
	case report.NoDurability:
		return RuleNoDurability
	case report.MultipleOverwrites:
		return RuleMultipleOverwrites
	case report.NoOrderGuarantee:
		return RuleNoOrder
	case report.RedundantFlush:
		return RuleRedundantFlush
	case report.FlushNothing:
		return RuleFlushNothing
	case report.RedundantLogging:
		return RuleRedundantLogging
	case report.LackDurabilityInEpoch:
		return RuleLackDurabilityInEpoch
	case report.RedundantEpochFence:
		return RuleRedundantEpochFence
	case report.LackOrderingInStrands:
		return RuleLackOrderingInStrands
	case report.CrossFailureSemantic:
		return RuleCrossFailure
	default:
		return 0
	}
}

// Default returns the rule set PMDebugger enables for a given persistency
// model: the five common rules always; the epoch rules under the epoch
// model; the strand rule under the strand model. Multiple-overwrites is
// disabled under relaxed models because overwriting before durability is
// legal there (§4.5).
func Default(m Model) Set {
	s := RuleNoDurability | RuleNoOrder | RuleRedundantFlush | RuleFlushNothing
	switch m {
	case Strict:
		s |= RuleMultipleOverwrites
	case Epoch:
		s |= RuleRedundantLogging | RuleLackDurabilityInEpoch | RuleRedundantEpochFence
	case Strand:
		s |= RuleLackOrderingInStrands
	}
	return s
}
