package rules

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// OrderSpec is one programmer-supplied persist-order requirement: the
// variable named Before must become durable strictly before the variable
// named After. Names refer to ranges registered with pmem.RegisterNamed
// (the paper maps variables to addresses via symbol tables or intercepted
// allocations, §4.5).
//
// Scope optionally restricts the requirement to a region of the program:
// when non-empty, the requirement is only checked between markers
// "scope:<name>:begin" and "scope:<name>:end" registered by the program.
// This models the paper's "at which application function" qualifier.
type OrderSpec struct {
	Before string
	After  string
	Scope  string
}

// String renders the spec in configuration-file syntax.
func (o OrderSpec) String() string {
	if o.Scope != "" {
		return fmt.Sprintf("order %s before %s in %s", o.Before, o.After, o.Scope)
	}
	return fmt.Sprintf("order %s before %s", o.Before, o.After)
}

// ParseOrderConfig reads the debugger configuration file of §4.5: one
// requirement per line,
//
//	order <X> before <Y> [in <function>]
//
// with '#' comments and blank lines ignored.
func ParseOrderConfig(r io.Reader) ([]OrderSpec, error) {
	var specs []OrderSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 4 && fields[0] == "order" && fields[2] == "before":
			specs = append(specs, OrderSpec{Before: fields[1], After: fields[3]})
		case len(fields) == 6 && fields[0] == "order" && fields[2] == "before" && fields[4] == "in":
			specs = append(specs, OrderSpec{Before: fields[1], After: fields[3], Scope: fields[5]})
		default:
			return nil, fmt.Errorf("order config line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("order config: %w", err)
	}
	return specs, nil
}

// FormatOrderConfig renders specs back into configuration-file syntax.
func FormatOrderConfig(specs []OrderSpec) string {
	var sb strings.Builder
	sb.WriteString("# persist-order requirements (X must be durable before Y)\n")
	for _, s := range specs {
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
