package stats

import (
	"strings"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/trace"
)

func ev(kind trace.Kind, addr, size uint64) trace.Event {
	return trace.Event{Kind: kind, Addr: addr, Size: size}
}

func TestDistanceOne(t *testing.T) {
	c := New()
	c.HandleEvent(ev(trace.KindStore, 0x100, 8))
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	c.HandleEvent(ev(trace.KindEnd, 0, 0))
	r := c.Result()
	if r.DistanceBuckets[0] != 1 {
		t.Fatalf("distance buckets = %v", r.DistanceBuckets)
	}
	if r.DistancePercent(1) != 100 {
		t.Fatalf("d=1 percent = %v", r.DistancePercent(1))
	}
}

func TestDistanceTwoFigure3(t *testing.T) {
	// Fig. 3: store to B[1]; fence; write back B later; fence → distance 2.
	c := New()
	c.HandleEvent(ev(trace.KindStore, 0x100, 8)) // B[1]
	c.HandleEvent(ev(trace.KindFence, 0, 0))     // nearest fence: no CLF yet
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	r := c.Result()
	if r.DistanceBuckets[1] != 1 {
		t.Fatalf("distance buckets = %v", r.DistanceBuckets)
	}
}

func TestDistanceOverflowAndNeverGuaranteed(t *testing.T) {
	c := New()
	c.HandleEvent(ev(trace.KindStore, 0x100, 8))
	for i := 0; i < 7; i++ {
		c.HandleEvent(ev(trace.KindFence, 0, 0))
	}
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0)) // distance 8 > 5
	c.HandleEvent(ev(trace.KindStore, 0x200, 8))
	c.HandleEvent(ev(trace.KindEnd, 0, 0)) // never guaranteed
	r := c.Result()
	if r.DistanceOver != 1 || r.NeverGuaranteed != 1 {
		t.Fatalf("over=%d never=%d", r.DistanceOver, r.NeverGuaranteed)
	}
}

func TestCollectiveVsDispersed(t *testing.T) {
	c := New()
	// Collective: two stores in one line, one covering flush.
	c.HandleEvent(ev(trace.KindStore, 0x100, 8))
	c.HandleEvent(ev(trace.KindStore, 0x108, 8))
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	// Dispersed: stores to two lines, flush covers only one.
	c.HandleEvent(ev(trace.KindStore, 0x200, 8))
	c.HandleEvent(ev(trace.KindStore, 0x400, 8))
	c.HandleEvent(ev(trace.KindFlush, 0x200, 64))
	c.HandleEvent(ev(trace.KindFlush, 0x400, 64)) // closes an empty interval: not counted
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	r := c.Result()
	if r.Collective != 1 || r.Dispersed != 1 {
		t.Fatalf("collective=%d dispersed=%d", r.Collective, r.Dispersed)
	}
	if got := r.CollectivePercent(); got != 50 {
		t.Fatalf("collective%% = %v", got)
	}
}

func TestMixPercent(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.HandleEvent(ev(trace.KindStore, uint64(0x100+i*8), 8))
	}
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	s, f, fe := c.Result().MixPercent()
	if s != 70 || f != 20 || fe != 10 {
		t.Fatalf("mix = %v %v %v", s, f, fe)
	}
}

func TestDistanceLE(t *testing.T) {
	c := New()
	for i := 0; i < 4; i++ {
		c.HandleEvent(ev(trace.KindStore, uint64(0x100+64*i), 8))
		c.HandleEvent(ev(trace.KindFlush, uint64(0x100+64*i), 64))
		c.HandleEvent(ev(trace.KindFence, 0, 0))
	}
	// one distance-2 store
	c.HandleEvent(ev(trace.KindStore, 0x800, 8))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	c.HandleEvent(ev(trace.KindFlush, 0x800, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	r := c.Result()
	if got := r.DistanceLE(1); got != 80 {
		t.Fatalf("LE(1) = %v", got)
	}
	if got := r.DistanceLE(3); got != 100 {
		t.Fatalf("LE(3) = %v", got)
	}
}

func TestRowAndHeaderRender(t *testing.T) {
	c := New()
	c.HandleEvent(ev(trace.KindStore, 0x100, 8))
	c.HandleEvent(ev(trace.KindFlush, 0x100, 64))
	c.HandleEvent(ev(trace.KindFence, 0, 0))
	row := c.Result().Row("b_tree")
	if !strings.Contains(row, "b_tree") {
		t.Fatalf("row = %q", row)
	}
	if len(Header()) == 0 {
		t.Fatal("empty header")
	}
}

func TestAgainstRealWorkload(t *testing.T) {
	// A persist-per-store loop is pure pattern 1 / collective.
	pm := pmem.New(1 << 16)
	c := New()
	pm.Attach(c)
	ctx := pm.Ctx()
	base := pm.Base()
	for i := 0; i < 100; i++ {
		a := base + uint64(i)*64
		ctx.Store64(a, uint64(i))
		ctx.Persist(a, 8)
	}
	pm.End()
	r := c.Result()
	if r.DistancePercent(1) != 100 {
		t.Fatalf("d=1 = %v", r.DistancePercent(1))
	}
	if r.CollectivePercent() != 100 {
		t.Fatalf("collective = %v", r.CollectivePercent())
	}
	if r.NeverGuaranteed != 0 {
		t.Fatalf("never = %d", r.NeverGuaranteed)
	}
}

func TestMRULocality(t *testing.T) {
	c := New()
	// Three CLF intervals: stores a, b, c each closed by their own flush.
	// Each flush persists only the store of its own (current) interval, so
	// every effective flush is MRU-local.
	for i := 0; i < 3; i++ {
		a := uint64(0x1000 + i*64)
		c.HandleEvent(trace.Event{Kind: trace.KindStore, Addr: a, Size: 8})
		c.HandleEvent(trace.Event{Kind: trace.KindFlush, Addr: a, Size: 64})
	}
	r := c.Result()
	if r.EffectiveFlushes != 3 || r.MRULocalFlushes != 3 {
		t.Fatalf("local stream: effective=%d mru=%d, want 3/3", r.EffectiveFlushes, r.MRULocalFlushes)
	}
	if got := r.MRULocalPercent(); got != 100 {
		t.Fatalf("MRULocalPercent = %v, want 100", got)
	}

	// A flush reaching back three CLF intervals is effective but not local.
	c = New()
	c.HandleEvent(trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 8})
	for i := 1; i <= 3; i++ {
		a := uint64(0x2000 + i*64)
		c.HandleEvent(trace.Event{Kind: trace.KindStore, Addr: a, Size: 8})
		c.HandleEvent(trace.Event{Kind: trace.KindFlush, Addr: a, Size: 64})
	}
	c.HandleEvent(trace.Event{Kind: trace.KindFlush, Addr: 0x1000, Size: 64})
	r = c.Result()
	if r.EffectiveFlushes != 4 || r.MRULocalFlushes != 3 {
		t.Fatalf("distant stream: effective=%d mru=%d, want 4/3", r.EffectiveFlushes, r.MRULocalFlushes)
	}

	// A flush hitting nothing open is not effective.
	c = New()
	c.HandleEvent(trace.Event{Kind: trace.KindFlush, Addr: 0x3000, Size: 64})
	if r := c.Result(); r.EffectiveFlushes != 0 {
		t.Fatalf("empty flush counted as effective: %+v", r)
	}
}
