// Package stats implements the PM-program characterization study of §3
// (Fig. 2): the distribution of store-to-guaranteeing-fence distances, the
// classification of CLF intervals into collective vs. dispersed writebacks,
// and the instruction mix of the three fundamental operations. It plays the
// role of the Valgrind characterization tool the paper built to motivate
// PMDebugger's design.
package stats

import (
	"fmt"
	"strings"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/trace"
)

// MaxDistance is the largest individually bucketed distance; greater
// distances land in the ">MaxDistance" bucket, as in Fig. 2a.
const MaxDistance = 5

// Characterizer consumes an instruction stream and accumulates the §3
// metrics. It implements trace.Handler.
type Characterizer struct {
	// open stores not yet guaranteed durable.
	open []openStore
	// current CLF interval state.
	curStores []intervals.Range
	fences    uint64
	clfs      uint64 // closed CLF intervals (monotonic)

	result Result
}

type openStore struct {
	rng     intervals.Range
	atFence uint64
	atCLF   uint64 // CLF interval counter at store time
	flushed bool
}

// Result holds the accumulated characterization.
type Result struct {
	// Stores, Flushes, Fences are the instruction counts (Fig. 2c).
	Stores, Flushes, Fences uint64
	// DistanceBuckets[d-1] counts stores with distance d (1..MaxDistance);
	// DistanceOver counts distances > MaxDistance. Stores never guaranteed
	// durable are counted in NeverGuaranteed.
	DistanceBuckets [MaxDistance]uint64
	DistanceOver    uint64
	NeverGuaranteed uint64
	// Collective and Dispersed count CLF intervals by writeback class
	// (Fig. 2b); empty intervals are not counted.
	Collective, Dispersed uint64
	// EffectiveFlushes counts writebacks that persist at least one open
	// store; MRULocalFlushes counts those whose persisted stores all come
	// from the current or previous CLF interval. Their ratio is the Fig. 2a
	// locality a most-recently-used interval probe can exploit.
	MRULocalFlushes, EffectiveFlushes uint64
}

// New returns an empty characterizer.
func New() *Characterizer { return &Characterizer{} }

// HandleEvent consumes one instruction.
func (c *Characterizer) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		c.result.Stores++
		r := intervals.R(ev.Addr, ev.Size)
		c.open = append(c.open, openStore{rng: r, atFence: c.fences, atCLF: c.clfs})
		c.curStores = append(c.curStores, r)

	case trace.KindFlush:
		c.result.Flushes++
		fr := intervals.R(ev.Addr, ev.Size)
		hitAny, mruOnly := false, true
		for i := range c.open {
			if !c.open[i].flushed && c.open[i].rng.Overlaps(fr) {
				c.open[i].flushed = true
				hitAny = true
				if c.clfs-c.open[i].atCLF > 1 {
					mruOnly = false
				}
			}
		}
		if hitAny {
			c.result.EffectiveFlushes++
			if mruOnly {
				c.result.MRULocalFlushes++
			}
		}
		// Close the current CLF interval: collective when this single
		// writeback covers every location updated in the interval.
		if len(c.curStores) > 0 {
			covered := true
			for _, r := range c.curStores {
				if !fr.Contains(r) {
					covered = false
					break
				}
			}
			if covered {
				c.result.Collective++
			} else {
				c.result.Dispersed++
			}
			c.curStores = c.curStores[:0]
			c.clfs++
		}

	case trace.KindFence:
		c.result.Fences++
		c.fences++
		kept := c.open[:0]
		for _, s := range c.open {
			if s.flushed {
				d := c.fences - s.atFence
				if d >= 1 && d <= MaxDistance {
					c.result.DistanceBuckets[d-1]++
				} else {
					c.result.DistanceOver++
				}
				continue
			}
			kept = append(kept, s)
		}
		c.open = kept

	case trace.KindEnd:
		c.result.NeverGuaranteed += uint64(len(c.open))
		c.open = c.open[:0]
	}
}

// Result returns the accumulated metrics.
func (c *Characterizer) Result() Result {
	r := c.result
	r.NeverGuaranteed += uint64(len(c.open))
	return r
}

// guaranteed returns the number of stores whose durability was guaranteed.
func (r Result) guaranteed() uint64 {
	total := r.DistanceOver
	for _, n := range r.DistanceBuckets {
		total += n
	}
	return total
}

// DistancePercent returns the percentage of guaranteed stores with the
// given distance (1..MaxDistance) or, for d > MaxDistance, the overflow
// bucket.
func (r Result) DistancePercent(d int) float64 {
	g := r.guaranteed()
	if g == 0 {
		return 0
	}
	var n uint64
	if d >= 1 && d <= MaxDistance {
		n = r.DistanceBuckets[d-1]
	} else {
		n = r.DistanceOver
	}
	return 100 * float64(n) / float64(g)
}

// DistanceLE returns the percentage of guaranteed stores with distance <= d.
func (r Result) DistanceLE(d int) float64 {
	g := r.guaranteed()
	if g == 0 {
		return 0
	}
	var n uint64
	for i := 0; i < d && i < MaxDistance; i++ {
		n += r.DistanceBuckets[i]
	}
	return 100 * float64(n) / float64(g)
}

// MRULocalPercent returns the share of effective writebacks answerable from
// the two most recent CLF intervals — the locality exploited by the
// detector's MRU interval probe (core/index.go).
func (r Result) MRULocalPercent() float64 {
	if r.EffectiveFlushes == 0 {
		return 0
	}
	return 100 * float64(r.MRULocalFlushes) / float64(r.EffectiveFlushes)
}

// CollectivePercent returns the Fig. 2b collective-writeback share.
func (r Result) CollectivePercent() float64 {
	total := r.Collective + r.Dispersed
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Collective) / float64(total)
}

// MixPercent returns the Fig. 2c shares of stores, writebacks and fences.
func (r Result) MixPercent() (store, flush, fence float64) {
	total := r.Stores + r.Flushes + r.Fences
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(r.Stores) / float64(total),
		100 * float64(r.Flushes) / float64(total),
		100 * float64(r.Fences) / float64(total)
}

// Row formats the benchmark's characterization as one table row.
func (r Result) Row(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", name)
	for d := 1; d <= MaxDistance; d++ {
		fmt.Fprintf(&sb, " %6.1f", r.DistancePercent(d))
	}
	fmt.Fprintf(&sb, " %6.1f", r.DistancePercent(MaxDistance+1))
	fmt.Fprintf(&sb, " | %9.1f", r.CollectivePercent())
	s, f, fe := r.MixPercent()
	fmt.Fprintf(&sb, " | %6.1f %6.1f %6.1f", s, f, fe)
	return sb.String()
}

// Header returns the column header matching Row.
func Header() string {
	return fmt.Sprintf("%-14s %6s %6s %6s %6s %6s %6s | %9s | %6s %6s %6s",
		"benchmark", "d=1", "d=2", "d=3", "d=4", "d=5", "d>5",
		"collect.%", "store%", "clf%", "fence%")
}
