// Package pmdk is a from-scratch miniature of Intel PMDK's libpmemobj: a
// persistent object pool with a root object, an undo-log transaction
// mechanism mapped onto the epoch persistency model (TX_BEGIN/TX_END =
// epoch begin/end, §2.3), and the persist primitives the PMDK example
// workloads use.
//
// The transaction protocol is crash consistent under the pmem cache-line
// model and is shaped so that a clean transaction contains exactly one
// fence inside its epoch section:
//
//   - Add (TX_ADD) snapshots the old bytes into the undo log and flushes the
//     log lines without a fence; entries carry a generation number and a
//     checksum, so recovery detects torn entries without per-add drains —
//     the same lazy-drain design as libpmemobj.
//   - Commit flushes every modified data range, issues the single data
//     fence, and closes the epoch; the log is then retired (generation
//     bump + fence) by the runtime after the epoch section, where it
//     belongs to the library, not to the program under test.
//
// A crash before the commit fence rolls the transaction back during Open;
// a crash after it but before the generation bump also rolls back, which is
// exactly libpmemobj's semantics (a transaction commits only when its log
// is retired).
package pmdk

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/trace"
)

// Pool layout constants.
const (
	poolMagic = 0x504d444b504f4f4c // "PMDKPOOL"

	hdrMagic    = 0  // u64
	hdrRootOff  = 8  // u64
	hdrRootSize = 16 // u64
	hdrLastGen  = 24 // u64: generation of the last retired transaction
	hdrLogOff   = 32 // u64
	hdrLogSize  = 40 // u64
	hdrSize     = 64

	// DefaultLogSize is the undo-log area size.
	DefaultLogSize = 1 << 16
)

// Pool is a persistent object pool over a pmem.Pool.
type Pool struct {
	pm  *pmem.Pool
	ctx *pmem.Ctx

	rootOff  uint64
	rootSize uint64
	logOff   uint64
	logSize  uint64
	lastGen  uint64

	strictLog bool
}

// SetStrictLog selects the undo-log durability discipline.
//
// The default (lazy) discipline flushes log entries without draining and
// relies on checksums to detect torn entries — PMDK's ulog design, and the
// reason a clean transaction has exactly one fence in its epoch. Its cost:
// under an adversary that persists an arbitrary subset of issued writebacks
// at the crash (pmem.CrashRandomPending), a data line can become durable
// while its undo entry tears, leaving the transaction unrecoverable — the
// bug class systematic crash testing (package crashtest) exposes, and that
// Agamotto-style tools reported in real PM libraries.
//
// The strict discipline drains the log after every new snapshot, which is
// sound under any crash adversary but adds a fence per snapshot — which
// PMDebugger's redundant-epoch-fence rule then rightly reports as a
// performance bug. The tension between the two is the durability/
// performance trade-off the paper's performance rules exist to police.
func (p *Pool) SetStrictLog(strict bool) { p.strictLog = strict }

// Create formats pm as a pmdk pool with a root object of rootSize bytes and
// persists the layout header.
func Create(pm *pmem.Pool, rootSize uint64) (*Pool, error) {
	if rootSize == 0 {
		return nil, errors.New("pmdk: root size must be non-zero")
	}
	p := &Pool{pm: pm, ctx: pm.Ctx()}
	base := pm.Base()

	// Reserve header and log with the pool allocator so heap allocations
	// cannot collide with them.
	hdr := pm.Alloc(hdrSize)
	if hdr != base {
		return nil, fmt.Errorf("pmdk: header not at pool base (%#x)", hdr)
	}
	p.logOff = pm.Alloc(DefaultLogSize)
	p.logSize = DefaultLogSize
	p.rootOff = pm.Alloc(rootSize)
	p.rootSize = rootSize

	c := p.ctx.At(trace.RegisterSite("pmdk.Create"))
	c.Store64(base+hdrRootOff, p.rootOff)
	c.Store64(base+hdrRootSize, p.rootSize)
	c.Store64(base+hdrLastGen, 0)
	c.Store64(base+hdrLogOff, p.logOff)
	c.Store64(base+hdrLogSize, p.logSize)
	// Zero the first log entry header so recovery of a fresh pool is a
	// no-op.
	c.Store64(p.logOff, 0)
	// Magic last: a pool is valid only once fully initialized.
	c.Flush(base, hdrSize)
	c.Flush(p.logOff, 8)
	c.Fence()
	c.Store64(base+hdrMagic, poolMagic)
	c.Persist(base+hdrMagic, 8)
	return p, nil
}

// Open attaches to a previously created pool (typically after a simulated
// crash) and runs undo-log recovery.
func Open(pm *pmem.Pool) (*Pool, error) {
	p := &Pool{pm: pm, ctx: pm.Ctx()}
	base := pm.Base()
	c := p.ctx
	if c.Load64(base+hdrMagic) != poolMagic {
		return nil, errors.New("pmdk: bad pool magic (pool never fully created)")
	}
	p.rootOff = c.Load64(base + hdrRootOff)
	p.rootSize = c.Load64(base + hdrRootSize)
	p.logOff = c.Load64(base + hdrLogOff)
	p.logSize = c.Load64(base + hdrLogSize)
	p.lastGen = c.Load64(base + hdrLastGen)
	if err := p.recover(); err != nil {
		return nil, err
	}
	return p, nil
}

// PM returns the underlying simulated persistent memory pool.
func (p *Pool) PM() *pmem.Pool { return p.pm }

// Ctx returns the pool's default instrumented context.
func (p *Pool) Ctx() *pmem.Ctx { return p.ctx }

// Root returns the address and size of the root object.
func (p *Pool) Root() (addr, size uint64) { return p.rootOff, p.rootSize }

// Alloc reserves size bytes of heap space. Allocation metadata is volatile:
// persistent structures must be reachable from the root object, as in
// libpmemobj's reachability discipline.
func (p *Pool) Alloc(size uint64) uint64 { return p.pm.Alloc(size) }

// Free returns heap space.
func (p *Pool) Free(addr, size uint64) { p.pm.Free(addr, size) }

// Persist is pmemobj_persist: flush the covering lines and fence.
func (p *Pool) Persist(addr, size uint64) { p.ctx.Persist(addr, size) }

// Flush is pmemobj_flush: flush without draining.
func (p *Pool) Flush(addr, size uint64) { p.ctx.Flush(addr, size) }

// Drain is pmemobj_drain: fence only.
func (p *Pool) Drain() { p.ctx.Fence() }

// undo log entry layout: header {size u64 (0 = terminator), addr u64,
// gen u64, csum u64} followed by size bytes of old data, padded to 8.
const entryHdrSize = 32

func entryPad(size uint64) uint64 { return (size + 7) &^ 7 }

func csum(gen, addr, size uint64, data []byte) uint64 {
	// FNV-1a over the header fields and payload.
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, x := range b {
			h ^= uint64(x)
			h *= prime
		}
	}
	mix(gen)
	mix(addr)
	mix(size)
	for _, x := range data {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

// recover applies any in-flight transaction's undo log. Entries of the
// in-flight generation (lastGen+1) with valid checksums are applied in
// reverse order; the generation is then retired so stale entries are never
// reapplied.
func (p *Pool) recover() error {
	c := p.ctx.At(trace.RegisterSite("pmdk.recover"))
	inflight := p.lastGen + 1

	type entry struct {
		addr, size uint64
		data       []byte
	}
	var entries []entry
	off := p.logOff
	for off+entryHdrSize <= p.logOff+p.logSize {
		size := c.Load64(off)
		if size == 0 {
			break
		}
		addr := c.Load64(off + 8)
		gen := c.Load64(off + 16)
		sum := c.Load64(off + 24)
		if off+entryHdrSize+entryPad(size) > p.logOff+p.logSize {
			break // torn tail
		}
		data := c.LoadBytes(off+entryHdrSize, size)
		if gen != inflight || csum(gen, addr, size, data) != sum {
			break // stale or torn entry terminates the valid prefix
		}
		entries = append(entries, entry{addr: addr, size: size, data: data})
		off += entryHdrSize + entryPad(size)
	}

	// Apply in reverse: the oldest snapshot of a range wins.
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c.StoreBytes(e.addr, e.data)
		c.Flush(e.addr, e.size)
	}
	if len(entries) > 0 {
		c.Fence()
	}

	// Retire the in-flight generation and reset the log.
	p.lastGen = inflight
	c.Store64(p.pm.Base()+hdrLastGen, p.lastGen)
	c.Store64(p.logOff, 0)
	c.Flush(p.pm.Base()+hdrLastGen, 8)
	c.Flush(p.logOff, 8)
	c.Fence()
	return nil
}
