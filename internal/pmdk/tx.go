package pmdk

import (
	"fmt"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/trace"
)

// Tx is an undo-log transaction (TX_BEGIN .. TX_END). All mutations of
// persistent state inside the transaction should go through Add + the Tx
// store methods; Commit makes them durable atomically.
type Tx struct {
	p   *Pool
	c   *pmem.Ctx
	gen uint64

	cursor   uint64 // next free byte in the log area
	snapped  []intervals.Range
	modified []intervals.Range
	done     bool
}

var (
	siteTxAdd    = trace.RegisterSite("pmdk.Tx.Add")
	siteTxCommit = trace.RegisterSite("pmdk.Tx.Commit")
	siteTxAbort  = trace.RegisterSite("pmdk.Tx.Abort")
)

// Begin starts a transaction. Transactions on a pool must not be
// interleaved (libpmemobj scopes them per thread; the workloads here are
// transaction-at-a-time). Nested Begin is expressed by the pmem layer's
// epoch flattening: use Begin only at the outermost level and plain method
// calls inside.
func (p *Pool) Begin() *Tx {
	tx := &Tx{p: p, c: p.ctx, gen: p.lastGen + 1, cursor: p.logOff}
	tx.c.EpochBegin()
	return tx
}

// Added reports whether the range is already covered by a snapshot in this
// transaction.
func (tx *Tx) Added(addr, size uint64) bool {
	r := intervals.R(addr, size)
	for _, s := range tx.snapped {
		if s.Contains(r) {
			return true
		}
	}
	return false
}

// Add is TX_ADD: snapshot the current bytes of [addr, addr+size) into the
// undo log. A range fully covered by an earlier snapshot is skipped
// silently, like libpmemobj's range-tree deduplication — no log write
// happens, so no log-add event is emitted. A partially overlapping range is
// logged in full, re-snapshotting the overlap; that written redundancy is
// what the redundant-logging rule (§5.2) observes.
func (tx *Tx) Add(addr, size uint64) {
	if tx.done {
		panic("pmdk: Add on finished transaction")
	}
	if tx.Added(addr, size) {
		return
	}
	c := tx.c.At(siteTxAdd)
	c.TxLogAdd(addr, size)
	tx.snapped = append(tx.snapped, intervals.R(addr, size))

	need := entryHdrSize + entryPad(size) + 8 // entry + next terminator
	if tx.cursor+need > tx.p.logOff+tx.p.logSize {
		panic(fmt.Sprintf("pmdk: undo log exhausted (%d bytes needed)", need))
	}
	old := c.LoadBytes(addr, size)
	c.Store64(tx.cursor, size)
	c.Store64(tx.cursor+8, addr)
	c.Store64(tx.cursor+16, tx.gen)
	c.Store64(tx.cursor+24, csum(tx.gen, addr, size, old))
	c.StoreBytes(tx.cursor+entryHdrSize, old)
	next := tx.cursor + entryHdrSize + entryPad(size)
	c.Store64(next, 0) // terminator after the tail
	// Flush the entry and terminator. In the default lazy discipline no
	// fence is issued: checksums make torn entries detectable and the drain
	// is deferred to the commit fence. See Pool.SetStrictLog for the sound-
	// under-any-adversary alternative.
	c.Flush(tx.cursor, next+8-tx.cursor)
	if tx.p.strictLog {
		c.Fence()
	}
	tx.cursor = next
}

// note records a modified range for the commit-time flush. Only the most
// recent range is checked for containment (the common adjacent-field
// pattern); full deduplication happens in the merge at commit.
func (tx *Tx) note(addr, size uint64) {
	r := intervals.R(addr, size)
	if n := len(tx.modified); n > 0 && tx.modified[n-1].Contains(r) {
		return
	}
	tx.modified = append(tx.modified, r)
}

// Store64 writes a 64-bit value inside the transaction.
func (tx *Tx) Store64(addr uint64, v uint64) {
	tx.c.Store64(addr, v)
	tx.note(addr, 8)
}

// Store32 writes a 32-bit value inside the transaction.
func (tx *Tx) Store32(addr uint64, v uint32) {
	tx.c.Store32(addr, v)
	tx.note(addr, 4)
}

// Store8 writes one byte inside the transaction.
func (tx *Tx) Store8(addr uint64, v uint8) {
	tx.c.Store8(addr, v)
	tx.note(addr, 1)
}

// StoreBytes writes a byte slice inside the transaction.
func (tx *Tx) StoreBytes(addr uint64, data []byte) {
	tx.c.StoreBytes(addr, data)
	tx.note(addr, uint64(len(data)))
}

// Set is the common Add-then-store idiom for 64-bit fields.
func (tx *Tx) Set(addr uint64, v uint64) {
	tx.Add(addr, 8)
	tx.Store64(addr, v)
}

// SetBytes is the Add-then-store idiom for byte ranges.
func (tx *Tx) SetBytes(addr uint64, data []byte) {
	tx.Add(addr, uint64(len(data)))
	tx.StoreBytes(addr, data)
}

// Commit is TX_END: flush every range modified in the transaction, issue
// the epoch's single fence, close the epoch, and retire the undo log.
func (tx *Tx) Commit() {
	if tx.done {
		panic("pmdk: Commit on finished transaction")
	}
	tx.done = true
	c := tx.c.At(siteTxCommit)

	// Flush modified data ranges, deduplicating cache lines so the clean
	// path never re-flushes a line (which detectors would rightly flag).
	tx.flushRanges(c, tx.modified)
	c.Fence()
	c.EpochEnd()
	tx.retire(c)
}

// Abort rolls the transaction back in place from the undo log snapshots and
// retires the log. The epoch closes with its single fence after the
// rollback stores are flushed.
func (tx *Tx) Abort() {
	if tx.done {
		panic("pmdk: Abort on finished transaction")
	}
	tx.done = true
	c := tx.c.At(siteTxAbort)

	// Walk the log backwards applying snapshots.
	type ent struct{ addr, size, off uint64 }
	var ents []ent
	off := tx.p.logOff
	for off < tx.cursor {
		size := c.Load64(off)
		addr := c.Load64(off + 8)
		ents = append(ents, ent{addr: addr, size: size, off: off})
		off += entryHdrSize + entryPad(size)
	}
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		old := c.LoadBytes(e.off+entryHdrSize, e.size)
		c.StoreBytes(e.addr, old)
		c.Flush(e.addr, e.size)
	}
	c.Fence()
	c.EpochEnd()
	tx.retire(c)
}

// retire bumps the durable generation and resets the log head. This is
// library maintenance after the epoch section (see the package comment for
// why it sits outside the epoch).
func (tx *Tx) retire(c *pmem.Ctx) {
	tx.p.lastGen = tx.gen
	c.Store64(tx.p.pm.Base()+hdrLastGen, tx.p.lastGen)
	c.Store64(tx.p.logOff, 0)
	c.Flush(tx.p.pm.Base()+hdrLastGen, 8)
	c.Flush(tx.p.logOff, 8)
	c.Fence()
}

// flushRanges flushes the cache lines covering the ranges, each line once.
func (tx *Tx) flushRanges(c *pmem.Ctx, rs []intervals.Range) {
	if len(rs) == 0 {
		return
	}
	merged := make([]intervals.Range, len(rs))
	copy(merged, rs)
	merged = intervals.Merge(merged)
	var lines []intervals.Range
	for _, r := range merged {
		lines = append(lines, intervals.SpanLines(r))
	}
	lines = intervals.Merge(lines)
	for _, l := range lines {
		c.Flush(l.Addr, l.Size)
	}
}
