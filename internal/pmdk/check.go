package pmdk

import (
	"errors"
	"fmt"
)

// CheckResult is the outcome of a pool consistency check, the analog of
// `pmempool check`.
type CheckResult struct {
	// Consistent is true when the pool can be opened and recovered safely.
	Consistent bool
	// InFlightTx is true when an uncommitted transaction's undo log is
	// present (recovery will roll it back).
	InFlightTx bool
	// LogEntries is the number of valid undo-log entries found.
	LogEntries int
	// Problems lists everything wrong with the pool layout.
	Problems []string
}

// Check validates a pool image's metadata without modifying it: the magic,
// the layout header, the undo-log framing and entry checksums. It is safe
// to run on a crashed image before Open.
func Check(pm interface {
	Base() uint64
	Size() uint64
	Load(addr, size uint64) []byte
}) (*CheckResult, error) {
	res := &CheckResult{Consistent: true}
	base := pm.Base()
	problem := func(format string, args ...any) {
		res.Consistent = false
		res.Problems = append(res.Problems, fmt.Sprintf(format, args...))
	}

	if pm.Size() < hdrSize {
		return nil, errors.New("pmdk: pool smaller than a header")
	}
	u64 := func(addr uint64) uint64 {
		b := pm.Load(addr, 8)
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
		return v
	}

	if u64(base+hdrMagic) != poolMagic {
		problem("bad pool magic %#x", u64(base+hdrMagic))
		return res, nil
	}
	rootOff := u64(base + hdrRootOff)
	rootSize := u64(base + hdrRootSize)
	logOff := u64(base + hdrLogOff)
	logSize := u64(base + hdrLogSize)
	lastGen := u64(base + hdrLastGen)

	end := base + pm.Size()
	if rootOff < base || rootOff+rootSize > end || rootSize == 0 {
		problem("root object [%#x,+%d) outside pool", rootOff, rootSize)
	}
	if logOff < base || logOff+logSize > end || logSize < entryHdrSize {
		problem("undo log [%#x,+%d) outside pool", logOff, logSize)
		return res, nil
	}

	// Walk the log: entries of generation lastGen+1 form the in-flight
	// transaction; anything else terminates the walk.
	inflight := lastGen + 1
	off := logOff
	for off+entryHdrSize <= logOff+logSize {
		size := u64(off)
		if size == 0 {
			break
		}
		if off+entryHdrSize+entryPad(size) > logOff+logSize {
			// A torn tail is not an inconsistency: recovery ignores it.
			break
		}
		addr := u64(off + 8)
		gen := u64(off + 16)
		sum := u64(off + 24)
		if gen != inflight {
			break // stale entry from a retired generation
		}
		data := pm.Load(off+entryHdrSize, size)
		if csum(gen, addr, size, data) != sum {
			break // torn entry: recovery stops here too
		}
		if addr < base || addr+size > end {
			problem("log entry %d targets [%#x,+%d) outside pool", res.LogEntries, addr, size)
		}
		res.LogEntries++
		off += entryHdrSize + entryPad(size)
	}
	if res.LogEntries > 0 {
		res.InFlightTx = true
	}
	return res, nil
}
