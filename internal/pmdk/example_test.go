package pmdk_test

import (
	"fmt"

	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
)

// Example shows the transactional API and crash recovery: a committed
// transaction survives a power failure, an uncommitted one rolls back.
func Example() {
	pm := pmem.New(1 << 20)
	p, _ := pmdk.Create(pm, 64)
	root, _ := p.Root()

	tx := p.Begin()
	tx.Set(root, 1)
	tx.Commit()

	tx = p.Begin()
	tx.Set(root, 999)
	// Power fails before Commit; the in-place write may even have reached
	// the media.
	p.Ctx().Persist(root, 8)
	crashed := pm.Crash(pmem.CrashDropPending, 0)

	p2, _ := pmdk.Open(crashed) // runs undo-log recovery
	root2, _ := p2.Root()
	fmt.Println("recovered value:", p2.Ctx().Load64(root2))
	// Output:
	// recovered value: 1
}
