package pmdk

import (
	"testing"

	"pmdebugger/internal/pmem"
)

func TestCheckCleanPool(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, err := Create(pm, 64)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Commit()

	res, err := Check(pm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || res.InFlightTx || res.LogEntries != 0 {
		t.Fatalf("clean pool check = %+v", res)
	}
}

func TestCheckInFlightTransaction(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Set(root+8, 2)
	// No commit: crash with the log populated.
	crashed := pm.Crash(pmem.CrashApplyPending, 0)
	res, err := Check(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("in-flight tx reported inconsistent: %+v", res)
	}
	if !res.InFlightTx || res.LogEntries != 2 {
		t.Fatalf("in-flight tx not seen: %+v", res)
	}
	// Recovery then leaves a clean pool.
	if _, err := Open(crashed); err != nil {
		t.Fatal(err)
	}
	res, _ = Check(crashed)
	if res.InFlightTx {
		t.Fatalf("log survived recovery: %+v", res)
	}
}

func TestCheckUninitialized(t *testing.T) {
	pm := pmem.New(1 << 12)
	res, err := Check(pm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Fatalf("raw pool reported consistent")
	}
}

func TestCheckTornLogEntry(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	// Corrupt the entry checksum in place (simulating a torn write that
	// the crash model would produce for an unflushed line).
	c := pm.Ctx()
	c.Store64(p.logOff+24, 0xdeadbeef)
	c.Persist(p.logOff+24, 8)
	res, err := Check(pm)
	if err != nil {
		t.Fatal(err)
	}
	// A torn entry terminates the walk without marking inconsistency.
	if !res.Consistent || res.LogEntries != 0 {
		t.Fatalf("torn entry handling = %+v", res)
	}
	_ = tx
}

func TestCheckTinyPool(t *testing.T) {
	// The smallest possible pool (one cache line) holds a header-sized
	// region but no valid magic.
	res, err := Check(pmem.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Fatal("tiny raw pool reported consistent")
	}
}
