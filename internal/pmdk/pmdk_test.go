package pmdk

import (
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

func TestCreateOpen(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, err := Create(pm, 128)
	if err != nil {
		t.Fatal(err)
	}
	root, size := p.Root()
	if size != 128 || root == 0 {
		t.Fatalf("root = %#x size %d", root, size)
	}
	// Write something durable at the root.
	p.Ctx().Store64(root, 0xabcdef)
	p.Persist(root, 8)

	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	root2, size2 := p2.Root()
	if root2 != root || size2 != size {
		t.Fatalf("root changed across crash: %#x/%d", root2, size2)
	}
	if p2.Ctx().Load64(root2) != 0xabcdef {
		t.Fatalf("durable root data lost")
	}
}

func TestOpenUninitialized(t *testing.T) {
	if _, err := Open(pmem.New(1 << 12)); err == nil {
		t.Fatal("Open of raw pool succeeded")
	}
}

func TestTxCommitDurable(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()

	tx := p.Begin()
	tx.Set(root, 11)
	tx.Set(root+8, 22)
	tx.Commit()

	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	c := p2.Ctx()
	if c.Load64(root) != 11 || c.Load64(root+8) != 22 {
		t.Fatalf("committed data lost: %d %d", c.Load64(root), c.Load64(root+8))
	}
}

func TestTxCrashBeforeCommitRollsBack(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()

	// Establish durable initial value.
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Commit()

	// Start a transaction, modify, crash before Commit.
	tx = p.Begin()
	tx.Set(root, 99)
	// Adversarially let the in-place modification reach PM while the
	// transaction is not committed: the undo log must fix it.
	p.Ctx().Flush(root, 8)
	p.Ctx().Fence()

	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Ctx().Load64(root); got != 1 {
		t.Fatalf("rollback failed: root = %d, want 1", got)
	}
}

func TestTxCrashMidLogWrite(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 5)
	tx.Commit()

	// New transaction: snapshot written but possibly torn (pending lines
	// dropped at crash).
	tx = p.Begin()
	tx.Add(root, 8)
	crashed := pm.Crash(pmem.CrashDropPending, 0)
	p2, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Ctx().Load64(root); got != 5 {
		t.Fatalf("recovery corrupted data: %d", got)
	}
}

func TestTxAbort(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 7)
	tx.Commit()

	tx = p.Begin()
	tx.Set(root, 1000)
	tx.Set(root+8, 2000)
	tx.Abort()
	c := p.Ctx()
	if c.Load64(root) != 7 || c.Load64(root+8) != 0 {
		t.Fatalf("abort did not restore: %d %d", c.Load64(root), c.Load64(root+8))
	}

	// Pool still usable for the next transaction.
	tx = p.Begin()
	tx.Set(root, 8)
	tx.Commit()
	if c.Load64(root) != 8 {
		t.Fatalf("post-abort commit failed")
	}
}

func TestCleanTxHasNoBugs(t *testing.T) {
	// The critical integration property: a well-formed transaction
	// generates an instruction stream that PMDebugger's epoch-model rules
	// consider clean — exactly one fence in the epoch, everything durable.
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := Create(pm, 256)
	root, _ := p.Root()
	for i := 0; i < 10; i++ {
		tx := p.Begin()
		tx.Set(root+uint64(i%4)*64, uint64(i))
		tx.SetBytes(root+32, []byte{1, 2, 3, byte(i)})
		tx.Commit()
	}
	pm.End()
	rep := det.Report()
	if rep.Len() != 0 {
		t.Fatalf("clean transactions flagged:\n%s", rep.Summary())
	}
}

func TestCleanAbortHasNoBugs(t *testing.T) {
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := Create(pm, 256)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 42)
	tx.Abort()
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("clean abort flagged:\n%s", rep.Summary())
	}
}

func TestDoubleAddIsDetectableRedundantLogging(t *testing.T) {
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Add(root, 8)
	tx.Add(root+4, 8) // partial overlap: the overlap is logged again
	tx.Store64(root, 1)
	tx.Commit()
	pm.End()
	if !det.Report().Has(report.RedundantLogging) {
		t.Fatalf("overlapping Add not flagged:\n%s", det.Report().Summary())
	}
}

func TestCoveredAddIsSilentlySkipped(t *testing.T) {
	// A fully covered re-Add performs no log write (libpmemobj range-tree
	// dedup) and therefore must not be flagged.
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Add(root, 16)
	tx.Add(root, 8) // covered
	tx.Store64(root, 1)
	tx.Commit()
	pm.End()
	if det.Report().Has(report.RedundantLogging) {
		t.Fatalf("covered Add flagged:\n%s", det.Report().Summary())
	}
}

func TestPersistInsideTxIsRedundantEpochFence(t *testing.T) {
	// Reproduces the shape of PMDK bug 2 (Fig. 9b): pmemobj_persist inside
	// a transaction adds a second fence to the epoch.
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	p.Persist(root, 8) // redundant fence inside the epoch
	tx.Commit()
	pm.End()
	if !det.Report().Has(report.RedundantEpochFence) {
		t.Fatalf("persist-inside-tx not flagged:\n%s", det.Report().Summary())
	}
}

func TestTxGenerationsMonotonic(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	g0 := p.lastGen
	for i := 0; i < 3; i++ {
		tx := p.Begin()
		tx.Set(root, uint64(i))
		tx.Commit()
	}
	if p.lastGen != g0+3 {
		t.Fatalf("generations: %d -> %d", g0, p.lastGen)
	}
}

func TestLogExhaustionPanics(t *testing.T) {
	pm := pmem.New(1 << 22)
	p, _ := Create(pm, 64)
	big := p.Alloc(DefaultLogSize * 2)
	tx := p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("log exhaustion did not panic")
		}
	}()
	tx.Add(big, DefaultLogSize*2)
}

func TestAddedTracking(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Add(root, 16)
	if !tx.Added(root, 8) || !tx.Added(root+8, 8) {
		t.Fatal("contained sub-range not reported as added")
	}
	if tx.Added(root+8, 16) {
		t.Fatal("straddling range falsely reported as added")
	}
	tx.Commit()
}

func TestFinishedTxPanics(t *testing.T) {
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Commit()
	for _, fn := range []func(){
		func() { tx.Commit() },
		func() { tx.Abort() },
		func() { tx.Add(root, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("use of finished tx did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRecoveryEmitsInstrumentedStream(t *testing.T) {
	// Recovery itself is a PM program: its stores must appear in the event
	// stream so detectors can check the recovery code too.
	pm := pmem.New(1 << 20)
	p, _ := Create(pm, 64)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Commit()
	tx = p.Begin()
	tx.Set(root, 2)
	// crash before commit
	crashed := pm.Crash(pmem.CrashDropPending, 0)
	rec := trace.NewRecorder(64)
	crashed.Attach(rec)
	if _, err := Open(crashed); err != nil {
		t.Fatal(err)
	}
	if rec.Count(trace.KindStore) == 0 || rec.Count(trace.KindFence) == 0 {
		t.Fatalf("recovery not instrumented: %d stores, %d fences",
			rec.Count(trace.KindStore), rec.Count(trace.KindFence))
	}
}
