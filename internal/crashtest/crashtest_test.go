package crashtest

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/workloads"
)

// TestPmdkTxAtomicityExhaustive crashes a transactional counter program at
// every instruction boundary and requires that recovery always observes an
// atomic state: the counter and its shadow must agree, and the counter must
// be a value some committed transaction produced.
func TestPmdkTxAtomicityExhaustive(t *testing.T) {
	const rounds = 6
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 64)
		if err != nil {
			return err
		}
		root, _ := p.Root()
		for i := uint64(1); i <= rounds; i++ {
			tx := p.Begin()
			tx.Set(root, i)
			tx.Set(root+8, i*100) // must move atomically with the counter
			tx.Commit()
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, err := pmdk.Open(img) // runs undo-log recovery
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil // crash before the pool was fully created
			}
			return err
		}
		root, _ := p.Root()
		c := p.Ctx()
		v, s := c.Load64(root), c.Load64(root+8)
		if v > rounds {
			return fmt.Errorf("counter %d beyond any committed value", v)
		}
		if s != v*100 {
			return fmt.Errorf("torn transaction: counter %d, shadow %d", v, s)
		}
		return nil
	}
	res, err := Run(prog, check, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		for _, f := range res.Failures {
			t.Errorf("%s", f)
		}
	}
	if res.Points < 50 {
		t.Fatalf("only %d crash points explored", res.Points)
	}
}

// txPairProgram writes a two-line pair transactionally, with the chosen
// undo-log discipline.
func txPairProgram(strictLog bool) (Program, Checker) {
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 64)
		if err != nil {
			return err
		}
		p.SetStrictLog(strictLog)
		root, _ := p.Root()
		for i := uint64(1); i <= 4; i++ {
			tx := p.Begin()
			tx.Set(root, i)
			tx.Set(root+128, i) // second line: tears are possible
			tx.Commit()
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, err := pmdk.Open(img)
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil
			}
			return err
		}
		root, _ := p.Root()
		c := p.Ctx()
		if a, b := c.Load64(root), c.Load64(root+128); a != b {
			return fmt.Errorf("torn pair %d/%d", a, b)
		}
		return nil
	}
	return prog, check
}

// TestLazyLogVulnerableToRandomPending documents the lazy ulog discipline's
// known hole, found by this framework: under randomized line persistence a
// data line can become durable while its undo entry tears, so some crash
// point yields an unrecoverable torn pair. This is the PM-library bug class
// Agamotto-style systematic testing reports; the lazy discipline is kept
// because it is what real PMDK ships (and what gives clean transactions
// their single-fence epochs).
func TestLazyLogVulnerableToRandomPending(t *testing.T) {
	prog, check := txPairProgram(false)
	res, err := Run(prog, check, Config{
		Policy: pmem.CrashRandomPending,
		Seeds:  []int64{1, 7, 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("lazy log survived the random-pending adversary; the documented hole disappeared — " +
			"if the protocol was strengthened, move this assertion")
	}
}

// TestStrictLogSoundUnderRandomPending verifies the strict discipline
// (drain per snapshot) closes the hole under the same adversary.
func TestStrictLogSoundUnderRandomPending(t *testing.T) {
	prog, check := txPairProgram(true)
	res, err := Run(prog, check, Config{
		Policy: pmem.CrashRandomPending,
		Seeds:  []int64{1, 7, 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("%d inconsistent recoveries, first: %s", len(res.Failures), res.Failures[0])
	}
	if res.Images != res.Points*3 {
		t.Fatalf("images %d != points %d * seeds 3", res.Images, res.Points)
	}
}

// TestLazyLogSoundUnderDeterministicPolicies verifies the lazy discipline
// is sound when the crash either drops or applies the whole pending set —
// the two deterministic hardware outcomes.
func TestLazyLogSoundUnderDeterministicPolicies(t *testing.T) {
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropPending, pmem.CrashApplyPending} {
		prog, check := txPairProgram(false)
		res, err := Run(prog, check, Config{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("policy %d: %d inconsistent recoveries, first: %s",
				policy, len(res.Failures), res.Failures[0])
		}
	}
}

// TestStrictLogFlaggedByEpochFenceRule closes the loop with the detector:
// the sound-but-slow strict discipline is exactly what the paper's
// redundant-epoch-fence performance rule reports.
func TestStrictLogFlaggedByEpochFenceRule(t *testing.T) {
	pm := pmem.New(1 << 20)
	det := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det)
	p, err := pmdk.Create(pm, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.SetStrictLog(true)
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	tx.Set(root+8, 2)
	tx.Commit()
	pm.End()
	if !det.Report().Has(report.RedundantEpochFence) {
		t.Fatalf("strict log's extra fences not flagged:\n%s", det.Report().Summary())
	}
}

// TestBTreePrefixConsistency crashes a b_tree insert loop everywhere and
// requires the recovered tree to contain exactly a prefix of the insert
// sequence — transactional inserts commit in order, so nothing else is an
// acceptable recovery.
func TestBTreePrefixConsistency(t *testing.T) {
	const n = 20
	var rootCell uint64
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 4096)
		if err != nil {
			return err
		}
		bt, err := workloads.NewBTree(p)
		if err != nil {
			return err
		}
		rootCell, _ = p.Root()
		for k := uint64(0); k < n; k++ {
			if err := bt.Insert(k, k+1000); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, err := pmdk.Open(img)
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil
			}
			return err
		}
		c := p.Ctx()
		if c.Load64(rootCell) == 0 {
			return nil // crashed before the tree existed
		}
		bt := workloads.ReattachBTree(p, rootCell)
		inTree := 0
		for k := uint64(0); k < n; k++ {
			v, ok := bt.Get(k)
			if !ok {
				// Everything after the first missing key must be missing.
				for k2 := k + 1; k2 < n; k2++ {
					if _, ok := bt.Get(k2); ok {
						return fmt.Errorf("non-prefix recovery: key %d missing but %d present", k, k2)
					}
				}
				break
			}
			if v != k+1000 {
				return fmt.Errorf("key %d has value %d", k, v)
			}
			inTree++
		}
		return nil
	}
	res, err := Run(prog, check, Config{PoolSize: 1 << 20, Stride: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("%d inconsistent recoveries, first: %s", len(res.Failures), res.Failures[0])
	}
	if res.Points < 30 {
		t.Fatalf("only %d crash points", res.Points)
	}
}

// TestDetectsBrokenProtocol proves the framework actually catches bugs: a
// deliberately broken publish-before-persist protocol must produce
// failures.
func TestDetectsBrokenProtocol(t *testing.T) {
	prog := func(pm *pmem.Pool) error {
		c := pm.Ctx()
		flag := pm.Alloc(64)
		payload := pm.Alloc(64)
		// BUG: flag persisted before payload.
		c.Store64(flag, 1)
		c.Persist(flag, 8)
		c.StoreBytes(payload, []byte("12345678"))
		c.Persist(payload, 8)
		return nil
	}
	var flag, payload uint64 = pmem.DefaultBase, pmem.DefaultBase + 64
	check := func(img *pmem.Pool) error {
		c := img.Ctx()
		if c.Load64(flag) == 1 && c.Load64(payload) == 0 {
			return errors.New("flag valid but payload missing")
		}
		return nil
	}
	res, err := Run(prog, check, Config{PoolSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("broken protocol not caught")
	}
}

// TestMaxPointsAndStride covers the budget controls.
func TestMaxPointsAndStride(t *testing.T) {
	prog := func(pm *pmem.Pool) error {
		c := pm.Ctx()
		a := pm.Alloc(64)
		for i := 0; i < 20; i++ {
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
		}
		return nil
	}
	check := func(img *pmem.Pool) error { return nil }
	res, err := Run(prog, check, Config{PoolSize: 1 << 12, Stride: 5, MaxPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 4 {
		t.Fatalf("points = %d, want 4", res.Points)
	}
}

// TestCheckerRejectingFinalStateErrors guards the sanity check.
func TestCheckerRejectingFinalStateErrors(t *testing.T) {
	prog := func(pm *pmem.Pool) error { return nil }
	check := func(img *pmem.Pool) error { return errors.New("always unhappy") }
	if _, err := Run(prog, check, Config{PoolSize: 1 << 12}); err == nil {
		t.Fatal("bad checker accepted")
	}
}
