package crashtest

import (
	"errors"
	"reflect"
	"testing"

	"pmdebugger/internal/pmem"
)

// exploreProg is a small deterministic program with a mix of image-changing
// and image-neutral boundaries: stores and markers between persists leave
// stretches of the event stream where pruning should fire.
func exploreProg(pm *pmem.Pool) error {
	c := pm.Ctx()
	base := pm.Base()
	pm.RegisterNamed("cells", base, 1024)
	for i := uint64(0); i < 12; i++ {
		c.Store64(base+i*64, i+1)
		c.Store64(base+i*64+8, (i+1)*10)
		c.Flush(base+i*64, 16)
		if i%3 == 2 {
			c.Fence()
		}
	}
	c.Fence()
	// A deliberately misordered pair: the "valid" flag (B) is persisted
	// before its payload (A), so a crash between the two fences violates
	// the payload-before-flag invariant under every policy.
	a, b := base+2048, base+2112
	c.Store64(a, 0xa11ce)
	c.Store64(b, 1)
	c.Flush(b, 8)
	c.Fence()
	c.Flush(a, 8)
	c.Fence()
	return nil
}

// exploreCheck enforces the payload-before-flag invariant exploreProg
// deliberately breaks in its tail, so a window of crash images fails.
func exploreCheck(img *pmem.Pool) error {
	c := img.Ctx()
	base := img.Base()
	if c.Load64(base+2112) != 0 && c.Load64(base+2048) == 0 {
		return errors.New("flag persisted before payload")
	}
	return nil
}

// TestExploreMatchesSerial is the in-package differential check on the
// building blocks themselves: the record-once engine must report the same
// counts and failure set as exhaustive re-execution, with and without the
// reducers, across all three policies.
func TestExploreMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		cfg Config
		// wantReduced marks configs whose event stream has prunable or
		// deduplicable boundaries (stride-3 apply has a flush in every
		// window, so the reducers legitimately find nothing there).
		wantReduced bool
	}{
		{Config{Policy: pmem.CrashDropPending}, true},
		{Config{Policy: pmem.CrashApplyPending, Stride: 3}, false},
		{Config{Policy: pmem.CrashRandomPending, Seeds: []int64{11, 22}}, true},
	} {
		cfg := tc.cfg
		ref, err := RunSerial(exploreProg, exploreCheck, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Failures) == 0 {
			t.Fatalf("policy %v: reference found no failures; the differential is vacuous", cfg.Policy)
		}
		nseeds := len(cfg.effectiveSeeds())
		if ref.Images != ref.Points*nseeds {
			t.Fatalf("policy %v: reference Images=%d, Points=%d x %d seeds", cfg.Policy, ref.Images, ref.Points, nseeds)
		}
		for _, variant := range []struct {
			name         string
			prune, dedup bool
		}{
			{"plain", false, false},
			{"prune", true, false},
			{"dedup", false, true},
			{"prune+dedup", true, true},
		} {
			c := cfg
			c.Workers = 4
			c.Prune = variant.prune
			c.Dedup = variant.dedup
			got, err := Run(exploreProg, exploreCheck, c)
			if err != nil {
				t.Fatal(err)
			}
			if got.TotalEvents != ref.TotalEvents || got.Points != ref.Points {
				t.Errorf("policy %v %s: events/points %d/%d, reference %d/%d",
					cfg.Policy, variant.name, got.TotalEvents, got.Points, ref.TotalEvents, ref.Points)
			}
			if !reflect.DeepEqual(got.FailureKeys(), ref.FailureKeys()) {
				t.Errorf("policy %v %s: failure set diverges\n got: %v\n ref: %v",
					cfg.Policy, variant.name, got.FailureKeys(), ref.FailureKeys())
			}
			// Accounting identity: every non-pruned boundary materializes one
			// image per seed, each either checked or deduplicated.
			if got.Images+got.DedupImages != (got.Points-got.PrunedPoints)*nseeds {
				t.Errorf("policy %v %s: Images=%d + Dedup=%d != (Points=%d - Pruned=%d) x %d seeds",
					cfg.Policy, variant.name, got.Images, got.DedupImages, got.Points, got.PrunedPoints, nseeds)
			}
			if !variant.prune && got.PrunedPoints != 0 {
				t.Errorf("policy %v %s: pruning disabled but PrunedPoints=%d", cfg.Policy, variant.name, got.PrunedPoints)
			}
			if !variant.dedup && got.DedupImages != 0 {
				t.Errorf("policy %v %s: dedup disabled but DedupImages=%d", cfg.Policy, variant.name, got.DedupImages)
			}
			reduced := got.PrunedPoints > 0 || got.DedupImages > 0
			if (variant.prune || variant.dedup) && tc.wantReduced && !reduced {
				t.Errorf("policy %v %s: reducers enabled but nothing reduced", cfg.Policy, variant.name)
			}
			if reduced && got.Images >= ref.Images {
				t.Errorf("policy %v %s: reduced but %d images checked, not below reference %d",
					cfg.Policy, variant.name, got.Images, ref.Images)
			}
			if !variant.prune && !variant.dedup && got.Images != ref.Images {
				t.Errorf("policy %v plain: %d images, reference %d", cfg.Policy, got.Images, ref.Images)
			}
		}
	}
}

// TestExploreImageEqualsTrapped cross-checks the engines at the image level:
// the shadow-replayed image at a boundary is byte-identical to the image of
// a trapped re-execution (runTrapped, the serial engine's primitive).
func TestExploreImageEqualsTrapped(t *testing.T) {
	cfg := Config{Policy: pmem.CrashRandomPending, Seeds: []int64{5}}
	cfg.fill()

	full := pmem.New(cfg.PoolSize)
	journal := full.RecordJournal()
	if err := exploreProg(full); err != nil {
		t.Fatal(err)
	}
	total := int(full.EventCount())

	shadow := pmem.New(cfg.PoolSize)
	next := 0
	for point := 4; point <= total; point += 9 {
		for next < point {
			shadow.ApplyRecorded(journal.Events[next], journal.Payload(next))
			next++
		}
		pool, trapped, err := runTrapped(exploreProg, &cfg, uint64(point))
		if err != nil || !trapped {
			t.Fatalf("point %d: trapped=%v err=%v", point, trapped, err)
		}
		if shadow.Crash(cfg.Policy, 5).Fingerprint() != pool.Crash(cfg.Policy, 5).Fingerprint() {
			t.Fatalf("point %d: replayed image differs from trapped image", point)
		}
	}
}

// TestCrashRandomPendingDeterminism checks the property pruning and image
// reuse lean on: Crash is a pure function of (state, policy, seed) — the
// same seed twice gives byte-identical images, and different seeds explore
// different pending outcomes.
func TestCrashRandomPendingDeterminism(t *testing.T) {
	pool, trapped, err := runTrapped(exploreProg, &Config{PoolSize: 1 << 20}, 30)
	if err != nil || !trapped {
		t.Fatalf("trapped=%v err=%v", trapped, err)
	}
	distinct := map[[32]byte]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		a := pool.Crash(pmem.CrashRandomPending, seed).Fingerprint()
		b := pool.Crash(pmem.CrashRandomPending, seed).Fingerprint()
		if a != b {
			t.Fatalf("seed %d: two images from one state differ", seed)
		}
		distinct[a] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 seeds produced %d distinct images; pending randomization inert", len(distinct))
	}
}

// TestCheckerPanicBecomesFailure checks both engines convert checker panics
// into Failure entries carrying the crash coordinates (the process must not
// die, and the point must not be silently skipped).
func TestCheckerPanicBecomesFailure(t *testing.T) {
	// Panics exactly in the mid-execution window (first cell persisted,
	// last cell not yet), so the completed program still passes the sanity
	// check both engines run before exploring.
	panicky := func(img *pmem.Pool) error {
		c := img.Ctx()
		base := img.Base()
		if c.Load64(base) != 0 && c.Load64(base+11*64) == 0 {
			panic("recovery chased a wild pointer")
		}
		return nil
	}
	cfg := Config{Stride: 2, Workers: 3}
	ref, err := RunSerial(exploreProg, panicky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(exploreProg, panicky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Failures) == 0 {
		t.Fatal("panicking checker produced no failures")
	}
	if !reflect.DeepEqual(got.FailureKeys(), ref.FailureKeys()) {
		t.Fatalf("panic failure sets diverge\n got: %v\n ref: %v", got.FailureKeys(), ref.FailureKeys())
	}
	for _, f := range ref.Failures {
		if f.AfterEvents == 0 {
			t.Fatal("failure lost its crash point")
		}
	}
}

// TestSerialCountsOnlyTrappedPoints pins the Points accounting fix: with a
// stride larger than the program, no trap ever fires, so no point may be
// counted.
func TestSerialCountsOnlyTrappedPoints(t *testing.T) {
	full := pmem.New(1 << 20)
	if err := exploreProg(full); err != nil {
		t.Fatal(err)
	}
	total := int(full.EventCount())

	res, err := RunSerial(exploreProg, exploreCheck, Config{Stride: total + 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 0 || res.Images != 0 {
		t.Fatalf("no trap fired but Points=%d Images=%d", res.Points, res.Images)
	}
}
