package crashtest

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pmdebugger/internal/pmem"
)

// TestSegmentedExploreMatchesSerial is the segment-parallel differential:
// for every policy and reducer combination, the explorer must report the
// same failure set as exhaustive re-execution at every segment count, and
// every counter (Points, PrunedPoints, Images, DedupImages) must be
// invariant in the segment count — cross-segment duplicates are reclassified
// at merge time, so splitting the boundary list is unobservable.
func TestSegmentedExploreMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{Policy: pmem.CrashDropPending},
		{Policy: pmem.CrashApplyPending, Stride: 2},
		{Policy: pmem.CrashRandomPending, Seeds: []int64{11, 22}},
	} {
		ref, err := RunSerial(exploreProg, exploreCheck, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Failures) == 0 {
			t.Fatalf("policy %v: reference found no failures; the differential is vacuous", cfg.Policy)
		}
		for _, variant := range []struct {
			name         string
			prune, dedup bool
		}{
			{"plain", false, false},
			{"prune+dedup", true, true},
		} {
			var base *Result
			// 100 exceeds the boundary count: the explorer must clamp.
			for _, segs := range []int{1, 2, 3, 4, 8, 100} {
				c := cfg
				c.Workers = 4
				c.Prune = variant.prune
				c.Dedup = variant.dedup
				c.Segments = segs
				got, err := Run(exploreProg, exploreCheck, c)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.FailureKeys(), ref.FailureKeys()) {
					t.Errorf("policy %v %s segments=%d: failure set diverges\n got: %v\n ref: %v",
						cfg.Policy, variant.name, segs, got.FailureKeys(), ref.FailureKeys())
				}
				if base == nil {
					base = got
					continue
				}
				if got.Points != base.Points || got.PrunedPoints != base.PrunedPoints ||
					got.Images != base.Images || got.DedupImages != base.DedupImages {
					t.Errorf("policy %v %s segments=%d: counters (%d,%d,%d,%d) != single-segment (%d,%d,%d,%d)",
						cfg.Policy, variant.name, segs,
						got.Points, got.PrunedPoints, got.Images, got.DedupImages,
						base.Points, base.PrunedPoints, base.Images, base.DedupImages)
				}
				nseeds := len(c.effectiveSeeds())
				if got.Images+got.DedupImages != (got.Points-got.PrunedPoints)*nseeds {
					t.Errorf("policy %v %s segments=%d: Images=%d + Dedup=%d != (Points=%d - Pruned=%d) x %d seeds",
						cfg.Policy, variant.name, segs, got.Images, got.DedupImages,
						got.Points, got.PrunedPoints, nseeds)
				}
			}
		}
	}
}

// TestSegmentedPhaseCounters checks the per-phase observability satellite:
// a record-once run reports nonzero record and snapshot time, fingerprint
// time only under Dedup, and RunSerial leaves all phases zero.
func TestSegmentedPhaseCounters(t *testing.T) {
	got, err := Run(exploreProg, exploreCheck, Config{Workers: 2, Segments: 2, Prune: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.RecordNanos <= 0 || got.SnapshotNanos <= 0 || got.CheckNanos <= 0 {
		t.Fatalf("phase counters missing: record=%d snapshot=%d check=%d",
			got.RecordNanos, got.SnapshotNanos, got.CheckNanos)
	}
	if got.FingerprintNanos <= 0 {
		t.Fatalf("Dedup enabled but FingerprintNanos=%d", got.FingerprintNanos)
	}
	plain, err := Run(exploreProg, exploreCheck, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FingerprintNanos != 0 {
		t.Fatalf("Dedup disabled but FingerprintNanos=%d", plain.FingerprintNanos)
	}
	ref, err := RunSerial(exploreProg, exploreCheck, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.RecordNanos != 0 || ref.ReplayNanos != 0 || ref.CheckNanos != 0 {
		t.Fatal("RunSerial reported record-once phase counters")
	}
}

// buildFuzzProg turns fuzz bytes into a deterministic PM program over a few
// cache lines plus a dedicated payload/flag cell pair, so generated
// schedules can (and in the seed corpus, do) break the payload-before-flag
// invariant fuzzCheck enforces.
func buildFuzzProg(ops []byte) Program {
	return func(pm *pmem.Pool) error {
		c := pm.Ctx()
		base := pm.Base()
		payload, flag := base+2048, base+2112
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], uint64(ops[i+1])
			switch op % 8 {
			case 0:
				c.Store64(base+(arg%24)*64, arg+1)
			case 1:
				c.StoreBytes(base+(arg%24)*64, []byte{byte(arg), byte(arg >> 4), 0xee})
			case 2:
				c.Flush(base+(arg%24)*64, 8)
			case 3:
				c.Fence()
			case 4:
				c.Store64(payload, arg+1)
			case 5:
				c.Store64(flag, arg+1)
			case 6:
				if arg%2 == 0 {
					c.Flush(payload, 8)
				} else {
					c.Flush(flag, 8)
				}
			case 7:
				pm.RegisterNamed(fmt.Sprintf("r%d", arg%4), base+(arg%4)*256, 64)
			}
		}
		c.Fence()
		return nil
	}
}

// fuzzCheck enforces the payload-before-flag invariant on buildFuzzProg's
// dedicated cell pair.
func fuzzCheck(img *pmem.Pool) error {
	c := img.Ctx()
	base := img.Base()
	if c.Load64(base+2112) != 0 && c.Load64(base+2048) == 0 {
		return errors.New("flag persisted before payload")
	}
	return nil
}

// FuzzForkedVsSerial fuzzes the segment-parallel explorer against the
// serial reference: for generated programs, policies and segment counts the
// failure sets must match RunSerial exactly and every counter must be
// invariant in the segment count; additionally a mid-journal Fork must
// produce crash images fingerprint-identical to a trapped re-execution at
// the same boundary — both before and after the fork continues replaying.
func FuzzForkedVsSerial(f *testing.F) {
	// The misordered-pair schedule: flag persisted strictly before payload,
	// opening a failure window for every policy.
	f.Add([]byte{2, 5}, []byte{5, 1, 6, 1, 3, 0, 4, 1, 6, 0, 3, 0})
	// Redundant fences and restages around shared lines: prune and dedup
	// both fire, and RandomPending sees a multi-line pending set.
	f.Add([]byte{1, 3}, []byte{0, 3, 2, 3, 0, 4, 2, 4, 3, 0, 3, 0, 2, 3, 3, 0, 1, 9, 2, 9, 0, 9, 2, 9, 3, 0})
	// Names churn plus payload/flag traffic across all policies.
	f.Add([]byte{0, 2}, []byte{7, 1, 4, 2, 6, 0, 3, 0, 5, 7, 6, 1, 3, 0, 7, 3, 0, 11, 2, 11, 3, 0})
	f.Fuzz(func(t *testing.T, knobs, ops []byte) {
		if len(knobs) < 2 || len(ops) < 4 {
			return
		}
		if len(ops) > 96 {
			ops = ops[:96] // bound the serial reference's O(events²) cost
		}
		cfg := Config{Workers: 3, Prune: true, Dedup: true}
		switch knobs[0] % 3 {
		case 1:
			cfg.Policy = pmem.CrashApplyPending
		case 2:
			cfg.Policy = pmem.CrashRandomPending
			cfg.Seeds = []int64{3, 9}
		}
		prog := buildFuzzProg(ops)

		ref, err := RunSerial(prog, fuzzCheck, cfg)
		if err != nil {
			t.Skip("program rejected by reference:", err)
		}
		var base *Result
		for _, segs := range []int{1, 2 + int(knobs[1])%6} {
			c := cfg
			c.Segments = segs
			got, err := Run(prog, fuzzCheck, c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.FailureKeys(), ref.FailureKeys()) {
				t.Fatalf("segments=%d: failure set diverges\n got: %v\n ref: %v",
					segs, got.FailureKeys(), ref.FailureKeys())
			}
			if base == nil {
				base = got
			} else if got.Points != base.Points || got.PrunedPoints != base.PrunedPoints ||
				got.Images != base.Images || got.DedupImages != base.DedupImages {
				t.Fatalf("segments=%d: counters (%d,%d,%d,%d) != single-segment (%d,%d,%d,%d)",
					segs, got.Points, got.PrunedPoints, got.Images, got.DedupImages,
					base.Points, base.PrunedPoints, base.Images, base.DedupImages)
			}
		}

		// Fork-vs-trapped image equality at a mid boundary and after the
		// fork continues replaying on its own.
		if ref.TotalEvents < 4 {
			return
		}
		cfg.fill()
		full := pmem.New(cfg.PoolSize)
		journal := full.RecordJournal()
		if err := prog(full); err != nil {
			t.Fatal(err)
		}
		total := int(full.EventCount())
		full.Release()
		mid, late := total/2, 3*total/4
		rep := pmem.New(cfg.PoolSize)
		for i := 0; i < mid; i++ {
			rep.ApplyRecorded(journal.Events[i], journal.Payload(i))
		}
		fork := rep.Fork()
		rep.Release() // the fork must outlive its parent
		seed := int64(knobs[1])
		points := []int{mid}
		if late > mid {
			points = append(points, late)
		}
		for _, point := range points {
			for int(fork.EventCount()) < point {
				i := int(fork.EventCount())
				fork.ApplyRecorded(journal.Events[i], journal.Payload(i))
			}
			pool, trapped, err := runTrapped(prog, &cfg, uint64(point))
			if err != nil || !trapped {
				t.Fatalf("point %d: trapped=%v err=%v", point, trapped, err)
			}
			fimg := fork.Crash(cfg.Policy, seed)
			timg := pool.Crash(cfg.Policy, seed)
			if fimg.Fingerprint() != timg.Fingerprint() {
				t.Fatalf("point %d: forked replay image differs from trapped image", point)
			}
			fimg.Release()
			timg.Release()
			pool.Release()
		}
		fork.Release()
	})
}
