package crashtest_test

import (
	"errors"
	"fmt"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/pmem"
)

// Example explores every crash point of a broken publish protocol and
// reports how many post-crash images fail recovery validation.
func Example() {
	prog := func(pm *pmem.Pool) error {
		c := pm.Ctx()
		flag := pm.Alloc(64)
		payload := pm.Alloc(64)
		c.Store64(flag, 1) // BUG: valid flag persisted before the payload
		c.Persist(flag, 8)
		c.Store64(payload, 7)
		c.Persist(payload, 8)
		return nil
	}
	check := func(img *pmem.Pool) error {
		c := img.Ctx()
		if c.Load64(img.Base()) == 1 && c.Load64(img.Base()+64) == 0 {
			return errors.New("flag valid but payload missing")
		}
		return nil
	}
	res, _ := crashtest.Run(prog, check, crashtest.Config{PoolSize: 1 << 12})
	fmt.Printf("%d of %d crash points inconsistent\n", len(res.Failures), res.Points)
	// Output:
	// 3 of 6 crash points inconsistent
}
