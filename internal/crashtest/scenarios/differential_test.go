package scenarios_test

import (
	"fmt"
	"reflect"
	"testing"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/crashtest/scenarios"
	"pmdebugger/internal/pmem"
)

// TestParallelEqualsSerial is the cross-engine differential over the real
// scenarios: for every workload (both undo-log disciplines where the
// scenario is transactional) the record-once engine with four workers and
// both reducers enabled must report exactly the serial reference's failure
// set, from a single program execution. Strides are co-prime with the
// workloads' event periods to sample varied boundary phases while keeping
// the O(events^2) serial reference affordable.
func TestParallelEqualsSerial(t *testing.T) {
	cases := []struct {
		workload string
		n        int
		strict   bool
		cfg      crashtest.Config
		// wantReduced marks cases whose stride is dense enough for the
		// reducers to find equal-image boundaries; sparse-stride cases only
		// assert failure-set equality.
		wantReduced bool
	}{
		{"b_tree", 6, false, crashtest.Config{Stride: 17}, true},
		{"b_tree", 6, true, crashtest.Config{Stride: 17}, false},
		{"queue", 8, false, crashtest.Config{Stride: 19, Policy: pmem.CrashApplyPending}, false},
		{"queue", 8, true, crashtest.Config{Stride: 19, Policy: pmem.CrashApplyPending}, false},
		{"txpair", 3, false, crashtest.Config{Stride: 5, Policy: pmem.CrashRandomPending, Seeds: []int64{3, 9}}, false},
		{"txpair", 3, true, crashtest.Config{Stride: 5, Policy: pmem.CrashRandomPending, Seeds: []int64{3, 9}}, false},
		{"redis", 4, false, crashtest.Config{Stride: 23}, true},
		{"redis", 3, false, crashtest.Config{Stride: 3, Policy: pmem.CrashRandomPending, Seeds: []int64{7}}, true},
		{"memcached", 3, false, crashtest.Config{Stride: 4}, true},
		{"memcached", 2, false, crashtest.Config{Stride: 3, Policy: pmem.CrashApplyPending}, true},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/n=%d/strict=%v/policy=%d", tc.workload, tc.n, tc.strict, tc.cfg.Policy)
		t.Run(name, func(t *testing.T) {
			prog, check, err := scenarios.Build(tc.workload, tc.n, tc.strict)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.PoolSize = 1 << 21
			ref, err := crashtest.RunSerial(prog, check, cfg)
			if err != nil {
				t.Fatal(err)
			}

			cfg.Workers = 4
			cfg.Prune = true
			cfg.Dedup = true
			var single *crashtest.Result
			for _, segs := range []int{1, 4} {
				cfg.Segments = segs
				got, err := crashtest.Run(prog, check, cfg)
				if err != nil {
					t.Fatal(err)
				}

				if got.TotalEvents != ref.TotalEvents {
					t.Errorf("segments=%d events: %d, serial %d — the recorded run diverged", segs, got.TotalEvents, ref.TotalEvents)
				}
				if got.Points != ref.Points {
					t.Errorf("segments=%d points: %d, serial %d", segs, got.Points, ref.Points)
				}
				if !reflect.DeepEqual(got.FailureKeys(), ref.FailureKeys()) {
					t.Errorf("segments=%d failure sets diverge\n parallel: %v\n serial:   %v", segs, got.FailureKeys(), ref.FailureKeys())
				}
				if tc.wantReduced {
					if got.PrunedPoints == 0 && got.DedupImages == 0 {
						t.Errorf("segments=%d: reducers found nothing across %d points", segs, got.Points)
					}
					if got.Images >= ref.Images && ref.Images > 0 {
						t.Errorf("segments=%d: reduced run checked %d images, serial %d", segs, got.Images, ref.Images)
					}
				}
				if single == nil {
					single = got
				} else if got.Images != single.Images || got.PrunedPoints != single.PrunedPoints ||
					got.DedupImages != single.DedupImages {
					t.Errorf("segments=%d counters (%d images, %d pruned, %d deduped) != single-segment (%d, %d, %d)",
						segs, got.Images, got.PrunedPoints, got.DedupImages,
						single.Images, single.PrunedPoints, single.DedupImages)
				}
				t.Logf("segments=%d: %d events, %d points: serial checked %d images, parallel %d (%d pruned, %d deduped), %d failures",
					segs, got.TotalEvents, got.Points, ref.Images, got.Images, got.PrunedPoints, got.DedupImages, len(ref.Failures))
			}
		})
	}
}

// TestScenarioNames pins the registry surface other packages and the CLI
// depend on.
func TestScenarioNames(t *testing.T) {
	want := []string{"b_tree", "memcached", "queue", "redis", "txpair"}
	if got := scenarios.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, _, err := scenarios.Build("nope", 1, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
