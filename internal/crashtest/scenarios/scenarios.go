package scenarios

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/redis"
	"pmdebugger/internal/workloads"
)

// The scenario registry couples each deterministic crash-test program with
// its recovery checker, shared between cmd/pmcrash, the differential suite
// and the crash benchmark. The transactional workloads validate structural
// recovery through the pmdk undo log; the redis and memcached scenarios are
// restart-recovery checks for the two server ports — the larger workloads
// the exhaustive engine could not previously serve as an oracle for.

// Build returns a fresh program/checker pair for the named
// scenario. n scales the operation count; strictLog selects the strict
// (drain-per-snapshot) undo-log discipline where the scenario is
// transactional.
func Build(name string, n int, strictLog bool) (crashtest.Program, crashtest.Checker, error) {
	build, ok := scenarios[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown crash workload %q (have %s)", name, strings.Join(Names(), ", "))
	}
	prog, check := build(n, strictLog)
	return prog, check, nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var scenarios = map[string]func(n int, strictLog bool) (crashtest.Program, crashtest.Checker){
	"b_tree":    btreeScenario,
	"queue":     queueScenario,
	"txpair":    txpairScenario,
	"redis":     redisScenario,
	"memcached": memcachedScenario,
}

// recoveredPmdk opens a pmdk pool on a crash image, treating "crash before
// the pool was fully created" as a vacuously consistent recovery.
func recoveredPmdk(img *pmem.Pool) (*pmdk.Pool, bool, error) {
	p, err := pmdk.Open(img)
	if err != nil {
		if strings.Contains(err.Error(), "bad pool magic") {
			return nil, false, nil
		}
		return nil, false, err
	}
	return p, true, nil
}

// btreeScenario inserts n ascending keys transactionally; recovery must
// observe a strict prefix of the insert sequence with intact values.
func btreeScenario(n int, strictLog bool) (crashtest.Program, crashtest.Checker) {
	var rootCell uint64
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 4096)
		if err != nil {
			return err
		}
		p.SetStrictLog(strictLog)
		bt, err := workloads.NewBTree(p)
		if err != nil {
			return err
		}
		rootCell, _ = p.Root()
		for k := uint64(0); k < uint64(n); k++ {
			if err := bt.Insert(k, k+1000); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, ok, err := recoveredPmdk(img)
		if err != nil || !ok {
			return err
		}
		if p.Ctx().Load64(rootCell) == 0 {
			return nil
		}
		bt := workloads.ReattachBTree(p, rootCell)
		for k := uint64(0); k < uint64(n); k++ {
			v, present := bt.Get(k)
			if !present {
				for k2 := k + 1; k2 < uint64(n); k2++ {
					if _, p2 := bt.Get(k2); p2 {
						return fmt.Errorf("non-prefix recovery: %d missing, %d present", k, k2)
					}
				}
				return nil
			}
			if v != k+1000 {
				return fmt.Errorf("key %d has value %d", k, v)
			}
		}
		return nil
	}
	return prog, check
}

// queueScenario interleaves enqueues and dequeues on the persistent ring;
// recovery must observe valid geometry and consecutive FIFO contents.
func queueScenario(n int, strictLog bool) (crashtest.Program, crashtest.Checker) {
	var rootCell uint64
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 4096)
		if err != nil {
			return err
		}
		p.SetStrictLog(strictLog)
		q, err := workloads.NewQueue(p, 16)
		if err != nil {
			return err
		}
		rootCell, _ = p.Root()
		for i := 0; i < n; i++ {
			if err := q.Enqueue(uint64(i)); err != nil {
				return err
			}
			if i%3 == 2 {
				if _, err := q.Dequeue(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, ok, err := recoveredPmdk(img)
		if err != nil || !ok {
			return err
		}
		c := p.Ctx()
		capacity := c.Load64(rootCell + 8)
		head := c.Load64(rootCell + 16)
		count := c.Load64(rootCell + 24)
		if capacity == 0 {
			return nil // crash before initialization committed
		}
		if capacity != 16 || head >= capacity || count > capacity {
			return fmt.Errorf("invalid geometry: cap=%d head=%d count=%d", capacity, head, count)
		}
		// FIFO contents must be consecutive integers.
		buf := c.Load64(rootCell)
		var prev uint64
		for i := uint64(0); i < count; i++ {
			v := c.Load64(buf + (head+i)%capacity*8)
			if i > 0 && v != prev+1 {
				return fmt.Errorf("queue not consecutive at %d: %d after %d", i, v, prev)
			}
			prev = v
		}
		return nil
	}
	return prog, check
}

// txpairScenario writes a two-line pair transactionally n times; recovery
// must never observe a torn pair.
func txpairScenario(n int, strictLog bool) (crashtest.Program, crashtest.Checker) {
	var root uint64
	prog := func(pm *pmem.Pool) error {
		p, err := pmdk.Create(pm, 64)
		if err != nil {
			return err
		}
		p.SetStrictLog(strictLog)
		root, _ = p.Root()
		for i := uint64(1); i <= uint64(n); i++ {
			tx := p.Begin()
			tx.Set(root, i)
			tx.Set(root+128, i)
			tx.Commit()
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		p, ok, err := recoveredPmdk(img)
		if err != nil || !ok {
			return err
		}
		c := p.Ctx()
		if a, b := c.Load64(root), c.Load64(root+128); a != b {
			return fmt.Errorf("torn pair %d/%d", a, b)
		}
		return nil
	}
	return prog, check
}

// redisValue is the deterministic payload written for redis key i.
func redisValue(i int) []byte { return []byte(fmt.Sprintf("value-%04d", i)) }

// redisScenario performs n transactional Sets; restart recovery (undo-log
// replay plus volatile index rebuild) must observe a prefix of the insert
// sequence with intact values — transactions commit in order, so nothing
// else is an acceptable recovery.
func redisScenario(n int, _ bool) (crashtest.Program, crashtest.Checker) {
	cfg := redis.Config{Buckets: 64}
	prog := func(pm *pmem.Pool) error {
		s, err := redis.NewWith(pm, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := s.Set(fmt.Sprintf("key:%d", i), redisValue(i)); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		s, err := redis.Reopen(img, cfg)
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil // crash before the pool existed
			}
			return err // recovery itself failed: dict walk vs count mismatch
		}
		for i := 0; i < n; i++ {
			v, ok := s.Get(fmt.Sprintf("key:%d", i))
			if !ok {
				for j := i + 1; j < n; j++ {
					if _, ok := s.Get(fmt.Sprintf("key:%d", j)); ok {
						return fmt.Errorf("non-prefix recovery: key %d missing, %d present", i, j)
					}
				}
				return nil
			}
			if !bytes.Equal(v, redisValue(i)) {
				return fmt.Errorf("key %d recovered with value %q", i, v)
			}
		}
		return nil
	}
	return prog, check
}

// memcachedValue is the deterministic payload written for memcached key i.
func memcachedValue(i int) []byte { return []byte(fmt.Sprintf("item-payload-%04d", i)) }

// memcachedScenario performs n Sets on the fixed (Bugs=false) cache port;
// warm restart must rebuild the hash table from the slab pages, and every
// recovered item must carry exactly the value its key was written with —
// missing items are acceptable cache semantics, corrupt ones are not.
func memcachedScenario(n int, _ bool) (crashtest.Program, crashtest.Checker) {
	cfg := memcached.Config{HashBuckets: 128}
	prog := func(pm *pmem.Pool) error {
		c, err := memcached.NewWith(pm, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := c.Set(0, fmt.Sprintf("mk:%d", i), memcachedValue(i), uint32(i), 0); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(img *pmem.Pool) error {
		c, err := memcached.Restart(img, cfg)
		if err != nil {
			if strings.Contains(err.Error(), "no cache superblock") {
				return nil // crash before the superblock was published
			}
			return err
		}
		for i := 0; i < n; i++ {
			got, _, ok := c.Get(0, fmt.Sprintf("mk:%d", i))
			if ok && !bytes.Equal(got, memcachedValue(i)) {
				return fmt.Errorf("key mk:%d recovered with value %q", i, got)
			}
		}
		return nil
	}
	return prog, check
}
