// Package crashtest is a systematic crash-consistency testing framework in
// the style of Yat [33] and Agamotto [43], the exhaustive-testing relatives
// the paper compares against: it explores the crash-state space of a
// deterministic PM program, materializes the post-crash persistent image at
// successive instruction boundaries under a chosen line-persistence policy,
// and runs a recovery checker on every image.
//
// Two engines share the same Config and report format:
//
//   - Run is the record-once explorer: the program executes a single time
//     with a payload journal attached (pmem.Pool.RecordJournal), a shadow
//     pool replays the journal forward event by event, and each boundary's
//     crash image is dispatched to a bounded pool of checker workers. Total
//     work is O(events) replay plus embarrassingly parallel checking, with
//     two optional reducers: persistency-relevant crash-point pruning and
//     content-hash image deduplication (see explore.go).
//
//   - RunSerial is the exhaustive reference: it re-executes the program from
//     scratch for every crash point with an armed crash trap — O(events²)
//     execution, as Yat does it — and exists as the ground truth the
//     explorer is differentially tested against.
//
// Where PMDebugger reasons about the instruction stream online, crashtest
// actually explores the crash-state space — which is why the paper calls
// the approach "extremely" expensive. The framework doubles as the
// correctness harness for this repository's own crash-consistent substrates
// (the pmdk undo log, the workloads, and the redis/memcached ports).
package crashtest

import (
	"fmt"
	"sort"

	"pmdebugger/internal/pmem"
)

// Program is a deterministic PM program: given a fresh pool it performs its
// setup and workload. It must behave identically on every invocation (no
// wall-clock, no global randomness) — determinism is what makes crash-point
// enumeration meaningful for RunSerial and what makes the recorded journal
// representative for Run.
type Program func(pm *pmem.Pool) error

// Checker validates a post-crash persistent image: it runs recovery against
// the image and returns an error when the recovered state is inconsistent.
// The record-once engine invokes the checker from multiple worker
// goroutines on distinct images, so checkers must not share mutable state
// across invocations.
type Checker func(img *pmem.Pool) error

// Config parameterizes an exploration.
type Config struct {
	// PoolSize is the pool given to the program (default 1 MiB).
	PoolSize uint64
	// Policy decides the fate of flushed-but-unfenced lines in each image
	// (default CrashDropPending, the adversarial choice).
	Policy pmem.CrashPolicy
	// Seeds are the per-crash-point seeds explored under
	// CrashRandomPending; ignored for the deterministic policies.
	Seeds []int64
	// Stride tests every Stride-th event boundary (default 1: exhaustive,
	// as Yat; larger values trade coverage for time, as XFDetector's
	// restricted failure points do).
	Stride int
	// MaxPoints caps the number of crash points (0 = unlimited).
	MaxPoints int

	// Workers bounds the checker worker pool of the record-once engine
	// (default 1). RunSerial ignores it.
	Workers int
	// Segments splits the record-once engine's replay-and-dispatch loop
	// across this many concurrent segment dispatchers (default 1). Pass 1
	// replays the journal once, dropping a pmem.Pool.Fork at each segment's
	// first boundary; pass 2 replays the segments concurrently, each fork
	// materializing/pruning/deduplicating its own slice of the boundary
	// list, with cross-segment deduplication resolved at merge time. The
	// reported failure set and every counter are identical at any segment
	// count. RunSerial ignores it.
	Segments int
	// Prune enables persistency-relevant crash-point pruning in the
	// record-once engine: boundaries whose crash images provably equal the
	// previous boundary's (no fence committed new bytes, and — for the
	// pending-aware policies — no flush changed the pending set) inherit
	// its verdicts instead of materializing and checking images. The
	// reported failure set is identical to the exhaustive one.
	Prune bool
	// Dedup enables content-hash image deduplication in the record-once
	// engine: an image whose fingerprint was already checked reuses that
	// verdict instead of running the checker again. The reported failure
	// set is identical to the exhaustive one.
	Dedup bool
	// DeepCopyImages materializes every crash image with fully private
	// pages (pmem.Pool.SetCrashDeepCopy) instead of copy-on-write page
	// sharing — the O(pool-size) baseline engine kept reachable for
	// benchmarks and differential tests. Images are byte-identical either
	// way.
	DeepCopyImages bool
	// FlatTables selects the flat-table snapshot engine
	// (pmem.Pool.SetFlatTables): crash images copy page tables at page
	// granularity instead of sharing whole table chunks — the
	// O(table-length) pointer-cost baseline kept reachable for benchmarks
	// and differential tests. Images are byte-identical either way.
	FlatTables bool
}

func (c *Config) fill() {
	if c.PoolSize == 0 {
		c.PoolSize = 1 << 20
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Segments <= 0 {
		c.Segments = 1
	}
	if c.Policy == pmem.CrashRandomPending && len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
}

// effectiveSeeds returns the per-point seed list after policy defaults.
func (c *Config) effectiveSeeds() []int64 {
	if c.Policy != pmem.CrashRandomPending {
		return []int64{0}
	}
	return c.Seeds
}

// Failure is one crash point whose recovered state failed the checker.
type Failure struct {
	// AfterEvents is the number of instrumented events executed before the
	// crash.
	AfterEvents uint64
	// Seed is the line-persistence seed (0 for deterministic policies).
	Seed int64
	// Err is the checker's verdict.
	Err error
}

func (f Failure) String() string {
	return fmt.Sprintf("crash after event %d (seed %d): %v", f.AfterEvents, f.Seed, f.Err)
}

// Result summarizes an exploration.
type Result struct {
	// TotalEvents is the program's full event count.
	TotalEvents uint64
	// Points is the number of crash points explored — boundaries whose
	// images were checked or (under pruning) inherited a checked verdict.
	Points int
	// Images is the number of checker invocations: materialized images that
	// actually ran recovery.
	Images int
	// PrunedPoints counts boundaries that inherited the previous boundary's
	// verdicts because no intervening event could change the crash image
	// (record-once engine with Prune).
	PrunedPoints int
	// DedupImages counts materialized images whose fingerprint had already
	// been checked and whose verdict was reused (record-once engine with
	// Dedup).
	DedupImages int
	// ZeroPages/SharedPages/PrivatePages aggregate pmem.Pool.PageStats
	// over every materialized image (record-once engine): how much of the
	// image space was never written, aliased copy-on-write from the shadow
	// pool, or privately copied. A healthy COW run is dominated by zero
	// and shared pages.
	ZeroPages    uint64
	SharedPages  uint64
	PrivatePages uint64
	// RecordNanos through CheckNanos split the record-once engine's work
	// into phases so dispatcher-vs-checker balance is visible per workload:
	// recording the journal (the single full program execution), replaying
	// journal events into shadow pools (both passes), materializing crash
	// images, fingerprinting for deduplication, and running the checker.
	// Replay, snapshot, fingerprint and check times are summed across
	// concurrent dispatchers and workers, so they can exceed wall-clock
	// time. RunSerial leaves them zero.
	RecordNanos      int64
	ReplayNanos      int64
	SnapshotNanos    int64
	FingerprintNanos int64
	CheckNanos       int64
	// Failures lists every inconsistent recovery, ordered by crash point
	// then seed position.
	Failures []Failure
}

// FailureKeys returns the failure set as sorted strings, one per failure,
// for cross-engine set comparison (the differential suite and the CI
// sanity gate).
func (r *Result) FailureKeys() []string {
	keys := make([]string, 0, len(r.Failures))
	for _, f := range r.Failures {
		keys = append(keys, f.String())
	}
	sort.Strings(keys)
	return keys
}

// safeCheck runs the checker, converting a checker panic (a recovery pass
// chasing a wild pointer out of the pool, say) into an error verdict so one
// bad image aborts neither the exploration nor the process.
func safeCheck(check Checker, img *pmem.Pool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("checker panic: %v", r)
		}
	}()
	return check(img)
}

// RunSerial explores the program's crash space exhaustively by
// re-execution: the program is first executed to completion to count events
// and verify the final state passes the checker, then re-executed once per
// crash point with an armed crash trap. It is the ground-truth reference
// the record-once engine (Run) is differentially tested against.
func RunSerial(prog Program, check Checker, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{}

	// Full run: count events, sanity-check the checker on the final image.
	full := pmem.New(cfg.PoolSize)
	full.SetCrashDeepCopy(cfg.DeepCopyImages)
	full.SetFlatTables(cfg.FlatTables)
	if err := prog(full); err != nil {
		return nil, fmt.Errorf("crashtest: program failed without crashes: %w", err)
	}
	res.TotalEvents = full.EventCount()
	final := full.Crash(cfg.Policy, 0)
	ferr := safeCheck(check, final)
	final.Release()
	full.Release()
	if ferr != nil {
		return nil, fmt.Errorf("crashtest: checker rejects the completed program: %w", ferr)
	}

	seeds := cfg.effectiveSeeds()
	for point := uint64(cfg.Stride); point <= res.TotalEvents; point += uint64(cfg.Stride) {
		if cfg.MaxPoints > 0 && res.Points >= cfg.MaxPoints {
			break
		}
		pool, trapped, err := runTrapped(prog, &cfg, point)
		if err != nil {
			return nil, fmt.Errorf("crashtest: program failed at point %d: %w", point, err)
		}
		if !trapped {
			// The program finished before the trap (points past its end):
			// no image was produced, so the point does not count.
			pool.Release()
			break
		}
		res.Points++
		for _, seed := range seeds {
			res.Images++
			img := pool.Crash(cfg.Policy, seed)
			if cerr := safeCheck(check, img); cerr != nil {
				res.Failures = append(res.Failures, Failure{
					AfterEvents: point, Seed: seed, Err: cerr,
				})
			}
			img.Release()
		}
		pool.Release()
	}
	return res, nil
}

// runTrapped executes the program with a crash trap after n events,
// reporting whether the trap fired.
func runTrapped(prog Program, cfg *Config, n uint64) (pool *pmem.Pool, trapped bool, err error) {
	pool = pmem.New(cfg.PoolSize)
	pool.SetCrashDeepCopy(cfg.DeepCopyImages)
	pool.SetFlatTables(cfg.FlatTables)
	pool.SetCrashTrap(n)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.CrashTrap); ok {
				trapped = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = prog(pool)
	return pool, false, err
}
