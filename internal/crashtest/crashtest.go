// Package crashtest is a systematic crash-consistency testing framework in
// the style of Yat [33] and Agamotto [43], the exhaustive-testing relatives
// the paper compares against: it re-executes a deterministic PM program,
// crashing it at successive instruction boundaries, materializes the
// post-crash persistent image under a chosen line-persistence policy, and
// runs a recovery checker on every image.
//
// Where PMDebugger reasons about the instruction stream online, crashtest
// actually explores the crash-state space — which is why the paper calls
// the approach "extremely" expensive and why Stride exists. The framework
// doubles as the correctness harness for this repository's own
// crash-consistent substrates (the pmdk undo log and the workloads).
package crashtest

import (
	"fmt"

	"pmdebugger/internal/pmem"
)

// Program is a deterministic PM program: given a fresh pool it performs its
// setup and workload. It must behave identically on every invocation (no
// wall-clock, no global randomness) — determinism is what makes crash-point
// enumeration meaningful.
type Program func(pm *pmem.Pool) error

// Checker validates a post-crash persistent image: it runs recovery against
// the image and returns an error when the recovered state is inconsistent.
type Checker func(img *pmem.Pool) error

// Config parameterizes an exploration.
type Config struct {
	// PoolSize is the pool given to the program (default 1 MiB).
	PoolSize uint64
	// Policy decides the fate of flushed-but-unfenced lines in each image
	// (default CrashDropPending, the adversarial choice).
	Policy pmem.CrashPolicy
	// Seeds are the per-crash-point seeds explored under
	// CrashRandomPending; ignored for the deterministic policies.
	Seeds []int64
	// Stride tests every Stride-th event boundary (default 1: exhaustive,
	// as Yat; larger values trade coverage for time, as XFDetector's
	// restricted failure points do).
	Stride int
	// MaxPoints caps the number of crash points (0 = unlimited).
	MaxPoints int
}

func (c *Config) fill() {
	if c.PoolSize == 0 {
		c.PoolSize = 1 << 20
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.Policy == pmem.CrashRandomPending && len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
}

// Failure is one crash point whose recovered state failed the checker.
type Failure struct {
	// AfterEvents is the number of instrumented events executed before the
	// crash.
	AfterEvents uint64
	// Seed is the line-persistence seed (0 for deterministic policies).
	Seed int64
	// Err is the checker's verdict.
	Err error
}

func (f Failure) String() string {
	return fmt.Sprintf("crash after event %d (seed %d): %v", f.AfterEvents, f.Seed, f.Err)
}

// Result summarizes an exploration.
type Result struct {
	// TotalEvents is the program's full event count.
	TotalEvents uint64
	// Points is the number of crash points explored.
	Points int
	// Images is the number of (point, seed) images checked.
	Images int
	// Failures lists every inconsistent recovery.
	Failures []Failure
}

// Run explores the program's crash space. The program is first executed to
// completion to count events and verify the final state passes the checker;
// then it is re-executed once per crash point.
func Run(prog Program, check Checker, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{}

	// Full run: count events, sanity-check the checker on the final image.
	full := pmem.New(cfg.PoolSize)
	if err := prog(full); err != nil {
		return nil, fmt.Errorf("crashtest: program failed without crashes: %w", err)
	}
	res.TotalEvents = full.EventCount()
	if err := check(full.Crash(cfg.Policy, 0)); err != nil {
		return nil, fmt.Errorf("crashtest: checker rejects the completed program: %w", err)
	}

	seeds := cfg.Seeds
	if cfg.Policy != pmem.CrashRandomPending {
		seeds = []int64{0}
	}

	for point := uint64(cfg.Stride); point <= res.TotalEvents; point += uint64(cfg.Stride) {
		if cfg.MaxPoints > 0 && res.Points >= cfg.MaxPoints {
			break
		}
		res.Points++
		pool, trapped, err := runTrapped(prog, cfg.PoolSize, point)
		if err != nil {
			return nil, fmt.Errorf("crashtest: program failed at point %d: %w", point, err)
		}
		if !trapped {
			// The program finished before the trap (points past its end).
			break
		}
		for _, seed := range seeds {
			res.Images++
			img := pool.Crash(cfg.Policy, seed)
			if cerr := check(img); cerr != nil {
				res.Failures = append(res.Failures, Failure{
					AfterEvents: point, Seed: seed, Err: cerr,
				})
			}
		}
	}
	return res, nil
}

// runTrapped executes the program with a crash trap after n events,
// reporting whether the trap fired.
func runTrapped(prog Program, poolSize, n uint64) (pool *pmem.Pool, trapped bool, err error) {
	pool = pmem.New(poolSize)
	pool.SetCrashTrap(n)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.CrashTrap); ok {
				trapped = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = prog(pool)
	return pool, false, err
}
