package crashtest

import (
	"reflect"
	"testing"

	"pmdebugger/internal/pmem"
)

// TestCOWImagesMatchDeepCopy is the engine-level differential for the
// snapshot path: three shadow pools replay the same journal — one
// materializing chunk-shared COW images, one flat-table images (pages
// shared, table pointers copied per image) and one deep-copy images — and at
// every boundary the three images must have equal fingerprints
// (fingerprints cover every persistent byte plus the names table, so
// equality here is byte equality). All three pending-line policies are
// exercised, since each takes a different path through the snapshot's
// chunk/page duplication.
func TestCOWImagesMatchDeepCopy(t *testing.T) {
	full := pmem.New(1 << 20)
	journal := full.RecordJournal()
	if err := exploreProg(full); err != nil {
		t.Fatal(err)
	}
	total := journal.Len()

	policies := []struct {
		name   string
		policy pmem.CrashPolicy
		seeds  []int64
	}{
		{"drop", pmem.CrashDropPending, []int64{0}},
		{"apply", pmem.CrashApplyPending, []int64{0}},
		{"random", pmem.CrashRandomPending, []int64{1, 7}},
	}
	for _, pc := range policies {
		t.Run(pc.name, func(t *testing.T) {
			cow := pmem.New(1 << 20)
			flat := pmem.New(1 << 20)
			flat.SetFlatTables(true)
			deep := pmem.New(1 << 20)
			deep.SetCrashDeepCopy(true)
			for next := 0; next < total; next++ {
				cow.ApplyRecorded(journal.Events[next], journal.Payload(next))
				flat.ApplyRecorded(journal.Events[next], journal.Payload(next))
				deep.ApplyRecorded(journal.Events[next], journal.Payload(next))
				for _, seed := range pc.seeds {
					ci := cow.Crash(pc.policy, seed)
					fi := flat.Crash(pc.policy, seed)
					di := deep.Crash(pc.policy, seed)
					if ci.Fingerprint() != di.Fingerprint() {
						t.Fatalf("boundary %d seed %d: COW image differs from deep-copy image", next+1, seed)
					}
					if fi.Fingerprint() != di.Fingerprint() {
						t.Fatalf("boundary %d seed %d: flat-table image differs from deep-copy image", next+1, seed)
					}
					// The deep-copy baseline must actually be deep: no page
					// shared with its parent.
					if _, shared, _ := di.PageStats(); shared != 0 {
						t.Fatalf("boundary %d: deep-copy image has %d shared pages", next+1, shared)
					}
					ci.Release()
					fi.Release()
					di.Release()
				}
			}
		})
	}
}

// TestExploreDeepCopyMatchesCOW runs the full record-once engine under all
// three snapshot engines — chunk-shared COW, flat tables and deep copy
// (with the reducers and parallel workers on, the configuration the
// benchmarks use) — and demands identical failure sets, all matching the
// exhaustive serial reference.
func TestExploreDeepCopyMatchesCOW(t *testing.T) {
	for _, policy := range []pmem.CrashPolicy{
		pmem.CrashDropPending, pmem.CrashApplyPending, pmem.CrashRandomPending,
	} {
		cfg := Config{Policy: policy, Seeds: []int64{3, 9}, Workers: 4, Prune: true, Dedup: true}
		serial, err := RunSerial(exploreProg, exploreCheck, cfg)
		if err != nil {
			t.Fatalf("policy %v: serial: %v", policy, err)
		}
		cowRes, err := Run(exploreProg, exploreCheck, cfg)
		if err != nil {
			t.Fatalf("policy %v: cow: %v", policy, err)
		}
		fcfg := cfg
		fcfg.FlatTables = true
		flatRes, err := Run(exploreProg, exploreCheck, fcfg)
		if err != nil {
			t.Fatalf("policy %v: flat: %v", policy, err)
		}
		dcfg := cfg
		dcfg.DeepCopyImages = true
		deepRes, err := Run(exploreProg, exploreCheck, dcfg)
		if err != nil {
			t.Fatalf("policy %v: deepcopy: %v", policy, err)
		}
		if !reflect.DeepEqual(cowRes.FailureKeys(), serial.FailureKeys()) {
			t.Errorf("policy %v: COW failure set differs from serial\ncow:    %v\nserial: %v",
				policy, cowRes.FailureKeys(), serial.FailureKeys())
		}
		if !reflect.DeepEqual(flatRes.FailureKeys(), serial.FailureKeys()) {
			t.Errorf("policy %v: flat-table failure set differs from serial\nflat:   %v\nserial: %v",
				policy, flatRes.FailureKeys(), serial.FailureKeys())
		}
		if !reflect.DeepEqual(deepRes.FailureKeys(), serial.FailureKeys()) {
			t.Errorf("policy %v: deep-copy failure set differs from serial\ndeep:   %v\nserial: %v",
				policy, deepRes.FailureKeys(), serial.FailureKeys())
		}
		// The serial reference under flat tables must agree too — the
		// explorer equality above only covers the record-once engine.
		flatSerial, err := RunSerial(exploreProg, exploreCheck, fcfg)
		if err != nil {
			t.Fatalf("policy %v: flat serial: %v", policy, err)
		}
		if !reflect.DeepEqual(flatSerial.FailureKeys(), serial.FailureKeys()) {
			t.Errorf("policy %v: flat-table serial failure set differs from chunked serial", policy)
		}
		// Structural expectations for the page-composition stats: COW images
		// of a sparse pool are dominated by zero+shared pages; the deep-copy
		// baseline must report no sharing at all.
		if cowRes.Images > 0 && cowRes.ZeroPages+cowRes.SharedPages == 0 {
			t.Errorf("policy %v: COW run reports no zero or shared pages", policy)
		}
		if deepRes.SharedPages != 0 {
			t.Errorf("policy %v: deep-copy run reports %d shared pages", policy, deepRes.SharedPages)
		}
		if deepRes.ZeroPages != 0 {
			t.Errorf("policy %v: deep-copy run reports %d zero pages (pages must be materialized)", policy, deepRes.ZeroPages)
		}
	}
}
