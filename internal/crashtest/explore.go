package crashtest

import (
	"fmt"
	"sort"
	"sync"

	"pmdebugger/internal/pmem"
)

// pointRef attributes one (crash point, seed) coordinate to a checked
// image's verdict. seedIdx preserves the Config.Seeds order so failure
// lists come out in the same order RunSerial produces them.
type pointRef struct {
	point   uint64
	seedIdx int
}

// imageJob is one materialized crash image scheduled for checking, plus
// every coordinate whose image it stands for (the dispatch coordinate, any
// pruned boundaries that inherited it, and any deduplicated duplicates).
// The worker writes err and drops the image; refs are appended only by the
// dispatcher and read only after the worker pool has drained, so the two
// sides never touch the same field concurrently.
type imageJob struct {
	img  *pmem.Pool
	err  error
	refs []pointRef
}

// Run explores the program's crash space with the record-once engine: the
// program executes a single time filling a payload journal, a shadow pool
// replays the journal forward, and each selected boundary's crash image is
// dispatched to a bounded worker pool for checking. Compared with RunSerial
// this executes the program once instead of once per crash point; the
// reported failure set is identical (every boundary's verdict is attributed,
// including boundaries served by the Prune and Dedup reducers).
func Run(prog Program, check Checker, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{}

	// Record phase: a single full execution with the journal attached. The
	// journal's sequence numbers match an unobserved run (RecordJournal
	// emits no Register event), so boundary N below is exactly the state a
	// trapped re-execution would reach with SetCrashTrap(N).
	full := pmem.New(cfg.PoolSize)
	journal := full.RecordJournal()
	if err := prog(full); err != nil {
		return nil, fmt.Errorf("crashtest: program failed without crashes: %w", err)
	}
	res.TotalEvents = full.EventCount()
	final := full.Crash(cfg.Policy, 0)
	if err := safeCheck(check, final); err != nil {
		return nil, fmt.Errorf("crashtest: checker rejects the completed program: %w", err)
	}
	final.Release()
	if int(res.TotalEvents) != journal.Len() {
		return nil, fmt.Errorf("crashtest: journal recorded %d of %d events", journal.Len(), res.TotalEvents)
	}

	seeds := cfg.effectiveSeeds()

	// Checker worker pool. The channel bound doubles as backpressure on the
	// dispatcher, so at most ~2×Workers images are alive at once.
	jobs := make(chan *imageJob, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				jb.err = safeCheck(check, jb.img)
				// The verdict is all that is kept: recycle the image's pages
				// through the shared page pools instead of leaving them to
				// the garbage collector.
				jb.img.Release()
				jb.img = nil
			}
		}()
	}

	// Explore phase: drive the shadow pool forward and schedule images.
	shadow := pmem.New(cfg.PoolSize)
	shadow.SetCrashDeepCopy(cfg.DeepCopyImages)
	shadow.SetFlatTables(cfg.FlatTables)
	var all []*imageJob          // every dispatched job, for final assembly
	var last []*imageJob         // per seed index: the job holding the current verdict
	var hashes map[[32]byte]*imageJob
	if cfg.Dedup {
		hashes = map[[32]byte]*imageJob{}
	}
	next := 0      // next journal event to apply
	changed := true // image-relevant change since the last materialized boundary
	for point := uint64(cfg.Stride); point <= res.TotalEvents; point += uint64(cfg.Stride) {
		if cfg.MaxPoints > 0 && res.Points >= cfg.MaxPoints {
			break
		}
		for next < int(point) {
			persistCh, pendingCh := shadow.ApplyRecorded(journal.Events[next], journal.Payload(next))
			if persistCh || (cfg.Policy != pmem.CrashDropPending && pendingCh) {
				changed = true
			}
			next++
		}
		res.Points++
		if cfg.Prune && !changed && last != nil {
			// No event since the last materialized boundary could alter a
			// crash image, so this boundary's image equals the previous
			// one's for every seed: inherit those verdicts.
			res.PrunedPoints++
			for si := range seeds {
				last[si].refs = append(last[si].refs, pointRef{point: point, seedIdx: si})
			}
			continue
		}
		changed = false
		if last == nil {
			last = make([]*imageJob, len(seeds))
		}
		if cfg.Dedup {
			// Refresh the shadow's Merkle group caches so every snapshot
			// inherits them warm: each image's Fingerprint then rehashes
			// only the pages its pending-line policy touched, instead of
			// every group dirtied since the exploration began.
			shadow.Fingerprint()
		}
		for si, seed := range seeds {
			img := shadow.Crash(cfg.Policy, seed)
			var fp [32]byte
			if cfg.Dedup {
				fp = img.Fingerprint()
				if jb, ok := hashes[fp]; ok {
					res.DedupImages++
					jb.refs = append(jb.refs, pointRef{point: point, seedIdx: si})
					last[si] = jb
					img.Release() // duplicate image: verdict reused, pages recycled
					continue
				}
			}
			// Page-table composition is read before the image is handed to a
			// worker (which releases it), while the dispatcher still owns it.
			zero, sharedPg, private := img.PageStats()
			res.ZeroPages += uint64(zero)
			res.SharedPages += uint64(sharedPg)
			res.PrivatePages += uint64(private)
			jb := &imageJob{img: img, refs: []pointRef{{point: point, seedIdx: si}}}
			if cfg.Dedup {
				hashes[fp] = jb
			}
			res.Images++
			all = append(all, jb)
			last[si] = jb
			jobs <- jb
		}
	}
	close(jobs)
	wg.Wait()

	// Assemble failures in (point, seed position) order — the order the
	// serial reference reports them in.
	type flatFailure struct {
		ref pointRef
		err error
	}
	var flat []flatFailure
	for _, jb := range all {
		if jb.err == nil {
			continue
		}
		for _, ref := range jb.refs {
			flat = append(flat, flatFailure{ref: ref, err: jb.err})
		}
	}
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].ref.point != flat[j].ref.point {
			return flat[i].ref.point < flat[j].ref.point
		}
		return flat[i].ref.seedIdx < flat[j].ref.seedIdx
	})
	for _, f := range flat {
		res.Failures = append(res.Failures, Failure{
			AfterEvents: f.ref.point, Seed: seeds[f.ref.seedIdx], Err: f.err,
		})
	}
	return res, nil
}
