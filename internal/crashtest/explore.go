package crashtest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/trace"
)

// pointRef attributes one (crash point, seed) coordinate to a checked
// image's verdict. seedIdx preserves the Config.Seeds order so failure
// lists come out in the same order RunSerial produces them.
type pointRef struct {
	point   uint64
	seedIdx int
}

// imageJob is one materialized crash image scheduled for checking, plus
// every coordinate whose image it stands for (the dispatch coordinate, any
// pruned boundaries that inherited it, and any deduplicated duplicates).
// The worker writes err and drops the image; refs are appended only by the
// owning segment's dispatcher and read only after the worker pool has
// drained, so the two sides never touch the same field concurrently.
type imageJob struct {
	img *pmem.Pool
	err error
	fp  [32]byte // content hash under Dedup: the cross-segment merge key
	// zero/shared/private snapshot pmem.Pool.PageStats at dispatch time,
	// while the dispatcher still owns the image; the merge aggregates them
	// only for images that survive cross-segment deduplication.
	zero, shared, private int
	refs                  []pointRef
}

// segment is one contiguous slice of the boundary list, dispatched by its
// own goroutine from its own pool fork. All fields besides the shared jobs
// channel are segment-private; the merge reads them after every dispatcher
// has returned.
type segment struct {
	fork *pmem.Pool
	// startIdx/endIdx delimit the segment's boundaries in the points list.
	startIdx, endIdx int
	// carried is the segment's initial "image-relevant change since the
	// previous materialized boundary" flag, computed by pass 1 over the
	// window leading into the segment's first boundary (true for segment 0:
	// the run's first boundary always materializes).
	carried bool

	jobs []*imageJob // images this segment materialized, in dispatch order
	// orphans are boundaries pruned before the segment materialized its
	// first image; their verdicts live at the tail of the previous segment
	// and are attached at merge time.
	orphans []uint64
	// last tracks, per seed index, the job holding the segment's current
	// verdict; after dispatch it is the verdict the *next* segment's
	// orphans inherit.
	last   []*imageJob
	pruned int
	dedup  int

	replayNanos, snapNanos, fpNanos int64
}

// Run explores the program's crash space with the record-once engine: the
// program executes a single time filling a payload journal, shadow pools
// replay the journal forward, and each selected boundary's crash image is
// dispatched to a bounded worker pool for checking. Compared with RunSerial
// this executes the program once instead of once per crash point; the
// reported failure set is identical (every boundary's verdict is attributed,
// including boundaries served by the Prune and Dedup reducers).
//
// With Config.Segments > 1 the explorer is two-pass segment-parallel: pass 1
// replays the journal once — no snapshots, no hashing — dropping one
// pmem.Pool.Fork plus a carried change flag at each segment's first
// boundary; pass 2 runs the segment dispatchers concurrently, each replaying
// only its own slice of the journal and doing its own materialize/prune/
// dedup/dispatch. Cross-segment duplicates (a fingerprint first checked in
// an earlier segment) are resolved at merge time, first occurrence wins:
// the duplicate's redundant check is discarded, its verdict inherited, and
// it is counted as a deduplicated image — so Points, PrunedPoints, Images,
// DedupImages and the failure set are all invariant in the segment count.
func Run(prog Program, check Checker, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{}

	// Record phase: a single full execution with the journal attached. The
	// journal's sequence numbers match an unobserved run (RecordJournal
	// emits no Register event), so boundary N below is exactly the state a
	// trapped re-execution would reach with SetCrashTrap(N).
	recStart := time.Now()
	full := pmem.New(cfg.PoolSize)
	journal := full.RecordJournal()
	if err := prog(full); err != nil {
		return nil, fmt.Errorf("crashtest: program failed without crashes: %w", err)
	}
	res.TotalEvents = full.EventCount()
	final := full.Crash(cfg.Policy, 0)
	ferr := safeCheck(check, final)
	final.Release()
	full.Release()
	if ferr != nil {
		return nil, fmt.Errorf("crashtest: checker rejects the completed program: %w", ferr)
	}
	if int(res.TotalEvents) != journal.Len() {
		return nil, fmt.Errorf("crashtest: journal recorded %d of %d events", journal.Len(), res.TotalEvents)
	}
	res.RecordNanos = time.Since(recStart).Nanoseconds()

	seeds := cfg.effectiveSeeds()

	// The boundary list is fixed up front so it can be split into
	// contiguous segments: every Stride-th event boundary, capped by
	// MaxPoints.
	var points []uint64
	for point := uint64(cfg.Stride); point <= res.TotalEvents; point += uint64(cfg.Stride) {
		if cfg.MaxPoints > 0 && len(points) >= cfg.MaxPoints {
			break
		}
		points = append(points, point)
	}
	res.Points = len(points)
	if len(points) == 0 {
		return res, nil
	}
	nseg := cfg.Segments
	if nseg > len(points) {
		nseg = len(points)
	}

	// Pass 1: replay the journal once — no snapshots, no hashing — and drop
	// one fork at each segment's first boundary, together with the change
	// flag accumulated over the window leading into it. The fork carries the
	// replayer's full volatile state (line states, pending set, Merkle
	// caches), so pass 2 resumes each segment exactly where a serial replay
	// would have stood.
	segs := make([]*segment, nseg)
	{
		start := time.Now()
		rep := pmem.New(cfg.PoolSize)
		rep.SetCrashDeepCopy(cfg.DeepCopyImages)
		rep.SetFlatTables(cfg.FlatTables)
		next := 0
		for k := 0; k < nseg; k++ {
			lo := k * len(points) / nseg
			hi := (k + 1) * len(points) / nseg
			// Events up to the previous segment's last boundary carry no
			// flag the previous segments have not already accounted for.
			prev := 0
			if lo > 0 {
				prev = int(points[lo-1])
			}
			for next < prev {
				rep.ApplyRecorded(journal.Events[next], journal.Payload(next))
				next++
			}
			carried := k == 0 // the run's first boundary always materializes
			for next < int(points[lo]) {
				persistCh, pendingCh := rep.ApplyRecorded(journal.Events[next], journal.Payload(next))
				if persistCh || (cfg.Policy != pmem.CrashDropPending && pendingCh) {
					carried = true
				}
				next++
			}
			segs[k] = &segment{fork: rep.Fork(), startIdx: lo, endIdx: hi, carried: carried}
		}
		rep.Release()
		res.ReplayNanos += time.Since(start).Nanoseconds()
	}

	// Checker worker pool, shared by all segments. The channel bound
	// doubles as backpressure on the dispatchers, so at most
	// ~Workers+Segments images are alive at once.
	jobs := make(chan *imageJob, cfg.Workers)
	var checkNanos int64
	var wwg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			var local int64
			for jb := range jobs {
				start := time.Now()
				jb.err = safeCheck(check, jb.img)
				local += time.Since(start).Nanoseconds()
				// The verdict is all that is kept: recycle the image's pages
				// through the shared page pools instead of leaving them to
				// the garbage collector.
				jb.img.Release()
				jb.img = nil
			}
			atomic.AddInt64(&checkNanos, local)
		}()
	}

	// Pass 2: dispatch every segment concurrently.
	var dwg sync.WaitGroup
	for _, s := range segs {
		dwg.Add(1)
		go func(s *segment) {
			defer dwg.Done()
			s.dispatch(&cfg, journal, points, seeds, jobs)
		}(s)
	}
	dwg.Wait()
	close(jobs)
	wwg.Wait()
	res.CheckNanos = checkNanos

	// Merge, in segment order: attach each segment's orphaned leading prune
	// run to the previous segments' verdict holders, then fold its images
	// in. Under Dedup a fingerprint already seen in an earlier segment is a
	// cross-segment duplicate the segment-local map could not catch: its
	// redundant check is discarded, the first occurrence's verdict
	// inherited, and the image counted as deduplicated — which keeps every
	// counter equal to a single-segment run's.
	var all []*imageJob
	var union map[[32]byte]*imageJob
	if cfg.Dedup {
		union = make(map[[32]byte]*imageJob)
	}
	carried := make([]*imageJob, len(seeds))
	for _, s := range segs {
		res.PrunedPoints += s.pruned
		res.DedupImages += s.dedup
		for _, point := range s.orphans {
			for si := range seeds {
				carried[si].refs = append(carried[si].refs, pointRef{point: point, seedIdx: si})
			}
		}
		for _, jb := range s.jobs {
			if cfg.Dedup {
				if first, ok := union[jb.fp]; ok {
					jb.err = first.err
					res.DedupImages++
					all = append(all, jb)
					continue
				}
				union[jb.fp] = jb
			}
			res.Images++
			res.ZeroPages += uint64(jb.zero)
			res.SharedPages += uint64(jb.shared)
			res.PrivatePages += uint64(jb.private)
			all = append(all, jb)
		}
		for si, jb := range s.last {
			if jb != nil {
				carried[si] = jb
			}
		}
		res.ReplayNanos += s.replayNanos
		res.SnapshotNanos += s.snapNanos
		res.FingerprintNanos += s.fpNanos
	}

	// Assemble failures in (point, seed position) order — the order the
	// serial reference reports them in.
	type flatFailure struct {
		ref pointRef
		err error
	}
	var flat []flatFailure
	for _, jb := range all {
		if jb.err == nil {
			continue
		}
		for _, ref := range jb.refs {
			flat = append(flat, flatFailure{ref: ref, err: jb.err})
		}
	}
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].ref.point != flat[j].ref.point {
			return flat[i].ref.point < flat[j].ref.point
		}
		return flat[i].ref.seedIdx < flat[j].ref.seedIdx
	})
	for _, f := range flat {
		res.Failures = append(res.Failures, Failure{
			AfterEvents: f.ref.point, Seed: seeds[f.ref.seedIdx], Err: f.err,
		})
	}
	return res, nil
}

// dispatch replays the segment's slice of the journal from its fork and
// materializes, prunes, deduplicates and schedules its boundaries' images.
// It makes the same per-boundary decisions a serial dispatcher would: the
// prune signal is carried across the segment boundary by pass 1, and a
// leading prune run whose verdict holder lives in an earlier segment is
// recorded as orphans for the merge to attach.
func (s *segment) dispatch(cfg *Config, journal *trace.Journal, points []uint64, seeds []int64, jobs chan<- *imageJob) {
	shadow := s.fork
	var hashes map[[32]byte]*imageJob
	if cfg.Dedup {
		hashes = make(map[[32]byte]*imageJob)
	}
	s.last = make([]*imageJob, len(seeds))
	haveLast := false
	next := int(points[s.startIdx]) // pass 1 positioned the fork here
	changed := s.carried
	for idx := s.startIdx; idx < s.endIdx; idx++ {
		point := points[idx]
		if idx > s.startIdx {
			start := time.Now()
			for next < int(point) {
				persistCh, pendingCh := shadow.ApplyRecorded(journal.Events[next], journal.Payload(next))
				if persistCh || (cfg.Policy != pmem.CrashDropPending && pendingCh) {
					changed = true
				}
				next++
			}
			s.replayNanos += time.Since(start).Nanoseconds()
		}
		if cfg.Prune && !changed && (haveLast || s.startIdx > 0) {
			// No event since the last materialized boundary could alter a
			// crash image, so this boundary's image equals the previous
			// one's for every seed: inherit those verdicts. Before the
			// segment's first materialization the holder lives in an earlier
			// segment — record the boundary for the merge to attach.
			s.pruned++
			if haveLast {
				for si := range seeds {
					s.last[si].refs = append(s.last[si].refs, pointRef{point: point, seedIdx: si})
				}
			} else {
				s.orphans = append(s.orphans, point)
			}
			continue
		}
		changed = false
		haveLast = true
		if cfg.Dedup {
			// Refresh the fork's Merkle group caches so every snapshot
			// inherits them warm: each image's Fingerprint then rehashes
			// only the pages its pending-line policy touched, instead of
			// every group dirtied since the segment began.
			start := time.Now()
			shadow.Fingerprint()
			s.fpNanos += time.Since(start).Nanoseconds()
		}
		for si, seed := range seeds {
			start := time.Now()
			img := shadow.Crash(cfg.Policy, seed)
			s.snapNanos += time.Since(start).Nanoseconds()
			var fp [32]byte
			if cfg.Dedup {
				start = time.Now()
				fp = img.Fingerprint()
				s.fpNanos += time.Since(start).Nanoseconds()
				if jb, ok := hashes[fp]; ok {
					s.dedup++
					jb.refs = append(jb.refs, pointRef{point: point, seedIdx: si})
					s.last[si] = jb
					img.Release() // duplicate image: verdict reused, pages recycled
					continue
				}
			}
			// Page-table composition is read before the image is handed to a
			// worker (which releases it), while the dispatcher still owns it.
			zero, sharedPg, private := img.PageStats()
			jb := &imageJob{
				img: img, fp: fp,
				zero: zero, shared: sharedPg, private: private,
				refs: []pointRef{{point: point, seedIdx: si}},
			}
			if cfg.Dedup {
				hashes[fp] = jb
			}
			s.jobs = append(s.jobs, jb)
			s.last[si] = jb
			jobs <- jb
		}
	}
	// Exploration over: recycle the fork's private pages, chunks and muts
	// through the shared pools instead of leaving them to the collector.
	shadow.Release()
}
