package crashtest

import (
	"fmt"
	"testing"

	"pmdebugger/internal/pmem"
)

// benchProg is a dispatcher-bound workload: many small persists spread over
// enough pages that every boundary materializes a distinct image, with no
// prunable stretches — the worst case for the dispatch loop and the best
// case for measuring raw images/sec.
func benchProg(pm *pmem.Pool) error {
	c := pm.Ctx()
	base := pm.Base()
	for i := uint64(0); i < 160; i++ {
		a := base + (i%40)*4096 + (i/40)*64
		c.Store64(a, i+1)
		c.Flush(a, 8)
		c.Fence()
	}
	return nil
}

// BenchmarkDispatcher isolates the explorer's image production rate: a
// checker that does nothing, so all measured time is journal replay,
// snapshot materialization, fingerprinting and scheduling. The per-segment
// scaling of images/sec is the number the segment_scaling artifact section
// gates on.
func BenchmarkDispatcher(b *testing.B) {
	noop := func(img *pmem.Pool) error { return nil }
	for _, segs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			cfg := Config{Workers: 2, Prune: true, Dedup: true, Segments: segs}
			var images int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(benchProg, noop, cfg)
				if err != nil {
					b.Fatal(err)
				}
				images += res.Images
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(images)/b.Elapsed().Seconds(), "images/s")
			}
		})
	}
}
