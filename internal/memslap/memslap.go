// Package memslap is the load driver the paper uses against memcached
// ("Memslap (5% set)", Table 4): a configurable multi-threaded get/set mix
// over a key space, plus an exerciser that walks every command path for the
// new-bug reproduction (E10).
package memslap

import (
	"fmt"
	"math/rand"
	"sync"

	"pmdebugger/internal/memcached"
)

// Config parameterizes a run.
type Config struct {
	// Ops is the total operation count across all threads.
	Ops int
	// SetRatio is the fraction of sets (default 0.05, the paper's 5%).
	SetRatio float64
	// Threads is the number of client threads (default 1).
	Threads int
	// ValueSize is the value payload size in bytes (default 64).
	ValueSize int
	// KeySpace is the number of distinct keys (default Ops/10, min 64).
	KeySpace int
	// Seed seeds the per-thread generators.
	Seed int64
}

func (c *Config) fill() {
	if c.SetRatio == 0 {
		c.SetRatio = 0.05
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.ValueSize == 0 {
		c.ValueSize = 64
	}
	if c.KeySpace == 0 {
		c.KeySpace = c.Ops / 10
	}
	if c.KeySpace < 64 {
		c.KeySpace = 64
	}
}

// Run drives the cache with the configured mix. Keys are warmed first so
// gets mostly hit, as memslap does.
func Run(cache *memcached.Cache, cfg Config) error {
	cfg.fill()
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// Pre-generate the workload's key strings, as memaslap builds its
	// key/value windows before the timed run, so key formatting is not
	// charged to the operations.
	keys := make([]string, cfg.KeySpace)
	for i := range keys {
		keys[i] = key(i)
	}

	// Warm a slice of the key space (counted against Ops).
	warm := cfg.KeySpace / 4
	if warm > cfg.Ops {
		warm = cfg.Ops
	}
	for i := 0; i < warm; i++ {
		if err := cache.Set(0, keys[i], value, 0, 0); err != nil {
			return fmt.Errorf("memslap warm: %w", err)
		}
	}

	remaining := cfg.Ops - warm
	perThread := remaining / cfg.Threads

	// Pre-roll each thread's operation schedule (key choice and set/get
	// decision), as memaslap generates its command sequence up front; the
	// run loop then only executes cache operations and client-side
	// checksum work.
	type op struct {
		key   uint32
		isSet bool
	}
	schedules := make([][]op, cfg.Threads)
	for th := range schedules {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(th)))
		sched := make([]op, perThread)
		for i := range sched {
			sched[i] = op{
				key:   uint32(rng.Intn(cfg.KeySpace)),
				isSet: rng.Float64() < cfg.SetRatio,
			}
		}
		schedules[th] = sched
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Threads)
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for _, o := range schedules[th] {
				k := keys[o.key]
				if o.isSet {
					// Clients checksum outgoing payloads (memslap's data
					// verification mode); this is the per-operation CPU
					// work that parallelizes across client threads.
					checksumSink[th&7] ^= fnv1a(value)
					if err := cache.Set(int32(th), k, value, 0, 0); err != nil {
						errs[th] = err
						return
					}
				} else {
					v, _, ok := cache.Get(int32(th), k)
					if ok {
						checksumSink[th&7] ^= fnv1a(v)
					}
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func key(i int) string { return fmt.Sprintf("memslap-%08d", i) }

// checksumSink keeps the per-op verification work observable so the
// compiler cannot elide it; slots are striped by thread to avoid false
// sharing dominating the measurement.
var checksumSink [8]uint64

// fnv1a is the payload checksum memslap's verification mode computes per
// operation.
func fnv1a(data []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Re-hash a few rounds: the real client also parses the response
	// protocol; a handful of extra passes stands in for that CPU time.
	for i := 0; i < 3; i++ {
		for _, b := range data {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return h
}

// ExerciseAll walks every command path of the cache — CAS hit and mismatch,
// lazy expiration, delete hit and miss, set, replace, get hit and miss,
// fetched-flag, touch and flags update — so that every buggy site of the
// faithful port executes.
//
// Ordering matters for bug *reproduction*: an unpersisted store is only
// reportable at program end while its location has not been reused and
// re-persisted by a later allocation, so the destructive paths (CAS
// replacement, expiry, delete) run first and the item-metadata paths run
// last on an item that stays live. The same supersession effect is why
// end-of-run detectors can miss short-lived-location bugs in general.
func ExerciseAll(cache *memcached.Cache) error {
	v := []byte("value")
	ops := []func() error{
		func() error { // CAS hit then mismatch (replaces k2's item)
			if err := cache.Set(0, "k2", v, 0, 0); err != nil {
				return err
			}
			_, cas, ok := cache.Get(0, "k2")
			if !ok {
				return fmt.Errorf("exercise: k2 missing")
			}
			if err := cache.CAS(0, "k2", v, cas); err != nil {
				return fmt.Errorf("exercise: cas hit failed: %w", err)
			}
			if err := cache.CAS(0, "k2", v, cas+999); err == nil {
				return fmt.Errorf("exercise: stale cas succeeded")
			}
			return nil
		},
		func() error { // expiry: set with short exptime, advance the clock
			if err := cache.Set(0, "short", v, 0, 2); err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				cache.Get(0, "absent2")
			}
			if _, _, ok := cache.Get(0, "short"); ok {
				return fmt.Errorf("exercise: item did not expire")
			}
			return nil
		},
		func() error { // delete hit + miss
			if err := cache.Set(0, "gone", v, 0, 0); err != nil {
				return err
			}
			if !cache.Delete(0, "gone") {
				return fmt.Errorf("exercise: delete missed")
			}
			cache.Delete(0, "gone") // miss
			return nil
		},
		// Item-metadata paths last, on an item that stays live.
		func() error { return cache.Set(0, "k1", v, 7, 0) },      // set: cas, stats
		func() error { return cache.Set(0, "k1", v, 7, 0) },      // replace path
		func() error { cache.Get(0, "k1"); return nil },          // hit + fetched flag
		func() error { cache.Get(0, "absent"); return nil },      // miss
		func() error { cache.Touch(0, "k1", 1<<60); return nil }, // exptime store
		func() error { cache.SetFlags(0, "k1", 42); return nil }, // flags store
	}
	for _, op := range ops {
		if err := op(); err != nil {
			return err
		}
	}
	return nil
}

// ExerciseEvictions fills a small cache until evictions occur.
func ExerciseEvictions(cache *memcached.Cache, n int) error {
	big := make([]byte, 1024)
	for i := 0; i < n; i++ {
		if err := cache.Set(0, key(i), big, 0, 0); err != nil {
			return err
		}
	}
	return nil
}
