package memslap

import (
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func TestRunMix(t *testing.T) {
	cache, err := memcached.New(memcached.Config{PoolSize: 1 << 23, HashBuckets: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(cache, Config{Ops: 2000, Threads: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	sets, _ := cache.Stat("set_cmds")
	hits, _ := cache.Stat("get_hits")
	misses, _ := cache.Stat("get_misses")
	gets := hits + misses
	if gets == 0 || sets == 0 {
		t.Fatalf("no traffic: sets=%d gets=%d", sets, gets)
	}
	ratio := float64(sets) / float64(sets+gets)
	// Warm-up sets inflate the ratio slightly above the configured 5%.
	if ratio < 0.02 || ratio > 0.2 {
		t.Fatalf("set ratio = %.3f", ratio)
	}
}

func TestExerciseAllHitsAll19Sites(t *testing.T) {
	cache, err := memcached.New(memcached.Config{
		PoolSize: 1 << 22, HashBuckets: 256, Bugs: true, UseCAS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	cache.PM().Attach(det)
	// Eviction pressure first: evictions reuse chunks, which would
	// supersede the unpersisted metadata stores exercised afterwards.
	if err := ExerciseEvictions(cache, 4000); err != nil {
		t.Fatal(err)
	}
	if err := ExerciseAll(cache); err != nil {
		t.Fatal(err)
	}
	cache.PM().End()
	rep := det.Report()

	found := map[string]bool{}
	for _, b := range rep.Bugs {
		if b.Type == report.NoDurability {
			found[b.Site.String()] = true
		}
	}
	var missing []string
	for _, s := range cache.BugSites() {
		if !found[s.String()] {
			missing = append(missing, s.String())
		}
	}
	if len(missing) != 0 {
		t.Fatalf("bug sites not detected: %v\n%s", missing, rep.Summary())
	}
}

func TestFixedVersionCleanUnderLoad(t *testing.T) {
	cache, err := memcached.New(memcached.Config{
		PoolSize: 1 << 23, HashBuckets: 1024, Bugs: false, UseCAS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability | rules.RuleFlushNothing})
	cache.PM().Attach(det)
	if err := Run(cache, Config{Ops: 1000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ExerciseAll(cache); err != nil {
		t.Fatal(err)
	}
	cache.PM().End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("fixed memcached flagged:\n%s", rep.Summary())
	}
}
