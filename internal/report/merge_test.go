package report

import (
	"testing"

	"pmdebugger/internal/trace"
)

func TestMergeOrdersAndDeduplicates(t *testing.T) {
	site := trace.RegisterSite("merge_test.go:dup")

	a := New("pmdebugger")
	a.Add(Bug{Type: RedundantFlush, Seq: 30, Addr: 0x30, Size: 8, Site: site})
	a.Add(Bug{Type: NoDurability, Seq: 5, Addr: 0x50, Size: 8}) // end-of-program, early seq
	a.Counters = Counters{Stores: 10, Flushes: 4, Fences: 2, ArrayAppends: 10}

	b := New("pmdebugger")
	// Same site as shard a's bug but earlier in the stream: the merged
	// report must keep this one, as a sequential replay would have.
	b.Add(Bug{Type: RedundantFlush, Seq: 10, Addr: 0x10, Size: 8, Site: site})
	b.Add(Bug{Type: FlushNothing, Seq: 20, Addr: 0x20, Size: 8})
	b.Counters = Counters{Stores: 7, Flushes: 3, Fences: 1, ArrayAppends: 7}

	m := Merge("pmdebugger", []*Report{a, nil, b})
	if m.Detector != "pmdebugger" {
		t.Fatalf("detector name %q", m.Detector)
	}
	want := []struct {
		typ BugType
		seq uint64
	}{
		{RedundantFlush, 10}, // dedup kept the earlier occurrence
		{FlushNothing, 20},
		{NoDurability, 5}, // end-of-program bugs sort after stream bugs
	}
	if len(m.Bugs) != len(want) {
		t.Fatalf("got %d bugs, want %d:\n%s", len(m.Bugs), len(want), m.Summary())
	}
	for i, w := range want {
		if m.Bugs[i].Type != w.typ || m.Bugs[i].Seq != w.seq {
			t.Errorf("bug[%d] = %v, want type %s seq %d", i, m.Bugs[i], w.typ, w.seq)
		}
	}
	if m.Counters.Stores != 17 || m.Counters.Flushes != 7 || m.Counters.Fences != 3 ||
		m.Counters.ArrayAppends != 17 {
		t.Errorf("counters not summed: %+v", m.Counters)
	}
	// The merged report keeps deduplicating: re-adding the site bug is a
	// no-op.
	m.Add(Bug{Type: RedundantFlush, Seq: 99, Addr: 0x99, Size: 8, Site: site})
	if len(m.Bugs) != len(want) {
		t.Error("merged report lost dedup state")
	}
}

func TestEndOfProgramClassification(t *testing.T) {
	for _, typ := range AllBugTypes() {
		want := typ == NoDurability || typ == CrossFailureSemantic
		if typ.EndOfProgram() != want {
			t.Errorf("%s: EndOfProgram() = %v, want %v", typ, typ.EndOfProgram(), want)
		}
	}
}
