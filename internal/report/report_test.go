package report

import (
	"strings"
	"testing"

	"pmdebugger/internal/trace"
)

func TestBugTypeStrings(t *testing.T) {
	if len(AllBugTypes()) != NumBugTypes || NumBugTypes != 10 {
		t.Fatalf("bug type count = %d", NumBugTypes)
	}
	seen := map[string]bool{}
	for _, bt := range AllBugTypes() {
		s := bt.String()
		if s == "" || strings.HasPrefix(s, "bugtype(") {
			t.Errorf("type %d has no name", bt)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if BugType(99).String() != "bugtype(99)" {
		t.Errorf("unknown type name wrong")
	}
}

func TestPerformanceClassification(t *testing.T) {
	perf := map[BugType]bool{
		RedundantFlush: true, RedundantLogging: true, RedundantEpochFence: true,
	}
	for _, bt := range AllBugTypes() {
		if bt.Performance() != perf[bt] {
			t.Errorf("%s Performance() = %v", bt, bt.Performance())
		}
	}
}

func TestAddDedup(t *testing.T) {
	r := New("test")
	site := trace.RegisterSite("dedup-site")
	// Same site, different addresses: one bug.
	r.Add(Bug{Type: NoDurability, Addr: 1, Size: 8, Site: site})
	r.Add(Bug{Type: NoDurability, Addr: 2, Size: 8, Site: site})
	if r.Len() != 1 {
		t.Fatalf("site dedup failed: %d", r.Len())
	}
	// Same site, different type: separate bug.
	r.Add(Bug{Type: RedundantFlush, Addr: 1, Size: 8, Site: site})
	if r.Len() != 2 {
		t.Fatalf("type separation failed: %d", r.Len())
	}
	// No site: dedup by address.
	r.Add(Bug{Type: NoDurability, Addr: 5, Size: 8})
	r.Add(Bug{Type: NoDurability, Addr: 5, Size: 8})
	r.Add(Bug{Type: NoDurability, Addr: 6, Size: 8})
	if r.Len() != 4 {
		t.Fatalf("addr dedup failed: %d", r.Len())
	}
	if !r.Has(RedundantFlush) || r.Has(FlushNothing) {
		t.Fatalf("Has() wrong")
	}
	byType := r.CountByType()
	if byType[NoDurability] != 3 || byType[RedundantFlush] != 1 {
		t.Fatalf("CountByType = %v", byType)
	}
}

func TestSummaryAndCounters(t *testing.T) {
	r := New("demo")
	r.Counters.Stores = 10
	r.Counters.Fences = 5
	r.Counters.TreeNodeSamples = 50
	if r.Counters.AvgTreeNodes() != 10 {
		t.Fatalf("AvgTreeNodes = %v", r.Counters.AvgTreeNodes())
	}
	if got := (Counters{}).AvgTreeNodes(); got != 0 {
		t.Fatalf("zero-fence avg = %v", got)
	}
	s := r.Summary()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "no bugs detected") {
		t.Fatalf("empty summary = %q", s)
	}
	r.Add(Bug{Type: NoDurability, Addr: 0x10, Size: 8, Message: "missing CLF"})
	s = r.Summary()
	if !strings.Contains(s, "no durability guarantee") || !strings.Contains(s, "missing CLF") {
		t.Fatalf("summary = %q", s)
	}
}

func TestBugString(t *testing.T) {
	b := Bug{Type: RedundantFlush, Addr: 0x40, Size: 8, Strand: 2,
		Site: trace.RegisterSite("bug-site"), Message: "again"}
	s := b.String()
	for _, want := range []string{"redundant flushes", "0x40", "bug-site", "strand=2", "again"} {
		if !strings.Contains(s, want) {
			t.Errorf("Bug.String() = %q missing %q", s, want)
		}
	}
}

func TestAddLazyBuildsMessageOnce(t *testing.T) {
	r := New("t")
	calls := 0
	b := Bug{Type: MultipleOverwrites, Addr: 0x100, Size: 8, Seq: 7}
	r.AddLazy(b, func() string { calls++; return "built" })
	if calls != 1 {
		t.Fatalf("builder called %d times for a fresh bug, want 1", calls)
	}
	if len(r.Bugs) != 1 || r.Bugs[0].Message != "built" {
		t.Fatalf("lazy message not attached: %+v", r.Bugs)
	}
}

func TestAddLazySkipsBuilderOnDedup(t *testing.T) {
	r := New("t")
	b := Bug{Type: MultipleOverwrites, Addr: 0x100, Size: 8, Seq: 7}
	r.Add(b)
	calls := 0
	for i := 0; i < 1000; i++ {
		r.AddLazy(b, func() string { calls++; return "expensive" })
	}
	if calls != 0 {
		t.Fatalf("builder ran %d times for deduplicated bugs, want 0", calls)
	}
	if len(r.Bugs) != 1 {
		t.Fatalf("dedup broken: %d bugs", len(r.Bugs))
	}
}

func TestAddLazyNilBuilder(t *testing.T) {
	r := New("t")
	r.AddLazy(Bug{Type: FlushNothing, Addr: 0x40, Size: 64}, nil)
	if len(r.Bugs) != 1 || r.Bugs[0].Message != "" {
		t.Fatalf("nil builder handling wrong: %+v", r.Bugs)
	}
}

func TestAddLazySharesDedupWithAdd(t *testing.T) {
	r := New("t")
	r.AddLazy(Bug{Type: RedundantFlush, Addr: 0x80, Size: 64}, func() string { return "m" })
	r.Add(Bug{Type: RedundantFlush, Addr: 0x80, Size: 64, Message: "other"})
	if len(r.Bugs) != 1 {
		t.Fatalf("Add and AddLazy use different dedup keys: %d bugs", len(r.Bugs))
	}
}
