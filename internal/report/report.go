// Package report defines bug records and detection reports shared by every
// detector: the ten bug types of the paper (Table 6), per-bug provenance,
// deduplication, and the bookkeeping counters the evaluation quantifies
// (tree size per fence interval, reorganizations — §7.5).
package report

import (
	"fmt"
	"sort"
	"strings"

	"pmdebugger/internal/trace"
)

// BugType enumerates the ten crash-consistency bug types of Table 6. The
// first five are common to all persistency models (§4.5); the next four are
// specific to the relaxed models (§5.2); the last is the cross-failure
// semantic bug of XFDetector that PMDebugger detects via a manually invoked
// recovery pass (§7.3).
type BugType uint8

// The ten bug types.
const (
	// NoDurability: a persistent memory location is not persisted after the
	// last write to it (missing CLF or missing fence).
	NoDurability BugType = iota
	// MultipleOverwrites: the same location is written multiple times before
	// its durability is guaranteed (strict model only).
	MultipleOverwrites
	// NoOrderGuarantee: a programmer-specified persist order X-before-Y is
	// violated.
	NoOrderGuarantee
	// RedundantFlush: a store's cache line is flushed more than once before
	// the nearest fence (performance bug).
	RedundantFlush
	// FlushNothing: a CLF persists no prior store.
	FlushNothing
	// RedundantLogging: a data object is updated once but logged multiple
	// times in a logging-based transaction (performance bug).
	RedundantLogging
	// LackDurabilityInEpoch: at epoch end, stores from the epoch are not yet
	// durable.
	LackDurabilityInEpoch
	// RedundantEpochFence: more than one fence inside an epoch section
	// (performance bug).
	RedundantEpochFence
	// LackOrderingInStrands: persists across strands violate a required
	// cross-strand order.
	LackOrderingInStrands
	// CrossFailureSemantic: post-failure execution reads semantically
	// inconsistent data.
	CrossFailureSemantic

	// NumBugTypes is the number of defined bug types.
	NumBugTypes = int(CrossFailureSemantic) + 1
)

// String returns the paper's name for the bug type.
func (b BugType) String() string {
	switch b {
	case NoDurability:
		return "no durability guarantee"
	case MultipleOverwrites:
		return "multiple overwrites"
	case NoOrderGuarantee:
		return "no order guarantee"
	case RedundantFlush:
		return "redundant flushes"
	case FlushNothing:
		return "flush nothing"
	case RedundantLogging:
		return "redundant logging"
	case LackDurabilityInEpoch:
		return "lack durability in epoch"
	case RedundantEpochFence:
		return "redundant epoch fence"
	case LackOrderingInStrands:
		return "lack ordering in strands"
	case CrossFailureSemantic:
		return "cross-failure semantic"
	default:
		return fmt.Sprintf("bugtype(%d)", uint8(b))
	}
}

// AllBugTypes lists every bug type in Table 6 column order.
func AllBugTypes() []BugType {
	out := make([]BugType, NumBugTypes)
	for i := range out {
		out[i] = BugType(i)
	}
	return out
}

// Performance reports whether the bug type is a performance bug (does not
// break crash consistency, only wastes cycles), following the convention of
// §4.5.
func (b BugType) Performance() bool {
	switch b {
	case RedundantFlush, RedundantLogging, RedundantEpochFence:
		return true
	}
	return false
}

// EndOfProgram reports whether bugs of this type are emitted by the
// end-of-program finalization (the §4.5 no-durability sweep and the
// cross-failure recovery check) rather than at the offending instruction.
// Merge uses this to keep finalization bugs after stream bugs, matching the
// order a sequential replay produces.
func (b BugType) EndOfProgram() bool {
	return b == NoDurability || b == CrossFailureSemantic
}

// Bug is one detected bug instance.
type Bug struct {
	Type    BugType
	Addr    uint64
	Size    uint64
	Seq     uint64       // sequence number of the offending instruction
	Site    trace.SiteID // source site of the store that created the record
	Strand  int32
	Message string
}

// String formats the bug for the report output.
func (b Bug) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s]", b.Type)
	if b.Size > 0 {
		fmt.Fprintf(&sb, " addr=%#x size=%d", b.Addr, b.Size)
	}
	if b.Site != 0 {
		fmt.Fprintf(&sb, " site=%s", b.Site)
	}
	if b.Strand != 0 {
		fmt.Fprintf(&sb, " strand=%d", b.Strand)
	}
	if b.Message != "" {
		fmt.Fprintf(&sb, ": %s", b.Message)
	}
	return sb.String()
}

// Counters records the bookkeeping statistics the evaluation quantifies.
type Counters struct {
	Stores  uint64
	Flushes uint64
	Fences  uint64

	// TreeNodeSamples accumulates the tree size observed at each fence so
	// the average number of tree nodes per fence interval (Fig. 11) can be
	// derived: TreeNodeSamples / Fences.
	TreeNodeSamples uint64
	// TreeReorgs counts expensive tree reorganizations (§7.5).
	TreeReorgs uint64
	// ArrayAppends counts stores absorbed by the memory-location array.
	ArrayAppends uint64
	// ArraySpills counts stores that overflowed the array into the tree.
	ArraySpills uint64
	// Redistributions counts array entries moved to the tree at fences.
	Redistributions uint64

	// IndexLineHits and IndexLineMisses count cache-line index lookups on
	// the detector hot path that found / did not find candidate records.
	// Both stay zero when the index is disabled (core.Config.DisableIndex).
	IndexLineHits   uint64
	IndexLineMisses uint64
	// MRUProbeHits counts store and CLF events answered entirely by the
	// most-recent CLF intervals (the Fig. 2a locality fast path), skipping
	// both the index lookup and the full interval scan.
	MRUProbeHits uint64
}

// Merge accumulates another counter set into c (used when combining shard
// reports: shards see disjoint event subsequences, so sums reproduce the
// sequential totals).
func (c *Counters) Merge(o Counters) {
	c.Stores += o.Stores
	c.Flushes += o.Flushes
	c.Fences += o.Fences
	c.TreeNodeSamples += o.TreeNodeSamples
	c.TreeReorgs += o.TreeReorgs
	c.ArrayAppends += o.ArrayAppends
	c.ArraySpills += o.ArraySpills
	c.Redistributions += o.Redistributions
	c.IndexLineHits += o.IndexLineHits
	c.IndexLineMisses += o.IndexLineMisses
	c.MRUProbeHits += o.MRUProbeHits
}

// AvgTreeNodes returns the average tree size per fence interval (Fig. 11).
func (c Counters) AvgTreeNodes() float64 {
	if c.Fences == 0 {
		return 0
	}
	return float64(c.TreeNodeSamples) / float64(c.Fences)
}

// Report is a detector's final output: the deduplicated bug list plus
// counters.
type Report struct {
	Detector string
	Bugs     []Bug
	Counters Counters

	// Failures records detection-infrastructure failures — a shard
	// consumer's detector panicking mid-stream, for example. They are not
	// bugs in the program under test: a non-empty Failures means the bug
	// list may be incomplete and the run should not be trusted as a clean
	// pass.
	Failures []string

	seen map[bugKey]bool
}

type bugKey struct {
	typ  BugType
	addr uint64
	size uint64
	site trace.SiteID
}

// New returns an empty report for the named detector.
func New(detector string) *Report {
	return &Report{Detector: detector, seen: map[bugKey]bool{}}
}

func keyOf(b Bug) bugKey {
	k := bugKey{typ: b.Type, addr: b.Addr, size: b.Size, site: b.Site}
	if b.Site != 0 {
		// When a site is known, dedup by site alone within the type: the
		// same buggy line touches many addresses across iterations.
		k.addr, k.size = 0, 0
	}
	return k
}

// Add records a bug, deduplicating by (type, addr, size, site): a buggy
// store site executed a million times is one bug, as in the paper's counting
// of application bugs.
func (r *Report) Add(b Bug) {
	k := keyOf(b)
	if r.seen[k] {
		return
	}
	r.seen[k] = true
	r.Bugs = append(r.Bugs, b)
}

// AddLazy records a bug like Add but defers building its message: msg runs
// only when the bug survives deduplication, so hot-path rule sites do not
// format (or allocate) a string for the millionth duplicate of a
// known bug. b.Message is ignored; a nil msg leaves the message empty.
func (r *Report) AddLazy(b Bug, msg func() string) {
	k := keyOf(b)
	if r.seen[k] {
		return
	}
	r.seen[k] = true
	if msg != nil {
		b.Message = msg()
	}
	r.Bugs = append(r.Bugs, b)
}

// AddFailure records a detection-infrastructure failure (see Failures).
func (r *Report) AddFailure(msg string) {
	r.Failures = append(r.Failures, msg)
}

// Merge combines shard reports produced by a partitioned replay into one
// deterministic report. Bugs are re-deduplicated in global stream order —
// stream-phase bugs by the sequence number of the offending instruction,
// then end-of-program bugs by the sequence number of the unpersisted store
// (ties broken by address, which only split records can produce) — so the
// merged report is identical, bug for bug and in the same order, to the one
// a sequential replay of the unpartitioned stream produces. Counters are
// summed.
func Merge(detector string, shards []*Report) *Report {
	out := New(detector)
	var bugs []Bug
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		bugs = append(bugs, sh.Bugs...)
		out.Counters.Merge(sh.Counters)
		out.Failures = append(out.Failures, sh.Failures...)
	}
	sort.SliceStable(bugs, func(i, j int) bool {
		bi, bj := bugs[i], bugs[j]
		if pi, pj := bi.Type.EndOfProgram(), bj.Type.EndOfProgram(); pi != pj {
			return !pi
		}
		if bi.Seq != bj.Seq {
			return bi.Seq < bj.Seq
		}
		return bi.Addr < bj.Addr
	})
	for _, b := range bugs {
		out.Add(b)
	}
	return out
}

// CountByType returns how many distinct bugs of each type were found.
func (r *Report) CountByType() map[BugType]int {
	out := map[BugType]int{}
	for _, b := range r.Bugs {
		out[b.Type]++
	}
	return out
}

// Has reports whether at least one bug of the given type was found.
func (r *Report) Has(t BugType) bool {
	for _, b := range r.Bugs {
		if b.Type == t {
			return true
		}
	}
	return false
}

// Len returns the number of distinct bugs.
func (r *Report) Len() int { return len(r.Bugs) }

// Summary renders the report in the style of the tool's end-of-run output.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s report ===\n", r.Detector)
	fmt.Fprintf(&sb, "instructions: %d stores, %d writebacks, %d fences\n",
		r.Counters.Stores, r.Counters.Flushes, r.Counters.Fences)
	if len(r.Failures) > 0 {
		fmt.Fprintf(&sb, "%d detection failure(s) — the bug list may be incomplete:\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(&sb, "  ! %s\n", f)
		}
	}
	if len(r.Bugs) == 0 {
		sb.WriteString("no bugs detected\n")
		return sb.String()
	}
	byType := r.CountByType()
	types := make([]BugType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	fmt.Fprintf(&sb, "%d bug(s) detected:\n", len(r.Bugs))
	for _, t := range types {
		fmt.Fprintf(&sb, "  %-28s %d\n", t.String()+":", byType[t])
	}
	for _, b := range r.Bugs {
		fmt.Fprintf(&sb, "  %s\n", b)
	}
	return sb.String()
}
