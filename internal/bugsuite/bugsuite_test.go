package bugsuite

import (
	"strings"
	"testing"

	"pmdebugger/internal/report"
)

func TestSuiteCountsMatchTable6(t *testing.T) {
	cases := Cases()
	if len(cases) != 78 {
		t.Fatalf("suite has %d cases, want 78", len(cases))
	}
	byType := map[report.BugType]int{}
	ids := map[string]bool{}
	for _, c := range cases {
		byType[c.Type]++
		if ids[c.ID] {
			t.Errorf("duplicate case id %s", c.ID)
		}
		ids[c.ID] = true
		if c.Run == nil {
			t.Errorf("case %s has no Run", c.ID)
		}
	}
	for typ, want := range ExpectedCounts {
		if byType[typ] != want {
			t.Errorf("%s: %d cases, want %d", typ, byType[typ], want)
		}
	}
}

func TestPMDebuggerDetectsEveryCase(t *testing.T) {
	for _, c := range Cases() {
		found, err := Detects(PMDebugger, c)
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if !found {
			rep, _ := RunCase(PMDebugger, c)
			t.Errorf("pmdebugger missed %s (%s)\n%s", c.ID, c.Type, rep.Summary())
		}
	}
}

func TestBaselinesDetectExactlyTheirTypes(t *testing.T) {
	for _, k := range []DetectorKind{Pmemcheck, PMTest, XFDetector} {
		for _, c := range Cases() {
			found, err := Detects(k, c)
			if err != nil {
				t.Fatalf("%s/%s: %v", k, c.ID, err)
			}
			if CanDetect(k, c.Type) && !found {
				rep, _ := RunCase(k, c)
				t.Errorf("%s missed in-capability case %s (%s)\n%s", k, c.ID, c.Type, rep.Summary())
			}
			if !CanDetect(k, c.Type) && found {
				t.Errorf("%s detected out-of-capability case %s (%s)", k, c.ID, c.Type)
			}
		}
	}
}

func TestNoFalsePositivesOnTwins(t *testing.T) {
	for _, k := range AllDetectors() {
		for _, c := range CorrectTwins() {
			rep, err := RunCase(k, c)
			if err != nil {
				t.Fatalf("%s/%s: %v", k, c.ID, err)
			}
			if rep.Len() != 0 {
				t.Errorf("%s false positive on %s:\n%s", k, c.ID, rep.Summary())
			}
		}
	}
}

func TestMatrixReproducesPaperNumbers(t *testing.T) {
	m, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: PMDebugger 78 (ten types), XFDetector 65 (six), PMTest 61
	// (five), Pmemcheck 55 (four).
	wantTotal := map[DetectorKind]int{
		PMDebugger: 78, XFDetector: 65, PMTest: 61, Pmemcheck: 55,
	}
	wantTypes := map[DetectorKind]int{
		PMDebugger: 10, XFDetector: 6, PMTest: 5, Pmemcheck: 4,
	}
	for k, want := range wantTotal {
		if m.TotalDetected[k] != want {
			t.Errorf("%s detected %d, want %d (missed: %v)",
				k, m.TotalDetected[k], want, m.Missed[k])
		}
	}
	for k, want := range wantTypes {
		if m.TypesDetected[k] != want {
			t.Errorf("%s types %d, want %d", k, m.TypesDetected[k], want)
		}
	}
	// False negative rates: 29.5% / 21.8% / 16.7% / 0%.
	checkRate := func(k DetectorKind, want float64) {
		t.Helper()
		if got := m.FalseNegativeRate(k); got < want-0.1 || got > want+0.1 {
			t.Errorf("%s FN rate = %.1f%%, want %.1f%%", k, got, want)
		}
	}
	checkRate(Pmemcheck, 29.5)
	checkRate(PMTest, 21.8)
	checkRate(XFDetector, 16.7)
	checkRate(PMDebugger, 0)
	for _, k := range AllDetectors() {
		if m.FalsePositives[k] != 0 {
			t.Errorf("%s has %d false positives", k, m.FalsePositives[k])
		}
	}
	out := m.Format()
	for _, want := range []string{"pmdebugger", "pmemcheck", "Table 6", "78"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(m.FormatMissed(), "pmemcheck missed 23") {
		t.Errorf("FormatMissed:\n%s", m.FormatMissed())
	}
}

func TestDetectorKindStrings(t *testing.T) {
	if PMDebugger.String() != "pmdebugger" || Pmemcheck.String() != "pmemcheck" ||
		PMTest.String() != "pmtest" || XFDetector.String() != "xfdetector" {
		t.Fatal("kind names wrong")
	}
	if len(AllDetectors()) != 4 {
		t.Fatal("detector list wrong")
	}
}
