package bugsuite

import (
	"errors"
	"fmt"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

// crossFailureCases returns the 4 cross-failure semantic cases: programs
// whose every store is eventually durable (so no other rule fires), but
// whose recovery code reads semantically inconsistent data for some crash
// point. The Cross hook is the "manually invoked recovery program" of
// §7.3: it replays the protocol on a private pool, crashes at the
// vulnerable point, and runs the recovery-side consistency check.
func crossFailureCases() []Case {
	cf := func(id string, run func(h *Harness) error, cross func() error) Case {
		return Case{
			ID: "cf-" + id, Type: report.CrossFailureSemantic, Model: rules.Strict,
			Run: run, Cross: cross,
		}
	}
	return []Case{
		cf("valid-flag-first",
			func(h *Harness) error {
				// Monitored run: flag and payload both durable; the bug is
				// that the flag is persisted before the payload.
				flag := h.PM.Alloc(64)
				payload := h.PM.Alloc(64)
				h.C.Store64(flag, 1)
				h.C.Persist(flag, 8)
				h.C.StoreBytes(payload, []byte("payload!"))
				h.C.Persist(payload, 8)
				return nil
			},
			func() error {
				pm := pmem.New(1 << 12)
				c := pm.Ctx()
				flag := pm.Alloc(64)
				payload := pm.Alloc(64)
				c.Store64(flag, 1)
				c.Persist(flag, 8)
				// Crash before the payload persists.
				c.StoreBytes(payload, []byte("payload!"))
				crashed := pm.Crash(pmem.CrashDropPending, 0)
				cc := crashed.Ctx()
				if cc.Load64(flag) == 1 && cc.Load64(payload) == 0 {
					return errors.New("recovery reads valid=1 with uninitialized payload")
				}
				return nil
			}),
		cf("count-ahead-of-data",
			func(h *Harness) error {
				arr := h.PM.Alloc(256)
				count := h.PM.Alloc(64)
				for i := uint64(0); i < 3; i++ {
					h.C.Store64(count, i+1)
					h.C.Persist(count, 8) // count persisted before the element
					h.C.Store64(arr+i*64, i+100)
					h.C.Persist(arr+i*64, 8)
				}
				return nil
			},
			func() error {
				pm := pmem.New(1 << 12)
				c := pm.Ctx()
				arr := pm.Alloc(256)
				count := pm.Alloc(64)
				c.Store64(count, 1)
				c.Persist(count, 8)
				c.Store64(arr, 100)
				// Crash before the element persists.
				crashed := pm.Crash(pmem.CrashDropPending, 0)
				cc := crashed.Ctx()
				n := cc.Load64(count)
				if n >= 1 && cc.Load64(arr) == 0 {
					return fmt.Errorf("recovery sees count=%d but element 0 missing", n)
				}
				return nil
			}),
		cf("log-truncated-early",
			func(h *Harness) error {
				logHead := h.PM.Alloc(64)
				data := h.PM.Alloc(64)
				h.C.Store64(logHead, 1) // log valid
				h.C.Persist(logHead, 8)
				h.C.Store64(logHead, 0) // truncate before applying
				h.C.Persist(logHead, 8)
				h.C.Store64(data, 7) // apply after truncation
				h.C.Persist(data, 8)
				return nil
			},
			func() error {
				pm := pmem.New(1 << 12)
				c := pm.Ctx()
				logHead := pm.Alloc(64)
				data := pm.Alloc(64)
				c.Store64(logHead, 1)
				c.Persist(logHead, 8)
				c.Store64(logHead, 0)
				c.Persist(logHead, 8)
				// Crash before the data application persists.
				c.Store64(data, 7)
				crashed := pm.Crash(pmem.CrashDropPending, 0)
				cc := crashed.Ctx()
				if cc.Load64(logHead) == 0 && cc.Load64(data) != 7 {
					return errors.New("log retired before its effects were applied; recovery cannot redo")
				}
				return nil
			}),
		cf("torn-pair-same-fence",
			func(h *Harness) error {
				// Two semantically-coupled fields on different lines
				// persisted by one fence: either may land without the
				// other.
				a := h.PM.Alloc(64)
				b := h.PM.Alloc(64)
				h.C.Store64(a, 0xaaaa)
				h.C.Store64(b, 0xbbbb)
				h.C.Flush(a, 8)
				h.C.Flush(b, 8)
				h.C.Fence()
				return nil
			},
			func() error {
				pm := pmem.New(1 << 12)
				c := pm.Ctx()
				a := pm.Alloc(64)
				b := pm.Alloc(64)
				c.Store64(a, 0xaaaa)
				c.Store64(b, 0xbbbb)
				c.Flush(a, 8)
				c.Flush(b, 8)
				// Crash with the writebacks issued but the fence not yet
				// executed: the hardware may persist either line.
				for seed := int64(0); seed < 8; seed++ {
					crashed := pm.Crash(pmem.CrashRandomPending, seed)
					cc := crashed.Ctx()
					av, bv := cc.Load64(a), cc.Load64(b)
					if (av == 0xaaaa) != (bv == 0xbbbb) {
						return fmt.Errorf("recovery reads torn pair: a=%#x b=%#x", av, bv)
					}
				}
				return nil
			}),
	}
}
