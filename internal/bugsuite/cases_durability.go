package bugsuite

import (
	"fmt"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// durabilityCases returns the 44 no-durability-guarantee cases: 20
// scenario-specific cases covering the distinct ways durability is lost
// (missing CLF, missing fence, partial flushes, line splits, re-dirtied
// lines, long-lived tree-resident records, relaxed-model contexts), plus 24
// cases generated over a parameter grid of object sizes, intra-line
// offsets and failure modes so every split/overlap path in the bookkeeping
// is exercised.
func durabilityCases() []Case {
	nd := func(id string, run func(h *Harness) error) Case {
		return Case{
			ID: "nd-" + id, Type: report.NoDurability, Model: rules.Strict,
			Watch: []string{"x"}, Run: run,
		}
	}
	cases := []Case{
		nd("missing-clf-basic", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1) // never flushed
			return nil
		}),
		nd("missing-fence-basic", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Flush(x, 8) // flushed, never fenced
			return nil
		}),
		nd("survives-fences", func(h *Harness) error {
			// The record migrates to the AVL tree and must still be
			// reported many fences later.
			x := h.Alloc("x", 8)
			y := h.Alloc("y", 8)
			h.C.Store64(x, 1)
			for i := 0; i < 20; i++ {
				h.C.Store64(y, uint64(i))
				h.C.Persist(y, 8)
			}
			return nil
		}),
		nd("partial-flush-middle", func(h *Harness) error {
			// A three-line object whose flush loop skips the middle line;
			// the detector must split the record and keep the remainder.
			blk := h.PM.Alloc(320)
			start := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", start+64, 64)
			h.C.StoreBytes(start, make([]byte, 192))
			h.C.Flush(start, 64)
			h.C.Flush(start+128, 64)
			h.C.Fence()
			return nil
		}),
		nd("cross-line-one-flushed", func(h *Harness) error {
			// A store spanning two cache lines with only one line flushed.
			base := h.PM.Alloc(192)
			x := base + 56 // 16 bytes: crosses into the next line
			h.PM.RegisterNamed("x", x, 16)
			h.C.StoreBytes(x, make([]byte, 16))
			h.C.Flush(x, 4) // flushes only the first line
			h.C.Fence()
			return nil
		}),
		nd("clflushopt-no-fence", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 7)
			h.C.FlushKind(x, 8, trace.CLFLUSHOPT) // optimized flush still needs the fence
			return nil
		}),
		nd("flush-wrong-target", func(h *Harness) error {
			x := h.Alloc("x", 8)
			y := h.Alloc("y", 8)
			h.C.Store64(y, 1)
			h.C.Persist(y, 8)
			h.C.Store64(x, 2)
			h.C.Flush(y, 8) // developer flushed the wrong variable
			h.C.Fence()
			return nil
		}),
		nd("rewrite-after-persist", func(h *Harness) error {
			// The last write is the one that lacks durability.
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Persist(x, 8)
			h.C.Store64(x, 2) // never persisted
			return nil
		}),
		nd("node-field-forgotten", func(h *Harness) error {
			// Three of four struct fields persisted; the developer missed
			// the fourth (it sits on a different line).
			node := h.PM.Alloc(256)
			h.PM.RegisterNamed("x", node+128, 8)
			h.C.Store64(node, 1)
			h.C.Store64(node+8, 2)
			h.C.Store64(node+16, 3)
			h.C.Store64(node+128, 4) // second line
			h.C.Flush(node, 24)
			h.C.Fence()
			return nil
		}),
		nd("list-head-unflushed", func(h *Harness) error {
			// Entry persisted; the published head pointer is not.
			entry := h.PM.Alloc(24)
			head := h.Alloc("x", 8)
			h.C.Store64(entry, 42)
			h.C.Store64(entry+8, 43)
			h.C.Persist(entry, 16)
			h.C.Store64(head, entry) // publication never flushed
			return nil
		}),
		nd("count-unfenced", func(h *Harness) error {
			payload := h.PM.Alloc(64)
			count := h.Alloc("x", 8)
			h.C.StoreBytes(payload, make([]byte, 64))
			h.C.Persist(payload, 64)
			h.C.Store64(count, 1)
			h.C.Flush(count, 8) // fence missing at program end
			return nil
		}),
		{
			ID: "nd-after-epoch", Type: report.NoDurability, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// Epoch-model program: a plain store after the transaction
				// is never persisted.
				p, err := h.PMDK()
				if err != nil {
					return err
				}
				root, _ := p.Root()
				tx := p.Begin()
				tx.Set(root, 1)
				tx.Commit()
				x := h.Alloc("x", 8)
				h.C.Store64(x, 99)
				return nil
			},
		},
		{
			ID: "nd-strand-leftover", Type: report.NoDurability, Model: rules.Strand,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// A strand persists its entry but leaves a second field
				// unflushed in its own bookkeeping space.
				x := h.Alloc("x", 8)
				y := h.Alloc("y", 8)
				s := h.C.StrandBegin()
				s.Store64(y, 1)
				s.Flush(y, 8)
				s.Fence()
				s.Store64(x, 2) // unflushed at strand end
				s.StrandEnd()
				return nil
			},
		},
		{
			ID: "nd-tx-raw-store-after-commit", Type: report.NoDurability, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				p, err := h.PMDK()
				if err != nil {
					return err
				}
				root, _ := p.Root()
				tx := p.Begin()
				tx.Set(root+8, 5)
				tx.Commit()
				// Developer updates a sibling field outside any
				// transaction and forgets pmemobj_persist.
				h.PM.RegisterNamed("x", root+16, 8)
				h.C.Store64(root+16, 6)
				return nil
			},
		},
		nd("flush-subset-loop", func(h *Harness) error {
			// Eight sibling slots; the flush loop covers only the first
			// four (a classic off-by-stride bug).
			base := h.PM.Alloc(512)
			h.PM.RegisterNamed("x", base+4*64, 8)
			for i := 0; i < 8; i++ {
				h.C.Store64(base+uint64(i)*64, uint64(i))
			}
			for i := 0; i < 4; i++ {
				h.C.Flush(base+uint64(i)*64, 8)
			}
			h.C.Fence()
			return nil
		}),
		nd("big-object-tail", func(h *Harness) error {
			// A 4 KiB object persisted except for its last line.
			obj := h.PM.Alloc(4096)
			h.PM.RegisterNamed("x", obj+4032, 64)
			h.C.StoreBytes(obj, make([]byte, 4096))
			h.C.Flush(obj, 4096-64)
			h.C.Fence()
			return nil
		}),
		nd("interleaved-two-vars", func(h *Harness) error {
			x := h.Alloc("x", 8)
			y := h.Alloc("y", 8)
			h.C.Store64(x, 1)
			h.C.Store64(y, 2)
			h.C.Store64(x, 3) // strict-model overwrite noise is fine here
			h.C.Flush(y, 8)
			h.C.Fence() // y durable; x never flushed
			return nil
		}),
		{
			ID: "nd-unflushed-overwrite-chain", Type: report.NoDurability, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				x := h.Alloc("x", 8)
				for i := 0; i < 5; i++ {
					h.C.Store64(x, uint64(i)) // legal overwrites (epoch model), never persisted
				}
				return nil
			},
		},
		nd("flushed-then-dirtied", func(h *Harness) error {
			// The line is flushed, then dirtied again; only the stale
			// snapshot is durable.
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Flush(x, 8)
			h.C.Store64(x, 2) // re-dirties after the flush
			h.C.Fence()       // persists the snapshot with value 1
			return nil
		}),
		nd("fence-before-flush", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Fence()     // nearest fence guarantees nothing (Fig. 3)
			h.C.Flush(x, 8) // flushed, but the program ends before a fence
			return nil
		}),
	}

	// Parameter-grid cases: sizes × intra-line offsets × failure mode.
	sizes := []uint64{8, 32, 64, 200}
	offsets := []uint64{0, 4, 60}
	for _, size := range sizes {
		for _, off := range offsets {
			for _, missing := range []string{"clf", "fence"} {
				size, off, missing := size, off, missing
				id := fmt.Sprintf("nd-gen-sz%d-off%d-no%s", size, off, missing)
				cases = append(cases, Case{
					ID: id, Type: report.NoDurability, Model: rules.Strict,
					Watch: []string{"x"},
					Run: func(h *Harness) error {
						// A clean neighbor cycle first keeps the
						// bookkeeping honest about which record is the
						// bug; it must precede the buggy sequence so its
						// fence cannot accidentally commit it.
						nb := h.PM.Alloc(64)
						h.C.Store64(nb, 1)
						h.C.Persist(nb, 8)

						blk := h.PM.Alloc(512)
						addr := (blk+63)&^63 + off
						h.PM.RegisterNamed("x", addr, size)
						data := make([]byte, size)
						for i := range data {
							data[i] = byte(i + 1)
						}
						h.C.StoreBytes(addr, data)
						if missing == "fence" {
							h.C.Flush(addr, size)
						}
						return nil
					},
				})
			}
		}
	}
	return cases
}
