package bugsuite

import (
	"fmt"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
)

// deliveryMode selects how the detector is attached to the case pool.
type deliveryMode int

const (
	deliverInline deliveryMode = iota
	deliverAsync
	deliverSharded
)

func (m deliveryMode) String() string {
	switch m {
	case deliverInline:
		return "inline"
	case deliverAsync:
		return "pipelined"
	default:
		return "sharded"
	}
}

// runCaseWith is RunCase with a selectable delivery mode: inline attaches
// the detector synchronously, async routes it through a trace.Pipeline via
// Pool.AttachAsync, and sharded attaches a core.ShardedDetector with
// AttachOptions.Shards (which silently degrades to a single consumer for
// configurations that are not core.Shardable — the differential covers the
// fallback path too). Harness.PM.End drains every mode, so Report is
// complete. The bool result reports whether delivery actually sharded.
func runCaseWith(k DetectorKind, c Case, mode deliveryMode) (*report.Report, bool, error) {
	h := NewHarness(c)
	if mode == deliverSharded && k == PMDebugger {
		cfg := core.Config{Model: c.Model, Orders: c.Orders}
		if c.Cross != nil {
			cfg.CrossFailureCheck = c.Cross
		}
		sd := core.NewSharded(cfg, 4)
		h.PM.AttachWith(sd, pmem.AttachOptions{Async: true, Shards: 4})
		if err := c.Run(h); err != nil {
			return nil, false, fmt.Errorf("case %s: %w", c.ID, err)
		}
		h.PM.End()
		return sd.Report(), !sd.Fallback(), nil
	}
	det := Build(k, c)
	if mode == deliverAsync {
		h.PM.AttachAsync(det)
	} else {
		h.PM.Attach(det)
	}
	if err := c.Run(h); err != nil {
		return nil, false, fmt.Errorf("case %s: %w", c.ID, err)
	}
	h.PM.End()
	return det.Report(), false, nil
}

// TestAsyncDeliveryByteIdenticalBugSuite runs every bug case (all 78, all
// ten bug types) and every correct twin under PMDebugger with inline,
// pipelined and sharded delivery, and requires byte-identical report
// summaries across all three. At least one suite case must genuinely shard
// (strand model, no order specs) so the sharded path is exercised for real
// and not only through its fallback.
func TestAsyncDeliveryByteIdenticalBugSuite(t *testing.T) {
	cases := append(Cases(), CorrectTwins()...)
	if len(cases) < 78 {
		t.Fatalf("expected at least the 78 bug cases, got %d", len(cases))
	}
	shardedRuns := 0
	for _, c := range cases {
		inline, _, err := runCaseWith(PMDebugger, c, deliverInline)
		if err != nil {
			t.Fatalf("inline %s: %v", c.ID, err)
		}
		for _, mode := range []deliveryMode{deliverAsync, deliverSharded} {
			got, sharded, err := runCaseWith(PMDebugger, c, mode)
			if err != nil {
				t.Fatalf("%s %s: %v", mode, c.ID, err)
			}
			if sharded {
				shardedRuns++
			}
			if want := inline.Summary(); want != got.Summary() {
				t.Errorf("%s: reports differ between delivery modes\n--- inline ---\n%s--- %s ---\n%s",
					c.ID, want, mode, got.Summary())
			}
		}
	}
	if shardedRuns == 0 {
		t.Error("no suite case exercised genuinely sharded delivery")
	}
}
