package bugsuite

import (
	"fmt"
	"testing"

	"pmdebugger/internal/report"
)

// runCaseWith is RunCase with a selectable delivery mode: inline attaches
// the detector synchronously, async routes it through a trace.Pipeline via
// Pool.AttachAsync. Harness.PM.End drains the pipeline, so Report is
// complete in both modes.
func runCaseWith(k DetectorKind, c Case, async bool) (*report.Report, error) {
	h := NewHarness(c)
	det := Build(k, c)
	if async {
		h.PM.AttachAsync(det)
	} else {
		h.PM.Attach(det)
	}
	if err := c.Run(h); err != nil {
		return nil, fmt.Errorf("case %s: %w", c.ID, err)
	}
	h.PM.End()
	return det.Report(), nil
}

// TestAsyncDeliveryByteIdenticalBugSuite runs every bug case (all 78, all
// ten bug types) and every correct twin under PMDebugger with inline and
// pipelined delivery, and requires byte-identical report summaries.
func TestAsyncDeliveryByteIdenticalBugSuite(t *testing.T) {
	cases := append(Cases(), CorrectTwins()...)
	if len(cases) < 78 {
		t.Fatalf("expected at least the 78 bug cases, got %d", len(cases))
	}
	for _, c := range cases {
		inline, err := runCaseWith(PMDebugger, c, false)
		if err != nil {
			t.Fatalf("inline %s: %v", c.ID, err)
		}
		async, err := runCaseWith(PMDebugger, c, true)
		if err != nil {
			t.Fatalf("async %s: %v", c.ID, err)
		}
		if want, got := inline.Summary(), async.Summary(); want != got {
			t.Errorf("%s: reports differ between delivery modes\n--- inline ---\n%s--- pipelined ---\n%s",
				c.ID, want, got)
		}
	}
}
