package bugsuite

import (
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

// redundantLoggingCases returns the 5 redundant-logging cases.
func redundantLoggingCases() []Case {
	rl := func(id string, run func(h *Harness) error) Case {
		return Case{
			ID: "rl-" + id, Type: report.RedundantLogging, Model: rules.Epoch,
			Watch: []string{"x"}, Run: run,
		}
	}
	// cleanTxTail persists x inside a well-formed epoch so the only bug is
	// the double logging.
	logTwice := func(h *Harness, first, second func(h *Harness, x uint64)) error {
		x := h.Alloc("x", 32)
		h.C.EpochBegin()
		first(h, x)
		second(h, x)
		h.C.StoreBytes(x, make([]byte, 32))
		h.C.Flush(x, 32)
		h.C.Fence()
		h.C.EpochEnd()
		return nil
	}
	return []Case{
		rl("exact-double", func(h *Harness) error {
			return logTwice(h,
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 32) },
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 32) })
		}),
		rl("partial-overlap", func(h *Harness) error {
			return logTwice(h,
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 16) },
				func(h *Harness, x uint64) { h.C.TxLogAdd(x+8, 16) })
		}),
		rl("containing-range", func(h *Harness) error {
			return logTwice(h,
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 8) },
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 32) })
		}),
		rl("pmdk-overlapping-add", func(h *Harness) error {
			// Through the transaction API: two partially overlapping
			// TX_ADDs write the overlap into the undo log twice.
			p, err := h.PMDK()
			if err != nil {
				return err
			}
			root, _ := p.Root()
			h.PM.RegisterNamed("x", root, 16)
			tx := p.Begin()
			tx.Add(root, 12)
			tx.Add(root+8, 8)
			tx.Store64(root, 1)
			tx.Store64(root+8, 2)
			tx.Commit()
			return nil
		}),
		rl("dup-after-other-object", func(h *Harness) error {
			return logTwice(h,
				func(h *Harness, x uint64) {
					h.C.TxLogAdd(x, 8)
					y := h.PM.Alloc(8)
					h.C.TxLogAdd(y, 8)
					h.C.Store64(y, 1)
					h.C.Flush(y, 8)
				},
				func(h *Harness, x uint64) { h.C.TxLogAdd(x, 8) })
		}),
	}
}

// epochDurabilityCases returns the 4 lack-durability-in-epoch cases.
func epochDurabilityCases() []Case {
	return []Case{
		{
			ID: "lde-unflushed-store", Type: report.LackDurabilityInEpoch, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// Fig. 7c: A is written in the epoch but only B is
				// persisted.
				x := h.Alloc("x", 8)
				y := h.Alloc("y", 8)
				h.C.EpochBegin()
				h.C.Store64(x, 1) // never flushed
				h.C.Store64(y, 2)
				h.C.Flush(y, 8)
				h.C.Fence()
				h.C.EpochEnd()
				return nil
			},
		},
		{
			ID: "lde-flushed-unfenced", Type: report.LackDurabilityInEpoch, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// The store is flushed but the epoch closes before any
				// fence.
				x := h.Alloc("x", 8)
				h.C.EpochBegin()
				h.C.Store64(x, 1)
				h.C.Flush(x, 8)
				h.C.EpochEnd()
				return nil
			},
		},
		{
			ID: "lde-partial-object", Type: report.LackDurabilityInEpoch, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// Only half the object reaches durability inside the
				// epoch (the PMDK "array" bug shape, Fig. 9c).
				blk := h.PM.Alloc(256)
				x := (blk + 63) &^ 63
				h.PM.RegisterNamed("x", x, 128)
				h.C.EpochBegin()
				h.C.StoreBytes(x, make([]byte, 128))
				h.C.Flush(x, 64) // second line missed
				h.C.Fence()
				h.C.EpochEnd()
				return nil
			},
		},
		{
			ID: "lde-pmdk-raw-store", Type: report.LackDurabilityInEpoch, Model: rules.Epoch,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// Fig. 9c through the transaction API: fields modified
				// with plain stores inside the TX, while only the sibling
				// allocation is persisted.
				p, err := h.PMDK()
				if err != nil {
					return err
				}
				root, _ := p.Root()
				h.PM.RegisterNamed("x", root+64, 8)
				tx := p.Begin()
				h.C.Store64(root+64, 7) // raw store: not added, not flushed
				tx.Set(root, 1)
				tx.Commit()
				return nil
			},
		},
	}
}

// epochFenceCases returns the 4 redundant-epoch-fence cases.
func epochFenceCases() []Case {
	return []Case{
		{
			ID: "ref-two-persists", Type: report.RedundantEpochFence, Model: rules.Epoch,
			Run: func(h *Harness) error {
				// Fig. 7a: two full persist sequences inside one epoch.
				x := h.PM.Alloc(128)
				h.C.EpochBegin()
				h.C.Store64(x, 1)
				h.C.Persist(x, 8)
				h.C.Store64(x+64, 2)
				h.C.Persist(x+64, 8)
				h.C.EpochEnd()
				return nil
			},
		},
		{
			ID: "ref-pmdk-persist-in-tx", Type: report.RedundantEpochFence, Model: rules.Epoch,
			Run: func(h *Harness) error {
				// Fig. 9b: pmemobj_persist called inside a transaction
				// adds a fence the TX commit already provides.
				p, err := h.PMDK()
				if err != nil {
					return err
				}
				root, _ := p.Root()
				tx := p.Begin()
				tx.Set(root, 1)
				p.Persist(root, 8) // the redundant fence
				tx.Commit()
				return nil
			},
		},
		{
			ID: "ref-three-fences", Type: report.RedundantEpochFence, Model: rules.Epoch,
			Run: func(h *Harness) error {
				x := h.PM.Alloc(256)
				h.C.EpochBegin()
				for i := 0; i < 3; i++ {
					h.C.Store64(x+uint64(i)*64, uint64(i))
					h.C.Persist(x+uint64(i)*64, 8)
				}
				h.C.EpochEnd()
				return nil
			},
		},
		{
			ID: "ref-bare-fence", Type: report.RedundantEpochFence, Model: rules.Epoch,
			Run: func(h *Harness) error {
				// A stray drain before the real persist.
				x := h.PM.Alloc(64)
				h.C.EpochBegin()
				h.C.Fence() // pointless drain
				h.C.Store64(x, 1)
				h.C.Persist(x, 8)
				h.C.EpochEnd()
				return nil
			},
		},
	}
}

// strandOrderCases returns the 2 lack-ordering-in-strands cases.
func strandOrderCases() []Case {
	abOrder := []rules.OrderSpec{{Before: "A", After: "B"}}
	return []Case{
		{
			ID: "los-two-strands", Type: report.LackOrderingInStrands, Model: rules.Strand,
			Orders: abOrder, Watch: []string{"A", "B"},
			Run: func(h *Harness) error {
				// Fig. 7b: strand 1 persists B while strand 0, which must
				// persist A first, is still running.
				a := h.Alloc("A", 8)
				b := h.Alloc("B", 8)
				s0 := h.C.StrandBegin()
				s1 := h.C.StrandBegin()
				s0.Store64(a, 1)
				s0.Store64(b, 2)
				s0.Flush(a, 8)
				s1.Store64(b, 3)
				s1.Flush(b, 8) // B persisted cross-strand before A is durable
				s1.Fence()
				s1.StrandEnd()
				s0.Fence()
				s0.Flush(b, 8)
				s0.Fence()
				s0.StrandEnd()
				return nil
			},
		},
		{
			ID: "los-three-strands", Type: report.LackOrderingInStrands, Model: rules.Strand,
			Orders: abOrder, Watch: []string{"A", "B"},
			Run: func(h *Harness) error {
				// The violating persist comes from a third strand while
				// the writer of A runs unjoined.
				a := h.Alloc("A", 8)
				b := h.Alloc("B", 8)
				c := h.Alloc("C", 8)
				s0 := h.C.StrandBegin()
				s1 := h.C.StrandBegin()
				s2 := h.C.StrandBegin()
				s1.Store64(c, 9)
				s1.Flush(c, 8)
				s1.Fence()
				s1.StrandEnd()
				s0.Store64(a, 1)
				s2.Store64(b, 2)
				s2.Flush(b, 8) // strand 2 persists B; strand 0 holds A undurable
				s2.Fence()
				s2.StrandEnd()
				s0.Flush(a, 8)
				s0.Fence()
				s0.StrandEnd()
				return nil
			},
		},
	}
}
