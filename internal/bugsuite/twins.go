package bugsuite

import (
	"pmdebugger/internal/rules"
)

// CorrectTwins returns correct counterparts of the bug cases: programs that
// exercise the same code shapes with the bug fixed. Every detector must
// report zero bugs on every twin — the false-positive measurement of §7.3.
func CorrectTwins() []Case {
	tw := func(id string, model rules.Model, run func(h *Harness) error) Case {
		return Case{ID: "tw-" + id, Model: model, Watch: []string{"x"}, Run: run}
	}
	return []Case{
		tw("persist-cycle", rules.Strict, func(h *Harness) error {
			x := h.Alloc("x", 8)
			for i := 0; i < 10; i++ {
				h.C.Store64(x, uint64(i))
				h.C.Persist(x, 8)
			}
			return nil
		}),
		tw("multi-line-object", rules.Strict, func(h *Harness) error {
			blk := h.PM.Alloc(320)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 8)
			h.C.StoreBytes(x, make([]byte, 192))
			h.C.Flush(x, 192) // single covering writeback
			h.C.Fence()
			return nil
		}),
		tw("overwrite-after-durable", rules.Strict, func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Persist(x, 8)
			h.C.Store64(x, 2)
			h.C.Persist(x, 8)
			return nil
		}),
		{
			ID: "tw-order-satisfied", Model: rules.Strict,
			Orders: []rules.OrderSpec{{Before: "value", After: "key"}},
			Watch:  []string{"value", "key"},
			Run: func(h *Harness) error {
				v := h.Alloc("value", 8)
				k := h.Alloc("key", 8)
				h.C.Store64(v, 1)
				h.C.Persist(v, 8)
				h.C.Store64(k, 2)
				h.C.Persist(k, 8)
				return nil
			},
		},
		tw("one-flush-per-line", rules.Strict, func(h *Harness) error {
			blk := h.PM.Alloc(192)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 16)
			h.C.Store64(x, 1)
			h.C.Store64(x+8, 2) // same line: one flush suffices
			h.C.Flush(x, 16)
			h.C.Fence()
			return nil
		}),
		tw("clean-pmdk-tx", rules.Epoch, func(h *Harness) error {
			p, err := h.PMDK()
			if err != nil {
				return err
			}
			root, _ := p.Root()
			h.PM.RegisterNamed("x", root, 8)
			for i := 0; i < 5; i++ {
				tx := p.Begin()
				tx.Set(root, uint64(i))
				tx.SetBytes(root+16, []byte{1, 2, 3, byte(i)})
				tx.Commit()
			}
			return nil
		}),
		tw("log-once-per-tx", rules.Epoch, func(h *Harness) error {
			x := h.Alloc("x", 16)
			for i := 0; i < 3; i++ {
				h.C.EpochBegin()
				h.C.TxLogAdd(x, 16)
				h.C.StoreBytes(x, []byte{byte(i), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
				h.C.Flush(x, 16)
				h.C.Fence()
				h.C.EpochEnd()
			}
			return nil
		}),
		tw("epoch-single-fence", rules.Epoch, func(h *Harness) error {
			blk := h.PM.Alloc(256)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 8)
			h.C.EpochBegin()
			h.C.Store64(x, 1)
			h.C.Store64(x+64, 2)
			h.C.Flush(x, 8)
			h.C.Flush(x+64, 8)
			h.C.Fence()
			h.C.EpochEnd()
			return nil
		}),
		{
			ID: "tw-strand-joined", Model: rules.Strand,
			Orders: []rules.OrderSpec{{Before: "A", After: "B"}},
			Watch:  []string{"A", "B"},
			Run: func(h *Harness) error {
				a := h.Alloc("A", 8)
				b := h.Alloc("B", 8)
				s0 := h.C.StrandBegin()
				s0.Store64(a, 1)
				s0.Flush(a, 8)
				s0.Fence()
				s0.StrandEnd()
				h.C.JoinStrand() // explicit order before touching B
				s1 := h.C.StrandBegin()
				s1.Store64(b, 2)
				s1.Flush(b, 8)
				s1.Fence()
				s1.StrandEnd()
				return nil
			},
		},
		{
			ID: "tw-recovery-sound", Model: rules.Strict,
			Run: func(h *Harness) error {
				// Payload persisted strictly before the valid flag.
				payload := h.PM.Alloc(64)
				flag := h.PM.Alloc(64)
				h.C.StoreBytes(payload, []byte("payload!"))
				h.C.Persist(payload, 8)
				h.C.Store64(flag, 1)
				h.C.Persist(flag, 8)
				return nil
			},
			Cross: func() error { return nil }, // recovery finds no inconsistency
		},
		tw("batched-stores-one-flush", rules.Strict, func(h *Harness) error {
			blk := h.PM.Alloc(128)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 8)
			for i := uint64(0); i < 8; i++ {
				h.C.Store8(x+i, byte(i))
			}
			h.C.Flush(x, 8)
			h.C.Fence()
			return nil
		}),
		tw("strand-independent", rules.Strand, func(h *Harness) error {
			x := h.Alloc("x", 8)
			y := h.Alloc("y", 8)
			s0 := h.C.StrandBegin()
			s1 := h.C.StrandBegin()
			s0.Store64(x, 1)
			s1.Store64(y, 2)
			s0.Flush(x, 8)
			s1.Flush(y, 8)
			s0.Fence()
			s1.Fence()
			s0.StrandEnd()
			s1.StrandEnd()
			return nil
		}),
	}
}
