package bugsuite

import (
	"fmt"
	"sort"
	"strings"

	"pmdebugger/internal/report"
)

// MatrixResult is the outcome of running the full suite under every
// detector: the Table 6 capability matrix and the §7.3 false-negative /
// false-positive rates.
type MatrixResult struct {
	// DetectedByType[k][t] counts cases of type t detected by detector k.
	DetectedByType map[DetectorKind]map[report.BugType]int
	// TotalDetected[k] is the detector's total across the 78 cases.
	TotalDetected map[DetectorKind]int
	// TypesDetected[k] is the number of distinct bug types found.
	TypesDetected map[DetectorKind]int
	// FalseNegatives / FalsePositives per detector.
	FalseNegatives map[DetectorKind]int
	FalsePositives map[DetectorKind]int
	// Missed lists the case IDs each detector failed to detect.
	Missed map[DetectorKind][]string
	// Cases is the number of bug cases; Twins the number of correct twins.
	Cases, Twins int
	// PMTestAnnotations counts the per-variable checker annotations the
	// PMTest developers had to supply across the suite, and
	// ConfigOrderLines the configuration-file lines PMDebugger needed for
	// the same coverage — the §8 programmer-effort comparison.
	PMTestAnnotations int
	ConfigOrderLines  int
}

// FalseNegativeRate returns the §7.3 rate for the detector.
func (m *MatrixResult) FalseNegativeRate(k DetectorKind) float64 {
	if m.Cases == 0 {
		return 0
	}
	return 100 * float64(m.FalseNegatives[k]) / float64(m.Cases)
}

// RunMatrix executes all 78 bug cases and all correct twins under the four
// detectors.
func RunMatrix() (*MatrixResult, error) {
	cases := Cases()
	twins := CorrectTwins()
	m := &MatrixResult{
		DetectedByType: map[DetectorKind]map[report.BugType]int{},
		TotalDetected:  map[DetectorKind]int{},
		TypesDetected:  map[DetectorKind]int{},
		FalseNegatives: map[DetectorKind]int{},
		FalsePositives: map[DetectorKind]int{},
		Missed:         map[DetectorKind][]string{},
		Cases:          len(cases),
		Twins:          len(twins),
	}
	for _, c := range cases {
		m.PMTestAnnotations += len(c.Watch) + len(c.Orders)
		m.ConfigOrderLines += len(c.Orders)
	}
	for _, k := range AllDetectors() {
		m.DetectedByType[k] = map[report.BugType]int{}
		for _, c := range cases {
			found, err := Detects(k, c)
			if err != nil {
				return nil, err
			}
			if found {
				m.DetectedByType[k][c.Type]++
				m.TotalDetected[k]++
			} else {
				m.FalseNegatives[k]++
				m.Missed[k] = append(m.Missed[k], c.ID)
			}
		}
		m.TypesDetected[k] = len(m.DetectedByType[k])
		for _, c := range twins {
			rep, err := RunCase(k, c)
			if err != nil {
				return nil, err
			}
			m.FalsePositives[k] += rep.Len()
		}
	}
	return m, nil
}

// Format renders the Table 6 matrix and the rates.
func (m *MatrixResult) Format() string {
	var sb strings.Builder
	types := report.AllBugTypes()
	fmt.Fprintf(&sb, "Table 6: bug detection capability (%d bug cases, %d correct twins)\n\n",
		m.Cases, m.Twins)
	fmt.Fprintf(&sb, "%-12s", "")
	for _, t := range types {
		fmt.Fprintf(&sb, " %5s", abbrev(t))
	}
	fmt.Fprintf(&sb, " %7s %6s %7s %4s\n", "total", "types", "FN-rate", "FP")
	fmt.Fprintf(&sb, "%-12s", "bug cases")
	for _, t := range types {
		fmt.Fprintf(&sb, " %5d", ExpectedCounts[t])
	}
	fmt.Fprintf(&sb, " %7d\n", m.Cases)
	for _, k := range AllDetectors() {
		fmt.Fprintf(&sb, "%-12s", k.String())
		for _, t := range types {
			n := m.DetectedByType[k][t]
			if n == 0 {
				fmt.Fprintf(&sb, " %5s", "-")
			} else {
				fmt.Fprintf(&sb, " %5d", n)
			}
		}
		fmt.Fprintf(&sb, " %7d %6d %6.1f%% %4d\n",
			m.TotalDetected[k], m.TypesDetected[k], m.FalseNegativeRate(k), m.FalsePositives[k])
	}
	fmt.Fprintf(&sb, "\nprogrammer effort (§8): pmtest needed %d checker annotations; "+
		"pmdebugger needed %d order-config lines\n",
		m.PMTestAnnotations, m.ConfigOrderLines)
	return sb.String()
}

// FormatMissed lists each detector's missed cases grouped by type.
func (m *MatrixResult) FormatMissed() string {
	var sb strings.Builder
	for _, k := range AllDetectors() {
		ids := append([]string(nil), m.Missed[k]...)
		sort.Strings(ids)
		fmt.Fprintf(&sb, "%s missed %d: %s\n", k, len(ids), strings.Join(ids, " "))
	}
	return sb.String()
}

func abbrev(t report.BugType) string {
	switch t {
	case report.NoDurability:
		return "nodur"
	case report.MultipleOverwrites:
		return "movr"
	case report.NoOrderGuarantee:
		return "noord"
	case report.RedundantFlush:
		return "rflsh"
	case report.FlushNothing:
		return "fnone"
	case report.RedundantLogging:
		return "rlog"
	case report.LackDurabilityInEpoch:
		return "ldepo"
	case report.RedundantEpochFence:
		return "refen"
	case report.LackOrderingInStrands:
		return "lostr"
	case report.CrossFailureSemantic:
		return "xfail"
	default:
		return "?"
	}
}
