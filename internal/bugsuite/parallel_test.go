package bugsuite

import (
	"reflect"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// TestParallelReplayMatchesSequentialOnSuite records every bug case's
// instruction stream and verifies that the sharded parallel replay produces
// a report identical — same bugs, same order, same counters — to the
// sequential replay. Strand cases exercise the real partitioned path (or
// its order-spec fallback); all other models exercise the batched
// sequential fallback, which must also match exactly.
func TestParallelReplayMatchesSequentialOnSuite(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			h := NewHarness(c)
			rec := trace.NewRecorder(0)
			h.PM.Attach(rec)
			if err := c.Run(h); err != nil {
				t.Fatal(err)
			}
			h.PM.End()

			cfg := core.Config{Model: c.Model, Orders: c.Orders}
			if c.Cross != nil {
				cfg.CrossFailureCheck = c.Cross
			}
			seq := core.New(cfg)
			rec.Replay(seq)
			seqRep := seq.Report()
			parRep := core.ReplayParallel(rec.Events, cfg, 4)
			if seqRep.Summary() != parRep.Summary() {
				t.Fatalf("parallel report differs from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
					seqRep.Summary(), parRep.Summary())
			}
			if !reflect.DeepEqual(seqRep.Bugs, parRep.Bugs) {
				t.Fatalf("bug lists differ\nseq: %v\npar: %v", seqRep.Bugs, parRep.Bugs)
			}
			if seqRep.Counters != parRep.Counters {
				t.Fatalf("counters differ\nseq: %+v\npar: %+v", seqRep.Counters, parRep.Counters)
			}
		})
	}
}

// TestStrandCasesStillDetectInParallel pins that detection capability
// survives the parallel path for the strand cases specifically.
func TestStrandCasesStillDetectInParallel(t *testing.T) {
	n := 0
	for _, c := range Cases() {
		if c.Model != rules.Strand {
			continue
		}
		n++
		h := NewHarness(c)
		rec := trace.NewRecorder(0)
		h.PM.Attach(rec)
		if err := c.Run(h); err != nil {
			t.Fatal(err)
		}
		h.PM.End()
		cfg := core.Config{Model: c.Model, Orders: c.Orders}
		if !core.ReplayParallel(rec.Events, cfg, 4).Has(c.Type) {
			t.Errorf("case %s: parallel replay missed the planted %s bug", c.ID, c.Type)
		}
	}
	if n == 0 {
		t.Fatal("no strand cases in the suite")
	}
}
