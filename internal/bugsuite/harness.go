// Package bugsuite is the bug evaluation dataset of §7.3 (Table 6): 78 bug
// cases across the ten bug types — with the exact per-type counts of the
// paper — plus correct twin programs for false-positive measurement, and
// the machinery to run every case under every detector and produce the
// capability matrix and false-negative rates.
package bugsuite

import (
	"fmt"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

// Case is one bug scenario (or correct twin).
type Case struct {
	// ID uniquely names the case.
	ID string
	// Type is the bug type the scenario plants (ignored for twins).
	Type report.BugType
	// Model is the persistency model the scenario uses.
	Model rules.Model
	// Orders are the persist-order requirements handed to detectors that
	// accept them (PMDebugger's configuration file, PMTest's
	// isOrderedBefore, XFDetector's requirements).
	Orders []rules.OrderSpec
	// Watch lists the variable names the PMTest developers annotated with
	// checkers. Without an entry here PMTest is blind to the variable.
	Watch []string
	// PoolSize overrides the default 1 MiB pool.
	PoolSize uint64
	// Run executes the scenario against the harness pool.
	Run func(h *Harness) error
	// Cross, when non-nil, is the post-failure recovery check of the
	// cross-failure cases: it is invoked by the detectors that support
	// cross-failure testing and returns an error when recovery would read
	// semantically inconsistent data. It must be self-contained (it builds
	// its own pools) so it adds no events to the monitored stream.
	Cross func() error
}

// Harness provides the instrumented execution environment for a case.
type Harness struct {
	PM *pmem.Pool
	C  *pmem.Ctx

	pmdkPool *pmdk.Pool
}

// NewHarness builds the pool for a case. Detectors should be attached
// before Run.
func NewHarness(c Case) *Harness {
	size := c.PoolSize
	if size == 0 {
		size = 1 << 20
	}
	pm := pmem.New(size)
	return &Harness{PM: pm, C: pm.Ctx()}
}

// PMDK returns (creating on first use) a mini-PMDK pool over the harness
// memory, for transactional cases.
func (h *Harness) PMDK() (*pmdk.Pool, error) {
	if h.pmdkPool == nil {
		p, err := pmdk.Create(h.PM, 4096)
		if err != nil {
			return nil, err
		}
		h.pmdkPool = p
	}
	return h.pmdkPool, nil
}

// Alloc reserves an address range and registers it under the given name so
// rule configurations and PMTest annotations can refer to it. Each named
// variable gets its own cache line(s) so a writeback of one variable never
// incidentally persists another; cases that want same-line co-location lay
// addresses out manually.
func (h *Harness) Alloc(name string, size uint64) uint64 {
	padded := (size + pmem.LineSize - 1) &^ uint64(pmem.LineSize-1)
	block := h.PM.Alloc(padded + pmem.LineSize)
	addr := (block + pmem.LineSize - 1) &^ uint64(pmem.LineSize-1)
	h.PM.RegisterNamed(name, addr, size)
	return addr
}

// DetectorKind selects one of the four evaluated detectors.
type DetectorKind int

// The four detectors of Table 6.
const (
	PMDebugger DetectorKind = iota
	Pmemcheck
	PMTest
	XFDetector
)

// AllDetectors lists the detectors in Table 6 row order (baselines first).
func AllDetectors() []DetectorKind {
	return []DetectorKind{Pmemcheck, PMTest, XFDetector, PMDebugger}
}

// String returns the detector name.
func (k DetectorKind) String() string {
	switch k {
	case PMDebugger:
		return "pmdebugger"
	case Pmemcheck:
		return "pmemcheck"
	case PMTest:
		return "pmtest"
	case XFDetector:
		return "xfdetector"
	default:
		return fmt.Sprintf("detector(%d)", int(k))
	}
}

// Build constructs the detector configured for the case: order specs for
// the tools that accept them, annotations for PMTest, the cross-failure
// hook for the tools that can run recovery.
func Build(k DetectorKind, c Case) baselines.Detector {
	switch k {
	case PMDebugger:
		cfg := core.Config{Model: c.Model, Orders: c.Orders}
		if c.Cross != nil {
			cfg.CrossFailureCheck = c.Cross
		}
		return core.New(cfg)
	case Pmemcheck:
		return baselines.NewPmemcheck()
	case PMTest:
		return baselines.NewPMTest(baselines.PMTestConfig{
			Watch:  c.Watch,
			Orders: c.Orders,
		})
	case XFDetector:
		return baselines.NewXFDetector(baselines.XFDetectorConfig{
			Orders:            c.Orders,
			CrossFailureCheck: c.Cross,
		})
	default:
		panic("bugsuite: unknown detector kind")
	}
}

// RunCase executes the case under the detector and returns the report.
func RunCase(k DetectorKind, c Case) (*report.Report, error) {
	h := NewHarness(c)
	det := Build(k, c)
	h.PM.Attach(det)
	if err := c.Run(h); err != nil {
		return nil, fmt.Errorf("case %s: %w", c.ID, err)
	}
	h.PM.End()
	return det.Report(), nil
}

// Detects reports whether the detector finds the case's planted bug type.
func Detects(k DetectorKind, c Case) (bool, error) {
	rep, err := RunCase(k, c)
	if err != nil {
		return false, err
	}
	return rep.Has(c.Type), nil
}

// Cases returns the 78 bug cases in Table 6 column order.
func Cases() []Case {
	var all []Case
	all = append(all, durabilityCases()...)
	all = append(all, overwriteCases()...)
	all = append(all, orderCases()...)
	all = append(all, redundantFlushCases()...)
	all = append(all, flushNothingCases()...)
	all = append(all, redundantLoggingCases()...)
	all = append(all, epochDurabilityCases()...)
	all = append(all, epochFenceCases()...)
	all = append(all, strandOrderCases()...)
	all = append(all, crossFailureCases()...)
	return all
}

// ExpectedCounts is the Table 6 "Bug cases" row.
var ExpectedCounts = map[report.BugType]int{
	report.NoDurability:          44,
	report.MultipleOverwrites:    2,
	report.NoOrderGuarantee:      4,
	report.RedundantFlush:        6,
	report.FlushNothing:          3,
	report.RedundantLogging:      5,
	report.LackDurabilityInEpoch: 4,
	report.RedundantEpochFence:   4,
	report.LackOrderingInStrands: 2,
	report.CrossFailureSemantic:  4,
}

// CanDetect is the Table 6 capability matrix: which bug types each tool's
// mechanism can observe at all.
func CanDetect(k DetectorKind, t report.BugType) bool {
	switch k {
	case PMDebugger:
		return true
	case Pmemcheck:
		switch t {
		case report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing:
			return true
		}
	case PMTest:
		switch t {
		case report.NoDurability, report.MultipleOverwrites,
			report.NoOrderGuarantee, report.RedundantFlush,
			report.RedundantLogging:
			return true
		}
	case XFDetector:
		switch t {
		case report.NoDurability, report.MultipleOverwrites,
			report.NoOrderGuarantee, report.RedundantFlush,
			report.RedundantLogging, report.CrossFailureSemantic:
			return true
		}
	}
	return false
}
