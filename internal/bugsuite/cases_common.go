package bugsuite

import (
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// overwriteCases returns the 2 multiple-overwrites cases.
func overwriteCases() []Case {
	return []Case{
		{
			ID: "mo-exact-rewrite", Type: report.MultipleOverwrites, Model: rules.Strict,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				x := h.Alloc("x", 8)
				h.C.Store64(x, 1)
				h.C.Store64(x, 2) // overwrite before durability
				h.C.Persist(x, 8)
				return nil
			},
		},
		{
			ID: "mo-overlap-tree-resident", Type: report.MultipleOverwrites, Model: rules.Strict,
			Watch: []string{"x"},
			Run: func(h *Harness) error {
				// The first store survives a fence (tree resident); the
				// overlapping rewrite arrives one fence interval later.
				x := h.Alloc("x", 16)
				y := h.Alloc("y", 8)
				h.C.StoreBytes(x, make([]byte, 16))
				h.C.Store64(y, 1)
				h.C.Persist(y, 8) // fence: x migrates to the tree, unflushed
				h.C.StoreBytes(x+8, make([]byte, 8))
				h.C.Flush(x, 16)
				h.C.Fence()
				return nil
			},
		},
	}
}

// orderCases returns the 4 no-order-guarantee cases.
func orderCases() []Case {
	kvOrder := []rules.OrderSpec{{Before: "value", After: "key"}}
	return []Case{
		{
			ID: "no-key-before-value", Type: report.NoOrderGuarantee, Model: rules.Strict,
			Orders: kvOrder, Watch: []string{"value", "key"},
			Run: func(h *Harness) error {
				// The classic KV-store bug: the key becomes durable before
				// the value it points to.
				v := h.Alloc("value", 8)
				k := h.Alloc("key", 8)
				h.C.Store64(k, 0xbeef)
				h.C.Persist(k, 8)
				h.C.Store64(v, 0xcafe)
				h.C.Persist(v, 8)
				return nil
			},
		},
		{
			ID: "no-same-fence", Type: report.NoOrderGuarantee, Model: rules.Strict,
			Orders: kvOrder, Watch: []string{"value", "key"},
			Run: func(h *Harness) error {
				// Both committed by one fence: the required order is not
				// established.
				v := h.Alloc("value", 8)
				k := h.PM.Alloc(128)
				h.PM.RegisterNamed("key", k+64, 8)
				h.C.Store64(v, 1)
				h.C.Store64(k+64, 2)
				h.C.Flush(v, 8)
				h.C.Flush(k+64, 8)
				h.C.Fence()
				return nil
			},
		},
		{
			ID: "no-later-fence", Type: report.NoOrderGuarantee, Model: rules.Strict,
			Orders: kvOrder, Watch: []string{"value", "key"},
			Run: func(h *Harness) error {
				// The value is eventually durable — two fences too late.
				v := h.Alloc("value", 8)
				k := h.Alloc("key", 8)
				h.C.Store64(v, 1)
				h.C.Store64(k, 2)
				h.C.Persist(k, 8) // key durable first
				h.C.Persist(v, 8)
				h.C.Fence()
				return nil
			},
		},
		{
			ID: "no-scoped-update", Type: report.NoOrderGuarantee, Model: rules.Strict,
			Orders: []rules.OrderSpec{{Before: "value", After: "key", Scope: "update"}},
			Watch:  []string{"value", "key"},
			Run: func(h *Harness) error {
				// Violation inside the configured application function.
				v := h.Alloc("value", 8)
				k := h.Alloc("key", 8)
				h.PM.RegisterNamed("scope:update:begin", h.PM.Base(), 1)
				h.C.Store64(k, 2)
				h.C.Persist(k, 8)
				h.C.Store64(v, 1)
				h.C.Persist(v, 8)
				h.PM.RegisterNamed("scope:update:end", h.PM.Base(), 1)
				return nil
			},
		},
	}
}

// redundantFlushCases returns the 6 redundant-flush cases.
func redundantFlushCases() []Case {
	rf := func(id string, run func(h *Harness) error) Case {
		return Case{
			ID: "rf-" + id, Type: report.RedundantFlush, Model: rules.Strict,
			Watch: []string{"x"}, Run: run,
		}
	}
	return []Case{
		rf("same-line-twice", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Flush(x, 8)
			h.C.Flush(x, 8) // same dirty data flushed again
			h.C.Fence()
			return nil
		}),
		rf("clflush-then-clwb", func(h *Harness) error {
			// Mixing writeback instructions does not make the second one
			// useful.
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.FlushKind(x, 8, trace.CLFLUSH)
			h.C.FlushKind(x, 8, trace.CLWB)
			h.C.Fence()
			return nil
		}),
		rf("two-stores-one-line", func(h *Harness) error {
			// Both fields share the line; the per-field flush loop issues
			// two writebacks for one line.
			blk := h.PM.Alloc(128)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 16)
			h.C.Store64(x, 1)
			h.C.Store64(x+8, 2)
			h.C.Flush(x, 8)
			h.C.Flush(x+8, 8)
			h.C.Fence()
			return nil
		}),
		rf("range-reflush", func(h *Harness) error {
			// A two-line object flushed wholesale, then its first line
			// flushed again "for safety".
			blk := h.PM.Alloc(192)
			x := (blk + 63) &^ 63
			h.PM.RegisterNamed("x", x, 8) // the annotated head field
			h.C.StoreBytes(x, make([]byte, 128))
			h.C.Flush(x, 128)
			h.C.Flush(x, 8)
			h.C.Fence()
			return nil
		}),
		rf("flush-loop", func(h *Harness) error {
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			for i := 0; i < 3; i++ {
				h.C.Flush(x, 8) // two of the three are redundant
			}
			h.C.Fence()
			return nil
		}),
		rf("tree-resident-reflush", func(h *Harness) error {
			// The record migrated to the tree before being flushed twice.
			x := h.Alloc("x", 8)
			h.C.Store64(x, 1)
			h.C.Fence() // moves to the tree, unflushed
			h.C.Flush(x, 8)
			h.C.Flush(x, 8)
			h.C.Fence()
			return nil
		}),
	}
}

// flushNothingCases returns the 3 flush-nothing cases.
func flushNothingCases() []Case {
	return []Case{
		{
			ID: "fn-no-prior-store", Type: report.FlushNothing, Model: rules.Strict,
			Run: func(h *Harness) error {
				x := h.PM.Alloc(64)
				h.C.Flush(x, 8) // nothing was ever stored there
				h.C.Fence()
				return nil
			},
		},
		{
			ID: "fn-wrong-line", Type: report.FlushNothing, Model: rules.Strict,
			Run: func(h *Harness) error {
				// Off-by-one-line flush: the store is persisted separately
				// so the stray flush hits nothing.
				blk := h.PM.Alloc(256)
				x := (blk + 63) &^ 63
				h.C.Store64(x, 1)
				h.C.Persist(x, 8)
				h.C.Flush(x+128, 8) // wrong line
				h.C.Fence()
				return nil
			},
		},
		{
			ID: "fn-already-durable", Type: report.FlushNothing, Model: rules.Strict,
			Run: func(h *Harness) error {
				x := h.PM.Alloc(64)
				h.C.Store64(x, 1)
				h.C.Persist(x, 8)
				h.C.Flush(x, 8) // the data is already durable
				h.C.Fence()
				return nil
			},
		},
	}
}
