package memcached

import (
	"errors"
	"sort"

	"pmdebugger/internal/pmem"
)

// slabAllocator carves item chunks out of PM in power-of-two size classes
// with per-class volatile free lists, the shape of memcached's slab
// subsystem. Chunk memory is persistent; the free lists are rebuilt on
// restart (as memcached-pmem does), so they live in DRAM.
type slabAllocator struct {
	pm      *pmem.Pool
	classes []slabClass
	// pages tracks every carved page, sorted by address, for chunk-to-page
	// resolution and whole-page reclamation.
	pages []*pageInfo
	// cache backs page registration in the persistent superblock so a warm
	// restart can rediscover every carved page.
	cache *Cache
	// last is the page the previous pageOf resolved: consecutive chunk
	// operations cluster on one page, so this skips the binary search on
	// the alloc/free hot path.
	last *pageInfo
}

type slabClass struct {
	size uint64
	free []uint64
}

type pageInfo struct {
	addr     uint64
	size     uint64
	class    int
	regIndex uint64 // superblock registry slot
	freeCnt  int    // chunks currently on the free list
}

const (
	slabMinChunk = 64
	slabMaxChunk = 16384
)

func newSlabAllocator(pm *pmem.Pool) *slabAllocator {
	s := &slabAllocator{pm: pm}
	for sz := uint64(slabMinChunk); sz <= slabMaxChunk; sz *= 2 {
		s.classes = append(s.classes, slabClass{size: sz})
	}
	return s
}

// class returns the index of the smallest class fitting size, or -1.
func (s *slabAllocator) class(size uint64) int {
	for i := range s.classes {
		if s.classes[i].size >= size {
			return i
		}
	}
	return -1
}

var errSlabFull = errors.New("memcached: out of slab memory")

// alloc returns a chunk for an item of the given total size, carving and
// registering a fresh slab page when the class free list is empty.
func (s *slabAllocator) alloc(ctx *pmem.Ctx, size uint64) (addr uint64, class int, err error) {
	class = s.class(size)
	if class < 0 {
		return 0, -1, errors.New("memcached: item too large")
	}
	cl := &s.classes[class]
	if len(cl.free) == 0 {
		if err := s.carvePage(ctx, cl); err != nil {
			return 0, class, err
		}
	}
	n := len(cl.free)
	addr = cl.free[n-1]
	cl.free = cl.free[:n-1]
	if p := s.pageOf(addr); p != nil {
		p.freeCnt--
	}
	return addr, class, nil
}

// carvePage allocates a page for the class, slices it into chunks, and
// durably registers it in the superblock.
func (s *slabAllocator) carvePage(ctx *pmem.Ctx, cl *slabClass) error {
	pageSize := slabPageSize(cl.size)
	page, ok := ctx.TryAlloc(pageSize)
	if !ok {
		return errSlabFull
	}
	regIndex := uint64(0)
	if s.cache != nil {
		idx, err := s.cache.registerPage(ctx, page, cl.size)
		if err != nil {
			ctx.Free(page, pageSize)
			return err
		}
		regIndex = idx
	}
	class := s.class(cl.size)
	chunks := 0
	for off := uint64(0); off+cl.size <= pageSize; off += cl.size {
		cl.free = append(cl.free, page+off)
		chunks++
	}
	s.insertPage(&pageInfo{addr: page, size: pageSize, class: class, regIndex: regIndex, freeCnt: chunks})
	return nil
}

// insertPage keeps the page index sorted by address.
func (s *slabAllocator) insertPage(p *pageInfo) {
	i := sort.Search(len(s.pages), func(i int) bool { return s.pages[i].addr >= p.addr })
	s.pages = append(s.pages, nil)
	copy(s.pages[i+1:], s.pages[i:])
	s.pages[i] = p
}

// pageOf resolves the page containing a chunk address.
func (s *slabAllocator) pageOf(addr uint64) *pageInfo {
	if p := s.last; p != nil && addr >= p.addr && addr < p.addr+p.size {
		return p
	}
	i := sort.Search(len(s.pages), func(i int) bool { return s.pages[i].addr > addr })
	if i == 0 {
		return nil
	}
	p := s.pages[i-1]
	if addr >= p.addr+p.size {
		return nil
	}
	s.last = p
	return p
}

// reclaim returns an entirely-free page to the pool so another size class
// can use the space (the cure for slab calcification). The page's chunks
// are filtered out of the class free list and its registry entry is
// tombstoned so a warm restart does not scan it.
func (s *slabAllocator) reclaim(ctx *pmem.Ctx, p *pageInfo) {
	cl := &s.classes[p.class]
	kept := cl.free[:0]
	for _, c := range cl.free {
		if c < p.addr || c >= p.addr+p.size {
			kept = append(kept, c)
		}
	}
	cl.free = kept
	i := sort.Search(len(s.pages), func(i int) bool { return s.pages[i].addr >= p.addr })
	s.pages = append(s.pages[:i], s.pages[i+1:]...)
	if s.last == p {
		s.last = nil
	}
	if s.cache != nil {
		s.cache.tombstonePage(ctx, p.regIndex)
	}
	ctx.Free(p.addr, p.size)
}

// free returns an item chunk to its class free list, reclaiming the whole
// page when every chunk in it is free.
func (s *slabAllocator) free(ctx *pmem.Ctx, it uint64) {
	p := s.pageOf(it)
	if p == nil {
		return // not slab memory (should not happen)
	}
	s.classes[p.class].free = append(s.classes[p.class].free, it)
	p.freeCnt++
	if p.freeCnt == int(p.size/s.classes[p.class].size) {
		s.reclaim(ctx, p) // every chunk free: return the page to the pool
	}
}
