package memcached

import (
	"errors"
	"fmt"

	"pmdebugger/internal/pmem"
)

// Warm restart — the capability that motivates memcached-pmem: after a
// crash or shutdown, the cache contents survive in PM and the volatile
// acceleration structures (hash table, free lists) are rebuilt by scanning
// the persistent slab pages.
//
// The persistent superblock records where everything lives:
//
//	+0  magic
//	+8  stats area address
//	+16 page count
//	+24 pages[maxPages] of {page addr u64, chunk size u64}
//
// Pages are published with a persist-then-count protocol, so a crash during
// page carving never exposes a half-registered page. Items carry a
// persistent linked flag: set when published, cleared durably before a
// chunk is freed. A crash between bucket unlink and flag clear may
// resurrect a deleted item — acceptable cache semantics, and exactly the
// window the original port has.
const (
	mcMagic     = 0x4d454d43414348ff // "MEMCACH" + ff
	sbFMagic    = 0
	sbFStats    = 8
	sbFNPages   = 16
	sbFPages    = 24
	sbMaxPages  = 1024
	sbSize      = sbFPages + sbMaxPages*16
	slabPageMin = 1 << 16
)

// initSuperblock lays out and persists the superblock on a fresh pool.
func (c *Cache) initSuperblock() {
	ctx := c.pm.Ctx().At(c.sites.clean)
	c.super = c.pm.Alloc(sbSize)
	ctx.Store64(c.super+sbFStats, c.stats.base)
	ctx.Store64(c.super+sbFNPages, 0)
	ctx.Persist(c.super+sbFStats, 16)
	ctx.Store64(c.super+sbFMagic, mcMagic)
	ctx.Persist(c.super+sbFMagic, 8)
}

// registerPage durably publishes a carved slab page and returns its
// registry slot.
func (c *Cache) registerPage(ctx *pmem.Ctx, pageAddr, chunkSize uint64) (uint64, error) {
	n := ctx.Load64(c.super + sbFNPages)
	if n >= sbMaxPages {
		return 0, errors.New("memcached: slab page registry full")
	}
	entry := c.super + sbFPages + n*16
	ctx.Store64(entry, pageAddr)
	ctx.Store64(entry+8, chunkSize)
	ctx.Persist(entry, 16)
	ctx.Store64(c.super+sbFNPages, n+1) // publication point
	ctx.Persist(c.super+sbFNPages, 8)
	return n, nil
}

// tombstonePage durably retires a reclaimed page's registry entry (chunk
// size zero) so restart scans skip it. The slot itself is not reused; the
// registry is an append-only log, like slab page tables in the original.
func (c *Cache) tombstonePage(ctx *pmem.Ctx, regIndex uint64) {
	entry := c.super + sbFPages + regIndex*16
	ctx.Store64(entry+8, 0)
	ctx.Persist(entry+8, 8)
}

// Restart attaches a cache to a pool that already holds one (typically a
// crash image), scanning the registered slab pages to rebuild the hash
// table, the free lists, the CAS sequence and the clock.
func Restart(pm *pmem.Pool, cfg Config) (*Cache, error) {
	if cfg.HashBuckets == 0 {
		cfg.HashBuckets = 1 << 16
	}
	c := &Cache{
		cfg:     cfg,
		pm:      pm,
		buckets: make([]uint64, cfg.HashBuckets),
	}
	c.slab = newSlabAllocator(pm)
	c.slab.cache = c
	c.initSites()

	// The superblock is the first allocation after the stats block; its
	// address is deterministic, but locate it defensively via the stats
	// pointer it records.
	ctx := pm.Ctx().At(c.sites.clean)
	c.stats.base = pm.Base() // stats block is the pool's first allocation
	c.super = c.stats.base + c.stats.size()
	if ctx.Load64(c.super+sbFMagic) != mcMagic {
		return nil, errors.New("memcached: no cache superblock in pool")
	}
	c.stats.base = ctx.Load64(c.super + sbFStats)

	// Re-claim the metadata regions so the fresh volatile allocator cannot
	// hand them out.
	if !pm.AllocAt(c.stats.base, c.stats.size()) || !pm.AllocAt(c.super, sbSize) {
		return nil, errors.New("memcached: metadata regions not reservable")
	}

	nPages := ctx.Load64(c.super + sbFNPages)
	if nPages > sbMaxPages {
		return nil, fmt.Errorf("memcached: implausible page count %d", nPages)
	}
	for pi := uint64(0); pi < nPages; pi++ {
		entry := c.super + sbFPages + pi*16
		pageAddr := ctx.Load64(entry)
		chunkSize := ctx.Load64(entry + 8)
		if chunkSize == 0 {
			continue // tombstoned (reclaimed) page
		}
		class := c.slab.class(chunkSize)
		if class < 0 || c.slab.classes[class].size != chunkSize {
			return nil, fmt.Errorf("memcached: page %d has unknown chunk size %d", pi, chunkSize)
		}
		pageSize := slabPageSize(chunkSize)
		// Claim the page's pool space: the volatile allocator starts fresh
		// after a crash, and live pages must not be handed out again.
		if !pm.AllocAt(pageAddr, pageSize) {
			return nil, fmt.Errorf("memcached: restored page [%#x,+%d) not reservable", pageAddr, pageSize)
		}
		p := &pageInfo{addr: pageAddr, size: pageSize, class: class, regIndex: pi}
		c.slab.insertPage(p)
		for off := uint64(0); off+chunkSize <= pageSize; off += chunkSize {
			it := pageAddr + off
			if !c.reattachItem(ctx, it) {
				c.slab.classes[class].free = append(c.slab.classes[class].free, it)
				p.freeCnt++
			}
		}
	}
	return c, nil
}

// reattachItem validates a chunk's item and relinks it into the rebuilt
// hash table, reporting whether the chunk held a live item.
func (c *Cache) reattachItem(ctx *pmem.Ctx, it uint64) bool {
	if ctx.Load32(it+itFFlags+4)&itFlagLinked == 0 {
		return false
	}
	lens := ctx.Load64(it + itFLens)
	kl, vl := uint32(lens), uint32(lens>>32)
	if kl == 0 || kl > 250 || uint64(itHdrSize)+uint64(kl)+uint64(vl) > slabMaxChunk {
		return false // torn or stale header: treat as free
	}
	key := string(ctx.LoadBytes(it+itHdrSize, uint64(kl)))
	// Drop duplicates (an older version may survive if a crash hit a
	// replace between publish and release): keep the one already linked.
	if existing, _, _ := c.find(ctx, key); existing != 0 {
		return false
	}
	bucket := int(hashKey(key) % uint64(len(c.buckets)))
	ctx.Store64(it+itFHashNext, c.buckets[bucket])
	ctx.Persist(it+itFHashNext, 8)
	c.buckets[bucket] = it
	if cas := ctx.Load64(it + itFCas); cas > c.casSeq {
		c.casSeq = cas
	}
	if exp := ctx.Load64(it + itFExptime); exp > c.clock {
		c.clock = 0 // conservative: never advance past stored expiries
	}
	return true
}

// slabPageSize returns the page size used for a chunk class.
func slabPageSize(chunkSize uint64) uint64 {
	size := uint64(slabPageMin)
	if chunkSize*4 > size {
		size = chunkSize * 4
	}
	return size
}

// ItemCount walks the rebuilt hash table (test helper).
func (c *Cache) ItemCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx := c.pm.Ctx()
	n := 0
	for i := range c.buckets {
		for it := c.buckets[i]; it != 0; it = ctx.Load64(it + itFHashNext) {
			n++
		}
	}
	return n
}
