package memcached

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func newCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 1 << 22
	}
	if cfg.HashBuckets == 0 {
		cfg.HashBuckets = 256
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetGetDelete(t *testing.T) {
	c := newCache(t, Config{UseCAS: true})
	if err := c.Set(0, "hello", []byte("world"), 1, 0); err != nil {
		t.Fatal(err)
	}
	v, cas, ok := c.Get(0, "hello")
	if !ok || !bytes.Equal(v, []byte("world")) {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if cas == 0 {
		t.Fatal("cas id not assigned")
	}
	if _, _, ok := c.Get(0, "nope"); ok {
		t.Fatal("absent key found")
	}
	if !c.Delete(0, "hello") {
		t.Fatal("delete missed")
	}
	if _, _, ok := c.Get(0, "hello"); ok {
		t.Fatal("deleted key still present")
	}
	if c.Delete(0, "hello") {
		t.Fatal("double delete succeeded")
	}
}

func TestReplaceUpdatesValue(t *testing.T) {
	c := newCache(t, Config{})
	c.Set(0, "k", []byte("one"), 0, 0)
	c.Set(0, "k", []byte("two"), 0, 0)
	v, _, ok := c.Get(0, "k")
	if !ok || string(v) != "two" {
		t.Fatalf("replace failed: %q %v", v, ok)
	}
	n, _ := c.Stat("curr_items")
	if n != 1 {
		t.Fatalf("curr_items = %d after replace", n)
	}
}

func TestCASProtocol(t *testing.T) {
	c := newCache(t, Config{UseCAS: true})
	c.Set(0, "k", []byte("v1"), 0, 0)
	_, cas, _ := c.Get(0, "k")
	if err := c.CAS(0, "k", []byte("v2"), cas); err != nil {
		t.Fatalf("matching CAS failed: %v", err)
	}
	if err := c.CAS(0, "k", []byte("v3"), cas); err == nil {
		t.Fatal("stale CAS succeeded")
	}
	v, _, _ := c.Get(0, "k")
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
	hits, _ := c.Stat("cas_hits")
	bad, _ := c.Stat("cas_badval")
	if hits != 1 || bad != 1 {
		t.Fatalf("cas stats = %d/%d", hits, bad)
	}
}

func TestLazyExpiration(t *testing.T) {
	c := newCache(t, Config{})
	c.Set(0, "k", []byte("v"), 0, 2) // expires at clock 2
	for i := 0; i < 8; i++ {
		c.Get(0, "other")
	}
	if _, _, ok := c.Get(0, "k"); ok {
		t.Fatal("expired item served")
	}
	n, _ := c.Stat("expired")
	if n != 1 {
		t.Fatalf("expired = %d", n)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := newCache(t, Config{PoolSize: 1 << 17, HashBuckets: 64})
	big := make([]byte, 2048)
	for i := 0; i < 200; i++ {
		if err := c.Set(0, key(i), big, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	n, _ := c.Stat("evictions")
	if n == 0 {
		t.Fatal("no evictions under memory pressure")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func key(i int) string {
	return string([]byte{'k', byte('0' + i%10), byte('0' + (i/10)%10), byte('0' + (i/100)%10)})
}

func TestFlushAll(t *testing.T) {
	c := newCache(t, Config{})
	for i := 0; i < 20; i++ {
		c.Set(0, key(i), []byte("v"), 0, 0)
	}
	c.FlushAll(0, 99)
	for i := 0; i < 20; i++ {
		if _, _, ok := c.Get(0, key(i)); ok {
			t.Fatalf("key %d survived flush_all", i)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCache(t, Config{PoolSize: 1 << 22, HashBuckets: 1024})
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// key() keeps three digits, so th*1000+i would collide
				// across threads; the keyspaces must stay disjoint.
				k := fmt.Sprintf("t%d-%03d", th, i)
				c.Set(int32(th), k, []byte{byte(th)}, 0, 0)
				if v, _, ok := c.Get(int32(th), k); !ok || v[0] != byte(th) {
					t.Errorf("thread %d lost key %s", th, k)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBuggyPortHas19Sites(t *testing.T) {
	c := newCache(t, Config{Bugs: true, UseCAS: true})
	if got := len(c.BugSites()); got != 19 {
		t.Fatalf("bug sites = %d, want 19", got)
	}
	seen := map[string]bool{}
	for _, s := range c.BugSites() {
		if seen[s.String()] {
			t.Fatalf("duplicate bug site %s", s)
		}
		seen[s.String()] = true
	}
}

func TestFixedPortIsCleanUnderPMDebugger(t *testing.T) {
	c := newCache(t, Config{Bugs: false, UseCAS: true})
	det := core.New(core.Config{
		Model: rules.Strict,
		// The fixed port persists every store immediately; the multiple-
		// overwrites rule stays meaningful.
	})
	c.PM().Attach(det)
	for i := 0; i < 100; i++ {
		if err := c.Set(0, key(i), []byte("value"), 0, 0); err != nil {
			t.Fatal(err)
		}
		c.Get(0, key(i%50))
	}
	c.PM().End()
	rep := det.Report()
	if rep.Len() != 0 {
		t.Fatalf("fixed port flagged:\n%s", rep.Summary())
	}
}

func TestBuggyPortBugsDetected(t *testing.T) {
	c := newCache(t, Config{Bugs: true, UseCAS: true})
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	c.PM().Attach(det)
	for i := 0; i < 100; i++ {
		if err := c.Set(0, key(i), []byte("value"), 0, 0); err != nil {
			t.Fatal(err)
		}
		c.Get(0, key(i%50))
		c.Get(0, "miss")
	}
	c.PM().End()
	rep := det.Report()
	byType := rep.CountByType()
	// set/get exercise the CAS bug, the fetched-flag bug and several stats
	// counters; each distinct site is one bug.
	if byType[report.NoDurability] < 8 {
		t.Fatalf("only %d durability bugs detected:\n%s",
			byType[report.NoDurability], rep.Summary())
	}
}
