package memcached

import (
	"bytes"
	"fmt"
	"testing"

	"pmdebugger/internal/pmem"
)

func TestWarmRestartPreservesItems(t *testing.T) {
	c := newCache(t, Config{PoolSize: 1 << 22, UseCAS: true})
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := c.Set(0, k, []byte(fmt.Sprintf("val-%d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Delete some, replace some.
	for i := 0; i < 50; i++ {
		c.Delete(0, fmt.Sprintf("key-%d", i))
	}
	for i := 50; i < 80; i++ {
		c.Set(0, fmt.Sprintf("key-%d", i), []byte("replaced"), 0, 0)
	}

	crashed := c.PM().Crash(pmem.CrashDropPending, 0)
	c2, err := Restart(crashed, Config{HashBuckets: 512, UseCAS: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.ItemCount(); got != 150 {
		t.Fatalf("restored items = %d, want 150", got)
	}
	for i := 0; i < 50; i++ {
		if _, _, ok := c2.Get(0, fmt.Sprintf("key-%d", i)); ok {
			t.Fatalf("deleted key-%d resurrected", i)
		}
	}
	for i := 50; i < 80; i++ {
		v, _, ok := c2.Get(0, fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(v, []byte("replaced")) {
			t.Fatalf("key-%d = %q, %v", i, v, ok)
		}
	}
	for i := 80; i < 200; i++ {
		v, _, ok := c2.Get(0, fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key-%d = %q, %v", i, v, ok)
		}
	}
}

func TestWarmRestartUsableAfterRestore(t *testing.T) {
	c := newCache(t, Config{PoolSize: 1 << 22, UseCAS: true})
	c.Set(0, "old", []byte("x"), 0, 0)
	_, oldCas, _ := c.Get(0, "old")

	c2, err := Restart(c.PM().Crash(pmem.CrashDropPending, 0), Config{UseCAS: true})
	if err != nil {
		t.Fatal(err)
	}
	// New writes must not collide with restored pages and must advance the
	// CAS sequence past restored ids.
	if err := c2.Set(0, "new", []byte("y"), 0, 0); err != nil {
		t.Fatal(err)
	}
	_, newCas, ok := c2.Get(0, "new")
	if !ok || newCas <= oldCas {
		t.Fatalf("cas sequence not restored: old %d new %d", oldCas, newCas)
	}
	if v, _, ok := c2.Get(0, "old"); !ok || string(v) != "x" {
		t.Fatalf("restored item unusable: %q %v", v, ok)
	}
	if err := c2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWarmRestartRejectsRawPool(t *testing.T) {
	if _, err := Restart(pmem.New(1<<20), Config{}); err == nil {
		t.Fatal("raw pool accepted")
	}
}

func TestPageReclamationCuresCalcification(t *testing.T) {
	// Fill the pool with large items, release them all, then allocate
	// small items: reclaimed pages must serve the new class.
	c := newCache(t, Config{PoolSize: 1 << 19}) // 512 KiB
	big := make([]byte, 2048)
	var keys []string
	for i := 0; ; i++ {
		k := fmt.Sprintf("big-%d", i)
		if err := c.Set(0, k, big, 0, 0); err != nil {
			break
		}
		keys = append(keys, k)
		// Memory pressure reached: eviction keeps Set succeeding forever,
		// so stop once the pool has cycled.
		if ev, _ := c.Stat("evictions"); ev > 0 {
			break
		}
		if i > 1000 {
			t.Fatal("pool never filled")
		}
	}
	for _, k := range keys {
		c.Delete(0, k)
	}
	// The large-class pages are all free now; small items need new pages.
	for i := 0; i < 100; i++ {
		if err := c.Set(0, fmt.Sprintf("small-%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatalf("small set %d failed after reclamation: %v", i, err)
		}
	}
}

func TestWarmRestartAfterReclamation(t *testing.T) {
	// Tombstoned pages must not be scanned or double-reserved at restart.
	c := newCache(t, Config{PoolSize: 1 << 20})
	big := make([]byte, 2048)
	for i := 0; i < 30; i++ {
		if err := c.Set(0, fmt.Sprintf("b-%d", i), big, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		c.Delete(0, fmt.Sprintf("b-%d", i))
	}
	c.Set(0, "keep", []byte("v"), 0, 0)

	c2, err := Restart(c.PM().Crash(pmem.CrashDropPending, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.ItemCount(); got != 1 {
		t.Fatalf("restored items = %d, want 1", got)
	}
	if v, _, ok := c2.Get(0, "keep"); !ok || string(v) != "v" {
		t.Fatalf("keep = %q, %v", v, ok)
	}
}

func TestWarmRestartFromSerializedImage(t *testing.T) {
	// End-to-end persistence: cache -> pool image file -> reload ->
	// warm restart, composing pmem.WriteImage/ReadImage with Restart.
	c := newCache(t, Config{PoolSize: 1 << 21, UseCAS: true})
	for i := 0; i < 40; i++ {
		if err := c.Set(0, fmt.Sprintf("img-%d", i), []byte{byte(i)}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.PM().WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := pmem.ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Restart(pm, Config{UseCAS: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v, _, ok := c2.Get(0, fmt.Sprintf("img-%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("img-%d = %v %v", i, v, ok)
		}
	}
}
