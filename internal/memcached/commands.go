package memcached

import (
	"errors"
	"strconv"
)

// The arithmetic and concatenation commands of the memcached protocol:
// incr/decr operate on ASCII-decimal values (as real memcached does),
// append/prepend grow a value in place of the stored item. All of them
// reuse the persist-then-publish Set path, so their instruction patterns
// match the original's command handlers.

// Incr adds delta to the ASCII-decimal value of key and returns the new
// value.
func (c *Cache) Incr(thread int32, key string, delta uint64) (uint64, error) {
	return c.arith(thread, key, delta, false)
}

// Decr subtracts delta from the ASCII-decimal value of key, clamping at
// zero as memcached does.
func (c *Cache) Decr(thread int32, key string, delta uint64) (uint64, error) {
	return c.arith(thread, key, delta, true)
}

func (c *Cache) arith(thread int32, key string, delta uint64, sub bool) (uint64, error) {
	v, _, ok := c.Get(thread, key)
	if !ok {
		return 0, errors.New("memcached: NOT_FOUND")
	}
	n, err := strconv.ParseUint(string(v), 10, 64)
	if err != nil {
		return 0, errors.New("memcached: cannot increment or decrement non-numeric value")
	}
	if sub {
		if delta > n {
			n = 0
		} else {
			n -= delta
		}
	} else {
		n += delta
	}
	out := strconv.FormatUint(n, 10)
	if err := c.Set(thread, key, []byte(out), 0, 0); err != nil {
		return 0, err
	}
	return n, nil
}

// Append appends data to key's value.
func (c *Cache) Append(thread int32, key string, data []byte) error {
	return c.concat(thread, key, data, false)
}

// Prepend prepends data to key's value.
func (c *Cache) Prepend(thread int32, key string, data []byte) error {
	return c.concat(thread, key, data, true)
}

func (c *Cache) concat(thread int32, key string, data []byte, front bool) error {
	v, _, ok := c.Get(thread, key)
	if !ok {
		return errors.New("memcached: NOT_STORED")
	}
	combined := make([]byte, 0, len(v)+len(data))
	if front {
		combined = append(combined, data...)
		combined = append(combined, v...)
	} else {
		combined = append(combined, v...)
		combined = append(combined, data...)
	}
	return c.Set(thread, key, combined, 0, 0)
}
