// Package memcached reimplements the PM-aware memcached (the Lenovo
// memcached-pmem port evaluated in Table 4) over the simulated persistent
// memory substrate: a slab allocator carving item chunks out of PM, items
// holding header+key+value in PM with CAS ids, a hash table with persistent
// chain links, per-thread operation contexts, and the statistics counters
// the original maintains.
//
// The package reproduces the paper's §7.4 result: the real memcached-pmem
// contains 19 previously unreported no-durability bugs — stores to
// persistent fields (the CAS id of Fig. 9a, item metadata, statistics
// counters) that are never made durable. Those stores are behind the Bugs
// switch: with Bugs true (the faithful port) the 19 buggy sites skip
// persistence; with Bugs false the same sites persist correctly, modeling
// the fixed version.
package memcached

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// Config parameterizes a cache instance.
type Config struct {
	// PoolSize is the simulated PM size (default 64 MiB).
	PoolSize uint64
	// HashBuckets is the hash table size (default 65536).
	HashBuckets int
	// Bugs enables the 19 faithful no-durability bugs of §7.4.
	Bugs bool
	// UseCAS enables CAS id maintenance (settings.use_cas).
	UseCAS bool
	// Strands runs every cache operation in its own strand section, the
	// strand-persistency port of the cache (§5.1): the global cache lock
	// already serializes operations, so each op's persists form an
	// independent persist path with no cross-op ordering requirement.
	// Model then reports rules.Strand, which makes live detection
	// shardable by strand (core.Shardable). Detection coverage is the
	// strand default rule set instead of the strict one.
	Strands bool
}

// item layout in a slab chunk:
//
//	+0  hashNext u64   persistent hash chain link
//	+8  cas u64        CAS id (bug 1: not persisted in the faithful port)
//	+16 exptime u64
//	+24 flags u32, itFlags u32
//	+32 keyLen u32, valLen u32
//	+40 key bytes, then value bytes
const (
	itFHashNext = 0
	itFCas      = 8
	itFExptime  = 16
	itFFlags    = 24
	itFLens     = 32
	itHdrSize   = 40

	itFlagFetched = 1 << 0
	itFlagLinked  = 1 << 1
)

// Cache is one memcached instance. All public operations are safe for
// concurrent use by multiple goroutines (the global cache lock, as in
// memcached's default configuration).
type Cache struct {
	mu   sync.Mutex
	cfg  Config
	pm   *pmem.Pool
	slab *slabAllocator

	buckets []uint64 // volatile bucket heads (rebuilt on restart)
	casSeq  uint64
	clock   uint64 // logical time, advanced once per operation
	sweep   int    // eviction scan cursor

	stats statsArea
	super uint64 // persistent superblock (restart.go)
	sites sitesTable
}

// Model returns the persistency model the cache runs under: strict
// (Table 4) by default, strand when Config.Strands wraps each operation in
// a strand section.
func (c *Cache) Model() rules.Model {
	if c.cfg.Strands {
		return rules.Strand
	}
	return rules.Strict
}

// opCtx opens the per-operation context: the op-scoped lock session and —
// in strand mode — a strand section for the op. The returned done func
// closes both; callers either defer it or call it explicitly before
// tail-calling into another operation.
func (c *Cache) opCtx(thread int32) (*pmem.Ctx, func()) {
	ctx := c.pm.ThreadCtx(thread).SetSite(c.sites.clean)
	ctx.Begin()
	if !c.cfg.Strands {
		return ctx, ctx.End
	}
	st := ctx.StrandBegin()
	return st, func() {
		st.StrandEnd()
		ctx.End()
	}
}

// sitesTable interns the instrumentation sites of the buggy stores so each
// of the 19 bugs is attributed to its own source location.
type sitesTable struct {
	setCas     trace.SiteID
	touchExp   trace.SiteID
	setFlags   trace.SiteID
	fetched    trace.SiteID
	statSites  [15]trace.SiteID
	oldestLive trace.SiteID
	clean      trace.SiteID
}

// The 15 statistics counters maintained in PM, in stats-area order.
var statNames = [15]string{
	"total_items", "curr_items", "get_hits", "get_misses", "set_cmds",
	"delete_hits", "delete_misses", "cas_hits", "cas_badval", "expired",
	"evictions", "bytes_written", "bytes_read", "curr_bytes", "touch_cmds",
}

// statsArea is the persistent statistics block: 15 u64 counters plus the
// oldest_live timestamp.
type statsArea struct {
	base uint64
}

func (s statsArea) counter(i int) uint64 { return s.base + uint64(i)*8 }
func (s statsArea) oldestLive() uint64   { return s.base + 15*8 }
func (s statsArea) size() uint64         { return 16 * 8 }

// New creates a cache over a fresh simulated PM pool.
func New(cfg Config) (*Cache, error) {
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 64 << 20
	}
	return NewWith(pmem.New(cfg.PoolSize), cfg)
}

// NewWith creates a cache over a caller-provided pool, which is how the
// crash-space explorer builds the cache inside an instrumented program (the
// pool carries the journal or crash trap the harness armed). The pool must
// be fresh: the stats block must become its first allocation for Restart to
// locate the superblock.
func NewWith(pm *pmem.Pool, cfg Config) (*Cache, error) {
	if cfg.HashBuckets == 0 {
		cfg.HashBuckets = 1 << 16
	}
	c := &Cache{
		cfg:     cfg,
		pm:      pm,
		buckets: make([]uint64, cfg.HashBuckets),
	}
	c.slab = newSlabAllocator(pm)
	c.slab.cache = c
	c.stats.base = pm.Alloc(c.stats.size())
	c.initSites()

	// Initialize the stats block durably, then the superblock that makes
	// warm restart possible.
	ctx := pm.Ctx().At(c.sites.clean)
	ctx.StoreBytes(c.stats.base, make([]byte, c.stats.size()))
	ctx.Persist(c.stats.base, c.stats.size())
	c.initSuperblock()
	return c, nil
}

func (c *Cache) initSites() {
	c.sites.setCas = trace.RegisterSite("items.c:ITEM_set_cas")
	c.sites.touchExp = trace.RegisterSite("items.c:do_item_update:exptime")
	c.sites.setFlags = trace.RegisterSite("items.c:do_item_update:flags")
	c.sites.fetched = trace.RegisterSite("items.c:do_item_get:ITEM_FETCHED")
	for i, n := range statNames {
		c.sites.statSites[i] = trace.RegisterSite("memcached.c:stats:" + n)
	}
	c.sites.oldestLive = trace.RegisterSite("memcached.c:process_flush_all:oldest_live")
	c.sites.clean = trace.RegisterSite("memcached-pmem")
}

// PM returns the underlying pool (for attaching detectors).
func (c *Cache) PM() *pmem.Pool { return c.pm }

// BugSites returns the distinct source sites of the 19 faithful bugs, for
// the new-bug reproduction harness (E10).
func (c *Cache) BugSites() []trace.SiteID {
	out := []trace.SiteID{
		c.sites.setCas, c.sites.touchExp, c.sites.setFlags, c.sites.fetched,
	}
	out = append(out, c.sites.statSites[:]...)
	// 4 + 15 = 19; oldest_live is persisted correctly even in the faithful
	// port (it is only written by flush_all).
	return out
}

func hashKey(key string) uint64 {
	// FNV-1a.
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// storeBuggy performs a store that the faithful port forgets to persist and
// the fixed version persists.
func (c *Cache) storeBuggy(ctx *pmem.Ctx, site trace.SiteID, addr uint64, v uint64) {
	ctx.At(site).Store64(addr, v)
	if !c.cfg.Bugs {
		ctx.Persist(addr, 8)
	}
}

// storeBuggy32 is storeBuggy for 32-bit fields.
func (c *Cache) storeBuggy32(ctx *pmem.Ctx, site trace.SiteID, addr uint64, v uint32) {
	ctx.At(site).Store32(addr, v)
	if !c.cfg.Bugs {
		ctx.Persist(addr, 4)
	}
}

// bumpStat increments a persistent statistics counter (one of the buggy
// sites).
func (c *Cache) bumpStat(ctx *pmem.Ctx, i int, delta uint64) {
	addr := c.stats.counter(i)
	c.storeBuggy(ctx, c.sites.statSites[i], addr, ctx.Load64(addr)+delta)
}

// Stat returns a counter value by name.
func (c *Cache) Stat(name string) (uint64, bool) {
	for i, n := range statNames {
		if n == name {
			return c.pm.Ctx().Load64(c.stats.counter(i)), true
		}
	}
	return 0, false
}

// find walks the bucket chain for key, returning the item address and its
// predecessor's hashNext slot (0 slot means bucket head). It loads through
// the caller's context so it participates in an open lock session.
func (c *Cache) find(ctx *pmem.Ctx, key string) (addr uint64, prevSlot uint64, bucket int) {
	bucket = int(hashKey(key) % uint64(len(c.buckets)))
	addr = c.buckets[bucket]
	prevSlot = 0
	for addr != 0 {
		if c.keyEquals(ctx, addr, key) {
			return addr, prevSlot, bucket
		}
		prevSlot = addr + itFHashNext
		addr = ctx.Load64(addr + itFHashNext)
	}
	return 0, prevSlot, bucket
}

func (c *Cache) keyEquals(ctx *pmem.Ctx, it uint64, key string) bool {
	lens := ctx.Load64(it + itFLens)
	kl := uint32(lens)
	if int(kl) != len(key) {
		return false
	}
	return ctx.EqualBytes(it+itHdrSize, key)
}

func (c *Cache) itemValue(ctx *pmem.Ctx, it uint64) []byte {
	lens := ctx.Load64(it + itFLens)
	kl, vl := uint32(lens), uint32(lens>>32)
	return ctx.LoadBytes(it+itHdrSize+uint64(kl), uint64(vl))
}

// Set stores key=value from the given thread, allocating a fresh item and
// publishing it with the persist-then-link protocol, then updating CAS and
// statistics.
func (c *Cache) Set(thread int32, key string, value []byte, flags uint32, exptime uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// c.mu already serializes the whole operation, so take the pool lock
	// once for the op instead of once per instruction.
	ctx, done := c.opCtx(thread)
	defer done()

	c.clock++
	old, prevSlot, bucket := c.find(ctx, key)

	size := uint64(itHdrSize + len(key) + len(value))
	it, _, err := c.slab.alloc(ctx, size)
	if err == errSlabFull {
		// Evict items until the allocation fits, as the slab LRU does.
		// Chunks free into their own size class, so under mixed item sizes
		// many evictions may pass before one matches (slab calcification);
		// the bound only guards against an unevictable cache.
		for tries := 0; tries < 4096 && err == errSlabFull; tries++ {
			if !c.evictOne(ctx) {
				break
			}
			it, _, err = c.slab.alloc(ctx, size)
		}
	}
	if err != nil {
		return err
	}
	// Build the new item completely, then persist it collectively.
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:], uint32(len(value)))
	next := c.buckets[bucket]
	if old != 0 {
		next = ctx.Load64(old + itFHashNext) // replace in place in the chain
	}
	ctx.Store64(it+itFHashNext, next)
	ctx.Store64(it+itFExptime, exptime)
	ctx.Store32(it+itFFlags, flags)
	ctx.Store32(it+itFFlags+4, itFlagLinked)
	ctx.StoreBytes(it+itFLens, lens[:])
	ctx.StoreBytes(it+itHdrSize, []byte(key))
	if len(value) > 0 {
		ctx.StoreBytes(it+itHdrSize+uint64(len(key)), value)
	}
	ctx.Persist(it, size)

	// Bug 1 (Fig. 9a): the CAS id is assigned after linking preparation and
	// never persisted in the faithful port.
	if c.cfg.UseCAS {
		c.casSeq++
		c.storeBuggy(ctx, c.sites.setCas, it+itFCas, c.casSeq)
	}

	// Publish: replace or prepend in the (volatile) bucket with the
	// persistent chain link already set.
	if old != 0 {
		if prevSlot == 0 {
			c.buckets[bucket] = it
		} else {
			ctx.Store64(prevSlot, it)
			ctx.Persist(prevSlot, 8)
		}
		c.releaseItem(ctx, old)
	} else {
		c.buckets[bucket] = it
		c.bumpStat(ctx, 1, 1) // curr_items
	}
	c.bumpStat(ctx, 0, 1)                   // total_items
	c.bumpStat(ctx, 4, 1)                   // set_cmds
	c.bumpStat(ctx, 11, uint64(len(value))) // bytes_written
	c.bumpStat(ctx, 13, size)               // curr_bytes
	return nil
}

// Get fetches key's value, updating the fetched flag and hit/miss
// statistics.
func (c *Cache) Get(thread int32, key string) ([]byte, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, done := c.opCtx(thread)
	defer done()
	c.clock++
	it, prevSlot, bucket := c.find(ctx, key)
	if it == 0 {
		c.bumpStat(ctx, 3, 1) // get_misses
		return nil, 0, false
	}
	// Lazy expiration, as in do_item_get.
	if exp := ctx.Load64(it + itFExptime); exp != 0 && exp <= c.clock {
		next := ctx.Load64(it + itFHashNext)
		if prevSlot == 0 {
			c.buckets[bucket] = next
		} else {
			ctx.Store64(prevSlot, next)
			ctx.Persist(prevSlot, 8)
		}
		c.releaseItem(ctx, it)
		c.bumpStat(ctx, 9, 1)          // expired
		c.bumpStat(ctx, 1, ^uint64(0)) // curr_items--
		c.bumpStat(ctx, 3, 1)          // get_misses
		return nil, 0, false
	}
	// ITEM_FETCHED is set on first access (do_item_get).
	fl := ctx.Load32(it + itFFlags + 4)
	if fl&itFlagFetched == 0 {
		c.storeBuggy32(ctx, c.sites.fetched, it+itFFlags+4, fl|itFlagFetched)
	}
	c.bumpStat(ctx, 2, 1) // get_hits
	v := c.itemValue(ctx, it)
	c.bumpStat(ctx, 12, uint64(len(v))) // bytes_read
	return v, ctx.Load64(it + itFCas), true
}

// Touch updates an item's expiry (a buggy metadata store in the faithful
// port).
func (c *Cache) Touch(thread int32, key string, exptime uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, done := c.opCtx(thread)
	defer done()
	it, _, _ := c.find(ctx, key)
	if it == 0 {
		return false
	}
	c.storeBuggy(ctx, c.sites.touchExp, it+itFExptime, exptime)
	c.bumpStat(ctx, 14, 1) // touch_cmds
	return true
}

// SetFlags updates an item's client flags in place.
func (c *Cache) SetFlags(thread int32, key string, flags uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, done := c.opCtx(thread)
	defer done()
	it, _, _ := c.find(ctx, key)
	if it == 0 {
		return false
	}
	c.storeBuggy32(ctx, c.sites.setFlags, it+itFFlags, flags)
	return true
}

// CAS stores key=value only when the caller's cas id matches.
func (c *Cache) CAS(thread int32, key string, value []byte, cas uint64) error {
	c.mu.Lock()
	// The op context must close before the tail call into Set, which opens
	// its own — hence the explicit done on every path instead of a defer.
	ctx, done := c.opCtx(thread)
	it, _, _ := c.find(ctx, key)
	if it == 0 {
		done()
		c.mu.Unlock()
		return errors.New("memcached: CAS on missing key")
	}
	if ctx.Load64(it+itFCas) != cas {
		c.bumpStat(ctx, 8, 1) // cas_badval
		done()
		c.mu.Unlock()
		return errors.New("memcached: CAS mismatch")
	}
	c.bumpStat(ctx, 7, 1) // cas_hits
	done()
	c.mu.Unlock()
	return c.Set(thread, key, value, 0, 0)
}

// evictOne frees one linked item, scanning buckets round-robin (standing in
// for the LRU tail walk). It reports whether anything was evicted.
func (c *Cache) evictOne(ctx *pmem.Ctx) bool {
	for scanned := 0; scanned < len(c.buckets); scanned++ {
		b := c.sweep % len(c.buckets)
		c.sweep++
		if it := c.buckets[b]; it != 0 {
			c.buckets[b] = ctx.Load64(it + itFHashNext)
			c.releaseItem(ctx, it)
			c.bumpStat(ctx, 10, 1)         // evictions
			c.bumpStat(ctx, 1, ^uint64(0)) // curr_items--
			return true
		}
	}
	return false
}

// Delete unlinks key.
func (c *Cache) Delete(thread int32, key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, done := c.opCtx(thread)
	defer done()
	it, prevSlot, bucket := c.find(ctx, key)
	if it == 0 {
		c.bumpStat(ctx, 6, 1) // delete_misses
		return false
	}
	next := ctx.Load64(it + itFHashNext)
	if prevSlot == 0 {
		c.buckets[bucket] = next
	} else {
		ctx.Store64(prevSlot, next)
		ctx.Persist(prevSlot, 8)
	}
	c.releaseItem(ctx, it)
	c.bumpStat(ctx, 5, 1)          // delete_hits
	c.bumpStat(ctx, 1, ^uint64(0)) // curr_items--
	return true
}

// FlushAll records the oldest-live timestamp (correctly persisted even in
// the faithful port) and drops all buckets.
func (c *Cache) FlushAll(thread int32, now uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, done := c.opCtx(thread)
	defer done()
	ctx.At(c.sites.oldestLive).Store64(c.stats.oldestLive(), now)
	ctx.Persist(c.stats.oldestLive(), 8)
	for i := range c.buckets {
		for it := c.buckets[i]; it != 0; {
			next := ctx.Load64(it + itFHashNext)
			c.releaseItem(ctx, it)
			it = next
		}
		c.buckets[i] = 0
	}
}

func (c *Cache) releaseItem(ctx *pmem.Ctx, it uint64) {
	// Durably clear the linked flag before the chunk can be reused, so a
	// warm restart never resurrects a released item.
	fl := ctx.Load32(it + itFFlags + 4)
	ctx.Store32(it+itFFlags+4, fl&^uint32(itFlagLinked))
	ctx.Persist(it+itFFlags+4, 4)
	c.slab.free(ctx, it)
}

// Close persists nothing extra: in the fixed version every site already
// persisted its stores; in the faithful version the bugs are the point.
func (c *Cache) Close() error { return nil }

// Check verifies basic volatile/persistent agreement for testing: every
// linked item's key must be findable.
func (c *Cache) Check() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx := c.pm.Ctx()
	ctx.Begin()
	defer ctx.End()
	for i := range c.buckets {
		for it := c.buckets[i]; it != 0; it = ctx.Load64(it + itFHashNext) {
			lens := ctx.Load64(it + itFLens)
			if uint32(lens) == 0 {
				return fmt.Errorf("memcached: zero-length key in bucket %d", i)
			}
		}
	}
	return nil
}
