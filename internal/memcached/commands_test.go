package memcached

import (
	"testing"

	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
)

func TestIncrDecr(t *testing.T) {
	c := newCache(t, Config{})
	c.Set(0, "n", []byte("10"), 0, 0)
	v, err := c.Incr(0, "n", 5)
	if err != nil || v != 15 {
		t.Fatalf("Incr = %d, %v", v, err)
	}
	v, err = c.Decr(0, "n", 20) // clamps at zero
	if err != nil || v != 0 {
		t.Fatalf("Decr = %d, %v", v, err)
	}
	got, _, _ := c.Get(0, "n")
	if string(got) != "0" {
		t.Fatalf("stored = %q", got)
	}
	if _, err := c.Incr(0, "absent", 1); err == nil {
		t.Fatal("Incr on absent key succeeded")
	}
	c.Set(0, "s", []byte("abc"), 0, 0)
	if _, err := c.Incr(0, "s", 1); err == nil {
		t.Fatal("Incr on non-numeric value succeeded")
	}
}

func TestAppendPrepend(t *testing.T) {
	c := newCache(t, Config{})
	c.Set(0, "k", []byte("mid"), 0, 0)
	if err := c.Append(0, "k", []byte("-end")); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepend(0, "k", []byte("start-")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := c.Get(0, "k")
	if string(v) != "start-mid-end" {
		t.Fatalf("value = %q", v)
	}
	if err := c.Append(0, "absent", []byte("x")); err == nil {
		t.Fatal("Append on absent key succeeded")
	}
}

func TestCommandsCleanInFixedPort(t *testing.T) {
	c := newCache(t, Config{Bugs: false, UseCAS: true})
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability | rules.RuleFlushNothing})
	c.PM().Attach(det)
	c.Set(0, "n", []byte("0"), 0, 0)
	for i := 0; i < 30; i++ {
		if _, err := c.Incr(0, "n", 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Set(0, "log", []byte("a"), 0, 0)
	for i := 0; i < 10; i++ {
		if err := c.Append(0, "log", []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	c.PM().End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("command mix flagged:\n%s", rep.Summary())
	}
}
