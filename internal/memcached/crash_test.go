package memcached

import (
	"testing"
	"time"

	"pmdebugger/internal/pmem"
)

// crashOps is the operation mix driven under crash traps. It deliberately
// includes CAS, whose lock session closes with explicit End calls rather
// than a defer — the path where a trap unwind used to leak the pool mutex.
func crashOps(pm *pmem.Pool) error {
	c, err := NewWith(pm, Config{HashBuckets: 64})
	if err != nil {
		return err
	}
	if err := c.Set(0, "alpha", []byte("one"), 1, 0); err != nil {
		return err
	}
	if err := c.Set(0, "beta", []byte("two"), 2, 0); err != nil {
		return err
	}
	_, cas, ok := c.Get(0, "alpha")
	if !ok {
		panic("memcached: alpha vanished")
	}
	if err := c.CAS(0, "alpha", []byte("one-v2"), cas); err != nil {
		return err
	}
	c.CAS(0, "beta", []byte("nope"), ^uint64(0)) // cas_badval path
	c.CAS(0, "ghost", []byte("nope"), 0)         // missing-key path
	c.Delete(0, "beta")
	return nil
}

// runTrappedOps executes crashOps with a trap armed after n events,
// reporting whether the trap fired.
func runTrappedOps(pm *pmem.Pool, n uint64) (trapped bool, err error) {
	pm.SetCrashTrap(n)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.CrashTrap); ok {
				trapped = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	return false, crashOps(pm)
}

// TestCrashTrapReleasesLockSession crashes the cache at every event
// boundary and verifies the pool stays usable: a trap that unwinds through
// an open Begin/End lock session (every memcached op holds one, and CAS
// closes its own without a defer) must release the pool mutex, or the very
// next pool call — taking the crash image — deadlocks.
func TestCrashTrapReleasesLockSession(t *testing.T) {
	const poolSize = 1 << 20

	full := pmem.New(poolSize)
	if err := crashOps(full); err != nil {
		t.Fatal(err)
	}
	total := full.EventCount()
	if total == 0 {
		t.Fatal("no events recorded")
	}

	for n := uint64(1); n <= total; n++ {
		pm := pmem.New(poolSize)
		trapped, err := runTrappedOps(pm, n)
		if err != nil {
			t.Fatalf("trap %d: program error: %v", n, err)
		}
		if !trapped {
			t.Fatalf("trap %d of %d did not fire", n, total)
		}

		// The real assertion: the pool must not be deadlocked by the unwind.
		done := make(chan *pmem.Pool, 1)
		go func() { done <- pm.Crash(pmem.CrashDropPending, 0) }()
		select {
		case img := <-done:
			if img == nil {
				t.Fatalf("trap %d: nil crash image", n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("trap %d: pool deadlocked after crash-trap unwind (leaked lock session)", n)
		}
	}
}
