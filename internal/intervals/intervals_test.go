package intervals

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := R(100, 8)
	if r.End() != 108 {
		t.Errorf("End = %d", r.End())
	}
	if r.Empty() {
		t.Errorf("non-empty range reported empty")
	}
	if !R(5, 0).Empty() {
		t.Errorf("zero-size range not empty")
	}
	if r.String() != "[0x64,+8)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestOverlapsContains(t *testing.T) {
	tests := []struct {
		a, b                Range
		overlaps, aContainB bool
	}{
		{R(0, 10), R(5, 10), true, false},
		{R(0, 10), R(10, 10), false, false},
		{R(0, 20), R(5, 10), true, true},
		{R(0, 10), R(0, 10), true, true},
		{R(5, 10), R(0, 20), true, false},
		{R(0, 10), R(20, 5), false, false},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(tc.b); got != tc.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v", tc.a, tc.b, got)
		}
		if got := tc.a.Contains(tc.b); got != tc.aContainB {
			t.Errorf("%v.Contains(%v) = %v", tc.a, tc.b, got)
		}
	}
	if !R(0, 10).ContainsAddr(9) || R(0, 10).ContainsAddr(10) {
		t.Errorf("ContainsAddr boundary wrong")
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Range
	}{
		{R(0, 10), R(5, 10), R(5, 5)},
		{R(0, 10), R(10, 5), Range{}},
		{R(0, 20), R(5, 5), R(5, 5)},
		{R(5, 5), R(0, 20), R(5, 5)},
	}
	for _, tc := range tests {
		if got := tc.a.Intersect(tc.b); got != tc.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSubtract(t *testing.T) {
	tests := []struct {
		a, b Range
		want []Range
	}{
		{R(0, 10), R(20, 5), []Range{R(0, 10)}},        // disjoint
		{R(0, 10), R(0, 10), nil},                      // exact
		{R(0, 10), R(0, 5), []Range{R(5, 5)}},          // prefix removed
		{R(0, 10), R(5, 5), []Range{R(0, 5)}},          // suffix removed
		{R(0, 10), R(3, 4), []Range{R(0, 3), R(7, 3)}}, // middle removed
		{R(5, 5), R(0, 20), nil},                       // fully covered
	}
	for _, tc := range tests {
		got := tc.a.Subtract(tc.b)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%v.Subtract(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestUnionAdjacent(t *testing.T) {
	if got := R(0, 10).Union(R(20, 5)); got != R(0, 25) {
		t.Errorf("Union spanning gap = %v", got)
	}
	if got := R(0, 10).Union(Range{}); got != R(0, 10) {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Range{}).Union(R(3, 4)); got != R(3, 4) {
		t.Errorf("empty Union = %v", got)
	}
	if !R(0, 10).Adjacent(R(10, 5)) || !R(10, 5).Adjacent(R(0, 10)) {
		t.Errorf("adjacency not detected")
	}
	if R(0, 10).Adjacent(R(11, 5)) {
		t.Errorf("gap reported adjacent")
	}
}

func TestMerge(t *testing.T) {
	in := []Range{R(20, 5), R(0, 10), R(8, 4), R(25, 5), R(40, 1)}
	got := Merge(in)
	want := []Range{R(0, 12), R(20, 10), R(40, 1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
	if got := Merge(nil); len(got) != 0 {
		t.Errorf("Merge(nil) = %v", got)
	}
	single := []Range{R(5, 5)}
	if got := Merge(single); !reflect.DeepEqual(got, single) {
		t.Errorf("Merge single = %v", got)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage([]Range{R(0, 10), R(5, 10), R(100, 1)}); got != 16 {
		t.Errorf("Coverage = %d, want 16", got)
	}
}

func TestLineAlign(t *testing.T) {
	if got := LineAlign(0); got != R(0, 64) {
		t.Errorf("LineAlign(0) = %v", got)
	}
	if got := LineAlign(63); got != R(0, 64) {
		t.Errorf("LineAlign(63) = %v", got)
	}
	if got := LineAlign(64); got != R(64, 64) {
		t.Errorf("LineAlign(64) = %v", got)
	}
	if got := LineAlign(130); got != R(128, 64) {
		t.Errorf("LineAlign(130) = %v", got)
	}
}

func TestLines(t *testing.T) {
	if got := Lines(R(10, 4)); !reflect.DeepEqual(got, []Range{R(0, 64)}) {
		t.Errorf("Lines within one line = %v", got)
	}
	if got := Lines(R(60, 8)); !reflect.DeepEqual(got, []Range{R(0, 64), R(64, 64)}) {
		t.Errorf("Lines crossing boundary = %v", got)
	}
	if got := Lines(R(0, 129)); len(got) != 3 {
		t.Errorf("Lines 3-line span = %v", got)
	}
	if got := Lines(Range{}); got != nil {
		t.Errorf("Lines empty = %v", got)
	}
}

func TestSpanLines(t *testing.T) {
	if got := SpanLines(R(10, 4)); got != R(0, 64) {
		t.Errorf("SpanLines = %v", got)
	}
	if got := SpanLines(R(60, 8)); got != R(0, 128) {
		t.Errorf("SpanLines crossing = %v", got)
	}
	if got := SpanLines(Range{}); !got.Empty() {
		t.Errorf("SpanLines empty = %v", got)
	}
}

// genRange builds a small bounded range from fuzz inputs so properties
// exercise dense overlap scenarios.
func genRange(a, s uint16) Range {
	return R(uint64(a%4096), uint64(s%128)+1)
}

// Property: Subtract removes exactly the intersected bytes.
func TestQuickSubtractCoverage(t *testing.T) {
	f := func(a1, s1, a2, s2 uint16) bool {
		a, b := genRange(a1, s1), genRange(a2, s2)
		rem := a.Subtract(b)
		var remBytes uint64
		for _, r := range rem {
			if r.Overlaps(b) {
				return false // remainder must not intersect b
			}
			remBytes += r.Size
		}
		return remBytes == a.Size-a.Intersect(b).Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is commutative and contained in both inputs.
func TestQuickIntersect(t *testing.T) {
	f := func(a1, s1, a2, s2 uint16) bool {
		a, b := genRange(a1, s1), genRange(a2, s2)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Empty() {
			return !a.Overlaps(b)
		}
		return a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge output is sorted, disjoint, non-adjacent and preserves
// total coverage.
func TestQuickMergeCanonical(t *testing.T) {
	f := func(pairs []uint16) bool {
		var in []Range
		for i := 0; i+1 < len(pairs); i += 2 {
			in = append(in, genRange(pairs[i], pairs[i+1]))
		}
		// Compute naive coverage with a byte set before Merge mutates input.
		bytes := map[uint64]bool{}
		for _, r := range in {
			for a := r.Addr; a < r.End(); a++ {
				bytes[a] = true
			}
		}
		out := Merge(in)
		var total uint64
		for i, r := range out {
			total += r.Size
			if i > 0 && out[i-1].End() >= r.Addr {
				return false // must be disjoint and non-adjacent
			}
		}
		return total == uint64(len(bytes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lines covers r and every line is aligned.
func TestQuickLines(t *testing.T) {
	f := func(a1, s1 uint16) bool {
		r := genRange(a1, s1)
		ls := Lines(r)
		if len(ls) == 0 {
			return false
		}
		for i, l := range ls {
			if l.Addr%CacheLineSize != 0 || l.Size != CacheLineSize {
				return false
			}
			if i > 0 && ls[i-1].End() != l.Addr {
				return false
			}
		}
		return ls[0].Addr <= r.Addr && r.End() <= ls[len(ls)-1].End()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
