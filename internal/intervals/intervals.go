// Package intervals provides half-open address-range arithmetic used by all
// bookkeeping structures: overlap tests, containment, splitting a range
// around a flushed sub-range, and canonical merging of range sets.
package intervals

import (
	"fmt"
	"sort"
)

// Range is the half-open address interval [Addr, Addr+Size).
type Range struct {
	Addr uint64
	Size uint64
}

// R is shorthand for constructing a Range.
func R(addr, size uint64) Range { return Range{Addr: addr, Size: size} }

// End returns the first address past the range.
func (r Range) End() uint64 { return r.Addr + r.Size }

// Empty reports whether the range covers no addresses.
func (r Range) Empty() bool { return r.Size == 0 }

// String formats the range as [addr,+size).
func (r Range) String() string { return fmt.Sprintf("[%#x,+%d)", r.Addr, r.Size) }

// Overlaps reports whether r and o share at least one address.
func (r Range) Overlaps(o Range) bool {
	return r.Addr < o.End() && o.Addr < r.End()
}

// Contains reports whether r fully covers o (o ⊆ r).
func (r Range) Contains(o Range) bool {
	return r.Addr <= o.Addr && o.End() <= r.End()
}

// ContainsAddr reports whether addr falls inside r.
func (r Range) ContainsAddr(addr uint64) bool {
	return r.Addr <= addr && addr < r.End()
}

// Intersect returns the overlapping sub-range of r and o. The result is the
// empty range when they do not overlap.
func (r Range) Intersect(o Range) Range {
	lo := max64(r.Addr, o.Addr)
	hi := min64(r.End(), o.End())
	if lo >= hi {
		return Range{}
	}
	return Range{Addr: lo, Size: hi - lo}
}

// Subtract removes o from r, returning the 0, 1 or 2 remaining sub-ranges.
// This implements the location-splitting the paper describes when a CLF
// partially overlaps a tracked memory location (§4.3): the overlapped
// sub-range is flushed, the returned remainders are not.
func (r Range) Subtract(o Range) []Range {
	if !r.Overlaps(o) {
		return []Range{r}
	}
	var out []Range
	if r.Addr < o.Addr {
		out = append(out, Range{Addr: r.Addr, Size: o.Addr - r.Addr})
	}
	if o.End() < r.End() {
		out = append(out, Range{Addr: o.End(), Size: r.End() - o.End()})
	}
	return out
}

// Union returns the smallest range covering both r and o. It is only
// meaningful when the ranges overlap or are adjacent, but is defined for all
// inputs (it spans any gap).
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	lo := min64(r.Addr, o.Addr)
	hi := max64(r.End(), o.End())
	return Range{Addr: lo, Size: hi - lo}
}

// Adjacent reports whether r and o touch without overlapping.
func (r Range) Adjacent(o Range) bool {
	return r.End() == o.Addr || o.End() == r.Addr
}

// Merge canonicalizes a set of ranges: sorts by address and coalesces
// overlapping or adjacent ranges. The input slice is modified in place and a
// (possibly shorter) slice aliasing it is returned.
func Merge(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Addr < rs[j].Addr })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Addr <= last.End() {
			if r.End() > last.End() {
				last.Size = r.End() - last.Addr
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// Coverage returns the total number of addresses covered by the canonical
// form of rs. The input is merged (and therefore reordered) in the process.
func Coverage(rs []Range) uint64 {
	var total uint64
	for _, r := range Merge(rs) {
		total += r.Size
	}
	return total
}

// CacheLineSize is the modeled cache-line granularity for writebacks.
const CacheLineSize = 64

// LineAlign returns the cache line range containing addr.
func LineAlign(addr uint64) Range {
	base := addr &^ uint64(CacheLineSize-1)
	return Range{Addr: base, Size: CacheLineSize}
}

// Lines returns the cache-line-aligned ranges covering r, one Range per line.
func Lines(r Range) []Range {
	if r.Empty() {
		return nil
	}
	first := r.Addr &^ uint64(CacheLineSize-1)
	last := (r.End() - 1) &^ uint64(CacheLineSize-1)
	n := (last-first)/CacheLineSize + 1
	out := make([]Range, 0, n)
	for base := first; ; base += CacheLineSize {
		out = append(out, Range{Addr: base, Size: CacheLineSize})
		if base == last {
			break
		}
	}
	return out
}

// SpanLines returns the single cache-line-aligned range covering r.
func SpanLines(r Range) Range {
	if r.Empty() {
		return Range{}
	}
	first := r.Addr &^ uint64(CacheLineSize-1)
	end := (r.End() + CacheLineSize - 1) &^ uint64(CacheLineSize-1)
	return Range{Addr: first, Size: end - first}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
