package core

import (
	"fmt"
	"sync"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// This file is the detector side of online sharded live detection: a
// ShardedDetector owns one engine per shard and splits itself (trace.Sharder)
// into per-shard handlers that a trace.ShardedPipeline drives from its
// per-shard consumer goroutines. Each shard sees exactly the subsequence a
// strand-partitioned replay would hand it, so Report — a report.Merge of
// the shard reports — is byte-identical to inline delivery, the same
// equivalence ReplayParallel exploits offline.

// epochRules are the rule bits whose verdicts depend on epoch sections or
// transaction log events — the global (cross-strand) part of the stream
// that sharded delivery sequences with barriers rather than replays
// per-shard. Configurations with any of them enabled are not shardable.
const epochRules = rules.RuleRedundantLogging | rules.RuleLackDurabilityInEpoch |
	rules.RuleRedundantEpochFence

// Shardable reports whether cfg permits live sharded detection: a
// Parallelizable configuration (strand model, no cross-strand order specs,
// no cross-failure hook) whose effective rule set contains no epoch-scoped
// rules. rules.Default(rules.Strand) qualifies; a caller forcing epoch
// rules onto the strand model does not, because those rules read global
// state that per-shard delivery cannot reproduce.
func Shardable(cfg Config) bool {
	cfg.fill()
	return Parallelizable(cfg) && !cfg.Rules.Has(epochRules)
}

// ShardedDetector fans detection out across per-strand shard engines. It
// implements trace.Handler/BatchHandler (synchronous routing, for inline
// use and differential tests) and trace.Sharder (per-shard handlers for a
// ShardedPipeline). When the configuration is not Shardable — or fewer
// than 2 shards are requested — it degrades to a single engine behind the
// same interface and says so via Fallback/FallbackReason, so callers can
// report the degradation loudly instead of benchmarking the wrong mode.
//
// A shard handler that panics (an engine bug) is poisoned: its remaining
// deliveries are dropped and the panic is recorded as a report failure
// entry, so Sync/Close/Report never deadlock and the final report carries
// the evidence instead of the process crashing.
type ShardedDetector struct {
	cfg      Config
	dets     []*Detector
	handlers []trace.Handler // guarded per-shard wrappers, same order as dets
	fallback string          // non-empty: why sharding was declined

	mu       sync.Mutex
	failures []string
}

// NewSharded returns a detector fanned out across the given number of
// shards, or a single-engine fallback when shards < 2 or the configuration
// is not Shardable.
func NewSharded(cfg Config, shards int) *ShardedDetector {
	sd := &ShardedDetector{cfg: cfg}
	switch {
	case shards < 2:
		sd.fallback = "fewer than 2 shards requested"
	case !Parallelizable(cfg):
		sd.fallback = "configuration is not parallelizable (needs the strand model, no order specs, no cross-failure hook)"
	case !Shardable(cfg):
		sd.fallback = "epoch-scoped rules are enabled (they read cross-strand state)"
	}
	if sd.fallback != "" {
		shards = 1
	}
	sd.dets = make([]*Detector, shards)
	sd.handlers = make([]trace.Handler, shards)
	for i := range sd.dets {
		sd.dets[i] = New(cfg)
		sd.handlers[i] = &shardHandler{sd: sd, shard: i, det: sd.dets[i]}
	}
	return sd
}

// Name returns "pmdebugger": the sharding is a delivery detail, not a
// different detector.
func (sd *ShardedDetector) Name() string { return "pmdebugger" }

// Shards returns the number of shard engines (1 in fallback mode).
func (sd *ShardedDetector) Shards() int { return len(sd.dets) }

// Fallback reports whether the detector declined to shard.
func (sd *ShardedDetector) Fallback() bool { return sd.fallback != "" }

// FallbackReason returns why sharding was declined ("" when sharded).
func (sd *ShardedDetector) FallbackReason() string { return sd.fallback }

// ShardHandlers implements trace.Sharder: one guarded handler per shard.
// In fallback mode it returns nil, which tells the attaching pool to use a
// single-consumer pipeline around the ShardedDetector itself.
func (sd *ShardedDetector) ShardHandlers() []trace.Handler {
	if sd.Fallback() {
		return nil
	}
	return sd.handlers
}

func (sd *ShardedDetector) shardOf(strand int32) int {
	return int(uint32(strand) % uint32(len(sd.dets)))
}

// HandleEvent routes one event synchronously, with the same partitioning
// rules a ShardedPipeline applies: strand-local kinds to their shard,
// Register/Unregister to every shard, JoinStrand/End dropped (finalization
// happens in Report), globals to every shard. In fallback mode every event
// passes through to the single engine unchanged.
func (sd *ShardedDetector) HandleEvent(ev trace.Event) {
	if sd.Fallback() {
		sd.handlers[0].HandleEvent(ev)
		return
	}
	switch ev.Kind {
	case trace.KindStore, trace.KindFlush, trace.KindFence,
		trace.KindStrandBegin, trace.KindStrandEnd:
		sd.handlers[sd.shardOf(ev.Strand)].HandleEvent(ev)
	case trace.KindJoinStrand, trace.KindEnd:
		// Dropped: joins are inert without order specs (not Shardable
		// otherwise) and shard engines finalize at Report time.
	default:
		// Register/Unregister and global kinds: replicate to every shard.
		for _, h := range sd.handlers {
			h.HandleEvent(ev)
		}
	}
}

// HandleBatch implements the batch fast path by routing runs of
// consecutive same-strand events whole.
func (sd *ShardedDetector) HandleBatch(evs []trace.Event) {
	if sd.Fallback() {
		if bh, ok := sd.handlers[0].(trace.BatchHandler); ok {
			bh.HandleBatch(evs)
			return
		}
	}
	for i := 0; i < len(evs); {
		ev := evs[i]
		if strandLocal(ev.Kind) {
			j := i + 1
			for j < len(evs) && strandLocal(evs[j].Kind) && evs[j].Strand == ev.Strand {
				j++
			}
			if bh, ok := sd.handlers[sd.shardOf(ev.Strand)].(trace.BatchHandler); ok {
				bh.HandleBatch(evs[i:j])
			}
			i = j
			continue
		}
		sd.HandleEvent(ev)
		i++
	}
}

// noteFailure records a recovered shard panic.
func (sd *ShardedDetector) noteFailure(shard int, r any) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	sd.failures = append(sd.failures,
		fmt.Sprintf("detector shard %d/%d panicked: %v (its remaining events were dropped)",
			shard, len(sd.dets), r))
}

// Report finalizes every shard engine and merges their reports into the
// deterministic global report (report.Merge — identical to a sequential
// replay for shardable configurations), carrying any recorded shard
// failures. Call it only after a delivery barrier (Pool.End, Sync or
// Detach) when attached asynchronously.
func (sd *ShardedDetector) Report() *report.Report {
	var rep *report.Report
	if len(sd.dets) == 1 {
		// Single engine: its report is already the sequential report; a
		// merge would only re-sort what is in order.
		rep = sd.dets[0].Report()
	} else {
		reports := make([]*report.Report, len(sd.dets))
		for i, d := range sd.dets {
			reports[i] = d.Report()
		}
		rep = report.Merge("pmdebugger", reports)
	}
	sd.mu.Lock()
	rep.Failures = append(rep.Failures, sd.failures...)
	sd.mu.Unlock()
	return rep
}

// Counters returns the summed live counters of every shard engine, without
// finalizing them.
func (sd *ShardedDetector) Counters() report.Counters {
	var c report.Counters
	for _, d := range sd.dets {
		c.Merge(d.Counters())
	}
	return c
}

// shardHandler guards one shard engine: a panic in the engine poisons the
// shard (subsequent deliveries are dropped) and is recorded as a report
// failure, so the consumer goroutine, Sync and Close keep working. Each
// shardHandler is driven from a single goroutine — its shard's pipeline
// consumer (or the producer, when routed inline) — so poisoned needs no
// synchronization.
type shardHandler struct {
	sd       *ShardedDetector
	shard    int
	det      *Detector
	poisoned bool
}

func (h *shardHandler) HandleEvent(ev trace.Event) {
	if h.poisoned {
		return
	}
	defer h.guard()
	h.det.HandleEvent(ev)
}

func (h *shardHandler) HandleBatch(evs []trace.Event) {
	if h.poisoned {
		return
	}
	defer h.guard()
	h.det.HandleBatch(evs)
}

func (h *shardHandler) guard() {
	if r := recover(); r != nil {
		h.poisoned = true
		h.sd.noteFailure(h.shard, r)
	}
}

var (
	_ trace.BatchHandler = (*ShardedDetector)(nil)
	_ trace.Sharder      = (*ShardedDetector)(nil)
	_ trace.BatchHandler = (*shardHandler)(nil)
)
