package core_test

import (
	"fmt"

	"pmdebugger/internal/core"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// Example shows the basic debugging loop: attach a detector to a simulated
// pool, run the PM program, read the report.
func Example() {
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{Model: rules.Strict})
	pool.Attach(det)

	c := pool.Ctx()
	x := pool.Alloc(64)
	c.Store64(x, 42) // store, never flushed: a durability bug
	pool.End()

	rep := det.Report()
	fmt.Println(rep.Len(), "bug:", rep.Bugs[0].Type)
	// Output:
	// 1 bug: no durability guarantee
}

// Example_orderRule configures a persist-order requirement from the §4.5
// configuration-file syntax and catches a violation.
func Example_orderRule() {
	orders := []rules.OrderSpec{{Before: "value", After: "key"}}
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{Model: rules.Strict, Orders: orders})
	pool.Attach(det)

	c := pool.Ctx()
	v := pool.Alloc(64)
	k := pool.Alloc(64)
	pool.RegisterNamed("value", v, 8)
	pool.RegisterNamed("key", k, 8)

	c.Store64(k, 1)
	c.Persist(k, 8) // key durable before value: violation
	c.Store64(v, 2)
	c.Persist(v, 8)
	pool.End()

	fmt.Println(det.Report().Has(2)) // report.NoOrderGuarantee
	// Output:
	// true
}

// Example_epochModel shows the relaxed-model rules on a transaction-shaped
// program with one fence too many.
func Example_epochModel() {
	pool := pmem.New(1 << 16)
	det := core.New(core.Config{Model: rules.Epoch})
	pool.Attach(det)

	c := pool.Ctx()
	a := pool.Alloc(128)
	c.EpochBegin()
	c.Store64(a, 1)
	c.Persist(a, 8) // fence 1
	c.Store64(a+64, 2)
	c.Persist(a+64, 8) // fence 2: redundant in this epoch
	c.EpochEnd()
	pool.End()

	for _, b := range det.Report().Bugs {
		fmt.Println(b.Type)
	}
	// Output:
	// redundant epoch fence
}
