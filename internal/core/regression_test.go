package core

import (
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// trackProbe is a user rule that queries the bookkeeping for every store it
// observes, exactly as the flexibility API documents: q.Tracked(ev.Strand,
// ev.Addr) right after the store must hit.
type trackProbe struct {
	hits, misses int
}

func (p *trackProbe) Name() string { return "track-probe" }
func (p *trackProbe) OnEvent(ev trace.Event, q Query) {
	if ev.Kind != trace.KindStore {
		return
	}
	if _, ok := q.Tracked(ev.Strand, ev.Addr); ok {
		p.hits++
	} else {
		p.misses++
	}
}

// Regression: the bookkeeping queries used to index d.spaces[strand]
// directly, bypassing the model fold — under sequential/epoch models every
// event is bookkept in space 0, so querying with the event's (nonzero)
// strand id returned a false miss.
func TestQueriesFollowModelFold(t *testing.T) {
	for _, model := range []rules.Model{rules.Strict, rules.Epoch} {
		d := New(Config{Model: model})
		probe := &trackProbe{}
		d.AddRule(probe)
		const addr = 0x4000
		d.HandleEvent(trace.Event{Seq: 1, Kind: trace.KindStore, Addr: addr, Size: 8, Strand: 5})
		if probe.misses != 0 || probe.hits != 1 {
			t.Errorf("%s: probe hits=%d misses=%d, want 1/0", model, probe.hits, probe.misses)
		}
		st, ok := d.Tracked(5, addr)
		if !ok || !st.InArray || st.Addr != addr {
			t.Errorf("%s: Tracked(5, %#x) = %+v, %v; want array hit", model, addr, st, ok)
		}
		if got := d.ArrayLen(5); got != 1 {
			t.Errorf("%s: ArrayLen(5) = %d, want 1", model, got)
		}
		if got, want := d.TreeLen(5), d.TreeLen(0); got != want {
			t.Errorf("%s: TreeLen(5) = %d, want %d (space 0)", model, got, want)
		}
		if got, want := d.TreeStats(5), d.TreeStats(0); got != want {
			t.Errorf("%s: TreeStats(5) = %+v, want %+v", model, got, want)
		}
	}
}

func TestQueriesStrandModelStillPerStrand(t *testing.T) {
	d := New(Config{Model: rules.Strand})
	d.HandleEvent(trace.Event{Seq: 1, Kind: trace.KindStore, Addr: 0x4000, Size: 8, Strand: 3})
	if _, ok := d.Tracked(3, 0x4000); !ok {
		t.Error("Tracked(3) should hit strand 3's space")
	}
	if _, ok := d.Tracked(4, 0x4000); ok {
		t.Error("Tracked(4) must not observe strand 3's records")
	}
	if got := d.ArrayLen(4); got != 0 {
		t.Errorf("ArrayLen(4) = %d, want 0 (space never materialized)", got)
	}
}

// Regression: a KindTxLogAdd outside any transaction used to be recorded in
// the redundant-logging shadow; the shadow is only cleared at epoch begin,
// so the stray entry misreported the next transaction's first legitimate
// log write of the same object as redundant.
func TestTxLogAddOutsideEpochIgnored(t *testing.T) {
	d := New(Config{Model: rules.Epoch})
	const addr = 0x2000
	seq := uint64(0)
	emit := func(k trace.Kind) {
		seq++
		d.HandleEvent(trace.Event{Seq: seq, Kind: k, Addr: addr, Size: 64})
	}
	emit(trace.KindTxLogAdd) // stray: no transaction active
	emit(trace.KindEpochBegin)
	emit(trace.KindTxLogAdd) // first log of the object in this transaction
	emit(trace.KindEpochEnd)
	d.HandleEvent(trace.Event{Seq: 99, Kind: trace.KindEnd})
	if d.Report().Has(report.RedundantLogging) {
		t.Fatalf("stray pre-transaction log add caused a spurious bug:\n%s", d.Report().Summary())
	}
}

func TestTxLogAddInsideEpochStillDetected(t *testing.T) {
	d := New(Config{Model: rules.Epoch})
	const addr = 0x2000
	d.HandleEvent(trace.Event{Seq: 1, Kind: trace.KindEpochBegin})
	d.HandleEvent(trace.Event{Seq: 2, Kind: trace.KindTxLogAdd, Addr: addr, Size: 64})
	d.HandleEvent(trace.Event{Seq: 3, Kind: trace.KindTxLogAdd, Addr: addr, Size: 64})
	d.HandleEvent(trace.Event{Seq: 4, Kind: trace.KindEpochEnd})
	if !d.Report().Has(report.RedundantLogging) {
		t.Fatalf("double log inside a transaction must still report:\n%s", d.Report().Summary())
	}
}

// The spare-space recycling path resets the array and interval metadata and
// relies on the retired space's tree being empty (only empty spaces are
// retired). This pins that invariant: a recycled space must leak no stale
// records into its new strand's tree, metadata, or the final report.
func TestSpareSpaceRecyclingLeaksNothing(t *testing.T) {
	d := New(Config{Model: rules.Strand})
	const oldAddr, newAddr = 0x4000, 0x5000
	seq := uint64(0)
	emit := func(k trace.Kind, strand int32, addr, size uint64) {
		seq++
		d.HandleEvent(trace.Event{Seq: seq, Kind: k, Strand: strand, Addr: addr, Size: size})
	}
	// Strand 7 persists cleanly and retires.
	emit(trace.KindStrandBegin, 7, 0, 0)
	emit(trace.KindStore, 7, oldAddr, 8)
	emit(trace.KindFlush, 7, oldAddr, 64)
	emit(trace.KindFence, 7, 0, 0)
	emit(trace.KindStrandEnd, 7, 0, 0)
	if len(d.spareSpaces) != 1 {
		t.Fatalf("retired strand space not recycled: %d spares", len(d.spareSpaces))
	}
	retired := d.spareSpaces[0]

	// Strand 9 must reuse the retired space and start from a blank slate.
	emit(trace.KindStrandBegin, 9, 0, 0)
	if d.spaces[9] != retired {
		t.Fatal("strand 9 did not reuse the recycled space")
	}
	if got := d.ArrayLen(9); got != 0 {
		t.Fatalf("recycled space ArrayLen = %d, want 0", got)
	}
	if got := d.TreeLen(9); got != 0 {
		t.Fatalf("recycled space TreeLen = %d, want 0", got)
	}
	if _, ok := d.Tracked(9, oldAddr); ok {
		t.Fatal("recycled space still tracks the previous strand's record")
	}
	emit(trace.KindStore, 9, newAddr, 8) // never persisted
	emit(trace.KindStrandEnd, 9, 0, 0)
	emit(trace.KindEnd, 0, 0, 0)

	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Fatalf("want exactly 1 no-durability bug (the new strand's store), got:\n%s", rep.Summary())
	}
	if rep.Bugs[0].Addr != newAddr {
		t.Fatalf("reported bug at %#x, want %#x", rep.Bugs[0].Addr, newAddr)
	}
}
