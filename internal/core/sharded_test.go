package core

import (
	"strings"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

func TestShardable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"strand-default", Config{Model: rules.Strand}, true},
		{"strict", Config{Model: rules.Strict}, false},
		{"epoch", Config{Model: rules.Epoch}, false},
		{"strand-orders", Config{Model: rules.Strand,
			Orders: []rules.OrderSpec{{Before: "a", After: "b"}}}, false},
		{"strand-cross", Config{Model: rules.Strand,
			CrossFailureCheck: func() error { return nil }}, false},
		{"strand-epoch-rules", Config{Model: rules.Strand,
			Rules: rules.Default(rules.Strand) | rules.RuleRedundantLogging}, false},
	}
	for _, c := range cases {
		if got := Shardable(c.cfg); got != c.want {
			t.Errorf("%s: Shardable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestShardedDetectorMatchesSequential routes the strand trace through a
// ShardedDetector inline (both per-event and batched) and requires the
// merged report to be identical to one sequential engine's.
func TestShardedDetectorMatchesSequential(t *testing.T) {
	rec := recordStrandTrace(t, 100)
	cfg := Config{Model: rules.Strand}
	seq := sequentialReport(rec.Events, cfg)
	if !seq.Has(report.NoDurability) || !seq.Has(report.RedundantFlush) {
		t.Fatalf("test trace should plant bugs, got:\n%s", seq.Summary())
	}
	for _, shards := range []int{2, 3, 4, 7} {
		sd := NewSharded(cfg, shards)
		if sd.Fallback() {
			t.Fatalf("shards=%d: unexpected fallback: %s", shards, sd.FallbackReason())
		}
		if sd.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", sd.Shards(), shards)
		}
		for _, ev := range rec.Events {
			sd.HandleEvent(ev)
		}
		assertSameReport(t, seq, sd.Report(), "sharded-events")

		sd = NewSharded(cfg, shards)
		sd.HandleBatch(rec.Events)
		assertSameReport(t, seq, sd.Report(), "sharded-batch")
	}
}

// TestShardedDetectorViaShardedPipeline is the live-delivery differential:
// the same trace pushed through a trace.ShardedPipeline into the detector's
// ShardHandlers — per-shard consumer goroutines and all — must still merge
// to the byte-identical sequential report.
func TestShardedDetectorViaShardedPipeline(t *testing.T) {
	rec := recordStrandTrace(t, 100)
	cfg := Config{Model: rules.Strand}
	seq := sequentialReport(rec.Events, cfg)
	for _, lazy := range []bool{false, true} {
		sd := NewSharded(cfg, 4)
		sp := trace.NewShardedPipeline(sd, sd.ShardHandlers(), trace.PipelineOptions{Lazy: lazy})
		sp.HandleBatch(rec.Events)
		sp.Close()
		if err := sp.Err(); err != nil {
			t.Fatalf("lazy=%v: pipeline error: %v", lazy, err)
		}
		assertSameReport(t, seq, sd.Report(), "sharded-pipeline")
	}
}

// TestShardedFallback checks every decline reason, and that the fallback
// detector still produces the exact sequential report (pass-through mode).
func TestShardedFallback(t *testing.T) {
	rec := recordStrandTrace(t, 24)
	cases := []struct {
		name   string
		cfg    Config
		shards int
		reason string
	}{
		{"too-few-shards", Config{Model: rules.Strand}, 1, "fewer than 2"},
		{"strict", Config{Model: rules.Strict}, 4, "not parallelizable"},
		{"epoch-rules", Config{Model: rules.Strand,
			Rules: rules.Default(rules.Strand) | rules.RuleLackDurabilityInEpoch}, 4, "epoch-scoped"},
	}
	for _, c := range cases {
		sd := NewSharded(c.cfg, c.shards)
		if !sd.Fallback() {
			t.Fatalf("%s: expected fallback", c.name)
		}
		if !strings.Contains(sd.FallbackReason(), c.reason) {
			t.Fatalf("%s: reason %q does not mention %q", c.name, sd.FallbackReason(), c.reason)
		}
		if sd.Shards() != 1 {
			t.Fatalf("%s: fallback should run 1 engine, has %d", c.name, sd.Shards())
		}
		if sd.ShardHandlers() != nil {
			t.Fatalf("%s: fallback ShardHandlers should be nil", c.name)
		}
		sd.HandleBatch(rec.Events)
		assertSameReport(t, sequentialReport(rec.Events, c.cfg), sd.Report(), c.name)
	}
}

// TestShardedPanicBecomesReportFailure breaks one shard engine and checks
// the full recovery chain: the shard is poisoned instead of killing its
// consumer goroutine, Sync/Close/Report all complete, and the merged report
// carries a failure entry naming the shard — visibly, in the summary.
func TestShardedPanicBecomesReportFailure(t *testing.T) {
	rec := recordStrandTrace(t, 60)
	cfg := Config{Model: rules.Strand}
	sd := NewSharded(cfg, 2)
	// A nil engine makes the first delivery panic exactly like an engine bug
	// would, inside the shard handler's guard.
	sd.handlers[1].(*shardHandler).det = nil

	sp := trace.NewShardedPipeline(sd, sd.ShardHandlers(), trace.PipelineOptions{})
	sp.HandleBatch(rec.Events)
	sp.Sync()
	sp.Close()

	rep := sd.Report()
	if len(rep.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly one entry", rep.Failures)
	}
	if !strings.Contains(rep.Failures[0], "shard 1/2 panicked") {
		t.Fatalf("failure entry does not name the shard: %q", rep.Failures[0])
	}
	if !strings.Contains(rep.Summary(), "detection failure") {
		t.Fatalf("summary hides the failure:\n%s", rep.Summary())
	}
	// The healthy shard's findings must survive the merge.
	if !rep.Has(report.NoDurability) {
		t.Fatalf("healthy shard's bugs missing:\n%s", rep.Summary())
	}
}

// TestShardedPanicSurvivesPoolEnd is the same recovery chain end-to-end
// through a pool: a broken shard engine under a sharded async attach must
// not hang Pool.End's drain barrier, and the failure reaches the summary.
func TestShardedPanicSurvivesPoolEnd(t *testing.T) {
	p := pmem.New(1 << 20)
	cfg := Config{Model: rules.Strand}
	sd := NewSharded(cfg, 2)
	sd.handlers[1].(*shardHandler).det = nil // first delivery on shard 1 panics
	p.AttachWith(sd, pmem.AttachOptions{Async: true, Shards: 2})
	c := p.Ctx()
	for i := 0; i < 100; i++ {
		st := c.StrandBegin()
		a := p.Base() + uint64(i%64)*pmem.LineSize
		st.Store64(a, uint64(i))
		st.Persist(a, 8)
		st.StrandEnd()
	}
	p.End() // must not hang on the broken shard
	sum := sd.Report().Summary()
	if !strings.Contains(sum, "detection failure") || !strings.Contains(sum, "shard 1/2") {
		t.Fatalf("broken shard not surfaced:\n%s", sum)
	}
}

// TestShardedCountersMerge checks the live counter view sums every shard.
func TestShardedCountersMerge(t *testing.T) {
	rec := recordStrandTrace(t, 40)
	cfg := Config{Model: rules.Strand}
	sd := NewSharded(cfg, 4)
	sd.HandleBatch(rec.Events)
	d := New(cfg)
	for _, ev := range rec.Events {
		d.HandleEvent(ev)
	}
	if got, want := sd.Counters(), d.Counters(); got != want {
		t.Fatalf("merged live counters %+v != sequential %+v", got, want)
	}
}
