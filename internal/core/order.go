package core

import (
	"fmt"
	"strings"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// orderTracker enforces programmer-supplied persist-order requirements. It
// implements two rules:
//
//   - No-order-guarantee (§4.5): when a fence makes Y durable, X must have
//     been made durable by a strictly earlier fence.
//   - Lack-ordering-in-strands (§5.2): when a CLF persists Y from one strand
//     while X is still non-durable in another running strand, the
//     cross-strand persist order cannot be guaranteed.
//
// The tracker is shared by all strand bookkeeping spaces: it is the "small
// array shared between the sections used to check persistency order" of
// §5.1. Variable names resolve through Register events emitted by
// pmem.RegisterNamed; scopes toggle through register names of the form
// "scope:<name>:begin" / "scope:<name>:end".
type orderTracker struct {
	d     *Detector
	specs []rules.OrderSpec

	names      map[string]intervals.Range
	watch      []watched // names referenced by any spec, densely iterated
	scopes     map[string]bool
	strandLive map[int32]bool
	fenceNo    uint64
}

type watched struct {
	name       string
	rng        intervals.Range
	haveRange  bool
	committed  bool
	commitAt   uint64 // fence number of full durability
	covered    []intervals.Range
	lastStrand int32
	hasStore   bool
}

func newOrderTracker(d *Detector, specs []rules.OrderSpec) *orderTracker {
	ot := &orderTracker{
		d:          d,
		specs:      specs,
		names:      map[string]intervals.Range{},
		scopes:     map[string]bool{},
		strandLive: map[int32]bool{},
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		for _, n := range []string{sp.Before, sp.After} {
			if !seen[n] {
				seen[n] = true
				ot.watch = append(ot.watch, watched{name: n})
			}
		}
	}
	return ot
}

func (ot *orderTracker) lookup(name string) *watched {
	for i := range ot.watch {
		if ot.watch[i].name == name {
			return &ot.watch[i]
		}
	}
	return nil
}

// noteRegister resolves named ranges and scope toggles from Register events.
func (ot *orderTracker) noteRegister(ev trace.Event) {
	if ev.Site == 0 {
		return
	}
	name := trace.SiteName(ev.Site)
	if rest, ok := strings.CutPrefix(name, "scope:"); ok {
		if s, ok := strings.CutSuffix(rest, ":begin"); ok {
			ot.scopes[s] = true
			return
		}
		if s, ok := strings.CutSuffix(rest, ":end"); ok {
			ot.scopes[s] = false
			return
		}
	}
	ot.names[name] = intervals.R(ev.Addr, ev.Size)
	if w := ot.lookup(name); w != nil {
		w.rng = intervals.R(ev.Addr, ev.Size)
		w.haveRange = true
	}
}

func (ot *orderTracker) scopeActive(sp rules.OrderSpec) bool {
	if sp.Scope == "" {
		return true
	}
	return ot.scopes[sp.Scope]
}

// noteStore records which strand last wrote each watched variable.
func (ot *orderTracker) noteStore(ev trace.Event) {
	r := intervals.R(ev.Addr, ev.Size)
	for i := range ot.watch {
		w := &ot.watch[i]
		if w.haveRange && w.rng.Overlaps(r) {
			w.lastStrand = ev.Strand
			w.hasStore = true
			// A new store invalidates previous durability: the variable
			// must be persisted again.
			w.committed = false
			w.covered = w.covered[:0]
		}
	}
}

// noteCommit accumulates durable coverage for watched variables; a variable
// is committed when its whole range is durable.
func (ot *orderTracker) noteCommit(r intervals.Range) {
	for i := range ot.watch {
		w := &ot.watch[i]
		if w.committed || !w.haveRange || !w.rng.Overlaps(r) {
			continue
		}
		w.covered = append(w.covered, w.rng.Intersect(r))
		if intervals.Coverage(w.covered) >= w.rng.Size {
			w.committed = true
			w.commitAt = ot.fenceNo + 1 // commit attributed to the current fence
			w.covered = w.covered[:0]
		}
	}
}

// fenceDone runs the no-order rule after a fence's commits are recorded.
func (ot *orderTracker) fenceDone(ev trace.Event) {
	ot.fenceNo++
	if !ot.d.cfg.Rules.Has(rules.RuleNoOrder) {
		return
	}
	for _, sp := range ot.specs {
		if !ot.scopeActive(sp) {
			continue
		}
		after := ot.lookup(sp.After)
		before := ot.lookup(sp.Before)
		if after == nil || before == nil || !after.committed || after.commitAt != ot.fenceNo {
			continue // Y did not just become durable
		}
		if before.committed && before.commitAt < after.commitAt {
			continue // X durable strictly earlier: order satisfied
		}
		fenceNo, tied := ot.fenceNo, before.committed
		ot.d.rep.AddLazy(report.Bug{
			Type: report.NoOrderGuarantee,
			Addr: after.rng.Addr, Size: after.rng.Size,
			Seq: ev.Seq, Strand: ev.Strand,
			Site: trace.RegisterSite("order:" + sp.Before + "<" + sp.After),
		}, func() string {
			if tied {
				return fmt.Sprintf("%q and %q became durable at the same fence %d: order not established",
					sp.After, sp.Before, fenceNo)
			}
			return fmt.Sprintf("%q became durable at fence %d but %q is not durable yet",
				sp.After, fenceNo, sp.Before)
		})
	}
}

// noteFlush runs the strand-ordering rule (§5.2): a CLF persisting Y from
// strand s while X is uncommitted and last written by a different, still
// running strand violates the cross-strand order requirement.
func (ot *orderTracker) noteFlush(ev trace.Event) {
	if !ot.d.cfg.Rules.Has(rules.RuleLackOrderingInStrands) {
		return
	}
	fr := intervals.R(ev.Addr, ev.Size)
	for _, sp := range ot.specs {
		if !ot.scopeActive(sp) {
			continue
		}
		after := ot.lookup(sp.After)
		before := ot.lookup(sp.Before)
		if after == nil || before == nil || !after.haveRange || !after.rng.Overlaps(fr) {
			continue
		}
		if before.committed {
			continue
		}
		if !before.hasStore {
			continue
		}
		if before.lastStrand != ev.Strand && ot.strandLive[before.lastStrand] {
			lastStrand := before.lastStrand
			ot.d.rep.AddLazy(report.Bug{
				Type: report.LackOrderingInStrands,
				Addr: after.rng.Addr, Size: after.rng.Size,
				Seq: ev.Seq, Strand: ev.Strand,
				Site: trace.RegisterSite("strand-order:" + sp.Before + "<" + sp.After),
			}, func() string {
				return fmt.Sprintf(
					"strand %d persists %q while %q written by running strand %d is not durable",
					ev.Strand, sp.After, sp.Before, lastStrand)
			})
		}
	}
}

func (ot *orderTracker) strandBegin(id int32) { ot.strandLive[id] = true }

func (ot *orderTracker) strandEnd(id int32) { ot.strandLive[id] = false }

// joinStrand orders all current strands: after a join, their persists are
// explicitly ordered, so they no longer count as concurrently running.
func (ot *orderTracker) joinStrand() {
	for id := range ot.strandLive {
		ot.strandLive[id] = false
	}
}
