package core

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func TestOrderRewriteInvalidatesDurability(t *testing.T) {
	// X becomes durable, is rewritten (durability lost), then Y commits:
	// the requirement is violated even though X was durable once.
	orders := []rules.OrderSpec{{Before: "X", After: "Y"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		x := p.Alloc(64)
		y := p.Alloc(64)
		p.RegisterNamed("X", x, 8)
		p.RegisterNamed("Y", y, 8)
		c.Store64(x, 1)
		c.Persist(x, 8) // X durable
		c.Store64(x, 2) // rewrite: X no longer durable
		c.Store64(y, 3)
		c.Persist(y, 8) // Y durable while the new X is not
		c.Persist(x, 8)
	})
	if !rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("rewrite-invalidated order not detected:\n%s", rep.Summary())
	}
}

func TestOrderPartialCommitAccumulates(t *testing.T) {
	// X is a 16-byte variable persisted in two halves across two fences;
	// it counts as durable only once fully covered, which still precedes Y.
	orders := []rules.OrderSpec{{Before: "X", After: "Y"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		blk := p.Alloc(256)
		// X straddles a cache-line boundary so its two halves can be
		// persisted by separate line writebacks at separate fences.
		x := (blk+63)&^63 + 56
		y := p.Alloc(64)
		p.RegisterNamed("X", x, 16)
		p.RegisterNamed("Y", y, 8)
		c.StoreBytes(x, make([]byte, 16))
		c.Flush(x, 1)   // first line only
		c.Fence()       // half of X durable: not committed yet
		c.Flush(x+8, 1) // second line
		c.Fence()       // X fully durable here
		c.Store64(y, 1)
		c.Persist(y, 8)
	})
	if rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("accumulated commit flagged:\n%s", rep.Summary())
	}
	wantBugs(t, rep, nil)
}

func TestOrderYNeverDurableNoReport(t *testing.T) {
	// Y is never made durable, so the order rule has nothing to fire on
	// (the durability bug is reported separately).
	orders := []rules.OrderSpec{{Before: "X", After: "Y"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		x := p.Alloc(64)
		y := p.Alloc(64)
		p.RegisterNamed("X", x, 8)
		p.RegisterNamed("Y", y, 8)
		c.Store64(y, 1) // never persisted
		c.Store64(x, 2)
		c.Persist(x, 8)
	})
	if rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("order reported without Y committing:\n%s", rep.Summary())
	}
	if !rep.Has(report.NoDurability) {
		t.Fatalf("missing durability bug for Y:\n%s", rep.Summary())
	}
}

func TestOrderUnresolvedNamesAreInert(t *testing.T) {
	// Specs referring to names never registered must not fire or crash.
	orders := []rules.OrderSpec{{Before: "ghost", After: "phantom"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1)
		c.Persist(a, 8)
	})
	wantBugs(t, rep, nil)
}

func TestOrderRepeatedCyclesStayClean(t *testing.T) {
	// A correct update loop re-persisting X before Y every iteration.
	orders := []rules.OrderSpec{{Before: "X", After: "Y"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		x := p.Alloc(64)
		y := p.Alloc(64)
		p.RegisterNamed("X", x, 8)
		p.RegisterNamed("Y", y, 8)
		for i := uint64(0); i < 10; i++ {
			c.Store64(x, i)
			c.Persist(x, 8)
			c.Store64(y, i)
			c.Persist(y, 8)
		}
	})
	wantBugs(t, rep, nil)
}

// TestArrayFirstFenceEquivalence verifies the A3 ablation knob changes only
// performance, never outcomes: random streams produce identical bug-type
// sets under both fence-processing orders.
func TestArrayFirstFenceEquivalence(t *testing.T) {
	base := Config{
		Model: rules.Strict,
		Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
			rules.RuleRedundantFlush | rules.RuleFlushNothing,
		ArrayCapacity:  8,
		MergeThreshold: 4,
	}
	alt := base
	alt.ArrayFirstFence = true
	for seed := int64(5000); seed < 5100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := genStream(rng, 150)
		d1 := New(base)
		d2 := New(alt)
		for _, ev := range evs {
			d1.HandleEvent(ev)
			d2.HandleEvent(ev)
		}
		r1, r2 := d1.Report(), d2.Report()
		for _, typ := range report.AllBugTypes() {
			if r1.Has(typ) != r2.Has(typ) {
				t.Fatalf("seed %d: %s differs between fence orders", seed, typ)
			}
		}
	}
}
