package core

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// oracle is a brute-force reference detector: it tracks the state of every
// byte in plain maps with no bookkeeping cleverness, implementing the same
// five common rules from their definitions. Differential testing against it
// validates the hybrid array+tree engine on arbitrary instruction streams.
type oracle struct {
	// per-byte state
	written map[uint64]byteState
	bugs    map[report.BugType]bool
}

type byteState struct {
	flushed bool
}

func newOracle() *oracle {
	return &oracle{written: map[uint64]byteState{}, bugs: map[report.BugType]bool{}}
}

func (o *oracle) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		for a := ev.Addr; a < ev.End(); a++ {
			if _, tracked := o.written[a]; tracked {
				o.bugs[report.MultipleOverwrites] = true
			}
			o.written[a] = byteState{}
		}
	case trace.KindFlush:
		anyNew, anyOld := false, false
		for a := ev.Addr; a < ev.End(); a++ {
			st, tracked := o.written[a]
			if !tracked {
				continue
			}
			if st.flushed {
				anyOld = true
			} else {
				anyNew = true
				o.written[a] = byteState{flushed: true}
			}
		}
		if !anyNew && anyOld {
			o.bugs[report.RedundantFlush] = true
		}
		if !anyNew && !anyOld {
			o.bugs[report.FlushNothing] = true
		}
	case trace.KindFence:
		for a, st := range o.written {
			if st.flushed {
				delete(o.written, a)
			}
		}
	case trace.KindEnd:
		if len(o.written) > 0 {
			o.bugs[report.NoDurability] = true
		}
	}
}

// genStream produces a random instruction stream over a small address space
// so overlaps, splits and line effects are dense.
func genStream(rng *rand.Rand, n int) []trace.Event {
	const base = 0x1000_0000
	var evs []trace.Event
	seq := uint64(0)
	emit := func(kind trace.Kind, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // store
			addr := base + uint64(rng.Intn(256))
			size := uint64(rng.Intn(24) + 1)
			emit(trace.KindStore, addr, size)
		case 5, 6, 7: // flush (sometimes line-aligned, sometimes arbitrary)
			addr := base + uint64(rng.Intn(256))
			size := uint64(rng.Intn(64) + 1)
			if rng.Intn(2) == 0 {
				addr &^= 63
				size = 64
			}
			emit(trace.KindFlush, addr, size)
		case 8, 9: // fence
			emit(trace.KindFence, 0, 0)
		}
	}
	emit(trace.KindEnd, 0, 0)
	return evs
}

// TestDifferentialAgainstOracle replays random streams into the engine and
// the oracle and compares which bug types each saw. The engine's dedup and
// record granularity differ from per-byte tracking, so the comparison is on
// type presence, which both define identically.
func TestDifferentialAgainstOracle(t *testing.T) {
	cfg := Config{
		Model: rules.Strict,
		Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
			rules.RuleRedundantFlush | rules.RuleFlushNothing,
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := genStream(rng, 120)

		d := New(cfg)
		o := newOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("seed %d: %s engine=%v oracle=%v\nreport:\n%s",
					seed, typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
	}
}

// TestDifferentialSmallArray re-runs the differential test with a tiny
// memory location array so the tree paths dominate.
func TestDifferentialSmallArray(t *testing.T) {
	cfg := Config{
		Model:         rules.Strict,
		ArrayCapacity: 4,
		Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
			rules.RuleRedundantFlush | rules.RuleFlushNothing,
	}
	for seed := int64(1000); seed < 1100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := genStream(rng, 150)
		d := New(cfg)
		o := newOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("seed %d: %s engine=%v oracle=%v\nreport:\n%s",
					seed, typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
	}
}

// TestDifferentialAggressiveMerge re-runs with a merge threshold of 0 so
// reorganization happens constantly; merging must never change rule
// outcomes.
func TestDifferentialAggressiveMerge(t *testing.T) {
	cfg := Config{
		Model:          rules.Strict,
		MergeThreshold: 1,
		Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
			rules.RuleRedundantFlush | rules.RuleFlushNothing,
	}
	for seed := int64(2000); seed < 2100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := genStream(rng, 150)
		d := New(cfg)
		o := newOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("seed %d: %s engine=%v oracle=%v\nreport:\n%s",
					seed, typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
	}
}
