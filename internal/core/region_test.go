package core

import (
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// The artifact's address_specific function tests: with RequireRegistration,
// only registered regions are debugging targets.

func regDetector() *Detector {
	return New(Config{
		Model:               rules.Strict,
		RequireRegistration: true,
		Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
			rules.RuleRedundantFlush | rules.RuleFlushNothing,
	})
}

func ev(kind trace.Kind, addr, size uint64) trace.Event {
	return trace.Event{Kind: kind, Addr: addr, Size: size}
}

func TestUnregisteredStoresIgnored(t *testing.T) {
	d := regDetector()
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x100))
	d.HandleEvent(ev(trace.KindStore, 0x1000, 8)) // inside: tracked, never persisted
	d.HandleEvent(ev(trace.KindStore, 0x5000, 8)) // outside: ignored
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Fatalf("durability bugs = %d, want 1 (outside store must be ignored)\n%s",
			got, rep.Summary())
	}
	if rep.Bugs[0].Addr != 0x1000 {
		t.Fatalf("wrong bug: %s", rep.Bugs[0])
	}
}

func TestUnregisteredFlushNotFlushNothing(t *testing.T) {
	d := regDetector()
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x100))
	d.HandleEvent(ev(trace.KindFlush, 0x5000, 64)) // outside: not a bug
	d.HandleEvent(ev(trace.KindFence, 0, 0))
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	if d.Report().Len() != 0 {
		t.Fatalf("outside flush flagged:\n%s", d.Report().Summary())
	}
}

func TestUnregisterPurgesTracking(t *testing.T) {
	d := regDetector()
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x100))
	d.HandleEvent(ev(trace.KindStore, 0x1000, 8))
	d.HandleEvent(ev(trace.KindStore, 0x1040, 8))
	// Unregister half; its pending record must not surface at End.
	d.HandleEvent(ev(trace.KindUnregister, 0x1000, 0x40))
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Fatalf("durability bugs = %d, want 1\n%s", got, rep.Summary())
	}
	if rep.Bugs[0].Addr != 0x1040 {
		t.Fatalf("surviving bug at %#x, want 0x1040", rep.Bugs[0].Addr)
	}
}

func TestUnregisterPurgesTreeResidents(t *testing.T) {
	d := regDetector()
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x100))
	d.HandleEvent(ev(trace.KindStore, 0x1000, 16))
	d.HandleEvent(ev(trace.KindFence, 0, 0)) // migrates to the tree
	// Unregister the middle: the two remainders stay tracked.
	d.HandleEvent(ev(trace.KindUnregister, 0x1004, 8))
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 2 {
		t.Fatalf("durability bugs = %d, want 2 (split remainders)\n%s", got, rep.Summary())
	}
}

func TestReRegisterResumesTracking(t *testing.T) {
	d := regDetector()
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x40))
	d.HandleEvent(ev(trace.KindUnregister, 0x1000, 0x40))
	d.HandleEvent(ev(trace.KindStore, 0x1000, 8)) // ignored: unregistered
	d.HandleEvent(ev(trace.KindRegister, 0x1000, 0x40))
	d.HandleEvent(ev(trace.KindStore, 0x1010, 8)) // tracked again
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Fatalf("durability bugs = %d, want 1\n%s", got, rep.Summary())
	}
	if rep.Bugs[0].Addr != 0x1010 {
		t.Fatalf("wrong bug addr %#x", rep.Bugs[0].Addr)
	}
}

func TestRegistrationOffByDefault(t *testing.T) {
	// Without RequireRegistration every store is tracked even with no
	// Register events at all.
	d := New(Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	d.HandleEvent(ev(trace.KindStore, 0x9000, 8))
	d.HandleEvent(ev(trace.KindEnd, 0, 0))
	if d.Report().Len() != 1 {
		t.Fatalf("default tracking changed:\n%s", d.Report().Summary())
	}
}
