package core

import (
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// HandleBatch implements trace.BatchHandler: it consumes a contiguous slice
// of events with the per-event dispatch overhead hoisted out of the inner
// loop. Stores dominate every trace the paper characterizes (§3), so the
// fast path specializes runs of consecutive stores: for a run on one strand
// the registration filter, the per-kind counter update, the space lookup and
// the epoch query are all loop-invariant and execute once per run instead of
// once per store. All other kinds, and every event when user rules or
// selective registration are active, take the exact HandleEvent path.
func (d *Detector) HandleBatch(evs []trace.Event) {
	if len(d.userRules) > 0 || d.cfg.RequireRegistration {
		// User rules observe every event and the registration filter is
		// per-address: nothing is loop-invariant, so keep the general path.
		for i := range evs {
			d.HandleEvent(evs[i])
		}
		return
	}
	// Outside the strand model every strand folds into space 0, so a store
	// run may span strand ids.
	foldStrands := d.cfg.Model != rules.Strand
	var stores uint64
	for i := 0; i < len(evs); {
		ev := evs[i]
		if ev.Kind != trace.KindStore {
			d.HandleEvent(ev)
			i++
			continue
		}
		s := d.spaceFor(ev.Strand)
		epoch := d.currentEpoch()
		j := i
		for j < len(evs) && evs[j].Kind == trace.KindStore &&
			(foldStrands || evs[j].Strand == ev.Strand) {
			s.store(evs[j], epoch)
			j++
		}
		stores += uint64(j - i)
		i = j
	}
	d.rep.Counters.Stores += stores
}

var _ trace.BatchHandler = (*Detector)(nil)
