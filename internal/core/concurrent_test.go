package core

import (
	"sync"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/rules"
)

// TestConcurrentStrandsFromGoroutines drives strand sections from parallel
// goroutines — the paper's strand sections "can happen in parallel" (§5.1)
// — and requires a clean report plus intact detector state. The pool
// serializes event delivery, so the detector itself needs no locking; this
// test guards that contract.
func TestConcurrentStrandsFromGoroutines(t *testing.T) {
	pm := pmem.New(1 << 22)
	det := New(Config{Model: rules.Strand})
	pm.Attach(det)

	const workers = 8
	const opsPerWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := pm.ThreadCtx(int32(w))
			region := pm.Alloc(opsPerWorker * 64)
			for i := 0; i < opsPerWorker; i++ {
				s := c.StrandBegin()
				addr := region + uint64(i)*64
				s.Store64(addr, uint64(i))
				s.Flush(addr, 8)
				s.Fence()
				s.StrandEnd()
			}
		}(w)
	}
	wg.Wait()
	pm.End()

	rep := det.Report()
	if rep.Len() != 0 {
		t.Fatalf("concurrent strands flagged:\n%s", rep.Summary())
	}
	if rep.Counters.Stores != workers*opsPerWorker {
		t.Fatalf("stores = %d", rep.Counters.Stores)
	}
	// All strand spaces were empty at StrandEnd and must have been retired.
	if n := len(det.spaces); n != 1 {
		t.Fatalf("%d spaces retained; want only space 0", n)
	}
}

// TestConcurrentMixedThreadsStrictModel drives a strict-model detector from
// concurrent threads with disjoint working sets.
func TestConcurrentMixedThreadsStrictModel(t *testing.T) {
	pm := pmem.New(1 << 22)
	det := New(Config{Model: rules.Strict})
	pm.Attach(det)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := pm.ThreadCtx(int32(w))
			region := pm.Alloc(64 * 128)
			for i := 0; i < 128; i++ {
				addr := region + uint64(i)*64
				c.Store64(addr, uint64(w))
				c.Persist(addr, 8)
			}
		}(w)
	}
	wg.Wait()
	pm.End()
	if rep := det.Report(); rep.Len() != 0 {
		t.Fatalf("concurrent strict workload flagged:\n%s", rep.Summary())
	}
}
