package core

// This file implements the per-space cache-line index and the MRU interval
// probe that together make the detector's per-event hot loop O(lines
// touched) instead of O(CLF intervals per fence interval).
//
// The paper's hybrid bookkeeping (§4) already makes the common store /
// CLF / fence path cheap in *data-structure* terms, but the reference scans
// — every CLF interval per writeback, every entry of every overlapping
// interval per overlap query — still pay per-event work proportional to the
// whole fence interval. Fig. 2a shows the actual access pattern: most
// stores are persisted at a CLF distance of one or two intervals, so the
// records an event needs are almost always (a) in the most recent CLF
// intervals, or (b) findable from the 64-byte cache line the event touches.
//
// Two layers exploit that:
//
//  1. MRU interval probe: each space folds the address ranges of every CLF
//     interval *older than the previous one* into a single summary range
//     (oldBounds). An event whose range does not overlap that summary
//     provably cannot concern any old interval — intervals stop growing the
//     moment they stop being current — so it is handled by scanning just
//     the current and previous intervals.
//  2. Cache-line index: a map from line id (addr>>6) to the ascending list
//     of memory-location-array entries whose ranges touch that line,
//     maintained incrementally on store and reset in O(live lines) at the
//     fence. Events that miss the MRU probe resolve their candidate
//     entries — and, through entryIv, the candidate CLF intervals — from
//     the lines they touch.
//
// The index is a conservative superset: entries are indexed under the lines
// of their range *at store time*, and later operations (flush splits,
// purges) only ever shrink an entry's range within that original span, so a
// record can never overlap a query without sharing an indexed line with it.
// Every consult therefore re-checks the scan path's exact predicates
// (interval prefilter gate, per-entry overlap), which keeps the indexed
// path behaviorally identical to the Config.DisableIndex scan fallback —
// property- and fuzz-tested in index_test.go / fuzz_test.go.

import (
	"sort"

	"pmdebugger/internal/intervals"
)

// lineShift converts an address to its cache-line id
// (log2 of intervals.CacheLineSize).
const lineShift = 6

// maxIdleLines bounds how many distinct line slots the index keeps cached
// across fences: reset truncates each live list in place so its capacity is
// reused, but a long run touching ever-new lines would otherwise grow the
// map without bound, so past this many slots reset reallocates it.
const maxIdleLines = 1 << 16

// lineIndex maps cache-line ids to the array entries touching them.
type lineIndex struct {
	lists map[uint64][]int32
	live  []uint64 // line ids with candidates this fence interval
}

func newLineIndex() *lineIndex {
	return &lineIndex{lists: make(map[uint64][]int32, 64)}
}

// lineSpan returns the inclusive cache-line id range covered by r. A
// zero-size range maps to the single line containing its address: empty
// ranges still participate in overlap checks when strictly inside another
// range (see intervals.Range.Overlaps), so their line must stay indexed.
func lineSpan(r intervals.Range) (first, last uint64) {
	first = r.Addr >> lineShift
	last = first
	if r.Size > 0 {
		last = (r.End() - 1) >> lineShift
	}
	return first, last
}

// add indexes array entry id under every line touched by r.
func (x *lineIndex) add(id int32, r intervals.Range) {
	first, last := lineSpan(r)
	for ln := first; ; ln++ {
		lst := x.lists[ln]
		if len(lst) == 0 {
			x.live = append(x.live, ln)
		}
		x.lists[ln] = append(lst, id)
		if ln == last {
			break
		}
	}
}

// reset clears the index in O(live-lines): only the lines touched since the
// last fence are visited, and their slots keep their capacity for reuse.
func (x *lineIndex) reset() {
	if len(x.lists) > maxIdleLines {
		x.lists = make(map[uint64][]int32, 64)
	} else {
		for _, ln := range x.live {
			x.lists[ln] = x.lists[ln][:0]
		}
	}
	x.live = x.live[:0]
}

// mruOnly reports whether r provably cannot touch any CLF interval older
// than the previous one. oldBounds is a superset of every old interval's
// collective range (ranges only shrink after an interval stops being
// current), so missing it means the full interval scan would skip every old
// interval anyway.
func (s *space) mruOnly(r intervals.Range) bool {
	return !r.Overlaps(s.oldBounds)
}

// mruFirst returns the meta index of the first MRU interval: the previous
// CLF interval when one exists, else the current one.
func (s *space) mruFirst() int {
	if n := len(s.meta); n >= 2 {
		return n - 2
	}
	return 0
}

// foldOldBounds ages the interval that is about to stop being the previous
// one into the oldBounds summary. Called right before a new CLF interval is
// appended.
func (s *space) foldOldBounds() {
	if s.idx == nil {
		return
	}
	if n := len(s.meta); n >= 2 {
		s.oldBounds = s.oldBounds.Union(s.meta[n-2].rng())
	}
}

// candidates gathers the distinct array-entry ids whose indexed lines
// intersect r, in ascending order. The result aliases s.candScratch and is
// valid until the next call.
func (s *space) candidates(r intervals.Range) []int32 {
	out := s.candScratch[:0]
	first, last := lineSpan(r)
	for ln := first; ; ln++ {
		if lst := s.idx.lists[ln]; len(lst) > 0 {
			s.d.rep.Counters.IndexLineHits++
			out = append(out, lst...)
		} else {
			s.d.rep.Counters.IndexLineMisses++
		}
		if ln == last {
			break
		}
	}
	sortInt32(out)
	out = dedupInt32(out)
	s.candScratch = out
	return out
}

// forEachCandidateInterval groups ascending candidate ids by their owning
// CLF interval and invokes fn once per interval in meta order. Interval ids
// are non-decreasing in entry id because entries append to the current
// interval only.
func (s *space) forEachCandidateInterval(cands []int32, fn func(iv int32, ids []int32)) {
	for g := 0; g < len(cands); {
		iv := s.entryIv[cands[g]]
		h := g + 1
		for h < len(cands) && s.entryIv[cands[h]] == iv {
			h++
		}
		fn(iv, cands[g:h])
		g = h
	}
}

// resetIndex clears all index state for the next fence interval.
func (s *space) resetIndex() {
	if s.idx == nil {
		return
	}
	s.idx.reset()
	s.entryIv = s.entryIv[:0]
	s.oldBounds = intervals.Range{}
}

func sortInt32(a []int32) {
	if len(a) <= 16 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func dedupInt32(a []int32) []int32 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
