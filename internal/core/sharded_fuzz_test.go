package core

import (
	"testing"

	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// FuzzShardedVsInline fuzzes the tentpole equivalence of online sharded
// detection: arbitrary multi-strand schedules of stores, flushes, fences,
// strand sections, region registrations and joins must produce
// byte-identical reports from (a) one sequential engine, (b) a
// ShardedDetector routed inline, and (c) the same detector driven through a
// trace.ShardedPipeline's per-shard consumer goroutines. The fuzzer's job
// is to find a fence placement or cross-strand interleaving where the
// partitioned delivery diverges from the sequential one.
func FuzzShardedVsInline(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 2, 3, 2, 0, 2, 4, 2, 6, 0})
	f.Add([]byte{3, 0, 0, 0, 7, 0, 2, 0, 4, 0, 3, 1, 0, 1, 4, 1})
	f.Add([]byte{5, 3, 0, 5, 1, 5, 2, 5, 0, 9, 6, 9, 2, 9, 0, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x1000_0000
		var evs []trace.Event
		seq := uint64(0)
		emit := func(kind trace.Kind, strand int32, addr, size uint64) {
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: kind, Strand: strand, Addr: addr, Size: size})
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			strand := int32(arg % 5) // 5 strands onto 3 shards: shards share strands
			switch op % 8 {
			case 0: // store
				emit(trace.KindStore, strand, base+arg*8, arg%24+1)
			case 1: // line flush
				emit(trace.KindFlush, strand, (base+arg*8)&^63, 64)
			case 2: // fence
				emit(trace.KindFence, strand, 0, 0)
			case 3: // strand section begin
				emit(trace.KindStrandBegin, strand, 0, 0)
			case 4: // strand section end
				emit(trace.KindStrandEnd, strand, 0, 0)
			case 5: // register a region (broadcast to every shard)
				emit(trace.KindRegister, 0, base+arg*64, arg%256+64)
			case 6: // join (dropped, inert without order specs)
				emit(trace.KindJoinStrand, strand, 0, 0)
			case 7: // store crossing cache lines
				emit(trace.KindStore, strand, base+arg*8, 64+arg%64)
			}
		}
		emit(trace.KindEnd, 0, 0, 0)

		cfg := Config{
			Model: rules.Strand,
			// Exercise spill and merge machinery under fuzzing too.
			ArrayCapacity:  8,
			MergeThreshold: 4,
		}
		want := sequentialReport(evs, cfg).Summary()

		inline := NewSharded(cfg, 3)
		for _, ev := range evs {
			inline.HandleEvent(ev)
		}
		if got := inline.Report().Summary(); got != want {
			t.Fatalf("inline-routed sharded report differs\n--- sequential ---\n%s\n--- sharded ---\n%s",
				want, got)
		}

		live := NewSharded(cfg, 3)
		sp := trace.NewShardedPipeline(live, live.ShardHandlers(), trace.PipelineOptions{Depth: 2})
		sp.HandleBatch(evs)
		sp.Close()
		if err := sp.Err(); err != nil {
			t.Fatalf("pipeline error: %v", err)
		}
		if got := live.Report().Summary(); got != want {
			t.Fatalf("pipeline-delivered sharded report differs\n--- sequential ---\n%s\n--- sharded ---\n%s",
				want, got)
		}
	})
}
