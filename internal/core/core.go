// Package core implements PMDebugger, the paper's primary contribution: a
// fast, flexible and comprehensive crash-consistency bug detector for
// persistent memory programs.
//
// The detector consumes the instrumented instruction stream (trace.Events)
// and maintains a hybrid bookkeeping space per strand: a fixed-capacity
// memory location array absorbing the short-lived records that Pattern 1
// predicts (§3), CLF-interval metadata enabling the collective status
// updates Pattern 2 justifies, and an AVL tree for the minority of records
// that survive fences. Nine generalized rules (plus a cross-failure hook and
// arbitrary user rules) run on top of the bookkeeping operations.
package core

import (
	"fmt"
	"sort"

	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// Defaults for Config fields left zero.
const (
	// DefaultArrayCapacity bounds the memory location array; the paper
	// observes fence intervals typically hold fewer than 100,000 stores
	// (§4.1).
	DefaultArrayCapacity = 100_000
	// DefaultMergeThreshold is the tree size past which fence processing
	// performs a merge reorganization (§4.4).
	DefaultMergeThreshold = 500
)

// Config parameterizes a Detector.
type Config struct {
	// Model is the persistency model of the program under test.
	Model rules.Model
	// Rules selects the active detection rules; zero means
	// rules.Default(Model).
	Rules rules.Set
	// ArrayCapacity bounds the memory location array (0 = default).
	ArrayCapacity int
	// MergeThreshold is the tree-size threshold for merge reorganization
	// (0 = default; negative = never merge, used by ablation benches).
	MergeThreshold int
	// Orders are the programmer-supplied persist-order requirements from
	// the debugger configuration file (§4.5).
	Orders []rules.OrderSpec
	// CrossFailureCheck, when set and RuleCrossFailure is enabled, is the
	// manually invoked recovery program of §7.3: it runs at program end and
	// returns an error when post-failure execution would read semantically
	// inconsistent data.
	CrossFailureCheck func() error
	// ArrayFirstFence reverses the fence processing order of §4.4 (tree
	// first, then array) for the A3 ablation benchmark: processing the
	// array first inserts into a larger tree.
	ArrayFirstFence bool
	// DisableIndex turns off the per-space cache-line index and MRU
	// interval probe (index.go) and falls back to the reference
	// interval-scan hot path. The two paths are behaviorally identical —
	// differential-tested in index_test.go and fuzz_test.go — so this
	// exists for that comparison and for the hotpath benchmarks.
	DisableIndex bool
	// RequireRegistration restricts tracking to regions registered with
	// Register_pmem (§6): stores and writebacks outside every registered
	// region are ignored. The pmem substrate auto-registers the whole pool
	// on Attach, so this only changes behavior for detectors fed selective
	// Register events (the artifact's address_specific function tests).
	RequireRegistration bool
}

func (c *Config) fill() {
	if c.Rules == 0 {
		c.Rules = rules.Default(c.Model)
	}
	if c.ArrayCapacity == 0 {
		c.ArrayCapacity = DefaultArrayCapacity
	}
	if c.MergeThreshold == 0 {
		c.MergeThreshold = DefaultMergeThreshold
	}
	if c.CrossFailureCheck != nil {
		c.Rules |= rules.RuleCrossFailure
	}
}

// Detector is the PMDebugger engine. It implements trace.Handler; feed it
// the instruction stream and call Report (or send a KindEnd event) for the
// final bug summary.
type Detector struct {
	cfg    Config
	rep    *report.Report
	spaces map[int32]*space
	space0 *space
	order  *orderTracker

	// epoch rule state (§5)
	epochID     int32
	epochActive bool
	epochFences int
	epochBegan  uint64 // seq of the active epoch's begin event

	// redundant-logging shadow (§5.2): object ranges logged in the current
	// epoch section.
	logged []avl.Item

	userRules []UserRule
	ended     bool

	// regions are the registered PM regions when RequireRegistration is
	// set, kept merged and address-ordered.
	regions []intervals.Range

	// spareSpaces recycles bookkeeping spaces of retired strand sections:
	// strand-heavy programs open sections at operation rate, and
	// re-allocating the array and tree each time would dominate.
	spareSpaces []*space
}

// New returns a PMDebugger detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.fill()
	d := &Detector{
		cfg:     cfg,
		rep:     report.New("pmdebugger"),
		spaces:  map[int32]*space{},
		epochID: -1,
	}
	d.space0 = newSpace(d, 0)
	d.spaces[0] = d.space0
	if len(cfg.Orders) > 0 {
		d.order = newOrderTracker(d, cfg.Orders)
	}
	return d
}

// Config returns the detector's effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// Name returns "pmdebugger".
func (d *Detector) Name() string { return "pmdebugger" }

// spaceFor returns the bookkeeping space for an event's strand. Only the
// strand model keeps separate spaces (§5.1); other models fold everything
// into space 0.
func (d *Detector) spaceFor(strand int32) *space {
	if d.cfg.Model != rules.Strand || strand == 0 {
		return d.space0
	}
	s, ok := d.spaces[strand]
	if !ok {
		if n := len(d.spareSpaces); n > 0 {
			s = d.spareSpaces[n-1]
			d.spareSpaces = d.spareSpaces[:n-1]
			s.strand = strand
			s.arr = s.arr[:0]
			s.meta = s.meta[:0]
			s.meta = append(s.meta, clfMeta{minAddr: ^uint64(0)})
			// A retired space is empty, and every index mutation accompanies
			// an array append, so its index is already clear — reset anyway
			// so a recycled space never inherits stale line lists.
			s.resetIndex()
		} else {
			s = newSpace(d, strand)
		}
		d.spaces[strand] = s
	}
	return s
}

// lookupSpace is the read-only counterpart of spaceFor: it applies the same
// model fold (every non-strand model bookkeeps in space 0 regardless of the
// event's strand id) without materializing a space that does not exist yet.
// All bookkeeping queries go through it so user rules observe exactly the
// space an event was bookkept in.
func (d *Detector) lookupSpace(strand int32) (*space, bool) {
	if d.cfg.Model != rules.Strand || strand == 0 {
		return d.space0, true
	}
	s, ok := d.spaces[strand]
	return s, ok
}

// currentEpoch returns the id of the active epoch section, or -1.
func (d *Detector) currentEpoch() int32 {
	if d.epochActive {
		return d.epochID
	}
	return -1
}

// HandleEvent consumes one instrumented instruction.
func (d *Detector) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		d.rep.Counters.Stores++
		if !d.inRegisteredRegion(ev.Addr, ev.Size) {
			break
		}
		d.spaceFor(ev.Strand).store(ev, d.currentEpoch())

	case trace.KindFlush:
		d.rep.Counters.Flushes++
		if !d.inRegisteredRegion(ev.Addr, ev.Size) {
			break
		}
		anyNew, anyOld := d.spaceFor(ev.Strand).flush(ev)
		if d.order != nil {
			d.order.noteFlush(ev)
		}
		if !anyNew && anyOld && d.cfg.Rules.Has(rules.RuleRedundantFlush) {
			d.rep.Add(report.Bug{
				Type: report.RedundantFlush,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
				Site: ev.Site, Strand: ev.Strand,
				Message: "writeback persists only data that is already flushed",
			})
		}
		if !anyNew && !anyOld && d.cfg.Rules.Has(rules.RuleFlushNothing) {
			d.rep.Add(report.Bug{
				Type: report.FlushNothing,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
				Site: ev.Site, Strand: ev.Strand,
				Message: "writeback does not persist any prior store",
			})
		}

	case trace.KindFence:
		d.rep.Counters.Fences++
		if d.epochActive {
			d.epochFences++
		}
		d.spaceFor(ev.Strand).fence(ev)

	case trace.KindEpochBegin:
		d.epochActive = true
		d.epochID++
		d.epochFences = 0
		d.epochBegan = ev.Seq
		d.logged = d.logged[:0]

	case trace.KindEpochEnd:
		d.finishEpoch(ev)

	case trace.KindStrandBegin:
		if d.order != nil {
			d.order.strandBegin(ev.Strand)
		}
		// Materialize the strand's bookkeeping space.
		d.spaceFor(ev.Strand)

	case trace.KindStrandEnd:
		if d.order != nil {
			d.order.strandEnd(ev.Strand)
		}
		// Retire the strand's bookkeeping space if it tracks nothing; a
		// non-empty space must survive for the end-of-program rules.
		if s, ok := d.spaces[ev.Strand]; ok && ev.Strand != 0 && s.empty() {
			delete(d.spaces, ev.Strand)
			if len(d.spareSpaces) < 64 {
				d.spareSpaces = append(d.spareSpaces, s)
			}
		}

	case trace.KindJoinStrand:
		if d.order != nil {
			d.order.joinStrand()
		}

	case trace.KindRegister:
		if d.order != nil {
			d.order.noteRegister(ev)
		}
		if d.cfg.RequireRegistration && ev.Size > 0 {
			d.regions = intervals.Merge(append(d.regions, intervals.R(ev.Addr, ev.Size)))
		}

	case trace.KindUnregister:
		if d.cfg.RequireRegistration && ev.Size > 0 {
			d.unregister(intervals.R(ev.Addr, ev.Size))
		}

	case trace.KindTxLogAdd:
		d.txLogAdd(ev)

	case trace.KindEnd:
		d.finish()
	}

	for _, r := range d.userRules {
		r.OnEvent(ev, d)
	}
}

// finishEpoch runs the epoch rules at TX_END (§5.2).
func (d *Detector) finishEpoch(ev trace.Event) {
	if !d.epochActive {
		return
	}
	d.epochActive = false

	if d.epochFences > 1 && d.cfg.Rules.Has(rules.RuleRedundantEpochFence) {
		d.rep.Add(report.Bug{
			Type: report.RedundantEpochFence,
			Seq:  ev.Seq, Strand: ev.Strand,
			Site: trace.RegisterSite(fmt.Sprintf("epoch#%d", d.epochID)),
			Message: fmt.Sprintf("epoch section contains %d fences; one suffices",
				d.epochFences),
		})
	}

	if d.cfg.Rules.Has(rules.RuleLackDurabilityInEpoch) {
		epoch := d.epochID
		var undurable []avl.Item
		for _, s := range d.spaces {
			s.visitRemaining(func(it avl.Item, flushed bool) {
				if it.Epoch && it.Epochs == epoch && !it.Reported {
					undurable = append(undurable, it)
				}
			})
		}
		sortItemsBySeq(undurable)
		for _, it := range undurable {
			d.rep.Add(report.Bug{
				Type: report.LackDurabilityInEpoch,
				Addr: it.Addr, Size: it.Size, Seq: ev.Seq,
				Site: it.Site, Strand: it.Strand,
				Message: "store inside epoch section is not durable at epoch end",
			})
			for _, s := range d.spaces {
				s.markReported(it.Range())
			}
		}
	}
	d.logged = d.logged[:0]
}

// txLogAdd runs the redundant-logging rule (§5.2): log writes are treated
// as stores to the logged object's address, and an "overwrite" — logging a
// range that was already logged in this transaction — is the bug. A log add
// outside any transaction is ignored: the rule is scoped to a single
// transaction, and recording a stray add would pollute the next epoch's
// shadow and misreport its first legitimate log write as redundant.
func (d *Detector) txLogAdd(ev trace.Event) {
	if !d.cfg.Rules.Has(rules.RuleRedundantLogging) || !d.epochActive {
		return
	}
	r := intervals.R(ev.Addr, ev.Size)
	for _, prev := range d.logged {
		if prev.Range().Overlaps(r) {
			d.rep.Add(report.Bug{
				Type: report.RedundantLogging,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
				Site: ev.Site, Strand: ev.Strand,
				Message: "object logged more than once in a single transaction",
			})
			return
		}
	}
	d.logged = append(d.logged, avl.Item{Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site})
}

// finish runs the end-of-program rules (§4.5): remaining records are
// durability bugs — flushed records lack a fence, unflushed records lack a
// CLF — and the cross-failure check is invoked.
func (d *Detector) finish() {
	if d.ended {
		return
	}
	d.ended = true

	if d.cfg.Rules.Has(rules.RuleNoDurability) {
		// Collect, then report in sequence-number order: d.spaces is a map,
		// and a map-ordered sweep would make the report's bug order (and
		// therefore which duplicate wins deduplication) vary run to run under
		// the strand model. Deterministic order is also what lets a
		// partitioned parallel replay merge shard reports back into the exact
		// sequential report.
		type remaining struct {
			it      avl.Item
			flushed bool
		}
		var left []remaining
		for _, s := range d.spaces {
			s.visitRemaining(func(it avl.Item, flushed bool) {
				if !it.Reported {
					left = append(left, remaining{it, flushed})
				}
			})
		}
		sort.Slice(left, func(i, j int) bool {
			if left[i].it.Seq != left[j].it.Seq {
				return left[i].it.Seq < left[j].it.Seq
			}
			return left[i].it.Addr < left[j].it.Addr
		})
		for _, rem := range left {
			it := rem.it
			msg := "location never flushed: missing CLF"
			if rem.flushed {
				msg = "location flushed but not fenced: missing fence"
			}
			d.rep.Add(report.Bug{
				Type: report.NoDurability,
				Addr: it.Addr, Size: it.Size, Seq: it.Seq,
				Site: it.Site, Strand: it.Strand,
				Message: msg,
			})
		}
	}

	if d.cfg.Rules.Has(rules.RuleCrossFailure) && d.cfg.CrossFailureCheck != nil {
		if err := d.cfg.CrossFailureCheck(); err != nil {
			d.rep.Add(report.Bug{
				Type:    report.CrossFailureSemantic,
				Site:    trace.RegisterSite("recovery"),
				Message: err.Error(),
			})
		}
	}
}

// sortItemsBySeq orders bookkeeping records by store sequence number with
// address as the tie-breaker (records sharing a Seq can only come from one
// store split by partial persists).
func sortItemsBySeq(items []avl.Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Seq != items[j].Seq {
			return items[i].Seq < items[j].Seq
		}
		return items[i].Addr < items[j].Addr
	})
}

// Report finalizes (if no KindEnd event arrived) and returns the bug report.
func (d *Detector) Report() *report.Report {
	d.finish()
	return d.rep
}

// Counters returns the current bookkeeping counters without finalizing the
// report.
func (d *Detector) Counters() report.Counters { return d.rep.Counters }

// inRegisteredRegion reports whether [addr, addr+size) should be tracked.
func (d *Detector) inRegisteredRegion(addr, size uint64) bool {
	if !d.cfg.RequireRegistration {
		return true
	}
	r := intervals.R(addr, size)
	for _, reg := range d.regions {
		if reg.Overlaps(r) {
			return true
		}
	}
	return false
}

// unregister removes a region and purges its bookkeeping: an unregistered
// location is no longer a debugging target, so pending records for it must
// not surface as end-of-program bugs.
func (d *Detector) unregister(r intervals.Range) {
	var kept []intervals.Range
	for _, reg := range d.regions {
		kept = append(kept, reg.Subtract(r)...)
	}
	d.regions = intervals.Merge(kept)
	for _, s := range d.spaces {
		s.purge(r)
	}
}

// TreeLen returns the current AVL tree size of the given strand's space
// (strand 0 outside the strand model). Exposed for the Fig. 11 analysis and
// for user rules.
func (d *Detector) TreeLen(strand int32) int {
	if s, ok := d.lookupSpace(strand); ok {
		return s.tree.Len()
	}
	return 0
}

// ArrayLen returns the current memory-location-array length of the given
// strand's space.
func (d *Detector) ArrayLen(strand int32) int {
	if s, ok := d.lookupSpace(strand); ok {
		return len(s.arr)
	}
	return 0
}

// TreeStats returns the AVL maintenance counters of the given strand's
// space.
func (d *Detector) TreeStats(strand int32) avl.Stats {
	if s, ok := d.lookupSpace(strand); ok {
		return s.tree.Stats()
	}
	return avl.Stats{}
}

// TrackStatus describes a tracked location returned by Tracked.
type TrackStatus struct {
	Addr    uint64
	Size    uint64
	Seq     uint64
	Site    trace.SiteID
	Flushed bool
	InArray bool // true if held in the memory location array, false if in the tree
}

// Tracked reports whether addr is currently tracked in strand's bookkeeping
// space and, if so, its status. Part of the flexibility API for user rules.
func (d *Detector) Tracked(strand int32, addr uint64) (TrackStatus, bool) {
	s, ok := d.lookupSpace(strand)
	if !ok {
		return TrackStatus{}, false
	}
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() || !m.rng().ContainsAddr(addr) {
			continue
		}
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Range().ContainsAddr(addr) {
				it := s.arr[i]
				return TrackStatus{
					Addr: it.Addr, Size: it.Size, Seq: it.Seq, Site: it.Site,
					Flushed: it.Flushed || m.state == allFlushed,
					InArray: true,
				}, true
			}
		}
	}
	if it, ok := s.tree.Lookup(addr); ok {
		return TrackStatus{
			Addr: it.Addr, Size: it.Size, Seq: it.Seq, Site: it.Site,
			Flushed: it.Flushed,
		}, true
	}
	return TrackStatus{}, false
}

// ReportBug lets a user rule add a bug to the report.
func (d *Detector) ReportBug(b report.Bug) { d.rep.Add(b) }

// Query is the bookkeeping-inspection interface available to user rules:
// the hierarchical design's middle layer (data-structure operations) exposed
// so arbitrary new rules can be written without modifying the engine.
type Query interface {
	Tracked(strand int32, addr uint64) (TrackStatus, bool)
	TreeLen(strand int32) int
	ArrayLen(strand int32) int
	ReportBug(b report.Bug)
}

var _ Query = (*Detector)(nil)

// UserRule is a user-defined detection rule invoked after the engine's
// built-in processing of every event.
type UserRule interface {
	Name() string
	OnEvent(ev trace.Event, q Query)
}

// AddRule registers a user rule.
func (d *Detector) AddRule(r UserRule) { d.userRules = append(d.userRules, r) }
