package core

import (
	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// flushState is the collective cache-flushing state of a CLF interval
// (§4.1): all flushed, partially flushed, or not flushed.
type flushState uint8

const (
	notFlushed flushState = iota
	partiallyFlushed
	allFlushed
)

// clfMeta is the metadata node for one CLF interval (Fig. 5): the array
// index range of its stores, the address range they cover, and the
// collective flushing state. The paper keeps these nodes in a linked list;
// an appended slice is the idiomatic Go equivalent with identical
// per-interval semantics (nodes are only ever appended and then dropped
// wholesale at the fence).
type clfMeta struct {
	start, end int // [start, end) indexes into the memory location array
	minAddr    uint64
	maxAddr    uint64 // exclusive
	state      flushState
	flushed    int // entries individually marked flushed (partial tracking)
}

func (m *clfMeta) empty() bool { return m.start == m.end }

func (m *clfMeta) count() int { return m.end - m.start }

func (m *clfMeta) rng() intervals.Range {
	if m.empty() || m.maxAddr <= m.minAddr {
		return intervals.Range{}
	}
	return intervals.R(m.minAddr, m.maxAddr-m.minAddr)
}

// space is one bookkeeping space (§4.1): the memory location array, the CLF
// interval metadata, and the AVL tree for long-lived records. The strict and
// epoch models use a single space; the strand model allocates one per strand
// section (§5.1).
type space struct {
	d      *Detector
	strand int32
	arr    []avl.Item
	meta   []clfMeta
	tree   *avl.Tree

	// Cache-line index state (see index.go). idx is nil when
	// Config.DisableIndex selects the reference scan path. entryIv maps each
	// array entry to the CLF interval that owns it; oldBounds summarizes the
	// address ranges of every interval older than the previous one (the MRU
	// probe's negative filter). candScratch and redist are reusable scratch
	// buffers for candidate gathering and fence-time redistribution.
	idx         *lineIndex
	entryIv     []int32
	oldBounds   intervals.Range
	candScratch []int32
	redist      []avl.Item
}

func newSpace(d *Detector, strand int32) *space {
	// The array is logically fixed-size (capacity d.cfg.ArrayCapacity) but
	// its backing storage grows on demand so per-strand spaces stay cheap.
	s := &space{
		d:      d,
		strand: strand,
		arr:    make([]avl.Item, 0, 256),
		tree:   avl.New(),
	}
	if !d.cfg.DisableIndex {
		s.idx = newLineIndex()
	}
	s.meta = append(s.meta, clfMeta{minAddr: ^uint64(0)})
	return s
}

// empty reports whether the space tracks nothing.
func (s *space) empty() bool { return len(s.arr) == 0 && s.tree.Len() == 0 }

func (s *space) cur() *clfMeta { return &s.meta[len(s.meta)-1] }

// trackedOverlap reports whether any record in the bookkeeping space
// overlaps r. The array is consulted first — via the MRU probe or the
// cache-line index when enabled, or the reference interval scan — then the
// AVL tree.
func (s *space) trackedOverlap(r intervals.Range) (avl.Item, bool) {
	var hit avl.Item
	var found bool
	switch {
	case s.idx == nil:
		hit, found = s.overlapScanFrom(r, 0)
	case s.mruOnly(r):
		s.d.rep.Counters.MRUProbeHits++
		hit, found = s.overlapScanFrom(r, s.mruFirst())
	default:
		hit, found = s.overlapIndexed(r)
	}
	if found {
		return hit, true
	}
	s.tree.VisitOverlapping(r, func(it avl.Item) {
		if !found {
			hit, found = it, true
		}
	})
	return hit, found
}

// overlapScanFrom is the reference array lookup: scan CLF intervals starting
// at meta index from, prefiltering each by its collective address range so
// most intervals are skipped without touching entries (Pattern 2), and
// return the first overlapping entry in array order.
func (s *space) overlapScanFrom(r intervals.Range, from int) (avl.Item, bool) {
	for mi := from; mi < len(s.meta); mi++ {
		m := &s.meta[mi]
		if m.empty() || !r.Overlaps(m.rng()) {
			continue
		}
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Range().Overlaps(r) {
				return s.arr[i], true
			}
		}
	}
	return avl.Item{}, false
}

// overlapIndexed resolves the lookup through the cache-line index. The
// candidates are ascending and a superset of every overlapping entry, and
// each is re-checked against the scan path's interval prefilter, so the
// first candidate that passes is exactly the entry the scan returns.
func (s *space) overlapIndexed(r intervals.Range) (avl.Item, bool) {
	for _, id := range s.candidates(r) {
		m := &s.meta[s.entryIv[id]]
		if !r.Overlaps(m.rng()) {
			continue
		}
		if s.arr[id].Range().Overlaps(r) {
			return s.arr[id], true
		}
	}
	return avl.Item{}, false
}

// store processes a memory store instruction (§4.2): append to the array
// (or spill to the tree when the array is full) and update the current CLF
// interval metadata. The multiple-overwrites rule runs first so it sees the
// pre-store bookkeeping state.
func (s *space) store(ev trace.Event, epochID int32) {
	r := intervals.R(ev.Addr, ev.Size)
	if s.d.cfg.Rules.Has(rules.RuleMultipleOverwrites) {
		if prev, ok := s.trackedOverlap(r); ok {
			prevSeq := prev.Seq
			s.d.rep.AddLazy(report.Bug{
				Type: report.MultipleOverwrites,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
				Site: ev.Site, Strand: ev.Strand,
			}, func() string {
				return "location written again before its durability is guaranteed (previous store at seq " +
					usay(prevSeq) + ")"
			})
		}
	}

	it := avl.Item{
		Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
		Site: ev.Site, Strand: ev.Strand,
		Epoch: epochID >= 0, Epochs: epochID,
	}
	if len(s.arr) < s.d.cfg.ArrayCapacity {
		s.arr = append(s.arr, it)
		m := s.cur()
		m.end = len(s.arr)
		if ev.Addr < m.minAddr {
			m.minAddr = ev.Addr
		}
		if ev.End() > m.maxAddr {
			m.maxAddr = ev.End()
		}
		s.d.rep.Counters.ArrayAppends++
		if s.idx != nil {
			s.idx.add(int32(len(s.arr)-1), r)
			s.entryIv = append(s.entryIv, int32(len(s.meta)-1))
		}
	} else {
		// Rare overflow (§4.1): new locations go straight to the AVL tree.
		s.tree.Insert(it)
		s.d.rep.Counters.ArraySpills++
	}
	if s.d.order != nil {
		s.d.order.noteStore(ev)
	}
}

// flush processes a CLF instruction (§4.3). The array is traversed at CLF
// interval granularity: a flush covering an interval's whole address range
// updates only the collective state; partial overlaps examine entries
// individually, splitting entries whose range is only partially persisted
// (the covered part stays in the array, the remainder moves to the tree).
// Afterwards the tree is updated and a fresh CLF interval is opened.
//
// With the index enabled, the traversal visits only the MRU intervals (when
// the probe proves older ones unreachable) or the intervals owning the
// flush's cache-line candidates; both restrictions visit every interval the
// reference scan would touch.
//
// It returns whether the flush hit any not-yet-flushed record and whether it
// hit any already-flushed record, which drive the redundant-flush and
// flush-nothing rules.
func (s *space) flush(ev trace.Event) (anyNew, anyOld bool) {
	fr := intervals.R(ev.Addr, ev.Size)
	switch {
	case s.idx == nil:
		for mi := range s.meta {
			n, o := s.flushOne(&s.meta[mi], fr, nil)
			anyNew = anyNew || n
			anyOld = anyOld || o
		}
	case s.mruOnly(fr):
		s.d.rep.Counters.MRUProbeHits++
		for mi := s.mruFirst(); mi < len(s.meta); mi++ {
			n, o := s.flushOne(&s.meta[mi], fr, nil)
			anyNew = anyNew || n
			anyOld = anyOld || o
		}
	default:
		s.forEachCandidateInterval(s.candidates(fr), func(iv int32, ids []int32) {
			n, o := s.flushOne(&s.meta[iv], fr, ids)
			anyNew = anyNew || n
			anyOld = anyOld || o
		})
	}

	// Then the AVL tree (§4.3): the array absorbs most updates, so this
	// traversal is usually a cheap no-op.
	newly, already := s.tree.MarkFlushed(fr)
	anyNew = anyNew || newly > 0
	anyOld = anyOld || already > 0

	// Start a new CLF interval. The interval that stops being the previous
	// one can no longer grow, so its range is folded into the MRU probe's
	// old-interval summary first.
	if !s.cur().empty() {
		s.foldOldBounds()
		s.meta = append(s.meta, clfMeta{start: len(s.arr), end: len(s.arr), minAddr: ^uint64(0)})
	}
	return anyNew, anyOld
}

// flushOne applies a CLF to one CLF interval. ids, when non-nil, restricts
// the per-entry passes to those array entries (ascending); the restriction
// is exact because every entry overlapping fr is among its cache-line
// candidates. The collective branches never iterate per candidate: a whole
// interval covered by fr transitions by metadata update alone (Pattern 2).
func (s *space) flushOne(m *clfMeta, fr intervals.Range, ids []int32) (anyNew, anyOld bool) {
	if m.empty() {
		return false, false
	}
	ir := m.rng()
	if !fr.Overlaps(ir) {
		return false, false
	}
	if fr.Contains(ir) {
		// Collective update: the whole interval is covered (Pattern 2).
		switch m.state {
		case allFlushed:
			anyOld = true
		case notFlushed:
			m.state = allFlushed
			m.flushed = m.count()
			anyNew = true
		case partiallyFlushed:
			if m.flushed > 0 {
				anyOld = true
			}
			if m.flushed < m.count() {
				anyNew = true
			}
			for i := m.start; i < m.end; i++ {
				s.arr[i].Flushed = true
			}
			m.state = allFlushed
			m.flushed = m.count()
		}
		return anyNew, anyOld
	}
	// Partial overlap: examine entries individually.
	if m.state == allFlushed {
		// Every entry is already flushed; this is a re-flush only if the
		// range hits an actual entry rather than a gap between the
		// interval's min and max addresses.
		if ids != nil {
			for _, id := range ids {
				if fr.Overlaps(s.arr[id].Range()) {
					anyOld = true
					break
				}
			}
		} else {
			for i := m.start; i < m.end; i++ {
				if fr.Overlaps(s.arr[i].Range()) {
					anyOld = true
					break
				}
			}
		}
		return anyNew, anyOld
	}
	if ids != nil {
		for _, id := range ids {
			n, o := s.flushEntry(m, fr, int(id))
			anyNew = anyNew || n
			anyOld = anyOld || o
		}
	} else {
		for i := m.start; i < m.end; i++ {
			n, o := s.flushEntry(m, fr, i)
			anyNew = anyNew || n
			anyOld = anyOld || o
		}
	}
	if m.flushed == m.count() {
		m.state = allFlushed
	} else if m.flushed > 0 {
		m.state = partiallyFlushed
	}
	return anyNew, anyOld
}

// flushEntry applies a partial-interval CLF to one array entry.
func (s *space) flushEntry(m *clfMeta, fr intervals.Range, i int) (anyNew, anyOld bool) {
	e := &s.arr[i]
	er := e.Range()
	if !fr.Overlaps(er) {
		return false, false
	}
	if e.Flushed {
		return false, true
	}
	if fr.Contains(er) {
		e.Flushed = true
		m.flushed++
		return true, false
	}
	// Split: covered sub-range stays (flushed); remainders move to the
	// tree, still unflushed (§4.3).
	covered := er.Intersect(fr)
	for _, rem := range er.Subtract(covered) {
		keep := *e
		keep.Addr, keep.Size = rem.Addr, rem.Size
		s.tree.Insert(keep)
	}
	e.Addr, e.Size = covered.Addr, covered.Size
	e.Flushed = true
	m.flushed++
	return true, false
}

// fence processes a fence instruction (§4.4): records whose durability the
// fence guarantees are removed — tree first, then the array via its interval
// metadata — remaining unflushed array entries are re-distributed to the
// tree, the tree is merged past the threshold, and the array is reset for
// the next fence interval by invalidating the metadata.
func (s *space) fence(ev trace.Event) {
	ot := s.d.order

	// 0. Sample the tree size as seen during the closing fence interval
	// (the Fig. 11 metric): the hybrid design's win is how little of the
	// interval's state ever reaches the tree.
	s.d.rep.Counters.TreeNodeSamples += uint64(s.tree.Len())

	// 1. Tree first, so subsequent insertions hit a smaller tree (§4.4).
	// The A3 ablation reverses the order to quantify that choice.
	if !s.d.cfg.ArrayFirstFence {
		s.fenceTree(ot)
	}
	s.fenceArray(ot)
	if s.d.cfg.ArrayFirstFence {
		s.fenceTree(ot)
	}

	// 3. Merge only past the threshold to avoid constant reorganization
	// (§4.4).
	if s.d.cfg.MergeThreshold >= 0 && s.tree.Len() > s.d.cfg.MergeThreshold {
		s.tree.Merge()
		s.d.rep.Counters.TreeReorgs++
	}

	// 4. Reset the array and metadata for the next fence interval.
	s.arr = s.arr[:0]
	s.meta = s.meta[:0]
	s.meta = append(s.meta, clfMeta{minAddr: ^uint64(0)})
	s.resetIndex()

	if ot != nil {
		ot.fenceDone(ev)
	}
}

// fenceTree removes durable records from the AVL tree.
func (s *space) fenceTree(ot *orderTracker) {
	removed := s.tree.RemoveFlushed()
	if ot != nil {
		for _, it := range removed {
			ot.noteCommit(it.Range())
		}
	}
}

// fenceArray drops or re-distributes the memory location array via its CLF
// interval metadata. Unflushed entries are gathered across all intervals and
// moved to the tree in one InsertAll, so a redistribution-heavy fence pays
// tree maintenance once instead of one rebalance per entry.
func (s *space) fenceArray(ot *orderTracker) {
	redist := s.redist[:0]
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() {
			continue
		}
		switch m.state {
		case allFlushed:
			// Durability guaranteed for the whole interval; dropping it is
			// pure metadata invalidation.
			if ot != nil {
				for i := m.start; i < m.end; i++ {
					ot.noteCommit(s.arr[i].Range())
				}
			}
		case notFlushed:
			redist = append(redist, s.arr[m.start:m.end]...)
		case partiallyFlushed:
			for i := m.start; i < m.end; i++ {
				if s.arr[i].Flushed {
					if ot != nil {
						ot.noteCommit(s.arr[i].Range())
					}
					continue
				}
				redist = append(redist, s.arr[i])
			}
		}
	}
	if len(redist) > 0 {
		s.tree.InsertAll(redist)
		s.d.rep.Counters.Redistributions += uint64(len(redist))
	}
	s.redist = redist[:0]
}

// visitRemaining calls fn for every record still tracked (used by the
// end-of-program and epoch-end durability rules). The flushed flag passed to
// fn accounts for collective interval state.
func (s *space) visitRemaining(fn func(it avl.Item, flushed bool)) {
	for mi := range s.meta {
		m := &s.meta[mi]
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Size == 0 {
				continue // purged (Unregister_pmem)
			}
			fn(s.arr[i], s.arr[i].Flushed || m.state == allFlushed)
		}
	}
	s.tree.Visit(func(it avl.Item) { fn(it, it.Flushed) })
}

// purge drops all tracking for records overlapping r (Unregister_pmem):
// array entries shrink to their non-overlapping remainders (a zero-size
// entry is inert everywhere), tree records are removed or truncated.
func (s *space) purge(r intervals.Range) {
	if s.idx == nil {
		for mi := range s.meta {
			s.purgeOne(&s.meta[mi], r, nil)
		}
	} else {
		s.forEachCandidateInterval(s.candidates(r), func(iv int32, ids []int32) {
			s.purgeOne(&s.meta[iv], r, ids)
		})
	}
	for _, old := range s.tree.CollectOverlapping(r) {
		s.tree.Delete(old.Addr)
		for _, rem := range old.Range().Subtract(r) {
			keep := old
			keep.Addr, keep.Size = rem.Addr, rem.Size
			s.tree.InsertDisjoint(keep)
		}
	}
}

// purgeOne purges one CLF interval. ids, when non-nil, restricts the entry
// pass to the purge range's cache-line candidates (exact: a purged entry
// always shares a line with r). Intervals whose entries actually shrank get
// their collective bounds recomputed so the range prefilter stops visiting
// intervals whose live entries no longer overlap anything.
func (s *space) purgeOne(m *clfMeta, r intervals.Range, ids []int32) {
	if m.empty() || !r.Overlaps(m.rng()) {
		return
	}
	changed := false
	if ids != nil {
		for _, id := range ids {
			changed = s.purgeEntry(r, int(id)) || changed
		}
	} else {
		for i := m.start; i < m.end; i++ {
			changed = s.purgeEntry(r, i) || changed
		}
	}
	if changed {
		s.tightenBounds(m)
	}
}

// purgeEntry shrinks one array entry to its remainder outside r, reporting
// whether the entry was modified.
func (s *space) purgeEntry(r intervals.Range, i int) bool {
	e := &s.arr[i]
	if !e.Range().Overlaps(r) {
		return false
	}
	rem := e.Range().Subtract(r)
	if len(rem) == 0 {
		e.Size = 0
		return true
	}
	// Keep the first remainder in place; extras go to the tree.
	e.Addr, e.Size = rem[0].Addr, rem[0].Size
	for _, extra := range rem[1:] {
		keep := *e
		keep.Addr, keep.Size = extra.Addr, extra.Size
		s.tree.Insert(keep)
	}
	return true
}

// tightenBounds recomputes a CLF interval's collective address range from
// its live (non-purged) entries. With no live entries left the bounds
// become the empty sentinel, so rng() is empty and every range prefilter
// skips the interval.
func (s *space) tightenBounds(m *clfMeta) {
	lo, hi := ^uint64(0), uint64(0)
	for i := m.start; i < m.end; i++ {
		if s.arr[i].Size == 0 {
			continue
		}
		if s.arr[i].Addr < lo {
			lo = s.arr[i].Addr
		}
		if s.arr[i].End() > hi {
			hi = s.arr[i].End()
		}
	}
	m.minAddr, m.maxAddr = lo, hi
}

// markReported flags tracked records overlapping r as already reported so a
// later rule (end-of-program no-durability) does not double-report them.
func (s *space) markReported(r intervals.Range) {
	if s.idx == nil {
		for mi := range s.meta {
			s.markReportedOne(&s.meta[mi], r, nil)
		}
	} else {
		s.forEachCandidateInterval(s.candidates(r), func(iv int32, ids []int32) {
			s.markReportedOne(&s.meta[iv], r, ids)
		})
	}
	// The AVL tree stores items by value; rewrite overlapping ones.
	hit := s.tree.CollectOverlapping(r)
	for _, it := range hit {
		s.tree.Delete(it.Addr)
		it.Reported = true
		s.tree.InsertDisjoint(it)
	}
}

// markReportedOne flags one CLF interval's entries overlapping r.
func (s *space) markReportedOne(m *clfMeta, r intervals.Range, ids []int32) {
	if m.empty() || !r.Overlaps(m.rng()) {
		return
	}
	if ids != nil {
		for _, id := range ids {
			if s.arr[id].Range().Overlaps(r) {
				s.arr[id].Reported = true
			}
		}
		return
	}
	for i := m.start; i < m.end; i++ {
		if s.arr[i].Range().Overlaps(r) {
			s.arr[i].Reported = true
		}
	}
}

func usay(v uint64) string {
	// Minimal unsigned itoa to avoid fmt on the hot path.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
