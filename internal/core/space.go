package core

import (
	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// flushState is the collective cache-flushing state of a CLF interval
// (§4.1): all flushed, partially flushed, or not flushed.
type flushState uint8

const (
	notFlushed flushState = iota
	partiallyFlushed
	allFlushed
)

// clfMeta is the metadata node for one CLF interval (Fig. 5): the array
// index range of its stores, the address range they cover, and the
// collective flushing state. The paper keeps these nodes in a linked list;
// an appended slice is the idiomatic Go equivalent with identical
// per-interval semantics (nodes are only ever appended and then dropped
// wholesale at the fence).
type clfMeta struct {
	start, end int // [start, end) indexes into the memory location array
	minAddr    uint64
	maxAddr    uint64 // exclusive
	state      flushState
	flushed    int // entries individually marked flushed (partial tracking)
}

func (m *clfMeta) empty() bool { return m.start == m.end }

func (m *clfMeta) count() int { return m.end - m.start }

func (m *clfMeta) rng() intervals.Range {
	if m.empty() || m.maxAddr <= m.minAddr {
		return intervals.Range{}
	}
	return intervals.R(m.minAddr, m.maxAddr-m.minAddr)
}

// space is one bookkeeping space (§4.1): the memory location array, the CLF
// interval metadata, and the AVL tree for long-lived records. The strict and
// epoch models use a single space; the strand model allocates one per strand
// section (§5.1).
type space struct {
	d      *Detector
	strand int32
	arr    []avl.Item
	meta   []clfMeta
	tree   *avl.Tree
}

func newSpace(d *Detector, strand int32) *space {
	// The array is logically fixed-size (capacity d.cfg.ArrayCapacity) but
	// its backing storage grows on demand so per-strand spaces stay cheap.
	s := &space{
		d:      d,
		strand: strand,
		arr:    make([]avl.Item, 0, 256),
		tree:   avl.New(),
	}
	s.meta = append(s.meta, clfMeta{minAddr: ^uint64(0)})
	return s
}

// empty reports whether the space tracks nothing.
func (s *space) empty() bool { return len(s.arr) == 0 && s.tree.Len() == 0 }

func (s *space) cur() *clfMeta { return &s.meta[len(s.meta)-1] }

// trackedOverlap reports whether any record in the bookkeeping space
// overlaps r. It prefilters CLF intervals by their collective address range
// so most intervals are skipped without touching entries (Pattern 2).
func (s *space) trackedOverlap(r intervals.Range) (avl.Item, bool) {
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() || !r.Overlaps(m.rng()) {
			continue
		}
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Range().Overlaps(r) {
				return s.arr[i], true
			}
		}
	}
	var hit avl.Item
	found := false
	s.tree.VisitOverlapping(r, func(it avl.Item) {
		if !found {
			hit, found = it, true
		}
	})
	return hit, found
}

// store processes a memory store instruction (§4.2): append to the array
// (or spill to the tree when the array is full) and update the current CLF
// interval metadata. The multiple-overwrites rule runs first so it sees the
// pre-store bookkeeping state.
func (s *space) store(ev trace.Event, epochID int32) {
	r := intervals.R(ev.Addr, ev.Size)
	if s.d.cfg.Rules.Has(rules.RuleMultipleOverwrites) {
		if prev, ok := s.trackedOverlap(r); ok {
			s.d.rep.Add(report.Bug{
				Type: report.MultipleOverwrites,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
				Site: ev.Site, Strand: ev.Strand,
				Message: "location written again before its durability is guaranteed (previous store at seq " +
					usay(prev.Seq) + ")",
			})
		}
	}

	it := avl.Item{
		Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq,
		Site: ev.Site, Strand: ev.Strand,
		Epoch: epochID >= 0, Epochs: epochID,
	}
	if len(s.arr) < s.d.cfg.ArrayCapacity {
		s.arr = append(s.arr, it)
		m := s.cur()
		m.end = len(s.arr)
		if ev.Addr < m.minAddr {
			m.minAddr = ev.Addr
		}
		if ev.End() > m.maxAddr {
			m.maxAddr = ev.End()
		}
		s.d.rep.Counters.ArrayAppends++
	} else {
		// Rare overflow (§4.1): new locations go straight to the AVL tree.
		s.tree.Insert(it)
		s.d.rep.Counters.ArraySpills++
	}
	if s.d.order != nil {
		s.d.order.noteStore(ev)
	}
}

// flush processes a CLF instruction (§4.3). The array is traversed at CLF
// interval granularity: a flush covering an interval's whole address range
// updates only the collective state; partial overlaps examine entries
// individually, splitting entries whose range is only partially persisted
// (the covered part stays in the array, the remainder moves to the tree).
// Afterwards the tree is updated and a fresh CLF interval is opened.
//
// It returns whether the flush hit any not-yet-flushed record and whether it
// hit any already-flushed record, which drive the redundant-flush and
// flush-nothing rules.
func (s *space) flush(ev trace.Event) (anyNew, anyOld bool) {
	fr := intervals.R(ev.Addr, ev.Size)
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() {
			continue
		}
		ir := m.rng()
		if !fr.Overlaps(ir) {
			continue
		}
		if fr.Contains(ir) {
			// Collective update: the whole interval is covered (Pattern 2).
			switch m.state {
			case allFlushed:
				anyOld = true
			case notFlushed:
				m.state = allFlushed
				m.flushed = m.count()
				anyNew = true
			case partiallyFlushed:
				if m.flushed > 0 {
					anyOld = true
				}
				if m.flushed < m.count() {
					anyNew = true
				}
				for i := m.start; i < m.end; i++ {
					s.arr[i].Flushed = true
				}
				m.state = allFlushed
				m.flushed = m.count()
			}
			continue
		}
		// Partial overlap: examine entries individually.
		if m.state == allFlushed {
			// Every entry is already flushed; this is a re-flush only if
			// the range hits an actual entry rather than a gap between the
			// interval's min and max addresses.
			for i := m.start; i < m.end; i++ {
				if fr.Overlaps(s.arr[i].Range()) {
					anyOld = true
					break
				}
			}
			continue
		}
		for i := m.start; i < m.end; i++ {
			e := &s.arr[i]
			er := e.Range()
			if !fr.Overlaps(er) {
				continue
			}
			if e.Flushed {
				anyOld = true
				continue
			}
			if fr.Contains(er) {
				e.Flushed = true
				m.flushed++
				anyNew = true
				continue
			}
			// Split: covered sub-range stays (flushed); remainders move to
			// the tree, still unflushed (§4.3).
			covered := er.Intersect(fr)
			for _, rem := range er.Subtract(covered) {
				keep := *e
				keep.Addr, keep.Size = rem.Addr, rem.Size
				s.tree.Insert(keep)
			}
			e.Addr, e.Size = covered.Addr, covered.Size
			e.Flushed = true
			m.flushed++
			anyNew = true
		}
		if m.flushed == m.count() {
			m.state = allFlushed
		} else if m.flushed > 0 {
			m.state = partiallyFlushed
		}
	}

	// Then the AVL tree (§4.3): the array absorbs most updates, so this
	// traversal is usually a cheap no-op.
	newly, already := s.tree.MarkFlushed(fr)
	anyNew = anyNew || newly > 0
	anyOld = anyOld || already > 0

	// Start a new CLF interval.
	if !s.cur().empty() {
		s.meta = append(s.meta, clfMeta{start: len(s.arr), end: len(s.arr), minAddr: ^uint64(0)})
	}
	return anyNew, anyOld
}

// fence processes a fence instruction (§4.4): records whose durability the
// fence guarantees are removed — tree first, then the array via its interval
// metadata — remaining unflushed array entries are re-distributed to the
// tree, the tree is merged past the threshold, and the array is reset for
// the next fence interval by invalidating the metadata.
func (s *space) fence(ev trace.Event) {
	ot := s.d.order

	// 0. Sample the tree size as seen during the closing fence interval
	// (the Fig. 11 metric): the hybrid design's win is how little of the
	// interval's state ever reaches the tree.
	s.d.rep.Counters.TreeNodeSamples += uint64(s.tree.Len())

	// 1. Tree first, so subsequent insertions hit a smaller tree (§4.4).
	// The A3 ablation reverses the order to quantify that choice.
	if !s.d.cfg.ArrayFirstFence {
		s.fenceTree(ot)
	}
	s.fenceArray(ot)
	if s.d.cfg.ArrayFirstFence {
		s.fenceTree(ot)
	}

	// 3. Merge only past the threshold to avoid constant reorganization
	// (§4.4).
	if s.d.cfg.MergeThreshold >= 0 && s.tree.Len() > s.d.cfg.MergeThreshold {
		s.tree.Merge()
		s.d.rep.Counters.TreeReorgs++
	}

	// 4. Reset the array and metadata for the next fence interval.
	s.arr = s.arr[:0]
	s.meta = s.meta[:0]
	s.meta = append(s.meta, clfMeta{minAddr: ^uint64(0)})

	if ot != nil {
		ot.fenceDone(ev)
	}
}

// fenceTree removes durable records from the AVL tree.
func (s *space) fenceTree(ot *orderTracker) {
	removed := s.tree.RemoveFlushed()
	if ot != nil {
		for _, it := range removed {
			ot.noteCommit(it.Range())
		}
	}
}

// fenceArray drops or re-distributes the memory location array via its CLF
// interval metadata.
func (s *space) fenceArray(ot *orderTracker) {
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() {
			continue
		}
		switch m.state {
		case allFlushed:
			// Durability guaranteed for the whole interval; dropping it is
			// pure metadata invalidation.
			if ot != nil {
				for i := m.start; i < m.end; i++ {
					ot.noteCommit(s.arr[i].Range())
				}
			}
		case notFlushed:
			for i := m.start; i < m.end; i++ {
				s.tree.Insert(s.arr[i])
				s.d.rep.Counters.Redistributions++
			}
		case partiallyFlushed:
			for i := m.start; i < m.end; i++ {
				if s.arr[i].Flushed {
					if ot != nil {
						ot.noteCommit(s.arr[i].Range())
					}
					continue
				}
				s.tree.Insert(s.arr[i])
				s.d.rep.Counters.Redistributions++
			}
		}
	}
}

// visitRemaining calls fn for every record still tracked (used by the
// end-of-program and epoch-end durability rules). The flushed flag passed to
// fn accounts for collective interval state.
func (s *space) visitRemaining(fn func(it avl.Item, flushed bool)) {
	for mi := range s.meta {
		m := &s.meta[mi]
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Size == 0 {
				continue // purged (Unregister_pmem)
			}
			fn(s.arr[i], s.arr[i].Flushed || m.state == allFlushed)
		}
	}
	s.tree.Visit(func(it avl.Item) { fn(it, it.Flushed) })
}

// purge drops all tracking for records overlapping r (Unregister_pmem):
// array entries shrink to their non-overlapping remainders (a zero-size
// entry is inert everywhere), tree records are removed or truncated.
func (s *space) purge(r intervals.Range) {
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() || !r.Overlaps(m.rng()) {
			continue
		}
		for i := m.start; i < m.end; i++ {
			e := &s.arr[i]
			if !e.Range().Overlaps(r) {
				continue
			}
			rem := e.Range().Subtract(r)
			if len(rem) == 0 {
				e.Size = 0
				continue
			}
			// Keep the first remainder in place; extras go to the tree.
			e.Addr, e.Size = rem[0].Addr, rem[0].Size
			for _, extra := range rem[1:] {
				keep := *e
				keep.Addr, keep.Size = extra.Addr, extra.Size
				s.tree.Insert(keep)
			}
		}
	}
	for _, old := range s.tree.CollectOverlapping(r) {
		s.tree.Delete(old.Addr)
		for _, rem := range old.Range().Subtract(r) {
			keep := old
			keep.Addr, keep.Size = rem.Addr, rem.Size
			s.tree.InsertDisjoint(keep)
		}
	}
}

// markReported flags tracked records overlapping r as already reported so a
// later rule (end-of-program no-durability) does not double-report them.
func (s *space) markReported(r intervals.Range) {
	for mi := range s.meta {
		m := &s.meta[mi]
		if m.empty() || !r.Overlaps(m.rng()) {
			continue
		}
		for i := m.start; i < m.end; i++ {
			if s.arr[i].Range().Overlaps(r) {
				s.arr[i].Reported = true
			}
		}
	}
	// The AVL tree stores items by value; rewrite overlapping ones.
	hit := s.tree.CollectOverlapping(r)
	for _, it := range hit {
		s.tree.Delete(it.Addr)
		it.Reported = true
		s.tree.InsertDisjoint(it)
	}
}

func usay(v uint64) string {
	// Minimal unsigned itoa to avoid fmt on the hot path.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
