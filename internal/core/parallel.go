package core

import (
	"errors"
	"io"
	"runtime"
	"sync"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// This file implements the sharded parallel trace-replay pipeline on top of
// the engine: a recorded (or streamed) instruction stream is partitioned
// along strand boundaries, each shard replays into its own Detector on a
// worker pool, and the shard reports merge back into the exact report a
// sequential replay produces. Strands are the strand model's independent
// persist paths (§5.1): the engine bookkeeps each in its own space and no
// default rule correlates records across strands, so per-strand subsequences
// replay to identical bookkeeping in any interleaving.
//
// The dispatcher is pipelined rather than partition-then-replay: shard
// workers consume work while the dispatcher is still routing later events,
// so the serial cost on the critical path is only the routing scan itself.
// Strand sections arrive as runs of consecutive same-strand events, which
// the dispatcher detects and routes whole. In-memory replay routes runs as
// zero-copy subslices of the immutable event slice; streaming replay copies
// runs into pooled batches because the decode buffer is recycled.

// Parallelizable reports whether the configuration permits strand-
// partitioned replay: the strand persistency model with no cross-strand
// order requirements and no cross-failure recovery hook. Every other
// configuration folds all bookkeeping into one space (or correlates strands
// through the shared order tracker), so those replay on the batched
// sequential path instead.
func Parallelizable(cfg Config) bool {
	return cfg.Model == rules.Strand && len(cfg.Orders) == 0 && cfg.CrossFailureCheck == nil
}

// ReplayParallel replays a recorded event stream under cfg, partitioned by
// strand across up to workers shard detectors (workers <= 0 means
// GOMAXPROCS), and returns the merged report. The merge is deterministic:
// the result is identical — same bugs, same order, same counters — to
// replaying the stream sequentially into one Detector. Traces or
// configurations that cannot be partitioned (non-strand models, order
// specs, epoch sections in the trace) fall back to batched sequential
// replay transparently.
func ReplayParallel(events []trace.Event, cfg Config, workers int) *report.Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if Parallelizable(cfg) && workers > 1 {
		if rep, err := parallelSlices(events, cfg, workers); err == nil {
			return rep
		}
	}
	d := New(cfg)
	trace.ReplayEvents(events, d)
	return d.Report()
}

// ReplayParallelStream replays a trace from a stream without materializing
// it: batches are decoded into pooled buffers and dispatched to per-shard
// detector goroutines as they arrive. open must return a fresh reader for
// the trace; it is invoked a second time when a mid-stream event turns out
// to make the trace non-partitionable (epoch sections, log adds), in which
// case the replay restarts on the batched sequential path. The report is
// identical to a sequential replay either way.
func ReplayParallelStream(open func() (io.ReadCloser, error), cfg Config, workers int) (*report.Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if Parallelizable(cfg) && workers > 1 {
		rc, err := open()
		if err != nil {
			return nil, err
		}
		rep, err := parallelStream(rc, cfg, workers)
		rc.Close()
		if err == nil {
			return rep, nil
		}
		if !errors.Is(err, trace.ErrNotPartitionable) {
			return nil, err
		}
	}
	rc, err := open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	d := New(cfg)
	if _, err := trace.StreamTrace(rc, d); err != nil {
		return nil, err
	}
	return d.Report(), nil
}

// strandLocalMask has bit k set when Kind k only touches its own strand's
// bookkeeping and therefore routes to a single shard.
const strandLocalMask = 1<<trace.KindStore | 1<<trace.KindFlush | 1<<trace.KindFence |
	1<<trace.KindStrandBegin | 1<<trace.KindStrandEnd

func strandLocal(k trace.Kind) bool { return strandLocalMask>>k&1 == 1 }

// shardSet is the worker-pool scaffolding shared by both dispatchers: one
// detector plus one work channel per shard, a handler draining each channel
// into its detector, and a deterministic merge of the shard reports.
type shardSet[T any] struct {
	dets  []*Detector
	chans []chan T
	wg    sync.WaitGroup
}

func newShardSet[T any](cfg Config, workers int, handle func(*Detector, T)) *shardSet[T] {
	s := &shardSet[T]{
		dets:  make([]*Detector, workers),
		chans: make([]chan T, workers),
	}
	for i := range s.dets {
		s.dets[i] = New(cfg)
		s.chans[i] = make(chan T, 4)
		s.wg.Add(1)
		go func(d *Detector, ch <-chan T) {
			defer s.wg.Done()
			for work := range ch {
				handle(d, work)
			}
		}(s.dets[i], s.chans[i])
	}
	return s
}

// finish closes the work channels and waits for the workers to drain.
func (s *shardSet[T]) finish() {
	for _, ch := range s.chans {
		close(ch)
	}
	s.wg.Wait()
}

// merge finalizes the shard detectors into one deterministic report.
func (s *shardSet[T]) merge() *report.Report {
	reports := make([]*report.Report, len(s.dets))
	for i, d := range s.dets {
		reports[i] = d.Report()
	}
	return report.Merge("pmdebugger", reports)
}

// runListPool recycles the per-shard run lists the in-memory dispatcher
// shuttles to the shard workers.
var runListPool = sync.Pool{
	New: func() any {
		s := make([][]trace.Event, 0, runsPerMessage)
		return &s
	},
}

// runsPerMessage bounds how many event runs travel in one channel send.
const runsPerMessage = 256

// parallelSlices replays an in-memory event slice across workers shard
// detectors. The slice is immutable during replay, so runs of consecutive
// same-strand events route to their shard as subslices — the dispatcher
// copies slice headers, never events.
func parallelSlices(events []trace.Event, cfg Config, workers int) (*report.Report, error) {
	set := newShardSet(cfg, workers, func(d *Detector, runs *[][]trace.Event) {
		for _, run := range *runs {
			d.HandleBatch(run)
		}
		*runs = (*runs)[:0]
		runListPool.Put(runs)
	})

	pending := make([]*[][]trace.Event, workers)
	for i := range pending {
		pending[i] = runListPool.Get().(*[][]trace.Event)
	}
	push := func(shard int, run []trace.Event) {
		p := pending[shard]
		*p = append(*p, run)
		if len(*p) == cap(*p) {
			set.chans[shard] <- p
			pending[shard] = runListPool.Get().(*[][]trace.Event)
		}
	}

	for i := 0; i < len(events); {
		ev := events[i]
		if strandLocal(ev.Kind) {
			// Extend the run while the strand matches exactly: same strand
			// implies same shard, and the equality test is cheaper than
			// re-deriving the shard per event.
			j := i + 1
			for j < len(events) && strandLocal(events[j].Kind) && events[j].Strand == ev.Strand {
				j++
			}
			push(int(uint32(ev.Strand)%uint32(workers)), events[i:j])
			i = j
			continue
		}
		switch ev.Kind {
		case trace.KindRegister, trace.KindUnregister:
			// Region bookkeeping is shared state: replicate to every shard
			// (idempotent per shard).
			for shard := range pending {
				push(shard, events[i:i+1])
			}
		case trace.KindJoinStrand, trace.KindEnd:
			// Dropped: joins are inert without order specs and finalization
			// runs via Report.
		default:
			// Epoch sections and transaction log adds correlate strands
			// through global state; the trace cannot be partitioned.
			set.finish()
			return nil, trace.ErrNotPartitionable
		}
		i++
	}
	for shard, p := range pending {
		if len(*p) > 0 {
			set.chans[shard] <- p
		} else {
			runListPool.Put(p)
		}
	}
	set.finish()
	return set.merge(), nil
}

// shardBatchPool recycles the event slices the streaming dispatcher copies
// decoded events into before handing them to the shard workers.
var shardBatchPool = sync.Pool{
	New: func() any {
		s := make([]trace.Event, 0, trace.StreamBatchSize)
		return &s
	},
}

// parallelStream decodes the trace from r and pipes per-shard batches to
// workers shard detectors, merging their reports at EOF. Unlike the
// in-memory dispatcher it must copy events out of the decode buffer, which
// the Reader recycles between batches.
func parallelStream(r io.Reader, cfg Config, workers int) (*report.Report, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	set := newShardSet(cfg, workers, func(d *Detector, batch *[]trace.Event) {
		d.HandleBatch(*batch)
		*batch = (*batch)[:0]
		shardBatchPool.Put(batch)
	})

	pending := make([]*[]trace.Event, workers)
	for i := range pending {
		pending[i] = shardBatchPool.Get().(*[]trace.Event)
	}
	flush := func(shard int) {
		set.chans[shard] <- pending[shard]
		pending[shard] = shardBatchPool.Get().(*[]trace.Event)
	}
	pushRun := func(shard int, run []trace.Event) {
		for {
			p := pending[shard]
			free := cap(*p) - len(*p)
			if free >= len(run) {
				*p = append(*p, run...)
				if len(*p) == cap(*p) {
					flush(shard)
				}
				return
			}
			*p = append(*p, run[:free]...)
			flush(shard)
			run = run[free:]
		}
	}

	buf := make([]trace.Event, trace.StreamBatchSize)
	for {
		n, readErr := tr.ReadBatch(buf)
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			set.finish()
			return nil, readErr
		}
		batch := buf[:n]
		for i := 0; i < len(batch); {
			ev := batch[i]
			if strandLocal(ev.Kind) {
				shard := int(uint32(ev.Strand) % uint32(workers))
				j := i + 1
				for j < len(batch) && strandLocal(batch[j].Kind) && batch[j].Strand == ev.Strand {
					j++
				}
				pushRun(shard, batch[i:j])
				i = j
				continue
			}
			switch ev.Kind {
			case trace.KindRegister, trace.KindUnregister:
				for shard := range pending {
					pushRun(shard, batch[i:i+1])
				}
			case trace.KindJoinStrand, trace.KindEnd:
				// Dropped, as in parallelSlices.
			default:
				set.finish()
				return nil, trace.ErrNotPartitionable
			}
			i++
		}
	}
	for shard, p := range pending {
		if len(*p) > 0 {
			set.chans[shard] <- p
		} else {
			shardBatchPool.Put(p)
		}
	}
	set.finish()
	return set.merge(), nil
}
