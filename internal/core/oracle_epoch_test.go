package core

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// epochOracle extends the brute-force reference with the epoch-model rules:
// lack of durability in an epoch, redundant epoch fences and redundant
// logging, straight from their §5.2 definitions.
type epochOracle struct {
	written map[uint64]oracleByte
	bugs    map[report.BugType]bool

	inEpoch     bool
	epochID     int
	epochFences int
	logged      map[uint64]bool // bytes logged in the current epoch
}

type oracleByte struct {
	flushed bool
	epoch   int // -1 outside epochs
}

func newEpochOracle() *epochOracle {
	return &epochOracle{
		written: map[uint64]oracleByte{},
		bugs:    map[report.BugType]bool{},
		logged:  map[uint64]bool{},
		epochID: -1,
	}
}

func (o *epochOracle) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		ep := -1
		if o.inEpoch {
			ep = o.epochID
		}
		for a := ev.Addr; a < ev.End(); a++ {
			o.written[a] = oracleByte{epoch: ep}
		}
	case trace.KindFlush:
		for a := ev.Addr; a < ev.End(); a++ {
			if st, ok := o.written[a]; ok && !st.flushed {
				st.flushed = true
				o.written[a] = st
			}
		}
	case trace.KindFence:
		if o.inEpoch {
			o.epochFences++
		}
		for a, st := range o.written {
			if st.flushed {
				delete(o.written, a)
			}
		}
	case trace.KindEpochBegin:
		o.inEpoch = true
		o.epochID++
		o.epochFences = 0
		o.logged = map[uint64]bool{}
	case trace.KindEpochEnd:
		if !o.inEpoch {
			return
		}
		o.inEpoch = false
		if o.epochFences > 1 {
			o.bugs[report.RedundantEpochFence] = true
		}
		for _, st := range o.written {
			if st.epoch == o.epochID {
				o.bugs[report.LackDurabilityInEpoch] = true
				break
			}
		}
	case trace.KindTxLogAdd:
		if !o.inEpoch {
			return
		}
		for a := ev.Addr; a < ev.End(); a++ {
			if o.logged[a] {
				o.bugs[report.RedundantLogging] = true
			}
			o.logged[a] = true
		}
	case trace.KindEnd:
		// The epoch differential focuses on the epoch rules; the common
		// rules are covered by the strict-model oracle.
	}
}

// genEpochStream produces random epoch-model instruction streams.
func genEpochStream(rng *rand.Rand, n int) []trace.Event {
	const base = 0x1000_0000
	var evs []trace.Event
	seq := uint64(0)
	inEpoch := false
	emit := func(kind trace.Kind, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2, 3:
			emit(trace.KindStore, base+uint64(rng.Intn(256)), uint64(rng.Intn(16)+1))
		case 4, 5, 6:
			addr := base + uint64(rng.Intn(256))
			emit(trace.KindFlush, addr&^63, 64)
		case 7, 8:
			emit(trace.KindFence, 0, 0)
		case 9:
			if !inEpoch {
				emit(trace.KindEpochBegin, 0, 0)
				inEpoch = true
			} else {
				emit(trace.KindEpochEnd, 0, 0)
				inEpoch = false
			}
		case 10, 11:
			if inEpoch {
				emit(trace.KindTxLogAdd, base+uint64(rng.Intn(128)), uint64(rng.Intn(16)+1))
			}
		}
	}
	if inEpoch {
		emit(trace.KindEpochEnd, 0, 0)
	}
	emit(trace.KindEnd, 0, 0)
	return evs
}

func TestDifferentialEpochRules(t *testing.T) {
	cfg := Config{
		Model: rules.Epoch,
		Rules: rules.RuleLackDurabilityInEpoch | rules.RuleRedundantEpochFence |
			rules.RuleRedundantLogging,
	}
	for seed := int64(3000); seed < 3200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := genEpochStream(rng, 120)
		d := New(cfg)
		o := newEpochOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.LackDurabilityInEpoch, report.RedundantEpochFence,
			report.RedundantLogging,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("seed %d: %s engine=%v oracle=%v\nreport:\n%s",
					seed, typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
	}
}
