package core

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// recordStrandTrace captures a strand-model stream with bugs planted across
// strands: every third strand leaves its store unflushed (no-durability at
// end of program), every third flushes twice before the fence (redundant
// flush, all at one site so deduplication must cross shard boundaries), the
// rest are clean. Periodic joins exercise the join-dropping path.
func recordStrandTrace(tb testing.TB, nStrands int) *trace.Recorder {
	tb.Helper()
	pm := pmem.New(1 << 20)
	rec := trace.NewRecorder(0)
	pm.Attach(rec)
	site := trace.RegisterSite("parallel_test.go:flush")
	c := pm.Ctx().At(site)
	// A default-strand prologue so shard 0 carries strand-0 traffic too.
	a0 := pm.Alloc(64)
	c.Store64(a0, 1)
	c.Persist(a0, 8)
	for i := 0; i < nStrands; i++ {
		st := c.StrandBegin()
		addr := pm.Alloc(64)
		st.Store64(addr, uint64(i))
		switch i % 3 {
		case 0: // never flushed
		case 1: // flushed twice before the fence
			st.Flush(addr, 8)
			st.Flush(addr, 8)
			st.Fence()
		case 2: // clean
			st.Flush(addr, 8)
			st.Fence()
		}
		st.StrandEnd()
		if i%16 == 15 {
			c.JoinStrand()
		}
	}
	pm.End()
	return rec
}

func sequentialReport(events []trace.Event, cfg Config) *report.Report {
	d := New(cfg)
	for _, ev := range events {
		d.HandleEvent(ev)
	}
	return d.Report()
}

func assertSameReport(t *testing.T, seq, par *report.Report, label string) {
	t.Helper()
	if seq.Summary() != par.Summary() {
		t.Fatalf("%s: summaries differ\n--- sequential ---\n%s--- parallel ---\n%s",
			label, seq.Summary(), par.Summary())
	}
	if !reflect.DeepEqual(seq.Bugs, par.Bugs) {
		t.Fatalf("%s: bug lists differ\nseq: %v\npar: %v", label, seq.Bugs, par.Bugs)
	}
	if seq.Counters != par.Counters {
		t.Fatalf("%s: counters differ\nseq: %+v\npar: %+v", label, seq.Counters, par.Counters)
	}
}

func TestReplayParallelMatchesSequential(t *testing.T) {
	rec := recordStrandTrace(t, 100)
	cfg := Config{Model: rules.Strand}
	seq := sequentialReport(rec.Events, cfg)
	if !seq.Has(report.NoDurability) || !seq.Has(report.RedundantFlush) {
		t.Fatalf("test trace should plant bugs, got:\n%s", seq.Summary())
	}
	// More strands than shards, shards than workers, single worker: every
	// pool shape must merge back to the identical report.
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		par := ReplayParallel(rec.Events, cfg, workers)
		assertSameReport(t, seq, par, "workers="+string(rune('0'+workers%10)))
	}
}

func TestReplayParallelFallsBackForNonStrandConfigs(t *testing.T) {
	rec := recordStrandTrace(t, 12)
	for _, cfg := range []Config{
		{Model: rules.Epoch},
		{Model: rules.Strict},
		{Model: rules.Strand, Orders: []rules.OrderSpec{{Before: "a", After: "b"}}},
	} {
		if Parallelizable(cfg) {
			t.Fatalf("config %+v should not be parallelizable", cfg)
		}
		seq := sequentialReport(rec.Events, cfg)
		par := ReplayParallel(rec.Events, cfg, 4)
		assertSameReport(t, seq, par, cfg.Model.String())
	}
	if !Parallelizable(Config{Model: rules.Strand}) {
		t.Fatal("plain strand config should be parallelizable")
	}
}

func TestReplayParallelFallsBackOnEpochTrace(t *testing.T) {
	// A strand config over a trace with epoch markers: the partitioner must
	// refuse and the fallback must still produce the sequential report.
	var evs []trace.Event
	seq := uint64(0)
	emit := func(k trace.Kind, strand int32, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: k, Strand: strand, Addr: addr, Size: size})
	}
	emit(trace.KindEpochBegin, 0, 0, 0)
	emit(trace.KindStore, 1, 0x1000, 8)
	emit(trace.KindFlush, 1, 0x1000, 64)
	emit(trace.KindFence, 1, 0, 0)
	emit(trace.KindEpochEnd, 0, 0, 0)
	emit(trace.KindStore, 2, 0x2000, 8)
	emit(trace.KindEnd, 0, 0, 0)

	cfg := Config{Model: rules.Strand}
	assertSameReport(t, sequentialReport(evs, cfg), ReplayParallel(evs, cfg, 4), "epoch-trace")
}

func TestReplayParallelStreamMatchesSequential(t *testing.T) {
	rec := recordStrandTrace(t, 64)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, rec.Events); err != nil {
		t.Fatal(err)
	}
	open := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
	}
	cfg := Config{Model: rules.Strand}
	seq := sequentialReport(rec.Events, cfg)
	par, err := ReplayParallelStream(open, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, seq, par, "stream")
}

func TestReplayParallelStreamAbortsToSequential(t *testing.T) {
	// An epoch marker deep in the stream: the parallel dispatcher has
	// already fanned out work when it discovers the trace is not
	// partitionable, and must restart sequentially via open().
	rec := recordStrandTrace(t, 32)
	events := rec.Events[:len(rec.Events)-1] // drop KindEnd
	events = append(events,
		trace.Event{Seq: 1 << 30, Kind: trace.KindEpochBegin},
		trace.Event{Seq: 1<<30 + 1, Kind: trace.KindEpochEnd},
		trace.Event{Seq: 1<<30 + 2, Kind: trace.KindEnd},
	)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	opens := 0
	open := func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
	}
	cfg := Config{Model: rules.Strand}
	par, err := ReplayParallelStream(open, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opens != 2 {
		t.Fatalf("expected parallel attempt + sequential restart (2 opens), got %d", opens)
	}
	assertSameReport(t, sequentialReport(events, cfg), par, "stream-abort")
}

func TestFinishOrderDeterministic(t *testing.T) {
	// Many strands with unpersisted stores: before the deterministic
	// finalization sweep, the end-of-program report order followed map
	// iteration over spaces and varied run to run.
	rec := recordStrandTrace(t, 60)
	cfg := Config{Model: rules.Strand}
	want := sequentialReport(rec.Events, cfg)
	for i := 0; i < 10; i++ {
		got := sequentialReport(rec.Events, cfg)
		assertSameReport(t, want, got, "repeat-sequential")
	}
	for i := 1; i < len(want.Bugs); i++ {
		prev, cur := want.Bugs[i-1], want.Bugs[i]
		if prev.Type.EndOfProgram() && !cur.Type.EndOfProgram() {
			t.Fatalf("end-of-program bug before stream bug: %v then %v", prev, cur)
		}
		if prev.Type.EndOfProgram() == cur.Type.EndOfProgram() && prev.Seq > cur.Seq {
			t.Fatalf("bugs out of sequence order: %v then %v", prev, cur)
		}
	}
}
