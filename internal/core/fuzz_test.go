package core

import (
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// FuzzDetectorVsOracle drives the engine and the brute-force oracle with an
// instruction stream decoded from fuzz input and requires identical
// bug-type outcomes. Run with `go test -fuzz FuzzDetectorVsOracle` for
// continuous exploration; the seed corpus runs in normal test mode.
func FuzzDetectorVsOracle(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 3, 0, 0, 10, 2, 30})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 1, 0, 2, 0, 3, 0})
	f.Add([]byte{4, 0, 0, 8, 1, 8, 2, 0, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x1000_0000
		var evs []trace.Event
		seq := uint64(0)
		emit := func(kind trace.Kind, addr, size uint64) {
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			switch op % 5 {
			case 0: // store
				emit(trace.KindStore, base+arg, arg%24+1)
			case 1: // arbitrary flush
				emit(trace.KindFlush, base+arg, arg%64+1)
			case 2: // line flush
				emit(trace.KindFlush, (base+arg)&^63, 64)
			case 3: // fence
				emit(trace.KindFence, 0, 0)
			case 4: // store crossing lines
				emit(trace.KindStore, base+arg, 64+arg%64)
			}
		}
		emit(trace.KindEnd, 0, 0)

		cfg := Config{
			Model: rules.Strict,
			Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
				rules.RuleRedundantFlush | rules.RuleFlushNothing,
			// Exercise spill and merge machinery under fuzzing too.
			ArrayCapacity:  8,
			MergeThreshold: 4,
		}
		cfgScan := cfg
		cfgScan.DisableIndex = true
		d, dScan := New(cfg), New(cfgScan)
		o := newOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			dScan.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("%s: engine=%v oracle=%v\nreport:\n%s",
					typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
		if got, want := rep.Summary(), dScan.Report().Summary(); got != want {
			t.Fatalf("indexed and scan reports differ\n--- indexed ---\n%s\n--- scan ---\n%s",
				got, want)
		}
	})
}

// FuzzIndexedVsScan fuzzes the tentpole equivalence directly: arbitrary
// streams of stores, splitting flushes, fences and region purges must
// produce byte-identical reports from the cache-line-indexed detector and
// the DisableIndex reference scan. Unlike the oracle fuzz above it runs
// under selective registration so Unregister_pmem purges live bookkeeping,
// and it includes zero-size flushes to probe the empty-range overlap quirk.
func FuzzIndexedVsScan(f *testing.F) {
	f.Add([]byte{0, 16, 5, 8, 1, 16, 3, 0, 0, 16, 6, 0, 1, 16})
	f.Add([]byte{0, 0, 0, 64, 5, 32, 1, 0, 2, 0, 3, 0, 4, 192})
	f.Add([]byte{4, 7, 0, 7, 6, 7, 1, 7, 5, 7, 0, 7, 3, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x1000_0000
		var evs []trace.Event
		seq := uint64(0)
		emit := func(kind trace.Kind, addr, size uint64) {
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
		}
		emit(trace.KindRegister, base, 4096)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			switch op % 7 {
			case 0: // store
				emit(trace.KindStore, base+arg*8, arg%24+1)
			case 1: // line flush
				emit(trace.KindFlush, (base+arg*8)&^63, 64)
			case 2: // arbitrary flush (splits entries)
				emit(trace.KindFlush, base+arg, arg%96+1)
			case 3: // fence
				emit(trace.KindFence, 0, 0)
			case 4: // store crossing lines
				emit(trace.KindStore, base+arg*8, 64+arg%64)
			case 5: // purge a sub-region
				emit(trace.KindUnregister, base+arg*8, arg%128+1)
			case 6: // zero-size flush: empty-range overlap quirk
				emit(trace.KindFlush, base+arg*8, 0)
			}
		}
		emit(trace.KindEnd, 0, 0)

		cfg := Config{
			Model:               rules.Strict,
			RequireRegistration: true,
			ArrayCapacity:       8,
			MergeThreshold:      4,
		}
		cfgScan := cfg
		cfgScan.DisableIndex = true
		d, dScan := New(cfg), New(cfgScan)
		for _, ev := range evs {
			d.HandleEvent(ev)
			dScan.HandleEvent(ev)
		}
		if got, want := d.Report().Summary(), dScan.Report().Summary(); got != want {
			t.Fatalf("indexed and scan reports differ\n--- indexed ---\n%s\n--- scan ---\n%s",
				got, want)
		}
	})
}
