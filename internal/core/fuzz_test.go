package core

import (
	"testing"

	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// FuzzDetectorVsOracle drives the engine and the brute-force oracle with an
// instruction stream decoded from fuzz input and requires identical
// bug-type outcomes. Run with `go test -fuzz FuzzDetectorVsOracle` for
// continuous exploration; the seed corpus runs in normal test mode.
func FuzzDetectorVsOracle(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 3, 0, 0, 10, 2, 30})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 1, 0, 2, 0, 3, 0})
	f.Add([]byte{4, 0, 0, 8, 1, 8, 2, 0, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x1000_0000
		var evs []trace.Event
		seq := uint64(0)
		emit := func(kind trace.Kind, addr, size uint64) {
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			switch op % 5 {
			case 0: // store
				emit(trace.KindStore, base+arg, arg%24+1)
			case 1: // arbitrary flush
				emit(trace.KindFlush, base+arg, arg%64+1)
			case 2: // line flush
				emit(trace.KindFlush, (base+arg)&^63, 64)
			case 3: // fence
				emit(trace.KindFence, 0, 0)
			case 4: // store crossing lines
				emit(trace.KindStore, base+arg, 64+arg%64)
			}
		}
		emit(trace.KindEnd, 0, 0)

		d := New(Config{
			Model: rules.Strict,
			Rules: rules.RuleNoDurability | rules.RuleMultipleOverwrites |
				rules.RuleRedundantFlush | rules.RuleFlushNothing,
			// Exercise spill and merge machinery under fuzzing too.
			ArrayCapacity:  8,
			MergeThreshold: 4,
		})
		o := newOracle()
		for _, ev := range evs {
			d.HandleEvent(ev)
			o.HandleEvent(ev)
		}
		rep := d.Report()
		for _, typ := range []report.BugType{
			report.NoDurability, report.MultipleOverwrites,
			report.RedundantFlush, report.FlushNothing,
		} {
			if rep.Has(typ) != o.bugs[typ] {
				t.Fatalf("%s: engine=%v oracle=%v\nreport:\n%s",
					typ, rep.Has(typ), o.bugs[typ], rep.Summary())
			}
		}
	})
}
