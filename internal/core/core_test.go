package core

import (
	"errors"
	"strings"
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// run executes fn against a fresh pool instrumented with a PMDebugger
// detector and returns the final report.
func run(cfg Config, fn func(c *pmem.Ctx, p *pmem.Pool)) *report.Report {
	p := pmem.New(1 << 16)
	d := New(cfg)
	p.Attach(d)
	fn(p.Ctx(), p)
	p.End()
	return d.Report()
}

func wantBugs(t *testing.T, rep *report.Report, want map[report.BugType]int) {
	t.Helper()
	got := rep.CountByType()
	for typ, n := range want {
		if got[typ] != n {
			t.Errorf("%s: got %d, want %d\nreport:\n%s", typ, got[typ], n, rep.Summary())
		}
	}
	for typ, n := range got {
		if want[typ] == 0 && n > 0 {
			t.Errorf("unexpected %s x%d\nreport:\n%s", typ, n, rep.Summary())
		}
	}
}

func TestCleanStrictProgram(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		for i := 0; i < 10; i++ {
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
		}
	})
	wantBugs(t, rep, nil)
	if rep.Counters.Stores != 10 || rep.Counters.Flushes != 10 || rep.Counters.Fences != 10 {
		t.Errorf("counters: %+v", rep.Counters)
	}
}

func TestNoDurabilityMissingCLF(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1) // never flushed
	})
	wantBugs(t, rep, map[report.BugType]int{report.NoDurability: 1})
	if !strings.Contains(rep.Bugs[0].Message, "missing CLF") {
		t.Errorf("message = %q", rep.Bugs[0].Message)
	}
}

func TestNoDurabilityMissingFence(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1)
		c.Flush(a, 8) // flushed but never fenced
	})
	wantBugs(t, rep, map[report.BugType]int{report.NoDurability: 1})
	if !strings.Contains(rep.Bugs[0].Message, "missing fence") {
		t.Errorf("message = %q", rep.Bugs[0].Message)
	}
}

func TestNoDurabilitySurvivesFences(t *testing.T) {
	// A location that is never flushed must still be reported even after
	// many fences moved it into the AVL tree.
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.Store64(a, 1) // never flushed
		for i := 0; i < 10; i++ {
			c.Store64(a+64, uint64(i))
			c.Persist(a+64, 8)
		}
	})
	wantBugs(t, rep, map[report.BugType]int{report.NoDurability: 1})
}

func TestMultipleOverwrites(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.SetSite(trace.RegisterSite("overwrite-site"))
		c.Store64(a, 1)
		c.Store64(a, 2) // overwrite before durability
		c.Persist(a, 8)
	})
	wantBugs(t, rep, map[report.BugType]int{report.MultipleOverwrites: 1})
}

func TestMultipleOverwritesPartialOverlap(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.StoreBytes(a, make([]byte, 16))
		c.StoreBytes(a+8, make([]byte, 16)) // overlaps [a+8,a+16)
		c.Persist(a, 24)
	})
	wantBugs(t, rep, map[report.BugType]int{report.MultipleOverwrites: 1})
}

func TestMultipleOverwritesAllowedAfterDurability(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1)
		c.Persist(a, 8)
		c.Store64(a, 2) // fine: previous write durable
		c.Persist(a, 8)
	})
	wantBugs(t, rep, nil)
}

func TestMultipleOverwritesDisabledInRelaxedModels(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.EpochBegin()
		c.Store64(a, 1)
		c.Store64(a, 2)
		c.Persist(a, 8)
		c.EpochEnd()
	})
	wantBugs(t, rep, nil)
}

func TestMultipleOverwritesDetectedInTree(t *testing.T) {
	// The first store survives a fence (moves to the tree); the overwrite
	// must still be detected there.
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.Store64(a, 1) // not flushed
		c.Store64(a+64, 2)
		c.Persist(a+64, 8) // fence: a moves to tree
		c.Store64(a, 3)    // overwrite of tree-resident record
		c.Persist(a, 8)
	})
	if got := rep.CountByType()[report.MultipleOverwrites]; got != 1 {
		t.Errorf("multiple overwrites = %d\n%s", got, rep.Summary())
	}
}

func TestRedundantFlush(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1)
		c.Flush(a, 8)
		c.Flush(a, 8) // same line again before the fence
		c.Fence()
	})
	wantBugs(t, rep, map[report.BugType]int{report.RedundantFlush: 1})
}

func TestFlushNothing(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.Flush(a+64, 8) // nothing stored there
		c.Fence()
	})
	wantBugs(t, rep, map[report.BugType]int{report.FlushNothing: 1})
}

func TestFlushCoveringNewAndOldIsNotRedundant(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.Store64(a, 1)
		c.Flush(a, 8)
		c.Store64(a+64, 2)
		c.FlushKind(a, 128, trace.CLFLUSH) // re-covers a but persists a+64
		c.Fence()
	})
	wantBugs(t, rep, nil)
}

func TestNoOrderGuaranteeViolated(t *testing.T) {
	orders := []rules.OrderSpec{{Before: "value", After: "key"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("value", v, 8)
		p.RegisterNamed("key", k, 8)
		// Persist key first: violates value-before-key.
		c.Store64(k, 42)
		c.Persist(k, 8)
		c.Store64(v, 7)
		c.Persist(v, 8)
	})
	if !rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("order violation not detected:\n%s", rep.Summary())
	}
}

func TestNoOrderGuaranteeSatisfied(t *testing.T) {
	orders := []rules.OrderSpec{{Before: "value", After: "key"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("value", v, 8)
		p.RegisterNamed("key", k, 8)
		c.Store64(v, 7)
		c.Persist(v, 8)
		c.Store64(k, 42)
		c.Persist(k, 8)
	})
	wantBugs(t, rep, nil)
}

func TestNoOrderGuaranteeSameFence(t *testing.T) {
	// Both become durable at the same fence: strict order not established.
	orders := []rules.OrderSpec{{Before: "value", After: "key"}}
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(128)
		p.RegisterNamed("value", v, 8)
		p.RegisterNamed("key", k+64, 8)
		c.Store64(v, 7)
		c.Store64(k+64, 42)
		c.Flush(v, 8)
		c.Flush(k+64, 8)
		c.Fence()
	})
	if !rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("same-fence order not flagged:\n%s", rep.Summary())
	}
}

func TestOrderScope(t *testing.T) {
	orders := []rules.OrderSpec{{Before: "value", After: "key", Scope: "update"}}
	// Outside the scope, the violating order is not checked.
	rep := run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("value", v, 8)
		p.RegisterNamed("key", k, 8)
		c.Store64(k, 42)
		c.Persist(k, 8)
		c.Store64(v, 7)
		c.Persist(v, 8)
	})
	wantBugs(t, rep, nil)

	// Inside the scope it is.
	rep = run(Config{Model: rules.Strict, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("value", v, 8)
		p.RegisterNamed("key", k, 8)
		p.RegisterNamed("scope:update:begin", p.Base(), 1)
		c.Store64(k, 42)
		c.Persist(k, 8)
		c.Store64(v, 7)
		c.Persist(v, 8)
		p.RegisterNamed("scope:update:end", p.Base(), 1)
	})
	if !rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("scoped order violation not detected:\n%s", rep.Summary())
	}
}

func TestRedundantLogging(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.EpochBegin()
		c.TxLogAdd(a, 16)
		c.TxLogAdd(a, 16) // same object logged twice in one TX
		c.Store64(a, 1)
		c.Persist(a, 8)
		c.EpochEnd()
	})
	wantBugs(t, rep, map[report.BugType]int{report.RedundantLogging: 1})
}

func TestLoggingOncePerEpochIsFine(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		for i := 0; i < 2; i++ {
			c.EpochBegin()
			c.TxLogAdd(a, 16)
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
			c.EpochEnd()
		}
	})
	wantBugs(t, rep, nil)
}

func TestLackDurabilityInEpoch(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.EpochBegin()
		c.Store64(a, 1) // never flushed inside the epoch (Fig. 7c)
		c.Store64(a+64, 2)
		c.Persist(a+64, 8)
		c.EpochEnd()
	})
	// Only the epoch rule fires; the end-of-program rule must not
	// double-report the same location.
	wantBugs(t, rep, map[report.BugType]int{report.LackDurabilityInEpoch: 1})
}

func TestRedundantEpochFence(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.EpochBegin()
		c.Store64(a, 1)
		c.Persist(a, 8) // fence #1 (Fig. 7a)
		c.Store64(a+64, 2)
		c.Persist(a+64, 8) // fence #2: redundant inside the epoch
		c.EpochEnd()
	})
	wantBugs(t, rep, map[report.BugType]int{report.RedundantEpochFence: 1})
}

func TestSingleFenceEpochIsFine(t *testing.T) {
	rep := run(Config{Model: rules.Epoch}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.EpochBegin()
		c.Store64(a, 1)
		c.Store64(a+64, 2)
		c.Flush(a, 8)
		c.Flush(a+64, 8)
		c.Fence()
		c.EpochEnd()
	})
	wantBugs(t, rep, nil)
}

func TestLackOrderingInStrands(t *testing.T) {
	orders := []rules.OrderSpec{{Before: "A", After: "B"}}
	rep := run(Config{Model: rules.Strand, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		b := p.Alloc(64)
		p.RegisterNamed("A", a, 8)
		p.RegisterNamed("B", b, 8)
		// Fig. 7b: strand 0 writes A and B with A-before-B; strand 1
		// persists B while strand 0 is still running.
		s0 := c.StrandBegin()
		s1 := c.StrandBegin()
		s0.Store64(a, 1)
		s0.Store64(b, 2)
		s0.Flush(a, 8)
		s1.Store64(b, 3)
		s1.Flush(b, 8) // persists B while A (strand 0) is not durable
		s1.Fence()
		s1.StrandEnd()
		s0.Fence()
		s0.Flush(b, 8)
		s0.Fence()
		s0.StrandEnd()
	})
	if !rep.Has(report.LackOrderingInStrands) {
		t.Fatalf("strand ordering violation not detected:\n%s", rep.Summary())
	}
}

func TestStrandsWithJoinAreOrdered(t *testing.T) {
	orders := []rules.OrderSpec{{Before: "A", After: "B"}}
	rep := run(Config{Model: rules.Strand, Orders: orders}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		b := p.Alloc(64)
		p.RegisterNamed("A", a, 8)
		p.RegisterNamed("B", b, 8)
		s0 := c.StrandBegin()
		s0.Store64(a, 1)
		s0.Persist(a, 8)
		s0.StrandEnd()
		c.JoinStrand()
		s1 := c.StrandBegin()
		s1.Store64(b, 2)
		s1.Persist(b, 8)
		s1.StrandEnd()
	})
	if rep.Has(report.LackOrderingInStrands) {
		t.Fatalf("joined strands flagged:\n%s", rep.Summary())
	}
}

func TestStrandSpacesAreIndependent(t *testing.T) {
	// Two strands writing and persisting disjoint data cleanly.
	rep := run(Config{Model: rules.Strand}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		b := p.Alloc(64)
		s0 := c.StrandBegin()
		s1 := c.StrandBegin()
		s0.Store64(a, 1)
		s1.Store64(b, 2)
		s0.Flush(a, 8)
		s1.Flush(b, 8)
		s0.Fence()
		s1.Fence()
		s0.StrandEnd()
		s1.StrandEnd()
	})
	wantBugs(t, rep, nil)
}

func TestCrossFailureCheck(t *testing.T) {
	cfg := Config{
		Model:             rules.Strict,
		CrossFailureCheck: func() error { return errors.New("recovered value mismatch") },
	}
	rep := run(cfg, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1)
		c.Persist(a, 8)
	})
	if !rep.Has(report.CrossFailureSemantic) {
		t.Fatalf("cross-failure not reported:\n%s", rep.Summary())
	}
}

func TestArrayOverflowSpillsToTree(t *testing.T) {
	cfg := Config{Model: rules.Strict, ArrayCapacity: 8, Rules: rules.RuleNoDurability}
	p := pmem.New(1 << 16)
	d := New(cfg)
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(1024)
	for i := 0; i < 20; i++ {
		c.Store64(a+uint64(i)*8, uint64(i))
	}
	if d.ArrayLen(0) != 8 {
		t.Errorf("array len = %d, want 8", d.ArrayLen(0))
	}
	if d.TreeLen(0) != 12 {
		t.Errorf("tree len = %d, want 12", d.TreeLen(0))
	}
	if d.Counters().ArraySpills != 12 {
		t.Errorf("spills = %d", d.Counters().ArraySpills)
	}
	// All still lack durability.
	c.Flush(a, 1024)
	c.Fence()
	p.End()
	wantBugs(t, d.Report(), nil)
}

func TestPartialFlushSplits(t *testing.T) {
	// A 16-byte store flushed only in its first half: the second half must
	// still be reported as non-durable.
	p := pmem.New(1 << 16)
	d := New(Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	p.Attach(d)
	// Feed events directly: pmem always flushes whole lines, but detectors
	// accept arbitrary flush ranges (PIN/Valgrind report exact ranges).
	d.HandleEvent(trace.Event{Seq: 1, Kind: trace.KindStore, Addr: 0x100, Size: 16})
	d.HandleEvent(trace.Event{Seq: 2, Kind: trace.KindFlush, Addr: 0x100, Size: 8})
	d.HandleEvent(trace.Event{Seq: 3, Kind: trace.KindFence})
	d.HandleEvent(trace.Event{Seq: 4, Kind: trace.KindEnd})
	rep := d.Report()
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Fatalf("split remainder not tracked:\n%s", rep.Summary())
	}
	b := rep.Bugs[0]
	if b.Addr != 0x108 || b.Size != 8 {
		t.Errorf("remainder range = %#x,+%d; want 0x108,+8", b.Addr, b.Size)
	}
}

func TestCollectiveIntervalFastPath(t *testing.T) {
	// Many stores in one CLF interval persisted by a single covering flush:
	// the interval metadata absorbs the update without touching entries.
	p := pmem.New(1 << 16)
	d := New(Config{Model: rules.Strict})
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(64)
	for i := 0; i < 8; i++ {
		c.Store8(a+uint64(i), byte(i))
	}
	c.Flush(a, 8) // line flush covers all 8 stores
	c.Fence()
	p.End()
	wantBugs(t, d.Report(), nil)
	if d.Report().Counters.Redistributions != 0 {
		t.Errorf("collective path redistributed entries: %+v", d.Report().Counters)
	}
}

func TestMergeThreshold(t *testing.T) {
	cfg := Config{Model: rules.Strict, MergeThreshold: 10, Rules: rules.RuleNoDurability}
	p := pmem.New(1 << 20)
	d := New(cfg)
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(1 << 12)
	// Create many adjacent unflushed records that survive fences.
	for i := 0; i < 64; i++ {
		c.Store8(a+uint64(i), 1)
		c.Fence() // nothing flushed; record moves to tree
	}
	if d.TreeStats(0).Reorgs == 0 {
		t.Errorf("merge never triggered: tree len %d stats %+v", d.TreeLen(0), d.TreeStats(0))
	}
	// Adjacent same-state records must have been coalesced.
	if d.TreeLen(0) > 16 {
		t.Errorf("tree len = %d after merges", d.TreeLen(0))
	}
}

func TestFig11Sampling(t *testing.T) {
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(256)
		c.Store64(a, 1) // never flushed: stays in tree across fences
		for i := 0; i < 4; i++ {
			c.Store64(a+64, uint64(i))
			c.Persist(a+64, 8)
		}
	})
	if rep.Counters.Fences != 4 {
		t.Fatalf("fences = %d", rep.Counters.Fences)
	}
	// Sampling happens at fence arrival: during the first fence interval
	// the never-flushed record still sits in the array (tree = 0); during
	// the remaining three it has migrated to the tree (tree = 1).
	if got := rep.Counters.AvgTreeNodes(); got != 0.75 {
		t.Errorf("avg tree nodes = %v, want 0.75", got)
	}
}

type countingRule struct {
	stores int
	bugged bool
}

func (r *countingRule) Name() string { return "counting" }

func (r *countingRule) OnEvent(ev trace.Event, q Query) {
	if ev.Kind == trace.KindStore {
		r.stores++
		if st, ok := q.Tracked(ev.Strand, ev.Addr); !ok || st.Flushed {
			q.ReportBug(report.Bug{Type: report.NoDurability, Message: "user rule inconsistency"})
			r.bugged = true
		}
	}
}

func TestUserRule(t *testing.T) {
	p := pmem.New(1 << 16)
	d := New(Config{Model: rules.Strict})
	ur := &countingRule{}
	d.AddRule(ur)
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(64)
	c.Store64(a, 1)
	c.Persist(a, 8)
	p.End()
	if ur.stores != 1 {
		t.Errorf("user rule saw %d stores", ur.stores)
	}
	if ur.bugged {
		t.Errorf("user rule query inconsistent with engine state")
	}
}

func TestTrackedQuery(t *testing.T) {
	p := pmem.New(1 << 16)
	d := New(Config{Model: rules.Strict})
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(128)
	c.Store64(a, 1)
	st, ok := d.Tracked(0, a+4)
	if !ok || st.Flushed || !st.InArray || st.Size != 8 {
		t.Fatalf("Tracked after store = %+v %v", st, ok)
	}
	c.Flush(a, 8)
	st, ok = d.Tracked(0, a)
	if !ok || !st.Flushed {
		t.Fatalf("Tracked after flush = %+v %v", st, ok)
	}
	c.Fence()
	if _, ok := d.Tracked(0, a); ok {
		t.Fatalf("still tracked after fence")
	}
	// Unflushed data migrates to the tree at a fence.
	c.Store64(a+64, 2)
	c.Fence()
	st, ok = d.Tracked(0, a+64)
	if !ok || st.InArray {
		t.Fatalf("Tracked in tree = %+v %v", st, ok)
	}
}

func TestReportDedupBySite(t *testing.T) {
	// The same buggy site executed many times is one bug.
	rep := run(Config{Model: rules.Strict}, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(4096)
		site := trace.RegisterSite("hot-bug-site")
		c.SetSite(site)
		for i := 0; i < 50; i++ {
			c.Store64(a+uint64(i)*64, uint64(i)) // 50 locations never persisted
		}
	})
	if got := rep.CountByType()[report.NoDurability]; got != 1 {
		t.Errorf("site dedup failed: %d bugs", got)
	}
}

func TestDetectorNameAndConfig(t *testing.T) {
	d := New(Config{Model: rules.Epoch})
	if d.Name() != "pmdebugger" {
		t.Errorf("Name = %q", d.Name())
	}
	cfg := d.Config()
	if cfg.ArrayCapacity != DefaultArrayCapacity || cfg.MergeThreshold != DefaultMergeThreshold {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Rules != rules.Default(rules.Epoch) {
		t.Errorf("default rules not applied")
	}
}

func TestReportIdempotent(t *testing.T) {
	p := pmem.New(1 << 12)
	d := New(Config{Model: rules.Strict})
	p.Attach(d)
	c := p.Ctx()
	a := p.Alloc(64)
	c.Store64(a, 1)
	p.End()
	n1 := d.Report().Len()
	n2 := d.Report().Len()
	if n1 != n2 || n1 != 1 {
		t.Errorf("Report not idempotent: %d then %d", n1, n2)
	}
}
