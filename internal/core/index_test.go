package core

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// replayPair runs the same event stream through an indexed detector and a
// DisableIndex (reference scan) detector and returns both reports.
func replayPair(t *testing.T, cfg Config, evs []trace.Event) (idx, scan *report.Report) {
	t.Helper()
	cfgScan := cfg
	cfgScan.DisableIndex = true
	di, ds := New(cfg), New(cfgScan)
	for _, ev := range evs {
		di.HandleEvent(ev)
		ds.HandleEvent(ev)
	}
	return di.Report(), ds.Report()
}

// requireIdentical asserts the two reports render byte-identically.
func requireIdentical(t *testing.T, idx, scan *report.Report, label string) {
	t.Helper()
	if got, want := idx.Summary(), scan.Summary(); got != want {
		t.Fatalf("%s: indexed and scan reports differ\n--- indexed ---\n%s\n--- scan ---\n%s",
			label, got, want)
	}
}

// streamFlavor selects which model markers a generated stream includes.
type streamFlavor int

const (
	flavorStrict  streamFlavor = iota
	flavorRegions              // strict + selective registration with purges
	flavorEpoch
	flavorStrand
)

// genFlavorStream produces a deterministic pseudo-random event stream in a narrow
// address window so stores, flushes, purges and splits overlap heavily —
// the regime where the indexed and scan paths could plausibly diverge.
func genFlavorStream(rng *rand.Rand, flavor streamFlavor, n int) []trace.Event {
	const base = 0x1000_0000
	const window = 4 << 10
	var evs []trace.Event
	var seq uint64
	strand := int32(0)
	emit := func(kind trace.Kind, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size, Strand: strand})
	}
	addr := func() uint64 { return base + uint64(rng.Intn(window)) }
	if flavor == flavorRegions {
		emit(trace.KindRegister, base, window)
	}
	epochOpen, strandOpen := false, false
	for i := 0; i < n; i++ {
		switch rng.Intn(20) {
		case 0, 1, 2, 3, 4, 5, 6:
			emit(trace.KindStore, addr(), uint64(rng.Intn(24))+1)
		case 7, 8:
			// Store crossing cache lines.
			emit(trace.KindStore, addr(), 64+uint64(rng.Intn(64)))
		case 9, 10, 11:
			// Aligned line flush.
			emit(trace.KindFlush, addr()&^63, 64)
		case 12, 13:
			// Arbitrary (possibly splitting) flush.
			emit(trace.KindFlush, addr(), uint64(rng.Intn(96))+1)
		case 14:
			// Zero-size flush: exercises the empty-range overlap quirk.
			emit(trace.KindFlush, addr(), 0)
		case 15, 16:
			emit(trace.KindFence, 0, 0)
		case 17:
			switch flavor {
			case flavorRegions:
				// Unregister part of the window: purges live bookkeeping.
				emit(trace.KindUnregister, addr(), uint64(rng.Intn(256))+1)
			case flavorEpoch:
				if epochOpen {
					emit(trace.KindEpochEnd, 0, 0)
				} else {
					emit(trace.KindEpochBegin, 0, 0)
				}
				epochOpen = !epochOpen
			case flavorStrand:
				if strandOpen {
					emit(trace.KindStrandEnd, 0, 0)
					strand = 0
					strandOpen = false
				} else {
					strand = int32(rng.Intn(3) + 1)
					emit(trace.KindStrandBegin, 0, 0)
					strandOpen = true
				}
			default:
				emit(trace.KindStore, addr(), 8)
			}
		case 18:
			if flavor == flavorRegions {
				// Re-register so later events are tracked again.
				emit(trace.KindRegister, addr()&^255, 512)
			} else {
				emit(trace.KindFlush, addr()&^63, 64)
			}
		case 19:
			// Dispersed store far from the window: keeps old intervals
			// reachable so the MRU probe's negative filter is exercised.
			emit(trace.KindStore, base+uint64(window)*4+uint64(rng.Intn(window)), 8)
		}
	}
	if epochOpen {
		emit(trace.KindEpochEnd, 0, 0)
	}
	if strandOpen {
		emit(trace.KindStrandEnd, 0, 0)
	}
	emit(trace.KindEnd, 0, 0)
	return evs
}

func flavorConfig(flavor streamFlavor) Config {
	switch flavor {
	case flavorRegions:
		return Config{Model: rules.Strict, RequireRegistration: true}
	case flavorEpoch:
		return Config{Model: rules.Epoch}
	case flavorStrand:
		return Config{Model: rules.Strand}
	default:
		return Config{Model: rules.Strict}
	}
}

// TestIndexedMatchesScanRandom is the property test for the tentpole
// invariant: for random overlapping event streams across every persistency
// model — including purges (Unregister_pmem), epoch-end markReported sweeps
// and per-strand spaces — the indexed detector's report is byte-identical
// to the reference scan detector's.
func TestIndexedMatchesScanRandom(t *testing.T) {
	flavors := []struct {
		name   string
		flavor streamFlavor
	}{
		{"strict", flavorStrict},
		{"regions", flavorRegions},
		{"epoch", flavorEpoch},
		{"strand", flavorStrand},
	}
	shapes := []struct {
		name     string
		capacity int
		merge    int
	}{
		{"default", 0, 0},
		{"tiny-array", 16, 2}, // force spills, redistribution and merges
	}
	for _, fl := range flavors {
		for _, sh := range shapes {
			for seed := int64(1); seed <= 8; seed++ {
				rng := rand.New(rand.NewSource(seed * 7919))
				evs := genFlavorStream(rng, fl.flavor, 600)
				cfg := flavorConfig(fl.flavor)
				cfg.ArrayCapacity = sh.capacity
				cfg.MergeThreshold = sh.merge
				idx, scan := replayPair(t, cfg, evs)
				requireIdentical(t, idx, scan, fl.name+"/"+sh.name)
			}
		}
	}
}

// TestPurgeTightensIntervalBounds checks the stale-bounds satellite: after a
// purge empties every live entry of a CLF interval, the interval's
// collective range must shrink so the prefilter skips it. A flush over the
// purged region then persists nothing — and both paths agree.
func TestPurgeTightensIntervalBounds(t *testing.T) {
	mk := func(disable bool) *Detector {
		return New(Config{Model: rules.Strict, RequireRegistration: true, DisableIndex: disable})
	}
	evs := []trace.Event{
		{Seq: 1, Kind: trace.KindRegister, Addr: 0x1000, Size: 0x2000},
		{Seq: 2, Kind: trace.KindStore, Addr: 0x1000, Size: 8},
		{Seq: 3, Kind: trace.KindStore, Addr: 0x2000, Size: 8},
		{Seq: 4, Kind: trace.KindUnregister, Addr: 0x1000, Size: 8},
	}
	var sums []string
	for _, disable := range []bool{false, true} {
		d := mk(disable)
		for _, ev := range evs {
			d.HandleEvent(ev)
		}
		// The purge emptied the interval's only entry at 0x1000; its bounds
		// must no longer cover [0x1000, 0x1008).
		m := &d.space0.meta[0]
		if m.rng().ContainsAddr(0x1000) {
			t.Fatalf("disable=%v: interval bounds %v still cover purged entry", disable, m.rng())
		}
		if !m.rng().ContainsAddr(0x2000) {
			t.Fatalf("disable=%v: interval bounds %v lost live entry", disable, m.rng())
		}
		// Flushing a line inside the purged region persists nothing: the
		// ghost entry must not satisfy the flush.
		d.HandleEvent(trace.Event{Seq: 5, Kind: trace.KindFlush, Addr: 0x1000 &^ 63, Size: 64})
		d.HandleEvent(trace.Event{Seq: 6, Kind: trace.KindEnd})
		rep := d.Report()
		if !rep.Has(report.FlushNothing) {
			t.Fatalf("disable=%v: expected flush-nothing over fully purged region\n%s",
				disable, rep.Summary())
		}
		sums = append(sums, rep.Summary())
	}
	if sums[0] != sums[1] {
		t.Fatalf("indexed and scan reports differ\n--- indexed ---\n%s\n--- scan ---\n%s",
			sums[0], sums[1])
	}
}

// TestPurgeAllEntriesEmptiesBounds covers the degenerate tightening case: a
// purge that zeroes every entry of an interval leaves an empty collective
// range, so rng() is Range{} and the interval is skipped everywhere.
func TestPurgeAllEntriesEmptiesBounds(t *testing.T) {
	for _, disable := range []bool{false, true} {
		d := New(Config{Model: rules.Strict, RequireRegistration: true, DisableIndex: disable})
		d.HandleEvent(trace.Event{Seq: 1, Kind: trace.KindRegister, Addr: 0x1000, Size: 0x1000})
		d.HandleEvent(trace.Event{Seq: 2, Kind: trace.KindStore, Addr: 0x1100, Size: 16})
		d.HandleEvent(trace.Event{Seq: 3, Kind: trace.KindStore, Addr: 0x1200, Size: 16})
		d.HandleEvent(trace.Event{Seq: 4, Kind: trace.KindUnregister, Addr: 0x1000, Size: 0x1000})
		m := &d.space0.meta[0]
		if got := m.rng(); got != (intervals.Range{}) {
			t.Fatalf("disable=%v: fully purged interval has non-empty bounds %v", disable, got)
		}
	}
}

// TestIndexFastPathCounters checks the new observability counters: a
// locality-friendly stream must take the MRU probe, an adversarial one must
// fall through to the line index, and the scan fallback must report zero for
// both.
func TestIndexFastPathCounters(t *testing.T) {
	local := func() []trace.Event {
		var evs []trace.Event
		seq := uint64(0)
		for i := 0; i < 64; i++ {
			a := uint64(0x1000_0000 + i*64)
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: trace.KindStore, Addr: a, Size: 8})
			seq++
			evs = append(evs, trace.Event{Seq: seq, Kind: trace.KindFlush, Addr: a, Size: 64})
		}
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: trace.KindFence})
		return evs
	}()

	d := New(Config{Model: rules.Strict})
	for _, ev := range local {
		d.HandleEvent(ev)
	}
	if c := d.Counters(); c.MRUProbeHits == 0 {
		t.Fatalf("locality stream took no MRU fast path: %+v", c)
	}

	// Re-flushing old lines after many intervening intervals defeats the
	// MRU probe and must be answered by the line index instead.
	d = New(Config{Model: rules.Strict})
	var seq uint64
	emit := func(kind trace.Kind, addr, size uint64) {
		seq++
		d.HandleEvent(trace.Event{Seq: seq, Kind: kind, Addr: addr, Size: size})
	}
	for i := 0; i < 32; i++ {
		emit(trace.KindStore, uint64(0x1000_0000+i*64), 8)
		emit(trace.KindFlush, uint64(0x1000_0000+i*64), 64)
	}
	for i := 0; i < 32; i++ {
		emit(trace.KindFlush, uint64(0x1000_0000+i*64), 64) // redundant, far from MRU
	}
	if c := d.Counters(); c.IndexLineHits == 0 {
		t.Fatalf("dispersed re-flush stream never hit the line index: %+v", c)
	}

	ds := New(Config{Model: rules.Strict, DisableIndex: true})
	for _, ev := range local {
		ds.HandleEvent(ev)
	}
	if c := ds.Counters(); c.MRUProbeHits != 0 || c.IndexLineHits != 0 || c.IndexLineMisses != 0 {
		t.Fatalf("scan fallback touched index counters: %+v", c)
	}
}

// TestFenceArrayBulkRedistribution checks that fence-time redistribution
// through avl.InsertAll moves exactly the unflushed entries to the tree and
// counts them identically to the per-item reference path.
func TestFenceArrayBulkRedistribution(t *testing.T) {
	var treeLens [2]int
	var redists [2]uint64
	for mode, disable := range []bool{false, true} {
		d := New(Config{Model: rules.Strict, MergeThreshold: -1, DisableIndex: disable})
		var seq uint64
		for i := 0; i < 40; i++ {
			seq++
			d.HandleEvent(trace.Event{Seq: seq, Kind: trace.KindStore,
				Addr: uint64(0x2000_0000 + i*128), Size: 8})
		}
		// Flush only every fourth line: the rest redistribute at the fence.
		for i := 0; i < 40; i += 4 {
			seq++
			d.HandleEvent(trace.Event{Seq: seq, Kind: trace.KindFlush,
				Addr: uint64(0x2000_0000 + i*128), Size: 64})
		}
		seq++
		d.HandleEvent(trace.Event{Seq: seq, Kind: trace.KindFence})
		treeLens[mode] = d.space0.tree.Len()
		redists[mode] = d.Counters().Redistributions
	}
	if treeLens[0] != 30 || redists[0] != 30 {
		t.Fatalf("indexed: got tree=%d redistributions=%d, want 30/30", treeLens[0], redists[0])
	}
	if treeLens[0] != treeLens[1] || redists[0] != redists[1] {
		t.Fatalf("indexed (%d/%d) and scan (%d/%d) redistribution disagree",
			treeLens[0], redists[0], treeLens[1], redists[1])
	}
}
