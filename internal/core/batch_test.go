package core

import (
	"testing"

	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

func TestHandleBatchMatchesHandleEvent(t *testing.T) {
	rec := recordStrandTrace(t, 50)
	for _, cfg := range []Config{
		{Model: rules.Strand},
		{Model: rules.Epoch},
		{Model: rules.Strict},
		{Model: rules.Strand, ArrayCapacity: 4}, // force array spills inside store runs
	} {
		seq := sequentialReport(rec.Events, cfg)
		d := New(cfg)
		trace.ReplayEvents(rec.Events, d) // takes the HandleBatch fast path
		assertSameReport(t, seq, d.Report(), "batch/"+cfg.Model.String())
	}
}

func TestHandleBatchRequireRegistration(t *testing.T) {
	// With selective registration the per-event filter is not loop-invariant
	// and the batch path must defer to HandleEvent.
	var evs []trace.Event
	seq := uint64(0)
	emit := func(k trace.Kind, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Kind: k, Addr: addr, Size: size})
	}
	emit(trace.KindRegister, 0x1000, 0x100)
	emit(trace.KindStore, 0x1000, 8) // tracked, never persisted
	emit(trace.KindStore, 0x9000, 8) // outside every registered region
	emit(trace.KindEnd, 0, 0)

	cfg := Config{Model: rules.Strict, RequireRegistration: true}
	want := sequentialReport(evs, cfg)
	d := New(cfg)
	d.HandleBatch(evs)
	assertSameReport(t, want, d.Report(), "require-registration")
	if got := d.Report().Len(); got != 1 {
		t.Fatalf("got %d bugs, want 1 (only the registered store)", got)
	}
}

// eventTally counts every event it observes.
type eventTally struct{ events int }

func (r *eventTally) Name() string                    { return "event-tally" }
func (r *eventTally) OnEvent(ev trace.Event, q Query) { r.events++ }

func TestHandleBatchRunsUserRules(t *testing.T) {
	rec := recordStrandTrace(t, 10)
	d := New(Config{Model: rules.Strand})
	rule := &eventTally{}
	d.AddRule(rule)
	trace.ReplayEvents(rec.Events, d)
	if rule.events != rec.Len() {
		t.Fatalf("user rule saw %d events, want %d", rule.events, rec.Len())
	}
}
