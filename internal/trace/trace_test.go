package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindStore:       "store",
		KindFlush:       "clf",
		KindFence:       "fence",
		KindEpochBegin:  "epoch-begin",
		KindEpochEnd:    "epoch-end",
		KindStrandBegin: "strand-begin",
		KindStrandEnd:   "strand-end",
		KindJoinStrand:  "join-strand",
		KindRegister:    "register",
		KindUnregister:  "unregister",
		KindTxLogAdd:    "tx-log-add",
		KindEnd:         "end",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestFlushKindString(t *testing.T) {
	cases := map[FlushKind]string{CLWB: "clwb", CLFLUSH: "clflush", CLFLUSHOPT: "clflushopt"}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("FlushKind(%d).String() = %q, want %q", f, got, want)
		}
	}
	if got := FlushKind(9).String(); got != "flush(9)" {
		t.Errorf("unknown flush kind = %q", got)
	}
}

func TestEventEndAndOverlaps(t *testing.T) {
	ev := Event{Addr: 100, Size: 8}
	if ev.End() != 108 {
		t.Fatalf("End() = %d, want 108", ev.End())
	}
	tests := []struct {
		addr, size uint64
		want       bool
	}{
		{100, 8, true},
		{107, 1, true},
		{108, 8, false},
		{92, 8, false},
		{92, 9, true},
		{0, 1000, true},
	}
	for _, tc := range tests {
		if got := ev.Overlaps(tc.addr, tc.size); got != tc.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", tc.addr, tc.size, got, tc.want)
		}
	}
}

func TestEventString(t *testing.T) {
	s := RegisterSite("test.go:1")
	store := Event{Seq: 3, Kind: KindStore, Addr: 0x40, Size: 8, Site: s}
	if !strings.Contains(store.String(), "store") || !strings.Contains(store.String(), "test.go:1") {
		t.Errorf("store string = %q", store)
	}
	flush := Event{Seq: 4, Kind: KindFlush, Flush: CLWB, Addr: 0x40, Size: 64}
	if !strings.Contains(flush.String(), "clwb") {
		t.Errorf("flush string = %q", flush)
	}
	fence := Event{Seq: 5, Kind: KindFence}
	if !strings.Contains(fence.String(), "fence") {
		t.Errorf("fence string = %q", fence)
	}
}

func TestRegisterSiteInterning(t *testing.T) {
	a := RegisterSite("siteA")
	b := RegisterSite("siteB")
	a2 := RegisterSite("siteA")
	if a != a2 {
		t.Errorf("same name interned to different ids: %d vs %d", a, a2)
	}
	if a == b {
		t.Errorf("different names interned to same id %d", a)
	}
	if SiteName(a) != "siteA" || SiteName(b) != "siteB" {
		t.Errorf("SiteName round trip failed: %q %q", SiteName(a), SiteName(b))
	}
	if SiteName(0) != "?" {
		t.Errorf("zero site = %q, want ?", SiteName(0))
	}
	if got := SiteName(1 << 30); !strings.HasPrefix(got, "site(") {
		t.Errorf("unknown site = %q", got)
	}
}

func TestRegisterSiteConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	ids := make([]SiteID, 64)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = RegisterSite(fmt.Sprintf("conc-%d", i%8))
		}(i)
	}
	wg.Wait()
	for i := range ids {
		for j := range ids {
			same := i%8 == j%8
			if (ids[i] == ids[j]) != same {
				t.Fatalf("interning mismatch: ids[%d]=%d ids[%d]=%d", i, ids[i], j, ids[j])
			}
		}
	}
}

func TestHandlerFuncAndMultiHandler(t *testing.T) {
	var got []uint64
	h1 := HandlerFunc(func(ev Event) { got = append(got, ev.Seq) })
	h2 := HandlerFunc(func(ev Event) { got = append(got, ev.Seq*10) })
	m := MultiHandler{h1, h2}
	m.HandleEvent(Event{Seq: 7})
	if !reflect.DeepEqual(got, []uint64{7, 70}) {
		t.Errorf("fan-out order = %v", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(4)
	evs := []Event{
		{Seq: 1, Kind: KindStore, Addr: 8, Size: 8},
		{Seq: 2, Kind: KindFlush, Addr: 0, Size: 64},
		{Seq: 3, Kind: KindFence},
		{Seq: 4, Kind: KindStore, Addr: 16, Size: 4},
	}
	for _, ev := range evs {
		r.HandleEvent(ev)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	stores, flushes, fences := r.Counts()
	if stores != 2 || flushes != 1 || fences != 1 {
		t.Errorf("Counts = %d,%d,%d", stores, flushes, fences)
	}
	if r.Count(KindStore) != 2 || r.Count(KindEnd) != 0 {
		t.Errorf("Count mismatch")
	}
	var replayed []Event
	r.Replay(HandlerFunc(func(ev Event) { replayed = append(replayed, ev) }))
	if !reflect.DeepEqual(replayed, evs) {
		t.Errorf("replay mismatch: %v vs %v", replayed, evs)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Reset did not clear")
	}
}

func TestTraceEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	evs := make([]Event, 500)
	for i := range evs {
		evs[i] = Event{
			Seq:    uint64(i),
			Addr:   rng.Uint64() >> 16,
			Size:   uint64(rng.Intn(256)),
			Kind:   Kind(rng.Intn(int(KindEnd) + 1)),
			Flush:  FlushKind(rng.Intn(3)),
			Strand: int32(rng.Intn(8)),
			Thread: int32(rng.Intn(8)),
			Site:   SiteID(rng.Intn(100)),
		}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch (%d vs %d events)", len(got), len(evs))
	}
}

func TestTraceEncodingEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d", len(got))
	}
}

func TestTraceEncodingBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// Property: encoding then decoding any single event is the identity.
func TestQuickEventEncodeDecode(t *testing.T) {
	f := func(seq, addr, size uint64, kind, flush uint8, strand, thread int32, site uint32) bool {
		ev := Event{
			Seq: seq, Addr: addr, Size: size,
			Kind: Kind(kind % 12), Flush: FlushKind(flush % 3),
			Strand: strand, Thread: thread, Site: SiteID(site),
		}
		var rec [recordSize]byte
		putEvent(rec[:], ev)
		return getEvent(rec[:]) == ev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlaps is symmetric in the two ranges.
func TestQuickOverlapsSymmetric(t *testing.T) {
	f := func(a1, s1, a2, s2 uint32) bool {
		e1 := Event{Addr: uint64(a1), Size: uint64(s1%1024) + 1}
		e2 := Event{Addr: uint64(a2), Size: uint64(s2%1024) + 1}
		return e1.Overlaps(e2.Addr, e2.Size) == e2.Overlaps(e1.Addr, e1.Size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
