package trace

import (
	"reflect"
	"testing"
)

// mkStrandTrace builds a partitionable strand trace: nStrands strands, each
// with a begin/store/flush/fence/end section, interleaved round-robin.
func mkStrandTrace(nStrands int, withJoins bool) []Event {
	var evs []Event
	seq := uint64(0)
	emit := func(k Kind, strand int32, addr, size uint64) {
		seq++
		evs = append(evs, Event{Seq: seq, Kind: k, Strand: strand, Addr: addr, Size: size})
	}
	emit(KindRegister, 0, 0x1000, 0x10000)
	for round := 0; round < 3; round++ {
		for s := 1; s <= nStrands; s++ {
			strand := int32(s)
			addr := 0x1000 + uint64(s)*256 + uint64(round)*64
			emit(KindStrandBegin, strand, 0, 0)
			emit(KindStore, strand, addr, 8)
			emit(KindFlush, strand, addr, 64)
			emit(KindFence, strand, 0, 0)
			emit(KindStrandEnd, strand, 0, 0)
		}
		if withJoins {
			emit(KindJoinStrand, 0, 0, 0)
		}
	}
	emit(KindEnd, 0, 0, 0)
	return evs
}

func TestPartitionByStrandRouting(t *testing.T) {
	evs := mkStrandTrace(8, true)
	parts, err := PartitionByStrand(evs, PartitionOptions{Shards: 3, DropJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		var lastSeq uint64
		for _, ev := range p.Events {
			if ev.Seq <= lastSeq {
				t.Fatalf("shard %d: events out of order (%d after %d)", p.Shard, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			switch ev.Kind {
			case KindRegister, KindUnregister:
				continue // broadcast: appears in every shard
			case KindJoinStrand, KindEnd:
				t.Fatalf("shard %d: kind %s should have been dropped", p.Shard, ev.Kind)
			}
			if got := int(uint32(ev.Strand) % 3); got != p.Shard {
				t.Fatalf("strand %d event landed in shard %d", ev.Strand, p.Shard)
			}
			total++
		}
		if p.Events[0].Kind != KindRegister {
			t.Fatalf("shard %d: register event not broadcast first", p.Shard)
		}
	}
	// All strand-local events accounted for exactly once.
	want := 0
	for _, ev := range evs {
		switch ev.Kind {
		case KindStore, KindFlush, KindFence, KindStrandBegin, KindStrandEnd:
			want++
		}
	}
	if total != want {
		t.Fatalf("routed %d strand-local events, want %d", total, want)
	}
}

func TestPartitionByStrandRejectsGlobalKinds(t *testing.T) {
	base := mkStrandTrace(2, false)
	for _, k := range []Kind{KindEpochBegin, KindEpochEnd, KindTxLogAdd} {
		evs := append(append([]Event{}, base...), Event{Seq: 9999, Kind: k})
		if _, err := PartitionByStrand(evs, PartitionOptions{Shards: 2, DropJoins: true}); err == nil {
			t.Errorf("kind %s: partitioning should fail", k)
		}
	}
	// Joins are rejected unless explicitly dropped.
	joined := mkStrandTrace(2, true)
	if _, err := PartitionByStrand(joined, PartitionOptions{Shards: 2}); err == nil {
		t.Error("joins without DropJoins: partitioning should fail")
	}
	if !PartitionSafe(joined, PartitionOptions{DropJoins: true}) {
		t.Error("joins with DropJoins: trace should be partition-safe")
	}
}

func TestPartitionByStrandOneShardPerStrand(t *testing.T) {
	evs := mkStrandTrace(4, false)
	parts, err := PartitionByStrand(evs, PartitionOptions{Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions, want 4 (one per strand)", len(parts))
	}
	for i := 1; i < len(parts); i++ {
		if parts[i-1].Shard >= parts[i].Shard {
			t.Fatalf("partitions not in ascending shard order: %d then %d",
				parts[i-1].Shard, parts[i].Shard)
		}
	}
}

func TestParallelReplayDeliversEveryEvent(t *testing.T) {
	evs := mkStrandTrace(16, true)
	handlers, err := ParallelReplay(evs, 4, PartitionOptions{Shards: 4, DropJoins: true},
		func(p Partition) Handler { return NewRecorder(len(p.Events)) })
	if err != nil {
		t.Fatal(err)
	}
	// Re-merging the shard recordings by Seq must reproduce the original
	// strand-local subsequence.
	var merged []Event
	for _, h := range handlers {
		rec := h.(*Recorder)
		merged = append(merged, rec.Events...)
	}
	seen := map[uint64]int{}
	for _, ev := range merged {
		seen[ev.Seq]++
	}
	for _, ev := range evs {
		switch ev.Kind {
		case KindStore, KindFlush, KindFence, KindStrandBegin, KindStrandEnd:
			if seen[ev.Seq] != 1 {
				t.Fatalf("event %v delivered %d times, want 1", ev, seen[ev.Seq])
			}
		case KindRegister:
			if seen[ev.Seq] != len(handlers) {
				t.Fatalf("register event broadcast to %d shards, want %d", seen[ev.Seq], len(handlers))
			}
		}
	}
}

// batchCounter records batch boundaries to verify the batched path is used.
type batchCounter struct {
	events  []Event
	batches int
}

func (b *batchCounter) HandleEvent(ev Event) { b.events = append(b.events, ev) }
func (b *batchCounter) HandleBatch(evs []Event) {
	b.batches++
	b.events = append(b.events, evs...)
}

func TestReplayBatched(t *testing.T) {
	rec := NewRecorder(0)
	for i := 0; i < DefaultBatchSize*2+17; i++ {
		rec.HandleEvent(Event{Seq: uint64(i + 1), Kind: KindStore, Addr: uint64(i), Size: 1})
	}
	bc := &batchCounter{}
	rec.ReplayBatched(bc)
	if bc.batches != 3 {
		t.Fatalf("got %d batches, want 3", bc.batches)
	}
	if !reflect.DeepEqual(bc.events, rec.Events) {
		t.Fatal("batched replay did not deliver the identical stream")
	}
	// Non-batch handlers fall back to per-event delivery.
	var plain []Event
	rec.ReplayBatched(HandlerFunc(func(ev Event) { plain = append(plain, ev) }))
	if !reflect.DeepEqual(plain, rec.Events) {
		t.Fatal("fallback replay did not deliver the identical stream")
	}
}

func TestRecorderHandleBatch(t *testing.T) {
	src := NewRecorder(0)
	for i := 0; i < 100; i++ {
		src.HandleEvent(Event{Seq: uint64(i + 1), Kind: KindFlush})
	}
	dst := NewRecorder(0)
	src.ReplayBatched(dst)
	if !reflect.DeepEqual(dst.Events, src.Events) {
		t.Fatal("recorder-to-recorder batched replay mismatch")
	}
}
