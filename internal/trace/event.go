// Package trace defines the persistent-memory instruction event model that
// connects instrumented PM programs to bug detectors.
//
// In the paper, Valgrind intercepts memory store, cache-line flush (CLWB,
// CLFLUSH, CLFLUSHOPT) and fence (SFENCE) instructions and invokes a callback
// per instruction. Here the simulated PM substrate (package pmem) emits the
// same callbacks as trace.Events. A detector is anything that implements
// Handler; traces can also be recorded and replayed so that the same
// instruction stream can be fed to several detectors for fair comparison.
package trace

import "fmt"

// Kind identifies the instrumented instruction or program marker an Event
// carries.
type Kind uint8

// Event kinds. Store, Flush and Fence are the three fundamental operations
// the paper characterizes (§3); the remaining kinds are the program markers
// used by the persistency-model extensions (§5) and by bug rules.
const (
	// KindStore is a memory store to a registered PM location.
	KindStore Kind = iota
	// KindFlush is a cache-line writeback (CLF): CLWB, CLFLUSH or CLFLUSHOPT.
	KindFlush
	// KindFence is an ordering fence (SFENCE). It guarantees completion of
	// prior writebacks.
	KindFence
	// KindEpochBegin marks the start of an epoch section (TX_BEGIN).
	KindEpochBegin
	// KindEpochEnd marks the end of an epoch section (TX_END).
	KindEpochEnd
	// KindStrandBegin marks the start of a strand (NewStrand).
	KindStrandBegin
	// KindStrandEnd marks the end of a strand.
	KindStrandEnd
	// KindJoinStrand establishes explicit persist ordering across strands.
	KindJoinStrand
	// KindRegister registers a PM region for debugging (Register_pmem).
	KindRegister
	// KindUnregister removes a PM region from debugging.
	KindUnregister
	// KindTxLogAdd records an undo-log append for a data object inside a
	// logging-based transaction. Used by the redundant-logging rule (§5.2).
	KindTxLogAdd
	// KindEnd marks the end of the program; detectors run their final checks
	// (e.g. the no-durability-guarantee rule, §4.5).
	KindEnd
)

// String returns the conventional mnemonic for the event kind.
func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindFlush:
		return "clf"
	case KindFence:
		return "fence"
	case KindEpochBegin:
		return "epoch-begin"
	case KindEpochEnd:
		return "epoch-end"
	case KindStrandBegin:
		return "strand-begin"
	case KindStrandEnd:
		return "strand-end"
	case KindJoinStrand:
		return "join-strand"
	case KindRegister:
		return "register"
	case KindUnregister:
		return "unregister"
	case KindTxLogAdd:
		return "tx-log-add"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FlushKind distinguishes the three cache writeback instructions. The
// detectors in this repository treat them identically for durability (all
// become durable at the next fence) but record the kind for reports.
type FlushKind uint8

// Writeback instruction variants.
const (
	CLWB FlushKind = iota
	CLFLUSH
	CLFLUSHOPT
)

// String returns the instruction mnemonic.
func (f FlushKind) String() string {
	switch f {
	case CLWB:
		return "clwb"
	case CLFLUSH:
		return "clflush"
	case CLFLUSHOPT:
		return "clflushopt"
	default:
		return fmt.Sprintf("flush(%d)", uint8(f))
	}
}

// Event is one instrumented instruction or program marker.
//
// Addr/Size describe the affected address range: the stored bytes for
// KindStore, the flushed range for KindFlush (the substrate always flushes
// whole cache lines, but detectors accept arbitrary ranges), the registered
// region for KindRegister, and the logged object for KindTxLogAdd.
//
// Strand identifies the strand section the instruction comes from; 0 is the
// implicit default strand. Thread identifies the issuing application thread.
// Seq is a global sequence number assigned by the emitter.
type Event struct {
	Seq    uint64
	Addr   uint64
	Size   uint64
	Kind   Kind
	Flush  FlushKind
	Strand int32
	Thread int32
	Site   SiteID
}

// End returns the first address past the event's range.
func (e Event) End() uint64 { return e.Addr + e.Size }

// Overlaps reports whether the event's range intersects [addr, addr+size).
func (e Event) Overlaps(addr, size uint64) bool {
	return e.Addr < addr+size && addr < e.Addr+e.Size
}

// String formats the event compactly for logs and test failures.
func (e Event) String() string {
	switch e.Kind {
	case KindStore, KindRegister, KindUnregister, KindTxLogAdd:
		return fmt.Sprintf("#%d %s [%#x,+%d) strand=%d site=%s",
			e.Seq, e.Kind, e.Addr, e.Size, e.Strand, e.Site)
	case KindFlush:
		return fmt.Sprintf("#%d %s [%#x,+%d) strand=%d",
			e.Seq, e.Flush, e.Addr, e.Size, e.Strand)
	default:
		return fmt.Sprintf("#%d %s strand=%d", e.Seq, e.Kind, e.Strand)
	}
}

// Handler consumes the instrumented instruction stream. Implementations
// include every detector in internal/core and internal/baselines, the
// characterization pass in internal/stats, and the Recorder in this package.
//
// HandleEvent is invoked synchronously from the instrumented program;
// handlers that need cross-thread safety (multi-threaded workloads) receive
// events already serialized by the emitting Pool.
type Handler interface {
	HandleEvent(ev Event)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Event)

// HandleEvent calls f(ev).
func (f HandlerFunc) HandleEvent(ev Event) { f(ev) }

// MultiHandler fans an event out to each handler in order.
type MultiHandler []Handler

// HandleEvent delivers ev to every handler in the slice.
func (m MultiHandler) HandleEvent(ev Event) {
	for _, h := range m {
		h.HandleEvent(ev)
	}
}

// HandleBatch implements BatchHandler: children that implement the batch
// fast path receive the slice whole, the rest get per-event delivery. A tee
// (e.g. record + detect on a trace server) therefore keeps every
// batch-capable consumer on the fast path instead of silently degrading
// the whole fan-out to per-event dispatch, which is what happened when
// MultiHandler implemented only HandleEvent.
func (m MultiHandler) HandleBatch(evs []Event) {
	for _, h := range m {
		if bh, ok := h.(BatchHandler); ok {
			bh.HandleBatch(evs)
		} else {
			for _, ev := range evs {
				h.HandleEvent(ev)
			}
		}
	}
}

var _ BatchHandler = (MultiHandler)(nil)
