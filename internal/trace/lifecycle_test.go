package trace

import (
	"strings"
	"testing"
	"time"
)

// Lifecycle regression tests for the PR-6 pipeline hardening: Close is
// idempotent (covered in pipeline_test.go), Sync after Close returns
// instead of hanging, producer calls after Close fail loudly, and a
// handler panic on the consumer goroutine poisons delivery instead of
// deadlocking barriers. All run under -race in CI.

func TestPipelineSyncAfterCloseReturns(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		h := &collectHandler{}
		p := NewPipelineOpts(h, PipelineOptions{Lazy: lazy})
		p.HandleBatch(mkEvents(10))
		p.Close()
		done := make(chan struct{})
		go func() {
			p.Sync() // must return immediately, not hang or panic
			p.Sync()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("lazy=%v: Sync after Close hung", lazy)
		}
		checkStream(t, h.events, 10)
	}
}

func TestPipelineUseAfterClosePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s after Close did not panic", name)
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "after Close") {
				t.Fatalf("%s after Close panicked with %v, want a use-after-Close message", name, r)
			}
		}()
		f()
	}
	p := NewPipeline(&collectHandler{})
	p.HandleEvent(Event{Seq: 1})
	p.Close()
	mustPanic("Slot", func() { p.Slot() })
	mustPanic("HandleEvent", func() { p.HandleEvent(Event{Seq: 2}) })
	mustPanic("HandleBatch", func() { p.HandleBatch(mkEvents(3)) })
}

// panicAfterHandler consumes events normally until it has seen limit of
// them, then panics — the misbehaving-detector stand-in.
type panicAfterHandler struct {
	seen  int
	limit int
}

func (h *panicAfterHandler) HandleEvent(ev Event) {
	h.seen++
	if h.seen > h.limit {
		panic("detector exploded")
	}
}

func TestPipelineHandlerPanicDoesNotDeadlock(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		h := &panicAfterHandler{limit: DefaultBatchSize / 2}
		p := NewPipelineOpts(h, PipelineOptions{Depth: 2, Lazy: lazy})
		// Several times the ring's capacity: if the consumer stopped
		// recycling slabs after the panic, the producer would block here.
		for _, ev := range mkEvents(8 * DefaultBatchSize) {
			p.HandleEvent(ev)
		}
		p.Sync() // must not hang on the dead consumer
		if err := p.Err(); err == nil || !strings.Contains(err.Error(), "detector exploded") {
			t.Fatalf("lazy=%v: Err() = %v, want the recovered panic", lazy, err)
		}
		p.Close() // must not hang either
		if h.seen > h.limit+DefaultBatchSize {
			t.Fatalf("lazy=%v: delivery continued after the panic (%d events seen)", lazy, h.seen)
		}
	}
}

func TestPipelineErrNilOnHealthyRun(t *testing.T) {
	h := &collectHandler{}
	p := NewPipeline(h)
	p.HandleBatch(mkEvents(100))
	p.Close()
	if err := p.Err(); err != nil {
		t.Fatalf("Err() = %v on a healthy run", err)
	}
}
