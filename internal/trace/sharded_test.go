package trace

import (
	"strings"
	"testing"
)

// mkStrandStream builds a deterministic mixed stream over nStrands strands:
// per-strand store/flush/fence runs with strand begin/end markers, plus
// region registrations, a join, and a terminal End — everything the
// sharded router must classify.
func mkStrandStream(nStrands, perStrand int) []Event {
	var evs []Event
	seq := uint64(0)
	next := func() uint64 { seq++; return seq }
	evs = append(evs, Event{Seq: next(), Kind: KindRegister, Addr: 0x1000, Size: 1 << 16})
	for r := 0; r < perStrand; r++ {
		for s := 0; s < nStrands; s++ {
			strand := int32(s)
			addr := 0x1000 + uint64(s)*0x100 + uint64(r)*8
			if r == 0 {
				evs = append(evs, Event{Seq: next(), Kind: KindStrandBegin, Strand: strand})
			}
			evs = append(evs, Event{Seq: next(), Kind: KindStore, Addr: addr, Size: 8, Strand: strand})
			evs = append(evs, Event{Seq: next(), Kind: KindFlush, Addr: addr &^ 63, Size: 64, Strand: strand})
			evs = append(evs, Event{Seq: next(), Kind: KindFence, Strand: strand})
			if r == perStrand-1 {
				evs = append(evs, Event{Seq: next(), Kind: KindStrandEnd, Strand: strand})
			}
		}
	}
	evs = append(evs, Event{Seq: next(), Kind: KindJoinStrand, Strand: 1})
	evs = append(evs, Event{Seq: next(), Kind: KindEnd})
	return evs
}

func newShardedCollectors(shards int, opts PipelineOptions) (*ShardedPipeline, []*collectHandler) {
	hs := make([]*collectHandler, shards)
	handlers := make([]Handler, shards)
	for i := range hs {
		hs[i] = &collectHandler{}
		handlers[i] = hs[i]
	}
	owner := MultiHandler(handlers)
	return NewShardedPipeline(owner, handlers, opts), hs
}

// TestShardedPipelineMatchesPartition drives a mixed stream event-by-event
// through a ShardedPipeline and requires every shard handler to observe
// exactly the subsequence PartitionByStrand would hand a partitioned replay
// of the same stream — the invariant sharded live reports rest on.
func TestShardedPipelineMatchesPartition(t *testing.T) {
	const shards = 3
	evs := mkStrandStream(7, 5) // 7 strands folded onto 3 shards
	parts, err := PartitionByStrand(evs, PartitionOptions{Shards: shards, DropJoins: true})
	if err != nil {
		t.Fatalf("PartitionByStrand: %v", err)
	}
	want := make(map[int][]Event, len(parts))
	for _, p := range parts {
		want[p.Shard] = p.Events
	}

	for _, batched := range []bool{false, true} {
		sp, hs := newShardedCollectors(shards, PipelineOptions{})
		if batched {
			sp.HandleBatch(evs)
		} else {
			for _, ev := range evs {
				sp.HandleEvent(ev)
			}
		}
		sp.Close()
		for i, h := range hs {
			w := want[i]
			if len(h.events) != len(w) {
				t.Fatalf("batched=%v shard %d: got %d events, partition has %d",
					batched, i, len(h.events), len(w))
			}
			for j := range w {
				if h.events[j] != w[j] {
					t.Fatalf("batched=%v shard %d event %d: got %v, partition has %v",
						batched, i, j, h.events[j], w[j])
				}
			}
		}
		st := sp.Stats()
		if st.Broadcasts != 1 || st.DroppedJoins != 1 || st.DroppedEnds != 1 {
			t.Fatalf("batched=%v stats = %+v, want 1 broadcast, 1 dropped join, 1 dropped end",
				batched, st)
		}
	}
}

// TestShardedPipelineGlobalBarrier checks global events (epoch boundaries)
// are sequenced with a full drain barrier and then broadcast, so every
// shard observes them at the same stream position a sequential consumer
// would.
func TestShardedPipelineGlobalBarrier(t *testing.T) {
	sp, hs := newShardedCollectors(2, PipelineOptions{})
	sp.HandleEvent(Event{Seq: 1, Kind: KindStore, Addr: 0x1000, Size: 8, Strand: 0})
	sp.HandleEvent(Event{Seq: 2, Kind: KindStore, Addr: 0x2000, Size: 8, Strand: 1})
	sp.HandleEvent(Event{Seq: 3, Kind: KindEpochBegin})
	// The barrier has already drained both shards by the time HandleEvent
	// returns — each shard must hold its store before the epoch marker.
	for i, h := range hs {
		if len(h.events) < 1 {
			t.Fatalf("shard %d not drained at the barrier", i)
		}
	}
	sp.HandleEvent(Event{Seq: 4, Kind: KindEpochEnd})
	sp.Close()
	for i, h := range hs {
		if len(h.events) != 3 {
			t.Fatalf("shard %d: got %d events, want store + epoch pair", i, len(h.events))
		}
		if h.events[0].Kind != KindStore || h.events[1].Kind != KindEpochBegin || h.events[2].Kind != KindEpochEnd {
			t.Fatalf("shard %d: wrong order: %v", i, h.events)
		}
	}
	if st := sp.Stats(); st.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", st.Barriers)
	}
}

// TestShardedPipelineStrandSlot exercises the zero-copy producer path.
func TestShardedPipelineStrandSlot(t *testing.T) {
	const shards = 4
	sp, hs := newShardedCollectors(shards, PipelineOptions{})
	const n = 1000
	for i := 0; i < n; i++ {
		strand := int32(i % 5)
		*sp.StrandSlot(strand) = Event{
			Seq: uint64(i + 1), Kind: KindStore, Addr: 0x1000 + uint64(i)*8, Size: 8, Strand: strand,
		}
	}
	sp.Sync()
	total := 0
	for i, h := range hs {
		for _, ev := range h.events {
			if got := int(uint32(ev.Strand) % shards); got != i {
				t.Fatalf("shard %d received event for strand %d (shard %d)", i, ev.Strand, got)
			}
		}
		// Per-shard order must be the original subsequence order.
		for j := 1; j < len(h.events); j++ {
			if h.events[j].Seq <= h.events[j-1].Seq {
				t.Fatalf("shard %d out of order at %d: %v after %v", i, j, h.events[j], h.events[j-1])
			}
		}
		total += len(h.events)
	}
	if total != n {
		t.Fatalf("shards delivered %d events, want %d", total, n)
	}
	sp.Close()
}

// TestShardedPipelineLifecycle: Close is idempotent, Sync after Close
// returns, Handler() identifies the owner, and tiny shard counts panic.
func TestShardedPipelineLifecycle(t *testing.T) {
	sp, _ := newShardedCollectors(2, PipelineOptions{Lazy: true})
	if sp.Shards() != 2 {
		t.Fatalf("Shards() = %d", sp.Shards())
	}
	if sp.Handler() == nil {
		t.Fatal("Handler() = nil, want the owner")
	}
	sp.HandleBatch(mkEvents(100))
	sp.Close()
	sp.Close() // idempotent
	sp.Sync()  // defined after Close
	if err := sp.Err(); err != nil {
		t.Fatalf("Err() = %v on a healthy run", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedPipeline with 1 shard did not panic")
		}
	}()
	NewShardedPipeline(nil, []Handler{&collectHandler{}}, PipelineOptions{})
}

// TestShardedPipelineShardPanic: one shard's handler panicking must not
// wedge barriers across the other shards, and Err must name the shard.
func TestShardedPipelineShardPanic(t *testing.T) {
	bad := &panicAfterHandler{limit: 10}
	good := &collectHandler{}
	sp := NewShardedPipeline(nil, []Handler{good, bad}, PipelineOptions{Depth: 2})
	for i := 0; i < 4*DefaultBatchSize; i++ {
		strand := int32(i % 2)
		*sp.StrandSlot(strand) = Event{
			Seq: uint64(i + 1), Kind: KindStore, Addr: 0x1000, Size: 8, Strand: strand,
		}
	}
	sp.Sync() // must not hang on the poisoned shard
	err := sp.Err()
	if err == nil || !strings.Contains(err.Error(), "shard 1") ||
		!strings.Contains(err.Error(), "detector exploded") {
		t.Fatalf("Err() = %v, want shard 1's recovered panic", err)
	}
	if len(good.events) != 2*DefaultBatchSize {
		t.Fatalf("healthy shard got %d events, want %d", len(good.events), 2*DefaultBatchSize)
	}
	sp.Close()
}
