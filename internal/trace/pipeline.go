package trace

import (
	"fmt"
	"sync/atomic"
)

// Pipeline is a bounded, double-buffered batch conduit between an event
// producer and a Handler: the producer's HandleEvent appends the 40-byte
// event into the current staging slab — a memcpy, nothing more — and full
// slabs are handed through a bounded ring to a single consumer goroutine
// that drives the handler's batch fast path.
//
// It exists to take detection off the instrumented program's critical path
// (§7.2's live-instrumentation slowdowns): attached inline, a detector's
// AVL inserts, index updates and rule checks all execute under the pool's
// global mutex on the application thread, so multi-threaded workloads fully
// serialize behind bookkeeping. Attached through a Pipeline, the application
// thread pays only the slab append and detection overlaps with execution on
// the consumer goroutine.
//
// Correctness anchors:
//
//   - Ordering. Slabs travel through a FIFO channel and a single consumer
//     delivers them, so the handler observes the exact sequence the producer
//     appended — for a pmem.Pool that is the pool-serialized, Seq-stamped
//     stream, and reports are byte-identical to inline delivery.
//   - Bounded memory. The ring recycles depth slabs of DefaultBatchSize
//     events; when the consumer falls behind, HandleEvent blocks on the next
//     free slab (backpressure) instead of growing a queue.
//   - Sync barrier. Sync returns only after every event appended
//     before the call has been delivered to the handler; the pool invokes it
//     before crash-trap panics, crash-image snapshots and final checks.
//
// The producer side (HandleEvent, HandleBatch, Sync, Close) must be
// externally serialized — the emitting pool's mutex already provides this.
// The handler runs on the consumer goroutine and must not call back into
// the producer while it holds that serialization (the pool's detectors
// never do).
//
// Two drain disciplines are available (Options.Lazy):
//
//   - Eager (default): the consumer drains slabs as they arrive, so
//     detection overlaps execution on another core. The right choice when a
//     spare core exists.
//   - Lazy: the consumer parks and slabs accumulate in the ring; analysis
//     runs when Sync or Close demands it, or when the ring runs out of
//     recycled slabs. This is the tracing-then-analysis decoupling of
//     offline-trace debuggers (WITCHER's architecture): on a machine with no
//     spare core it keeps the consumer entirely off the CPU during the
//     application's live phase instead of time-slicing against it. Delivery
//     order and reports are identical in both disciplines.
type Pipeline struct {
	h  Handler
	bh BatchHandler // non-nil when h implements the batch fast path

	// cur is the staging slab, always full-length; n is the fill cursor.
	// Producers write events in place at cur[n] (Slot) so an event is
	// stored exactly once, with no intermediate copies.
	cur  []Event
	n    int
	full chan slabMsg // filled slabs and sync markers, FIFO to the consumer
	free chan []Event // recycled slabs
	done chan struct{}

	// lazy selects the deferred drain discipline; kick (buffered, capacity
	// 1) wakes the parked consumer when a drain is required.
	lazy bool
	kick chan struct{}

	closed bool

	// fail records a handler panic caught on the consumer goroutine. Once
	// set, the consumer stops delivering (the handler's internal state is
	// unknown) but keeps recycling slabs and closing sync markers, so the
	// producer, Sync and Close never block on a dead consumer. Written by
	// the consumer, read by anyone via Err.
	fail atomic.Pointer[string]
}

// slabMsg is one ring entry: a filled slab, a sync marker, or both.
type slabMsg struct {
	evs  []Event       // events to deliver (nil for a pure sync marker)
	sync chan struct{} // when non-nil, closed once all prior slabs drained
}

// DefaultPipelineDepth is the default number of slabs in the ring. With
// DefaultBatchSize 40-byte events per slab the whole pipeline stays within a
// couple of megabytes while giving the consumer enough runway to absorb
// emission bursts.
const DefaultPipelineDepth = 8

// PipelineOptions configures NewPipelineOpts.
type PipelineOptions struct {
	// Depth is the number of slabs in the ring (0 = DefaultPipelineDepth,
	// minimum 2: one slab staging while one drains — the double buffer).
	Depth int
	// Lazy selects the deferred drain discipline: the consumer parks until
	// Sync/Close or ring exhaustion instead of draining as slabs arrive.
	Lazy bool
}

// NewPipeline starts a pipeline delivering to h with DefaultPipelineDepth
// slabs.
func NewPipeline(h Handler) *Pipeline {
	return NewPipelineOpts(h, PipelineOptions{})
}

// NewPipelineDepth starts a pipeline with the given ring depth.
func NewPipelineDepth(h Handler, depth int) *Pipeline {
	return NewPipelineOpts(h, PipelineOptions{Depth: depth})
}

// NewPipelineOpts starts a pipeline with explicit options.
func NewPipelineOpts(h Handler, opts PipelineOptions) *Pipeline {
	depth := opts.Depth
	if depth == 0 {
		depth = DefaultPipelineDepth
	}
	if depth < 2 {
		depth = 2
	}
	p := &Pipeline{
		h:    h,
		full: make(chan slabMsg, depth),
		free: make(chan []Event, depth),
		done: make(chan struct{}),
		lazy: opts.Lazy,
		kick: make(chan struct{}, 1),
	}
	if bh, ok := h.(BatchHandler); ok {
		p.bh = bh
	}
	for i := 0; i < depth; i++ {
		slab := make([]Event, DefaultBatchSize)
		// Touch every page now: a large make is backed by lazily-mapped
		// zero pages, and without this the first-touch faults would be
		// charged to the producer's hot path instead of setup.
		for j := range slab {
			slab[j].Seq = 1
		}
		p.free <- slab
	}
	p.cur = <-p.free
	go p.consume()
	return p
}

// Handler returns the handler the pipeline delivers to, so an owner holding
// only the pipeline can identify (and detach by) the wrapped consumer.
func (p *Pipeline) Handler() Handler { return p.h }

// Slot hands out an in-place pointer to the next staging slot, shipping the
// previous slab first when it is full. The caller must assign every field
// of the returned Event before its next call into the pipeline — this is
// the zero-copy producer path: the event is constructed directly in the
// slab, never copied through a call chain.
func (p *Pipeline) Slot() *Event {
	if p.closed {
		panic("trace: Pipeline used after Close")
	}
	if p.n == len(p.cur) {
		p.handoff()
	}
	s := &p.cur[p.n]
	p.n++
	return s
}

// HandleEvent implements Handler: it stages ev in the current slab, handing
// the slab to the consumer when it fills. It never runs the handler itself.
func (p *Pipeline) HandleEvent(ev Event) {
	*p.Slot() = ev
}

// HandleBatch implements BatchHandler by staging the whole slice.
func (p *Pipeline) HandleBatch(evs []Event) {
	if p.closed {
		panic("trace: Pipeline used after Close")
	}
	for len(evs) > 0 {
		if p.n == len(p.cur) {
			p.handoff()
		}
		n := copy(p.cur[p.n:], evs)
		p.n += n
		evs = evs[n:]
	}
}

// handoff ships the staging slab (if non-empty) and pulls a recycled one,
// blocking when the consumer is behind — the constant-memory backpressure.
// A full ring wakes a lazy consumer first, so backpressure degrades into
// concurrent draining rather than deadlock.
func (p *Pipeline) handoff() {
	if p.n == 0 {
		return
	}
	// Never blocks: at most depth slabs exist, one is in p.cur, so the full
	// ring holds at most depth-1 of them (plus at most one in-flight sync
	// marker, which occupies the slot the staged slab frees).
	p.full <- slabMsg{evs: p.cur[:p.n]}
	select {
	case p.cur = <-p.free:
	default:
		p.wake() // no recycled slab ready: the consumer must drain now
		p.cur = <-p.free
	}
	p.n = 0
}

// wake nudges a parked lazy consumer; it is a no-op when a wake is already
// pending or the pipeline is eager (an eager consumer never parks).
func (p *Pipeline) wake() {
	if !p.lazy {
		return
	}
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// Sync blocks until every event passed to HandleEvent/HandleBatch before
// the call has been delivered to the handler. Events keep their original
// order across the barrier. After Close, Sync returns immediately: the
// close already drained everything.
func (p *Pipeline) Sync() {
	<-p.syncBegin()
}

// syncBegin posts the sync marker and returns the channel the consumer
// closes once every prior event has been delivered, without waiting. A
// fan-out owner uses it to post barriers to all its shard pipelines before
// waiting on any, so lazy shards drain concurrently instead of one by one.
// At most one marker may be in flight per pipeline (the producer side is
// externally serialized, so posting the next after receiving the previous
// preserves this).
func (p *Pipeline) syncBegin() <-chan struct{} {
	c := make(chan struct{})
	if p.closed {
		close(c)
		return c
	}
	p.handoff()
	p.full <- slabMsg{sync: c}
	p.wake()
	return c
}

// Close drains the pipeline and stops the consumer goroutine, returning
// once the handler has seen every staged event. Close is idempotent; after
// it returns, Sync is a no-op and HandleEvent/HandleBatch/Slot panic.
func (p *Pipeline) Close() {
	<-p.closeBegin()
}

// closeBegin initiates the close and returns the channel that closes when
// the consumer has drained; the fan-out owner closes all shard pipelines
// concurrently through it. Idempotent: a second call just returns the done
// channel.
func (p *Pipeline) closeBegin() <-chan struct{} {
	if !p.closed {
		p.closed = true
		p.handoff()
		close(p.full)
		p.wake()
	}
	return p.done
}

// Err returns the panic a handler raised on the consumer goroutine, or nil.
// Deliveries after a handler panic are dropped (the handler's state is
// unknown); the producer side keeps working so the owning program can reach
// its own error handling instead of deadlocking. Call after a barrier
// (Sync/Close) for a definitive answer.
func (p *Pipeline) Err() error {
	if msg := p.fail.Load(); msg != nil {
		return fmt.Errorf("trace: pipeline handler panicked: %s", *msg)
	}
	return nil
}

// consume is the single consumer: it drains slabs in FIFO order, drives the
// handler's batch fast path, and recycles each slab into the free ring.
func (p *Pipeline) consume() {
	defer close(p.done)
	for {
		msg, ok := p.next()
		if !ok {
			return
		}
		if msg.evs != nil {
			p.deliver(msg.evs)
			p.free <- msg.evs[:cap(msg.evs)] // restore full length for reuse
		}
		if msg.sync != nil {
			close(msg.sync)
		}
	}
}

// deliver runs the handler on one slab, catching handler panics so a buggy
// detector cannot wedge the ring: the slab is still recycled and sync
// markers still close, only delivery stops.
func (p *Pipeline) deliver(evs []Event) {
	if p.fail.Load() != nil {
		return // poisoned: drop, keep the ring moving
	}
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("%v", r)
			p.fail.Store(&msg)
		}
	}()
	if p.bh != nil {
		p.bh.HandleBatch(evs)
	} else {
		for _, ev := range evs {
			p.h.HandleEvent(ev)
		}
	}
}

// next returns the consumer's next message. An eager consumer blocks on the
// ring; a lazy one parks on the kick channel once the ring is drained, so it
// consumes no CPU until a drain is demanded. Wakers enqueue their demand
// (slab, marker, or channel close) before kicking, so a kick received here
// always finds it in the ring.
func (p *Pipeline) next() (slabMsg, bool) {
	if !p.lazy {
		msg, ok := <-p.full
		return msg, ok
	}
	for {
		select {
		case msg, ok := <-p.full:
			return msg, ok
		default:
			<-p.kick // drained: park until the next demand
		}
	}
}

var _ BatchHandler = (*Pipeline)(nil)
