package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Trace file format: a 8-byte magic header followed by fixed-width
// little-endian records. Site names are not serialized; site IDs are
// preserved verbatim, so decoded traces report numeric sites unless the same
// process registered the names. This matches the role traces play here:
// shuttling an instruction stream between the cmd/ tools in one session.
//
// Encoding and decoding are streaming: Writer and Reader move
// StreamBatchSize-record slabs through a shared buffer pool, so multi-GB
// traces flow between disk and the replay pipeline in constant memory.

var traceMagic = [8]byte{'P', 'M', 'T', 'R', 'A', 'C', 'E', '1'}

const recordSize = 8 + 8 + 8 + 1 + 1 + 4 + 4 + 4 // Seq Addr Size Kind Flush Strand Thread Site

// StreamBatchSize is the number of records moved per I/O slab by the
// streaming encoder/decoder and the batch size StreamTrace delivers.
const StreamBatchSize = DefaultBatchSize

// slabPool recycles the byte slabs used to stage encoded records, so
// concurrent streams (e.g. several shard writers) do not each hold a
// freshly allocated buffer per batch.
var slabPool = sync.Pool{
	New: func() any { return make([]byte, StreamBatchSize*recordSize) },
}

func putEvent(buf []byte, ev Event) {
	binary.LittleEndian.PutUint64(buf[0:], ev.Seq)
	binary.LittleEndian.PutUint64(buf[8:], ev.Addr)
	binary.LittleEndian.PutUint64(buf[16:], ev.Size)
	buf[24] = byte(ev.Kind)
	buf[25] = byte(ev.Flush)
	binary.LittleEndian.PutUint32(buf[26:], uint32(ev.Strand))
	binary.LittleEndian.PutUint32(buf[30:], uint32(ev.Thread))
	binary.LittleEndian.PutUint32(buf[34:], uint32(ev.Site))
}

func getEvent(buf []byte) Event {
	return Event{
		Seq:    binary.LittleEndian.Uint64(buf[0:]),
		Addr:   binary.LittleEndian.Uint64(buf[8:]),
		Size:   binary.LittleEndian.Uint64(buf[16:]),
		Kind:   Kind(buf[24]),
		Flush:  FlushKind(buf[25]),
		Strand: int32(binary.LittleEndian.Uint32(buf[26:])),
		Thread: int32(binary.LittleEndian.Uint32(buf[30:])),
		Site:   SiteID(binary.LittleEndian.Uint32(buf[34:])),
	}
}

// Writer streams events to an underlying io.Writer in the trace file
// format. Events are staged in pooled slabs and written StreamBatchSize
// records at a time; call Flush once at the end.
//
// Write errors are sticky: the first failure is retained, every subsequent
// write becomes a no-op returning it, and Flush reports it — so a Writer
// attached as a (Batch)Handler, whose per-event errors have nowhere to go,
// still surfaces the failure at the end of the run.
type Writer struct {
	bw   *bufio.Writer
	slab []byte
	n    int   // staged records in slab
	err  error // first write error; sticky
}

// NewWriter writes the trace header and returns a streaming encoder.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{bw: bw, slab: slabPool.Get().([]byte)}, nil
}

// WriteEvent appends one event to the stream. After a write error it is a
// no-op returning that error.
func (tw *Writer) WriteEvent(ev Event) error {
	if tw.err != nil {
		return tw.err
	}
	putEvent(tw.slab[tw.n*recordSize:], ev)
	tw.n++
	if tw.n == StreamBatchSize {
		return tw.flushSlab()
	}
	return nil
}

// WriteBatch appends a slice of events to the stream.
func (tw *Writer) WriteBatch(evs []Event) error {
	for _, ev := range evs {
		if err := tw.WriteEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

// HandleEvent implements Handler, so a Writer can be attached directly to an
// instrumented pool to record straight to disk. Errors are sticky and
// surfaced by Err and Flush.
func (tw *Writer) HandleEvent(ev Event) { _ = tw.WriteEvent(ev) }

// HandleBatch implements BatchHandler.
func (tw *Writer) HandleBatch(evs []Event) { _ = tw.WriteBatch(evs) }

// Err returns the sticky write error, or nil if every write so far
// succeeded.
func (tw *Writer) Err() error { return tw.err }

func (tw *Writer) flushSlab() error {
	if tw.err != nil {
		return tw.err
	}
	if tw.n == 0 {
		return nil
	}
	if _, err := tw.bw.Write(tw.slab[:tw.n*recordSize]); err != nil {
		tw.err = fmt.Errorf("trace: write records: %w", err)
		return tw.err
	}
	tw.n = 0
	return nil
}

// Flush drains staged records and the underlying buffer, returns the
// pooled slab, and reports the first write error of the Writer's lifetime.
// The Writer must not be used afterwards.
func (tw *Writer) Flush() error {
	if err := tw.flushSlab(); err == nil {
		if ferr := tw.bw.Flush(); ferr != nil {
			tw.err = fmt.Errorf("trace: flush records: %w", ferr)
		}
	}
	if tw.slab != nil {
		slabPool.Put(tw.slab)
		tw.slab = nil
	}
	return tw.err
}

// Reader streams events from an underlying io.Reader.
type Reader struct {
	br   *bufio.Reader
	slab []byte
	buf  []byte // unconsumed decoded bytes within slab
}

// NewReader validates the trace header and returns a streaming decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	return &Reader{br: br, slab: slabPool.Get().([]byte)}, nil
}

// ReadBatch fills dst with decoded events and returns how many were read.
// It blocks only until at least one whole record is available: a partial
// batch is returned as soon as the buffered bytes run out, so a reader over
// a live connection delivers events as they arrive instead of stalling
// until a whole slab has buffered. It returns 0, io.EOF at a clean end of
// stream and an error for a truncated or corrupt trace.
func (tr *Reader) ReadBatch(dst []Event) (int, error) {
	n := 0
	for n < len(dst) {
		if len(tr.buf) < recordSize {
			if n > 0 {
				// Deliver what already arrived rather than blocking on a
				// refill; the next call fills again.
				return n, nil
			}
			if err := tr.fill(); err != nil {
				return n, err
			}
		}
		dst[n] = getEvent(tr.buf)
		tr.buf = tr.buf[recordSize:]
		n++
	}
	return n, nil
}

// fill reads the next run of whole records from the underlying reader. It
// waits only for one record (io.ReadAtLeast) and takes whatever else came
// with it, so socket streams trickle through record by record while file
// reads still move near-slab-sized runs per call. A read boundary that cuts
// a record mid-way is not an error: the partial bytes are carried over to
// the next fill. A cut at end-of-stream is the truncated-record error.
func (tr *Reader) fill() error {
	if tr.slab == nil {
		return io.EOF
	}
	// Carry partial-record bytes to the slab head; buf aliases the slab, so
	// the ranges may overlap (copy handles that).
	rem := len(tr.buf)
	if rem > 0 {
		copy(tr.slab, tr.buf)
	}
	tr.buf = nil
	read, err := io.ReadAtLeast(tr.br, tr.slab[rem:], recordSize-rem)
	total := rem + read
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		if total == 0 {
			tr.Close()
			return io.EOF
		}
		if total%recordSize != 0 {
			return fmt.Errorf("trace: truncated record (%d trailing bytes)", total%recordSize)
		}
		err = nil
	}
	if err != nil {
		return fmt.Errorf("trace: read records: %w", err)
	}
	tr.buf = tr.slab[:total]
	return nil
}

// Close returns the pooled slab. Reading past EOF closes implicitly; Close
// is only needed when abandoning a stream early.
func (tr *Reader) Close() {
	if tr.slab != nil {
		slabPool.Put(tr.slab)
		tr.slab = nil
		tr.buf = nil
	}
}

// StreamTrace decodes a trace from r and delivers it to h in batches of up
// to StreamBatchSize events without materializing the trace, using the
// batch fast path when h implements BatchHandler. It returns the number of
// events delivered.
func StreamTrace(r io.Reader, h Handler) (int, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	total := 0
	batch := make([]Event, StreamBatchSize)
	bh, batched := h.(BatchHandler)
	for {
		n, err := tr.ReadBatch(batch)
		if n > 0 {
			if batched {
				bh.HandleBatch(batch[:n])
			} else {
				for _, ev := range batch[:n] {
					h.HandleEvent(ev)
				}
			}
			total += n
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// WriteTrace serializes events to w in the trace file format.
func WriteTrace(w io.Writer, events []Event) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	if err := tw.WriteBatch(events); err != nil {
		return err
	}
	return tw.Flush()
}

// ReadTrace deserializes a trace previously written by WriteTrace,
// materializing it fully. Prefer StreamTrace or Reader for large traces.
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	_, err := StreamTrace(r, HandlerFunc(func(ev Event) {
		events = append(events, ev)
	}))
	if err != nil {
		return nil, err
	}
	return events, nil
}
