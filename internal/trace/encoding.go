package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace file format: a 8-byte magic header followed by fixed-width
// little-endian records. Site names are not serialized; site IDs are
// preserved verbatim, so decoded traces report numeric sites unless the same
// process registered the names. This matches the role traces play here:
// shuttling an instruction stream between the cmd/ tools in one session.

var traceMagic = [8]byte{'P', 'M', 'T', 'R', 'A', 'C', 'E', '1'}

const recordSize = 8 + 8 + 8 + 1 + 1 + 4 + 4 + 4 // Seq Addr Size Kind Flush Strand Thread Site

func putEvent(buf []byte, ev Event) {
	binary.LittleEndian.PutUint64(buf[0:], ev.Seq)
	binary.LittleEndian.PutUint64(buf[8:], ev.Addr)
	binary.LittleEndian.PutUint64(buf[16:], ev.Size)
	buf[24] = byte(ev.Kind)
	buf[25] = byte(ev.Flush)
	binary.LittleEndian.PutUint32(buf[26:], uint32(ev.Strand))
	binary.LittleEndian.PutUint32(buf[30:], uint32(ev.Thread))
	binary.LittleEndian.PutUint32(buf[34:], uint32(ev.Site))
}

func getEvent(buf []byte) Event {
	return Event{
		Seq:    binary.LittleEndian.Uint64(buf[0:]),
		Addr:   binary.LittleEndian.Uint64(buf[8:]),
		Size:   binary.LittleEndian.Uint64(buf[16:]),
		Kind:   Kind(buf[24]),
		Flush:  FlushKind(buf[25]),
		Strand: int32(binary.LittleEndian.Uint32(buf[26:])),
		Thread: int32(binary.LittleEndian.Uint32(buf[30:])),
		Site:   SiteID(binary.LittleEndian.Uint32(buf[34:])),
	}
}

// WriteTrace serializes events to w in the trace file format.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var rec [recordSize]byte
	for _, ev := range events {
		putEvent(rec[:], ev)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var events []Event
	var rec [recordSize]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read record: %w", err)
		}
		events = append(events, getEvent(rec[:]))
	}
}
